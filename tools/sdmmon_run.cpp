// sdmmon-run: execute a program image on a monitored NP core against a
// packet trace (or a one-off hex packet) and report outcomes.
//
//   sdmmon-run prog.img --trace t.bin [--param 0xC0FFEE]
//   sdmmon-run prog.img --hex 45000014...
//   sdmmon-run prog.img --gen 100          # 100 generated UDP packets
//   sdmmon-run prog.img --gen 100 --metrics-out metrics.json
//
// --metrics-out dumps the obs-layer snapshot (counters, histograms,
// event journal) as JSON after the replay; schema in
// docs/OBSERVABILITY.md. Requires a -DSDMMON_OBS=ON build (the default);
// on an OFF build the file is still written but only ever shows zeros.
#include <cstdio>
#include <memory>

#include "monitor/analysis.hpp"
#include "net/trace.hpp"
#include "np/monitored_core.hpp"
#include "obs/obs.hpp"
#include "tool_util.hpp"

int main(int argc, char** argv) {
  using namespace sdmmon;
  try {
    tools::Args args = tools::Args::parse(argc, argv);
    if (args.positional.size() != 1) {
      std::fprintf(stderr,
                   "usage: sdmmon-run <image> (--trace F | --hex H | --gen N)"
                   " [--param P]\n");
      return 2;
    }
    isa::Program program =
        isa::Program::deserialize(tools::read_file(args.positional[0]));

    const std::uint32_t param = static_cast<std::uint32_t>(
        std::stoul(args.get_or("param", "0xC0FFEE"), nullptr, 0));
    monitor::MerkleTreeHash hash(param);
    np::MonitoredCore core;
    core.install(program, monitor::extract_graph(program, hash),
                 std::make_unique<monitor::MerkleTreeHash>(hash));

    obs::Registry registry;
    np::CoreObs core_obs;
    if (args.has("metrics-out")) {
      core_obs = np::CoreObs::create(registry, /*core_id=*/0);
      core.attach_obs(&core_obs);
    }
    std::printf("installed '%s' (%zu instrs) with hash %s\n",
                program.name.c_str(), program.text.size(),
                hash.name().c_str());

    net::Trace trace;
    if (args.has("trace")) {
      trace = net::Trace::load(args.get("trace"));
    } else if (args.has("hex")) {
      net::TraceRecord record;
      record.packet = util::from_hex(args.get("hex"));
      trace.add(std::move(record));
    } else if (args.has("gen")) {
      net::TrafficGenerator gen;
      trace = net::Trace::capture(
          gen, static_cast<std::size_t>(std::stoul(args.get("gen"))));
    } else {
      std::fprintf(stderr, "need one of --trace / --hex / --gen\n");
      return 2;
    }

    net::ReplayStats stats = net::replay(trace, core);
    std::printf(
        "packets %llu | forwarded %llu | dropped %llu | attacks %llu |"
        " traps %llu | instrs %llu\n",
        (unsigned long long)stats.packets,
        (unsigned long long)stats.forwarded,
        (unsigned long long)stats.dropped,
        (unsigned long long)stats.attacks_detected,
        (unsigned long long)stats.trapped,
        (unsigned long long)stats.instructions);
    if (stats.packets == 1 && stats.forwarded == 1) {
      std::printf("output: %s (port %u)\n",
                  util::to_hex(core.core().output()).c_str(),
                  core.core().output_port());
    }
    if (args.has("metrics-out")) {
      const std::string path = args.get("metrics-out");
      std::FILE* file = std::fopen(path.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "sdmmon-run: cannot write %s\n", path.c_str());
        return 1;
      }
      const std::string json = registry.snapshot_json();
      std::fwrite(json.data(), 1, json.size(), file);
      std::fputc('\n', file);
      std::fclose(file);
      std::printf("metrics: %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdmmon-run: %s\n", e.what());
    return 1;
  }
}
