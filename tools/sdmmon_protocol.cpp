// sdmmon-protocol: drive the three-entity install protocol with real key
// and package files, one step per invocation -- the paper's Figure 3 as a
// command-line workflow.
//
//   sdmmon-protocol keygen  --seed S --bits 2048 --priv m.key --pub m.pub
//   sdmmon-protocol certify --issuer-priv m.key --issuer-name acme \
//       --subject-pub op.pub --subject-name noc --not-after 2000000000 \
//       --out op.cert
//   sdmmon-protocol package --operator-priv op.key --cert op.cert \
//       --device-pub dev.pub --image prog.img --seq 1 --seed X --out pkg.bin
//   sdmmon-protocol install --device-priv dev.key --root-pub m.pub \
//       --pkg pkg.bin [--now T]
#include <cstdio>
#include <memory>

#include "crypto/cert.hpp"
#include "monitor/analysis.hpp"
#include "sdmmon/package.hpp"
#include "tool_util.hpp"

namespace {

using namespace sdmmon;
using sdmmon::tools::Args;

int cmd_keygen(const Args& args) {
  crypto::Drbg drbg(args.get("seed"));
  const std::size_t bits = std::stoul(args.get_or("bits", "2048"));
  std::printf("generating RSA-%zu keypair...\n", bits);
  crypto::RsaKeyPair kp = crypto::rsa_generate(bits, drbg);
  tools::write_file(args.get("priv"), kp.priv.serialize());
  tools::write_file(args.get("pub"), kp.pub.serialize());
  std::printf("fingerprint %s\n",
              util::to_hex(kp.pub.fingerprint()).substr(0, 16).c_str());
  return 0;
}

int cmd_certify(const Args& args) {
  auto issuer_priv =
      crypto::RsaPrivateKey::deserialize(tools::read_file(args.get("issuer-priv")));
  auto subject_pub =
      crypto::RsaPublicKey::deserialize(tools::read_file(args.get("subject-pub")));
  const std::uint64_t not_before =
      std::stoull(args.get_or("not-before", "0"));
  const std::uint64_t not_after =
      std::stoull(args.get_or("not-after", "4000000000"));
  crypto::Certificate cert = crypto::issue_certificate(
      args.get("subject-name"), crypto::CertRole::NetworkOperator,
      std::stoull(args.get_or("serial", "1")), not_before, not_after,
      subject_pub, args.get("issuer-name"), issuer_priv);
  tools::write_file(args.get("out"), cert.serialize());
  std::printf("certified '%s' by '%s' (serial %llu)\n",
              cert.subject.c_str(), cert.issuer.c_str(),
              (unsigned long long)cert.serial);
  return 0;
}

int cmd_package(const Args& args) {
  auto op_priv = crypto::RsaPrivateKey::deserialize(
      tools::read_file(args.get("operator-priv")));
  auto cert =
      crypto::Certificate::deserialize(tools::read_file(args.get("cert")));
  auto device_pub = crypto::RsaPublicKey::deserialize(
      tools::read_file(args.get("device-pub")));
  isa::Program binary =
      isa::Program::deserialize(tools::read_file(args.get("image")));

  crypto::Drbg drbg(args.get("seed"));
  protocol::PackagePayload payload;
  payload.binary = binary;
  payload.hash_param = drbg.next_u32();
  monitor::MerkleTreeHash hash(payload.hash_param);
  payload.graph = monitor::extract_graph(binary, hash);
  payload.sequence = std::stoull(args.get_or("seq", "1"));
  payload.pad_bytes = static_cast<std::uint32_t>(
      std::stoul(args.get_or("pad", "0")));

  protocol::WirePackage wire =
      protocol::seal_package(payload, op_priv, cert, device_pub, drbg);
  util::Bytes bytes = wire.serialize();
  tools::write_file(args.get("out"), bytes);
  std::printf("sealed '%s' for device: %zu bytes, seq %llu, graph %zu bits\n",
              binary.name.c_str(), bytes.size(),
              (unsigned long long)payload.sequence,
              payload.graph.size_bits());
  return 0;
}

int cmd_install(const Args& args) {
  auto device_priv = crypto::RsaPrivateKey::deserialize(
      tools::read_file(args.get("device-priv")));
  auto root_pub =
      crypto::RsaPublicKey::deserialize(tools::read_file(args.get("root-pub")));
  auto wire =
      protocol::WirePackage::deserialize(tools::read_file(args.get("pkg")));
  const std::uint64_t now = std::stoull(args.get_or("now", "1700000000"));

  crypto::CertStatus cert_status =
      crypto::verify_certificate(wire.operator_cert, root_pub, now,
                                 crypto::CertRole::NetworkOperator);
  if (cert_status != crypto::CertStatus::Ok) {
    std::printf("REJECTED: certificate %s\n",
                crypto::cert_status_name(cert_status));
    return 1;
  }
  protocol::OpenResult opened = protocol::open_package(
      wire, device_priv, wire.operator_cert.subject_key);
  if (opened.status != protocol::OpenStatus::Ok) {
    std::printf("REJECTED: package %s\n",
                protocol::open_status_name(opened.status));
    return 1;
  }
  std::printf("ACCEPTED: '%s' seq %llu, %zu instructions, graph %zu bits,"
              " hash param 0x%08x\n",
              opened.payload->binary.name.c_str(),
              (unsigned long long)opened.payload->sequence,
              opened.payload->binary.text.size(),
              opened.payload->graph.size_bits(), opened.payload->hash_param);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args = Args::parse(argc, argv);
    if (args.positional.empty()) {
      std::fprintf(stderr,
                   "usage: sdmmon-protocol <keygen|certify|package|install>"
                   " [flags]\n");
      return 2;
    }
    const std::string& cmd = args.positional[0];
    if (cmd == "keygen") return cmd_keygen(args);
    if (cmd == "certify") return cmd_certify(args);
    if (cmd == "package") return cmd_package(args);
    if (cmd == "install") return cmd_install(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdmmon-protocol: %s\n", e.what());
    return 1;
  }
}
