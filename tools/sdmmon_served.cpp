// sdmmon-served: stand up one simulated NP device behind the RPC
// control-plane server and keep its MPSoC under synthetic packet load
// while operator sessions connect over TCP. A self-contained world --
// manufacturer, operator certificate, device -- is derived from --seed,
// so every run is reproducible.
//
//   sdmmon-served --port 4711 --cores 4 --duration-s 30
//   sdmmon-served --selftest            # serve + exercise one client
//
// With --port 0 (default) an ephemeral port is chosen and printed.
// Without --duration-s or --selftest the server runs until stdin closes.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "isa/assembler.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/workload.hpp"
#include "tool_util.hpp"

namespace {

using namespace sdmmon;
using sdmmon::tools::Args;

// Benign forwarding app so the pumped traffic exercises the monitored
// cores (same echo handler the test suites use).
constexpr const char* kEchoApp = R"(
main:
    li $t0, 0xFFFF0000
    lw $t1, 0($t0)        # len
    beqz $t1, drop
    li $t2, 0x30000       # src
    li $t3, 0x40000       # dst
    move $t4, $zero       # i
copy:
    addu $t5, $t2, $t4
    lbu $t6, 0($t5)
    addu $t5, $t3, $t4
    sb $t6, 0($t5)
    addiu $t4, $t4, 1
    bne $t4, $t1, copy
    li $t0, 0xFFFF0004    # commit
    sw $t1, 0($t0)
drop:
    jr $ra
)";

int run_selftest(std::uint16_t port, protocol::NetworkOperator& op,
                 const isa::Program& binary,
                 protocol::NetworkProcessorDevice& device,
                 std::uint64_t now) {
  auto client = rpc::RpcClient::connect(port);
  if (!client) {
    std::fprintf(stderr, "selftest: connect failed\n");
    return 1;
  }
  std::printf("selftest: connected to device '%s'\n",
              client->device_name().c_str());

  auto pong = client->ping(42);
  if (!pong || pong->nonce != 42) {
    std::fprintf(stderr, "selftest: ping failed\n");
    return 1;
  }
  std::printf("selftest: ping ok (packets=%llu sessions=%llu)\n",
              (unsigned long long)pong->packets,
              (unsigned long long)pong->sessions);

  std::string detail;
  if (!client->authenticate(op.certificate().serialize(),
                            op.sign(client->auth_message()), now, &detail)) {
    std::fprintf(stderr, "selftest: auth failed: %s\n", detail.c_str());
    return 1;
  }
  std::printf("selftest: authenticated\n");

  protocol::WirePackage wire = op.program_device(binary, device.public_key());
  auto status = client->install(rpc::InstallPurpose::Rotate,
                                wire.serialize(), now);
  if (!status) {
    std::fprintf(stderr, "selftest: install failed: %s\n",
                 client->last_error().c_str());
    return 1;
  }
  std::printf("selftest: install -> %s\n",
              protocol::install_status_name(
                  static_cast<protocol::InstallStatus>(*status)));

  auto metrics = client->metrics();
  if (!metrics || metrics->find("rpc.requests") == std::string::npos) {
    std::fprintf(stderr, "selftest: metrics snapshot missing rpc.*\n");
    return 1;
  }
  std::printf("selftest: metrics snapshot %zu bytes\n", metrics->size());

  auto journal = client->journal(0);
  if (!journal) {
    std::fprintf(stderr, "selftest: journal poll failed\n");
    return 1;
  }
  std::printf("selftest: journal %zu events (next cursor %llu)\n",
              journal->events.size(),
              (unsigned long long)journal->next_cursor);

  client->goodbye();
  std::printf("selftest: ok\n");
  return 0;
}

int run(const Args& args) {
  const std::string seed = args.get_or("seed", "served");
  const std::size_t cores = std::stoul(args.get_or("cores", "4"));
  const std::size_t bits = std::stoul(args.get_or("bits", "1024"));
  const auto port =
      static_cast<std::uint16_t>(std::stoul(args.get_or("port", "0")));
  const std::uint64_t duration_s =
      std::stoull(args.get_or("duration-s", "0"));
  const bool selftest = args.has("selftest");
  const std::uint64_t now = 1'000'000;

  // The three-entity world, derived from the seed.
  protocol::Manufacturer mfg("manufacturer", bits,
                             crypto::Drbg(seed + "-mfg"));
  protocol::NetworkOperator op("operator", bits, crypto::Drbg(seed + "-op"));
  op.accept_certificate(
      mfg.certify_operator("operator", op.public_key(), 0, now * 4));
  auto device = mfg.provision_device("np0", cores);

  // Pre-install the echo app so pumped traffic is meaningful from the
  // first packet; later installs arrive over RPC.
  isa::Program binary = isa::assemble(kEchoApp);
  protocol::WirePackage first =
      op.program_device(binary, device->public_key());
  protocol::InstallStatus installed =
      device->install_bytes(first.serialize(), now);
  if (installed != protocol::InstallStatus::Ok) {
    std::fprintf(stderr, "initial install failed: %s\n",
                 protocol::install_status_name(installed));
    return 1;
  }

  obs::Registry registry;
  rpc::DeviceHost host(*device, registry);
  rpc::ServerOptions options;
  options.port = port;
  options.challenge_seed = seed + "-challenge";
  rpc::RpcServer server(host, mfg.public_key(), options);
  if (!server.start()) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", (unsigned)port);
    return 1;
  }
  std::printf("serving device 'np0' (%zu cores) on 127.0.0.1:%u\n", cores,
              (unsigned)server.port());
  std::fflush(stdout);

  // Data-plane load: pump deterministic mixed traffic in batches until
  // asked to stop, yielding between batches so control requests never
  // starve behind the device lock.
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    protocol::MixedWorkloadConfig config;
    config.seed = 0x5EED;
    protocol::MixedWorkload workload(config);
    std::uint64_t index = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<protocol::WorkItem> batch = workload.generate(index, 256);
      host.pump(batch);
      index += batch.size();
      std::this_thread::yield();
    }
  });

  int rc = 0;
  if (selftest) {
    rc = run_selftest(server.port(), op, binary, *device, now);
  } else if (duration_s > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  } else {
    // Serve until stdin closes (Ctrl-D or the parent closing the pipe).
    std::printf("serving until stdin closes...\n");
    std::fflush(stdout);
    for (int c = std::getchar(); c != EOF; c = std::getchar()) {
    }
  }

  stop.store(true, std::memory_order_release);
  pump.join();
  server.stop();
  std::printf("served %llu sessions, pumped %llu packets\n",
              (unsigned long long)server.sessions_served(),
              (unsigned long long)host.packets());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Args::parse(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdmmon-served: %s\n", e.what());
    return 1;
  }
}
