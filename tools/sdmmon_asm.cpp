// sdmmon-asm: assemble a .s source file into a program image.
//
//   sdmmon-asm prog.s --out prog.img [--name myapp] [--list]
#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "tool_util.hpp"

int main(int argc, char** argv) {
  using namespace sdmmon;
  try {
    tools::Args args = tools::Args::parse(argc, argv);
    if (args.positional.size() != 1) {
      std::fprintf(stderr,
                   "usage: sdmmon-asm <source.s> --out <image> [--name N]"
                   " [--list]\n");
      return 2;
    }
    std::string source = tools::read_text_file(args.positional[0]);
    isa::AsmOptions options;
    options.name = args.get_or("name", args.positional[0]);
    isa::Program program = isa::assemble(source, options);

    const std::string out = args.get("out");
    tools::write_file(out, program.serialize());
    std::printf("%s: %zu instructions, %zu data bytes, entry 0x%08x -> %s\n",
                program.name.c_str(), program.text.size(),
                program.data.size(), program.entry, out.c_str());
    if (args.has("list")) {
      std::printf("%s", isa::disassemble_program(program).c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdmmon-asm: %s\n", e.what());
    return 1;
  }
}
