#!/usr/bin/env bash
# Documentation consistency checker (the CI "docs" job). Grep-based on
# purpose: no dependencies beyond coreutils + grep, so it runs anywhere
# the repo checks out.
#
# Checks
#   1. Intra-repo markdown links. Every [text](relative/path) in a
#      tracked *.md file must resolve to an existing file or directory
#      (anchors and external http(s)/mailto links are skipped).
#   2. Observability catalog. Every metric-name constant in
#      src/obs/names.hpp and every public class/struct declared in a
#      src/obs header must be mentioned in docs/OBSERVABILITY.md -- the
#      catalog cannot silently drift from the code.
#   3. Bench JSON schema (optional). With `--bench-json DIR [MIN]`,
#      every BENCH_*.json in DIR must have the shape documented in
#      docs/BENCHMARKS.md ({"bench":...,"schema":1,...,"rows":[...]})
#      and at least MIN (default 3) such files must be present.
#   4. Bench catalog (optional, `--strict`). Every committed baseline
#      bench/baselines/BENCH_*.json must be named in docs/BENCHMARKS.md,
#      and every bench binary registered in bench/CMakeLists.txt must
#      have a `### \`<name>\`` row there -- a new bench or baseline
#      cannot land undocumented. Also rejects stray BENCH_*.json reports
#      outside bench/baselines/ and build trees (accidental commits of
#      local bench runs), and -- back in check 2 -- stale metric names
#      and EventKind rows lingering in OBSERVABILITY.md after the code
#      retired them.
#
# Usage:  tools/check_docs.sh [--strict] [--bench-json DIR [MIN]]
# Exit:   0 when every check passes, 1 otherwise (all failures listed).
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
err() { printf 'check_docs: %s\n' "$*" >&2; fail=1; }

strict=0
bench_dir=""
bench_min=3
while [ $# -gt 0 ]; do
  case "$1" in
    --strict)
      strict=1
      shift ;;
    --bench-json)
      bench_dir="${2:?--bench-json needs a directory}"
      shift 2
      case "${1:-}" in
        ''|-*) ;;
        *) bench_min="$1"; shift ;;
      esac ;;
    *)
      err "unknown argument: $1"
      shift ;;
  esac
done

# ---- 1. intra-repo markdown links -----------------------------------
# Source docs only; generated/build trees and external references are
# out of scope.
md_files=$(find "$repo" -name '*.md' \
  -not -path '*/build*' -not -path '*/.git/*' -not -path '*/related/*')

link_failures="$(mktemp)"
trap 'rm -f "$link_failures"' EXIT
for md in $md_files; do
  dir="$(dirname "$md")"
  # Extract every ](target) occurrence; tolerate several links per line.
  grep -o '](\([^)]*\))' "$md" 2>/dev/null | sed 's/^](\(.*\))$/\1/' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path="${target%%#*}"            # strip in-page anchor
    [ -z "$path" ] && continue
    case "$path" in
      /*) resolved="$repo$path" ;;  # repo-absolute
      *)  resolved="$dir/$path" ;;  # relative to the doc
    esac
    if [ ! -e "$resolved" ]; then
      printf 'check_docs: broken link in %s: (%s)\n' \
        "${md#"$repo"/}" "$target" >&2
      echo broken >> "$link_failures"
    fi
  done
done
if [ -s "$link_failures" ]; then
  fail=1
fi

# ---- 2. observability catalog covers src/obs ------------------------
catalog="$repo/docs/OBSERVABILITY.md"
if [ ! -f "$catalog" ]; then
  err "missing docs/OBSERVABILITY.md"
else
  # Metric names: every quoted string constant in names.hpp.
  for name in $(grep -o '"[a-z0-9_.]*"' "$repo/src/obs/names.hpp" |
                tr -d '"'); do
    grep -qF "$name" "$catalog" ||
      err "metric '$name' (src/obs/names.hpp) missing from OBSERVABILITY.md"
  done
  # Public types: top-level class/struct declarations in obs headers.
  for sym in $(grep -hE '^(class|struct) [A-Za-z_]+' "$repo"/src/obs/*.hpp |
               awk '{print $2}' | sort -u); do
    grep -qE "\\b$sym\\b" "$catalog" ||
      err "public symbol '$sym' (src/obs) missing from OBSERVABILITY.md"
  done
  # Event kinds: every enumerator journaled must be documented.
  for kind in $(sed -n '/enum class EventKind/,/};/p' \
                  "$repo/src/obs/journal.hpp" |
                grep -oE '^  [A-Za-z]+' | tr -d ' '); do
    grep -qE "\\b$kind\\b" "$catalog" ||
      err "EventKind::$kind missing from OBSERVABILITY.md"
  done
  # Reverse check (--strict): every backticked metric name in the
  # catalog must still exist in names.hpp, so retired metrics cannot
  # linger in the docs. Example per-core suffixed forms ("...packets.3")
  # are reduced to their registered base name first.
  if [ "$strict" -eq 1 ]; then
    for doc_name in $(grep -oE '`(np|fleet|rpc)\.[a-z0-9_.]+`' "$catalog" |
                      tr -d '\`' | sed 's/\.[0-9]*$//' | sort -u); do
      grep -qF "\"$doc_name\"" "$repo/src/obs/names.hpp" ||
        err "metric '$doc_name' in OBSERVABILITY.md no longer exists in src/obs/names.hpp"
    done
    # Reverse check for the event-journal table: every `kebab` | `Kind`
    # row in the catalog must name a live EventKind enumerator, so
    # retired kinds cannot linger in the docs either.
    kinds="$(sed -n '/enum class EventKind/,/};/p' \
               "$repo/src/obs/journal.hpp" |
             grep -oE '^  [A-Za-z]+' | tr -d ' ')"
    for doc_kind in $(grep -oE '^\| `[a-z-]+` \| `[A-Za-z]+` \|' "$catalog" |
                      awk -F'\`' '$4 != "EventKind" {print $4}' |
                      sort -u); do
      printf '%s\n' "$kinds" | grep -qx "$doc_kind" ||
        err "EventKind '$doc_kind' in OBSERVABILITY.md no longer exists in src/obs/journal.hpp"
    done
  fi
fi

# ---- 3. bench JSON schema --------------------------------------------
if [ -n "$bench_dir" ]; then
  count=0
  for json in "$bench_dir"/BENCH_*.json; do
    [ -e "$json" ] || break
    count=$((count + 1))
    base="$(basename "$json")"
    name="${base#BENCH_}"; name="${name%.json}"
    grep -qF "\"bench\":\"$name\"" "$json" ||
      err "$base: missing or mismatched \"bench\" field"
    grep -qF '"schema":1' "$json" ||
      err "$base: missing \"schema\":1"
    grep -qF '"meta":{' "$json" ||
      err "$base: missing \"meta\" object"
    grep -qF '"rows":[{' "$json" ||
      err "$base: missing or empty \"rows\" array"
    # Well-formedness, when a JSON parser is on hand (CI images have
    # python3; the check degrades to the greps above without it).
    if command -v python3 >/dev/null 2>&1; then
      python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$json" \
        2>/dev/null || err "$base: not valid JSON"
    fi
  done
  if [ "$count" -lt "$bench_min" ]; then
    err "only $count BENCH_*.json files in $bench_dir (need >= $bench_min)"
  fi
fi

# ---- 4. bench catalog (--strict) -------------------------------------
if [ "$strict" -eq 1 ]; then
  benchmd="$repo/docs/BENCHMARKS.md"
  if [ ! -f "$benchmd" ]; then
    err "missing docs/BENCHMARKS.md"
  else
    # Every committed baseline report must be named in the catalog.
    for json in "$repo"/bench/baselines/BENCH_*.json; do
      [ -e "$json" ] || continue
      base="$(basename "$json")"
      name="${base#BENCH_}"; name="${name%.json}"
      grep -q "$name" "$benchmd" ||
        err "baseline $base not named in docs/BENCHMARKS.md"
    done
    # Every registered bench binary must have a catalog row.
    for target in $(grep -oE '^sdmmon_add_bench\([a-z0-9_]+' \
                      "$repo/bench/CMakeLists.txt" |
                    sed 's/sdmmon_add_bench(//'); do
      grep -qF "\`$target\`" "$benchmd" ||
        err "bench '$target' (bench/CMakeLists.txt) has no row in docs/BENCHMARKS.md"
    done
  fi
  # Bench reports live ONLY under bench/baselines/ (committed reference
  # runs) or inside build trees (fresh local runs); a BENCH_*.json
  # anywhere else is a stray accidentally committed from a bench run.
  for stray in $(find "$repo" -name 'BENCH_*.json' \
                   -not -path "$repo/bench/baselines/*" \
                   -not -path '*/build*' -not -path '*/.git/*'); do
    err "stray bench report ${stray#"$repo"/} (reports belong in bench/baselines/ or a build tree)"
  done
fi

if [ "$fail" -eq 0 ]; then
  echo "check_docs: all checks passed"
fi
exit "$fail"
