#!/usr/bin/env bash
# Bench regression gate. Compares the BENCH_*.json reports from a fresh
# bench run against the committed baselines in bench/baselines/ and
# fails when any throughput-class figure fell below THRESHOLD times its
# baseline value (default 0.75, i.e. a >25% regression).
#
# Matching rules
#   * Reports pair by filename (BENCH_<name>.json).
#   * Rows pair by their first string-valued field (the row key, e.g.
#     "app"); rows without a string field pair by position.
#   * Only higher-is-better fields are compared: names matching
#     kpps / mpps / minstr_s / _per_s / throughput / speedup /
#     pkts_per_rollback_byte (more packets per byte of rollback work
#     means cheaper dirty-page snapshots).
#     Latency- and size-class fields are deliberately ignored -- the
#     gate exists to catch throughput regressions, not to freeze every
#     number in place.
#
# Quick mode: when SDMMON_BENCH_QUICK is set (the CI bench-smoke job),
# timing on shared runners is meaningless, so the script only verifies
# the wiring -- every baseline has a fresh counterpart, the reports
# parse, and every baseline throughput field still exists in the fresh
# report. Ratio violations are printed as warnings but do not fail.
# Run without SDMMON_BENCH_QUICK on a quiet machine to enforce ratios.
#
# Usage:  tools/check_bench_regression.sh CURRENT_DIR [BASELINE_DIR] [THRESHOLD]
# Exit:   0 when every check passes, 1 otherwise (all failures listed).
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
current_dir="${1:?usage: check_bench_regression.sh CURRENT_DIR [BASELINE_DIR] [THRESHOLD]}"
baseline_dir="${2:-$repo/bench/baselines}"
threshold="${3:-0.75}"

if [ ! -d "$baseline_dir" ]; then
  echo "check_bench_regression: no baseline directory $baseline_dir" >&2
  exit 1
fi

CURRENT_DIR="$current_dir" BASELINE_DIR="$baseline_dir" \
THRESHOLD="$threshold" python3 - <<'PY'
import json
import os
import re
import sys

current_dir = os.environ["CURRENT_DIR"]
baseline_dir = os.environ["BASELINE_DIR"]
threshold = float(os.environ["THRESHOLD"])
quick = bool(os.environ.get("SDMMON_BENCH_QUICK"))

THROUGHPUT = re.compile(
    r"(kpps|mpps|minstr_s|_per_s|throughput|speedup|pkts_per_rollback_byte)"
)

failures = []
warnings = []
compared = 0


def row_keys(rows):
    # A report may repeat a row name across sections (e.g. an "app"
    # measured by two experiments); disambiguate repeats by occurrence
    # so both sides pair deterministically.
    seen = {}
    keys = []
    for index, row in enumerate(rows):
        key = f"row[{index}]"
        for name, value in row.items():
            if isinstance(value, str):
                key = f"{name}={value}"
                break
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        keys.append(key if occurrence == 0 else f"{key}#{occurrence + 1}")
    return keys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != 1 or not isinstance(doc.get("rows"), list):
        raise ValueError("not a schema-1 BENCH report")
    return doc


def numeric_fields(mapping):
    return {
        key: value
        for key, value in mapping.items()
        if isinstance(value, (int, float))
        and not isinstance(value, bool)
        and THROUGHPUT.search(key)
    }


def compare(name, where, base_fields, cur_fields):
    global compared
    for key, base in base_fields.items():
        if key not in cur_fields:
            failures.append(f"{name} {where}: field '{key}' missing from fresh report")
            continue
        compared += 1
        if base <= 0:
            continue
        ratio = cur_fields[key] / base
        if ratio < threshold:
            msg = (
                f"{name} {where}: {key} regressed to {ratio:.2f}x of baseline "
                f"({cur_fields[key]:.4g} vs {base:.4g}, floor {threshold}x)"
            )
            (warnings if quick else failures).append(msg)


baselines = sorted(
    f for f in os.listdir(baseline_dir)
    if f.startswith("BENCH_") and f.endswith(".json")
)
if not baselines:
    print(f"check_bench_regression: no baselines in {baseline_dir}", file=sys.stderr)
    sys.exit(1)

for fname in baselines:
    name = fname[len("BENCH_"):-len(".json")]
    cur_path = os.path.join(current_dir, fname)
    if not os.path.exists(cur_path):
        failures.append(f"{name}: baseline exists but no fresh {fname} in {current_dir}")
        continue
    try:
        base_doc = load(os.path.join(baseline_dir, fname))
        cur_doc = load(cur_path)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        failures.append(f"{name}: unreadable report ({exc})")
        continue

    compare(name, "meta", numeric_fields(base_doc.get("meta", {})),
            numeric_fields(cur_doc.get("meta", {})))

    cur_rows = dict(zip(row_keys(cur_doc["rows"]), cur_doc["rows"]))
    for key, base_row in zip(row_keys(base_doc["rows"]), base_doc["rows"]):
        cur_row = cur_rows.get(key)
        if cur_row is None:
            failures.append(f"{name}: baseline row '{key}' missing from fresh report")
            continue
        compare(name, key, numeric_fields(base_row), numeric_fields(cur_row))

for msg in warnings:
    print(f"check_bench_regression: WARN (quick mode, not enforced): {msg}")
for msg in failures:
    print(f"check_bench_regression: FAIL: {msg}", file=sys.stderr)

mode = "quick/wiring" if quick else f"enforcing (floor {threshold}x)"
print(
    f"check_bench_regression: {len(baselines)} baseline report(s), "
    f"{compared} throughput field(s) checked, mode: {mode}"
)
sys.exit(1 if failures else 0)
PY
