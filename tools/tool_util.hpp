// Shared helpers for the command-line tools: file I/O for byte blobs and
// a minimal flag parser (--name value pairs plus positionals).
#ifndef SDMMON_TOOLS_TOOL_UTIL_HPP
#define SDMMON_TOOLS_TOOL_UTIL_HPP

#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sdmmon::tools {

inline util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return util::Bytes((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

inline std::string read_text_file(const std::string& path) {
  util::Bytes raw = read_file(path);
  return std::string(raw.begin(), raw.end());
}

inline void write_file(const std::string& path,
                       std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

/// Parsed command line: flags are "--name value"; everything else is a
/// positional argument in order.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        std::string name = token.substr(2);
        // A flag followed by another flag (or nothing) is boolean.
        if (i + 1 >= argc ||
            std::string_view(argv[i + 1]).rfind("--", 0) == 0) {
          args.flags[name] = "1";
        } else {
          args.flags[name] = argv[++i];
        }
      } else {
        args.positional.push_back(std::move(token));
      }
    }
    return args;
  }

  std::string get(const std::string& name) const {
    auto it = flags.find(name);
    if (it == flags.end()) {
      throw std::runtime_error("missing required flag --" + name);
    }
    return it->second;
  }

  std::string get_or(const std::string& name,
                     const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }

  bool has(const std::string& name) const { return flags.count(name) > 0; }
};

}  // namespace sdmmon::tools

#endif  // SDMMON_TOOLS_TOOL_UTIL_HPP
