#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace sdmmon::crypto {
namespace {

// Key generation is the slow part; share one keypair across tests.
const RsaKeyPair& test_key() {
  static const RsaKeyPair kp = [] {
    Drbg d("rsa-test-key");
    return rsa_generate(1024, d);
  }();
  return kp;
}

TEST(RsaKeygen, KeyInvariants) {
  const auto& kp = test_key();
  EXPECT_EQ(kp.priv.n.bit_length(), 1024u);
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.priv.n);
  EXPECT_EQ(kp.priv.e, BigUint(65537));
  // e*d == 1 mod (p-1)(q-1)
  BigUint phi = (kp.priv.p - BigUint(1)) * (kp.priv.q - BigUint(1));
  EXPECT_EQ(BigUint::modmul(kp.priv.e, kp.priv.d, phi), BigUint(1));
  // CRT components consistent.
  EXPECT_EQ(kp.priv.dp, kp.priv.d % (kp.priv.p - BigUint(1)));
  EXPECT_EQ(BigUint::modmul(kp.priv.q, kp.priv.qinv, kp.priv.p), BigUint(1));
}

TEST(RsaKeygen, DeterministicFromSeed) {
  Drbg a("kg-seed"), b("kg-seed");
  auto k1 = rsa_generate(512, a);
  auto k2 = rsa_generate(512, b);
  EXPECT_EQ(k1.pub.n, k2.pub.n);
}

TEST(RsaKeygen, RejectsTinyOrOddSizes) {
  Drbg d("bad");
  EXPECT_THROW(rsa_generate(64, d), RsaError);
  EXPECT_THROW(rsa_generate(513, d), RsaError);
}

TEST(RsaRawOps, PrivateUndoesPublic) {
  const auto& kp = test_key();
  Drbg d("raw");
  BigUint m = BigUint::from_bytes_be(d.bytes(100));
  BigUint c = rsa_public_op(kp.pub, m);
  EXPECT_EQ(rsa_private_op(kp.priv, c), m);
  // And the other direction (sign-then-verify at the raw level).
  BigUint s = rsa_private_op(kp.priv, m);
  EXPECT_EQ(rsa_public_op(kp.pub, s), m);
}

TEST(RsaRawOps, RejectsOutOfRange) {
  const auto& kp = test_key();
  EXPECT_THROW(rsa_public_op(kp.pub, kp.pub.n), RsaError);
  EXPECT_THROW(rsa_private_op(kp.priv, kp.priv.n + BigUint(1)), RsaError);
}

TEST(RsaEncrypt, RoundTrip) {
  const auto& kp = test_key();
  Drbg d("enc");
  util::Bytes msg = util::bytes_of("K_sym for the install package");
  util::Bytes ct = rsa_encrypt(kp.pub, msg, d);
  EXPECT_EQ(ct.size(), kp.pub.modulus_bytes());
  auto pt = rsa_decrypt(kp.priv, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaEncrypt, RandomizedPadding) {
  const auto& kp = test_key();
  Drbg d("enc2");
  util::Bytes msg = util::bytes_of("same message");
  util::Bytes c1 = rsa_encrypt(kp.pub, msg, d);
  util::Bytes c2 = rsa_encrypt(kp.pub, msg, d);
  EXPECT_NE(c1, c2);  // PKCS#1 v1.5 padding is randomized
  EXPECT_EQ(rsa_decrypt(kp.priv, c1), rsa_decrypt(kp.priv, c2));
}

TEST(RsaEncrypt, MaxLengthMessage) {
  const auto& kp = test_key();
  Drbg d("enc3");
  util::Bytes msg(kp.pub.modulus_bytes() - 11, 0x5A);
  util::Bytes ct = rsa_encrypt(kp.pub, msg, d);
  EXPECT_EQ(rsa_decrypt(kp.priv, ct), msg);
}

TEST(RsaEncrypt, TooLongThrows) {
  const auto& kp = test_key();
  Drbg d("enc4");
  util::Bytes msg(kp.pub.modulus_bytes() - 10, 0);
  EXPECT_THROW(rsa_encrypt(kp.pub, msg, d), RsaError);
}

TEST(RsaDecrypt, RejectsTamperedCiphertext) {
  const auto& kp = test_key();
  Drbg d("tamper");
  util::Bytes ct = rsa_encrypt(kp.pub, util::bytes_of("secret"), d);
  ct[10] ^= 0x01;
  auto pt = rsa_decrypt(kp.priv, ct);
  // Either padding fails (nullopt) or the recovered bytes differ.
  if (pt) EXPECT_NE(*pt, util::bytes_of("secret"));
}

TEST(RsaDecrypt, RejectsWrongLength) {
  const auto& kp = test_key();
  EXPECT_EQ(rsa_decrypt(kp.priv, util::Bytes(10, 0)), std::nullopt);
}

TEST(RsaSign, VerifyAccepts) {
  const auto& kp = test_key();
  util::Bytes msg = util::bytes_of("binary || monitoring graph || hash param");
  util::Bytes sig = rsa_sign(kp.priv, msg);
  EXPECT_EQ(sig.size(), kp.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig));
}

TEST(RsaSign, VerifyRejectsModifiedMessage) {
  const auto& kp = test_key();
  util::Bytes msg = util::bytes_of("original");
  util::Bytes sig = rsa_sign(kp.priv, msg);
  EXPECT_FALSE(rsa_verify(kp.pub, util::bytes_of("0riginal"), sig));
}

TEST(RsaSign, VerifyRejectsModifiedSignature) {
  const auto& kp = test_key();
  util::Bytes msg = util::bytes_of("message");
  util::Bytes sig = rsa_sign(kp.priv, msg);
  sig[0] ^= 0x80;
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig));
  EXPECT_FALSE(rsa_verify(kp.pub, msg, util::Bytes(sig.size() - 1, 0)));
}

TEST(RsaSign, VerifyRejectsWrongKey) {
  const auto& kp = test_key();
  Drbg d("other-key");
  auto other = rsa_generate(512, d);
  util::Bytes msg = util::bytes_of("message");
  util::Bytes sig = rsa_sign(kp.priv, msg);
  EXPECT_FALSE(rsa_verify(other.pub, msg, sig));
}

TEST(RsaSerialize, PublicKeyRoundTrip) {
  const auto& kp = test_key();
  auto bytes = kp.pub.serialize();
  auto back = RsaPublicKey::deserialize(bytes);
  EXPECT_EQ(back, kp.pub);
  EXPECT_EQ(back.fingerprint(), kp.pub.fingerprint());
}

TEST(RsaSerialize, PrivateKeyRoundTrip) {
  const auto& kp = test_key();
  auto bytes = kp.priv.serialize();
  auto back = RsaPrivateKey::deserialize(bytes);
  EXPECT_EQ(back.n, kp.priv.n);
  EXPECT_EQ(back.d, kp.priv.d);
  EXPECT_EQ(back.qinv, kp.priv.qinv);
  // Restored key still works.
  util::Bytes msg = util::bytes_of("still works");
  EXPECT_TRUE(rsa_verify(kp.pub, msg, rsa_sign(back, msg)));
}

TEST(RsaSerialize, FingerprintDistinguishesKeys) {
  const auto& kp = test_key();
  Drbg d("fp");
  auto other = rsa_generate(512, d);
  EXPECT_NE(kp.pub.fingerprint(), other.pub.fingerprint());
}

}  // namespace
}  // namespace sdmmon::crypto
