// Coverage for the small utility surfaces: bit helpers, the logger, the
// crypto op counters, and the Nios timing model arithmetic.
#include <gtest/gtest.h>

#include "crypto/opcount.hpp"
#include "crypto/sha256.hpp"
#include "sdmmon/timing.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

namespace sdmmon {
namespace {

TEST(BitOps, PopcountAndHamming) {
  EXPECT_EQ(util::popcount32(0), 0);
  EXPECT_EQ(util::popcount32(0xFFFFFFFF), 32);
  EXPECT_EQ(util::popcount32(0x80000001), 2);
  EXPECT_EQ(util::hamming32(0, 0xF), 4);
  EXPECT_EQ(util::hamming32(0xAAAA5555, 0xAAAA5555), 0);
}

TEST(BitOps, Rotations) {
  EXPECT_EQ(util::rotl32(0x80000000, 1), 1u);
  EXPECT_EQ(util::rotr32(1, 1), 0x80000000u);
  EXPECT_EQ(util::rotl32(0x12345678, 0), 0x12345678u);
  EXPECT_EQ(util::rotl32(util::rotr32(0xDEADBEEF, 7), 7), 0xDEADBEEFu);
}

TEST(BitOps, BitFieldExtraction) {
  EXPECT_EQ(util::bits(0xABCD1234, 0, 4), 0x4u);
  EXPECT_EQ(util::bits(0xABCD1234, 28, 4), 0xAu);
  EXPECT_EQ(util::bits(0xABCD1234, 8, 8), 0x12u);
  EXPECT_EQ(util::bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
}

TEST(BitOps, WithBit) {
  EXPECT_EQ(util::with_bit(0, 5, true), 32u);
  EXPECT_EQ(util::with_bit(0xFF, 0, false), 0xFEu);
  EXPECT_EQ(util::with_bit(0xFF, 3, true), 0xFFu);
}

TEST(Log, LevelGating) {
  util::LogLevel original = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);
  // These must be no-ops (no observable assertion, but they exercise the
  // gated path and the formatting path).
  util::log_debug("debug ", 1);
  util::log_info("info ", 2);
  util::set_log_level(util::LogLevel::Off);
  util::log_error("suppressed entirely");
  util::set_log_level(original);
}

TEST(OpCount, ScopeDeltaIsolatesWork) {
  crypto::OpScope outer;
  (void)crypto::Sha256::hash("before");
  crypto::OpCounters mid = outer.delta();
  {
    crypto::OpScope inner;
    (void)crypto::Sha256::hash("inside");
    EXPECT_EQ(inner.delta().sha256_blocks, 1u);
  }
  EXPECT_GE(outer.delta().sha256_blocks, mid.sha256_blocks + 1);
}

TEST(OpCount, SubtractionOperator) {
  crypto::OpCounters a{100, 50, 20, 3};
  crypto::OpCounters b{40, 20, 5, 1};
  crypto::OpCounters d = a - b;
  EXPECT_EQ(d.limb_muls, 60u);
  EXPECT_EQ(d.aes_blocks, 30u);
  EXPECT_EQ(d.sha256_blocks, 15u);
  EXPECT_EQ(d.modexps, 2u);
}

TEST(NiosTiming, ComputeIsLinearInOps) {
  protocol::NiosTimingModel model;
  crypto::OpCounters one{1000, 100, 10, 0};
  crypto::OpCounters two{2000, 200, 20, 0};
  EXPECT_NEAR(model.compute_seconds(two), 2 * model.compute_seconds(one),
              1e-12);
  EXPECT_GT(model.step_seconds(one), model.compute_seconds(one));
}

TEST(NiosTiming, DownloadScalesWithSize) {
  protocol::NiosTimingModel model;
  double small = model.download_seconds(10'000);
  double large = model.download_seconds(1'000'000);
  EXPECT_GT(large, small);
  // RTT floor for tiny transfers.
  EXPECT_GE(model.download_seconds(0), model.config().download_rtt_s);
}

TEST(NiosTiming, PaperCalibrationPoints) {
  // The calibration must keep hitting Table 2's anchor rows (within 5%):
  // a 2048-bit CRT decrypt ~ 8.74 s; these op counts come from measuring
  // our own implementation (see bench/table2_security_ops).
  protocol::NiosTimingModel model;
  crypto::OpCounters rsa_decrypt_ops;
  rsa_decrypt_ops.limb_muls = 1'573'000;  // measured for RSA-2048 CRT
  double t = model.step_seconds(rsa_decrypt_ops);
  EXPECT_NEAR(t, 8.74, 0.45);
}

}  // namespace
}  // namespace sdmmon
