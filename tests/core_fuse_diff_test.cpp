// Differential testing of the block-fused execution tier
// (docs/EXECUTION.md): the word-at-a-time interpreter is the permanent
// oracle, the predecode-only core is the middle tier, and the fused
// core -- superop runs through Core::exec_fused_run, block-granular hash
// slices through HardwareMonitor::advance -- must be bit-identical to
// both: final core state, per-packet results, cumulative core stats,
// AND cumulative monitor stats (instructions_checked /
// state_size_accum catch over- or under-feeding the monitor even when
// verdicts agree). Covers random programs, attack traffic that
// mismatches *inside* a fused run, mid-stream reinstalls, all three
// recovery policies, and the self-modifying-store fallback.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/mpsoc.hpp"
#include "support/test_apps.hpp"
#include "util/rng.hpp"

namespace sdmmon::np {
namespace {

// The three execution tiers under test, applied to a Core (or the Core
// inside a MonitoredCore) before running traffic.
enum class Tier { Interpret, Predecode, Fused };

constexpr Tier kTiers[] = {Tier::Interpret, Tier::Predecode, Tier::Fused};

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Interpret: return "interpret";
    case Tier::Predecode: return "predecode";
    case Tier::Fused: return "fused";
  }
  return "?";
}

void select_tier(Core& core, Tier tier) {
  core.set_predecode_enabled(tier != Tier::Interpret);
  core.set_block_fuse_enabled(tier == Tier::Fused);
}

// Random text biased toward long pure runs (the fused tier's fast path)
// but still containing every run-breaking construct: branches/jumps
// (block ends), loads/stores (non-pure, note_store), overflow-trapping
// Add/Sub/Addi, jr $ra, and raw undecodable words.
isa::Program random_program(util::Rng& rng) {
  const std::size_t n = 16 + rng.below(48);
  isa::Program p;
  p.name = "fuse-fuzz";
  p.text_base = 0;
  p.entry = 0;
  p.text.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick = rng.below(100);
    const int rd = static_cast<int>(8 + rng.below(16));  // $t0..$s7
    const int rs = static_cast<int>(8 + rng.below(16));
    const int rt = static_cast<int>(8 + rng.below(16));
    if (pick < 7) {
      static constexpr isa::Op kBranch[] = {isa::Op::Beq, isa::Op::Bne,
                                            isa::Op::Blez, isa::Op::Bgtz};
      const std::int32_t off =
          static_cast<std::int32_t>(rng.below(12)) - 4;  // [-4, 8) words
      p.text.push_back(isa::encode(
          isa::make_branch(kBranch[rng.below(4)], rs, rt, off)));
    } else if (pick < 10) {
      p.text.push_back(isa::encode(isa::make_jump(
          isa::Op::J, static_cast<std::uint32_t>(rng.below(n)))));
    } else if (pick < 13) {
      p.text.push_back(isa::encode(isa::make_rtype(isa::Op::Jr, 0, 31, 0)));
    } else if (pick < 21) {
      static constexpr isa::Op kMem[] = {isa::Op::Lw,  isa::Op::Lb,
                                         isa::Op::Lbu, isa::Op::Sw,
                                         isa::Op::Sb,  isa::Op::Sh};
      const std::int32_t imm =
          static_cast<std::int32_t>(rng.below(0x100)) - 0x80;
      p.text.push_back(
          isa::encode(isa::make_itype(kMem[rng.below(6)], rt, rs, imm)));
    } else if (pick < 27) {
      // Trapping arithmetic: pure-run breakers that are NOT block ends.
      static constexpr isa::Op kTrapArith[] = {isa::Op::Add, isa::Op::Sub};
      p.text.push_back(isa::encode(
          isa::make_rtype(kTrapArith[rng.below(2)], rd, rs, rt)));
    } else if (pick < 45) {
      static constexpr isa::Op kImm[] = {isa::Op::Addiu, isa::Op::Ori,
                                         isa::Op::Andi,  isa::Op::Xori,
                                         isa::Op::Slti,  isa::Op::Lui};
      const std::int32_t imm =
          static_cast<std::int32_t>(rng.below(0x10000)) - 0x8000;
      p.text.push_back(
          isa::encode(isa::make_itype(kImm[rng.below(6)], rt, rs, imm)));
    } else if (pick < 92) {
      static constexpr isa::Op kPure[] = {
          isa::Op::Addu, isa::Op::Subu, isa::Op::And,  isa::Op::Or,
          isa::Op::Xor,  isa::Op::Nor,  isa::Op::Slt,  isa::Op::Sltu,
          isa::Op::Mult, isa::Op::Multu, isa::Op::Div, isa::Op::Divu,
          isa::Op::Mfhi, isa::Op::Mflo};
      p.text.push_back(
          isa::encode(isa::make_rtype(kPure[rng.below(14)], rd, rs, rt)));
    } else if (pick < 96) {
      p.text.push_back(isa::encode(
          isa::make_shift(isa::Op::Sll, rd, rt,
                          static_cast<int>(rng.below(32)))));
    } else {
      // Raw word: often undecodable, sometimes accidentally valid.
      p.text.push_back(rng.next_u32());
    }
  }
  return p;
}

void load_tier(Core& core, Tier tier, const isa::Program& p,
               const std::shared_ptr<const CompiledProgram>& compiled,
               const std::vector<std::uint32_t>& seeds,
               std::uint64_t watchdog) {
  select_tier(core, tier);
  core.load_program(p, compiled);
  core.set_watchdog_budget(watchdog);
  for (int r = 1; r < 32; ++r) {
    if (r == 31) continue;  // keep the return sentinel
    core.set_reg(r, seeds[static_cast<std::size_t>(r)]);
  }
}

void expect_same_state(const Core& a, const Core& b, Tier tier) {
  ASSERT_EQ(a.pc(), b.pc()) << tier_name(tier);
  ASSERT_EQ(a.cycles(), b.cycles()) << tier_name(tier);
  ASSERT_EQ(a.runnable(), b.runnable()) << tier_name(tier);
  for (int r = 0; r < 32; ++r) {
    ASSERT_EQ(a.reg(r), b.reg(r)) << tier_name(tier) << " register " << r;
  }
  const InstrMix& ma = a.instr_mix();
  const InstrMix& mb = b.instr_mix();
  ASSERT_EQ(ma.alu, mb.alu) << tier_name(tier);
  ASSERT_EQ(ma.muldiv, mb.muldiv) << tier_name(tier);
  ASSERT_EQ(ma.load, mb.load) << tier_name(tier);
  ASSERT_EQ(ma.store, mb.store) << tier_name(tier);
  ASSERT_EQ(ma.branch_taken, mb.branch_taken) << tier_name(tier);
  ASSERT_EQ(ma.branch_not_taken, mb.branch_not_taken) << tier_name(tier);
  ASSERT_EQ(ma.jump, mb.jump) << tier_name(tier);
  ASSERT_EQ(ma.trap, mb.trap) << tier_name(tier);
  ASSERT_EQ(a.has_output(), b.has_output()) << tier_name(tier);
  if (a.has_output()) {
    ASSERT_EQ(a.output(), b.output()) << tier_name(tier);
    ASSERT_EQ(a.output_port(), b.output_port()) << tier_name(tier);
  }
}

class FuseDifferentialTest : public ::testing::TestWithParam<int> {};

// 8 seeds x 600 programs, each run end-to-end on all three tiers: the
// fused run() (superop dispatch) must land in exactly the interpreter's
// final state -- registers, cycles, retired mix, last StepInfo.
TEST_P(FuseDifferentialTest, RandomProgramsRunIdenticalAcrossTiers) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x51CAFE + 13);
  for (int trial = 0; trial < 600; ++trial) {
    const isa::Program p = random_program(rng);
    auto compiled =
        CompiledProgram::compile(p, monitor::MerkleTreeHash(0xF05E));
    // Small watchdogs sometimes, so the fused-run budget clamp (a run
    // truncated mid-block by remaining slack) gets exercised.
    const std::uint64_t watchdog =
        rng.below(8) == 0 ? 1 + rng.below(40) : 512;
    std::vector<std::uint32_t> seeds(32);
    for (auto& s : seeds) s = rng.next_u32();
    // And sometimes a max_steps cap that lands inside a pure run.
    const std::uint64_t max_steps = rng.below(4) == 0 ? 1 + rng.below(32)
                                                      : 300;

    Core interp, pre, fused;
    load_tier(interp, Tier::Interpret, p, compiled, seeds, watchdog);
    load_tier(pre, Tier::Predecode, p, compiled, seeds, watchdog);
    load_tier(fused, Tier::Fused, p, compiled, seeds, watchdog);
    ASSERT_FALSE(interp.predecode_live());
    ASSERT_TRUE(pre.predecode_live());
    ASSERT_FALSE(pre.block_fuse_live());
    ASSERT_TRUE(fused.block_fuse_live());

    const StepInfo a = interp.run(max_steps);
    const StepInfo b = pre.run(max_steps);
    const StepInfo c = fused.run(max_steps);
    ASSERT_EQ(a.pc, b.pc) << "trial " << trial;
    ASSERT_EQ(a.pc, c.pc) << "trial " << trial;
    ASSERT_EQ(a.word, c.word) << "trial " << trial;
    ASSERT_EQ(static_cast<int>(a.event), static_cast<int>(c.event))
        << "trial " << trial;
    ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(c.trap))
        << "trial " << trial;
    expect_same_state(interp, pre, Tier::Predecode);
    expect_same_state(interp, fused, Tier::Fused);
    ASSERT_EQ(interp.text_dirty(), fused.text_dirty()) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuseDifferentialTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Monitored packet processing across all three tiers
// ---------------------------------------------------------------------

void expect_same_result(const PacketResult& a, const PacketResult& b,
                        Tier tier, std::size_t packet) {
  ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.output, b.output) << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.output_port, b.output_port)
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.instructions, b.instructions)
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap))
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.monitor_width, b.monitor_width)
      << tier_name(tier) << " packet " << packet;
}

void expect_same_core_and_monitor_stats(const MonitoredCore& a,
                                        const MonitoredCore& b, Tier tier) {
  ASSERT_EQ(a.stats().packets, b.stats().packets) << tier_name(tier);
  ASSERT_EQ(a.stats().forwarded, b.stats().forwarded) << tier_name(tier);
  ASSERT_EQ(a.stats().dropped, b.stats().dropped) << tier_name(tier);
  ASSERT_EQ(a.stats().attacks_detected, b.stats().attacks_detected)
      << tier_name(tier);
  ASSERT_EQ(a.stats().traps, b.stats().traps) << tier_name(tier);
  ASSERT_EQ(a.stats().instructions, b.stats().instructions)
      << tier_name(tier);
  // Monitor stats are the sharpest oracle: advance() feeding one hash
  // too many (or skipping the mismatching hash) diverges here even if
  // every verdict happened to agree.
  const monitor::MonitorStats& ma = a.monitor().stats();
  const monitor::MonitorStats& mb = b.monitor().stats();
  ASSERT_EQ(ma.instructions_checked, mb.instructions_checked)
      << tier_name(tier);
  ASSERT_EQ(ma.mismatches, mb.mismatches) << tier_name(tier);
  ASSERT_EQ(ma.packets_monitored, mb.packets_monitored) << tier_name(tier);
  ASSERT_EQ(ma.state_size_accum, mb.state_size_accum) << tier_name(tier);
}

// 4 apps x 1400 packets (generated + garbage) through full monitored
// cores on each tier: per-packet results, core stats, and monitor stats
// must match the interpreter exactly.
TEST(FuseDifferential, MonitoredVerdictsAndStatsMatchAcrossTiers) {
  const isa::Program apps[] = {
      net::build_ipv4_forward(), net::build_ipv4_cm(), net::build_udp_echo(),
      net::build_firewall({22, 53, 80, 443})};
  util::Rng rng(0xF0E5EED);
  for (const isa::Program& app : apps) {
    monitor::MerkleTreeHash hash(0x4242 + app.text.size());
    auto graph = monitor::extract_graph(app, hash);

    MonitoredCore interp, pre, fused;
    select_tier(interp.core(), Tier::Interpret);
    select_tier(pre.core(), Tier::Predecode);
    select_tier(fused.core(), Tier::Fused);
    for (MonitoredCore* mc : {&interp, &pre, &fused}) {
      mc->install(app, graph,
                  std::make_unique<monitor::MerkleTreeHash>(hash));
    }
    ASSERT_TRUE(fused.core().block_fuse_live());
    ASSERT_FALSE(pre.core().block_fuse_live());

    net::TrafficGenerator gen;
    for (std::size_t i = 0; i < 1400; ++i) {
      util::Bytes packet;
      if (i % 7 == 2) {  // garbage packets: traps and drops
        packet.resize(rng.below(128));
        for (auto& b : packet) b = static_cast<std::uint8_t>(rng.next());
      } else {
        packet = gen.next().packet;
      }
      const PacketResult want = interp.process_packet(packet);
      expect_same_result(want, pre.process_packet(packet), Tier::Predecode,
                         i);
      expect_same_result(want, fused.process_packet(packet), Tier::Fused, i);
    }
    expect_same_core_and_monitor_stats(interp, pre, Tier::Predecode);
    expect_same_core_and_monitor_stats(interp, fused, Tier::Fused);
  }
}

// Attack traffic on the vulnerable app: the foreign packet payload is a
// straight pure run (addiu sled), so the monitor mismatch fires INSIDE
// what would be a fused run if the payload were installed text. The
// diversion happens at jr (outside the artifact => per-op path), and
// the per-packet instruction counts prove the fused core executed
// exactly as many foreign ops before the recovery reset as the oracle.
TEST(FuseDifferential, MismatchMidPureRunMatchesOracle) {
  for (bool enforce : {true, false}) {
    MonitoredCore interp, fused;
    select_tier(interp.core(), Tier::Interpret);
    select_tier(fused.core(), Tier::Fused);
    isa::Program vuln = isa::assemble(testsupport::kVulnApp);
    monitor::MerkleTreeHash hash(0x7E57);
    auto graph = monitor::extract_graph(vuln, hash);
    for (MonitoredCore* mc : {&interp, &fused}) {
      mc->set_enforcement(enforce);
      mc->install(vuln, graph,
                  std::make_unique<monitor::MerkleTreeHash>(hash));
    }
    const util::Bytes attack = testsupport::attack_packet();
    net::TrafficGenerator gen;
    for (int i = 0; i < 100; ++i) {
      const util::Bytes packet = i % 3 == 0 ? attack : gen.next().packet;
      expect_same_result(interp.process_packet(packet),
                         fused.process_packet(packet), Tier::Fused,
                         static_cast<std::size_t>(i));
    }
    expect_same_core_and_monitor_stats(interp, fused, Tier::Fused);
  }
}

// Attack text INSIDE the fused artifact: install an app whose installed
// text ends in a pure sled that the monitoring graph does not expect
// (graph extracted from a truncated program), so advance() mismatches
// partway through a genuinely fused slice.
TEST(FuseDifferential, MismatchInsideFusedInstalledRunMatchesOracle) {
  // Full app: a 6-op pure sled then jr $ra. Graph: extracted from only
  // the first two ops + jr, so the third sled op mismatches.
  isa::Program full = isa::assemble(R"(
main:
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    addiu $t0, $t0, 3
    addiu $t0, $t0, 4
    addiu $t0, $t0, 5
    addiu $t0, $t0, 6
    jr $ra
)");
  isa::Program truncated = full;
  truncated.text.resize(2);
  truncated.text.push_back(
      isa::encode(isa::make_rtype(isa::Op::Jr, 0, 31, 0)));

  monitor::MerkleTreeHash hash(0xBEEF);
  auto graph = monitor::extract_graph(truncated, hash);

  MonitoredCore interp, fused;
  select_tier(interp.core(), Tier::Interpret);
  select_tier(fused.core(), Tier::Fused);
  for (MonitoredCore* mc : {&interp, &fused}) {
    mc->install(full, monitor::CompiledGraph::compile(graph),
                std::make_unique<monitor::MerkleTreeHash>(hash));
  }
  ASSERT_TRUE(fused.core().block_fuse_live());

  const util::Bytes packet(16, 0xAB);
  const PacketResult want = interp.process_packet(packet);
  const PacketResult got = fused.process_packet(packet);
  EXPECT_EQ(static_cast<int>(want.outcome),
            static_cast<int>(PacketOutcome::AttackDetected));
  expect_same_result(want, got, Tier::Fused, 0);
  expect_same_core_and_monitor_stats(interp, fused, Tier::Fused);
}

// Mid-stream reinstall: new hash parameter, new artifacts, same binary;
// then a different binary. The fused tables are rebuilt per install and
// equivalence must hold across every swap.
TEST(FuseDifferential, MidStreamReinstallKeepsEquivalence) {
  MonitoredCore interp, fused;
  select_tier(interp.core(), Tier::Interpret);
  select_tier(fused.core(), Tier::Fused);
  net::TrafficGenerator gen;

  std::uint32_t params[] = {0xAAAA, 0xBBBB};
  isa::Program binaries[] = {net::build_udp_echo(), net::build_ipv4_forward()};
  std::size_t packet = 0;
  for (const isa::Program& app : binaries) {
    for (std::uint32_t param : params) {
      monitor::MerkleTreeHash hash(param);
      auto graph = monitor::extract_graph(app, hash);
      for (MonitoredCore* mc : {&interp, &fused}) {
        mc->install(app, graph,
                    std::make_unique<monitor::MerkleTreeHash>(hash));
      }
      ASSERT_TRUE(fused.core().block_fuse_live());
      for (int i = 0; i < 200; ++i, ++packet) {
        const util::Bytes p = gen.next().packet;
        expect_same_result(interp.process_packet(p),
                           fused.process_packet(p), Tier::Fused, packet);
      }
      expect_same_core_and_monitor_stats(interp, fused, Tier::Fused);
    }
  }
}

// ---------------------------------------------------------------------
// Self-modifying stores: the fused tier must die with the artifact
// ---------------------------------------------------------------------

TEST(FuseDifferential, SelfModifyingStoreKillsFusionAndMatchesOracle) {
  const std::uint32_t patch =
      isa::encode(isa::make_itype(isa::Op::Addiu, 2, 0, 42));
  isa::Program p = isa::assemble(R"(
main:
    la $t0, target
    lui $t1, 0
    ori $t1, $t1, 0
    sw $t1, 0($t0)
target:
    nop
    nop
    nop
    jr $ra
)");
  p.text[2] = isa::encode(isa::make_itype(
      isa::Op::Lui, 9, 0, static_cast<std::int32_t>(patch >> 16)));
  p.text[3] = isa::encode(isa::make_itype(
      isa::Op::Ori, 9, 9, static_cast<std::int32_t>(patch & 0xFFFF)));

  auto compiled = CompiledProgram::compile(p, monitor::MerkleTreeHash(0x5E1F));
  Core interp, fused;
  select_tier(interp, Tier::Interpret);
  select_tier(fused, Tier::Fused);
  interp.load_program(p, compiled);
  fused.load_program(p, compiled);
  ASSERT_TRUE(fused.block_fuse_live());

  const StepInfo a = interp.run(64);
  const StepInfo b = fused.run(64);
  ASSERT_EQ(static_cast<int>(a.event), static_cast<int>(b.event));
  expect_same_state(interp, fused, Tier::Fused);
  EXPECT_EQ(fused.reg(2), 42u) << "patched instruction must have executed";
  EXPECT_TRUE(fused.text_dirty());
  EXPECT_FALSE(fused.predecode_live());
  EXPECT_FALSE(fused.block_fuse_live())
      << "fusion must not survive a dirtied text image";

  // The re-imaging reset() restores text and re-arms BOTH fast tiers
  // from the same shared artifact.
  fused.reset();
  EXPECT_TRUE(fused.predecode_live());
  EXPECT_TRUE(fused.block_fuse_live());
}

// The fuse toggle is independent of predecode and sticky across
// load_program/reset, exactly like set_predecode_enabled.
TEST(FuseDifferential, FuseToggleIsIndependentAndSticky) {
  const isa::Program app = net::build_udp_echo();
  auto compiled =
      CompiledProgram::compile(app, monitor::MerkleTreeHash(0x1357));
  Core core;
  core.set_block_fuse_enabled(false);
  core.load_program(app, compiled);
  EXPECT_TRUE(core.predecode_live());
  EXPECT_FALSE(core.block_fuse_live());
  core.reset();
  EXPECT_FALSE(core.block_fuse_live()) << "toggle must survive reset";
  core.set_block_fuse_enabled(true);
  EXPECT_TRUE(core.block_fuse_live());
  core.set_predecode_enabled(false);
  EXPECT_FALSE(core.block_fuse_live())
      << "fusion rides on the predecoded artifact";
  EXPECT_TRUE(core.block_fuse_enabled()) << "own toggle unchanged";
}

// ---------------------------------------------------------------------
// MPSoC: artifact sharing and recovery-path equivalence
// ---------------------------------------------------------------------

TEST(FuseDifferential, FusedTablesRideTheSharedArtifact) {
  Mpsoc soc(4);
  testsupport::install_all(soc, testsupport::kEchoApp, 0x1D1D);
  const CompiledProgram* shared = soc.core(0).core().compiled_program().get();
  ASSERT_NE(shared, nullptr);
  for (std::size_t c = 1; c < soc.num_cores(); ++c) {
    EXPECT_EQ(soc.core(c).core().compiled_program().get(), shared)
        << "core " << c;
    EXPECT_EQ(soc.core(c).core().compiled_program()->fused_run_data(),
              shared->fused_run_data())
        << "fused tables must be the same allocation, core " << c;
  }
  EXPECT_GT(shared->num_fused_runs(), 0u);
  EXPECT_GT(shared->num_fused_ops(), shared->num_fused_runs());
}

// Attack traffic under every recovery policy: fused engines and the
// interpreter oracle must agree packet-for-packet, including through
// mid-block quarantines (the mismatch that trips the quarantine
// threshold fires inside a pure run) and last-good re-images.
TEST(FuseDifferential, AttackRecoveryPoliciesMatchAcrossTiers) {
  for (RecoveryPolicy policy :
       {RecoveryPolicy::ResetAndContinue, RecoveryPolicy::QuarantineAfterK,
        RecoveryPolicy::ReinstallLastGood}) {
    RecoveryConfig config;
    config.policy = policy;
    config.violation_threshold = 3;
    config.window_packets = 8;
    Mpsoc fused_soc(2, DispatchPolicy::RoundRobin, config);
    Mpsoc oracle_soc(2, DispatchPolicy::RoundRobin, config);
    for (std::size_t c = 0; c < oracle_soc.num_cores(); ++c) {
      select_tier(oracle_soc.core(c).core(), Tier::Interpret);
      select_tier(fused_soc.core(c).core(), Tier::Fused);
    }
    testsupport::install_all(fused_soc, testsupport::kVulnApp, 0x7E57);
    testsupport::install_all(oracle_soc, testsupport::kVulnApp, 0x7E57);

    const util::Bytes attack = testsupport::attack_packet();
    util::Rng rng(0xF5A77AC4 + static_cast<std::uint64_t>(policy));
    net::TrafficGenerator gen;
    for (int i = 0; i < 120; ++i) {
      util::Bytes packet = rng.below(3) == 0 ? attack : gen.next().packet;
      expect_same_result(oracle_soc.process_packet(packet),
                         fused_soc.process_packet(packet), Tier::Fused,
                         static_cast<std::size_t>(i));
    }
    const MpsocStats sa = fused_soc.aggregate_stats();
    const MpsocStats sb = oracle_soc.aggregate_stats();
    EXPECT_EQ(sa.forwarded, sb.forwarded) << recovery_policy_name(policy);
    EXPECT_EQ(sa.attacks_detected, sb.attacks_detected)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.quarantined_cores, sb.quarantined_cores)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.quarantine_events, sb.quarantine_events)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.reinstalls, sb.reinstalls) << recovery_policy_name(policy);
    // Recovery re-images must preserve each core's tier selection.
    for (std::size_t c = 0; c < oracle_soc.num_cores(); ++c) {
      EXPECT_FALSE(oracle_soc.core(c).core().predecode_live());
      EXPECT_TRUE(fused_soc.core(c).core().block_fuse_enabled());
    }
  }
}

}  // namespace
}  // namespace sdmmon::np
