// Unit tests for the observability layer (src/obs): registry
// thread-safety under concurrent writers, histogram bucket-edge
// semantics, journal bounded-capacity eviction, and snapshot-JSON
// round-tripping through the bundled parser.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sdmmon::obs {
namespace {

// ---------------------------------------------------------------------
// Counters / gauges / registry identity
// ---------------------------------------------------------------------

TEST(ObsRegistry, FindOrCreateReturnsSameObject) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g1 = reg.gauge("depth");
  Gauge& g2 = reg.gauge("depth");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = reg.histogram("h", width_buckets());
  Histogram& h2 = reg.histogram("h", instruction_buckets());  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), width_buckets().size());
}

TEST(ObsRegistry, GaugeSetAndSignedAdd) {
  Registry reg;
  Gauge& g = reg.gauge("level");
  g.set(4);
  g.add(-6);
  EXPECT_EQ(g.value(), -2);
}

TEST(ObsRegistry, ConcurrentWritersProduceExactTotals) {
  // The exactness contract: counters are atomics, the registry map is
  // mutex-guarded, so N threads hammering overlapping names lose no
  // updates and find-or-create never duplicates an object.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter& shared = reg.counter("shared");
      Counter& own = reg.counter("own." + std::to_string(t));
      Histogram& hist = reg.histogram("hist", width_buckets());
      for (int i = 0; i < kIters; ++i) {
        shared.add(1);
        own.add(2);
        hist.record(static_cast<std::uint64_t>(i % 40));
        reg.journal().record({EventKind::Trap, static_cast<std::uint64_t>(i),
                              static_cast<std::uint32_t>(t), 0, 0});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("own." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters) * 2);
  }
  const Histogram& hist = reg.histogram("hist", width_buckets());
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < hist.num_buckets(); ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
  EXPECT_EQ(reg.journal().recorded(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------
// Histogram bucket edges
// ---------------------------------------------------------------------

TEST(ObsHistogram, InclusiveUpperBoundsAndOverflowBucket) {
  const std::uint64_t bounds[] = {10, 20, 40};
  Histogram h{std::span<const std::uint64_t>(bounds)};
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow

  h.record(0);    // <= 10
  h.record(10);   // <= 10 (inclusive edge)
  h.record(11);   // <= 20
  h.record(20);   // <= 20 (inclusive edge)
  h.record(40);   // <= 40
  h.record(41);   // overflow
  h.record(1000); // overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 40 + 41 + 1000);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
  const std::uint64_t bad[] = {10, 10, 20};
  EXPECT_THROW(Histogram{std::span<const std::uint64_t>(bad)},
               std::invalid_argument);
  const std::uint64_t bad2[] = {20, 10};
  EXPECT_THROW(Histogram{std::span<const std::uint64_t>(bad2)},
               std::invalid_argument);
}

TEST(ObsHistogram, CanonicalBucketSetsAreSorted) {
  for (auto buckets : {instruction_buckets(), width_buckets(),
                       depth_buckets(), latency_ns_buckets()}) {
    ASSERT_FALSE(buckets.empty());
    for (std::size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_LT(buckets[i - 1], buckets[i]);
    }
  }
}

// ---------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------

TEST(ObsJournal, BoundedCapacityEvictsOldestFirst) {
  EventJournal journal(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.record({EventKind::Install, i, 0, 0, i});
  }
  EXPECT_EQ(journal.recorded(), 10u);
  EXPECT_EQ(journal.evicted(), 6u);

  std::vector<Event> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest-first, and only the newest 4 survive: cycles 6, 7, 8, 9.
    EXPECT_EQ(events[i].cycle, 6u + i);
  }
}

TEST(ObsJournal, RecordedSurvivesClear) {
  EventJournal journal(8);
  journal.record({EventKind::Quarantine, 1, 2, 3, 4});
  journal.record({EventKind::Release, 2, 2, 3, 0});
  journal.clear();
  EXPECT_EQ(journal.events().size(), 0u);
  EXPECT_EQ(journal.recorded(), 2u);  // lifetime total, not current size
}

TEST(ObsJournal, EventKindNamesAreDistinct) {
  const EventKind kinds[] = {
      EventKind::Install,   EventKind::Reinstall, EventKind::Rollback,
      EventKind::Quarantine, EventKind::Release,  EventKind::Offline,
      EventKind::Online,    EventKind::AttackDetected, EventKind::Trap,
      EventKind::CampaignFailure};
  std::vector<std::string> names;
  for (EventKind k : kinds) names.emplace_back(event_kind_name(k));
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

// ---------------------------------------------------------------------
// JSON writer / parser round trip
// ---------------------------------------------------------------------

TEST(ObsJson, WriterEscapesStrings) {
  JsonWriter w;
  w.begin_object().key("s").value("a\"b\\c\n\t\x01").end_object();
  JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\n\t\x01");
}

TEST(ObsJson, ParserKeepsIntegersExact) {
  // Counters can exceed double's 2^53 mantissa; the parser must keep
  // integral lexemes as int64.
  JsonValue v = JsonValue::parse("{\"big\": 9007199254740995}");
  EXPECT_EQ(v.at("big").as_int(), 9007199254740995LL);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
}

TEST(ObsJson, SnapshotJsonRoundTrips) {
  Registry reg(/*journal_capacity=*/16);
  reg.counter("np.core.packets.0").add(41);
  reg.counter("np.core.packets.0").add(1);
  reg.gauge("np.engine.healthy_cores").set(3);
  Histogram& h = reg.histogram("np.core.ndfa_width.0", width_buckets());
  h.record(1);
  h.record(5);
  h.record(100);
  reg.journal().record({EventKind::AttackDetected, 7, 2, 1, 3});
  reg.journal().record({EventKind::Quarantine, 8, 2, 1, 3});

  const std::string text = reg.snapshot_json();
  JsonValue doc = JsonValue::parse(text);

  EXPECT_EQ(doc.at("schema").as_int(), 1);
  EXPECT_EQ(doc.at("counters").at("np.core.packets.0").as_int(), 42);
  EXPECT_EQ(doc.at("gauges").at("np.engine.healthy_cores").as_int(), 3);

  const JsonValue& hist = doc.at("histograms").at("np.core.ndfa_width.0");
  EXPECT_EQ(hist.at("count").as_int(), 3);
  EXPECT_EQ(hist.at("sum").as_int(), 106);
  EXPECT_EQ(hist.at("min").as_int(), 1);
  EXPECT_EQ(hist.at("max").as_int(), 100);
  ASSERT_EQ(hist.at("bounds").size(), width_buckets().size());
  // counts has one extra bucket (overflow), and 100 > max bound (32).
  ASSERT_EQ(hist.at("counts").size(), width_buckets().size() + 1);
  EXPECT_EQ(hist.at("counts")[hist.at("counts").size() - 1].as_int(), 1);

  ASSERT_EQ(doc.at("events").size(), 2u);
  const JsonValue& ev = doc.at("events")[0];
  EXPECT_EQ(ev.at("kind").as_string(),
            event_kind_name(EventKind::AttackDetected));
  EXPECT_EQ(ev.at("cycle").as_int(), 7);
  EXPECT_EQ(ev.at("core").as_int(), 2);
  EXPECT_EQ(ev.at("device").as_int(), 1);
  EXPECT_EQ(ev.at("arg").as_int(), 3);
  EXPECT_EQ(doc.at("events_recorded").as_int(), 2);
  EXPECT_EQ(doc.at("events_evicted").as_int(), 0);

  // The snapshot() struct agrees with the JSON document.
  Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("np.core.packets.0"), 42u);
  EXPECT_EQ(snap.gauges.at("np.engine.healthy_cores"), 3);
  EXPECT_EQ(snap.histograms.at("np.core.ndfa_width.0").count, 3u);
  EXPECT_EQ(snap.events.size(), 2u);
}

TEST(ObsJson, ScopedTimerRecordsIntoSink) {
  Registry reg;
  Histogram& h = reg.histogram("t", latency_ns_buckets());
  {
    ScopedTimerNs timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedTimerNs none(nullptr);  // must be a safe no-op
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace sdmmon::obs
