#!/usr/bin/env bash
# End-to-end CLI workflow: assemble an app, run it, then drive the full
# three-entity protocol through files, including a wrong-device rejection.
# Usage: cli_workflow_test.sh <tools-dir>
set -euo pipefail

TOOLS="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

cat > echo.s <<'EOF'
main:
    li $t0, 0xFFFF0000
    lw $s2, 0($t0)
    beqz $s2, drop
    li $s0, 0x30000
    li $s1, 0x40000
    move $t1, $zero
loop:
    addu $t2, $s0, $t1
    lbu $t3, 0($t2)
    addu $t2, $s1, $t1
    sb $t3, 0($t2)
    addiu $t1, $t1, 1
    bne $t1, $s2, loop
    li $t0, 0xFFFF0004
    sw $s2, 0($t0)
drop:
    jr $ra
EOF

"$TOOLS/sdmmon-asm" echo.s --out echo.img --name echo --list | grep -q "19 instructions"

"$TOOLS/sdmmon-run" echo.img --hex cafebabe --param 0x77 | grep -q "forwarded 1"
"$TOOLS/sdmmon-run" echo.img --gen 20 | grep -q "packets 20"

"$TOOLS/sdmmon-protocol" keygen --seed cli-man --bits 1024 --priv m.key --pub m.pub > /dev/null
"$TOOLS/sdmmon-protocol" keygen --seed cli-op  --bits 1024 --priv op.key --pub op.pub > /dev/null
"$TOOLS/sdmmon-protocol" keygen --seed cli-dev --bits 1024 --priv dev.key --pub dev.pub > /dev/null

"$TOOLS/sdmmon-protocol" certify --issuer-priv m.key --issuer-name acme \
    --subject-pub op.pub --subject-name noc --out op.cert | grep -q "certified 'noc'"

"$TOOLS/sdmmon-protocol" package --operator-priv op.key --cert op.cert \
    --device-pub dev.pub --image echo.img --seed pkg --out pkg.bin | grep -q "sealed 'echo'"

"$TOOLS/sdmmon-protocol" install --device-priv dev.key --root-pub m.pub \
    --pkg pkg.bin | grep -q "ACCEPTED"

# SR4: the same package must not open on a different device's key.
if "$TOOLS/sdmmon-protocol" install --device-priv op.key --root-pub m.pub \
    --pkg pkg.bin > out.txt 2>&1; then
  echo "expected wrong-device rejection" >&2
  exit 1
fi
grep -q "wrong-device" out.txt

# Corrupt the package: any field damage must be rejected.
python3 - <<'PYEOF'
data = bytearray(open('pkg.bin', 'rb').read())
data[len(data) // 2] ^= 0x40
open('pkg_bad.bin', 'wb').write(bytes(data))
PYEOF
if "$TOOLS/sdmmon-protocol" install --device-priv dev.key --root-pub m.pub \
    --pkg pkg_bad.bin > out2.txt 2>&1; then
  echo "expected corrupt-package rejection" >&2
  exit 1
fi
grep -q "REJECTED" out2.txt

echo "cli workflow ok"
