#include "monitor/monitor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "monitor/reference_monitor.hpp"
#include "util/rng.hpp"

namespace sdmmon::monitor {
namespace {

struct Setup {
  isa::Program program;
  HardwareMonitor monitor;
};

Setup make(const char* src, std::uint32_t param = 0x600DCAFE, int width = 4) {
  isa::Program p = isa::assemble(src);
  MerkleTreeHash hash(param, width);
  return {p, HardwareMonitor(extract_graph(p, hash),
                             std::make_unique<MerkleTreeHash>(hash))};
}

// Feed the straight-line execution trace of a program with no branches.
void feed_linear(HardwareMonitor& m, const isa::Program& p,
                 std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(m.on_instruction(p.text[i]), Verdict::Ok) << "instr " << i;
  }
}

TEST(Monitor, AcceptsValidStraightLineExecution) {
  auto s = make(R"(
main:
    addiu $t0, $t0, 1
    addiu $t1, $t1, 2
    addu $t2, $t0, $t1
    jr $ra
  )");
  feed_linear(s.monitor, s.program, s.program.text.size());
  EXPECT_TRUE(s.monitor.exit_allowed());
  EXPECT_FALSE(s.monitor.attack_flagged());
}

TEST(Monitor, AcceptsBothBranchOutcomes) {
  const char* src = R"(
main:
    beq $t0, $t1, skip
    addiu $t0, $t0, 1
skip:
    jr $ra
  )";
  // Not-taken path: beq, addiu, jr.
  auto a = make(src);
  EXPECT_EQ(a.monitor.on_instruction(a.program.text[0]), Verdict::Ok);
  EXPECT_EQ(a.monitor.on_instruction(a.program.text[1]), Verdict::Ok);
  EXPECT_EQ(a.monitor.on_instruction(a.program.text[2]), Verdict::Ok);
  EXPECT_TRUE(a.monitor.exit_allowed());
  // Taken path: beq, jr.
  auto b = make(src);
  EXPECT_EQ(b.monitor.on_instruction(b.program.text[0]), Verdict::Ok);
  EXPECT_EQ(b.monitor.on_instruction(b.program.text[2]), Verdict::Ok);
  EXPECT_TRUE(b.monitor.exit_allowed());
}

TEST(Monitor, DetectsForeignInstructionWithHighProbability) {
  // Substituting random instructions must be detected at rate ~15/16 per
  // instruction for a 4-bit hash (Section 2.1).
  auto base_src = R"(
main:
    addiu $t0, $t0, 1
    addiu $t1, $t1, 2
    addiu $t2, $t2, 3
    addiu $t3, $t3, 4
    jr $ra
  )";
  util::Rng rng(42);
  int detected = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    auto s = make(base_src, 0xAAAA5555);
    // Execute two valid instructions, then one random foreign word.
    s.monitor.on_instruction(s.program.text[0]);
    s.monitor.on_instruction(s.program.text[1]);
    std::uint32_t foreign = rng.next_u32();
    if (foreign == s.program.text[2]) continue;  // astronomically rare
    if (s.monitor.on_instruction(foreign) == Verdict::Mismatch) ++detected;
  }
  const double rate = static_cast<double>(detected) / trials;
  EXPECT_NEAR(rate, 15.0 / 16.0, 0.02);
}

TEST(Monitor, MismatchLatchesUntilReset) {
  auto s = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  // Find a word whose hash differs from instruction 0's.
  std::uint32_t bad = 0;
  while (s.monitor.hash().hash(bad) == s.monitor.graph().node(0).hash) ++bad;
  EXPECT_EQ(s.monitor.on_instruction(bad), Verdict::Mismatch);
  EXPECT_TRUE(s.monitor.attack_flagged());
  // Even a now-valid word keeps reporting mismatch until reset.
  EXPECT_EQ(s.monitor.on_instruction(s.program.text[0]), Verdict::Mismatch);
  s.monitor.reset();
  EXPECT_FALSE(s.monitor.attack_flagged());
  EXPECT_EQ(s.monitor.on_instruction(s.program.text[0]), Verdict::Ok);
}

TEST(Monitor, ExitOnlyAllowedAfterExitCapableInstruction) {
  auto s = make(R"(
main:
    addiu $t0, $t0, 1
    jr $ra
  )");
  EXPECT_EQ(s.monitor.on_instruction(s.program.text[0]), Verdict::Ok);
  EXPECT_FALSE(s.monitor.exit_allowed());  // addiu cannot end the handler
  EXPECT_EQ(s.monitor.on_instruction(s.program.text[1]), Verdict::Ok);
  EXPECT_TRUE(s.monitor.exit_allowed());
}

TEST(Monitor, NothingValidAfterTrapInstruction) {
  auto s = make("main:\n syscall\n nop\n");
  EXPECT_EQ(s.monitor.on_instruction(s.program.text[0]), Verdict::Ok);
  // syscall has no successors; anything after it is an attack.
  EXPECT_EQ(s.monitor.on_instruction(s.program.text[1]), Verdict::Mismatch);
}

TEST(Monitor, LoopExecutionStaysValid) {
  auto s = make(R"(
main:
    li $t1, 3
loop:
    addiu $t0, $t0, 1
    bne $t0, $t1, loop
    jr $ra
  )");
  const auto& text = s.program.text;
  // li expands to lui+ori (indices 0,1); loop body 2,3; exit 4.
  ASSERT_EQ(text.size(), 5u);
  EXPECT_EQ(s.monitor.on_instruction(text[0]), Verdict::Ok);
  EXPECT_EQ(s.monitor.on_instruction(text[1]), Verdict::Ok);
  for (int iter = 0; iter < 3; ++iter) {
    EXPECT_EQ(s.monitor.on_instruction(text[2]), Verdict::Ok);
    EXPECT_EQ(s.monitor.on_instruction(text[3]), Verdict::Ok);
  }
  EXPECT_EQ(s.monitor.on_instruction(text[4]), Verdict::Ok);
  EXPECT_TRUE(s.monitor.exit_allowed());
}

TEST(Monitor, StatsAccumulate) {
  auto s = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  s.monitor.on_instruction(s.program.text[0]);
  s.monitor.on_instruction(s.program.text[1]);
  EXPECT_EQ(s.monitor.stats().instructions_checked, 2u);
  EXPECT_EQ(s.monitor.stats().mismatches, 0u);
  EXPECT_GT(s.monitor.stats().average_ambiguity(), 0.0);
}

TEST(Monitor, InstallSwapsProgram) {
  auto s = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  isa::Program p2 = isa::assemble("main:\n xori $t5, $t5, 0x7\n jr $ra\n");
  MerkleTreeHash h2(0x22222222);
  s.monitor.install(extract_graph(p2, h2),
                    std::make_unique<MerkleTreeHash>(h2));
  EXPECT_EQ(s.monitor.on_instruction(p2.text[0]), Verdict::Ok);
  EXPECT_EQ(s.monitor.on_instruction(p2.text[1]), Verdict::Ok);
}

TEST(Monitor, HashedInterfaceMatchesWordInterface) {
  auto s1 = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  auto s2 = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  std::uint8_t h = s2.monitor.hash().hash(s2.program.text[0]);
  EXPECT_EQ(s1.monitor.on_instruction(s1.program.text[0]),
            s2.monitor.on_hashed(h));
}

// Property sweep: for random straight-line programs, the true execution is
// always accepted (no false positives), across widths.
class NoFalsePositiveTest : public ::testing::TestWithParam<int> {};

TEST_P(NoFalsePositiveTest, ValidTracesAlwaysAccepted) {
  const int width = GetParam();
  util::Rng rng(100 + width);
  const char* alu_ops[] = {"addiu", "ori", "xori", "andi"};
  for (int t = 0; t < 50; ++t) {
    std::string src = "main:\n";
    const int len = 3 + static_cast<int>(rng.below(20));
    for (int i = 0; i < len; ++i) {
      src += "  ";
      src += alu_ops[rng.below(4)];
      src += " $t" + std::to_string(rng.below(8)) + ", $t" +
             std::to_string(rng.below(8)) + ", " +
             std::to_string(rng.below(1000)) + "\n";
    }
    src += "  jr $ra\n";
    isa::Program p = isa::assemble(src);
    MerkleTreeHash hash(rng.next_u32(), width);
    HardwareMonitor m(extract_graph(p, hash),
                      std::make_unique<MerkleTreeHash>(hash));
    for (std::uint32_t word : p.text) {
      ASSERT_EQ(m.on_instruction(word), Verdict::Ok);
    }
    EXPECT_TRUE(m.exit_allowed());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NoFalsePositiveTest,
                         ::testing::Values(2, 4, 8));

// ---- stats semantics -------------------------------------------------------

// Regression: packets_monitored counts reset() (one per packet armed) and
// nothing else. Construction and install() re-arm the state machine but
// are not packets; historically both paths routed through reset() and the
// counter ran ahead of the real packet count.
TEST(Monitor, PacketsMonitoredCountsOnlyPacketResets) {
  auto s = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  EXPECT_EQ(s.monitor.stats().packets_monitored, 0u);  // construction
  s.monitor.reset();
  s.monitor.reset();
  EXPECT_EQ(s.monitor.stats().packets_monitored, 2u);

  isa::Program p2 = isa::assemble("main:\n xori $t5, $t5, 0x7\n jr $ra\n");
  MerkleTreeHash h2(0x33333333);
  s.monitor.install(extract_graph(p2, h2),
                    std::make_unique<MerkleTreeHash>(h2));
  EXPECT_EQ(s.monitor.stats().packets_monitored, 2u);  // install: no packet
  s.monitor.reset();
  EXPECT_EQ(s.monitor.stats().packets_monitored, 3u);

  ReferenceMonitor ref(extract_graph(p2, h2),
                       std::make_unique<MerkleTreeHash>(h2));
  EXPECT_EQ(ref.stats().packets_monitored, 0u);
  ref.reset();
  ref.install(extract_graph(p2, h2), std::make_unique<MerkleTreeHash>(h2));
  EXPECT_EQ(ref.stats().packets_monitored, 1u);
}

// ---- compiled matcher edge cases -------------------------------------------

HardwareMonitor make_synthetic(MonitoringGraph graph) {
  return HardwareMonitor(std::move(graph),
                         std::make_unique<MerkleTreeHash>(0xABCD, 4));
}

// A trap terminal (node with no successors) must match in the same pass
// that detects mismatches: the match itself is Ok (and carries the node's
// exit capability), the state set then runs empty, and the NEXT report is
// the mismatch. No second rescan decides this.
TEST(Monitor, TrapTerminalMatchThenMismatch) {
  // entry(hash 3) -> trap(hash 5, no successors, cannot exit)
  MonitoringGraph graph(4, 0x1000, 0,
                        {{3, false, {1}}, {5, false, {}}});
  HardwareMonitor m = make_synthetic(graph);
  ReferenceMonitor ref(graph, std::make_unique<MerkleTreeHash>(0xABCD, 4));
  auto feed = [&](std::uint8_t h) {
    Verdict v = m.on_hashed(h);
    EXPECT_EQ(v, ref.on_hashed(h));
    return v;
  };
  EXPECT_EQ(feed(3), Verdict::Ok);
  EXPECT_EQ(m.state_size(), 1u);           // {trap}
  EXPECT_EQ(feed(5), Verdict::Ok);         // trap terminal matches...
  EXPECT_FALSE(m.exit_allowed());
  EXPECT_EQ(m.state_size(), 0u);           // ...and strands the NFA
  EXPECT_FALSE(m.attack_flagged());
  EXPECT_EQ(feed(3), Verdict::Mismatch);   // anything after it: attack
  EXPECT_TRUE(m.attack_flagged());
}

// An exit-capable trap terminal still reports exit_allowed from the same
// single matching pass.
TEST(Monitor, ExitCapableTrapTerminalAllowsExit) {
  MonitoringGraph graph(4, 0x1000, 0, {{7, true, {}}});
  HardwareMonitor m = make_synthetic(graph);
  EXPECT_EQ(m.on_hashed(7), Verdict::Ok);
  EXPECT_TRUE(m.exit_allowed());
  EXPECT_EQ(m.state_size(), 0u);
}

// Hashed reports outside [0, 2^w) cannot match any node; the bucketed
// matcher must treat them as a plain mismatch, not an out-of-bounds read.
TEST(Monitor, OutOfRangeHashedReportIsMismatch) {
  MonitoringGraph graph(4, 0x1000, 0, {{3, true, {0}}});
  HardwareMonitor m = make_synthetic(graph);
  EXPECT_EQ(m.on_hashed(0xF3), Verdict::Mismatch);  // >= 2^4
  EXPECT_TRUE(m.attack_flagged());
  m.reset();
  EXPECT_EQ(m.on_hashed(3), Verdict::Ok);
}

// ---- CompiledGraph artifact ------------------------------------------------

TEST(CompiledGraph, FlattensSourceIntoCsrForm) {
  MonitoringGraph graph(4, 0x2000, 1,
                        {{3, false, {1, 2}}, {9, true, {0}}, {9, false, {}}});
  auto compiled = CompiledGraph::compile(graph);
  ASSERT_EQ(compiled->num_nodes(), 3u);
  EXPECT_EQ(compiled->num_edges(), 3u);
  EXPECT_EQ(compiled->hash_width(), 4);
  EXPECT_EQ(compiled->entry_index(), 1u);
  EXPECT_EQ(compiled->node_hash(0), 3u);
  EXPECT_TRUE(compiled->node_can_exit(1));
  EXPECT_FALSE(compiled->node_can_exit(2));
  ASSERT_EQ(compiled->successors(0).size(), 2u);
  EXPECT_EQ(compiled->successors(0)[1], 2u);
  EXPECT_TRUE(compiled->successors(2).empty());
  // Two nodes share hash 9: the per-bucket population reflects it.
  EXPECT_EQ(compiled->bucket_population(9), 2u);
  EXPECT_EQ(compiled->bucket_population(3), 1u);
  EXPECT_GT(compiled->footprint_bytes(), 0u);
  EXPECT_EQ(compiled->source(), graph);
}

TEST(CompiledGraph, RejectsMalformedGraphs) {
  // Successor index out of range.
  EXPECT_THROW(CompiledGraph::compile(MonitoringGraph(
                   4, 0, 0, {{1, false, {7}}})),
               std::invalid_argument);
  // Entry index out of range.
  EXPECT_THROW(CompiledGraph::compile(MonitoringGraph(
                   4, 0, 5, {{1, false, {}}})),
               std::invalid_argument);
  // Node hash wider than the declared width.
  EXPECT_THROW(CompiledGraph::compile(MonitoringGraph(
                   2, 0, 0, {{9, false, {}}})),
               std::invalid_argument);
  // Hash width outside [1, 8].
  EXPECT_THROW(CompiledGraph::compile(MonitoringGraph(
                   0, 0, 0, {{0, false, {}}})),
               std::invalid_argument);
  EXPECT_THROW(CompiledGraph::compile(MonitoringGraph(
                   9, 0, 0, {{1, false, {}}})),
               std::invalid_argument);
}

}  // namespace
}  // namespace sdmmon::monitor
