#include "sdmmon/workload.hpp"

#include <gtest/gtest.h>

#include "net/apps.hpp"
#include "net/packet.hpp"

namespace sdmmon::protocol {
namespace {

constexpr std::size_t kKeyBits = 1024;
constexpr std::uint64_t kNow = 1'750'000'000;

struct ManagedDevice {
  Manufacturer manufacturer{"m", kKeyBits, crypto::Drbg("wl-man")};
  NetworkOperator op{"o", kKeyBits, crypto::Drbg("wl-op")};
  std::unique_ptr<NetworkProcessorDevice> device;

  ManagedDevice() {
    op.accept_certificate(manufacturer.certify_operator(
        op.name(), op.public_key(), kNow - 10, kNow + 1'000'000));
    device = manufacturer.provision_device("wl-router", 4);
    EXPECT_EQ(device->install(op.program_device(net::build_udp_echo(),
                                                device->public_key()),
                              kNow),
              InstallStatus::Ok);
    EXPECT_EQ(device->install(op.program_device(net::build_ipv4_forward(),
                                                device->public_key()),
                              kNow),
              InstallStatus::Ok);
  }
};

ManagedDevice& fixture() {
  static ManagedDevice d;
  return d;
}

util::Bytes udp_to_port(std::uint16_t port) {
  return net::make_udp_packet(net::ip(10, 0, 0, 1), net::ip(10, 9, 9, 9),
                              1111, port, util::bytes_of("payload"));
}

TEST(Workload, ClassifiesByPortRules) {
  ManagedDevice& f = fixture();
  WorkloadManager mgr(*f.device);
  mgr.add_port_rule(7, 7, "udp-echo");
  mgr.set_default_app("ipv4-forward");
  EXPECT_EQ(mgr.classify(udp_to_port(7)), "udp-echo");
  EXPECT_EQ(mgr.classify(udp_to_port(80)), "ipv4-forward");
  // Non-IP garbage goes to the default app.
  util::Bytes junk(10, 0xAA);
  EXPECT_EQ(mgr.classify(junk), "ipv4-forward");
}

TEST(Workload, FirstMatchingRuleWins) {
  ManagedDevice& f = fixture();
  WorkloadManager mgr(*f.device);
  mgr.add_port_rule(0, 100, "udp-echo");
  mgr.add_port_rule(50, 200, "ipv4-forward");
  EXPECT_EQ(mgr.classify(udp_to_port(60)), "udp-echo");
  EXPECT_EQ(mgr.classify(udp_to_port(150)), "ipv4-forward");
}

TEST(Workload, RebalanceAssignsCoresProportionally) {
  ManagedDevice& f = fixture();
  WorkloadManager mgr(*f.device);
  mgr.add_port_rule(7, 7, "udp-echo");
  mgr.set_default_app("ipv4-forward");

  // 75% echo traffic, 25% forward traffic.
  for (int i = 0; i < 300; ++i) (void)mgr.process(udp_to_port(7));
  for (int i = 0; i < 100; ++i) (void)mgr.process(udp_to_port(9000));

  std::size_t switched = mgr.rebalance();
  EXPECT_GT(switched, 0u);
  int echo_cores = 0, fwd_cores = 0;
  for (const auto& app : mgr.assignment()) {
    if (app == "udp-echo") ++echo_cores;
    if (app == "ipv4-forward") ++fwd_cores;
  }
  EXPECT_EQ(echo_cores, 3);
  EXPECT_EQ(fwd_cores, 1);
  // Observation window reset.
  EXPECT_TRUE(mgr.observed().empty());
}

TEST(Workload, DispatchReachesTheRightApp) {
  ManagedDevice& f = fixture();
  WorkloadManager mgr(*f.device);
  mgr.add_port_rule(7, 7, "udp-echo");
  mgr.set_default_app("ipv4-forward");
  for (int i = 0; i < 30; ++i) (void)mgr.process(udp_to_port(7));
  for (int i = 0; i < 10; ++i) (void)mgr.process(udp_to_port(9000));
  ASSERT_GT(mgr.rebalance(), 0u);

  // Echo packets come back with swapped addresses; forwarded ones do not.
  np::PacketResult echoed = mgr.process(udp_to_port(7));
  ASSERT_EQ(echoed.outcome, np::PacketOutcome::Forwarded);
  EXPECT_EQ(net::Ipv4Packet::parse(echoed.output)->dst, net::ip(10, 0, 0, 1));

  np::PacketResult forwarded = mgr.process(udp_to_port(9000));
  ASSERT_EQ(forwarded.outcome, np::PacketOutcome::Forwarded);
  EXPECT_EQ(net::Ipv4Packet::parse(forwarded.output)->dst,
            net::ip(10, 9, 9, 9));
}

TEST(Workload, UnknownAppsIgnoredByRebalance) {
  ManagedDevice& f = fixture();
  WorkloadManager mgr(*f.device);
  mgr.add_port_rule(1, 1, "not-installed");
  mgr.set_default_app("ipv4-forward");
  for (int i = 0; i < 10; ++i) (void)mgr.process(udp_to_port(1));
  // Only the unknown app was observed: nothing to assign.
  EXPECT_EQ(mgr.rebalance(), 0u);
}

TEST(Workload, RebalanceWithNoTrafficIsNoop) {
  ManagedDevice& f = fixture();
  WorkloadManager mgr(*f.device);
  EXPECT_EQ(mgr.rebalance(), 0u);
}

TEST(Workload, SwitchCoreToRejectsBadArgs) {
  ManagedDevice& f = fixture();
  EXPECT_FALSE(f.device->switch_core_to(0, "no-such-app"));
  EXPECT_FALSE(f.device->switch_core_to(99, "udp-echo"));
  EXPECT_TRUE(f.device->switch_core_to(0, "udp-echo"));
}

}  // namespace
}  // namespace sdmmon::protocol
