// The flow-stats app: persistent per-flow counters in NP data memory,
// exercising the soft-reset (state survives packets) vs. full-reset
// (attack recovery wipes state) distinction.
#include <gtest/gtest.h>

#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/monitored_core.hpp"

namespace sdmmon::net {
namespace {

struct Rig {
  isa::Program program = build_flow_stats();
  np::MonitoredCore core;

  Rig() {
    monitor::MerkleTreeHash hash(0xF70A75);
    core.install(program, monitor::extract_graph(program, hash),
                 std::make_unique<monitor::MerkleTreeHash>(hash));
  }

  std::uint32_t total() {
    return core.core()
        .memory()
        .load32(program.symbol("total_count"))
        .value();
  }
  std::uint32_t bucket(std::uint8_t index) {
    return core.core()
        .memory()
        .load32(program.symbol("flow_table") + index * 4u)
        .value();
  }
  np::PacketResult send(std::uint32_t src, std::uint32_t dst) {
    return core.process_packet(
        make_udp_packet(src, dst, 1000, 2000, util::bytes_of("pl")));
  }
};

TEST(FlowStats, CountsPersistAcrossPackets) {
  Rig rig;
  const std::uint32_t src = ip(10, 0, 0, 1), dst = ip(10, 0, 0, 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(rig.send(src, dst).outcome, np::PacketOutcome::Forwarded);
  }
  EXPECT_EQ(rig.total(), 5u);
  EXPECT_EQ(rig.bucket(flow_stats_bucket(src, dst)), 5u);
}

TEST(FlowStats, DistinctFlowsUseDistinctBuckets) {
  Rig rig;
  const std::uint32_t s1 = ip(10, 0, 0, 1), d1 = ip(10, 0, 0, 2);
  const std::uint32_t s2 = ip(192, 168, 55, 7), d2 = ip(8, 8, 8, 8);
  ASSERT_NE(flow_stats_bucket(s1, d1), flow_stats_bucket(s2, d2));
  (void)rig.send(s1, d1);
  (void)rig.send(s1, d1);
  (void)rig.send(s2, d2);
  EXPECT_EQ(rig.bucket(flow_stats_bucket(s1, d1)), 2u);
  EXPECT_EQ(rig.bucket(flow_stats_bucket(s2, d2)), 1u);
  EXPECT_EQ(rig.total(), 3u);
}

TEST(FlowStats, StillForwardsCorrectly) {
  Rig rig;
  auto r = rig.send(ip(1, 2, 3, 4), ip(5, 6, 7, 8));
  ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded);
  EXPECT_TRUE(ipv4_checksum_ok(r.output));
  EXPECT_EQ(Ipv4Packet::parse(r.output)->ttl, 63);
}

TEST(FlowStats, MalformedPacketsNotCounted) {
  Rig rig;
  (void)rig.core.process_packet(util::Bytes(6, 0));  // too short
  EXPECT_EQ(rig.total(), 0u);
}

TEST(FlowStats, FullResetWipesCounters) {
  // Attack recovery re-images data memory: counters reset to zero.
  Rig rig;
  (void)rig.send(ip(1, 1, 1, 1), ip(2, 2, 2, 2));
  ASSERT_EQ(rig.total(), 1u);
  rig.core.core().reset();  // full re-image (recovery path)
  EXPECT_EQ(rig.total(), 0u);
}

TEST(FlowStats, OracleMatchesByteOrderInsensitivity) {
  // The fold xors all four bytes, so byte order cannot matter.
  EXPECT_EQ(flow_stats_bucket(0x01020304, 0), 0x01 ^ 0x02 ^ 0x03 ^ 0x04);
  EXPECT_EQ(flow_stats_bucket(0, 0xAABBCCDD), 0xAA ^ 0xBB ^ 0xCC ^ 0xDD);
  EXPECT_EQ(flow_stats_bucket(0xFF00FF00, 0x00FF00FF), 0x00);
}

}  // namespace
}  // namespace sdmmon::net
