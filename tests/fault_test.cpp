#include "util/fault.hpp"

#include <gtest/gtest.h>

namespace sdmmon::util {
namespace {

TEST(Fault, DefaultInjectorIsTransparent) {
  FaultInjector inject;
  Bytes buffer = {1, 2, 3, 4};
  Bytes original = buffer;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inject.maybe_corrupt(buffer));
    EXPECT_FALSE(inject.maybe_truncate(buffer));
    EXPECT_FALSE(inject.drop_message());
    EXPECT_EQ(inject.delay_message(), 0u);
    EXPECT_EQ(inject.skew_clock(12345), 12345u);
  }
  EXPECT_EQ(buffer, original);
  EXPECT_EQ(inject.stats().faults_injected(), 0u);
}

TEST(Fault, DeterministicReplay) {
  FaultProfile profile;
  profile.seed = 42;
  profile.bit_flip_rate = 0.3;
  profile.truncation_rate = 0.2;
  profile.drop_rate = 0.25;
  profile.delay_rate = 0.1;
  profile.clock_skew_rate = 0.15;
  profile.clock_skew_s = -7;

  auto run = [&] {
    FaultInjector inject(profile);
    std::vector<std::uint64_t> trace;
    Bytes buffer(64, 0xAB);
    for (int i = 0; i < 200; ++i) {
      Bytes b = buffer;
      inject.maybe_corrupt(b);
      inject.maybe_truncate(b);
      trace.push_back(b.size());
      trace.push_back(b.empty() ? 0 : b[0]);
      trace.push_back(inject.drop_message() ? 1 : 0);
      trace.push_back(inject.delay_message());
      trace.push_back(inject.skew_clock(1'000'000));
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(Fault, FlipBitChangesExactlyOneBit) {
  FaultInjector inject(FaultProfile{.seed = 7});
  Bytes buffer(32, 0);
  inject.flip_bit(buffer);
  int set_bits = 0;
  for (std::uint8_t b : buffer) set_bits += __builtin_popcount(b);
  EXPECT_EQ(set_bits, 1);
  EXPECT_EQ(inject.stats().bits_flipped, 1u);
  EXPECT_EQ(inject.stats().buffers_corrupted, 1u);
}

TEST(Fault, TruncateStrictlyShortens) {
  FaultInjector inject(FaultProfile{.seed = 9});
  for (int i = 0; i < 50; ++i) {
    Bytes buffer(1 + static_cast<std::size_t>(i), 0xCC);
    std::size_t before = buffer.size();
    inject.truncate(buffer);
    EXPECT_LT(buffer.size(), before);
  }
  Bytes empty;
  inject.truncate(empty);  // no-op, no crash
  EXPECT_TRUE(empty.empty());
}

TEST(Fault, CorruptWordFlipsOneProgramWord) {
  FaultInjector inject(FaultProfile{.seed = 3});
  std::vector<std::uint32_t> words(16, 0x2402002A);
  std::vector<std::uint32_t> original = words;
  inject.corrupt_word(words);
  int changed = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i] != original[i]) {
      ++changed;
      EXPECT_EQ(__builtin_popcount(words[i] ^ original[i]), 1);
    }
  }
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(inject.stats().words_corrupted, 1u);
}

TEST(Fault, ClockSkewSaturatesAtZero) {
  FaultProfile profile;
  profile.clock_skew_rate = 1.0;
  profile.clock_skew_s = -1000;
  FaultInjector inject(profile);
  EXPECT_EQ(inject.skew_clock(10), 0u);
  EXPECT_EQ(inject.skew_clock(5000), 4000u);

  profile.clock_skew_s = 250;
  FaultInjector forward(profile);
  EXPECT_EQ(forward.skew_clock(10), 260u);
}

TEST(Fault, RatesRoughlyHonored) {
  FaultProfile profile;
  profile.seed = 11;
  profile.drop_rate = 0.10;
  FaultInjector inject(profile);
  int drops = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (inject.drop_message()) ++drops;
  }
  EXPECT_GT(drops, trials / 20);   // > 5%
  EXPECT_LT(drops, trials * 3 / 20);  // < 15%
  EXPECT_EQ(inject.stats().drops, static_cast<std::uint64_t>(drops));
  EXPECT_EQ(inject.stats().messages_seen, static_cast<std::uint64_t>(trials));
}

TEST(Fault, MaybeCorruptRespectsMaxBitFlips) {
  FaultProfile profile;
  profile.seed = 5;
  profile.bit_flip_rate = 1.0;
  profile.max_bit_flips = 4;
  FaultInjector inject(profile);
  Bytes buffer(128, 0);
  ASSERT_TRUE(inject.maybe_corrupt(buffer));
  int set_bits = 0;
  for (std::uint8_t b : buffer) set_bits += __builtin_popcount(b);
  EXPECT_GE(set_bits, 1);
  EXPECT_LE(set_bits, 4);
}

}  // namespace
}  // namespace sdmmon::util
