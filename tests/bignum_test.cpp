#include "crypto/bignum.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace sdmmon::crypto {
namespace {

BigUint rand_big(Drbg& d, std::size_t max_bytes) {
  std::size_t n = 1 + d.below(max_bytes);
  return BigUint::from_bytes_be(d.bytes(n));
}

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z + z, z);
  EXPECT_EQ(z * BigUint(12345), z);
}

TEST(BigUint, SmallArithmetic) {
  EXPECT_EQ(BigUint(2) + BigUint(3), BigUint(5));
  EXPECT_EQ(BigUint(10) - BigUint(4), BigUint(6));
  EXPECT_EQ(BigUint(7) * BigUint(6), BigUint(42));
  EXPECT_EQ(BigUint(100) / BigUint(7), BigUint(14));
  EXPECT_EQ(BigUint(100) % BigUint(7), BigUint(2));
}

TEST(BigUint, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint(3) - BigUint(4), BignumError);
}

TEST(BigUint, DivisionByZeroThrows) {
  EXPECT_THROW(BigUint(3) / BigUint(0), BignumError);
  EXPECT_THROW(BigUint(3) % BigUint(0), BignumError);
}

TEST(BigUint, CarryPropagation) {
  BigUint max64(~std::uint64_t{0});
  BigUint sum = max64 + BigUint(1);
  EXPECT_EQ(sum.bit_length(), 65u);
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
  EXPECT_EQ(sum - BigUint(1), max64);
}

TEST(BigUint, HexRoundTrip) {
  const std::string hex = "123456789abcdef0fedcba9876543210deadbeef";
  BigUint v = BigUint::from_hex(hex);
  EXPECT_EQ(v.to_hex(), hex);
}

TEST(BigUint, DecimalRoundTrip) {
  const std::string dec = "123456789012345678901234567890123456789";
  BigUint v = BigUint::from_decimal(dec);
  EXPECT_EQ(v.to_decimal(), dec);
}

TEST(BigUint, BytesRoundTripWithPadding) {
  util::Bytes b = util::from_hex("00ab12");
  BigUint v = BigUint::from_bytes_be(b);
  EXPECT_EQ(util::to_hex(v.to_bytes_be()), "ab12");
  EXPECT_EQ(util::to_hex(v.to_bytes_be(5)), "000000ab12");
}

TEST(BigUint, ShiftRoundTrip) {
  BigUint v = BigUint::from_hex("deadbeefcafebabe1234");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 129u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
  EXPECT_EQ(BigUint(1) << 200, BigUint::from_hex("1" + std::string(50, '0')));
}

TEST(BigUint, BitAccess) {
  BigUint v;
  v.set_bit(0);
  v.set_bit(64);
  v.set_bit(100);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(1000));
  EXPECT_EQ(v.bit_length(), 101u);
}

TEST(BigUint, Comparisons) {
  BigUint a = BigUint::from_hex("ffffffffffffffff");
  BigUint b = BigUint::from_hex("10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  EXPECT_LE(a, a);
}

// Property: (q * den + rem) == num and rem < den, across random inputs.
TEST(BigUint, DivmodInvariantRandom) {
  Drbg d("divmod");
  for (int i = 0; i < 200; ++i) {
    BigUint num = rand_big(d, 64);
    BigUint den = rand_big(d, 32);
    if (den.is_zero()) den = BigUint(1);
    auto [q, r] = BigUint::divmod(num, den);
    EXPECT_EQ(q * den + r, num);
    EXPECT_LT(r, den);
  }
}

// Regression territory for Knuth D: divisors with top limb 0x8000.. and
// numerators triggering the add-back step.
TEST(BigUint, DivmodHardCases) {
  BigUint num = BigUint::from_hex("7fffffffffffffff8000000000000000");
  BigUint den = BigUint::from_hex("80000000000000008000000000000001");
  auto [q, r] = BigUint::divmod(num, den);
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);

  // num exactly divisible.
  BigUint a = BigUint::from_hex("1234567890abcdef");
  BigUint prod = a * a * a;
  EXPECT_EQ(prod % a, BigUint(0));
  EXPECT_EQ(prod / a, a * a);
}

TEST(BigUint, MulCommutativeAssociativeRandom) {
  Drbg d("mul");
  for (int i = 0; i < 100; ++i) {
    BigUint a = rand_big(d, 24);
    BigUint b = rand_big(d, 24);
    BigUint c = rand_big(d, 24);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigUint, ModmulMatchesMulThenMod) {
  Drbg d("modmul");
  for (int i = 0; i < 100; ++i) {
    BigUint a = rand_big(d, 32);
    BigUint b = rand_big(d, 32);
    BigUint m = rand_big(d, 16);
    if (m.is_zero()) m = BigUint(7);
    EXPECT_EQ(BigUint::modmul(a, b, m), (a * b) % m);
  }
}

TEST(BigUint, ModexpSmallKnownValues) {
  EXPECT_EQ(BigUint::modexp(BigUint(2), BigUint(10), BigUint(1000)),
            BigUint(24));
  EXPECT_EQ(BigUint::modexp(BigUint(3), BigUint(0), BigUint(7)), BigUint(1));
  EXPECT_EQ(BigUint::modexp(BigUint(0), BigUint(5), BigUint(7)), BigUint(0));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(BigUint::modexp(BigUint(5), BigUint(100002), BigUint(100003)),
            BigUint(1));
}

// Property: Montgomery modexp agrees with naive square-and-multiply.
TEST(BigUint, ModexpMatchesNaive) {
  Drbg d("modexp");
  for (int i = 0; i < 30; ++i) {
    BigUint base = rand_big(d, 16);
    BigUint exp = rand_big(d, 4);
    BigUint m = rand_big(d, 16);
    if (m.is_zero()) m = BigUint(3);
    if (!m.is_odd()) m += BigUint(1);  // Montgomery path requires odd
    // Naive.
    BigUint naive(1);
    BigUint b = base % m;
    for (std::size_t bit = 0; bit < exp.bit_length(); ++bit) {
      if (exp.bit(bit)) naive = BigUint::modmul(naive, b, m);
      b = BigUint::modmul(b, b, m);
    }
    EXPECT_EQ(BigUint::modexp(base, exp, m), naive) << "iter " << i;
  }
}

TEST(BigUint, ModexpEvenModulus) {
  // Falls back to the non-Montgomery path.
  EXPECT_EQ(BigUint::modexp(BigUint(3), BigUint(4), BigUint(100)),
            BigUint(81 % 100));
  EXPECT_EQ(BigUint::modexp(BigUint(7), BigUint(3), BigUint(10)), BigUint(3));
}

TEST(BigUint, Gcd) {
  EXPECT_EQ(BigUint::gcd(BigUint(12), BigUint(18)), BigUint(6));
  EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(5)), BigUint(1));
  EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)), BigUint(5));
  EXPECT_EQ(BigUint::gcd(BigUint(5), BigUint(0)), BigUint(5));
}

TEST(BigUint, ModinvKnown) {
  auto inv = BigUint::modinv(BigUint(3), BigUint(11));
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, BigUint(4));  // 3*4 = 12 = 1 mod 11
  EXPECT_FALSE(BigUint::modinv(BigUint(6), BigUint(9)).has_value());
}

// Property: a * modinv(a, m) == 1 mod m whenever gcd(a, m) == 1.
TEST(BigUint, ModinvInverseProperty) {
  Drbg d("modinv");
  int tested = 0;
  for (int i = 0; i < 200 && tested < 80; ++i) {
    BigUint a = rand_big(d, 16);
    BigUint m = rand_big(d, 16);
    if (m < BigUint(2) || a.is_zero()) continue;
    if (!BigUint::gcd(a, m).is_one()) continue;
    auto inv = BigUint::modinv(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(BigUint::modmul(a % m, *inv, m), BigUint(1));
    ++tested;
  }
  EXPECT_GE(tested, 40);
}

TEST(BigUint, KaratsubaMatchesSchoolbookAcrossThreshold) {
  // mul_limbs switches to Karatsuba at >= 24 limbs (1536 bits); verify the
  // product against the distributive-law identity around and far beyond
  // the threshold.
  Drbg d("karatsuba");
  for (std::size_t bytes : {150u, 180u, 192u, 200u, 400u, 1000u}) {
    BigUint a = BigUint::from_bytes_be(d.bytes(bytes));
    BigUint b = BigUint::from_bytes_be(d.bytes(bytes));
    BigUint c = BigUint::from_bytes_be(d.bytes(bytes / 2));
    // (a + c) * b == a*b + c*b exercises both mul paths and addition.
    EXPECT_EQ((a + c) * b, a * b + c * b) << bytes << " bytes";
    // Square via mul must match shift-add decomposition: a*(a+1) = a^2+a.
    EXPECT_EQ(a * (a + BigUint(1)), a * a + a);
  }
}

TEST(BigUint, KaratsubaUnbalancedOperands) {
  Drbg d("karatsuba-unbalanced");
  BigUint big = BigUint::from_bytes_be(d.bytes(512));   // 64 limbs
  BigUint small = BigUint::from_bytes_be(d.bytes(16));  // 2 limbs
  BigUint mid = BigUint::from_bytes_be(d.bytes(200));   // 25 limbs
  // Verify with divmod: (big * x) / x == big when x != 0.
  for (const BigUint* x : {&small, &mid}) {
    BigUint prod = big * *x;
    auto [q, r] = BigUint::divmod(prod, *x);
    EXPECT_EQ(q, big);
    EXPECT_TRUE(r.is_zero());
  }
}

TEST(BigUint, KaratsubaRsaSizedRoundTrip) {
  // 2048-bit modulus arithmetic exercised through the Karatsuba path.
  Drbg d("karatsuba-rsa");
  BigUint p = BigUint::from_bytes_be(d.bytes(128));
  BigUint q = BigUint::from_bytes_be(d.bytes(128));
  BigUint n = p * q;
  EXPECT_EQ(n % p, BigUint(0) + (n - (n / p) * p));  // divmod identity
  EXPECT_EQ((n / q) * q + n % q, n);
}

TEST(MontgomeryCtxTest, RequiresOddModulus) {
  EXPECT_THROW(MontgomeryCtx(BigUint(100)), BignumError);
}

TEST(MontgomeryCtxTest, MatchesModexpOnLargeOperands) {
  Drbg d("mont");
  BigUint m = BigUint::from_bytes_be(d.bytes(128));
  if (!m.is_odd()) m += BigUint(1);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigUint base = rand_big(d, 128);
    BigUint exp = rand_big(d, 8);
    EXPECT_EQ(ctx.modexp(base, exp), BigUint::modexp(base, exp, m));
  }
}

}  // namespace
}  // namespace sdmmon::crypto
