// Deserializer robustness fuzz: every wire-format decoder in the system
// must either produce a value or throw DecodeError on arbitrary input --
// never crash, hang, or allocate unboundedly. Random blobs and mutated
// valid blobs both.
#include <gtest/gtest.h>

#include "crypto/cert.hpp"
#include "isa/program.hpp"
#include "monitor/analysis.hpp"
#include "monitor/graph_codec.hpp"
#include "net/apps.hpp"
#include "net/trace.hpp"
#include "sdmmon/package.hpp"
#include "util/rng.hpp"

namespace sdmmon {
namespace {

util::Bytes random_blob(util::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// Each decoder wrapped to swallow only the sanctioned failure type.
template <typename Fn>
void expect_no_crash(Fn&& decode, const util::Bytes& input,
                     const char* what) {
  try {
    decode(input);
  } catch (const util::DecodeError&) {
    // sanctioned failure
  } catch (const std::exception& e) {
    FAIL() << what << " threw unexpected " << e.what();
  }
}

TEST(FuzzDecode, RandomBlobsAgainstAllDecoders) {
  util::Rng rng(0xF022);
  for (int i = 0; i < 3000; ++i) {
    util::Bytes blob = random_blob(rng, 512);
    expect_no_crash(
        [](const util::Bytes& b) { (void)isa::Program::deserialize(b); },
        blob, "Program");
    expect_no_crash(
        [](const util::Bytes& b) {
          (void)monitor::MonitoringGraph::deserialize(b);
        },
        blob, "MonitoringGraph");
    expect_no_crash(
        [](const util::Bytes& b) {
          (void)monitor::EncodedGraph::deserialize(b);
        },
        blob, "EncodedGraph");
    expect_no_crash(
        [](const util::Bytes& b) { (void)crypto::Certificate::deserialize(b); },
        blob, "Certificate");
    expect_no_crash(
        [](const util::Bytes& b) {
          (void)protocol::WirePackage::deserialize(b);
        },
        blob, "WirePackage");
    expect_no_crash(
        [](const util::Bytes& b) { (void)net::Trace::deserialize(b); }, blob,
        "Trace");
  }
}

TEST(FuzzDecode, MutatedValidProgramNeverCrashes) {
  isa::Program p = net::build_ipv4_cm();
  util::Bytes valid = p.serialize();
  util::Rng rng(0xF023);
  for (int i = 0; i < 2000; ++i) {
    util::Bytes mutated = valid;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    expect_no_crash(
        [](const util::Bytes& b) { (void)isa::Program::deserialize(b); },
        mutated, "Program(mutated)");
  }
}

TEST(FuzzDecode, MutatedGraphEitherFailsOrDecodesConsistently) {
  auto program = net::build_udp_echo();
  monitor::MerkleTreeHash hash(0xF12);
  auto graph = monitor::extract_graph(program, hash);
  auto encoded = monitor::encode_graph(graph);
  util::Bytes wire = encoded.serialize();
  util::Rng rng(0xF024);
  for (int i = 0; i < 2000; ++i) {
    util::Bytes mutated = wire;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      auto e = monitor::EncodedGraph::deserialize(mutated);
      auto g = monitor::decode_graph(e);
      // If it decodes, re-encoding must reproduce the same bitstream
      // modulo the (possibly mutated) header fields.
      auto re = monitor::encode_graph(g);
      EXPECT_EQ(re.node_count, e.node_count);
    } catch (const util::DecodeError&) {
    } catch (const std::invalid_argument&) {
      // encode_graph may reject >255 successors on garbage decodes
    }
  }
}

TEST(FuzzDecode, TraceWithHugeClaimedCountRejectedGracefully) {
  // A count field of 2^32-1 must not allocate 4G records: the reader hits
  // end-of-input on the first missing record.
  util::ByteWriter w;
  w.u32(net::Trace::kMagic);
  w.u32(1);
  w.u32(0xFFFFFFFF);
  EXPECT_THROW(net::Trace::deserialize(w.bytes()), util::DecodeError);
}

TEST(FuzzDecode, GraphWithHugeNodeCountRejectedGracefully) {
  util::ByteWriter w;
  w.u8(4);
  w.u32(0);
  w.u32(0);
  w.u32(0xFFFFFFFF);  // claimed node count
  EXPECT_THROW(monitor::MonitoringGraph::deserialize(w.bytes()),
               util::DecodeError);
}

}  // namespace
}  // namespace sdmmon
