#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace sdmmon::util {
namespace {

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Hex, Empty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), DecodeError);
}

TEST(Hex, RejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), DecodeError);
}

TEST(Endian, Be32RoundTrip) {
  std::uint8_t buf[4];
  store_be32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(load_be32(buf), 0x12345678u);
}

TEST(Endian, Be64RoundTrip) {
  std::uint8_t buf[8];
  store_be64(0x0123456789ABCDEFull, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xEF);
  EXPECT_EQ(load_be64(buf), 0x0123456789ABCDEFull);
}

TEST(Endian, Le32RoundTrip) {
  std::uint8_t buf[4];
  store_le32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(load_le32(buf), 0x12345678u);
}

TEST(Endian, Be16RoundTrip) {
  std::uint8_t buf[2];
  store_be16(0xBEEF, buf);
  EXPECT_EQ(load_be16(buf), 0xBEEF);
}

TEST(CtEqual, Basics) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(ByteRw, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.done());
}

TEST(ByteRw, BlobAndString) {
  ByteWriter w;
  w.blob(Bytes{9, 8, 7});
  w.str("hello");
  w.blob(Bytes{});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.blob(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(ByteRw, TruncationThrows) {
  ByteWriter w;
  w.u32(10);  // claims a 10-byte blob follows, but nothing does
  ByteReader r(w.bytes());
  EXPECT_THROW(r.blob(), DecodeError);
}

TEST(ByteRw, ReadPastEndThrows) {
  Bytes data{1};
  ByteReader r(data);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(ByteRw, RawPreservesOrder) {
  ByteWriter w;
  w.raw(Bytes{1, 2});
  w.raw(Bytes{3});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(3), (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace sdmmon::util
