// Three-entity protocol tests: manufacturer provisions devices and
// certifies operators; operators seal packages; devices verify, decrypt,
// install -- and reject every tampering the security model (SR1-SR4)
// covers.
#include "sdmmon/entities.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/apps.hpp"
#include "net/packet.hpp"
#include "sdmmon/timed_install.hpp"

namespace sdmmon::protocol {
namespace {

constexpr std::size_t kKeyBits = 1024;  // tests use 1024 for speed; the
                                        // benches run the paper's 2048.
constexpr std::uint64_t kNow = 1'700'000'000;

struct World {
  Manufacturer manufacturer{"acme-networks", kKeyBits,
                            crypto::Drbg("manufacturer-seed")};
  NetworkOperator op{"backbone-operator", kKeyBits,
                     crypto::Drbg("operator-seed")};
  std::unique_ptr<NetworkProcessorDevice> device;

  World() {
    op.accept_certificate(manufacturer.certify_operator(
        op.name(), op.public_key(), kNow - 1000, kNow + 1'000'000));
    device = manufacturer.provision_device("router-0", 2);
  }
};

World& world() {
  static World w;  // key generation is slow; share across tests
  return w;
}

TEST(Protocol, FullInstallSucceeds) {
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  EXPECT_EQ(w.device->install(wire, kNow), InstallStatus::Ok);
  EXPECT_TRUE(w.device->has_application());
  EXPECT_EQ(w.device->application_name(), "ipv4-forward");
}

TEST(Protocol, InstalledAppProcessesTraffic) {
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  ASSERT_EQ(w.device->install(wire, kNow), InstallStatus::Ok);
  util::Bytes pkt = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                         net::ip(10, 0, 0, 2), 5, 6,
                                         util::bytes_of("through the router"));
  np::PacketResult r = w.device->process_packet(pkt);
  EXPECT_EQ(r.outcome, np::PacketOutcome::Forwarded);
  EXPECT_TRUE(net::ipv4_checksum_ok(r.output));
}

TEST(Protocol, ReprogrammingSwitchesApplication) {
  World& w = world();
  ASSERT_EQ(w.device->install(w.op.program_device(net::build_ipv4_forward(),
                                                  w.device->public_key()),
                              kNow),
            InstallStatus::Ok);
  ASSERT_EQ(w.device->install(w.op.program_device(net::build_udp_echo(),
                                                  w.device->public_key()),
                              kNow),
            InstallStatus::Ok);
  EXPECT_EQ(w.device->application_name(), "udp-echo");
  // Echo semantics now live.
  util::Bytes pkt = net::make_udp_packet(net::ip(1, 2, 3, 4),
                                         net::ip(5, 6, 7, 8), 1000, 2000,
                                         util::bytes_of("echo me"));
  np::PacketResult r = w.device->process_packet(pkt);
  ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded);
  auto out = net::Ipv4Packet::parse(r.output);
  EXPECT_EQ(out->src, net::ip(5, 6, 7, 8));
}

TEST(Protocol, FreshHashParameterPerPackage) {
  World& w = world();
  (void)w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  std::uint32_t p1 = w.op.last_hash_param();
  (void)w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  std::uint32_t p2 = w.op.last_hash_param();
  EXPECT_NE(p1, p2);
}

TEST(Protocol, ReplayRejected) {
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  ASSERT_EQ(w.device->install(wire, kNow), InstallStatus::Ok);
  EXPECT_EQ(w.device->install(wire, kNow), InstallStatus::ReplayRejected);
}

TEST(Protocol, WrongDeviceRejected) {
  // SR4: a package sealed for router-0 must not install on router-1.
  World& w = world();
  auto other = w.manufacturer.provision_device("router-1", 1);
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  EXPECT_EQ(other->install(wire, kNow), InstallStatus::WrongDevice);
  EXPECT_FALSE(other->has_application());
}

TEST(Protocol, UncertifiedOperatorRejected) {
  // SR1: an attacker with their own keypair but no manufacturer-issued
  // certificate cannot program the device.
  World& w = world();
  NetworkOperator rogue("rogue", kKeyBits, crypto::Drbg("rogue-seed"));
  // Self-issued certificate (signed by the rogue's own key).
  crypto::RsaKeyPair rogue_ca = crypto::rsa_generate(
      kKeyBits, *std::make_unique<crypto::Drbg>("rogue-ca"));
  rogue.accept_certificate(crypto::issue_certificate(
      "rogue", crypto::CertRole::NetworkOperator, 9, kNow - 10, kNow + 10000,
      rogue.public_key(), "fake-manufacturer", rogue_ca.priv));
  WirePackage wire =
      rogue.program_device(net::build_ipv4_forward(), w.device->public_key());
  EXPECT_EQ(w.device->install(wire, kNow), InstallStatus::BadCertificate);
}

TEST(Protocol, ExpiredCertificateRejected) {
  World& w = world();
  NetworkOperator stale("stale-op", kKeyBits, crypto::Drbg("stale-seed"));
  stale.accept_certificate(w.manufacturer.certify_operator(
      stale.name(), stale.public_key(), kNow - 5000, kNow - 1000));
  WirePackage wire =
      stale.program_device(net::build_ipv4_forward(), w.device->public_key());
  EXPECT_EQ(w.device->install(wire, kNow), InstallStatus::BadCertificate);
}

TEST(Protocol, TamperedCiphertextRejected) {
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  wire.ciphertext[wire.ciphertext.size() / 2] ^= 0x40;
  InstallStatus s = w.device->install(wire, kNow);
  EXPECT_TRUE(s == InstallStatus::CorruptPackage ||
              s == InstallStatus::BadSignature);
}

TEST(Protocol, TamperedKeyWrapRejected) {
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  wire.wrapped_key[0] ^= 0x01;
  InstallStatus s = w.device->install(wire, kNow);
  EXPECT_TRUE(s == InstallStatus::WrongDevice ||
              s == InstallStatus::CorruptPackage);
}

TEST(Protocol, SwappedCertificateRejected) {
  // Substituting a different (validly certified) operator's certificate
  // breaks signature verification: the payload wasn't signed by that key.
  World& w = world();
  NetworkOperator other("other-op", kKeyBits, crypto::Drbg("other-seed"));
  crypto::Certificate other_cert = w.manufacturer.certify_operator(
      other.name(), other.public_key(), kNow - 10, kNow + 10000);
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  wire.operator_cert = other_cert;
  EXPECT_EQ(w.device->install(wire, kNow), InstallStatus::BadSignature);
}

TEST(Protocol, GraphTamperCaughtBySignature) {
  // AC2's nightmare scenario -- shipping a graph that whitelists malicious
  // code -- requires re-signing, which the attacker cannot do (AC3/AC4).
  // Any bit flip anywhere in the sealed payload lands in one of the
  // rejection buckets.
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_ipv4_cm(), w.device->public_key());
  for (std::size_t pos : {std::size_t{0}, wire.ciphertext.size() / 3,
                          wire.ciphertext.size() - 1}) {
    WirePackage tampered = wire;
    tampered.ciphertext[pos] ^= 0x80;
    InstallStatus s = w.device->install(tampered, kNow);
    EXPECT_NE(s, InstallStatus::Ok) << "flip at " << pos;
  }
}

TEST(Protocol, WireSerializationRoundTrip) {
  World& w = world();
  WirePackage wire =
      w.op.program_device(net::build_firewall({53}), w.device->public_key());
  util::Bytes bytes = wire.serialize();
  WirePackage back = WirePackage::deserialize(bytes);
  EXPECT_EQ(back.ciphertext, wire.ciphertext);
  EXPECT_EQ(back.wrapped_key, wire.wrapped_key);
  EXPECT_EQ(back.iv, wire.iv);
  EXPECT_EQ(w.device->install(back, kNow), InstallStatus::Ok);
}

TEST(Protocol, PayloadPaddingGrowsWire) {
  World& w = world();
  WirePackage small =
      w.op.program_device(net::build_ipv4_forward(), w.device->public_key());
  WirePackage padded = w.op.program_device(net::build_ipv4_forward(),
                                           w.device->public_key(), 50'000);
  EXPECT_GT(padded.wire_size(), small.wire_size() + 49'000);
  EXPECT_EQ(w.device->install(padded, kNow), InstallStatus::Ok);
}

TEST(Protocol, MonitorStillCatchesAttackAfterSecureInstall) {
  // Full-stack: secure install of the vulnerable app, then the data-plane
  // attack, then detection.
  World& w = world();
  ASSERT_EQ(w.device->install(w.op.program_device(net::build_ipv4_cm(),
                                                  w.device->public_key()),
                              kNow),
            InstallStatus::Ok);
  // Benign CM traffic flows.
  np::PacketResult good = w.device->process_packet(
      net::make_udp_packet(net::ip(1, 1, 1, 1), net::ip(2, 2, 2, 2), 7, 8,
                           util::bytes_of("fine")));
  EXPECT_EQ(good.outcome, np::PacketOutcome::Forwarded);
}

TEST(Protocol, AppStoreRetainsInstalledApps) {
  World& w = world();
  auto device = w.manufacturer.provision_device("store-router", 1);
  ASSERT_EQ(device->install(w.op.program_device(net::build_ipv4_forward(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  ASSERT_EQ(device->install(w.op.program_device(net::build_udp_echo(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  auto apps = device->stored_apps();
  EXPECT_EQ(apps.size(), 2u);
  EXPECT_NE(std::find(apps.begin(), apps.end(), "ipv4-forward"), apps.end());
  EXPECT_NE(std::find(apps.begin(), apps.end(), "udp-echo"), apps.end());
  EXPECT_GT(device->store_bytes(), 0u);
}

TEST(Protocol, FastSwitchRestoresBehaviour) {
  World& w = world();
  auto device = w.manufacturer.provision_device("switch-router", 1);
  ASSERT_EQ(device->install(w.op.program_device(net::build_ipv4_forward(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  ASSERT_EQ(device->install(w.op.program_device(net::build_udp_echo(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  EXPECT_EQ(device->application_name(), "udp-echo");

  // Switch back without any cryptography.
  ASSERT_TRUE(device->switch_to("ipv4-forward"));
  EXPECT_EQ(device->application_name(), "ipv4-forward");
  util::Bytes pkt = net::make_udp_packet(net::ip(9, 9, 9, 9),
                                         net::ip(8, 8, 8, 8), 1, 2,
                                         util::bytes_of("fwd me"));
  np::PacketResult r = device->process_packet(pkt);
  ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded);
  // Forwarding, not echoing: destination unchanged, TTL decremented.
  auto out = net::Ipv4Packet::parse(r.output);
  EXPECT_EQ(out->dst, net::ip(8, 8, 8, 8));
  EXPECT_EQ(out->ttl, 63);
}

TEST(Protocol, SwitchToUnknownAppFails) {
  World& w = world();
  auto device = w.manufacturer.provision_device("empty-router", 1);
  EXPECT_FALSE(device->switch_to("nonexistent"));
  EXPECT_TRUE(device->stored_apps().empty());
}

TEST(Protocol, ReinstallSameAppUpdatesStoreEntry) {
  World& w = world();
  auto device = w.manufacturer.provision_device("update-router", 1);
  ASSERT_EQ(device->install(w.op.program_device(net::build_ipv4_forward(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  ASSERT_EQ(device->install(w.op.program_device(net::build_ipv4_forward(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  EXPECT_EQ(device->stored_apps().size(), 1u);
}

TEST(SwitchTiming, OrdersOfMagnitudeFasterThanInstall) {
  NiosTimingModel model;
  // A 100 KiB resident app switches in ~ms.
  double switch_s = model.switch_seconds(100 * 1024);
  EXPECT_LT(switch_s, 0.01);
  // Any single security step costs seconds.
  EXPECT_GT(model.step_seconds({}), 1.0);
}

TEST(Protocol, AuditLogRecordsInstallsAndRejections) {
  World& w = world();
  auto device = w.manufacturer.provision_device("audit-router", 1);
  ASSERT_EQ(device->install(w.op.program_device(net::build_ipv4_forward(),
                                                device->public_key()),
                            kNow),
            InstallStatus::Ok);
  // A replay rejection must also be logged.
  WirePackage wire =
      w.op.program_device(net::build_udp_echo(), device->public_key());
  ASSERT_EQ(device->install(wire, kNow), InstallStatus::Ok);
  ASSERT_EQ(device->install(wire, kNow), InstallStatus::ReplayRejected);
  device->switch_to("ipv4-forward");
  device->switch_core_to(0, "udp-echo");

  const auto& log = device->audit_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0].kind, AuditEvent::Kind::InstallAttempt);
  EXPECT_EQ(log[0].status, InstallStatus::Ok);
  EXPECT_EQ(log[0].detail, "ipv4-forward");
  EXPECT_EQ(log[0].time, kNow);
  EXPECT_EQ(log[2].status, InstallStatus::ReplayRejected);
  EXPECT_EQ(log[2].detail, "replay-rejected");
  EXPECT_EQ(log[3].kind, AuditEvent::Kind::FastSwitch);
  EXPECT_EQ(log[3].detail, "ipv4-forward (all cores)");
  EXPECT_EQ(log[4].detail, "udp-echo (core 0)");
}

TEST(Protocol, AuditLogCapturesAttackAttempts) {
  World& w = world();
  auto device = w.manufacturer.provision_device("audit-router-2", 1);
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), device->public_key());
  wire.ciphertext[3] ^= 0x01;
  (void)device->install(wire, kNow);
  ASSERT_EQ(device->audit_log().size(), 1u);
  EXPECT_NE(device->audit_log()[0].status, InstallStatus::Ok);
}

TEST(TimedInstallTest, SucceedsAndReportsOps) {
  World& w = world();
  crypto::RsaKeyPair device_keys = crypto::rsa_generate(
      kKeyBits, *std::make_unique<crypto::Drbg>("timed-device"));
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), device_keys.pub);
  TimedInstallResult r =
      timed_install(wire, device_keys.priv, w.manufacturer.public_key(), kNow);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.unwrap_ops.limb_muls, 0u);
  EXPECT_GT(r.aes_ops.aes_blocks, 0u);
  EXPECT_GT(r.verify_ops.sha256_blocks, 0u);
  EXPECT_GT(r.cert_ops.limb_muls, 0u);
  EXPECT_GT(r.wire_bytes, 1000u);

  NiosTimingModel model;
  InstallTiming t = r.timing(model);
  // Each step carries the invocation overhead; RSA unwrap is the most
  // compute-heavy step (Table 2's shape).
  EXPECT_GT(t.rsa_unwrap_s, t.cert_check_s);
  EXPECT_GT(t.total(), t.total_no_network_no_cert());
}

TEST(TimedInstallTest, FailuresSurfaceInStatus) {
  World& w = world();
  crypto::RsaKeyPair device_keys = crypto::rsa_generate(
      kKeyBits, *std::make_unique<crypto::Drbg>("timed-device-2"));
  WirePackage wire =
      w.op.program_device(net::build_ipv4_forward(), device_keys.pub);
  // Wrong manufacturer root: certificate check fails.
  TimedInstallResult r =
      timed_install(wire, device_keys.priv, w.op.public_key(), kNow);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cert_status, crypto::CertStatus::BadSignature);
}

}  // namespace
}  // namespace sdmmon::protocol
