#include "monitor/graph_dot.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"

namespace sdmmon::monitor {
namespace {

TEST(GraphDot, ContainsNodesAndEdges) {
  isa::Program p = isa::assemble(R"(
main:
    beq $t0, $t1, out
    addiu $t0, $t0, 1
out:
    jr $ra
  )");
  auto g = extract_graph(p, MerkleTreeHash(0xD07));
  std::string dot = graph_to_dot(g, &p);
  EXPECT_NE(dot.find("digraph monitoring_graph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);   // fall-through
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);   // taken edge
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // non-seq edge
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos); // exit node
  EXPECT_NE(dot.find("beq"), std::string::npos);  // disassembly in labels
  EXPECT_NE(dot.find("style=bold"), std::string::npos);  // entry mark
}

TEST(GraphDot, WorksWithoutProgram) {
  isa::Program p = isa::assemble("main:\n jr $ra\n");
  auto g = extract_graph(p, MerkleTreeHash(1));
  std::string dot = graph_to_dot(g);
  EXPECT_NE(dot.find("n0 [label=\"0: h="), std::string::npos);
  EXPECT_EQ(dot.find("jr"), std::string::npos);  // no disassembly
}

TEST(GraphDot, BalancedBracesAndValidStructure) {
  isa::Program p = isa::assemble(R"(
main:
    jal fn
    jr $ra
fn:
    jr $ra
  )");
  auto g = extract_graph(p, MerkleTreeHash(2));
  std::string dot = graph_to_dot(g, &p);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
  // Every node appears.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
}

}  // namespace
}  // namespace sdmmon::monitor
