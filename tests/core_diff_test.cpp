// Differential testing of the NP core: generate random straight-line ALU
// programs, evaluate them with an independent C++ oracle over the same
// register file semantics, and require bit-exact agreement. This covers
// the ALU/shift/compare/mult-div data paths far beyond the hand-written
// cases in core_test.cpp.
#include <gtest/gtest.h>

#include <array>
#include <iterator>
#include <sstream>

#include "isa/assembler.hpp"
#include "np/core.hpp"
#include "util/rng.hpp"

namespace sdmmon::np {
namespace {

struct OracleState {
  std::array<std::uint32_t, 32> regs{};
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;

  void write(int reg, std::uint32_t value) {
    if (reg != 0) regs[static_cast<std::size_t>(reg)] = value;
  }
};

// One random ALU operation: emits assembly and applies the oracle.
struct OpGen {
  const char* mnemonic;
  // kind: 0 = rrr, 1 = rri (signed imm), 2 = rri (zero-ext imm),
  //       3 = shift-imm, 4 = mult/div pair, 5 = lui
  int kind;
  void (*apply)(OracleState&, int rd, int rs, int rt, std::int32_t imm);
};

std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }

const OpGen kOps[] = {
    {"addu", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] + st.regs[rt]);
     }},
    {"subu", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] - st.regs[rt]);
     }},
    {"and", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] & st.regs[rt]);
     }},
    {"or", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] | st.regs[rt]);
     }},
    {"xor", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] ^ st.regs[rt]);
     }},
    {"nor", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, ~(st.regs[rs] | st.regs[rt]));
     }},
    {"slt", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, s(st.regs[rs]) < s(st.regs[rt]) ? 1u : 0u);
     }},
    {"sltu", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] < st.regs[rt] ? 1u : 0u);
     }},
    {"sllv", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       // asm order sllv rd, rt, rs -> emitted as rd, rs(=value), rt(=amount)
       st.write(rd, st.regs[rs] << (st.regs[rt] & 31));
     }},
    {"srlv", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, st.regs[rs] >> (st.regs[rt] & 31));
     }},
    {"srav", 0,
     [](OracleState& st, int rd, int rs, int rt, std::int32_t) {
       st.write(rd, static_cast<std::uint32_t>(s(st.regs[rs]) >>
                                               (st.regs[rt] & 31)));
     }},
    {"addiu", 1,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] + static_cast<std::uint32_t>(imm));
     }},
    {"slti", 1,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, s(st.regs[rs]) < imm ? 1u : 0u);
     }},
    {"sltiu", 1,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] < static_cast<std::uint32_t>(imm) ? 1u : 0u);
     }},
    {"andi", 2,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] & (static_cast<std::uint32_t>(imm) & 0xFFFF));
     }},
    {"ori", 2,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] | (static_cast<std::uint32_t>(imm) & 0xFFFF));
     }},
    {"xori", 2,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] ^ (static_cast<std::uint32_t>(imm) & 0xFFFF));
     }},
    {"sll", 3,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] << imm);
     }},
    {"srl", 3,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, st.regs[rs] >> imm);
     }},
    {"sra", 3,
     [](OracleState& st, int rd, int rs, int, std::int32_t imm) {
       st.write(rd, static_cast<std::uint32_t>(s(st.regs[rs]) >> imm));
     }},
    {"multu", 4,
     [](OracleState& st, int, int rs, int rt, std::int32_t) {
       std::uint64_t p = static_cast<std::uint64_t>(st.regs[rs]) * st.regs[rt];
       st.lo = static_cast<std::uint32_t>(p);
       st.hi = static_cast<std::uint32_t>(p >> 32);
     }},
    {"mult", 4,
     [](OracleState& st, int, int rs, int rt, std::int32_t) {
       std::int64_t p = static_cast<std::int64_t>(s(st.regs[rs])) *
                        s(st.regs[rt]);
       st.lo = static_cast<std::uint32_t>(p);
       st.hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
     }},
    {"divu", 4,
     [](OracleState& st, int, int rs, int rt, std::int32_t) {
       if (st.regs[rt] != 0) {
         st.lo = st.regs[rs] / st.regs[rt];
         st.hi = st.regs[rs] % st.regs[rt];
       }
     }},
    {"lui", 5,
     [](OracleState& st, int rd, int, int, std::int32_t imm) {
       st.write(rd, static_cast<std::uint32_t>(imm & 0xFFFF) << 16);
     }},
};

// Registers the generator may use as destinations/sources ($t0-$t7,
// $s0-$s7, $v0, $v1, $a0-$a3): avoids $sp/$ra/$at.
constexpr int kUsable[] = {2, 3, 4, 5, 6, 7, 8,  9,  10, 11,
                           12, 13, 14, 15, 16, 17, 18, 19, 20, 21,
                           22, 23};

class CoreDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CoreDifferentialTest, RandomAluProgramMatchesOracle) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  // Seed registers with random values via li (lui+ori), mirrored in the
  // oracle.
  OracleState oracle;
  std::ostringstream src;
  src << "main:\n";
  for (int r : kUsable) {
    std::uint32_t v = rng.next_u32();
    src << "  li $" << isa::reg_name(r) << ", " << v << "\n";
    oracle.write(r, v);
  }

  const int kOpsCount = 120;
  bool used_hilo = false;
  for (int i = 0; i < kOpsCount; ++i) {
    const OpGen& op = kOps[rng.below(std::size(kOps))];
    int rd = kUsable[rng.below(std::size(kUsable))];
    int rs = kUsable[rng.below(std::size(kUsable))];
    int rt = kUsable[rng.below(std::size(kUsable))];
    std::int32_t imm = 0;
    switch (op.kind) {
      case 0:
        // For variable shifts the MIPS operand order "sllv rd, rt, rs"
        // means rd = rt << rs; emitting (rd, rs, rt) makes `rs` the value
        // and `rt` the amount, matching the oracle lambdas.
        src << "  " << op.mnemonic << " $" << isa::reg_name(rd) << ", $"
            << isa::reg_name(rs) << ", $" << isa::reg_name(rt) << "\n";
        op.apply(oracle, rd, rs, rt, 0);
        break;
      case 1:
        imm = static_cast<std::int32_t>(rng.below(0x10000)) - 0x8000;
        src << "  " << op.mnemonic << " $" << isa::reg_name(rd) << ", $"
            << isa::reg_name(rs) << ", " << imm << "\n";
        op.apply(oracle, rd, rs, 0, imm);
        break;
      case 2:
        imm = static_cast<std::int32_t>(rng.below(0x10000));
        src << "  " << op.mnemonic << " $" << isa::reg_name(rd) << ", $"
            << isa::reg_name(rs) << ", " << imm << "\n";
        op.apply(oracle, rd, rs, 0, imm);
        break;
      case 3:
        imm = static_cast<std::int32_t>(rng.below(32));
        src << "  " << op.mnemonic << " $" << isa::reg_name(rd) << ", $"
            << isa::reg_name(rs) << ", " << imm << "\n";
        op.apply(oracle, rd, rs, 0, imm);
        break;
      case 4:
        src << "  " << op.mnemonic << " $" << isa::reg_name(rs) << ", $"
            << isa::reg_name(rt) << "\n";
        op.apply(oracle, 0, rs, rt, 0);
        used_hilo = true;
        break;
      case 5:
        imm = static_cast<std::int32_t>(rng.below(0x10000));
        src << "  " << op.mnemonic << " $" << isa::reg_name(rd) << ", "
            << imm << "\n";
        op.apply(oracle, rd, 0, 0, imm);
        break;
    }
  }
  // Read back hi/lo so they are observable through registers.
  if (used_hilo) {
    src << "  mfhi $v0\n  mflo $v1\n";
    oracle.write(2, oracle.hi);
    oracle.write(3, oracle.lo);
  }
  src << "  jr $ra\n";

  Core core;
  core.load_program(isa::assemble(src.str()));
  StepInfo last = core.run(5'000);
  ASSERT_EQ(last.event, StepEvent::PacketDone) << src.str();

  for (int r : kUsable) {
    ASSERT_EQ(core.reg(r), oracle.regs[static_cast<std::size_t>(r)])
        << "register $" << isa::reg_name(r) << "\nprogram:\n"
        << src.str();
  }
  if (used_hilo) {
    EXPECT_EQ(core.reg(2), oracle.regs[2]);
    EXPECT_EQ(core.reg(3), oracle.regs[3]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreDifferentialTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace sdmmon::np
