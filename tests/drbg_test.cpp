#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/bytes.hpp"

namespace sdmmon::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

// RFC 8439 section 2.3.2 block-function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  std::array<std::uint8_t, 32> key;
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(
      to_hex(std::span<const std::uint8_t>(block.data(), block.size())),
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Drbg, DeterministicForSeed) {
  Drbg a("seed-1"), b("seed-1");
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a("seed-1"), b("seed-2");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, StreamContinuesAcrossCalls) {
  Drbg a("seed");
  Bytes first = a.bytes(10);
  Bytes second = a.bytes(10);
  Drbg b("seed");
  Bytes both = b.bytes(20);
  Bytes expected(both.begin(), both.begin() + 10);
  EXPECT_EQ(first, expected);
  EXPECT_NE(first, second);
}

TEST(Drbg, FillSpansBlockBoundary) {
  Drbg a("seed");
  Bytes head = a.bytes(60);
  Bytes tail = a.bytes(8);  // crosses the 64-byte block boundary
  Drbg b("seed");
  Bytes all = b.bytes(68);
  Bytes expect_tail(all.begin() + 60, all.end());
  EXPECT_EQ(tail, expect_tail);
  EXPECT_EQ(head, Bytes(all.begin(), all.begin() + 60));
}

TEST(Drbg, BelowInRangeAndUniformish) {
  Drbg d("uniform-test");
  std::map<std::uint64_t, int> counts;
  const int n = 64000;
  for (int i = 0; i < n; ++i) ++counts[d.below(16)];
  EXPECT_EQ(counts.size(), 16u);
  for (auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 16, 0.01) << "value " << v;
  }
}

TEST(Drbg, ForkIsIndependentAndDeterministic) {
  Drbg parent("root");
  Drbg child1 = parent.fork("a");
  Drbg child1_again = Drbg("root").fork("a");
  EXPECT_EQ(child1.bytes(32), child1_again.bytes(32));
  Drbg c1 = Drbg("root").fork("a");
  Drbg c2 = Drbg("root").fork("b");
  EXPECT_NE(c1.bytes(32), c2.bytes(32));
}

TEST(Drbg, ForkDoesNotDisturbParent) {
  Drbg a("root"), b("root");
  (void)a.fork("label");
  EXPECT_EQ(a.bytes(32), b.bytes(32));
}

TEST(Drbg, ByteSeedConstructor) {
  Bytes seed = from_hex("deadbeef");
  Drbg a{std::span<const std::uint8_t>(seed)};
  Drbg b{std::span<const std::uint8_t>(seed.data(), seed.size())};
  EXPECT_EQ(a.bytes(16), b.bytes(16));
}

TEST(Drbg, U32AndU64Advance) {
  Drbg d("ints");
  auto a = d.next_u32();
  auto b = d.next_u32();
  EXPECT_NE(a, b);  // astronomically unlikely to collide
  auto c = d.next_u64();
  auto e = d.next_u64();
  EXPECT_NE(c, e);
}

}  // namespace
}  // namespace sdmmon::crypto
