#include "monitor/graph_codec.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "util/rng.hpp"

namespace sdmmon::monitor {
namespace {

MonitoringGraph graph_of(const char* src, std::uint32_t param = 0xC0DEC) {
  return extract_graph(isa::assemble(src), MerkleTreeHash(param));
}

TEST(BitIo, RoundTripVariousWidths) {
  BitWriter w;
  w.write(0x5, 3);
  w.write(0x1, 1);
  w.write(0xABCD, 16);
  w.write(0x3FFFFFFF, 30);
  w.write(0, 2);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(3), 0x5u);
  EXPECT_EQ(r.read(1), 0x1u);
  EXPECT_EQ(r.read(16), 0xABCDu);
  EXPECT_EQ(r.read(30), 0x3FFFFFFFu);
  EXPECT_EQ(r.read(2), 0u);
  EXPECT_EQ(r.position(), w.bit_count());
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write(1, 4);
  BitReader r(w.bytes());
  r.read(4);
  // Remaining padding bits of the byte are readable; past the byte throws.
  r.read(4);
  EXPECT_THROW(r.read(1), util::DecodeError);
}

TEST(BitIo, MsbFirstLayout) {
  BitWriter w;
  w.write(1, 1);  // bit 7 of byte 0
  w.write(0, 1);
  w.write(1, 1);
  EXPECT_EQ(w.bytes()[0], 0xA0);
}

TEST(GraphCodec, StraightLineRoundTrip) {
  auto g = graph_of(R"(
main:
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    jr $ra
  )");
  auto encoded = encode_graph(g);
  auto back = decode_graph(encoded);
  EXPECT_EQ(back, g);
}

TEST(GraphCodec, BranchesAndCallsRoundTrip) {
  auto g = graph_of(R"(
main:
    beq $t0, $t1, skip
    jal fn
skip:
    bne $t0, $t2, main
    jr $ra
fn:
    addiu $v0, $zero, 1
    jr $ra
  )");
  EXPECT_EQ(decode_graph(encode_graph(g)), g);
}

TEST(GraphCodec, RealAppsRoundTrip) {
  for (auto& program :
       {net::build_ipv4_forward(), net::build_ipv4_cm(),
        net::build_udp_echo(), net::build_firewall({53, 80})}) {
    MerkleTreeHash hash(0xFEED0000 + program.text.size());
    auto g = extract_graph(program, hash);
    EXPECT_EQ(decode_graph(encode_graph(g)), g) << program.name;
  }
}

TEST(GraphCodec, AllWidthsRoundTrip) {
  isa::Program p = isa::assemble("main:\n beq $t0, $t1, main\n jr $ra\n");
  for (int w : {1, 2, 4, 8}) {
    auto g = extract_graph(p, MerkleTreeHash(7, w));
    EXPECT_EQ(decode_graph(encode_graph(g)), g) << "width " << w;
  }
}

TEST(GraphCodec, SizeBitsIsExactEncodedLength) {
  auto g = graph_of(R"(
main:
    beq $t0, $t1, out
    jal fn
out:
    jr $ra
fn:
    syscall
  )");
  EXPECT_EQ(g.size_bits(), encode_graph(g).bit_length);
}

TEST(GraphCodec, StraightLineCostsSevenBitsPerNode) {
  // w=4 hash + 1 exit bit + 2-bit tag = 7 bits for sequential nodes.
  std::string src = "main:\n";
  for (int i = 0; i < 100; ++i) src += "  addiu $t0, $t0, 1\n";
  src += "  jr $ra\n";
  auto g = graph_of(src.c_str());
  // 100 sequential nodes at 7 bits + jr node (explicit list).
  EXPECT_GE(g.size_bits(), 100u * 7u);
  EXPECT_LT(g.size_bits(), 100u * 7u + 64u);
}

TEST(GraphCodec, CompressionBeatsNaiveSerialization) {
  auto program = net::build_ipv4_cm();
  auto g = extract_graph(program, MerkleTreeHash(1));
  const std::size_t naive_bits = g.serialize().size() * 8;
  EXPECT_LT(g.size_bits(), naive_bits / 5);
  // And is a fraction of the binary itself (paper Sec 2.1).
  EXPECT_LT(g.size_bits(), program.text.size() * 32 / 2);
}

TEST(GraphCodec, EncodedSerializationRoundTrip) {
  auto g = graph_of("main:\n bne $t0, $t1, main\n jr $ra\n");
  auto encoded = encode_graph(g);
  auto wire = encoded.serialize();
  auto back = EncodedGraph::deserialize(wire);
  EXPECT_EQ(back.bits, encoded.bits);
  EXPECT_EQ(back.bit_length, encoded.bit_length);
  EXPECT_EQ(decode_graph(back), g);
}

TEST(GraphCodec, TruncatedStreamThrows) {
  auto g = graph_of("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  auto encoded = encode_graph(g);
  encoded.bits.resize(encoded.bits.size() / 2);
  EXPECT_THROW(decode_graph(encoded), util::DecodeError);
}

TEST(GraphCodec, LengthMismatchThrows) {
  auto g = graph_of("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  auto encoded = encode_graph(g);
  encoded.bit_length += 3;
  EXPECT_THROW(decode_graph(encoded), util::DecodeError);
}

TEST(GraphCodec, RandomGraphsRoundTrip) {
  // Property: arbitrary analyzer-produced graphs survive the codec.
  util::Rng rng(0x60DEC);
  const char* branch_ops[] = {"beq", "bne"};
  for (int t = 0; t < 30; ++t) {
    std::string src = "main:\n";
    const int blocks = 2 + static_cast<int>(rng.below(6));
    for (int b = 0; b < blocks; ++b) {
      src += "b" + std::to_string(b) + ":\n";
      const int len = 1 + static_cast<int>(rng.below(5));
      for (int i = 0; i < len; ++i) {
        src += "  addiu $t" + std::to_string(rng.below(8)) + ", $t" +
               std::to_string(rng.below(8)) + ", 1\n";
      }
      src += "  ";
      src += branch_ops[rng.below(2)];
      src += " $t0, $t1, b" + std::to_string(rng.below(blocks)) + "\n";
    }
    src += "  jr $ra\n";
    auto g = extract_graph(isa::assemble(src), MerkleTreeHash(rng.next_u32()));
    EXPECT_EQ(decode_graph(encode_graph(g)), g) << "trial " << t;
  }
}

}  // namespace
}  // namespace sdmmon::monitor
