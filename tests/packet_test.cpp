#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace sdmmon::net {
namespace {

TEST(Ipv4, MinimalHeaderRoundTrip) {
  Ipv4Packet p;
  p.src = ip(10, 0, 0, 1);
  p.dst = ip(192, 168, 1, 2);
  p.ttl = 17;
  p.protocol = 6;
  p.tos = 0x20;
  p.identification = 0x4242;
  p.payload = util::bytes_of("hello");

  util::Bytes wire = p.to_bytes();
  ASSERT_EQ(wire.size(), 25u);
  EXPECT_EQ(wire[0], 0x45);  // version 4, IHL 5
  EXPECT_TRUE(ipv4_checksum_ok(wire));

  auto parsed = Ipv4Packet::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, p.src);
  EXPECT_EQ(parsed->dst, p.dst);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->protocol, 6);
  EXPECT_EQ(parsed->tos, 0x20);
  EXPECT_EQ(parsed->identification, 0x4242);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Ipv4, OptionsRoundTripAndPadding) {
  Ipv4Packet p;
  p.src = ip(1, 2, 3, 4);
  p.dst = ip(5, 6, 7, 8);
  Ipv4Option opt;
  opt.type = 0x88;
  opt.data = {0xAA, 0xBB, 0xCC};  // TLV = 5 bytes -> padded to 8
  p.options.push_back(opt);

  util::Bytes wire = p.to_bytes();
  EXPECT_EQ(p.header_len(), 28u);
  EXPECT_EQ(wire[0] & 0xF, 7);  // IHL = 7 words
  EXPECT_TRUE(ipv4_checksum_ok(wire));

  auto parsed = Ipv4Packet::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->options.size(), 1u);
  EXPECT_EQ(parsed->options[0].type, 0x88);
  EXPECT_EQ(parsed->options[0].data, opt.data);
}

TEST(Ipv4, MaxOptionsLength) {
  Ipv4Packet p;
  Ipv4Option opt;
  opt.type = 0x88;
  opt.data.assign(38, 0x11);  // TLV 40 -> header 60 (IHL 15)
  p.options.push_back(opt);
  util::Bytes wire = p.to_bytes();
  EXPECT_EQ(wire[0] & 0xF, 15);
  EXPECT_TRUE(Ipv4Packet::parse(wire).has_value());

  // One byte more overflows IHL.
  p.options[0].data.assign(39, 0x11);
  EXPECT_THROW(p.to_bytes(), std::length_error);
}

TEST(Ipv4, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Packet::parse(util::Bytes{}).has_value());
  EXPECT_FALSE(Ipv4Packet::parse(util::Bytes(10, 0)).has_value());
  util::Bytes bad_version(20, 0);
  bad_version[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Packet::parse(bad_version).has_value());
  util::Bytes bad_ihl(20, 0);
  bad_ihl[0] = 0x43;  // IHL 3 < 5
  EXPECT_FALSE(Ipv4Packet::parse(bad_ihl).has_value());
}

TEST(Ipv4, ChecksumDetectsCorruption) {
  util::Bytes wire =
      make_udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1000, 2000,
                      util::bytes_of("x"));
  ASSERT_TRUE(ipv4_checksum_ok(wire));
  wire[8] ^= 0x01;  // flip a TTL bit
  EXPECT_FALSE(ipv4_checksum_ok(wire));
}

TEST(Ipv4, KnownChecksumVector) {
  // Classic example header (Wikipedia/RFC 1071): checksum must be 0xB861.
  util::Bytes header =
      util::from_hex("45000073000040004011b861c0a80001c0a800c7");
  EXPECT_EQ(ipv4_checksum(header), 0xB861);
}

TEST(Udp, RoundTrip) {
  UdpDatagram d;
  d.src_port = 1234;
  d.dst_port = 53;
  d.payload = util::bytes_of("query");
  util::Bytes wire = d.to_bytes();
  EXPECT_EQ(wire.size(), 13u);
  auto parsed = UdpDatagram::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 1234);
  EXPECT_EQ(parsed->dst_port, 53);
  EXPECT_EQ(parsed->payload, d.payload);
}

TEST(Udp, ParseRejectsShortOrLying) {
  EXPECT_FALSE(UdpDatagram::parse(util::Bytes(7, 0)).has_value());
  UdpDatagram d;
  d.payload = util::bytes_of("abc");
  util::Bytes wire = d.to_bytes();
  util::store_be16(200, wire.data() + 4);  // length beyond buffer
  EXPECT_FALSE(UdpDatagram::parse(wire).has_value());
}

TEST(Udp, InIpv4Convenience) {
  util::Bytes payload = util::bytes_of("data");
  util::Bytes wire =
      make_udp_packet(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 5555, 80, payload, 9);
  auto ip_parsed = Ipv4Packet::parse(wire);
  ASSERT_TRUE(ip_parsed.has_value());
  EXPECT_EQ(ip_parsed->ttl, 9);
  EXPECT_EQ(ip_parsed->protocol, 17);
  auto udp_parsed = UdpDatagram::parse(ip_parsed->payload);
  ASSERT_TRUE(udp_parsed.has_value());
  EXPECT_EQ(udp_parsed->dst_port, 80);
  EXPECT_EQ(udp_parsed->payload, payload);
}

TEST(IpHelper, DottedQuad) {
  EXPECT_EQ(ip(1, 2, 3, 4), 0x01020304u);
  EXPECT_EQ(ip(255, 255, 255, 255), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace sdmmon::net
