// IP-in-IP tunnel apps: encapsulation at one monitored core, decapsulation
// at another, with the inner packet surviving the round trip bit-exactly.
#include <gtest/gtest.h>

#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/monitored_core.hpp"

namespace sdmmon::net {
namespace {

constexpr std::uint32_t kTunnelSrc = 0xC0A80001;  // 192.168.0.1
constexpr std::uint32_t kTunnelDst = 0xC0A800FE;  // 192.168.0.254

np::MonitoredCore make_core(const isa::Program& app, std::uint32_t param) {
  np::MonitoredCore core;
  monitor::MerkleTreeHash hash(param);
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  return core;
}

util::Bytes inner_packet() {
  return make_udp_packet(ip(10, 0, 0, 5), ip(10, 0, 9, 9), 5353, 53,
                         util::bytes_of("tunneled dns query"), 17);
}

TEST(Tunnel, EncapWrapsWithValidOuterHeader) {
  auto core = make_core(build_ipip_encap(kTunnelSrc, kTunnelDst), 0x71);
  util::Bytes inner = inner_packet();
  np::PacketResult r = core.process_packet(inner);
  ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded);
  ASSERT_EQ(r.output.size(), inner.size() + 20);

  auto outer = Ipv4Packet::parse(r.output);
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->protocol, 4);  // IPIP
  EXPECT_EQ(outer->src, kTunnelSrc);
  EXPECT_EQ(outer->dst, kTunnelDst);
  EXPECT_EQ(outer->ttl, 64);
  EXPECT_TRUE(ipv4_checksum_ok(r.output));
  // Payload of the outer packet is the untouched inner packet.
  EXPECT_EQ(outer->payload, inner);
}

TEST(Tunnel, DecapRecoversInnerExactly) {
  auto encap = make_core(build_ipip_encap(kTunnelSrc, kTunnelDst), 0x72);
  auto decap = make_core(build_ipip_decap(), 0x73);
  util::Bytes inner = inner_packet();

  np::PacketResult wrapped = encap.process_packet(inner);
  ASSERT_EQ(wrapped.outcome, np::PacketOutcome::Forwarded);
  np::PacketResult unwrapped = decap.process_packet(wrapped.output);
  ASSERT_EQ(unwrapped.outcome, np::PacketOutcome::Forwarded);
  EXPECT_EQ(unwrapped.output, inner);  // bit-exact round trip
}

TEST(Tunnel, DecapForwardsNonTunnelTraffic) {
  auto decap = make_core(build_ipip_decap(), 0x74);
  util::Bytes plain = inner_packet();  // proto 17, not 4
  np::PacketResult r = decap.process_packet(plain);
  ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded);
  auto out = Ipv4Packet::parse(r.output);
  EXPECT_EQ(out->ttl, 16);  // normal forwarding path decrements
  EXPECT_TRUE(ipv4_checksum_ok(r.output));
}

TEST(Tunnel, DecapDropsTruncatedTunnelPayload) {
  auto decap = make_core(build_ipip_decap(), 0x75);
  Ipv4Packet outer;
  outer.src = kTunnelSrc;
  outer.dst = kTunnelDst;
  outer.protocol = 4;
  outer.payload = util::Bytes(10, 0x11);  // too short to be IPv4
  np::PacketResult r = decap.process_packet(outer.to_bytes());
  EXPECT_EQ(r.outcome, np::PacketOutcome::Dropped);
}

TEST(Tunnel, EncapDropsMalformedInner) {
  auto encap = make_core(build_ipip_encap(kTunnelSrc, kTunnelDst), 0x76);
  EXPECT_EQ(encap.process_packet(util::Bytes(8, 0)).outcome,
            np::PacketOutcome::Dropped);
}

TEST(Tunnel, MonitoredTunnelPathNoFalsePositives) {
  auto encap = make_core(build_ipip_encap(kTunnelSrc, kTunnelDst), 0x77);
  auto decap = make_core(build_ipip_decap(), 0x78);
  for (int i = 0; i < 50; ++i) {
    util::Bytes inner = make_udp_packet(
        ip(10, 0, 0, static_cast<std::uint8_t>(i)), ip(10, 0, 9, 9),
        static_cast<std::uint16_t>(1000 + i), 53,
        util::Bytes(static_cast<std::size_t>(10 + i), 0x5A));
    auto w = encap.process_packet(inner);
    ASSERT_EQ(w.outcome, np::PacketOutcome::Forwarded);
    auto u = decap.process_packet(w.output);
    ASSERT_EQ(u.outcome, np::PacketOutcome::Forwarded);
    ASSERT_EQ(u.output, inner);
  }
  EXPECT_EQ(encap.stats().attacks_detected, 0u);
  EXPECT_EQ(decap.stats().attacks_detected, 0u);
}

}  // namespace
}  // namespace sdmmon::net
