// End-to-end soundness property: for randomly GENERATED programs with
// real control flow (forward branches, bounded loops, calls), executed on
// the actual core with the monitor armed, the monitor must never flag
// honest execution -- across hash widths, parameters, and packets.
// This exercises core+analysis+monitor together, beyond the hand-fed
// traces in monitor_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "monitor/reference_monitor.hpp"
#include "np/monitored_core.hpp"
#include "util/rng.hpp"

namespace sdmmon {
namespace {

// Generates a structured random program:
//  * a few loops with packet-dependent trip counts (bounded),
//  * forward branches on packet bytes,
//  * calls to 1-2 leaf functions,
//  * reads of the rx buffer, writes to data RAM,
//  * return (drop) or commit at the end.
std::string generate_program(util::Rng& rng) {
  std::ostringstream os;
  const int blocks = 2 + static_cast<int>(rng.below(4));
  const bool commit = rng.chance(0.5);
  const bool use_call = rng.chance(0.6);

  os << "main:\n";
  if (use_call) {
    os << "  addiu $sp, $sp, -8\n"
       << "  sw $ra, 4($sp)\n";
  }
  os << "  li $s0, 0x30000\n"
     << "  li $s1, 0x40000\n"
     << "  li $t0, 0xFFFF0000\n"
     << "  lw $s2, 0($t0)\n"
     << "  beqz $s2, finish\n";

  for (int b = 0; b < blocks; ++b) {
    os << "blk" << b << ":\n";
    // Random ALU filler.
    const int filler = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < filler; ++i) {
      os << "  addiu $t" << rng.below(4) << ", $t" << rng.below(4) << ", "
         << rng.below(100) << "\n";
    }
    switch (rng.below(3)) {
      case 0: {
        // Bounded loop over min(len, K) packet bytes.
        const int cap = 4 + static_cast<int>(rng.below(12));
        os << "  li $t4, " << cap << "\n"
           << "  blt $s2, $t4, cap_ok" << b << "\n"
           << "  li $t4, " << cap << "\n"
           << "  b cap_done" << b << "\n"
           << "cap_ok" << b << ":\n"
           << "  move $t4, $s2\n"
           << "cap_done" << b << ":\n"
           << "  move $t5, $zero\n"
           << "  move $t6, $zero\n"
           << "loop" << b << ":\n"
           << "  addu $t7, $s0, $t5\n"
           << "  lbu $t8, 0($t7)\n"
           << "  addu $t6, $t6, $t8\n"
           << "  addiu $t5, $t5, 1\n"
           << "  blt $t5, $t4, loop" << b << "\n";
        break;
      }
      case 1:
        // Data-dependent forward branch on a packet byte.
        os << "  lbu $t5, " << rng.below(16) << "($s0)\n"
           << "  andi $t5, $t5, 1\n"
           << "  beqz $t5, skip" << b << "\n"
           << "  addiu $t6, $t6, 7\n"
           << "  sw $t6, " << (4 * rng.below(16)) << "($s1)\n"
           << "skip" << b << ":\n";
        break;
      case 2:
        if (use_call) {
          os << "  lbu $a0, " << rng.below(8) << "($s0)\n"
             << "  jal helper\n";
        } else {
          os << "  xori $t6, $t6, 0x55\n";
        }
        break;
    }
  }

  os << "finish:\n";
  if (commit) {
    os << "  sb $t6, 0($s1)\n"
       << "  li $t0, 0xFFFF0004\n"
       << "  li $t1, 1\n"
       << "  sw $t1, 0($t0)\n";
  }
  if (use_call) {
    os << "  lw $ra, 4($sp)\n"
       << "  addiu $sp, $sp, 8\n";
  }
  os << "  jr $ra\n";
  if (use_call) {
    os << "helper:\n"
       << "  andi $v0, $a0, 0xF\n"
       << "  addiu $v0, $v0, 3\n"
       << "  jr $ra\n";
  }
  return os.str();
}

class MonitorSoundness : public ::testing::TestWithParam<int> {};

TEST_P(MonitorSoundness, GeneratedProgramsNeverFalsePositive) {
  util::Rng rng(0x50DA + static_cast<std::uint64_t>(GetParam()) * 1299827);
  for (int trial = 0; trial < 8; ++trial) {
    std::string src = generate_program(rng);
    isa::Program program;
    try {
      program = isa::assemble(src);
    } catch (const isa::AsmError& e) {
      FAIL() << e.what() << "\n" << src;
    }
    const int width = (GetParam() % 2 == 0) ? 4 : 8;
    monitor::MerkleTreeHash hash(rng.next_u32(), width);
    np::MonitoredCore core;
    core.install(program, monitor::extract_graph(program, hash),
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    for (int pkt = 0; pkt < 6; ++pkt) {
      util::Bytes packet(rng.below(64));
      for (auto& b : packet) b = static_cast<std::uint8_t>(rng.next());
      np::PacketResult r = core.process_packet(packet);
      ASSERT_NE(r.outcome, np::PacketOutcome::AttackDetected)
          << "false positive, trial " << trial << " pkt " << pkt << "\n"
          << src;
      ASSERT_NE(r.outcome, np::PacketOutcome::Trapped)
          << np::trap_name(r.trap) << "\n" << src;
    }
    EXPECT_EQ(core.stats().attacks_detected, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorSoundness, ::testing::Range(0, 12));

// Batch-partitioning independence: the parallel engine's split of
// process_packet() into execute_packet() + commit_result() -- including
// snapshot/restore rollback of speculatively executed packets -- must be
// invisible. For any random partitioning of a packet stream into batches,
// and any interleaving of discarded speculative executions, the per-packet
// results and cumulative CoreStats must equal the plain serial stream.
TEST_P(MonitorSoundness, BatchPartitioningAndRollbackIndependence) {
  util::Rng rng(0xBA7C + static_cast<std::uint64_t>(GetParam()) * 777767);
  for (int trial = 0; trial < 4; ++trial) {
    std::string src = generate_program(rng);
    isa::Program program = isa::assemble(src);
    monitor::MerkleTreeHash hash(rng.next_u32());

    np::MonitoredCore serial, batched, speculated;
    for (np::MonitoredCore* core : {&serial, &batched, &speculated}) {
      core->install(program, monitor::extract_graph(program, hash),
                    std::make_unique<monitor::MerkleTreeHash>(hash));
    }

    const std::size_t n = 24;
    std::vector<util::Bytes> packets(n);
    for (auto& packet : packets) {
      packet.resize(1 + rng.below(48));
      for (auto& b : packet) b = static_cast<std::uint8_t>(rng.next());
    }

    // Reference: the serial engine's per-packet path.
    std::vector<np::PacketResult> expected;
    for (const auto& packet : packets) {
      expected.push_back(serial.process_packet(packet));
    }

    // Random partitioning: execute a whole batch, then commit it in order.
    for (std::size_t i = 0; i < n;) {
      const std::size_t batch = std::min(n - i, 1 + rng.below(5));
      std::vector<np::PacketResult> results;
      for (std::size_t k = 0; k < batch; ++k) {
        results.push_back(batched.execute_packet(packets[i + k]));
      }
      for (std::size_t k = 0; k < batch; ++k) {
        batched.commit_result(results[k]);
        EXPECT_EQ(results[k].outcome, expected[i + k].outcome) << i + k;
        EXPECT_EQ(results[k].instructions, expected[i + k].instructions)
            << i + k;
        EXPECT_EQ(results[k].output, expected[i + k].output) << i + k;
      }
      i += batch;
    }

    // Misspeculation: before some packets, snapshot the core, execute a
    // few future packets WITHOUT committing, and restore -- exactly the
    // parallel engine's rollback. The committed stream must be unchanged.
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        np::Core snapshot = speculated.core();
        const std::size_t ahead = std::min(n - i, 1 + rng.below(3));
        for (std::size_t k = 0; k < ahead; ++k) {
          (void)speculated.execute_packet(packets[i + k]);
        }
        speculated.core() = snapshot;
      }
      np::PacketResult r = speculated.execute_packet(packets[i]);
      speculated.commit_result(r);
      EXPECT_EQ(r.outcome, expected[i].outcome) << "packet " << i;
      EXPECT_EQ(r.instructions, expected[i].instructions) << "packet " << i;
      EXPECT_EQ(r.output, expected[i].output) << "packet " << i;
    }

    for (const np::MonitoredCore* core : {&batched, &speculated}) {
      EXPECT_EQ(core->stats().packets, serial.stats().packets);
      EXPECT_EQ(core->stats().forwarded, serial.stats().forwarded);
      EXPECT_EQ(core->stats().dropped, serial.stats().dropped);
      EXPECT_EQ(core->stats().attacks_detected,
                serial.stats().attacks_detected);
      EXPECT_EQ(core->stats().traps, serial.stats().traps);
      EXPECT_EQ(core->stats().instructions, serial.stats().instructions);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential fuzz: the compiled HardwareMonitor vs the original
// vector-filter walker (ReferenceMonitor) on random synthetic graphs and
// random hashed-report streams. The two implementations must agree on
// EVERY observable at EVERY step -- verdict, exit_allowed, state_size,
// attack_flagged -- and on the per-packet peak width, the exact tracked
// node set, and the cumulative MonitorStats, across packet resets and
// mid-stream re-installs.

// A random graph exercising every structural feature the compiler packs:
// shared hash values (bucket collisions), indirect-jump fan-out, nodes
// with can_exit, and trap terminals (no successors).
monitor::MonitoringGraph random_graph(util::Rng& rng) {
  const int width = 1 + static_cast<int>(rng.below(8));  // 1..8 bits
  const std::uint32_t n = 1 + rng.below(40);
  std::vector<monitor::GraphNode> nodes(n);
  for (auto& node : nodes) {
    node.hash = static_cast<std::uint8_t>(rng.below(1u << width));
    node.can_exit = rng.chance(0.3);
    if (rng.chance(0.12)) continue;  // trap terminal: no successors
    // 1..2 successors normally; occasional indirect-jump fan-out.
    std::size_t degree = 1 + rng.below(2);
    if (rng.chance(0.15)) degree = 2 + rng.below(6);
    for (std::size_t s = 0; s < degree; ++s) {
      node.successors.push_back(rng.below(n));
    }
  }
  return monitor::MonitoringGraph(width, 0x1000, rng.below(n),
                                  std::move(nodes));
}

// One random hashed-report stream over `graph`. Three flavors: a valid
// random walk from the entry node, a valid walk with corrupted reports
// injected, and uniform random bytes (including values >= 2^w, which the
// bucketed matcher must treat as a plain mismatch).
std::vector<std::uint8_t> random_stream(util::Rng& rng,
                                        const monitor::MonitoringGraph& graph) {
  const std::size_t len = 1 + rng.below(32);
  std::vector<std::uint8_t> stream;
  stream.reserve(len);
  const std::uint32_t flavor = rng.below(3);
  if (flavor == 2) {
    for (std::size_t i = 0; i < len; ++i) {
      stream.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    return stream;
  }
  std::uint32_t at = graph.entry_index();
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t report = graph.node(at).hash;
    if (flavor == 1 && rng.chance(0.2)) {
      report = static_cast<std::uint8_t>(rng.below(256));  // corruption
    }
    stream.push_back(report);
    const auto& succ = graph.node(at).successors;
    if (succ.empty()) break;  // trap terminal: next report would mismatch
    at = succ[rng.below(static_cast<std::uint32_t>(succ.size()))];
  }
  return stream;
}

void expect_monitors_agree(const monitor::HardwareMonitor& compiled,
                           const monitor::ReferenceMonitor& reference,
                           const char* where) {
  ASSERT_EQ(compiled.state_size(), reference.state_size()) << where;
  ASSERT_EQ(compiled.exit_allowed(), reference.exit_allowed()) << where;
  ASSERT_EQ(compiled.attack_flagged(), reference.attack_flagged()) << where;
  ASSERT_EQ(compiled.peak_state_size(), reference.peak_state_size()) << where;
  ASSERT_EQ(compiled.state_nodes(), reference.state_nodes()) << where;
  ASSERT_EQ(compiled.stats().instructions_checked,
            reference.stats().instructions_checked) << where;
  ASSERT_EQ(compiled.stats().mismatches, reference.stats().mismatches)
      << where;
  ASSERT_EQ(compiled.stats().packets_monitored,
            reference.stats().packets_monitored) << where;
  ASSERT_EQ(compiled.stats().state_size_accum,
            reference.stats().state_size_accum) << where;
}

class MonitorDifferential : public ::testing::TestWithParam<int> {};

TEST_P(MonitorDifferential, CompiledMatchesReferenceOnRandomStreams) {
  util::Rng rng(0xD1FF + static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  // 50 graphs x 25 streams x 10 seeds = 12,500 fuzzed streams.
  for (int g = 0; g < 50; ++g) {
    monitor::MonitoringGraph graph = random_graph(rng);
    // The streams below feed on_hashed() directly, so the hash unit is
    // never consulted; a fixed 8-bit unit keeps construction valid for
    // every graph hash width (MerkleTreeHash supports 1/2/4/8 only).
    monitor::HardwareMonitor compiled(
        graph, std::make_unique<monitor::MerkleTreeHash>(rng.next_u32(), 8));
    monitor::ReferenceMonitor reference(
        graph, std::make_unique<monitor::MerkleTreeHash>(rng.next_u32(), 8));
    for (int s = 0; s < 25; ++s) {
      // Occasionally hot-swap a fresh graph mid-sequence: both walkers
      // must re-arm identically and keep accumulating the same stats.
      if (rng.chance(0.04)) {
        graph = random_graph(rng);
        compiled.install(
            monitor::CompiledGraph::compile(graph),
            std::make_unique<monitor::MerkleTreeHash>(rng.next_u32(), 8));
        reference.install(graph, std::make_unique<monitor::MerkleTreeHash>(
                                     rng.next_u32(), 8));
        ASSERT_NO_FATAL_FAILURE(
            expect_monitors_agree(compiled, reference, "post-install"));
      }
      compiled.reset();
      reference.reset();
      ASSERT_NO_FATAL_FAILURE(
          expect_monitors_agree(compiled, reference, "post-reset"));
      for (std::uint8_t report : random_stream(rng, graph)) {
        const monitor::Verdict vc = compiled.on_hashed(report);
        const monitor::Verdict vr = reference.on_hashed(report);
        ASSERT_EQ(vc, vr) << "graph " << g << " stream " << s;
        ASSERT_NO_FATAL_FAILURE(
            expect_monitors_agree(compiled, reference, "mid-stream"));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorDifferential, ::testing::Range(0, 10));

}  // namespace
}  // namespace sdmmon
