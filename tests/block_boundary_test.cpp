// Block-boundary edge cases for the fused execution tier
// (docs/EXECUTION.md): the fusion tables themselves (fused_run_ /
// hash_lane_ invariants on handcrafted texts) and end-to-end tier
// equivalence for the shapes most likely to break a block-granular
// dispatcher -- single-instruction blocks, blocks ending in an
// undecodable (trapping) word, back-to-back block-end branches, and a
// store that dirties the block it is executing from.
#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "np/mpsoc.hpp"
#include "util/rng.hpp"

namespace sdmmon::np {
namespace {

std::shared_ptr<const CompiledProgram> compile(const isa::Program& p) {
  return CompiledProgram::compile(p, monitor::MerkleTreeHash(0xB10C));
}

isa::Program raw_program(std::vector<std::uint32_t> words) {
  isa::Program p;
  p.name = "block-boundary";
  p.text_base = 0;
  p.entry = 0;
  p.text = std::move(words);
  return p;
}

// Run one program to completion on all three tiers and require
// identical final state. Returns the interpreter's final StepInfo.
StepInfo run_all_tiers(const isa::Program& p, std::uint64_t max_steps = 256,
                       std::uint64_t watchdog = 512) {
  auto artifact = compile(p);
  Core interp, pre, fused;
  interp.set_predecode_enabled(false);
  pre.set_block_fuse_enabled(false);
  interp.load_program(p, artifact);
  pre.load_program(p, artifact);
  fused.load_program(p, artifact);
  for (Core* c : {&interp, &pre, &fused}) c->set_watchdog_budget(watchdog);
  EXPECT_TRUE(fused.block_fuse_live());
  EXPECT_FALSE(pre.block_fuse_live());

  const StepInfo a = interp.run(max_steps);
  const StepInfo b = pre.run(max_steps);
  const StepInfo c = fused.run(max_steps);
  for (const StepInfo* s : {&b, &c}) {
    EXPECT_EQ(a.pc, s->pc);
    EXPECT_EQ(a.word, s->word);
    EXPECT_EQ(static_cast<int>(a.event), static_cast<int>(s->event));
    EXPECT_EQ(static_cast<int>(a.trap), static_cast<int>(s->trap));
  }
  for (const Core* c2 : {&pre, &fused}) {
    EXPECT_EQ(interp.pc(), c2->pc());
    EXPECT_EQ(interp.cycles(), c2->cycles());
    EXPECT_EQ(interp.runnable(), c2->runnable());
    for (int r = 0; r < 32; ++r) {
      EXPECT_EQ(interp.reg(r), c2->reg(r)) << "register " << r;
    }
  }
  return a;
}

std::uint32_t addiu(int rt, int rs, std::int32_t imm) {
  return isa::encode(isa::make_itype(isa::Op::Addiu, rt, rs, imm));
}

std::uint32_t beq(int rs, int rt, std::int32_t off) {
  return isa::encode(isa::make_branch(isa::Op::Beq, rs, rt, off));
}

std::uint32_t jr_ra() {
  return isa::encode(isa::make_rtype(isa::Op::Jr, 0, 31, 0));
}

// ---------------------------------------------------------------------
// Fusion-table invariants on handcrafted texts
// ---------------------------------------------------------------------

// A pure run is truncated at kBlockEnd: fused dispatch retires at most
// one basic block, even when the next block's leader is pure too.
TEST(BlockBoundary, PureRunStopsAtBlockEnd) {
  // addiu; addiu; beq(not taken); addiu; jr -- the branch ends block 1.
  const isa::Program p = raw_program(
      {addiu(8, 8, 1), addiu(9, 9, 2), beq(8, 9, 1), addiu(10, 10, 3),
       jr_ra()});
  auto artifact = compile(p);
  const std::uint8_t* run = artifact->fused_run_data();
  EXPECT_EQ(run[0], 2u) << "run must not cross the branch";
  EXPECT_EQ(run[1], 1u);
  EXPECT_EQ(run[2], 0u) << "branches never fuse";
  EXPECT_EQ(run[3], 1u);
  EXPECT_EQ(run[4], 0u) << "jr never fuses";
  // hash_lane_ is exactly the mhash column of the PreOp array.
  for (std::size_t i = 0; i < artifact->num_ops(); ++i) {
    EXPECT_EQ(artifact->hash_lane_data()[i], artifact->ops_data()[i].mhash)
        << "op " << i;
  }
  // Two maximal runs ({addiu,addiu} and {addiu}), 3 fused ops total.
  EXPECT_EQ(artifact->num_fused_runs(), 2u);
  EXPECT_EQ(artifact->num_fused_ops(), 3u);
  run_all_tiers(p);
}

// An undecodable word is a trapping PreOp: never pure, and a pure run
// falling through into it must stop exactly at the boundary so the trap
// fires at the same pc / cycle count on every tier.
TEST(BlockBoundary, BlockEndingInUndecodableWordTrapsIdentically) {
  const isa::Program p = raw_program(
      {addiu(8, 8, 1), addiu(9, 9, 2), addiu(10, 10, 3), 0xFFFFFFFFu});
  auto artifact = compile(p);
  EXPECT_EQ(artifact->fused_run_data()[0], 3u);
  EXPECT_FALSE(artifact->ops_data()[3].flags & CompiledProgram::kDecoded);
  EXPECT_EQ(artifact->fused_run_data()[3], 0u)
      << "undecodable words must never fuse";
  const StepInfo last = run_all_tiers(p);
  EXPECT_EQ(static_cast<int>(last.event),
            static_cast<int>(StepEvent::Trapped));
  EXPECT_EQ(static_cast<int>(last.trap),
            static_cast<int>(Trap::DecodeFault));
  EXPECT_EQ(last.pc, 12u) << "trap pc is the undecodable word itself";
}

// Back-to-back branches: every block is a single kBlockEnd instruction,
// so the fused tier has nothing to fuse and must degrade to per-op
// dispatch without skewing state.
TEST(BlockBoundary, BackToBackBranchesNeverFuse) {
  // beq $0,$0 chains: always taken, hopping forward one word at a time,
  // then a not-taken pair on distinct registers, then jr.
  isa::Program p = raw_program(
      {beq(0, 0, 0), beq(0, 0, 0), beq(0, 0, 0), addiu(8, 0, 7),
       beq(8, 0, 0), beq(8, 0, 0), jr_ra()});
  auto artifact = compile(p);
  for (std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(artifact->fused_run_data()[i], 0u) << "op " << i;
    EXPECT_TRUE(artifact->ops_data()[i].flags & CompiledProgram::kBlockEnd)
        << "op " << i;
  }
  run_all_tiers(p);
}

// Single-instruction blocks that ARE pure: a branch target immediately
// followed by another branch gives a one-op fused run; the dispatcher
// must handle run length 1 (dispatch overhead but no superop body).
TEST(BlockBoundary, SingleInstructionPureBlocksFuseAsRunsOfOne) {
  isa::Program p = raw_program(
      {addiu(8, 0, 5),    // block A: one pure op
       beq(0, 0, 1),      // jump over the next word
       addiu(8, 8, 100),  // skipped
       addiu(9, 8, 1),    // block B: one pure op (branch target)
       beq(0, 0, 1),      // jump again
       addiu(9, 9, 100),  // skipped
       addiu(10, 9, 1),   // block C
       jr_ra()});
  auto artifact = compile(p);
  EXPECT_EQ(artifact->fused_run_data()[0], 1u);
  EXPECT_EQ(artifact->fused_run_data()[3], 1u);
  EXPECT_EQ(artifact->fused_run_data()[6], 1u);
  run_all_tiers(p);
  // And the executed result is the pure-block chain, not the skipped ops.
  Core fused;
  fused.load_program(p, artifact);
  fused.run(64);
  EXPECT_EQ(fused.reg(10), 7u);
}

// Mid-block entry: jr into the middle of a fused run must execute the
// suffix only. fused_run_ is indexed per op, so entry at op k of a block
// uses the k-suffix run length.
TEST(BlockBoundary, MidBlockEntryUsesSuffixRun) {
  // jr $t1 enters the 4-op run (ops 2..5) at op 4, so only the last
  // two addius execute.
  isa::Program p = raw_program(
      {addiu(9, 0, 16),   // $t1 = 16 (byte address of op 4)
       isa::encode(isa::make_rtype(isa::Op::Jr, 0, 9, 0)),  // jr $t1
       addiu(8, 8, 1),    // op 2: run of 4 starts here (all skipped...
       addiu(8, 8, 2),
       addiu(8, 8, 4),    // op 4: jr target (...except this suffix)
       addiu(8, 8, 8),
       jr_ra()});
  auto artifact = compile(p);
  EXPECT_EQ(artifact->fused_run_data()[2], 4u);
  EXPECT_EQ(artifact->fused_run_data()[4], 2u) << "suffix run at entry point";
  run_all_tiers(p);
  Core fused;
  fused.load_program(p, artifact);
  fused.run(64);
  EXPECT_EQ(fused.reg(8), 12u) << "only ops 4..5 execute";
}

// ---------------------------------------------------------------------
// Self-modifying stores into the executing block
// ---------------------------------------------------------------------

// The store patches an op LATER IN ITS OWN BASIC BLOCK. The fused tier
// must not have pre-committed the stale suffix: stores fuse, but a
// store that lands in the predecoded text ends the batch immediately
// after retiring, text goes dirty, and the patched word executes via
// the interpreter -- exactly like the oracle.
TEST(BlockBoundary, StoreDirtyingOwnBlockExecutesPatchedSuffix) {
  // Block (no branches until jr): lui/ori build the patch word
  // "addiu $v0,$zero,77"; sw patches the addiu two slots ahead;
  // the original word there would have set $v0 = 1.
  const std::uint32_t patch =
      isa::encode(isa::make_itype(isa::Op::Addiu, 2, 0, 77));
  isa::Program p = raw_program(
      {isa::encode(isa::make_itype(isa::Op::Lui, 9, 0,
                                   static_cast<std::int32_t>(patch >> 16))),
       isa::encode(isa::make_itype(
           isa::Op::Ori, 9, 9, static_cast<std::int32_t>(patch & 0xFFFF))),
       addiu(10, 0, 20),  // $t2 = byte address of the victim op (20)
       isa::encode(isa::make_itype(isa::Op::Sw, 9, 10, 0)),
       addiu(11, 0, 1),   // pure op between store and victim
       addiu(2, 0, 1),    // victim: patched to addiu $v0,$zero,77
       jr_ra()});
  auto artifact = compile(p);
  // The whole 6-op body fuses (stores are fusible); a suffix entry at
  // op 4 still sees its own run of 2.
  EXPECT_EQ(artifact->fused_run_data()[0], 6u);
  EXPECT_EQ(artifact->fused_run_data()[4], 2u);

  const StepInfo last = run_all_tiers(p);
  EXPECT_EQ(static_cast<int>(last.event),
            static_cast<int>(StepEvent::PacketDone));
  Core fused;
  fused.load_program(p, artifact);
  fused.run(64);
  EXPECT_EQ(fused.reg(2), 77u) << "patched word must execute";
  EXPECT_TRUE(fused.text_dirty());
  EXPECT_FALSE(fused.block_fuse_live());
  EXPECT_FALSE(fused.predecode_live());
}

// Watchdog budget truncates a fused run mid-block: the budget trap must
// fire after exactly the same number of retired ops on every tier.
TEST(BlockBoundary, WatchdogTruncatesFusedRunMidBlock) {
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 16; ++i) words.push_back(addiu(8, 8, 1));
  words.push_back(jr_ra());
  const isa::Program p = raw_program(words);
  auto artifact = compile(p);
  EXPECT_EQ(artifact->fused_run_data()[0], 16u);
  for (std::uint64_t budget : {1u, 5u, 15u, 16u}) {
    const StepInfo last = run_all_tiers(p, 256, budget);
    EXPECT_EQ(static_cast<int>(last.event),
              static_cast<int>(StepEvent::Trapped))
        << "budget " << budget;
    EXPECT_EQ(static_cast<int>(last.trap),
              static_cast<int>(Trap::Watchdog))
        << "budget " << budget;
  }
  // Budget 17+ completes the block and returns.
  const StepInfo done = run_all_tiers(p, 256, 18);
  EXPECT_EQ(static_cast<int>(done.event),
            static_cast<int>(StepEvent::PacketDone));
}

// max_steps from run() can also land inside a run; the fused tier must
// clamp and stop on the exact instruction, resumable mid-block.
TEST(BlockBoundary, MaxStepsStopsInsideRunAndResumes) {
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 12; ++i) words.push_back(addiu(8, 8, 1));
  words.push_back(jr_ra());
  const isa::Program p = raw_program(words);
  auto artifact = compile(p);

  Core interp, fused;
  interp.set_predecode_enabled(false);
  interp.load_program(p, artifact);
  fused.load_program(p, artifact);
  for (std::uint64_t chunk : {3u, 1u, 5u, 2u, 1u, 1u, 10u}) {
    interp.run(chunk);
    fused.run(chunk);
    ASSERT_EQ(interp.pc(), fused.pc()) << "chunk " << chunk;
    ASSERT_EQ(interp.cycles(), fused.cycles()) << "chunk " << chunk;
    ASSERT_EQ(interp.reg(8), fused.reg(8)) << "chunk " << chunk;
  }
  EXPECT_FALSE(interp.runnable());
  EXPECT_FALSE(fused.runnable());
  EXPECT_EQ(fused.reg(8), 12u);
}

}  // namespace
}  // namespace sdmmon::np
