// The headline security scenario: a crafted packet smashes the ipv4-cm
// stack, diverts execution into packet-carried shellcode, and the hardware
// monitor catches the deviation.
#include "attack/attack.hpp"

#include <gtest/gtest.h>

#include "attack/fleet.hpp"
#include "attack/reuse.hpp"
#include "attack/probe.hpp"
#include "isa/isa.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/monitored_core.hpp"

namespace sdmmon::attack {
namespace {

using monitor::Compression;
using monitor::MerkleTreeHash;
using np::PacketOutcome;

np::MonitoredCore monitored_cm(std::uint32_t param) {
  np::MonitoredCore core;
  isa::Program app = net::build_ipv4_cm();
  MerkleTreeHash hash(param);
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<MerkleTreeHash>(hash));
  return core;
}

TEST(CmAttack, HijacksUnmonitoredCore) {
  // Without enforcement the shellcode runs to completion: proof the
  // vulnerability is real, not an artifact of the monitor.
  auto attack = craft_cm_overflow(marker_shellcode(0x1337BEEF));
  np::MonitoredCore core = monitored_cm(0xA11CE);
  core.set_enforcement(false);
  np::PacketResult r = core.process_packet(attack.packet);
  // Shellcode signaled PKT_DONE itself after planting the marker.
  EXPECT_EQ(r.outcome, PacketOutcome::Dropped);
  EXPECT_EQ(core.core().reg(2), 0x1337BEEFu);  // $v0 marker: code ran
}

TEST(CmAttack, InjectedOutputWithoutMonitor) {
  auto attack = craft_cm_overflow(inject_output_shellcode(0xEE, 64));
  np::MonitoredCore core = monitored_cm(0xA11CE);
  core.set_enforcement(false);
  np::PacketResult r = core.process_packet(attack.packet);
  ASSERT_EQ(r.outcome, PacketOutcome::Forwarded);
  ASSERT_EQ(r.output.size(), 64u);
  EXPECT_EQ(r.output[0], 0xEE);
  EXPECT_EQ(r.output[63], 0xEE);
}

TEST(CmAttack, MonitorDetectsHijack) {
  auto attack = craft_cm_overflow(marker_shellcode());
  int detected = 0;
  const int trials = 64;
  for (int t = 0; t < trials; ++t) {
    np::MonitoredCore core =
        monitored_cm(0x9E3779B9u * static_cast<std::uint32_t>(t + 1));
    if (core.process_packet(attack.packet).outcome ==
        PacketOutcome::AttackDetected) {
      ++detected;
    }
  }
  // Several shellcode instructions, each caught w.p. 15/16 -> near-certain.
  EXPECT_GE(detected, trials - 4);
}

TEST(CmAttack, SpinShellcodeCaughtByMonitorOrWatchdog) {
  auto attack = craft_cm_overflow(spin_shellcode());
  np::MonitoredCore core = monitored_cm(0xFEED);
  np::PacketResult r = core.process_packet(attack.packet);
  EXPECT_TRUE(r.outcome == PacketOutcome::AttackDetected ||
              r.outcome == PacketOutcome::Trapped);
}

TEST(CmAttack, CoreRecoversAfterDetection) {
  auto attack = craft_cm_overflow(marker_shellcode());
  np::MonitoredCore core = monitored_cm(0x5EED);
  (void)core.process_packet(attack.packet);
  // Next, honest traffic must flow normally (paper's recovery model).
  util::Bytes good = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                          net::ip(10, 0, 0, 2), 1, 2,
                                          util::bytes_of("ok"));
  np::PacketResult r = core.process_packet(good);
  EXPECT_EQ(r.outcome, PacketOutcome::Forwarded);
}

TEST(CmAttack, BenignCmPacketIsNotFlagged) {
  np::MonitoredCore core = monitored_cm(0xB0B);
  np::PacketResult r = core.process_packet(benign_cm_packet(10));
  EXPECT_EQ(r.outcome, PacketOutcome::Forwarded);
  EXPECT_EQ(core.stats().attacks_detected, 0u);
}

TEST(CmAttack, PacketStructure) {
  auto attack = craft_cm_overflow(marker_shellcode());
  auto parsed = net::Ipv4Packet::parse(attack.packet);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->options.size(), 1u);
  EXPECT_EQ(parsed->options[0].type, net::kCmOptionType);
  EXPECT_EQ(parsed->options[0].data.size(), 38u);
  EXPECT_EQ(attack.shellcode_addr, 0x30000u + 60u);
  // The overwrite bytes encode the shellcode address little-endian.
  EXPECT_EQ(parsed->options[0].data[net::kCmRaOffset], 0x3C);
}

TEST(Shellcode, AssemblerRejectsDataSections) {
  EXPECT_THROW(assemble_shellcode(".data\nx: .word 1\n"), isa::IsaError);
}

TEST(BruteForce, FindsMatchingWords) {
  MerkleTreeHash victim(0xDEC0DE);
  std::vector<std::uint8_t> expected = {3, 7, 11};
  std::vector<std::uint32_t> forbidden = {1, 2, 3};
  util::Rng rng(5);
  CraftResult r =
      brute_force_matching_words(victim, expected, forbidden, rng);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.words.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(victim.hash(r.words[i]), expected[i]);
    EXPECT_NE(r.words[i], forbidden[i]);
  }
  // Expected probes ~ 16 per position for a 4-bit hash.
  EXPECT_LT(r.probes, 1000u);
}

TEST(BruteForce, RespectsBudget) {
  MerkleTreeHash victim(1);
  // 64 positions at ~16 probes each needs ~1024; budget of 10 must fail.
  std::vector<std::uint8_t> expected(64, 5);
  util::Rng rng(6);
  CraftResult r = brute_force_matching_words(victim, expected, {}, rng, 10);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.probes, 10u);
}

TEST(Transfer, SumCompressionCollisionsTransferAcrossParameters) {
  // The reproduction's key negative finding: with the prototype's
  // arithmetic-sum compression, a collision crafted against one router
  // passes on EVERY router, independent of parameter.
  util::Rng rng(7);
  MerkleTreeHash victim(rng.next_u32(), 4, Compression::ArithmeticSum);
  std::vector<std::uint32_t> originals = {0x24080001, 0x24090002, 0x01095020};
  std::vector<std::uint8_t> expected;
  for (auto w : originals) expected.push_back(victim.hash(w));
  CraftResult crafted =
      brute_force_matching_words(victim, expected, originals, rng);
  ASSERT_TRUE(crafted.success);
  for (int r = 0; r < 50; ++r) {
    MerkleTreeHash other(rng.next_u32(), 4, Compression::ArithmeticSum);
    EXPECT_TRUE(attack_transfers(other, crafted.words, originals));
  }
}

TEST(Transfer, SboxCompressionStopsTransfer) {
  util::Rng rng(8);
  MerkleTreeHash victim(rng.next_u32(), 4, Compression::SboxSum);
  std::vector<std::uint32_t> originals = {0x24080001, 0x24090002, 0x01095020,
                                          0x3C0AFFFF};
  std::vector<std::uint8_t> expected;
  for (auto w : originals) expected.push_back(victim.hash(w));
  CraftResult crafted =
      brute_force_matching_words(victim, expected, originals, rng);
  ASSERT_TRUE(crafted.success);
  int transferred = 0;
  const int routers = 400;
  for (int r = 0; r < routers; ++r) {
    MerkleTreeHash other(rng.next_u32(), 4, Compression::SboxSum);
    if (attack_transfers(other, crafted.words, originals)) ++transferred;
  }
  // Expected transfer rate (1/16)^4 ~ 1.5e-5; with 400 routers, ~0.
  EXPECT_LE(transferred, 2);
}

TEST(CodeReuse, OnlyLegitimateReturnSiteIsSilent) {
  ReuseScan scan = scan_cm_reuse_targets(0xDECAF123);
  EXPECT_GT(scan.targets, 100u);
  // The sweep includes redirecting $ra to its true return site, which is
  // normal behavior; everything else must be detected or trap.
  EXPECT_LE(scan.silent, 2u);
  EXPECT_EQ(scan.detected + scan.trapped + scan.silent, scan.targets);
  EXPECT_GT(scan.detected, scan.targets * 9 / 10);
}

TEST(CodeReuse, RedirectPacketTargetsArbitraryAddress) {
  CmAttackPacket p = craft_cm_redirect(0x00000040);
  auto parsed = net::Ipv4Packet::parse(p.packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->options[0].data[net::kCmRaOffset], 0x40);
  EXPECT_EQ(parsed->options[0].data[net::kCmRaOffset + 1], 0x00);
  EXPECT_EQ(p.shellcode_addr, 0x40u);
}

TEST(CodeReuse, WholeSweepIsDeterministicPerParam) {
  ReuseScan a = scan_cm_reuse_targets(0x77);
  ReuseScan b = scan_cm_reuse_targets(0x77);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.silent_targets, b.silent_targets);
}

TEST(Fleet, HomogeneousFleetFullyCompromised) {
  FleetConfig config;
  config.num_routers = 200;
  config.diversified = false;
  config.compression = Compression::SboxSum;
  config.attack_len = 3;
  FleetResult r = simulate_fleet(config);
  ASSERT_TRUE(r.craft_succeeded);
  EXPECT_EQ(r.compromised, 200u);
  EXPECT_DOUBLE_EQ(r.compromised_fraction, 1.0);
}

TEST(Fleet, DiversifiedSboxFleetContainsAttack) {
  FleetConfig config;
  config.num_routers = 200;
  config.diversified = true;
  config.compression = Compression::SboxSum;
  config.attack_len = 3;
  FleetResult r = simulate_fleet(config);
  ASSERT_TRUE(r.craft_succeeded);
  EXPECT_LE(r.compromised, 3u);  // victim + expected (1/16)^3 stragglers
}

TEST(Fleet, DiversifiedSumFleetStillFalls) {
  // Reproduced weakness of the prototype compression.
  FleetConfig config;
  config.num_routers = 200;
  config.diversified = true;
  config.compression = Compression::ArithmeticSum;
  config.attack_len = 3;
  FleetResult r = simulate_fleet(config);
  ASSERT_TRUE(r.craft_succeeded);
  EXPECT_EQ(r.compromised, 200u);
}

TEST(Fleet, ProbeCostGrowsWithAttackLength) {
  FleetConfig short_cfg, long_cfg;
  short_cfg.num_routers = long_cfg.num_routers = 10;
  short_cfg.attack_len = 2;
  long_cfg.attack_len = 8;
  auto a = simulate_fleet(short_cfg);
  auto b = simulate_fleet(long_cfg);
  ASSERT_TRUE(a.craft_succeeded);
  ASSERT_TRUE(b.craft_succeeded);
  EXPECT_GT(b.probes_on_victim, a.probes_on_victim);
}

}  // namespace
}  // namespace sdmmon::attack
