#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "attack/attack.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"

namespace sdmmon::net {
namespace {

Trace small_trace() {
  TrafficConfig config;
  config.seed = 42;
  TrafficGenerator gen(config);
  return Trace::capture(gen, 25, 1000);
}

TEST(TraceTest, CaptureProducesTimestampsAndPackets) {
  Trace t = small_trace();
  ASSERT_EQ(t.size(), 25u);
  EXPECT_EQ(t.records()[0].timestamp_ns, 0u);
  EXPECT_EQ(t.records()[1].timestamp_ns, 1000u);
  EXPECT_FALSE(t.records()[7].packet.empty());
}

TEST(TraceTest, SerializationRoundTrip) {
  Trace t = small_trace();
  util::Bytes wire = t.serialize();
  Trace back = Trace::deserialize(wire);
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.records(), t.records());
}

TEST(TraceTest, RejectsBadMagicAndVersion) {
  Trace t = small_trace();
  util::Bytes wire = t.serialize();
  util::Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(Trace::deserialize(bad_magic), util::DecodeError);
  util::Bytes bad_version = wire;
  bad_version[7] = 9;
  EXPECT_THROW(Trace::deserialize(bad_version), util::DecodeError);
  EXPECT_THROW(Trace::deserialize(util::Bytes{1, 2}), util::DecodeError);
}

TEST(TraceTest, FileRoundTrip) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "sdmmon_trace_test.bin";
  Trace t = small_trace();
  t.save(path.string());
  Trace back = Trace::load(path.string());
  EXPECT_EQ(back.records(), t.records());
  fs::remove(path);
}

TEST(TraceTest, LoadMissingFileThrows) {
  EXPECT_THROW(Trace::load("/nonexistent/dir/trace.bin"),
               std::runtime_error);
}

TEST(TraceReplay, HonestTraceAllForwarded) {
  Trace t = small_trace();
  np::MonitoredCore core;
  isa::Program app = build_ipv4_forward();
  monitor::MerkleTreeHash hash(0x7747CE);
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  ReplayStats stats = replay(t, core);
  EXPECT_EQ(stats.packets, 25u);
  EXPECT_EQ(stats.forwarded, 25u);
  EXPECT_EQ(stats.attacks_detected, 0u);
  EXPECT_GT(stats.instructions, 0u);
}

TEST(TraceReplay, MixedTraceCountsAttacks) {
  Trace t;
  TrafficConfig config;
  config.seed = 7;
  TrafficGenerator gen(config);
  auto attack = attack::craft_cm_overflow(attack::marker_shellcode());
  for (int i = 0; i < 10; ++i) {
    TraceRecord r;
    r.timestamp_ns = static_cast<std::uint64_t>(i) * 100;
    if (i % 3 == 2) {
      r.packet = attack.packet;
    } else {
      r.packet = gen.next().packet;
    }
    t.add(std::move(r));
  }
  np::MonitoredCore core;
  isa::Program app = build_ipv4_cm();
  monitor::MerkleTreeHash hash(0x4EA1);
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  ReplayStats stats = replay(t, core);
  EXPECT_EQ(stats.packets, 10u);
  EXPECT_EQ(stats.attacks_detected, 3u);
  EXPECT_EQ(stats.forwarded, 7u);
}

TEST(TraceReplay, ReplayIsDeterministic) {
  Trace t = small_trace();
  isa::Program app = build_ipv4_forward();
  monitor::MerkleTreeHash hash(0xD00D);
  auto graph = monitor::extract_graph(app, hash);
  np::MonitoredCore a, b;
  a.install(app, graph, std::make_unique<monitor::MerkleTreeHash>(hash));
  b.install(app, graph, std::make_unique<monitor::MerkleTreeHash>(hash));
  ReplayStats sa = replay(t, a);
  ReplayStats sb = replay(t, b);
  EXPECT_EQ(sa.instructions, sb.instructions);
  EXPECT_EQ(sa.forwarded, sb.forwarded);
}

}  // namespace
}  // namespace sdmmon::net
