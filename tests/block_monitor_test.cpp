#include "monitor/block_monitor.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace sdmmon::monitor {
namespace {

struct Rig {
  isa::Program program;
  BlockMonitor monitor;
};

Rig make(const char* src, std::uint32_t param = 0xB10C) {
  isa::Program p = isa::assemble(src);
  MerkleTreeHash hash(param);
  return {p, BlockMonitor(extract_block_graph(p, hash),
                          std::make_unique<MerkleTreeHash>(hash))};
}

TEST(BlockGraphTest, StraightLineIsOneBlock) {
  isa::Program p = isa::assemble(R"(
main:
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    jr $ra
  )");
  auto g = extract_block_graph(p, MerkleTreeHash(1));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.blocks()[0].length, 3u);
  EXPECT_TRUE(g.blocks()[0].can_exit);
}

TEST(BlockGraphTest, BranchSplitsBlocks) {
  isa::Program p = isa::assemble(R"(
main:
    beq $t0, $t1, skip
    addiu $t0, $t0, 1
skip:
    jr $ra
  )");
  auto g = extract_block_graph(p, MerkleTreeHash(1));
  ASSERT_EQ(g.size(), 3u);
  // Block 0 = {beq}: successors are both block 1 and block 2.
  EXPECT_EQ(g.blocks()[0].length, 1u);
  EXPECT_EQ(g.blocks()[0].successors, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(g.blocks()[1].successors, (std::vector<std::uint32_t>{2}));
}

TEST(BlockGraphTest, FoldIsIteratedCompression) {
  isa::Program p = isa::assemble("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  MerkleTreeHash hash(0x77);
  auto g = extract_block_graph(p, hash);
  std::uint8_t expected = hash.compress(0, hash.hash(p.text[0]));
  expected = hash.compress(expected, hash.hash(p.text[1]));
  EXPECT_EQ(g.blocks()[0].fold, expected);
}

TEST(BlockGraphTest, EntryMidTextBecomesLeader) {
  isa::Program p = isa::assemble(R"(
helper:
    jr $ra
main:
    nop
    jr $ra
  )");
  auto g = extract_block_graph(p, MerkleTreeHash(1));
  EXPECT_EQ(g.blocks()[g.entry_block()].first_instr, 1u);
}

TEST(BlockGraphTest, CompacterThanInstructionGraph) {
  std::string src = "main:\n";
  for (int i = 0; i < 200; ++i) src += "  addiu $t0, $t0, 1\n";
  src += "  jr $ra\n";
  isa::Program p = isa::assemble(src);
  auto g = extract_block_graph(p, MerkleTreeHash(1));
  // One big block: far fewer bits than per-instruction storage.
  EXPECT_LT(g.size_bits(), 100u);
}

TEST(BlockMonitorTest, AcceptsValidExecution) {
  auto rig = make(R"(
main:
    addiu $t0, $t0, 1
    beq $t0, $t1, out
    addiu $t0, $t0, 2
out:
    jr $ra
  )");
  // Not-taken path.
  for (std::uint32_t w : rig.program.text) {
    ASSERT_EQ(rig.monitor.on_instruction(w), Verdict::Ok);
  }
  EXPECT_TRUE(rig.monitor.exit_allowed());
}

TEST(BlockMonitorTest, AcceptsTakenBranchPath) {
  auto rig = make(R"(
main:
    addiu $t0, $t0, 1
    beq $t0, $t1, out
    addiu $t0, $t0, 2
out:
    jr $ra
  )");
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[0]), Verdict::Ok);
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[1]), Verdict::Ok);
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[3]), Verdict::Ok);
  EXPECT_TRUE(rig.monitor.exit_allowed());
}

TEST(BlockMonitorTest, DetectsDeviationAtBlockBoundary) {
  auto rig = make(R"(
main:
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    addiu $t0, $t0, 3
    jr $ra
  )");
  // Deviate on the second instruction of the single 4-instruction block:
  // the monitor cannot flag until the block completes.
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[0]), Verdict::Ok);
  std::uint32_t foreign = 0x00FF00FF;
  Verdict v1 = rig.monitor.on_instruction(foreign);
  Verdict v2 = rig.monitor.on_instruction(rig.program.text[2]);
  Verdict v3 = rig.monitor.on_instruction(rig.program.text[3]);
  // Mid-block reports stay Ok; the boundary check flags (unless the fold
  // happens to collide, probability 2^-4).
  EXPECT_EQ(v1, Verdict::Ok);
  EXPECT_EQ(v2, Verdict::Ok);
  bool flagged = (v3 == Verdict::Mismatch) || rig.monitor.attack_flagged();
  // With this fixed foreign word and parameter the fold differs.
  EXPECT_TRUE(flagged);
}

TEST(BlockMonitorTest, FoldCollisionEscapesAtBlockLevel) {
  // Construct a two-instruction swap that keeps the (commutative) sum
  // fold identical: the block monitor MUST miss it, the per-instruction
  // scheme would catch the first wrong word with p=15/16.
  auto rig = make(R"(
main:
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    jr $ra
  )");
  // Swap the two addiu instructions: same multiset of hashes -> same sum
  // fold -> block accepts.
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[1]), Verdict::Ok);
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[0]), Verdict::Ok);
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[2]), Verdict::Ok);
  EXPECT_FALSE(rig.monitor.attack_flagged());
}

TEST(BlockMonitorTest, MismatchLatchesUntilReset) {
  auto rig = make("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  // Finish the block with garbage so the fold check fails.
  rig.monitor.on_instruction(0x11111111);
  rig.monitor.on_instruction(0x22222222);
  // After flagging, everything mismatches.
  if (rig.monitor.attack_flagged()) {
    EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[0]),
              Verdict::Mismatch);
  }
  rig.monitor.reset();
  EXPECT_FALSE(rig.monitor.attack_flagged());
  EXPECT_EQ(rig.monitor.on_instruction(rig.program.text[0]), Verdict::Ok);
}

TEST(BlockMonitorTest, LoopsStayValid) {
  auto rig = make(R"(
main:
    li $t1, 3
loop:
    addiu $t0, $t0, 1
    bne $t0, $t1, loop
    jr $ra
  )");
  const auto& text = rig.program.text;
  EXPECT_EQ(rig.monitor.on_instruction(text[0]), Verdict::Ok);
  EXPECT_EQ(rig.monitor.on_instruction(text[1]), Verdict::Ok);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.monitor.on_instruction(text[2]), Verdict::Ok);
    EXPECT_EQ(rig.monitor.on_instruction(text[3]), Verdict::Ok);
  }
  EXPECT_EQ(rig.monitor.on_instruction(text[4]), Verdict::Ok);
  EXPECT_TRUE(rig.monitor.exit_allowed());
}

TEST(BlockMonitorTest, RandomValidProgramsNeverFlagged) {
  util::Rng rng(0xB10C5);
  for (int t = 0; t < 30; ++t) {
    std::string src = "main:\n";
    const int len = 2 + static_cast<int>(rng.below(12));
    for (int i = 0; i < len; ++i) {
      src += "  ori $t" + std::to_string(rng.below(8)) + ", $t" +
             std::to_string(rng.below(8)) + ", " +
             std::to_string(rng.below(256)) + "\n";
    }
    src += "  jr $ra\n";
    isa::Program p = isa::assemble(src);
    MerkleTreeHash hash(rng.next_u32());
    BlockMonitor monitor(extract_block_graph(p, hash),
                         std::make_unique<MerkleTreeHash>(hash));
    for (std::uint32_t w : p.text) {
      ASSERT_EQ(monitor.on_instruction(w), Verdict::Ok);
    }
    EXPECT_TRUE(monitor.exit_allowed());
  }
}

}  // namespace
}  // namespace sdmmon::monitor
