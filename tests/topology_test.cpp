// Hop-by-hop network simulation: every hop is a real NP core executing
// the ipv4-router binary under its hardware monitor.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "attack/attack.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"

namespace sdmmon::net {
namespace {

// Linear chain A -> B -> C; 10.2/16 exits C on its (edge) port 1.
struct ChainFixture {
  Network net;
  std::size_t a, b, c;

  ChainFixture() {
    RoutingTable ta, tb, tc;
    ta.add_route(ip(10, 2, 0, 0), 16, 1);  // towards B
    tb.add_route(ip(10, 2, 0, 0), 16, 1);  // towards C
    tc.add_route(ip(10, 2, 0, 0), 16, 1);  // edge egress
    a = net.add_router("A", ta, 0xA);
    b = net.add_router("B", tb, 0xB);
    c = net.add_router("C", tc, 0xC);
    net.connect(a, 1, b, 0);
    net.connect(b, 1, c, 0);
  }
};

TEST(Topology, ChainDelivery) {
  ChainFixture f;
  util::Bytes pkt = make_udp_packet(ip(172, 16, 1, 1), ip(10, 2, 3, 4), 1,
                                    2, util::bytes_of("across the chain"),
                                    /*ttl=*/16);
  auto d = f.net.send(f.a, pkt);
  ASSERT_EQ(d.status, Network::Status::Delivered)
      << delivery_status_name(d.status);
  EXPECT_EQ(d.path, (std::vector<std::size_t>{f.a, f.b, f.c}));
  EXPECT_EQ(d.egress_node, f.c);
  EXPECT_EQ(d.egress_port, 1u);
  // TTL decremented once per hop.
  auto out = Ipv4Packet::parse(d.final_packet);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ttl, 13);
  EXPECT_TRUE(ipv4_checksum_ok(d.final_packet));
}

TEST(Topology, UnroutableDroppedAtFirstHop) {
  ChainFixture f;
  util::Bytes pkt = make_udp_packet(ip(172, 16, 1, 1), ip(99, 9, 9, 9), 1,
                                    2, util::bytes_of("nowhere"));
  auto d = f.net.send(f.a, pkt);
  EXPECT_EQ(d.status, Network::Status::Dropped);
  EXPECT_EQ(d.path.size(), 1u);
}

TEST(Topology, TtlExpiresInRoutingLoop) {
  Network net;
  RoutingTable t1, t2;
  t1.add_route(ip(10, 0, 0, 0), 8, 1);
  t2.add_route(ip(10, 0, 0, 0), 8, 1);
  std::size_t r1 = net.add_router("loop-1", t1, 1);
  std::size_t r2 = net.add_router("loop-2", t2, 2);
  // Each forwards 10/8 to the other: a routing loop.
  net.connect(r1, 1, r2, 1);
  util::Bytes pkt = make_udp_packet(ip(1, 1, 1, 1), ip(10, 0, 0, 1), 1, 2,
                                    util::bytes_of("loop"), /*ttl=*/8);
  auto d = net.send(r1, pkt);
  // TTL reaches 1 and the router drops it -- no hop-limit needed.
  EXPECT_EQ(d.status, Network::Status::Dropped);
  EXPECT_EQ(d.path.size(), 8u);  // 7 forwards, then the 8th router drops
}

TEST(Topology, AttackCaughtAtVulnerableEdgeNode) {
  // Edge node runs the vulnerable ipv4-cm; core nodes run ipv4-router.
  Network net;
  std::size_t edge = net.add_node("edge", build_ipv4_cm(), 0xED6E);
  RoutingTable t;
  t.add_route(0, 0, 3);
  std::size_t core = net.add_router("core", t, 0xC04E);
  net.connect(edge, 0, core, 0);

  // Honest traffic flows edge -> core -> out.
  util::Bytes good = make_udp_packet(ip(10, 1, 1, 1), ip(8, 8, 8, 8), 5, 6,
                                     util::bytes_of("ok"));
  auto gd = net.send(edge, good);
  EXPECT_EQ(gd.status, Network::Status::Delivered);
  EXPECT_EQ(gd.path, (std::vector<std::size_t>{edge, core}));

  // The stack-smash packet is flagged at the edge.
  auto attack = attack::craft_cm_overflow(attack::marker_shellcode());
  auto ad = net.send(edge, attack.packet);
  EXPECT_EQ(ad.status, Network::Status::AttackDetected);
  EXPECT_EQ(ad.path.size(), 1u);
  EXPECT_EQ(net.node_stats(edge).attacks_detected, 1u);
  // And the network keeps working afterwards.
  EXPECT_EQ(net.send(edge, good).status, Network::Status::Delivered);
}

TEST(Topology, BranchingTopologyRoutesByPrefix) {
  // Hub with two spokes: 10.1/16 -> spoke1, 10.2/16 -> spoke2.
  Network net;
  RoutingTable hub_table, spoke_table;
  hub_table.add_route(ip(10, 1, 0, 0), 16, 1);
  hub_table.add_route(ip(10, 2, 0, 0), 16, 2);
  spoke_table.add_route(0, 0, 5);  // default: edge egress
  std::size_t hub = net.add_router("hub", hub_table, 7);
  std::size_t s1 = net.add_router("spoke-1", spoke_table, 8);
  std::size_t s2 = net.add_router("spoke-2", spoke_table, 9);
  net.connect(hub, 1, s1, 0);
  net.connect(hub, 2, s2, 0);

  auto d1 = net.send(hub, make_udp_packet(ip(1, 1, 1, 1), ip(10, 1, 9, 9),
                                          1, 2, util::bytes_of("x")));
  ASSERT_EQ(d1.status, Network::Status::Delivered);
  EXPECT_EQ(d1.egress_node, s1);

  auto d2 = net.send(hub, make_udp_packet(ip(1, 1, 1, 1), ip(10, 2, 9, 9),
                                          1, 2, util::bytes_of("y")));
  ASSERT_EQ(d2.status, Network::Status::Delivered);
  EXPECT_EQ(d2.egress_node, s2);
}

TEST(Topology, HopLimitGuardsNonTtlLoops) {
  // Craft a loop with TTL larger than the hop budget.
  Network net;
  RoutingTable t;
  t.add_route(0, 0, 1);
  std::size_t r1 = net.add_router("x", t, 1);
  std::size_t r2 = net.add_router("y", t, 2);
  net.connect(r1, 1, r2, 1);
  util::Bytes pkt = make_udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2,
                                    util::bytes_of("z"), /*ttl=*/255);
  auto d = net.send(r1, pkt, /*max_hops=*/10);
  EXPECT_EQ(d.status, Network::Status::HopLimit);
  EXPECT_EQ(d.path.size(), 10u);
}

TEST(Topology, NamesAndStats) {
  ChainFixture f;
  EXPECT_EQ(f.net.node_count(), 3u);
  EXPECT_EQ(f.net.node_name(f.b), "B");
  util::Bytes pkt = make_udp_packet(ip(172, 16, 1, 1), ip(10, 2, 3, 4), 1,
                                    2, util::bytes_of("stat"));
  (void)f.net.send(f.a, pkt);
  EXPECT_EQ(f.net.node_stats(f.a).forwarded, 1u);
  EXPECT_EQ(f.net.node_stats(f.c).forwarded, 1u);
}

}  // namespace
}  // namespace sdmmon::net
