#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "monitor/analysis.hpp"
#include "net/packet.hpp"
#include "np/monitored_core.hpp"
#include "util/rng.hpp"

namespace sdmmon::net {
namespace {

RoutingTable sample_table() {
  RoutingTable t;
  t.add_route(ip(10, 0, 0, 0), 8, 1);
  t.add_route(ip(10, 1, 0, 0), 16, 2);     // more specific than 10/8
  t.add_route(ip(192, 168, 0, 0), 16, 3);
  t.add_route(ip(192, 168, 7, 0), 24, 4);  // more specific than /16
  t.add_route(0, 0, 9);                    // default route
  return t;
}

TEST(RoutingTableTest, LongestPrefixWins) {
  RoutingTable t = sample_table();
  EXPECT_EQ(t.lookup(ip(10, 5, 5, 5))->port, 1);
  EXPECT_EQ(t.lookup(ip(10, 1, 2, 3))->port, 2);
  EXPECT_EQ(t.lookup(ip(192, 168, 1, 1))->port, 3);
  EXPECT_EQ(t.lookup(ip(192, 168, 7, 200))->port, 4);
  EXPECT_EQ(t.lookup(ip(8, 8, 8, 8))->port, 9);  // default
}

TEST(RoutingTableTest, NoDefaultMeansMiss) {
  RoutingTable t;
  t.add_route(ip(10, 0, 0, 0), 8, 1);
  EXPECT_FALSE(t.lookup(ip(11, 0, 0, 1)).has_value());
  EXPECT_TRUE(t.lookup(ip(10, 255, 0, 1)).has_value());
}

TEST(RoutingTableTest, HostRouteExactMatch) {
  RoutingTable t;
  t.add_route(ip(1, 2, 3, 4), 32, 7);
  EXPECT_EQ(t.lookup(ip(1, 2, 3, 4))->port, 7);
  EXPECT_FALSE(t.lookup(ip(1, 2, 3, 5)).has_value());
}

TEST(RoutingTableTest, OverwriteKeepsCount) {
  RoutingTable t;
  t.add_route(ip(10, 0, 0, 0), 8, 1);
  t.add_route(ip(10, 0, 0, 0), 8, 5);
  EXPECT_EQ(t.route_count(), 1u);
  EXPECT_EQ(t.lookup(ip(10, 1, 1, 1))->port, 5);
}

TEST(RoutingTableTest, RejectsBadPrefixes) {
  RoutingTable t;
  EXPECT_THROW(t.add_route(ip(10, 0, 0, 1), 8, 1), std::invalid_argument);
  EXPECT_THROW(t.add_route(0, 33, 1), std::invalid_argument);
  EXPECT_THROW(t.add_route(0, -1, 1), std::invalid_argument);
}

TEST(RoutingTableTest, ReportedRouteFields) {
  RoutingTable t = sample_table();
  auto r = t.lookup(ip(192, 168, 7, 9));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->prefix, ip(192, 168, 7, 0));
  EXPECT_EQ(r->prefix_len, 24);
}

TEST(RoutingTableTest, CompiledImageLayout) {
  RoutingTable t;
  t.add_route(0x80000000u, 1, 3);  // one right child off the root
  auto image = t.compile();
  ASSERT_EQ(image.size(), 24u);  // root + one node
  // Root: left none, right = node 1, no route.
  EXPECT_EQ(util::load_le32(image.data()), RoutingTable::kNoChild);
  EXPECT_EQ(util::load_le32(image.data() + 4), 1u);
  EXPECT_EQ(util::load_le32(image.data() + 8), 0u);
  // Node 1: leaf with port 3 (stored as port+1).
  EXPECT_EQ(util::load_le32(image.data() + 12), RoutingTable::kNoChild);
  EXPECT_EQ(util::load_le32(image.data() + 20), 4u);
}

// --- assembly router app against the C++ oracle ---

struct RouterRig {
  isa::Program program;
  np::MonitoredCore core;

  explicit RouterRig(const RoutingTable& table)
      : program(build_ipv4_router(table)) {
    monitor::MerkleTreeHash hash(0x12AB34CD);
    core.install(program, monitor::extract_graph(program, hash),
                 std::make_unique<monitor::MerkleTreeHash>(hash));
  }

  np::PacketResult route(std::uint32_t dst) {
    util::Bytes pkt = make_udp_packet(ip(172, 16, 0, 1), dst, 1000, 2000,
                                      util::bytes_of("payload"));
    return core.process_packet(pkt);
  }
};

TEST(RouterApp, MatchesOracleOnKnownAddresses) {
  RoutingTable t = sample_table();
  RouterRig rig(t);
  for (std::uint32_t dst :
       {ip(10, 5, 5, 5), ip(10, 1, 2, 3), ip(192, 168, 1, 1),
        ip(192, 168, 7, 200), ip(8, 8, 8, 8)}) {
    auto r = rig.route(dst);
    ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded) << dst;
    EXPECT_EQ(r.output_port, t.lookup(dst)->port) << dst;
    EXPECT_TRUE(ipv4_checksum_ok(r.output));
    EXPECT_EQ(Ipv4Packet::parse(r.output)->ttl, 63);
  }
}

TEST(RouterApp, DropsUnroutableWithoutDefault) {
  RoutingTable t;
  t.add_route(ip(10, 0, 0, 0), 8, 1);
  RouterRig rig(t);
  EXPECT_EQ(rig.route(ip(99, 1, 1, 1)).outcome, np::PacketOutcome::Dropped);
  EXPECT_EQ(rig.route(ip(10, 9, 9, 9)).outcome, np::PacketOutcome::Forwarded);
}

TEST(RouterApp, RandomizedDifferentialAgainstOracle) {
  // Property: the assembly trie walk agrees with the C++ trie on random
  // tables and random addresses.
  util::Rng rng(0x40073);
  for (int trial = 0; trial < 5; ++trial) {
    RoutingTable t;
    const int n_routes = 3 + static_cast<int>(rng.below(12));
    for (int i = 0; i < n_routes; ++i) {
      int len = 4 + static_cast<int>(rng.below(25));
      std::uint32_t prefix =
          rng.next_u32() & (0xFFFF'FFFFu << (32 - len));
      t.add_route(prefix, len, static_cast<std::uint8_t>(rng.below(16)));
    }
    RouterRig rig(t);
    for (int q = 0; q < 40; ++q) {
      std::uint32_t dst = rng.next_u32();
      auto oracle = t.lookup(dst);
      auto r = rig.route(dst);
      if (oracle) {
        ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded)
            << "trial " << trial << " dst " << dst;
        EXPECT_EQ(r.output_port, oracle->port);
      } else {
        EXPECT_EQ(r.outcome, np::PacketOutcome::Dropped);
      }
    }
  }
}

TEST(RouterApp, MonitoredExecutionNeverFlagsHonestTraffic) {
  RoutingTable t = sample_table();
  RouterRig rig(t);
  util::Rng rng(0xBEE);
  for (int i = 0; i < 200; ++i) {
    (void)rig.route(rng.next_u32());
  }
  EXPECT_EQ(rig.core.stats().attacks_detected, 0u);
}

TEST(RouterApp, EmptyTableDropsEverything) {
  RoutingTable t;
  RouterRig rig(t);
  EXPECT_EQ(rig.route(ip(1, 2, 3, 4)).outcome, np::PacketOutcome::Dropped);
}

}  // namespace
}  // namespace sdmmon::net
