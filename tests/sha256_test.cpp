#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "crypto/opcount.hpp"

#include "util/bytes.hpp"

namespace sdmmon::crypto {
namespace {

using util::Bytes;
using util::to_hex;

std::string hex_digest(const Sha256Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// NIST FIPS 180-4 example vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i));
  auto oneshot = Sha256::hash(data);
  for (std::size_t split = 0; split <= data.size(); split += 37) {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(data.data(), split));
    h.update(std::span<const std::uint8_t>(data.data() + split,
                                           data.size() - split));
    EXPECT_EQ(h.finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("abc");
  auto first = h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish(), first);
}

// Boundary lengths around the 64-byte block and 56-byte padding threshold.
TEST(Sha256, PaddingBoundaries) {
  // Known-good values cross-checked against the reference implementation.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    Bytes data(len, 0x61);  // 'a' repeated
    Sha256 h;
    h.update(data);
    auto d1 = h.finish();
    // Same value computed byte-at-a-time must agree.
    Sha256 g;
    for (auto b : data) g.update(std::span<const std::uint8_t>(&b, 1));
    EXPECT_EQ(g.finish(), d1) << "len " << len;
  }
}

// RFC 4231 test case 2 (short key, short message).
TEST(HmacSha256, Rfc4231Case2) {
  Bytes key = util::bytes_of("Jefe");
  Bytes msg = util::bytes_of("what do ya want for nothing?");
  EXPECT_EQ(hex_digest(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = util::bytes_of("Hi There");
  EXPECT_EQ(hex_digest(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 3 (key and data of 0xaa/0xdd).
TEST(HmacSha256, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6 (key longer than block size).
TEST(HmacSha256, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);
  Bytes msg = util::bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_digest(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Sha256, OpCounterAdvances) {
  auto before = op_counters().sha256_blocks;
  Sha256::hash(Bytes(200, 0x5a));  // 200 bytes -> 4 blocks with padding
  EXPECT_GT(op_counters().sha256_blocks, before);
}

}  // namespace
}  // namespace sdmmon::crypto
