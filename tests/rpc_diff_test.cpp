// Differential suite: FleetOperator campaigns driven over the socket
// transport (SocketChannel -> RpcServer -> DeviceHost) must be
// indistinguishable from the in-process channels they replace -- same
// DeviceReport sequences, same device end-states (audit logs included),
// for both the perfect link (DirectChannel) and a seeded lossy link
// (LossyChannel vs SocketChannel sharing the fault model). Also pins the
// in-process partial-delivery edge the socket transport's request-id
// dedup heals: a lost reply makes the blind-retrying operator install
// twice.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "isa/assembler.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "sdmmon/fleet_ops.hpp"
#include "support/test_apps.hpp"
#include "support/test_params.hpp"

namespace sdmmon::rpc {
namespace {

using protocol::ChannelResult;
using protocol::ChannelStatus;
using protocol::DeviceReport;
using protocol::FleetOperator;
using protocol::InstallStatus;
using testsupport::kTestKeyBits;
using testsupport::kTestNow;

constexpr std::size_t kFleetSize = 3;

/// One fleet world. Two worlds built from the same seed are bit-identical
/// (keys, certificates, package parameters), so campaign outcomes can be
/// compared across transports.
struct FleetWorld {
  protocol::Manufacturer mfg;
  protocol::NetworkOperator op;
  std::vector<std::unique_ptr<protocol::NetworkProcessorDevice>> devices;
  FleetOperator fleet;
  isa::Program binary;

  explicit FleetWorld(const std::string& seed)
      : mfg("m", kTestKeyBits, crypto::Drbg(seed + "-man")),
        op("o", kTestKeyBits, crypto::Drbg(seed + "-op")),
        fleet(op, mfg.public_key()),
        binary(isa::assemble(testsupport::kEchoApp)) {
    op.accept_certificate(mfg.certify_operator(
        op.name(), op.public_key(), kTestNow - 10, kTestNow + 1'000'000));
    for (std::size_t i = 0; i < kFleetSize; ++i) {
      devices.push_back(mfg.provision_device(
          "diff-router-" + std::to_string(i), 1));
      fleet.enroll(devices.back().get());
    }
  }
};

/// RPC servers fronting every device of a world, with a SocketChannel
/// routing installs to them by device name.
struct ServedFleet {
  std::vector<std::unique_ptr<obs::Registry>> registries;
  std::vector<std::unique_ptr<DeviceHost>> hosts;
  std::vector<std::unique_ptr<RpcServer>> servers;
  SocketChannel channel;

  ServedFleet(FleetWorld& world, util::FaultInjector* faults)
      : channel(world.op, faults) {
    for (auto& device : world.devices) {
      registries.push_back(std::make_unique<obs::Registry>());
      hosts.push_back(
          std::make_unique<DeviceHost>(*device, *registries.back()));
      servers.push_back(std::make_unique<RpcServer>(
          *hosts.back(), world.mfg.public_key(), ServerOptions{}));
      EXPECT_TRUE(servers.back()->start());
      channel.add_endpoint(device->name(), servers.back()->port());
    }
  }

  ~ServedFleet() {
    channel.disconnect_all();
    for (auto& server : servers) server->stop();
  }
};

void expect_same_reports(const FleetOperator::CampaignResult& a,
                         const FleetOperator::CampaignResult& b,
                         const char* what) {
  EXPECT_EQ(a.succeeded, b.succeeded) << what;
  EXPECT_EQ(a.failed, b.failed) << what;
  EXPECT_EQ(a.skipped, b.skipped) << what;
  ASSERT_EQ(a.reports.size(), b.reports.size()) << what;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const DeviceReport& ra = a.reports[i];
    const DeviceReport& rb = b.reports[i];
    EXPECT_EQ(ra.device, rb.device) << what << " report " << i;
    EXPECT_EQ(ra.outcome, rb.outcome) << what << " " << ra.device;
    EXPECT_EQ(ra.last_status, rb.last_status) << what << " " << ra.device;
    EXPECT_EQ(ra.saw_reply, rb.saw_reply) << what << " " << ra.device;
    EXPECT_EQ(ra.attempts, rb.attempts) << what << " " << ra.device;
    EXPECT_DOUBLE_EQ(ra.backoff_s, rb.backoff_s) << what << " " << ra.device;
  }
}

void expect_same_device_state(const FleetWorld& a, const FleetWorld& b) {
  for (std::size_t d = 0; d < kFleetSize; ++d) {
    const auto& log_a = a.devices[d]->audit_log();
    const auto& log_b = b.devices[d]->audit_log();
    ASSERT_EQ(log_a.size(), log_b.size()) << "device " << d;
    for (std::size_t i = 0; i < log_a.size(); ++i) {
      EXPECT_EQ(log_a[i].kind, log_b[i].kind) << d << ":" << i;
      EXPECT_EQ(log_a[i].time, log_b[i].time) << d << ":" << i;
      EXPECT_EQ(log_a[i].detail, log_b[i].detail) << d << ":" << i;
      EXPECT_EQ(log_a[i].status, log_b[i].status) << d << ":" << i;
    }
  }
  EXPECT_EQ(a.fleet.parameters_all_distinct(),
            b.fleet.parameters_all_distinct());
}

TEST(RpcDiff, SocketCampaignMatchesDirectChannel) {
  FleetWorld direct_world("rpcdiff-a");
  FleetWorld socket_world("rpcdiff-a");  // same seed: identical twin

  protocol::DirectChannel direct;
  auto deployed_direct =
      direct_world.fleet.deploy(direct_world.binary, kTestNow,
                                protocol::NiosTimingModel(), &direct);

  ServedFleet served(socket_world, nullptr);
  auto deployed_socket =
      socket_world.fleet.deploy(socket_world.binary, kTestNow,
                                protocol::NiosTimingModel(),
                                &served.channel);

  expect_same_reports(deployed_direct, deployed_socket, "deploy");
  EXPECT_TRUE(deployed_socket.converged());

  // Rotation rides the same sessions (no reconnect): still equal.
  served.channel.set_purpose(InstallPurpose::Rotate);
  auto rotated_direct = direct_world.fleet.rotate_parameters(
      kTestNow + 100, protocol::NiosTimingModel(), &direct);
  auto rotated_socket = socket_world.fleet.rotate_parameters(
      kTestNow + 100, protocol::NiosTimingModel(), &served.channel);
  expect_same_reports(rotated_direct, rotated_socket, "rotate");
  expect_same_device_state(direct_world, socket_world);

  // The transport left its own fingerprints: every server saw exactly
  // one session, and installs+rotations were tallied per purpose.
  for (std::size_t d = 0; d < kFleetSize; ++d) {
    EXPECT_EQ(served.servers[d]->sessions_served(), 1u) << d;
    EXPECT_EQ(
        served.registries[d]->counter(obs::names::kRpcInstalls).value(), 1u);
    EXPECT_EQ(
        served.registries[d]->counter(obs::names::kRpcRotations).value(),
        1u);
  }
}

TEST(RpcDiff, SocketCampaignMatchesLossyChannelSeedForSeed) {
  // The same fault profile + seed drives both transports; SocketChannel
  // consumes the injector's decisions in LossyChannel's exact order, so
  // the campaigns must agree everywhere -- reports, retries, device audit
  // logs, and even the injector's own statistics.
  util::FaultProfile profile;
  profile.seed = 0xD1FF;
  profile.drop_rate = 0.25;
  profile.bit_flip_rate = 0.20;
  profile.max_bit_flips = 3;
  profile.truncation_rate = 0.10;
  profile.delay_rate = 0.20;
  profile.max_delay_s = 10;
  profile.clock_skew_rate = 0.15;
  profile.clock_skew_s = 120;  // within the certificate validity window

  protocol::RetryPolicy retry;
  retry.max_attempts = 4;

  FleetWorld lossy_world("rpcdiff-b");
  FleetWorld socket_world("rpcdiff-b");
  util::FaultInjector lossy_faults(profile);
  util::FaultInjector socket_faults(profile);

  protocol::LossyChannel lossy(lossy_faults);
  auto deployed_lossy = lossy_world.fleet.deploy(
      lossy_world.binary, kTestNow, protocol::NiosTimingModel(), &lossy,
      retry);

  ServedFleet served(socket_world, &socket_faults);
  auto deployed_socket = socket_world.fleet.deploy(
      socket_world.binary, kTestNow, protocol::NiosTimingModel(),
      &served.channel, retry);

  expect_same_reports(deployed_lossy, deployed_socket, "lossy deploy");
  expect_same_device_state(lossy_world, socket_world);
  EXPECT_EQ(lossy_world.fleet.pending_devices(),
            socket_world.fleet.pending_devices());

  // resume() targets exactly the unconverged remainder: still lockstep.
  auto resumed_lossy = lossy_world.fleet.resume(
      kTestNow + 500, protocol::NiosTimingModel(), &lossy, retry);
  auto resumed_socket = socket_world.fleet.resume(
      kTestNow + 500, protocol::NiosTimingModel(), &served.channel, retry);
  expect_same_reports(resumed_lossy, resumed_socket, "resume");
  expect_same_device_state(lossy_world, socket_world);

  // The fault models consumed identical decision streams.
  const util::FaultStats& sa = lossy_faults.stats();
  const util::FaultStats& sb = socket_faults.stats();
  EXPECT_EQ(sa.messages_seen, sb.messages_seen);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.buffers_corrupted, sb.buffers_corrupted);
  EXPECT_EQ(sa.bits_flipped, sb.bits_flipped);
  EXPECT_EQ(sa.truncations, sb.truncations);
  EXPECT_EQ(sa.delays, sb.delays);
  EXPECT_EQ(sa.clock_skews, sb.clock_skews);
}

/// DirectChannel that delivers every request but claims the first
/// `losses` replies vanished -- the partial-delivery scenario: the device
/// executed the install, the operator never learned.
class ReplyLosingChannel : public protocol::Channel {
 public:
  explicit ReplyLosingChannel(int losses) : losses_remaining_(losses) {}

  ChannelResult send_install(protocol::NetworkProcessorDevice& device,
                             const protocol::WirePackage& wire,
                             std::uint64_t now) override {
    ChannelResult result = inner_.send_install(device, wire, now);
    if (losses_remaining_ > 0) {
      --losses_remaining_;
      return {ChannelStatus::ReplyLost, result.install_status};
    }
    return result;
  }

 private:
  protocol::DirectChannel inner_;
  int losses_remaining_;
};

// Pin the in-process edge: a lost reply makes the blind-retrying
// operator re-seal and re-send, and the device -- which already
// installed -- installs AGAIN. Two audit entries, two sequence numbers,
// one logical deployment. This is the documented cost of the in-process
// model (retries stay safe because re-sealing keeps sequences monotone);
// the socket transport's request-id dedup avoids the second install
// entirely (tests/rpc_server_test.cpp LostReplyIsHealedByIdempotentRetry).
TEST(RpcDiff, InProcessLostReplyInstallsTwiceByDesign) {
  FleetWorld world("rpcdiff-c");
  protocol::NetworkProcessorDevice& device = *world.devices[0];
  const std::size_t audit_before = device.audit_log().size();

  ReplyLosingChannel channel(/*losses=*/1);
  protocol::RetryPolicy retry;
  retry.max_attempts = 3;

  // Single-device campaign view so the other routers stay out of frame.
  FleetOperator solo(world.op, world.mfg.public_key());
  solo.enroll(&device);
  auto result = solo.deploy(world.binary, kTestNow,
                            protocol::NiosTimingModel(), &channel, retry);

  ASSERT_TRUE(result.converged());
  const DeviceReport* report = result.report_for(device.name());
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->attempts, 2u) << "reply loss must trigger a retry";

  const auto& audit = device.audit_log();
  ASSERT_EQ(audit.size(), audit_before + 2)
      << "the device installed twice for one logical deployment";
  EXPECT_EQ(audit[audit_before].status, InstallStatus::Ok);
  EXPECT_EQ(audit[audit_before + 1].status, InstallStatus::Ok)
      << "the retry is a fresh package, so the duplicate install SUCCEEDS "
         "(monotone sequence), silently consuming a sequence number";
}

}  // namespace
}  // namespace sdmmon::rpc
