#include "monitor/hash.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace sdmmon::monitor {
namespace {

TEST(MerkleHash, DeterministicAndInRange) {
  MerkleTreeHash h(0x12345678);
  for (std::uint32_t w : {0u, 1u, 0xFFFFFFFFu, 0xDEADBEEFu}) {
    EXPECT_EQ(h.hash(w), h.hash(w));
    EXPECT_LE(h.hash(w), 0xF);
  }
}

TEST(MerkleHash, EqualsNibbleSumForSumCompression) {
  // With the arithmetic-sum compression, the tree reduces to the modular
  // sum of all parameter and instruction nibbles -- a useful independent
  // check of the tree evaluation.
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t param = rng.next_u32();
    std::uint32_t word = rng.next_u32();
    MerkleTreeHash h(param);
    unsigned sum = 0;
    for (int n = 0; n < 8; ++n) {
      sum += util::bits(param, n * 4, 4) + util::bits(word, n * 4, 4);
    }
    EXPECT_EQ(h.hash(word), sum & 0xF);
  }
}

TEST(MerkleHash, ParameterChangesOutput) {
  // For a fixed word, different parameters must reach all 16 hash values
  // (parameter diversity is SR2's mechanism).
  std::set<std::uint8_t> seen;
  for (std::uint32_t p = 0; p < 64; ++p) {
    seen.insert(MerkleTreeHash(p).hash(0xDEADBEEF));
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(MerkleHash, OutputRoughlyUniformOverRandomWords) {
  MerkleTreeHash h(0xA5A5A5A5);
  util::Rng rng(7);
  std::map<std::uint8_t, int> counts;
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[h.hash(rng.next_u32())];
  ASSERT_EQ(counts.size(), 16u);
  for (auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 16, 0.005)
        << "hash value " << int(v);
  }
}

TEST(MerkleHash, WidthVariants) {
  for (int w : {1, 2, 4, 8}) {
    MerkleTreeHash h(0x13579BDF, w);
    EXPECT_EQ(h.width(), w);
    EXPECT_LE(h.hash(0xCAFEBABE), h.mask());
    EXPECT_EQ(h.node_count(), 2 * (32 / w) - 1);
  }
  EXPECT_THROW(MerkleTreeHash(0, 3), std::invalid_argument);
  EXPECT_THROW(MerkleTreeHash(0, 16), std::invalid_argument);
}

TEST(MerkleHash, PaperConfigurationNodeCount) {
  // Figure 4: 8 leaves + 7 inner nodes = 15 compression nodes at w=4.
  EXPECT_EQ(MerkleTreeHash(0).node_count(), 15);
}

TEST(MerkleHash, CompressIsSumModulo) {
  MerkleTreeHash h(0, 4);
  EXPECT_EQ(h.compress(7, 8), 15);
  EXPECT_EQ(h.compress(8, 8), 0);
  EXPECT_EQ(h.compress(15, 15), 14);
}

TEST(MerkleHash, CloneKeepsParameter) {
  MerkleTreeHash h(0x11112222);
  auto c = h.clone();
  for (std::uint32_t w : {1u, 2u, 3u}) EXPECT_EQ(c->hash(w), h.hash(w));
  EXPECT_EQ(c->name(), h.name());
}

TEST(BitcountHashTest, CountsBits) {
  BitcountHash h;
  EXPECT_EQ(h.hash(0x00000000), 0);
  EXPECT_EQ(h.hash(0x00000001), 1);
  EXPECT_EQ(h.hash(0xFF000000), 8);
  // popcount(0xFFFFFFFF) = 32 -> truncated to 4 bits = 0.
  EXPECT_EQ(h.hash(0xFFFFFFFF), 0);
}

TEST(BitcountHashTest, NotParameterizable) {
  // Same function everywhere -- two instances always agree (homogeneity).
  BitcountHash a, b;
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::uint32_t w = rng.next_u32();
    EXPECT_EQ(a.hash(w), b.hash(w));
  }
}

TEST(BitcountHashTest, OutputIsBiased) {
  // Popcount of random words is binomial(32, 1/2): value 0 (popcount 0,16,32)
  // is far more likely than value 8 (popcount 8 or 24). This bias is a
  // weakness vs. the Merkle hash worth pinning down.
  BitcountHash h;
  util::Rng rng(5);
  std::map<std::uint8_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[h.hash(rng.next_u32())];
  EXPECT_GT(counts[0], counts[4] * 2);
}

// Parameterized sweep: avalanche quality per hash width. A single flipped
// input bit must change the output with probability near 1 - 2^-w.
class AvalancheTest : public ::testing::TestWithParam<int> {};

TEST_P(AvalancheTest, SingleBitFlipChangesOutput) {
  const int w = GetParam();
  MerkleTreeHash h(0xC001D00D, w);
  util::Rng rng(11);
  int changed = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    std::uint32_t word = rng.next_u32();
    int bit = static_cast<int>(rng.below(32));
    if (h.hash(word) != h.hash(word ^ (1u << bit))) ++changed;
  }
  const double p_change = static_cast<double>(changed) / trials;
  // A flipped bit always changes its nibble's contribution by a nonzero
  // delta, so the sum always moves unless the delta wraps to 0 mod 2^w;
  // for single-bit flips the delta is +/-2^k which never wraps -> ~1.0.
  EXPECT_GT(p_change, 0.95) << "width " << w;
}

INSTANTIATE_TEST_SUITE_P(Widths, AvalancheTest, ::testing::Values(2, 4, 8));

// Collision probability of random word pairs should be ~2^-w.
class CollisionTest : public ::testing::TestWithParam<int> {};

TEST_P(CollisionTest, MatchesTheoreticalRate) {
  const int w = GetParam();
  MerkleTreeHash h(0xBADC0FFE, w);
  util::Rng rng(13);
  int collisions = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    if (h.hash(rng.next_u32()) == h.hash(rng.next_u32())) ++collisions;
  }
  const double rate = static_cast<double>(collisions) / trials;
  const double expected = 1.0 / (1 << w);
  EXPECT_NEAR(rate, expected, expected * 0.25 + 0.003) << "width " << w;
}

INSTANTIATE_TEST_SUITE_P(Widths, CollisionTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace sdmmon::monitor
