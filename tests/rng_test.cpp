#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>

namespace sdmmon::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  std::map<std::uint64_t, int> counts;
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 8, 0.01) << "value " << v;
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(5);
  auto first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

}  // namespace
}  // namespace sdmmon::util
