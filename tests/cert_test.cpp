#include "crypto/cert.hpp"

#include <gtest/gtest.h>

namespace sdmmon::crypto {
namespace {

struct CertFixture : ::testing::Test {
  static void SetUpTestSuite() {
    Drbg d("cert-fixture");
    ca = new RsaKeyPair(rsa_generate(1024, d));
    subject = new RsaKeyPair(rsa_generate(1024, d));
  }
  static void TearDownTestSuite() {
    delete ca;
    delete subject;
    ca = nullptr;
    subject = nullptr;
  }

  static Certificate make_cert(std::uint64_t from = 1000,
                               std::uint64_t to = 2000,
                               CertRole role = CertRole::NetworkOperator) {
    return issue_certificate("operator-1", role, 42, from, to, subject->pub,
                             "manufacturer-root", ca->priv);
  }

  static RsaKeyPair* ca;
  static RsaKeyPair* subject;
};

RsaKeyPair* CertFixture::ca = nullptr;
RsaKeyPair* CertFixture::subject = nullptr;

TEST_F(CertFixture, ValidCertVerifies) {
  auto cert = make_cert();
  EXPECT_EQ(verify_certificate(cert, ca->pub, 1500), CertStatus::Ok);
}

TEST_F(CertFixture, RoleCheckedWhenRequested) {
  auto cert = make_cert();
  EXPECT_EQ(verify_certificate(cert, ca->pub, 1500,
                               CertRole::NetworkOperator),
            CertStatus::Ok);
  EXPECT_EQ(verify_certificate(cert, ca->pub, 1500, CertRole::Device),
            CertStatus::WrongRole);
}

TEST_F(CertFixture, ExpiryWindowEnforced) {
  auto cert = make_cert(1000, 2000);
  EXPECT_EQ(verify_certificate(cert, ca->pub, 999), CertStatus::NotYetValid);
  EXPECT_EQ(verify_certificate(cert, ca->pub, 1000), CertStatus::Ok);
  EXPECT_EQ(verify_certificate(cert, ca->pub, 2000), CertStatus::Ok);
  EXPECT_EQ(verify_certificate(cert, ca->pub, 2001), CertStatus::Expired);
}

TEST_F(CertFixture, WrongIssuerKeyRejected) {
  auto cert = make_cert();
  EXPECT_EQ(verify_certificate(cert, subject->pub, 1500),
            CertStatus::BadSignature);
}

TEST_F(CertFixture, TamperedSubjectRejected) {
  auto cert = make_cert();
  cert.subject = "operator-EVIL";
  EXPECT_EQ(verify_certificate(cert, ca->pub, 1500), CertStatus::BadSignature);
}

TEST_F(CertFixture, TamperedKeyRejected) {
  auto cert = make_cert();
  cert.subject_key.e = BigUint(3);
  EXPECT_EQ(verify_certificate(cert, ca->pub, 1500), CertStatus::BadSignature);
}

TEST_F(CertFixture, TamperedValidityRejected) {
  auto cert = make_cert(1000, 2000);
  cert.valid_to = 999999;
  EXPECT_EQ(verify_certificate(cert, ca->pub, 5000), CertStatus::BadSignature);
}

TEST_F(CertFixture, SerializationRoundTrip) {
  auto cert = make_cert();
  auto bytes = cert.serialize();
  auto back = Certificate::deserialize(bytes);
  EXPECT_EQ(back.subject, cert.subject);
  EXPECT_EQ(back.role, cert.role);
  EXPECT_EQ(back.serial, cert.serial);
  EXPECT_EQ(back.valid_from, cert.valid_from);
  EXPECT_EQ(back.valid_to, cert.valid_to);
  EXPECT_EQ(back.subject_key, cert.subject_key);
  EXPECT_EQ(back.issuer, cert.issuer);
  EXPECT_EQ(back.signature, cert.signature);
  EXPECT_EQ(verify_certificate(back, ca->pub, 1500), CertStatus::Ok);
}

TEST_F(CertFixture, DeserializeRejectsBadRole) {
  auto cert = make_cert();
  auto bytes = cert.serialize();
  // Role byte sits right after the 4-byte tbs length, 4-byte subject length
  // and the subject string.
  std::size_t role_off = 4 + 4 + cert.subject.size();
  bytes[role_off] = 0x77;
  EXPECT_THROW(Certificate::deserialize(bytes), util::DecodeError);
}

TEST_F(CertFixture, DeserializeRejectsTruncation) {
  auto bytes = make_cert().serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Certificate::deserialize(bytes), util::DecodeError);
}

TEST(CertNames, RoleAndStatusNames) {
  EXPECT_STREQ(cert_role_name(CertRole::Manufacturer), "manufacturer");
  EXPECT_STREQ(cert_role_name(CertRole::Device), "device");
  EXPECT_STREQ(cert_status_name(CertStatus::Ok), "ok");
  EXPECT_STREQ(cert_status_name(CertStatus::Expired), "expired");
}

}  // namespace
}  // namespace sdmmon::crypto
