// Deterministic discrete-event scheduler tests: ordering (time, then
// insertion sequence), logical-clock advancement, bounded draining, and
// the splitmix64 seed derivation the whole fleet model hangs off.
#include "fleet/sim.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fleet/device_model.hpp"

namespace sdmmon::fleet {
namespace {

/// Records every event it receives, optionally scheduling follow-ups.
struct Recorder : SimActor {
  struct Seen {
    SimTime at;
    std::uint32_t kind;
    std::uint64_t a;
  };
  std::vector<Seen> seen;

  void on_event(Simulator& sim, const SimEvent& event) override {
    seen.push_back({sim.now(), event.kind, event.a});
  }
};

TEST(FleetSim, EventsFireInTimeOrder) {
  Simulator sim;
  Recorder rec;
  sim.schedule_at(30, &rec, 3);
  sim.schedule_at(10, &rec, 1);
  sim.schedule_at(20, &rec, 2);
  EXPECT_EQ(sim.run(), 3u);
  ASSERT_EQ(rec.seen.size(), 3u);
  EXPECT_EQ(rec.seen[0].kind, 1u);
  EXPECT_EQ(rec.seen[1].kind, 2u);
  EXPECT_EQ(rec.seen[2].kind, 3u);
  EXPECT_EQ(rec.seen[2].at, 30u);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(FleetSim, TiesBreakByInsertionOrder) {
  Simulator sim;
  Recorder rec;
  for (std::uint64_t i = 0; i < 100; ++i) {
    sim.schedule_at(5, &rec, 7, i);
  }
  sim.run();
  ASSERT_EQ(rec.seen.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(rec.seen[i].a, i);
  }
}

TEST(FleetSim, PastSchedulesClampToNow) {
  Simulator sim;
  Recorder rec;
  sim.schedule_at(50, &rec, 1);
  sim.run();
  EXPECT_EQ(sim.now(), 50u);
  sim.schedule_at(10, &rec, 2);  // in the past: fires at now()
  sim.run();
  ASSERT_EQ(rec.seen.size(), 2u);
  EXPECT_EQ(rec.seen[1].at, 50u);
}

TEST(FleetSim, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  Recorder rec;
  sim.schedule_at(100, &rec, 1);
  sim.schedule_at(900, &rec, 2);
  EXPECT_EQ(sim.run_until(500), 1u);
  EXPECT_EQ(sim.now(), 500u);
  EXPECT_EQ(sim.events_pending(), 1u);
  EXPECT_EQ(sim.run_until(1000), 1u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

/// Actor that reschedules itself forever -- run(max) must stop it.
struct Perpetual : SimActor {
  void on_event(Simulator& sim, const SimEvent&) override {
    sim.schedule_in(1, this, 1);
  }
};

TEST(FleetSim, RunBoundsRunawaySimulations) {
  Simulator sim;
  Perpetual p;
  sim.schedule_at(0, &p, 1);
  EXPECT_EQ(sim.run(1000), 1000u);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(FleetSim, MixSeedSeparatesStreams) {
  // Derived seeds must differ across salts and across base seeds, and be
  // reproducible.
  std::set<std::uint64_t> derived;
  for (std::uint64_t salt = 0; salt < 1000; ++salt) {
    derived.insert(mix_seed(0x1234, salt));
  }
  EXPECT_EQ(derived.size(), 1000u);
  EXPECT_EQ(mix_seed(42, 7), mix_seed(42, 7));
  EXPECT_NE(mix_seed(42, 7), mix_seed(43, 7));
}

TEST(FleetSim, ModeledDeviceDrawsAreDeterministic) {
  ModeledDevice a{.seed = mix_seed(9, 1)};
  ModeledDevice b{.seed = mix_seed(9, 1)};
  for (int i = 0; i < 64; ++i) {
    double va = a.uniform();
    EXPECT_EQ(va, b.uniform());
    EXPECT_GE(va, 0.0);
    EXPECT_LT(va, 1.0);
  }
  // A different device id gives an uncorrelated stream.
  ModeledDevice c{.seed = mix_seed(9, 2)};
  EXPECT_NE(a.uniform(), c.uniform());
}

TEST(FleetSim, DeviceStateNamesAndTerminality) {
  EXPECT_STREQ(device_state_name(DeviceState::Baking), "baking");
  EXPECT_STREQ(device_state_name(DeviceState::RolledBack), "rolled-back");
  EXPECT_TRUE(device_state_terminal(DeviceState::Healthy));
  EXPECT_TRUE(device_state_terminal(DeviceState::Unreachable));
  EXPECT_FALSE(device_state_terminal(DeviceState::Baking));
  EXPECT_FALSE(device_state_terminal(DeviceState::Scheduled));
  EXPECT_STREQ(release_channel_name(ReleaseChannel::Canary), "canary");
}

}  // namespace
}  // namespace sdmmon::fleet
