// Concurrency torture + behavioral suite for the RPC control-plane
// server (labeled `parallel` so the TSan CI job runs it): N operator
// threads race installs, rotations, metric pulls, journal polls, and
// pings against one device while a load generator keeps the MPSoC under
// packet traffic; plus session isolation, auth gating, per-session
// request-id dedup, malformed-frame teardown, the session cap, and
// graceful drain.
#include "rpc/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rpc/client.hpp"
#include "sdmmon/workload.hpp"
#include "support/rpc_world.hpp"

namespace sdmmon::rpc {
namespace {

using testsupport::kTestNow;
using testsupport::RpcWorld;

std::uint64_t counter_value(obs::Registry& registry, const char* name) {
  return registry.counter(name).value();
}

TEST(RpcServer, StartServeStopIsClean) {
  RpcWorld world("basic");
  ASSERT_TRUE(world.server.start());
  ASSERT_NE(world.server.port(), 0);

  auto client = world.connect_authed();
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(client->device_name(), world.device->name());

  auto status = client->install(InstallPurpose::Deploy,
                                world.package_bytes(), kTestNow);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(static_cast<protocol::InstallStatus>(*status),
            protocol::InstallStatus::Ok);

  auto metrics = client->metrics();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("rpc.requests"), std::string::npos);

  EXPECT_TRUE(client->goodbye());
  world.server.stop();
  EXPECT_FALSE(world.server.running());
  // Idempotent.
  world.server.stop();
}

TEST(RpcServer, UnauthenticatedVerbsAreGated) {
  RpcWorld world("gate");
  ASSERT_TRUE(world.server.start());

  auto client = world.connect();
  ASSERT_TRUE(client.has_value());

  // Ping is allowed pre-auth; install and metrics are not.
  EXPECT_TRUE(client->ping(1).has_value());
  EXPECT_FALSE(
      client->install(InstallPurpose::Deploy, world.package_bytes(), kTestNow)
          .has_value());
  EXPECT_NE(client->last_error().find("not-authorized"), std::string::npos)
      << client->last_error();
  EXPECT_FALSE(client->metrics().has_value());
  // The session survives refusals: ping still answers.
  EXPECT_TRUE(client->ping(2).has_value());

  EXPECT_EQ(counter_value(world.registry, obs::names::kRpcErrors), 2u);
}

TEST(RpcServer, BadCredentialsAreRejectedAndSessionClosed) {
  RpcWorld world("badauth");
  ASSERT_TRUE(world.server.start());

  // A second operator with a certificate from a DIFFERENT manufacturer:
  // the chain does not reach this device's root.
  protocol::Manufacturer other_mfg("other-m", testsupport::kTestKeyBits,
                                   crypto::Drbg("other-mfg"));
  protocol::NetworkOperator other_op("other-o", testsupport::kTestKeyBits,
                                     crypto::Drbg("other-op"));
  other_op.accept_certificate(other_mfg.certify_operator(
      other_op.name(), other_op.public_key(), 0, kTestNow + 1000));

  {
    auto client = world.connect();
    ASSERT_TRUE(client.has_value());
    std::string detail;
    EXPECT_FALSE(client->authenticate(
        other_op.certificate().serialize(),
        other_op.sign(client->auth_message()), kTestNow, &detail));
    EXPECT_NE(detail.find("certificate"), std::string::npos) << detail;
  }
  {
    // Right certificate, wrong signer: the challenge signature must come
    // from the certified key.
    auto client = world.connect();
    ASSERT_TRUE(client.has_value());
    std::string detail;
    EXPECT_FALSE(client->authenticate(
        world.op.certificate().serialize(),
        other_op.sign(client->auth_message()), kTestNow, &detail));
    EXPECT_NE(detail.find("signature"), std::string::npos) << detail;
  }
  {
    // Expired operator clock: validity is checked at the presented time.
    auto client = world.connect();
    ASSERT_TRUE(client.has_value());
    EXPECT_FALSE(client->authenticate(world.op.certificate().serialize(),
                                      world.op.sign(client->auth_message()),
                                      kTestNow + 2'000'000));
  }
  EXPECT_EQ(counter_value(world.registry, obs::names::kRpcAuthFailures), 3u);
}

TEST(RpcServer, RequestIdDedupReplaysInsteadOfReinstalling) {
  RpcWorld world("dedup");
  ASSERT_TRUE(world.server.start());

  auto client = world.connect_authed();
  ASSERT_TRUE(client.has_value());
  const std::size_t audit_before = world.device->audit_log().size();

  // Hand-send the same Install frame twice (one request id): the second
  // must be answered from the dedup cache, not re-executed -- the audit
  // log grows by exactly ONE attempt and the replies are byte-identical.
  util::Bytes package = world.package_bytes();
  InstallPayload payload;
  payload.purpose = InstallPurpose::Deploy;
  payload.now = kTestNow;
  payload.package = package;
  const std::uint64_t id = 777;

  // Borrow the client's socket via install()? No -- drive the dedup path
  // through install_with_retry semantics instead: a raw re-send.
  // RpcClient does not expose raw sends, so open a raw stream.
  auto stream = TcpStream::connect(world.server.port());
  ASSERT_TRUE(stream.has_value());
  FrameDecoder decoder;
  std::array<std::uint8_t, 4096> buf;
  auto read_frame = [&](Frame& out) {
    while (true) {
      if (decoder.poll(out) == FrameDecoder::Status::Ready) return true;
      if (decoder.failed()) return false;
      int n = stream->recv_some(buf);
      if (n <= 0) return false;
      decoder.feed(std::span<const std::uint8_t>(
          buf.data(), static_cast<std::size_t>(n)));
    }
  };
  Frame frame;
  ASSERT_TRUE(read_frame(frame));  // Hello
  ASSERT_EQ(frame.type, MsgType::Hello);
  HelloPayload hello = HelloPayload::decode(frame.payload);
  util::Bytes to_sign = hello.challenge;
  to_sign.insert(to_sign.end(), hello.device_name.begin(),
                 hello.device_name.end());
  AuthPayload auth;
  auth.cert = world.op.certificate().serialize();
  auth.signature = world.op.sign(to_sign);
  auth.now = kTestNow;
  ASSERT_TRUE(
      stream->send_all(encode_frame({MsgType::Auth, 1, auth.encode()})));
  ASSERT_TRUE(read_frame(frame));
  ASSERT_EQ(frame.type, MsgType::AuthResult);
  ASSERT_TRUE(AuthResultPayload::decode(frame.payload).ok);

  const util::Bytes install_frame =
      encode_frame({MsgType::Install, id, payload.encode()});
  ASSERT_TRUE(stream->send_all(install_frame));
  Frame first;
  ASSERT_TRUE(read_frame(first));
  ASSERT_EQ(first.type, MsgType::InstallResult);
  EXPECT_EQ(InstallResultPayload::decode(first.payload).install_status,
            static_cast<std::uint8_t>(protocol::InstallStatus::Ok));

  ASSERT_TRUE(stream->send_all(install_frame));  // duplicate, same id
  Frame second;
  ASSERT_TRUE(read_frame(second));
  EXPECT_EQ(second.type, first.type);
  EXPECT_EQ(second.request_id, first.request_id);
  EXPECT_EQ(second.payload, first.payload);

  EXPECT_EQ(world.device->audit_log().size(), audit_before + 1)
      << "duplicate request id must NOT re-execute the install";
  EXPECT_EQ(counter_value(world.registry, obs::names::kRpcDedupReplays), 1u);
}

TEST(RpcServer, LostReplyIsHealedByIdempotentRetry) {
  // Server-side reply-fault injection: the request executes but the
  // response never hits the wire. install_with_retry re-sends the SAME
  // request id until a (replayed) verdict arrives -- exactly one install
  // on the device no matter how many attempts the client needed.
  util::FaultProfile profile;
  profile.seed = 0x1D;
  profile.drop_rate = 0.5;
  util::FaultInjector reply_faults(profile);
  ServerOptions options;
  options.reply_faults = &reply_faults;
  RpcWorld world("replyloss", 2, options);
  ASSERT_TRUE(world.server.start());

  auto client = world.connect_authed();
  ASSERT_TRUE(client.has_value());
  const std::size_t audit_before = world.device->audit_log().size();

  auto result = client->install_with_retry(
      InstallPurpose::Deploy, world.package_bytes(), kTestNow,
      /*max_attempts=*/12, /*attempt_timeout_ms=*/200);
  ASSERT_TRUE(result.delivered)
      << "12 tries at drop_rate 0.5 must surface a verdict";
  EXPECT_EQ(static_cast<protocol::InstallStatus>(result.install_status),
            protocol::InstallStatus::Ok);
  EXPECT_EQ(world.device->audit_log().size(), audit_before + 1)
      << "retries with one request id must install exactly once";
  if (result.attempts > 1) {
    EXPECT_GE(counter_value(world.registry, obs::names::kRpcDedupReplays),
              result.attempts - 1);
  }
}

TEST(RpcServer, MalformedFramesTearDownOnlyThatSession) {
  RpcWorld world("malformed");
  ASSERT_TRUE(world.server.start());

  auto good = world.connect_authed();
  ASSERT_TRUE(good.has_value());

  // A peer that speaks garbage: its session dies with a typed rejection;
  // the healthy session is untouched.
  auto bad = TcpStream::connect(world.server.port());
  ASSERT_TRUE(bad.has_value());
  util::Bytes junk(64, 0xAB);
  ASSERT_TRUE(bad->send_all(junk));
  std::array<std::uint8_t, 256> buf;
  // Drain until EOF: the server tears the connection down.
  while (true) {
    int n = bad->recv_some(buf);
    if (n <= 0) break;
  }

  EXPECT_TRUE(good->ping(3).has_value());
  auto status = good->install(InstallPurpose::Deploy, world.package_bytes(),
                              kTestNow);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(static_cast<protocol::InstallStatus>(*status),
            protocol::InstallStatus::Ok);
  EXPECT_GE(counter_value(world.registry, obs::names::kRpcFramesRejected),
            1u);
}

TEST(RpcServer, SessionCapRefusesThenRecovers) {
  ServerOptions options;
  options.max_sessions = 2;
  RpcWorld world("cap", 2, options);
  ASSERT_TRUE(world.server.start());

  auto a = world.connect();
  auto b = world.connect();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  // Third connection: refused with a TooManySessions error frame, which
  // RpcClient::connect surfaces as nullopt.
  auto c = world.connect();
  EXPECT_FALSE(c.has_value());
  EXPECT_GE(counter_value(world.registry, obs::names::kRpcSessionsRefused),
            1u);

  // Free a slot; finished sessions are reaped on the next accept, so a
  // couple of attempts may be needed.
  ASSERT_TRUE(a->goodbye());
  std::optional<RpcClient> d;
  for (int attempt = 0; attempt < 50 && !d; ++attempt) {
    d = world.connect();
    if (!d) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(d.has_value()) << "slot must reopen after goodbye";
}

TEST(RpcServer, GracefulDrainWakesIdleSessionsAndJoins) {
  RpcWorld world("drain");
  ASSERT_TRUE(world.server.start());

  std::vector<RpcClient> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = world.connect_authed();
    ASSERT_TRUE(client.has_value());
    clients.push_back(std::move(*client));
  }
  EXPECT_EQ(world.registry.gauge(obs::names::kRpcSessionsActive).value(), 4);

  // A worker hammering metrics while the server drains: every response it
  // does get must be well-formed; eventually the session reports closed.
  std::atomic<int> successes{0};
  std::thread worker([&] {
    while (clients[0].connected()) {
      auto metrics = clients[0].metrics();
      if (!metrics) break;
      ++successes;
    }
  });
  while (successes.load() < 3) std::this_thread::yield();
  world.server.stop();  // blocks until every session thread is joined
  worker.join();
  EXPECT_GE(successes.load(), 3);
  EXPECT_EQ(world.registry.gauge(obs::names::kRpcSessionsActive).value(), 0);
  EXPECT_EQ(world.server.sessions_served(), 4u);

  // New connections are refused after stop.
  EXPECT_FALSE(world.connect().has_value());
}

// The headline torture: 8 operator threads race installs, rotations,
// metric pulls, journal polls, and pings against one device while a
// pump thread keeps packet load flowing. TSan checks the locking story;
// the assertions check request/response integrity per session.
TEST(RpcServer, ConcurrentOperatorsUnderPacketLoad) {
  constexpr std::size_t kOperators = 8;
  constexpr int kOpsPerOperator = 10;

  ServerOptions options;
  options.max_sessions = kOperators + 2;
  RpcWorld world("torture", 2, options);
  ASSERT_TRUE(world.server.start());

  // Seed an initial app so pumped packets execute monitored code.
  ASSERT_EQ(world.host.install_bytes(world.package_bytes(), kTestNow),
            protocol::InstallStatus::Ok);

  // Packages are minted on the main thread (the operator object is not
  // thread-safe); workers only move bytes. Two per worker: one deploy,
  // one rotation.
  std::vector<std::vector<util::Bytes>> packages(kOperators);
  for (auto& per_worker : packages) {
    per_worker.push_back(world.package_bytes());
    per_worker.push_back(world.package_bytes());
  }

  std::atomic<bool> stop_pump{false};
  std::thread pump([&] {
    protocol::MixedWorkloadConfig config;
    config.seed = 0x70AD;
    protocol::MixedWorkload workload(config);
    std::uint64_t index = 0;
    while (!stop_pump.load(std::memory_order_acquire)) {
      auto batch = workload.generate(index, 64);
      world.host.pump(batch);
      index += batch.size();
    }
  });

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> installs_delivered{0};
  std::atomic<std::uint64_t> installs_ok{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kOperators; ++w) {
    workers.emplace_back([&, w] {
      auto client = world.connect_authed();
      if (!client) {
        ++failures;
        return;
      }
      for (int op_i = 0; op_i < kOpsPerOperator; ++op_i) {
        switch ((op_i + static_cast<int>(w)) % 5) {
          case 0:
          case 1: {
            // Concurrent installs race for the device's sequence check:
            // a package sealed earlier can lose to one sealed later
            // (ReplayRejected). Both verdicts are correct; silence or a
            // malformed reply is not.
            auto status = client->install(
                op_i % 2 == 0 ? InstallPurpose::Deploy
                              : InstallPurpose::Rotate,
                packages[w][op_i % 2], kTestNow);
            if (!status) {
              ++failures;
              break;
            }
            ++installs_delivered;
            auto verdict = static_cast<protocol::InstallStatus>(*status);
            if (verdict == protocol::InstallStatus::Ok) ++installs_ok;
            if (verdict != protocol::InstallStatus::Ok &&
                verdict != protocol::InstallStatus::ReplayRejected) {
              ++failures;
            }
            break;
          }
          case 2: {
            auto metrics = client->metrics();
            if (!metrics ||
                metrics->find("rpc.requests") == std::string::npos) {
              ++failures;
            }
            break;
          }
          case 3: {
            auto journal = client->journal(0);
            if (!journal) ++failures;
            break;
          }
          case 4: {
            // The echoed nonce is the request/response-matching check:
            // a cross-wired response would carry another nonce.
            const std::uint64_t nonce = (w << 16) | op_i;
            auto pong = client->ping(nonce);
            if (!pong || pong->nonce != nonce) ++failures;
            break;
          }
        }
      }
      if (!client->goodbye()) ++failures;
    });
  }
  for (auto& t : workers) t.join();
  stop_pump.store(true, std::memory_order_release);
  pump.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(installs_ok.load(), 1u);
  EXPECT_GE(world.server.sessions_served(), kOperators);
  // Every delivered install left an audit entry: the +1 is the seed
  // install above.
  EXPECT_EQ(world.device->audit_log().size(), installs_delivered.load() + 1);
  EXPECT_GE(world.host.packets(), 64u);

  world.server.stop();
  EXPECT_EQ(world.registry.gauge(obs::names::kRpcSessionsActive).value(), 0);
}

TEST(RpcServer, JournalStreamingSeesEventsInOrder) {
  RpcWorld world("journal");
  ASSERT_TRUE(world.server.start());

  auto client = world.connect_authed();
  ASSERT_TRUE(client.has_value());

  // Generate journal traffic: a few installs (Install events from the
  // engine) plus the rpc session events themselves.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client
                    ->install(InstallPurpose::Deploy, world.package_bytes(),
                              kTestNow)
                    .has_value());
  }

  std::uint64_t cursor = 0;
  std::vector<obs::Event> streamed;
  for (int poll = 0; poll < 10; ++poll) {
    auto page = client->journal(cursor);
    ASSERT_TRUE(page.has_value());
    EXPECT_EQ(page->dropped, 0u);
    ASSERT_GE(page->next_cursor, cursor);
    streamed.insert(streamed.end(), page->events.begin(),
                    page->events.end());
    if (page->next_cursor == cursor) break;
    cursor = page->next_cursor;
  }
  // The stream must contain the session-open and the three installs.
  std::size_t installs = 0, opens = 0;
  for (const obs::Event& e : streamed) {
    if (e.kind == obs::EventKind::Install) ++installs;
    if (e.kind == obs::EventKind::RpcSessionOpened) ++opens;
  }
  EXPECT_GE(installs, 3u);
  EXPECT_GE(opens, 1u);
  // And match the registry's own view of history.
  EXPECT_EQ(cursor, world.registry.journal().recorded());
}

}  // namespace
}  // namespace sdmmon::rpc
