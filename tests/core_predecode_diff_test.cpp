// Differential testing of the predecoded fast path: the word-at-a-time
// interpreter is the oracle, and a core running the install-time
// CompiledProgram artifact (indexed fetch, table lookup, superblock
// stepping, precomputed monitor hashes) must be bit-identical to it --
// StepInfo sequences, cycle counts, register files, monitor verdicts,
// cumulative stats -- across >10k random programs and packets, through
// mid-stream reinstalls, self-modifying stores, and MPSoC recovery.
#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/mpsoc.hpp"
#include "support/test_apps.hpp"
#include "util/rng.hpp"

namespace sdmmon::np {
namespace {

// ---------------------------------------------------------------------
// Random-program lockstep: fast core vs interpreter oracle
// ---------------------------------------------------------------------

// A random text segment exercising every predecode flag combination:
// straight-line ALU runs (superblock bodies), branches/jumps (block
// ends), loads/stores (note_store path), jr $ra (sentinel return),
// traps, and raw undecodable words (trapping PreOps, reachable both as
// branch targets and by fall-through from a decodable neighbour).
isa::Program random_program(util::Rng& rng) {
  const std::size_t n = 16 + rng.below(48);
  isa::Program p;
  p.name = "fuzz";
  p.text_base = 0;
  p.entry = 0;
  p.text.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick = rng.below(100);
    const int rd = static_cast<int>(8 + rng.below(16));  // $t0..$s7
    const int rs = static_cast<int>(8 + rng.below(16));
    const int rt = static_cast<int>(8 + rng.below(16));
    if (pick < 8) {
      static constexpr isa::Op kBranch[] = {isa::Op::Beq, isa::Op::Bne,
                                            isa::Op::Blez, isa::Op::Bgtz};
      const std::int32_t off =
          static_cast<std::int32_t>(rng.below(12)) - 4;  // [-4, 8) words
      p.text.push_back(isa::encode(
          isa::make_branch(kBranch[rng.below(4)], rs, rt, off)));
    } else if (pick < 12) {
      p.text.push_back(isa::encode(isa::make_jump(
          isa::Op::J, static_cast<std::uint32_t>(rng.below(n)))));
    } else if (pick < 15) {
      p.text.push_back(isa::encode(isa::make_rtype(isa::Op::Jr, 0, 31, 0)));
    } else if (pick < 25) {
      static constexpr isa::Op kMem[] = {isa::Op::Lw,  isa::Op::Lb,
                                         isa::Op::Lbu, isa::Op::Sw,
                                         isa::Op::Sb,  isa::Op::Sh};
      const std::int32_t imm =
          static_cast<std::int32_t>(rng.below(0x100)) - 0x80;
      p.text.push_back(
          isa::encode(isa::make_itype(kMem[rng.below(6)], rt, rs, imm)));
    } else if (pick < 40) {
      static constexpr isa::Op kImm[] = {isa::Op::Addiu, isa::Op::Ori,
                                         isa::Op::Andi,  isa::Op::Xori,
                                         isa::Op::Slti,  isa::Op::Lui};
      const std::int32_t imm =
          static_cast<std::int32_t>(rng.below(0x10000)) - 0x8000;
      p.text.push_back(
          isa::encode(isa::make_itype(kImm[rng.below(6)], rt, rs, imm)));
    } else if (pick < 85) {
      static constexpr isa::Op kAlu[] = {
          isa::Op::Addu, isa::Op::Subu, isa::Op::And,  isa::Op::Or,
          isa::Op::Xor,  isa::Op::Nor,  isa::Op::Slt,  isa::Op::Sltu,
          isa::Op::Add,  isa::Op::Sub,  isa::Op::Mult, isa::Op::Multu};
      p.text.push_back(
          isa::encode(isa::make_rtype(kAlu[rng.below(12)], rd, rs, rt)));
    } else if (pick < 90) {
      p.text.push_back(isa::encode(
          isa::make_shift(isa::Op::Sll, rd, rt,
                          static_cast<int>(rng.below(32)))));
    } else {
      // Raw word: often undecodable, sometimes accidentally valid.
      p.text.push_back(rng.next_u32());
    }
  }
  return p;
}

// Load the same program into a predecoding core and an interpreting
// oracle, seeding identical register files.
void load_pair(Core& fast, Core& oracle, const isa::Program& p,
               util::Rng& rng, std::uint64_t watchdog) {
  auto compiled = CompiledProgram::compile(p, monitor::MerkleTreeHash(0xD1FF));
  oracle.set_predecode_enabled(false);
  fast.load_program(p, compiled);
  oracle.load_program(p, compiled);
  EXPECT_TRUE(fast.predecode_live());
  EXPECT_FALSE(oracle.predecode_live());
  fast.set_watchdog_budget(watchdog);
  oracle.set_watchdog_budget(watchdog);
  for (int r = 1; r < 32; ++r) {
    if (r == 31) continue;  // keep the return sentinel
    const std::uint32_t v = rng.next_u32();
    fast.set_reg(r, v);
    oracle.set_reg(r, v);
  }
}

void expect_same_step(const StepInfo& a, const StepInfo& b,
                      const isa::Program& p, std::uint64_t step) {
  ASSERT_EQ(a.pc, b.pc) << "step " << step << " of " << p.text.size()
                        << "-word program";
  ASSERT_EQ(a.word, b.word) << "step " << step;
  ASSERT_EQ(static_cast<int>(a.event), static_cast<int>(b.event))
      << "step " << step << " pc=" << a.pc;
  ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap))
      << "step " << step << " pc=" << a.pc;
}

void expect_same_state(const Core& fast, const Core& oracle) {
  ASSERT_EQ(fast.pc(), oracle.pc());
  ASSERT_EQ(fast.cycles(), oracle.cycles());
  ASSERT_EQ(fast.runnable(), oracle.runnable());
  for (int r = 0; r < 32; ++r) {
    ASSERT_EQ(fast.reg(r), oracle.reg(r)) << "register " << r;
  }
  ASSERT_EQ(fast.has_output(), oracle.has_output());
  if (fast.has_output()) {
    ASSERT_EQ(fast.output(), oracle.output());
    ASSERT_EQ(fast.output_port(), oracle.output_port());
  }
}

class PredecodeDifferentialTest : public ::testing::TestWithParam<int> {};

// 8 seeds x 700 programs = 5600 random programs, each both stepped in
// lockstep (step-by-step StepInfo equality) and re-run end-to-end
// through the superblock stepper (final-state equality).
TEST_P(PredecodeDifferentialTest, RandomProgramsLockstepAndRun) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9E3779B9 + 7);
  for (int trial = 0; trial < 700; ++trial) {
    const isa::Program p = random_program(rng);
    // Occasionally a tiny watchdog so the in-superblock budget check is
    // exercised, not just the per-step one.
    const std::uint64_t watchdog = rng.below(8) == 0 ? 1 + rng.below(40) : 512;

    // Lockstep: one instruction at a time on both engines.
    {
      Core fast, oracle;
      load_pair(fast, oracle, p, rng, watchdog);
      for (std::uint64_t step = 0; step < 300 && oracle.runnable(); ++step) {
        const StepInfo a = fast.step();
        const StepInfo b = oracle.step();
        expect_same_step(a, b, p, step);
        ASSERT_EQ(fast.pc(), oracle.pc()) << "step " << step;
        ASSERT_EQ(fast.cycles(), oracle.cycles()) << "step " << step;
      }
      expect_same_state(fast, oracle);
    }

    // Superblock: fast.run() takes the tight inner loop, the oracle
    // interprets; they must land in identical final states.
    {
      Core fast, oracle;
      util::Rng seed_copy = rng;  // identical register seeds for the pair
      load_pair(fast, oracle, p, seed_copy, watchdog);
      rng = seed_copy;
      const StepInfo a = fast.run(300);
      const StepInfo b = oracle.run(300);
      expect_same_step(a, b, p, 300);
      expect_same_state(fast, oracle);
      ASSERT_EQ(fast.text_dirty(), oracle.text_dirty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredecodeDifferentialTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Monitored packet processing: verdicts and stats
// ---------------------------------------------------------------------

void expect_same_result(const PacketResult& a, const PacketResult& b,
                        std::size_t packet) {
  ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
      << "packet " << packet;
  ASSERT_EQ(a.output, b.output) << "packet " << packet;
  ASSERT_EQ(a.output_port, b.output_port) << "packet " << packet;
  ASSERT_EQ(a.instructions, b.instructions) << "packet " << packet;
  ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap))
      << "packet " << packet;
  ASSERT_EQ(a.monitor_width, b.monitor_width) << "packet " << packet;
}

void expect_same_stats(const CoreStats& a, const CoreStats& b) {
  ASSERT_EQ(a.packets, b.packets);
  ASSERT_EQ(a.forwarded, b.forwarded);
  ASSERT_EQ(a.dropped, b.dropped);
  ASSERT_EQ(a.attacks_detected, b.attacks_detected);
  ASSERT_EQ(a.traps, b.traps);
  ASSERT_EQ(a.instructions, b.instructions);
}

// 4 apps x (1000 generated + 400 random-garbage) = 5600 packets through
// full monitored cores; per-packet results and cumulative stats must be
// identical with the monitor fed precomputed hashes vs rehashing.
TEST(PredecodeDifferential, MonitoredVerdictsAndStatsMatchInterpreter) {
  const isa::Program apps[] = {
      net::build_ipv4_forward(), net::build_ipv4_cm(), net::build_udp_echo(),
      net::build_firewall({22, 53, 80, 443})};
  util::Rng rng(0xC0DE5EED);
  for (const isa::Program& app : apps) {
    monitor::MerkleTreeHash hash(0x1234 + app.text.size());
    auto graph = monitor::extract_graph(app, hash);

    MonitoredCore fast, oracle;
    oracle.core().set_predecode_enabled(false);
    fast.install(app, graph, std::make_unique<monitor::MerkleTreeHash>(hash));
    oracle.install(app, graph, std::make_unique<monitor::MerkleTreeHash>(hash));
    ASSERT_TRUE(fast.core().predecode_live());
    ASSERT_FALSE(oracle.core().predecode_live());

    net::TrafficGenerator gen;
    for (std::size_t i = 0; i < 1400; ++i) {
      util::Bytes packet;
      if (i % 7 == 2) {  // 400-ish garbage packets: traps and drops
        packet.resize(rng.below(128));
        for (auto& b : packet) b = static_cast<std::uint8_t>(rng.next());
      } else {
        packet = gen.next().packet;
      }
      expect_same_result(fast.process_packet(packet),
                         oracle.process_packet(packet), i);
    }
    expect_same_stats(fast.stats(), oracle.stats());
  }
}

// Mid-stream reinstall: new hash parameter, new artifacts, same binary;
// then a different binary. Equivalence must hold across both swaps.
TEST(PredecodeDifferential, MidStreamReinstallKeepsEquivalence) {
  MonitoredCore fast, oracle;
  oracle.core().set_predecode_enabled(false);
  net::TrafficGenerator gen;

  std::uint32_t params[] = {0xAAAA, 0xBBBB};
  isa::Program binaries[] = {net::build_udp_echo(), net::build_ipv4_forward()};
  std::size_t packet = 0;
  for (const isa::Program& app : binaries) {
    for (std::uint32_t param : params) {
      monitor::MerkleTreeHash hash(param);
      auto graph = monitor::extract_graph(app, hash);
      fast.install(app, graph,
                   std::make_unique<monitor::MerkleTreeHash>(hash));
      oracle.install(app, graph,
                     std::make_unique<monitor::MerkleTreeHash>(hash));
      ASSERT_TRUE(fast.core().predecode_live());
      for (int i = 0; i < 200; ++i, ++packet) {
        const util::Bytes p = gen.next().packet;
        expect_same_result(fast.process_packet(p), oracle.process_packet(p),
                           packet);
      }
      expect_same_stats(fast.stats(), oracle.stats());
    }
  }
}

// A hash-mismatched artifact must be rejected before any core state is
// touched (the install-time spot check).
TEST(PredecodeDifferential, MismatchedArtifactHashRejectedAtInstall) {
  const isa::Program app = net::build_udp_echo();
  monitor::MerkleTreeHash installed(0x1111);
  auto graph = monitor::extract_graph(app, installed);
  // Artifact predecoded under a different parameter.
  auto wrong = CompiledProgram::compile(app, monitor::MerkleTreeHash(0x2222));
  MonitoredCore core;
  EXPECT_THROW(
      core.install(app, monitor::CompiledGraph::compile(graph), wrong,
                   std::make_unique<monitor::MerkleTreeHash>(installed)),
      std::invalid_argument);
}

// ---------------------------------------------------------------------
// Self-modifying stores: fall back to interpretation, stay equivalent
// ---------------------------------------------------------------------

TEST(PredecodeDifferential, SelfModifyingStoreFallsBackAndMatchesOracle) {
  // Patch the `nop` at `target` with "addiu $v0, $zero, 42" and then
  // execute it. The predecoded image is stale the moment the store
  // lands; the core must drop to interpretation and execute the NEW
  // word, exactly as the oracle does.
  const std::uint32_t patch =
      isa::encode(isa::make_itype(isa::Op::Addiu, 2, 0, 42));
  isa::Program p = isa::assemble(R"(
main:
    la $t0, target
    lui $t1, 0
    ori $t1, $t1, 0
    sw $t1, 0($t0)
target:
    nop
    jr $ra
)");
  // The assembler has no word-valued immediates for a label patch, so
  // the lui/ori pair is rewritten to materialize the patch word in $t1.
  p.text[2] = isa::encode(isa::make_itype(
      isa::Op::Lui, 9, 0, static_cast<std::int32_t>(patch >> 16)));
  p.text[3] = isa::encode(isa::make_itype(
      isa::Op::Ori, 9, 9, static_cast<std::int32_t>(patch & 0xFFFF)));

  auto compiled = CompiledProgram::compile(p, monitor::MerkleTreeHash(0x5E1F));
  Core fast, oracle;
  oracle.set_predecode_enabled(false);
  fast.load_program(p, compiled);
  oracle.load_program(p, compiled);
  ASSERT_TRUE(fast.predecode_live());

  for (std::uint64_t step = 0; step < 64 && oracle.runnable(); ++step) {
    const StepInfo a = fast.step();
    const StepInfo b = oracle.step();
    expect_same_step(a, b, p, step);
  }
  expect_same_state(fast, oracle);
  EXPECT_EQ(fast.reg(2), 42u) << "patched instruction must have executed";
  EXPECT_TRUE(fast.text_dirty());
  EXPECT_FALSE(fast.predecode_live())
      << "stale artifact must not serve predecoded ops";

  // soft_reset keeps the corrupted text, so the fallback must persist...
  fast.soft_reset();
  EXPECT_TRUE(fast.text_dirty());
  EXPECT_FALSE(fast.predecode_live());
  // ...while the re-imaging reset() restores text and re-arms the
  // fast path from the same shared artifact.
  fast.reset();
  EXPECT_FALSE(fast.text_dirty());
  EXPECT_TRUE(fast.predecode_live());
  const StepInfo done = fast.run(64);
  EXPECT_EQ(static_cast<int>(done.event),
            static_cast<int>(StepEvent::PacketDone));
}

// ---------------------------------------------------------------------
// MPSoC: artifact sharing and recovery-path equivalence
// ---------------------------------------------------------------------

TEST(PredecodeDifferential, InstallAllSharesOneCompiledProgramAcrossCores) {
  Mpsoc soc(4);
  testsupport::install_all(soc, testsupport::kEchoApp, 0x1D1D);
  const CompiledProgram* shared = soc.core(0).core().compiled_program().get();
  ASSERT_NE(shared, nullptr);
  for (std::size_t c = 1; c < soc.num_cores(); ++c) {
    EXPECT_EQ(soc.core(c).core().compiled_program().get(), shared)
        << "core " << c;
  }
  EXPECT_EQ(shared->num_ops(),
            isa::assemble(testsupport::kEchoApp).text.size());
}

// Attack traffic under every recovery policy: engines with the fast
// path on and off must agree packet-for-packet, including through
// quarantines and last-good re-images (which re-share the artifact).
TEST(PredecodeDifferential, AttackRecoveryPoliciesMatchAcrossEngines) {
  for (RecoveryPolicy policy :
       {RecoveryPolicy::ResetAndContinue, RecoveryPolicy::QuarantineAfterK,
        RecoveryPolicy::ReinstallLastGood}) {
    RecoveryConfig config;
    config.policy = policy;
    config.violation_threshold = 3;
    config.window_packets = 8;
    Mpsoc fast_soc(2, DispatchPolicy::RoundRobin, config);
    Mpsoc oracle_soc(2, DispatchPolicy::RoundRobin, config);
    for (std::size_t c = 0; c < oracle_soc.num_cores(); ++c) {
      oracle_soc.core(c).core().set_predecode_enabled(false);
    }
    testsupport::install_all(fast_soc, testsupport::kVulnApp, 0x7E57);
    testsupport::install_all(oracle_soc, testsupport::kVulnApp, 0x7E57);

    const util::Bytes attack = testsupport::attack_packet();
    util::Rng rng(0xA77AC4 + static_cast<std::uint64_t>(policy));
    net::TrafficGenerator gen;
    for (int i = 0; i < 120; ++i) {
      util::Bytes packet =
          rng.below(3) == 0 ? attack : gen.next().packet;
      const PacketResult a = fast_soc.process_packet(packet);
      const PacketResult b = oracle_soc.process_packet(packet);
      expect_same_result(a, b, static_cast<std::size_t>(i));
    }
    const MpsocStats sa = fast_soc.aggregate_stats();
    const MpsocStats sb = oracle_soc.aggregate_stats();
    EXPECT_EQ(sa.forwarded, sb.forwarded) << recovery_policy_name(policy);
    EXPECT_EQ(sa.attacks_detected, sb.attacks_detected)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.quarantined_cores, sb.quarantined_cores)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.quarantine_events, sb.quarantine_events)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.reinstalls, sb.reinstalls) << recovery_policy_name(policy);
    // Oracle cores stay interpreted even after recovery reinstalls
    // (the toggle is a core property, not a program property).
    for (std::size_t c = 0; c < oracle_soc.num_cores(); ++c) {
      EXPECT_FALSE(oracle_soc.core(c).core().predecode_live());
    }
  }
}

}  // namespace
}  // namespace sdmmon::np
