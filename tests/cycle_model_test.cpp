#include "np/cycle_model.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "np/core.hpp"

namespace sdmmon::np {
namespace {

TEST(InstrMixTest, CoreClassifiesRetiredInstructions) {
  Core core;
  core.load_program(isa::assemble(R"(
main:
    li $t0, 0x10000     # lui+ori: 2 alu
    li $t1, 7           # 2 alu
    sw $t1, 0($t0)      # 1 store
    lw $t2, 0($t0)      # 1 load
    mult $t1, $t2       # 1 muldiv
    beq $t1, $t2, skip  # taken? t1=7, t2=7 -> taken
    addiu $t3, $t3, 1   # skipped
skip:
    bne $t1, $zero, go  # taken (skips one instruction)
    addiu $t4, $t4, 1   # skipped
go:
    beq $t1, $zero, no  # not taken
    jr $ra              # 1 jump
no:
    nop
  )"));
  StepInfo last = core.run();
  ASSERT_EQ(last.event, StepEvent::PacketDone);
  const InstrMix& mix = core.instr_mix();
  EXPECT_EQ(mix.alu, 4u);
  EXPECT_EQ(mix.store, 1u);
  EXPECT_EQ(mix.load, 1u);
  EXPECT_EQ(mix.muldiv, 1u);
  EXPECT_EQ(mix.branch_taken, 2u);
  EXPECT_EQ(mix.branch_not_taken, 1u);
  EXPECT_EQ(mix.jump, 1u);
  EXPECT_EQ(mix.trap, 0u);
  EXPECT_EQ(mix.total(), 11u);
}

TEST(InstrMixTest, TrapCounted) {
  Core core;
  core.load_program(isa::assemble("main:\n syscall\n"));
  (void)core.run();
  EXPECT_EQ(core.instr_mix().trap, 1u);
}

TEST(InstrMixTest, SurvivesReset) {
  Core core;
  core.load_program(isa::assemble("main:\n addiu $t0, $t0, 1\n jr $ra\n"));
  (void)core.run();
  std::uint64_t after_first = core.instr_mix().total();
  core.reset();
  (void)core.run();
  EXPECT_EQ(core.instr_mix().total(), 2 * after_first);
}

TEST(CycleModelTest, CostsApplied) {
  InstrMix mix;
  mix.alu = 10;
  mix.load = 5;
  mix.branch_taken = 2;
  mix.muldiv = 1;
  CycleModel model;  // defaults: alu 1, load 2, taken 2, muldiv 12
  EXPECT_DOUBLE_EQ(model.cycles(mix), 10 * 1.0 + 5 * 2.0 + 2 * 2.0 + 12.0);
  EXPECT_DOUBLE_EQ(model.seconds(mix), model.cycles(mix) / 100e6);
  EXPECT_NEAR(model.cpi(mix), model.cycles(mix) / 18.0, 1e-12);
}

TEST(CycleModelTest, CustomCostsAndClock) {
  CycleCosts costs;
  costs.alu = 2.0;
  CycleModel model(costs, 50e6);
  InstrMix mix;
  mix.alu = 100;
  EXPECT_DOUBLE_EQ(model.cycles(mix), 200.0);
  EXPECT_DOUBLE_EQ(model.seconds(mix), 200.0 / 50e6);
  EXPECT_DOUBLE_EQ(model.clock_hz(), 50e6);
}

TEST(CycleModelTest, EmptyMixHasZeroCpi) {
  CycleModel model;
  EXPECT_DOUBLE_EQ(model.cpi(InstrMix{}), 0.0);
}

TEST(InstrMixTest, DifferenceOperator) {
  InstrMix a;
  a.alu = 10;
  a.load = 4;
  InstrMix b;
  b.alu = 3;
  b.load = 1;
  InstrMix d = a - b;
  EXPECT_EQ(d.alu, 7u);
  EXPECT_EQ(d.load, 3u);
  EXPECT_EQ(d.total(), 10u);
}

}  // namespace
}  // namespace sdmmon::np
