#include "crypto/prime.hpp"

#include <gtest/gtest.h>

namespace sdmmon::crypto {
namespace {

TEST(MillerRabin, SmallPrimes) {
  Drbg d("mr");
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 97u, 997u}) {
    EXPECT_TRUE(is_probable_prime(BigUint(p), d)) << p;
  }
}

TEST(MillerRabin, SmallComposites) {
  Drbg d("mr");
  for (std::uint64_t c : {1u, 4u, 6u, 9u, 15u, 91u, 100u, 561u, 1001u}) {
    EXPECT_FALSE(is_probable_prime(BigUint(c), d)) << c;
  }
}

TEST(MillerRabin, CarmichaelNumbers) {
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  Drbg d("carmichael");
  for (std::uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 6601u, 8911u}) {
    EXPECT_FALSE(is_probable_prime(BigUint(c), d)) << c;
  }
}

TEST(MillerRabin, KnownLargePrime) {
  // 2^127 - 1 is a Mersenne prime.
  BigUint m127 = (BigUint(1) << 127) - BigUint(1);
  Drbg d("m127");
  EXPECT_TRUE(is_probable_prime(m127, d));
  // 2^128 - 1 is composite (divisible by 3, among others).
  BigUint m128 = (BigUint(1) << 128) - BigUint(1);
  EXPECT_FALSE(is_probable_prime(m128, d));
}

TEST(MillerRabin, ProductOfTwoPrimesIsComposite) {
  Drbg d("pq");
  BigUint p = generate_prime(96, d);
  BigUint q = generate_prime(96, d);
  EXPECT_FALSE(is_probable_prime(p * q, d));
}

TEST(PrimeCandidate, HasRequestedShape) {
  Drbg d("cand");
  for (std::size_t bits : {64u, 128u, 257u}) {
    BigUint c = random_prime_candidate(bits, d);
    EXPECT_EQ(c.bit_length(), bits);
    EXPECT_TRUE(c.is_odd());
    EXPECT_TRUE(c.bit(bits - 2));  // second-highest bit pinned
  }
}

TEST(GeneratePrime, ProducesPrimeOfExactWidth) {
  Drbg d("gen");
  for (std::size_t bits : {64u, 128u, 256u}) {
    BigUint p = generate_prime(bits, d);
    EXPECT_EQ(p.bit_length(), bits);
    Drbg check("check");
    EXPECT_TRUE(is_probable_prime(p, check));
  }
}

TEST(GeneratePrime, DeterministicForSeed) {
  Drbg a("same-seed"), b("same-seed");
  EXPECT_EQ(generate_prime(128, a), generate_prime(128, b));
}

TEST(GeneratePrime, DistinctForDistinctSeeds) {
  Drbg a("seed-a"), b("seed-b");
  EXPECT_NE(generate_prime(128, a), generate_prime(128, b));
}

TEST(GeneratePrime, ProductHasFullWidth) {
  // The two pinned top bits guarantee p*q has exactly 2*bits bits.
  Drbg d("width");
  BigUint p = generate_prime(128, d);
  BigUint q = generate_prime(128, d);
  EXPECT_EQ((p * q).bit_length(), 256u);
}

}  // namespace
}  // namespace sdmmon::crypto
