// Fleet-service rollout tests: staged waves over modeled fleets, the
// automatic-halt controller under a poisoned release (the acceptance
// scenario: >=10^5 devices, <5% blast radius, exact deterministic
// counts), correlated regional outages, slow-roll behavior changes timed
// against a rotation, recovery after a halt, and the concrete-device
// sample running the real install/monitor/quarantine path end to end.
#include "fleet/service.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fleet/attestation.hpp"
#include "isa/assembler.hpp"
#include "obs/obs.hpp"
#include "support/test_apps.hpp"
#include "support/test_params.hpp"

namespace sdmmon::fleet {
namespace {

// A release with no concrete binary: the fleet stays fully modeled.
Release modeled_release(std::uint32_t version, ReleaseBehavior behavior) {
  Release release;
  release.version = version;
  release.app_name = "app-v" + std::to_string(version);
  release.behavior = behavior;
  return release;
}

ReleaseBehavior clean_behavior() {
  ReleaseBehavior behavior;
  behavior.loss_rate = 0.02;
  behavior.install_ms = 1500;
  behavior.bake_ms = 20'000;
  return behavior;
}

ReleaseBehavior poisoned_behavior() {
  ReleaseBehavior behavior = clean_behavior();
  behavior.quarantine_rate = 0.5;  // monitors flag half the installs
  return behavior;
}

// ---------------------------------------------------------------------
// Clean staged rollout
// ---------------------------------------------------------------------

TEST(FleetRollout, CleanRolloutConvergesThroughAllWaves) {
  Simulator sim;
  FleetConfig config;
  config.devices = 20'000;
  config.seed = 0xC1EA7;
  FleetService service(sim, config);
  service.start_rollout(modeled_release(1, clean_behavior()));
  sim.run();

  ASSERT_TRUE(service.rollout_done());
  RolloutReport report = service.report();
  EXPECT_FALSE(report.halted);
  ASSERT_EQ(report.waves.size(), 4u);
  std::size_t targeted = 0;
  for (const WaveStats& wave : report.waves) {
    EXPECT_EQ(wave.terminal(), wave.targeted);
    targeted += wave.targeted;
  }
  EXPECT_EQ(targeted, 20'000u);
  // Deterministic: the seeded run always converges identically.
  EXPECT_EQ(report.health.healthy + report.health.unreachable, 20'000u);
  EXPECT_EQ(report.health.unreachable, 0u);
  EXPECT_TRUE(report.reached_t90);
  EXPECT_EQ(report.t90_ms, 404'030u);
  EXPECT_GT(report.health_score, 99.0);
}

TEST(FleetRollout, ChannelsPartitionDeterministically) {
  Simulator sim;
  FleetConfig config;
  config.devices = 10'000;
  FleetService service(sim, config);
  service.start_rollout(modeled_release(1, clean_behavior()));

  std::size_t canary = 0, beta = 0, stable = 0;
  for (std::size_t id = 0; id < service.device_count(); ++id) {
    const ModeledDevice& dev = service.device(id);
    switch (dev.channel) {
      case ReleaseChannel::Canary: ++canary; break;
      case ReleaseChannel::Beta: ++beta; break;
      case ReleaseChannel::Stable: ++stable; break;
    }
    // The first wave (1% by rank) lies inside the canary channel (5%).
    if (dev.wave == 0) {
      EXPECT_EQ(dev.channel, ReleaseChannel::Canary) << "device " << id;
    }
  }
  EXPECT_EQ(canary, 519u);
  EXPECT_EQ(beta, 1'962u);
  EXPECT_EQ(canary + beta + stable, 10'000u);
}

// ---------------------------------------------------------------------
// Poisoned release: the acceptance halt demo at 10^5 devices
// ---------------------------------------------------------------------

TEST(FleetRollout, PoisonedReleaseHaltsWithBoundedBlastRadius) {
  Simulator sim;
  FleetConfig config;
  config.devices = 100'000;
  config.seed = 0xBAD5EED;
  FleetService service(sim, config);
  service.start_rollout(modeled_release(2, poisoned_behavior()));
  sim.run();

  ASSERT_TRUE(service.rollout_done());
  RolloutReport report = service.report();
  ASSERT_TRUE(report.halted);
  EXPECT_EQ(report.halt_reason, HaltReason::QuarantineRate);
  // Canary wave catches it: the halt fires in wave 0.
  EXPECT_EQ(report.halted_wave, 0u);
  // Blast radius: far fewer than 5% of the fleet activated the release.
  EXPECT_LT(report.affected, 5'000u);
  // Every affected device was rolled back to last-good; exact counts are
  // pinned -- the seeded run replays bit-for-bit.
  EXPECT_EQ(report.affected, 86u);
  EXPECT_EQ(report.rollbacks, report.affected);
  EXPECT_EQ(report.halt_time_ms, 7'002u);
  EXPECT_EQ(report.halt_detect_ms, 7'002u);
  EXPECT_EQ(report.health.rolled_back, report.rollbacks);
  EXPECT_EQ(report.health.quarantined, 0u);  // quarantined devices re-imaged

  // Rolled-back devices run their previous (factory) version again.
  std::size_t rolled = 0;
  for (std::size_t id = 0; id < service.device_count(); ++id) {
    const ModeledDevice& dev = service.device(id);
    EXPECT_NE(dev.state, DeviceState::Quarantined);
    if (dev.state == DeviceState::RolledBack) {
      ++rolled;
      EXPECT_EQ(dev.version, 0u) << "device " << id;
    }
  }
  EXPECT_EQ(rolled, report.rollbacks);
}

TEST(FleetRollout, PoisonedRolloutReplaysBitForBit) {
  auto run = [] {
    Simulator sim;
    FleetConfig config;
    config.devices = 30'000;
    config.seed = 0xD17E;
    FleetService service(sim, config);
    service.start_rollout(modeled_release(2, poisoned_behavior()));
    sim.run();
    return service.report();
  };
  RolloutReport a = run();
  RolloutReport b = run();
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_EQ(a.halt_time_ms, b.halt_time_ms);
  EXPECT_EQ(a.affected, b.affected);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  ASSERT_EQ(a.waves.size(), b.waves.size());
  for (std::size_t w = 0; w < a.waves.size(); ++w) {
    EXPECT_EQ(a.waves[w].installed, b.waves[w].installed);
    EXPECT_EQ(a.waves[w].quarantined, b.waves[w].quarantined);
  }
}

TEST(FleetRollout, FixedReleaseConvergesAfterHalt) {
  Simulator sim;
  FleetConfig config;
  config.devices = 5'000;
  FleetService service(sim, config);
  service.start_rollout(modeled_release(2, poisoned_behavior()));
  sim.run();
  ASSERT_TRUE(service.report().halted);

  // Ship the fixed build: every device (rolled-back ones included) is
  // re-targeted and the fleet converges.
  service.start_rollout(modeled_release(3, clean_behavior()));
  sim.run();
  RolloutReport report = service.report();
  EXPECT_FALSE(report.halted);
  EXPECT_EQ(report.health.rolled_back, 0u);
  EXPECT_EQ(report.health.healthy + report.health.unreachable, 5'000u);
  for (std::size_t id = 0; id < service.device_count(); ++id) {
    const ModeledDevice& dev = service.device(id);
    if (dev.state == DeviceState::Healthy) EXPECT_EQ(dev.version, 3u);
  }
}

// ---------------------------------------------------------------------
// Correlated failures
// ---------------------------------------------------------------------

TEST(FleetRollout, RegionalOutageIsNotMisreadAsBadRelease) {
  Simulator sim;
  FleetConfig config;
  config.devices = 4'000;
  config.regions = 4;
  FleetService service(sim, config);
  // Region 1's management plane is dark for the whole campaign.
  Outage outage;
  outage.region = 1;
  outage.start_ms = 0;
  outage.end_ms = 100'000'000;
  service.schedule_outage(outage);
  service.start_rollout(modeled_release(1, clean_behavior()));
  sim.run();

  RolloutReport report = service.report();
  // Devices behind the outage exhaust their retry schedule and land in
  // Unreachable -- which must NOT trip the halt controller: the release
  // is fine, the region is not.
  EXPECT_FALSE(report.halted);
  EXPECT_EQ(report.health.unreachable, 1'025u);
  EXPECT_EQ(report.health.healthy + report.health.unreachable, 4'000u);
  for (std::size_t id = 0; id < service.device_count(); ++id) {
    const ModeledDevice& dev = service.device(id);
    if (dev.state == DeviceState::Unreachable) {
      EXPECT_EQ(dev.region, 1u) << "device " << id;
    }
  }
}

TEST(FleetRollout, SlowRollAttackAgainstRotationIsCaughtMidBake) {
  Simulator sim;
  FleetConfig config;
  config.devices = 5'000;
  FleetService service(sim, config);
  // Baseline release converges fleet-wide.
  service.start_rollout(modeled_release(1, clean_behavior()));
  sim.run();
  ASSERT_FALSE(service.report().halted);
  const SimTime rotation_start = sim.now();

  // Parameter-rotation campaign (modeled as a re-keyed release). The
  // release behaves clean while the canary wave bakes, then turns
  // hostile -- the classic slow-roll timed to land after early waves
  // look good. Behavior is re-read every bake slice, so devices already
  // baking catch it.
  ReleaseBehavior hostile = clean_behavior();
  hostile.quarantine_rate = 0.8;
  service.start_rollout(modeled_release(2, clean_behavior()));
  service.schedule_behavior_change(rotation_start + 150'000, hostile);
  sim.run();

  RolloutReport report = service.report();
  ASSERT_TRUE(report.halted);
  EXPECT_EQ(report.halt_reason, HaltReason::QuarantineRate);
  // The attack deliberately waited out the canary wave...
  EXPECT_GT(report.halted_wave, 0u);
  EXPECT_GE(report.halt_time_ms, rotation_start + 150'000);
  // ...but the halt still bounded the blast radius and rolled back every
  // device that had activated the rotation.
  EXPECT_EQ(report.halted_wave, 1u);
  EXPECT_EQ(report.affected, 328u);
  EXPECT_EQ(report.rollbacks, report.affected);
  // Rolled-back devices are on the pre-rotation version again.
  for (std::size_t id = 0; id < service.device_count(); ++id) {
    const ModeledDevice& dev = service.device(id);
    if (dev.state == DeviceState::RolledBack) EXPECT_EQ(dev.version, 1u);
  }
}

TEST(FleetRollout, RejectionStormHaltsRollout) {
  Simulator sim;
  FleetConfig config;
  config.devices = 20'000;
  FleetService service(sim, config);
  // A release sealed with a broken operator certificate class: devices
  // permanently reject a third of deliveries.
  ReleaseBehavior bad = clean_behavior();
  bad.reject_rate = 0.33;
  service.start_rollout(modeled_release(2, bad));
  sim.run();

  RolloutReport report = service.report();
  ASSERT_TRUE(report.halted);
  EXPECT_EQ(report.halt_reason, HaltReason::RejectionRate);
  EXPECT_EQ(report.halted_wave, 0u);
  EXPECT_LT(report.affected, 1'000u);  // blast radius: canary only
}

// ---------------------------------------------------------------------
// Concrete sample: the real protocol under the fleet service
// ---------------------------------------------------------------------

struct ConcreteFleet {
  Simulator sim;
  FleetConfig config;
  std::unique_ptr<FleetService> service;

  ConcreteFleet() {
    config.devices = 4;
    config.concrete_sample = 2;
    config.concrete_cores = 2;
    config.concrete_key_bits = testsupport::kTestKeyBits;
    config.wave_fractions = {1.0};
    config.wave_ramp_ms = 4'000;
    config.halt.min_sample = 2;
    config.halt.max_quarantine_rate = 0.25;
    config.attack_packet = testsupport::attack_packet();
    service = std::make_unique<FleetService>(sim, config);
  }

  Release echo_release() {
    Release release;
    release.version = 1;
    release.app_name = "echo-app";
    release.binary = isa::assemble(testsupport::kEchoApp);
    release.binary.name = "echo-app";
    release.behavior = clean_behavior();
    release.behavior.loss_rate = 0;
    return release;
  }

  Release vuln_release() {
    Release release;
    release.version = 2;
    release.app_name = "vuln-app";
    release.binary = isa::assemble(testsupport::kVulnApp);
    release.binary.name = "vuln-app";
    release.behavior = clean_behavior();
    release.behavior.loss_rate = 0;
    // Modeled peers stay clean: only the concrete monitors' verdicts
    // drive the halt in this scenario.
    release.concrete_attack_rate = 1.0;
    return release;
  }
};

TEST(FleetRolloutConcrete, RealDevicesInstallQuarantineAndRollBack) {
  ConcreteFleet fleet;
  // Baseline: the echo release installs for real on the concrete pair.
  fleet.service->start_rollout(fleet.echo_release());
  fleet.sim.run();
  ASSERT_FALSE(fleet.service->report().halted);
  for (std::size_t slot = 0; slot < fleet.service->concrete_count();
       ++slot) {
    protocol::NetworkProcessorDevice& device =
        fleet.service->concrete_device(slot);
    EXPECT_TRUE(device.has_application());
    EXPECT_EQ(device.application_name(), "echo-app");
  }

  // Poisoned build: probe traffic is pure attack packets, the vulnerable
  // app executes them, the monitors flag every one, QuarantineAfterK
  // isolates the cores -- and the fleet controller halts on the *real*
  // quarantine verdicts, then re-images last-good over the real channel.
  fleet.service->start_rollout(fleet.vuln_release());
  fleet.sim.run();
  RolloutReport report = fleet.service->report();
  ASSERT_TRUE(report.halted);
  EXPECT_EQ(report.halt_reason, HaltReason::QuarantineRate);
  EXPECT_EQ(report.rollbacks, report.affected);
  EXPECT_GE(report.rollbacks, 2u);

  for (std::size_t slot = 0; slot < fleet.service->concrete_count();
       ++slot) {
    protocol::NetworkProcessorDevice& device =
        fleet.service->concrete_device(slot);
    const ModeledDevice& dev = fleet.service->device(slot);
    EXPECT_EQ(dev.state, DeviceState::RolledBack);
    EXPECT_EQ(dev.version, 1u);
    // Rollback really re-imaged last-good: the echo app is live again
    // and every core is back in service.
    EXPECT_EQ(device.application_name(), "echo-app");
    np::MpsocStats stats = device.mpsoc().aggregate_stats();
    EXPECT_EQ(stats.quarantined_cores, 0u);
    EXPECT_GE(stats.quarantine_events, 1u);  // the attack left a record
    EXPECT_GE(stats.attacks_detected, 1u);
  }
}

TEST(FleetRolloutConcrete, AttestationReportsCarryMonitorEvidence) {
  ConcreteFleet fleet;
  fleet.service->start_rollout(fleet.echo_release());
  fleet.sim.run();
  fleet.service->start_rollout(fleet.vuln_release());
  fleet.sim.run();
  ASSERT_TRUE(fleet.service->report().halted);

  // Concrete attestations: stats sourced from the device's observability
  // snapshot (the JSON a reporting agent ships) when obs is compiled in,
  // from engine counters otherwise -- same numbers either way.
  AttestationReport concrete = fleet.service->attest(0);
  EXPECT_TRUE(concrete.concrete);
  EXPECT_EQ(concrete.state, DeviceState::RolledBack);
  EXPECT_GT(concrete.packets, 0u);
  EXPECT_GE(concrete.attacks, 1u);
  EXPECT_GE(concrete.quarantines, 1u);
  EXPECT_NE(concrete.hash_param, 0u);
  EXPECT_FALSE(concrete.app_hash_hex.empty());

  // Modeled attestation for a rolled-back peer.
  AttestationReport modeled = fleet.service->attest(3);
  EXPECT_FALSE(modeled.concrete);
  EXPECT_EQ(modeled.version, 1u);

  // SR2 evidence: the two concrete devices report distinct parameters.
  EXPECT_NE(fleet.service->attest(0).hash_param,
            fleet.service->attest(1).hash_param);
}

// ---------------------------------------------------------------------
// Health score + observability
// ---------------------------------------------------------------------

TEST(FleetHealthScore, FormulaIsExplainable) {
  FleetHealth perfect{.devices = 100, .healthy = 100};
  EXPECT_DOUBLE_EQ(fleet_health_score(perfect), 100.0);

  FleetHealth empty;
  EXPECT_DOUBLE_EQ(fleet_health_score(empty), 100.0);

  // Quarantines are weighted far harder than delivery failures.
  FleetHealth quarantined{.devices = 100, .healthy = 98, .quarantined = 2};
  FleetHealth unreachable{.devices = 100, .healthy = 98, .unreachable = 2};
  EXPECT_LT(fleet_health_score(quarantined),
            fleet_health_score(unreachable));
  EXPECT_DOUBLE_EQ(fleet_health_score(quarantined), 94.0);
  EXPECT_DOUBLE_EQ(fleet_health_score(unreachable), 97.5);

  // Mid-rollout: in-flight devices read as converging, not broken.
  FleetHealth rolling{.devices = 100, .healthy = 50, .in_flight = 50};
  EXPECT_DOUBLE_EQ(fleet_health_score(rolling), 75.0);

  // Score clamps instead of going negative.
  FleetHealth disaster{.devices = 10, .quarantined = 10};
  EXPECT_DOUBLE_EQ(fleet_health_score(disaster), 0.0);
}

#if SDMMON_OBS_ENABLED
TEST(FleetRolloutObs, GaugesCountersAndJournalTrackTheRollout) {
  Simulator sim;
  obs::Registry registry;
  FleetConfig config;
  config.devices = 2'000;
  config.registry = &registry;
  FleetService service(sim, config);
  service.start_rollout(modeled_release(2, poisoned_behavior()));
  sim.run();
  RolloutReport report = service.report();
  ASSERT_TRUE(report.halted);

  obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.at("fleet.sim.devices"), 2'000);
  EXPECT_EQ(snap.counters.at("fleet.rollout.halts"), 1u);
  EXPECT_EQ(snap.counters.at("fleet.sim.rollbacks"), report.rollbacks);
  EXPECT_EQ(snap.counters.at("fleet.sim.installs"),
            static_cast<std::uint64_t>(report.affected));
  EXPECT_GT(snap.counters.at("fleet.sim.quarantines"), 0u);
  EXPECT_GE(snap.gauges.at("fleet.health.score"), 0);

  bool saw_wave = false, saw_halt = false, saw_rollback = false;
  for (const obs::Event& event : snap.events) {
    if (event.kind == obs::EventKind::RolloutWave) saw_wave = true;
    if (event.kind == obs::EventKind::RolloutHalt) {
      saw_halt = true;
      EXPECT_EQ(event.arg, static_cast<std::uint64_t>(
                               HaltReason::QuarantineRate));
    }
    if (event.kind == obs::EventKind::RolloutRollback) {
      saw_rollback = true;
      EXPECT_EQ(event.arg, static_cast<std::uint64_t>(report.rollbacks));
    }
  }
  EXPECT_TRUE(saw_wave);
  EXPECT_TRUE(saw_halt);
  EXPECT_TRUE(saw_rollback);
}
#endif  // SDMMON_OBS_ENABLED

}  // namespace
}  // namespace sdmmon::fleet
