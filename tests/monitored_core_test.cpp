#include "np/monitored_core.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "np/mpsoc.hpp"

namespace sdmmon::np {
namespace {

using monitor::MerkleTreeHash;
using monitor::extract_graph;

void install(MonitoredCore& core, const char* src,
             std::uint32_t param = 0x5EC0DE) {
  isa::Program p = isa::assemble(src);
  MerkleTreeHash hash(param);
  core.install(p, extract_graph(p, hash),
               std::make_unique<MerkleTreeHash>(hash));
}

// Echo app: copy the packet to the output buffer and commit.
constexpr const char* kEchoApp = R"(
main:
    li $t0, 0xFFFF0000
    lw $t1, 0($t0)        # len
    beqz $t1, drop
    li $t2, 0x30000       # src
    li $t3, 0x40000       # dst
    move $t4, $zero       # i
copy:
    addu $t5, $t2, $t4
    lbu $t6, 0($t5)
    addu $t5, $t3, $t4
    sb $t6, 0($t5)
    addiu $t4, $t4, 1
    bne $t4, $t1, copy
    li $t0, 0xFFFF0004    # commit
    sw $t1, 0($t0)
drop:
    jr $ra
)";

TEST(MonitoredCore, UninstalledDropsPackets) {
  MonitoredCore core;
  util::Bytes pkt = {1, 2, 3};
  EXPECT_EQ(core.process_packet(pkt).outcome, PacketOutcome::Dropped);
  EXPECT_FALSE(core.installed());
}

TEST(MonitoredCore, ForwardsValidPacket) {
  MonitoredCore core;
  install(core, kEchoApp);
  util::Bytes pkt = {0xDE, 0xAD, 0xBE, 0xEF};
  PacketResult r = core.process_packet(pkt);
  EXPECT_EQ(r.outcome, PacketOutcome::Forwarded);
  EXPECT_EQ(r.output, pkt);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_EQ(core.stats().forwarded, 1u);
}

TEST(MonitoredCore, DropsEmptyPacketViaReturnPath) {
  MonitoredCore core;
  install(core, kEchoApp);
  PacketResult r = core.process_packet(util::Bytes{});
  EXPECT_EQ(r.outcome, PacketOutcome::Dropped);
}

TEST(MonitoredCore, ManyPacketsNoFalsePositives) {
  MonitoredCore core;
  install(core, kEchoApp);
  for (int i = 1; i <= 200; ++i) {
    util::Bytes pkt(static_cast<std::size_t>(1 + i % 64));
    for (auto& b : pkt) b = static_cast<std::uint8_t>(i);
    PacketResult r = core.process_packet(pkt);
    ASSERT_EQ(r.outcome, PacketOutcome::Forwarded) << "packet " << i;
    ASSERT_EQ(r.output, pkt);
  }
  EXPECT_EQ(core.stats().attacks_detected, 0u);
  EXPECT_EQ(core.stats().packets, 200u);
}

// An app that jumps into the packet buffer: injected code executes and the
// monitor must flag the very first foreign instruction with P=15/16.
constexpr const char* kVulnApp = R"(
main:
    li $t0, 0x30000
    jr $t0
)";

TEST(MonitoredCore, DetectsInjectedCode) {
  MonitoredCore core;
  install(core, kVulnApp);
  // Packet carries real instructions (an addiu loop).
  isa::Program payload = isa::assemble(R"(
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    addiu $t0, $t0, 3
    jr $ra
  )");
  util::Bytes pkt(payload.text.size() * 4);
  for (std::size_t i = 0; i < payload.text.size(); ++i) {
    util::store_le32(payload.text[i], pkt.data() + 4 * i);
  }
  int detected = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    MonitoredCore c;
    install(c, kVulnApp, static_cast<std::uint32_t>(t * 2654435761u));
    PacketResult r = c.process_packet(pkt);
    if (r.outcome == PacketOutcome::AttackDetected) ++detected;
  }
  // 4 foreign instructions, each ~15/16 detection: expect nearly all.
  EXPECT_GT(detected, trials * 9 / 10);
}

TEST(MonitoredCore, EnforcementOffLetsAttackRun) {
  MonitoredCore core;
  install(core, kVulnApp);
  core.set_enforcement(false);
  isa::Program payload = isa::assemble(R"(
    li $t2, 0xFFFF0008
    sw $zero, 0($t2)
  )");
  util::Bytes pkt(payload.text.size() * 4);
  for (std::size_t i = 0; i < payload.text.size(); ++i) {
    util::store_le32(payload.text[i], pkt.data() + 4 * i);
  }
  PacketResult r = core.process_packet(pkt);
  // Injected code ran to completion (signaled done) -- no enforcement.
  EXPECT_EQ(r.outcome, PacketOutcome::Dropped);
}

TEST(MonitoredCore, TrapReportsAsTrapped) {
  MonitoredCore core;
  install(core, R"(
main:
    li $t0, 0x00990000
    lw $t1, 0($t0)
    jr $ra
)");
  PacketResult r = core.process_packet(util::Bytes{1});
  EXPECT_EQ(r.outcome, PacketOutcome::Trapped);
  EXPECT_EQ(r.trap, Trap::MemFault);
  EXPECT_EQ(core.stats().traps, 1u);
}

TEST(MonitoredCore, RecoveryAfterAttack) {
  // After an attack is detected the core must process the next packet
  // correctly (paper: drop packet, reset stack, continue).
  MonitoredCore core;
  install(core, kEchoApp);
  // First, a normal packet.
  util::Bytes good = {0x01, 0x02};
  EXPECT_EQ(core.process_packet(good).outcome, PacketOutcome::Forwarded);
  // Re-install the vulnerable app, attack it, then verify echo still works
  // after re-installing the echo app (dynamic reprogramming cycle).
  install(core, kVulnApp);
  isa::Program payload =
      isa::assemble("addiu $t1, $t1, 7\naddiu $t1, $t1, 8\njr $ra\n");
  util::Bytes pkt(payload.text.size() * 4);
  for (std::size_t i = 0; i < payload.text.size(); ++i) {
    util::store_le32(payload.text[i], pkt.data() + 4 * i);
  }
  (void)core.process_packet(pkt);  // likely detected; at minimum no crash
  install(core, kEchoApp);
  PacketResult r = core.process_packet(good);
  EXPECT_EQ(r.outcome, PacketOutcome::Forwarded);
  EXPECT_EQ(r.output, good);
}

TEST(Mpsoc, RoundRobinDispatch) {
  Mpsoc soc(4);
  isa::Program p = isa::assemble(kEchoApp);
  MerkleTreeHash hash(0x77777777);
  soc.install_all(p, extract_graph(p, hash), hash);
  util::Bytes pkt = {9, 8, 7};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(soc.process_packet(pkt).outcome, PacketOutcome::Forwarded);
  }
  for (std::size_t c = 0; c < soc.num_cores(); ++c) {
    EXPECT_EQ(soc.core(c).stats().packets, 2u) << "core " << c;
  }
  EXPECT_EQ(soc.aggregate_stats().forwarded, 8u);
}

TEST(Mpsoc, FlowHashIsSticky) {
  Mpsoc soc(4, DispatchPolicy::FlowHash);
  isa::Program p = isa::assemble(kEchoApp);
  MerkleTreeHash hash(0x12121212);
  soc.install_all(p, extract_graph(p, hash), hash);
  util::Bytes pkt = {1};
  for (int i = 0; i < 10; ++i) soc.process_packet(pkt, /*flow_key=*/0xABCD);
  // All ten packets landed on one core.
  int cores_used = 0;
  for (std::size_t c = 0; c < soc.num_cores(); ++c) {
    if (soc.core(c).stats().packets > 0) ++cores_used;
  }
  EXPECT_EQ(cores_used, 1);
}

TEST(Mpsoc, LeastLoadedBalancesInstructions) {
  Mpsoc soc(3, DispatchPolicy::LeastLoaded);
  isa::Program p = isa::assemble(kEchoApp);
  MerkleTreeHash hash(0x1EA57);
  soc.install_all(p, extract_graph(p, hash), hash);
  // Mixed packet sizes: least-loaded keeps per-core instruction counts
  // within one packet's worth of work of each other.
  for (int i = 0; i < 60; ++i) {
    util::Bytes pkt(static_cast<std::size_t>(4 + (i % 5) * 50), 0x42);
    EXPECT_EQ(soc.process_packet(pkt).outcome, PacketOutcome::Forwarded);
  }
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::size_t c = 0; c < soc.num_cores(); ++c) {
    lo = std::min(lo, soc.core(c).stats().instructions);
    hi = std::max(hi, soc.core(c).stats().instructions);
  }
  // The largest echo packet costs ~1400 instructions; imbalance must stay
  // within roughly one such packet.
  EXPECT_LT(hi - lo, 2500u);
  EXPECT_EQ(soc.aggregate_stats().forwarded, 60u);
}

TEST(Mpsoc, PerCoreHeterogeneousInstall) {
  Mpsoc soc(2);
  isa::Program echo = isa::assemble(kEchoApp);
  isa::Program drop = isa::assemble("main:\n jr $ra\n");
  MerkleTreeHash h1(1), h2(2);
  soc.install(0, echo, extract_graph(echo, h1),
              std::make_unique<MerkleTreeHash>(h1));
  soc.install(1, drop, extract_graph(drop, h2),
              std::make_unique<MerkleTreeHash>(h2));
  util::Bytes pkt = {5};
  EXPECT_EQ(soc.process_packet(pkt).outcome, PacketOutcome::Forwarded);
  EXPECT_EQ(soc.process_packet(pkt).outcome, PacketOutcome::Dropped);
}

}  // namespace
}  // namespace sdmmon::np
