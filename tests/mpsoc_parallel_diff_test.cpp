// Serial-equivalence differential suite for the parallel MPSoC engine
// (ISSUE 2 tentpole). Every test replays one deterministic seeded
// workload -- benign UDP traffic plus an attack mix that exploits a
// vulnerable handler -- through the serial Mpsoc and the ParallelMpsoc
// and diffs the full golden trace (tests/support/engine_diff.hpp):
//
//  * RoundRobin and FlowHash must be BIT-IDENTICAL -- per-packet
//    outcomes, per-core stats, every recovery decision -- across all
//    three recovery policies, every worker count, every speculation
//    window (batch size), and uniform as well as heavily skewed flow
//    distributions.
//  * LeastLoaded is documented as relaxed (load feedback counts
//    committed instructions plus an estimate for in-flight packets):
//    outcomes stay identical on homogeneous installs, and the
//    conservation/recovery-safety invariants hold always. batch_size=1
//    bounds the flight window to one packet and restores exactness.
#include "np/parallel_mpsoc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "np/mpsoc.hpp"
#include "obs/names.hpp"
#include "sdmmon/workload.hpp"
#include "support/engine_diff.hpp"
#include "support/test_apps.hpp"
#include "support/test_params.hpp"

namespace sdmmon {
namespace {

using protocol::MixedWorkload;
using protocol::MixedWorkloadConfig;
using protocol::WorkItem;
using testsupport::EngineTrace;
using testsupport::expect_trace_conserved;
using testsupport::expect_traces_identical;
using testsupport::install_all;
using testsupport::install_one;
using testsupport::kEchoApp;
using testsupport::kVulnApp;
using testsupport::make_recovery_config;
using testsupport::run_parallel;
using testsupport::run_serial;

constexpr std::size_t kCores = 4;

std::vector<WorkItem> mixed_items(std::size_t count, double attack_rate,
                                  std::uint64_t seed = 0x5EED) {
  MixedWorkloadConfig config;
  config.seed = seed;
  config.attack_rate = attack_rate;
  config.attack_packet = testsupport::attack_packet();
  return MixedWorkload(config).generate(0, count);
}

/// Heterogeneous fixture: cores [0, vuln_cores) run the exploitable app,
/// the rest run echo -- identical parameters on both engines.
template <typename Soc>
void install_mixed_fleet(Soc& soc, std::size_t vuln_cores) {
  for (std::size_t c = 0; c < soc.num_cores(); ++c) {
    install_one(soc, c, c < vuln_cores ? kVulnApp : kEchoApp,
                0x1000 + static_cast<std::uint32_t>(c));
  }
}

void expect_bit_identical(np::DispatchPolicy dispatch,
                          np::RecoveryPolicy recovery, std::size_t packets,
                          double attack_rate, np::ParallelConfig parallel,
                          std::size_t chunk = 0) {
  np::RecoveryConfig config = make_recovery_config(recovery);
  np::Mpsoc serial(kCores, dispatch, config);
  np::ParallelMpsoc par(kCores, dispatch, config, parallel);
  install_mixed_fleet(serial, /*vuln_cores=*/2);
  install_mixed_fleet(par, /*vuln_cores=*/2);

  std::vector<WorkItem> items = mixed_items(packets, attack_rate);
  EngineTrace st = run_serial(serial, items);
  EngineTrace pt = run_parallel(par, items, chunk);
  expect_traces_identical(st, pt);
}

// ---------------------------------------------------------------------
// Strict contract: RoundRobin / FlowHash x all three recovery policies
// ---------------------------------------------------------------------

TEST(ParallelDiff, RoundRobinBitIdenticalAllRecoveryPolicies) {
  for (np::RecoveryPolicy recovery :
       {np::RecoveryPolicy::ResetAndContinue,
        np::RecoveryPolicy::QuarantineAfterK,
        np::RecoveryPolicy::ReinstallLastGood}) {
    SCOPED_TRACE(np::recovery_policy_name(recovery));
    expect_bit_identical(np::DispatchPolicy::RoundRobin, recovery,
                         /*packets=*/1500, /*attack_rate=*/0.12, {});
  }
}

TEST(ParallelDiff, FlowHashBitIdenticalAllRecoveryPolicies) {
  for (np::RecoveryPolicy recovery :
       {np::RecoveryPolicy::ResetAndContinue,
        np::RecoveryPolicy::QuarantineAfterK,
        np::RecoveryPolicy::ReinstallLastGood}) {
    SCOPED_TRACE(np::recovery_policy_name(recovery));
    expect_bit_identical(np::DispatchPolicy::FlowHash, recovery,
                         /*packets=*/1500, /*attack_rate=*/0.12, {});
  }
}

TEST(ParallelDiff, BatchSizeInvariant) {
  // The speculation window is an implementation detail: windows of 1
  // (fully serialized), 7 (misaligned with the core count), and 64 must
  // all produce the same trace as the serial engine.
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch));
    np::ParallelConfig parallel;
    parallel.batch_size = batch;
    expect_bit_identical(np::DispatchPolicy::RoundRobin,
                         np::RecoveryPolicy::QuarantineAfterK,
                         /*packets=*/600, /*attack_rate=*/0.15, parallel);
  }
}

TEST(ParallelDiff, BatchSizeByRecoveryPolicyMatrix) {
  // Every recovery policy crossed with a small and a large speculation
  // window: rollback/replay depth varies wildly across these cells, but
  // the trace may not.
  for (np::RecoveryPolicy recovery :
       {np::RecoveryPolicy::ResetAndContinue,
        np::RecoveryPolicy::QuarantineAfterK,
        np::RecoveryPolicy::ReinstallLastGood}) {
    for (std::size_t batch : {std::size_t{3}, std::size_t{128}}) {
      SCOPED_TRACE(std::string(np::recovery_policy_name(recovery)) +
                   " batch_size=" + std::to_string(batch));
      np::ParallelConfig parallel;
      parallel.batch_size = batch;
      expect_bit_identical(np::DispatchPolicy::FlowHash, recovery,
                           /*packets=*/700, /*attack_rate=*/0.15, parallel);
    }
  }
}

TEST(ParallelDiff, SkewedHeavyHitterFlowsBitIdentical) {
  // A heavy-hitter flow distribution (~70% of traffic on one flow key)
  // funnels most packets through one core and therefore one shard; the
  // other shards go idle and live off the stealing path while the hot
  // core's turn tickets serialize the elephant flow. The trace must
  // still be bit-identical under every recovery policy.
  for (np::RecoveryPolicy recovery :
       {np::RecoveryPolicy::ResetAndContinue,
        np::RecoveryPolicy::QuarantineAfterK,
        np::RecoveryPolicy::ReinstallLastGood}) {
    SCOPED_TRACE(np::recovery_policy_name(recovery));
    np::RecoveryConfig config = make_recovery_config(recovery);
    np::Mpsoc serial(kCores, np::DispatchPolicy::FlowHash, config);
    np::ParallelMpsoc par(kCores, np::DispatchPolicy::FlowHash, config, {});
    install_mixed_fleet(serial, /*vuln_cores=*/2);
    install_mixed_fleet(par, /*vuln_cores=*/2);

    std::vector<WorkItem> items = mixed_items(1400, 0.12);
    for (std::size_t i = 0; i < items.size(); ++i) {
      // Deterministic skew: 7 of every 10 packets join the elephant flow.
      if (i % 10 < 7) items[i].flow_key = 0xE1EFA27;
    }
    EngineTrace st = run_serial(serial, items);
    EngineTrace pt = run_parallel(par, items, /*chunk=*/137);
    expect_traces_identical(st, pt);
  }
}

TEST(ParallelDiff, WorkerCountInvariant) {
  // Cores sharded over fewer workers than cores (and a single worker)
  // preserve per-core packet order, so the trace is unchanged.
  for (std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    np::ParallelConfig parallel;
    parallel.workers = workers;
    expect_bit_identical(np::DispatchPolicy::FlowHash,
                         np::RecoveryPolicy::ReinstallLastGood,
                         /*packets=*/1000, /*attack_rate=*/0.12, parallel);
  }
}

TEST(ParallelDiff, ChunkedSubmissionInvariant) {
  // Feeding the parallel engine in odd-sized process_packets() chunks
  // (which flush between calls) cannot change the trace either.
  expect_bit_identical(np::DispatchPolicy::RoundRobin,
                       np::RecoveryPolicy::ReinstallLastGood,
                       /*packets=*/900, /*attack_rate=*/0.12, {},
                       /*chunk=*/113);
}

TEST(ParallelDiff, AsyncSubmitMatchesSerialStats) {
  // The fire-and-forget submit() path cannot return per-packet results,
  // but after flush() the engine state must still match the serial run.
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
  np::Mpsoc serial(kCores, np::DispatchPolicy::FlowHash, config);
  np::ParallelMpsoc par(kCores, np::DispatchPolicy::FlowHash, config);
  install_mixed_fleet(serial, 2);
  install_mixed_fleet(par, 2);

  std::vector<WorkItem> items = mixed_items(1200, 0.15);
  EngineTrace st = run_serial(serial, items);
  for (const WorkItem& item : items) par.submit(item.packet, item.flow_key);
  par.flush();

  EngineTrace pt;
  testsupport::record_engine_state(pt, par);
  for (std::size_t c = 0; c < kCores; ++c) {
    testsupport::expect_core_stats_equal(st.core_stats[c], pt.core_stats[c],
                                         c);
    EXPECT_EQ(st.health[c], pt.health[c]) << "core " << c;
  }
  EXPECT_EQ(st.stats.violations, pt.stats.violations);
  EXPECT_EQ(st.stats.quarantine_events, pt.stats.quarantine_events);
  EXPECT_EQ(st.stats.undispatched, pt.stats.undispatched);
}

TEST(ParallelDiff, MidRunInstallAllLandsOnPacketBoundary) {
  // Reprogramming the fleet mid-run drains in-flight batches first; with
  // the same split point the serial and parallel traces stay identical.
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
  np::Mpsoc serial(kCores, np::DispatchPolicy::RoundRobin, config);
  np::ParallelMpsoc par(kCores, np::DispatchPolicy::RoundRobin, config);
  install_mixed_fleet(serial, 2);
  install_mixed_fleet(par, 2);

  std::vector<WorkItem> items = mixed_items(800, 0.12);
  std::vector<WorkItem> first(items.begin(), items.begin() + 300);
  std::vector<WorkItem> rest(items.begin() + 300, items.end());

  EngineTrace s1 = run_serial(serial, first);
  EngineTrace p1 = run_parallel(par, first, /*chunk=*/97);

  // Re-image the whole fleet with the echo app (releases nothing: any
  // quarantined core stays quarantined through the install).
  install_all(serial, kEchoApp, 0x2222);
  install_all(par, kEchoApp, 0x2222);

  EngineTrace s2 = run_serial(serial, rest);
  EngineTrace p2 = run_parallel(par, rest, /*chunk=*/61);
  expect_traces_identical(s1, p1);
  expect_traces_identical(s2, p2);
}

TEST(ParallelDiff, OfflineAndReleaseTransitionsMatch) {
  // Administrative transitions (drain a core, release a quarantined one)
  // are applied at batch boundaries; the subsequent dispatch sequence
  // must match the serial engine exactly.
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
  np::Mpsoc serial(kCores, np::DispatchPolicy::RoundRobin, config);
  np::ParallelMpsoc par(kCores, np::DispatchPolicy::RoundRobin, config);
  install_mixed_fleet(serial, 1);
  install_mixed_fleet(par, 1);

  std::vector<WorkItem> items = mixed_items(600, 0.20);
  std::vector<WorkItem> first(items.begin(), items.begin() + 200);
  std::vector<WorkItem> rest(items.begin() + 200, items.end());

  EngineTrace s1 = run_serial(serial, first);
  EngineTrace p1 = run_parallel(par, first);
  expect_traces_identical(s1, p1);

  serial.set_core_offline(3, true);
  par.set_core_offline(3, true);
  if (serial.core_health(0) == np::CoreHealth::Quarantined) {
    serial.release_core(0);
    par.release_core(0);
  }

  EngineTrace s2 = run_serial(serial, rest);
  EngineTrace p2 = run_parallel(par, rest);
  expect_traces_identical(s2, p2);
}

TEST(ParallelDiff, AllCoresQuarantinedCountsUndispatched) {
  // Drive every core into quarantine: the tail of the stream must be
  // counted as undispatched identically by both engines.
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
  np::Mpsoc serial(2, np::DispatchPolicy::RoundRobin, config);
  np::ParallelMpsoc par(2, np::DispatchPolicy::RoundRobin, config);
  install_all(serial, kVulnApp, 0xDEAD);
  install_all(par, kVulnApp, 0xDEAD);

  std::vector<WorkItem> items = mixed_items(100, 1.0);
  EngineTrace st = run_serial(serial, items);
  EngineTrace pt = run_parallel(par, items);
  expect_traces_identical(st, pt);
  EXPECT_GT(st.stats.undispatched, 0u);
  EXPECT_EQ(st.stats.quarantined_cores, 2u);
}

// ---------------------------------------------------------------------
// Relaxed contract: LeastLoaded
// ---------------------------------------------------------------------

TEST(ParallelDiff, LeastLoadedHomogeneousOutcomesIdentical) {
  // With the same app on every core a packet's outcome is independent of
  // placement, so even the relaxed policy must produce identical
  // per-packet outcomes and aggregate forwarding counts.
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::ResetAndContinue);
  np::Mpsoc serial(kCores, np::DispatchPolicy::LeastLoaded, config);
  np::ParallelMpsoc par(kCores, np::DispatchPolicy::LeastLoaded, config);
  install_all(serial, kEchoApp, 0xB1B1);
  install_all(par, kEchoApp, 0xB1B1);

  std::vector<WorkItem> items = mixed_items(800, 0.10);
  EngineTrace st = run_serial(serial, items);
  EngineTrace pt = run_parallel(par, items);

  ASSERT_EQ(st.outcomes.size(), pt.outcomes.size());
  for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
    EXPECT_EQ(st.outcomes[i], pt.outcomes[i]) << "packet " << i;
    EXPECT_EQ(st.outputs[i], pt.outputs[i]) << "packet " << i;
  }
  EXPECT_EQ(st.stats.forwarded, pt.stats.forwarded);
  EXPECT_EQ(st.stats.attacks_detected, pt.stats.attacks_detected);
  expect_trace_conserved(pt, items.size());
}

TEST(ParallelDiff, LeastLoadedHeterogeneousConservesEveryPacket) {
  // Placement may legitimately diverge on a heterogeneous fleet; the
  // relaxed contract still requires exact packet conservation and
  // internally-consistent recovery bookkeeping at every batch size.
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch));
    np::ParallelConfig parallel;
    parallel.batch_size = batch;
    np::RecoveryConfig config =
        make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
    np::ParallelMpsoc par(kCores, np::DispatchPolicy::LeastLoaded, config,
                          parallel);
    install_mixed_fleet(par, 2);

    std::vector<WorkItem> items = mixed_items(700, 0.15);
    EngineTrace pt = run_parallel(par, items);
    expect_trace_conserved(pt, items.size());
  }
}

TEST(ParallelDiff, LeastLoadedBatchOfOneMatchesSerialExactly) {
  // batch_size=1 gives the parallel engine per-packet load feedback --
  // the relaxed policy collapses to the strict contract.
  np::ParallelConfig parallel;
  parallel.batch_size = 1;
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
  np::Mpsoc serial(kCores, np::DispatchPolicy::LeastLoaded, config);
  np::ParallelMpsoc par(kCores, np::DispatchPolicy::LeastLoaded, config,
                        parallel);
  install_mixed_fleet(serial, 2);
  install_mixed_fleet(par, 2);

  std::vector<WorkItem> items = mixed_items(500, 0.12);
  EngineTrace st = run_serial(serial, items);
  EngineTrace pt = run_parallel(par, items);
  expect_traces_identical(st, pt);
}

// ---------------------------------------------------------------------
// Workload determinism (the oracle's own foundation)
// ---------------------------------------------------------------------

TEST(ParallelDiff, MixedWorkloadShardingIsBitIdentical) {
  MixedWorkloadConfig config;
  config.seed = 0xABCD;
  config.attack_rate = 0.2;
  config.attack_packet = testsupport::attack_packet();
  MixedWorkload workload(config);

  std::vector<WorkItem> serial = workload.generate(10, 500);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    std::vector<WorkItem> sharded =
        workload.generate_parallel(10, 500, threads);
    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].packet, sharded[i].packet) << "item " << i;
      EXPECT_EQ(serial[i].flow_key, sharded[i].flow_key) << "item " << i;
      EXPECT_EQ(serial[i].attack, sharded[i].attack) << "item " << i;
    }
  }
}

#if SDMMON_OBS_ENABLED
// ---------------------------------------------------------------------
// Observability equivalence: the deterministic subset of the metrics
// snapshot (commit-path counters, value histograms, and the recovery
// journal) must be identical serial-vs-parallel under the strict
// dispatch contract. Excluded as documented in docs/OBSERVABILITY.md:
// wall-clock *_ns histograms, the parallel-only np.parallel.* metrics
// and np.core.snapshot_dirty_pages, and Rollback journal events
// (speculation is invisible to the serial engine).
// ---------------------------------------------------------------------

bool deterministic_metric(const std::string& name) {
  if (name.rfind("np.parallel.", 0) == 0) return false;
  // Parallel-only: pages dirtied per speculative execution. The serial
  // engine never speculates, so it never registers this histogram.
  if (name == "np.core.snapshot_dirty_pages") return false;
  if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0) {
    return false;
  }
  // Per-core histogram names embed the core index after the unit suffix
  // ("np.recovery.reinstall_ns" has no index; core histograms look like
  // "np.core.instr_per_packet.3"), so also drop "_ns." infixes.
  if (name.find("_ns.") != std::string::npos) return false;
  return true;
}

template <typename Map>
Map filter_deterministic(const Map& in) {
  Map out;
  for (const auto& [name, value] : in) {
    if (deterministic_metric(name)) out.emplace(name, value);
  }
  return out;
}

std::vector<obs::Event> deterministic_events(
    const std::vector<obs::Event>& in) {
  std::vector<obs::Event> out;
  for (const obs::Event& e : in) {
    if (e.kind != obs::EventKind::Rollback) out.push_back(e);
  }
  return out;
}

void expect_histograms_equal(const obs::HistogramSnapshot& a,
                             const obs::HistogramSnapshot& b,
                             const std::string& name) {
  EXPECT_EQ(a.bounds, b.bounds) << name;
  EXPECT_EQ(a.counts, b.counts) << name;
  EXPECT_EQ(a.count, b.count) << name;
  EXPECT_EQ(a.sum, b.sum) << name;
  if (a.count > 0 && b.count > 0) {
    EXPECT_EQ(a.min, b.min) << name;
    EXPECT_EQ(a.max, b.max) << name;
  }
}

TEST(ParallelDiff, MetricsIdenticalForDeterministicSubset) {
  for (np::RecoveryPolicy recovery :
       {np::RecoveryPolicy::ResetAndContinue,
        np::RecoveryPolicy::QuarantineAfterK,
        np::RecoveryPolicy::ReinstallLastGood}) {
    SCOPED_TRACE(np::recovery_policy_name(recovery));
    np::RecoveryConfig config = make_recovery_config(recovery);
    np::Mpsoc serial(kCores, np::DispatchPolicy::RoundRobin, config);
    np::ParallelMpsoc par(kCores, np::DispatchPolicy::RoundRobin, config,
                          {});
    obs::Registry serial_reg;
    obs::Registry par_reg;
    serial.enable_obs(serial_reg, /*device_id=*/7);
    par.enable_obs(par_reg, /*device_id=*/7);
    install_mixed_fleet(serial, /*vuln_cores=*/2);
    install_mixed_fleet(par, /*vuln_cores=*/2);

    std::vector<WorkItem> items = mixed_items(1200, 0.15);
    EngineTrace st = run_serial(serial, items);
    EngineTrace pt = run_parallel(par, items, /*chunk=*/111);
    expect_traces_identical(st, pt);

    obs::Snapshot ss = serial_reg.snapshot();
    obs::Snapshot ps = par_reg.snapshot();

    EXPECT_EQ(filter_deterministic(ss.counters),
              filter_deterministic(ps.counters));
    EXPECT_EQ(ss.gauges, ps.gauges);

    // The install-time artifact gauges (compiled monitoring graph AND
    // predecoded program) must actually be present -- the blanket gauge
    // equality above would also pass vacuously if a rename dropped them.
    for (const char* name :
         {obs::names::kEngineCompiledGraphNodes,
          obs::names::kEngineCompiledProgramOps,
          obs::names::kEngineCompiledProgramBlocks,
          obs::names::kEngineCompiledProgramBytes}) {
      ASSERT_TRUE(ss.gauges.count(name)) << name;
      ASSERT_TRUE(ps.gauges.count(name)) << name;
      EXPECT_GT(ss.gauges.at(name), 0) << name;
    }
    // Wall-clock install timings are excluded from value equality, but
    // both engines must have recorded the predecode stage.
    EXPECT_TRUE(ss.histograms.count(obs::names::kCorePredecodeNs));
    EXPECT_TRUE(ps.histograms.count(obs::names::kCorePredecodeNs));

    auto sh = filter_deterministic(ss.histograms);
    auto ph = filter_deterministic(ps.histograms);
    ASSERT_EQ(sh.size(), ph.size());
    for (const auto& [name, hist] : sh) {
      ASSERT_TRUE(ph.count(name)) << name;
      expect_histograms_equal(hist, ph.at(name), name);
    }

    // Identical journal streams (minus speculation internals), down to
    // the commit-cycle timestamps.
    EXPECT_EQ(deterministic_events(ss.events),
              deterministic_events(ps.events));

    // Sanity: the workload actually exercised detection + recovery.
    EXPECT_GT(ss.counters.at(std::string(obs::names::kEngineDispatched)),
              0u);
    if (recovery != np::RecoveryPolicy::ResetAndContinue) {
      EXPECT_FALSE(deterministic_events(ss.events).empty());
    }
  }
}

TEST(ParallelDiff, SampledHistogramsStayDeterministic) {
  // sample_period > 1 must thin histograms identically on both engines
  // (the tick is per-core and commit-ordered), while counters stay
  // exact.
  np::RecoveryConfig config =
      make_recovery_config(np::RecoveryPolicy::QuarantineAfterK);
  np::Mpsoc serial(kCores, np::DispatchPolicy::RoundRobin, config);
  np::ParallelMpsoc par(kCores, np::DispatchPolicy::RoundRobin, config, {});
  obs::Registry serial_reg;
  obs::Registry par_reg;
  serial.enable_obs(serial_reg, 0, /*sample_period=*/16);
  par.enable_obs(par_reg, 0, /*sample_period=*/16);
  install_mixed_fleet(serial, 2);
  install_mixed_fleet(par, 2);

  std::vector<WorkItem> items = mixed_items(800, 0.1);
  (void)run_serial(serial, items);
  (void)run_parallel(par, items);

  obs::Snapshot ss = serial_reg.snapshot();
  obs::Snapshot ps = par_reg.snapshot();
  EXPECT_EQ(filter_deterministic(ss.counters),
            filter_deterministic(ps.counters));
  for (const auto& [name, hist] : filter_deterministic(ss.histograms)) {
    expect_histograms_equal(hist, ps.histograms.at(name), name);
    // Sampling really thinned the distributions: fewer samples than
    // commits.
    if (name.find("instr_per_packet") != std::string::npos) {
      EXPECT_LT(hist.count, 800u);
    }
  }
}
#endif  // SDMMON_OBS_ENABLED

TEST(ParallelDiff, RollbackTelemetryOnlyWhenPolicyCanAct) {
  // ResetAndContinue never triggers a recovery action, so the snapshot-
  // free fast path must report zero rollbacks even under pure attack;
  // an acting policy under attack must actually exercise the machinery.
  {
    np::ParallelMpsoc par(2, np::DispatchPolicy::RoundRobin,
                          make_recovery_config(
                              np::RecoveryPolicy::ResetAndContinue));
    install_all(par, kVulnApp, 0x70AD);
    std::vector<WorkItem> items = mixed_items(200, 1.0);
    (void)run_parallel(par, items);
    EXPECT_EQ(par.speculation_rollbacks(), 0u);
  }
  {
    np::ParallelMpsoc par(2, np::DispatchPolicy::RoundRobin,
                          make_recovery_config(
                              np::RecoveryPolicy::ReinstallLastGood));
    install_all(par, kVulnApp, 0x70AD);
    std::vector<WorkItem> items = mixed_items(200, 1.0);
    (void)run_parallel(par, items);
    EXPECT_GT(par.speculation_rollbacks(), 0u);
  }
}

}  // namespace
}  // namespace sdmmon
