// Property: disassembling any program and re-assembling the listing
// yields the identical instruction stream (for the label-free subset the
// disassembler emits: absolute branch/jump targets as hex addresses are
// re-parsed as numbers... branches print absolute targets, so we verify
// word-level equality via a target-rewriting pass instead).
//
// Practical round-trip: for every app binary and for random generated
// programs, each instruction word must survive
// encode(decode(word)) == word, and the disassembly must be re-assemblable
// instruction by instruction for the formats that are position-free.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "monitor/hash.hpp"
#include "np/compiled_program.hpp"
#include "np/core.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace sdmmon::isa {
namespace {

std::vector<isa::Program> all_apps() {
  net::RoutingTable table;
  table.add_route(net::ip(10, 0, 0, 0), 8, 1);
  std::vector<isa::Program> apps;
  apps.push_back(net::build_ipv4_forward());
  apps.push_back(net::build_ipv4_cm());
  apps.push_back(net::build_udp_echo());
  apps.push_back(net::build_firewall({53, 80}));
  apps.push_back(net::build_flow_stats());
  apps.push_back(net::build_ipv4_router(table));
  return apps;
}

TEST(AsmRoundTrip, EveryAppWordSurvivesEncodeDecode) {
  for (const auto& app : all_apps()) {
    for (std::size_t i = 0; i < app.text.size(); ++i) {
      auto decoded = try_decode(app.text[i]);
      ASSERT_TRUE(decoded.has_value()) << app.name << " word " << i;
      EXPECT_EQ(encode(*decoded), app.text[i]) << app.name << " word " << i;
    }
  }
}

TEST(AsmRoundTrip, PositionFreeInstructionsReassemble) {
  // Every non-control-flow instruction's disassembly is valid assembler
  // input producing the same word.
  for (const auto& app : all_apps()) {
    for (std::size_t i = 0; i < app.text.size(); ++i) {
      Instr instr = decode(app.text[i]);
      OpClass cls = op_class(instr.op);
      if (cls == OpClass::Branch || cls == OpClass::Jump ||
          cls == OpClass::JumpLink) {
        continue;  // these print absolute targets, covered below
      }
      std::string line = disassemble(app.text[i], 0);
      Program re = assemble(line + "\n");
      ASSERT_EQ(re.text.size(), 1u) << line;
      EXPECT_EQ(re.text[0], app.text[i]) << app.name << ": " << line;
    }
  }
}

TEST(AsmRoundTrip, BranchesReassembleAtTheirOwnAddress) {
  // A branch disassembled at pc P prints its absolute target; assembling
  // it back at the same address must reproduce the offset. Emulate by
  // padding with nops up to the branch's position.
  for (const auto& app : all_apps()) {
    int checked = 0;
    for (std::size_t i = 0; i < app.text.size() && checked < 10; ++i) {
      Instr instr = decode(app.text[i]);
      if (op_class(instr.op) != OpClass::Branch) continue;
      const std::uint32_t pc = app.text_base + static_cast<std::uint32_t>(i) * 4;
      const std::int64_t target =
          static_cast<std::int64_t>(pc) + 4 + instr.imm * 4;
      if (target < static_cast<std::int64_t>(pc)) continue;  // fwd only here
      std::string src;
      for (std::size_t k = 0; k < i; ++k) src += "nop\n";
      src += disassemble(app.text[i], pc) + "\n";
      for (std::int64_t k = pc + 4; k <= target; k += 4) src += "nop\n";
      Program re = assemble(src);
      EXPECT_EQ(re.text[i], app.text[i])
          << app.name << " @" << pc << ": " << disassemble(app.text[i], pc);
      ++checked;
    }
  }
}

TEST(AsmRoundTrip, RandomEncodingsFuzzedThroughDecoder) {
  // Any 32-bit word either fails to decode or round-trips EXACTLY:
  // decode captures every field bit of its format, so encode(decode(w))
  // reproduces w bit-for-bit. (This is what lets the predecoded
  // CompiledProgram store the decoded Instr and the raw word side by
  // side as interchangeable views of the same instruction.)
  util::Rng rng(0xF422);
  int decodable = 0;
  for (int i = 0; i < 200'000; ++i) {
    std::uint32_t word = rng.next_u32();
    auto decoded = try_decode(word);
    if (!decoded) continue;
    ++decodable;
    ASSERT_EQ(encode(*decoded), word)
        << std::hex << word << " decoded lossily";
  }
  // Roughly a third of random words decode (the subset covers ~22 of 64
  // primary opcodes plus R-type functs).
  EXPECT_GT(decodable, 50'000);
}

TEST(AsmRoundTrip, SweptOpcodeSpaceRoundTripsExactly) {
  // Directed sweep of the whole encoding space rather than uniform
  // fuzz: every primary opcode 0..63 with random field bits, plus the
  // full funct space 0..63 for primary 0 (R-type). Every word that
  // decodes must survive encode() unchanged; every word that does not
  // must throw from decode() (and nothing else).
  util::Rng rng(0x09C0DE5);
  int decodable = 0;
  for (unsigned primary = 0; primary < 64; ++primary) {
    for (int trial = 0; trial < 2'000; ++trial) {
      const std::uint32_t word =
          (primary << 26) | (rng.next_u32() & 0x03FF'FFFF);
      auto decoded = try_decode(word);
      if (decoded) {
        ++decodable;
        ASSERT_EQ(encode(*decoded), word)
            << "primary " << primary << " word " << std::hex << word;
      } else {
        EXPECT_THROW((void)decode(word), IsaError);
      }
    }
  }
  for (unsigned funct = 0; funct < 64; ++funct) {
    for (int trial = 0; trial < 500; ++trial) {
      const std::uint32_t word = (rng.next_u32() & 0x03FF'FFC0) | funct;
      auto decoded = try_decode(word);
      if (decoded) {
        ASSERT_EQ(encode(*decoded), word)
            << "funct " << funct << " word " << std::hex << word;
      } else {
        EXPECT_THROW((void)decode(word), IsaError);
      }
    }
  }
  EXPECT_GT(decodable, 20'000);
}

TEST(AsmRoundTrip, RandomDecodableWordsDisassembleAndReassemble) {
  // disassemble() output for position-free formats is valid assembler
  // input reproducing the identical word -- over the whole decodable
  // space, not just the instruction forms the app binaries happen to
  // use.
  util::Rng rng(0xD15A53);
  int checked = 0;
  for (int i = 0; i < 60'000 && checked < 8'000; ++i) {
    const std::uint32_t word = rng.next_u32();
    auto decoded = try_decode(word);
    if (!decoded) continue;
    const OpClass cls = op_class(decoded->op);
    if (cls == OpClass::Branch || cls == OpClass::Jump ||
        cls == OpClass::JumpLink) {
      continue;  // position-dependent: covered at fixed pcs above
    }
    const std::string line = disassemble(word, 0);
    Program re = assemble(line + "\n");
    ASSERT_EQ(re.text.size(), 1u) << line;
    ASSERT_EQ(re.text[0], word) << std::hex << word << ": " << line;
    ++checked;
  }
  EXPECT_GE(checked, 8'000);
}

TEST(AsmRoundTrip, UndecodableWordsPredecodeToTrappingOps) {
  // The install-time predecoder must map every undecodable word to a
  // non-executable (trapping) PreOp -- executing one raises DecodeFault
  // exactly like the interpreter, never undefined behavior from a
  // default-constructed instruction.
  util::Rng rng(0xBAD09);
  int undecodable = 0;
  for (int trial = 0; trial < 400; ++trial) {
    isa::Program p;
    p.name = "undecodable";
    p.text_base = 0;
    p.entry = 0;
    for (int i = 0; i < 16; ++i) p.text.push_back(rng.next_u32());
    auto compiled =
        np::CompiledProgram::compile(p, monitor::MerkleTreeHash(0xBAD));
    ASSERT_EQ(compiled->num_ops(), p.text.size());
    for (std::size_t i = 0; i < p.text.size(); ++i) {
      const auto& op = compiled->ops_data()[i];
      EXPECT_EQ(op.word, p.text[i]);
      const bool decodes = try_decode(p.text[i]).has_value();
      EXPECT_EQ((op.flags & np::CompiledProgram::kDecoded) != 0, decodes)
          << "word " << i;
      if (!decodes) ++undecodable;
    }
    // Executing the program must trap identically on both paths the
    // moment an undecodable word is reached (if one is reachable).
    np::Core fast, oracle;
    oracle.set_predecode_enabled(false);
    fast.load_program(p, compiled);
    oracle.load_program(p, compiled);
    for (int s = 0; s < 32 && oracle.runnable(); ++s) {
      const np::StepInfo a = fast.step();
      const np::StepInfo b = oracle.step();
      ASSERT_EQ(static_cast<int>(a.event), static_cast<int>(b.event));
      ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap));
      ASSERT_EQ(a.pc, b.pc);
      ASSERT_EQ(a.word, b.word);
    }
  }
  EXPECT_GT(undecodable, 1'000);  // random words are mostly undecodable
}

}  // namespace
}  // namespace sdmmon::isa
