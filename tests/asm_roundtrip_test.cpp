// Property: disassembling any program and re-assembling the listing
// yields the identical instruction stream (for the label-free subset the
// disassembler emits: absolute branch/jump targets as hex addresses are
// re-parsed as numbers... branches print absolute targets, so we verify
// word-level equality via a target-rewriting pass instead).
//
// Practical round-trip: for every app binary and for random generated
// programs, each instruction word must survive
// encode(decode(word)) == word, and the disassembly must be re-assemblable
// instruction by instruction for the formats that are position-free.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace sdmmon::isa {
namespace {

std::vector<isa::Program> all_apps() {
  net::RoutingTable table;
  table.add_route(net::ip(10, 0, 0, 0), 8, 1);
  std::vector<isa::Program> apps;
  apps.push_back(net::build_ipv4_forward());
  apps.push_back(net::build_ipv4_cm());
  apps.push_back(net::build_udp_echo());
  apps.push_back(net::build_firewall({53, 80}));
  apps.push_back(net::build_flow_stats());
  apps.push_back(net::build_ipv4_router(table));
  return apps;
}

TEST(AsmRoundTrip, EveryAppWordSurvivesEncodeDecode) {
  for (const auto& app : all_apps()) {
    for (std::size_t i = 0; i < app.text.size(); ++i) {
      auto decoded = try_decode(app.text[i]);
      ASSERT_TRUE(decoded.has_value()) << app.name << " word " << i;
      EXPECT_EQ(encode(*decoded), app.text[i]) << app.name << " word " << i;
    }
  }
}

TEST(AsmRoundTrip, PositionFreeInstructionsReassemble) {
  // Every non-control-flow instruction's disassembly is valid assembler
  // input producing the same word.
  for (const auto& app : all_apps()) {
    for (std::size_t i = 0; i < app.text.size(); ++i) {
      Instr instr = decode(app.text[i]);
      OpClass cls = op_class(instr.op);
      if (cls == OpClass::Branch || cls == OpClass::Jump ||
          cls == OpClass::JumpLink) {
        continue;  // these print absolute targets, covered below
      }
      std::string line = disassemble(app.text[i], 0);
      Program re = assemble(line + "\n");
      ASSERT_EQ(re.text.size(), 1u) << line;
      EXPECT_EQ(re.text[0], app.text[i]) << app.name << ": " << line;
    }
  }
}

TEST(AsmRoundTrip, BranchesReassembleAtTheirOwnAddress) {
  // A branch disassembled at pc P prints its absolute target; assembling
  // it back at the same address must reproduce the offset. Emulate by
  // padding with nops up to the branch's position.
  for (const auto& app : all_apps()) {
    int checked = 0;
    for (std::size_t i = 0; i < app.text.size() && checked < 10; ++i) {
      Instr instr = decode(app.text[i]);
      if (op_class(instr.op) != OpClass::Branch) continue;
      const std::uint32_t pc = app.text_base + static_cast<std::uint32_t>(i) * 4;
      const std::int64_t target =
          static_cast<std::int64_t>(pc) + 4 + instr.imm * 4;
      if (target < static_cast<std::int64_t>(pc)) continue;  // fwd only here
      std::string src;
      for (std::size_t k = 0; k < i; ++k) src += "nop\n";
      src += disassemble(app.text[i], pc) + "\n";
      for (std::int64_t k = pc + 4; k <= target; k += 4) src += "nop\n";
      Program re = assemble(src);
      EXPECT_EQ(re.text[i], app.text[i])
          << app.name << " @" << pc << ": " << disassemble(app.text[i], pc);
      ++checked;
    }
  }
}

TEST(AsmRoundTrip, RandomEncodingsFuzzedThroughDecoder) {
  // Any 32-bit word either fails to decode or round-trips exactly.
  util::Rng rng(0xF422);
  int decodable = 0;
  for (int i = 0; i < 200'000; ++i) {
    std::uint32_t word = rng.next_u32();
    auto decoded = try_decode(word);
    if (!decoded) continue;
    ++decodable;
    Instr instr = *decoded;
    // Encoding drops bits the format ignores, so re-decode instead.
    std::uint32_t re = encode(instr);
    auto again = try_decode(re);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(encode(*again), re);
    EXPECT_EQ(again->op, instr.op);
  }
  // Roughly a third of random words decode (the subset covers ~22 of 64
  // primary opcodes plus R-type functs).
  EXPECT_GT(decodable, 50'000);
}

}  // namespace
}  // namespace sdmmon::isa
