#include "np/core.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace sdmmon::np {
namespace {

Core make_core(const char* src) {
  Core core;
  core.load_program(isa::assemble(src));
  return core;
}

// Runs until terminal event; fails the test on unexpected trap.
StepInfo run_ok(Core& core) {
  StepInfo last = core.run();
  EXPECT_NE(last.event, StepEvent::Executed) << "did not terminate";
  return last;
}

TEST(Core, ArithmeticAndReturn) {
  Core core = make_core(R"(
main:
    li $t0, 20
    li $t1, 22
    addu $v0, $t0, $t1
    jr $ra
  )");
  StepInfo last = run_ok(core);
  EXPECT_EQ(last.event, StepEvent::PacketDone);
  EXPECT_EQ(core.reg(2), 42u);
}

TEST(Core, RegisterZeroIsImmutable) {
  Core core = make_core(R"(
main:
    li $t0, 99
    addu $zero, $t0, $t0
    jr $ra
  )");
  run_ok(core);
  EXPECT_EQ(core.reg(0), 0u);
}

TEST(Core, BranchLoopComputesSum) {
  // sum 1..10 = 55
  Core core = make_core(R"(
main:
    li $t0, 0      # sum
    li $t1, 1      # i
    li $t2, 10
loop:
    addu $t0, $t0, $t1
    addiu $t1, $t1, 1
    ble $t1, $t2, loop
    move $v0, $t0
    jr $ra
  )");
  run_ok(core);
  EXPECT_EQ(core.reg(2), 55u);
}

TEST(Core, MemoryLoadStore) {
  Core core = make_core(R"(
main:
    li $t0, 0x10100
    li $t1, 0xCAFE
    sw $t1, 0($t0)
    lw $v0, 0($t0)
    lhu $v1, 0($t0)
    jr $ra
  )");
  run_ok(core);
  EXPECT_EQ(core.reg(2), 0xCAFEu);
  EXPECT_EQ(core.reg(3), 0xCAFEu);
}

TEST(Core, SignExtensionOnByteLoads) {
  Core core = make_core(R"(
main:
    li $t0, 0x10000
    li $t1, 0xFF
    sb $t1, 0($t0)
    lb $v0, 0($t0)     # sign-extended -1
    lbu $v1, 0($t0)    # zero-extended 255
    jr $ra
  )");
  run_ok(core);
  EXPECT_EQ(core.reg(2), 0xFFFFFFFFu);
  EXPECT_EQ(core.reg(3), 0xFFu);
}

TEST(Core, MultDivHiLo) {
  Core core = make_core(R"(
main:
    li $t0, 100000
    li $t1, 100000
    multu $t0, $t1      # 10^10 = 0x2540BE400
    mfhi $v0
    mflo $v1
    li $t2, 17
    li $t3, 5
    divu $t2, $t3
    mflo $a0            # 3
    mfhi $a1            # 2
    jr $ra
  )");
  run_ok(core);
  EXPECT_EQ(core.reg(2), 2u);           // hi
  EXPECT_EQ(core.reg(3), 0x540BE400u);  // lo
  EXPECT_EQ(core.reg(4), 3u);
  EXPECT_EQ(core.reg(5), 2u);
}

TEST(Core, FunctionCallAndReturn) {
  Core core = make_core(R"(
main:
    addiu $sp, $sp, -4
    sw $ra, 0($sp)
    li $a0, 7
    jal double
    move $v1, $v0
    lw $ra, 0($sp)
    addiu $sp, $sp, 4
    jr $ra
double:
    addu $v0, $a0, $a0
    jr $ra
  )");
  StepInfo last = run_ok(core);
  EXPECT_EQ(last.event, StepEvent::PacketDone);
  EXPECT_EQ(core.reg(3), 14u);
}

TEST(Core, SignedOverflowTraps) {
  Core core = make_core(R"(
main:
    li $t0, 0x7FFFFFFF
    li $t1, 1
    add $v0, $t0, $t1
    jr $ra
  )");
  StepInfo last = core.run();
  EXPECT_EQ(last.event, StepEvent::Trapped);
  EXPECT_EQ(last.trap, Trap::Overflow);
  EXPECT_FALSE(core.runnable());
}

TEST(Core, AdduDoesNotTrapOnOverflow) {
  Core core = make_core(R"(
main:
    li $t0, 0x7FFFFFFF
    li $t1, 1
    addu $v0, $t0, $t1
    jr $ra
  )");
  StepInfo last = run_ok(core);
  EXPECT_EQ(last.event, StepEvent::PacketDone);
  EXPECT_EQ(core.reg(2), 0x80000000u);
}

TEST(Core, SyscallAndBreakTrap) {
  Core a = make_core("main:\n syscall\n");
  EXPECT_EQ(a.run().trap, Trap::Syscall);
  Core b = make_core("main:\n break\n");
  EXPECT_EQ(b.run().trap, Trap::Break);
}

TEST(Core, BadMemoryAccessTraps) {
  Core core = make_core(R"(
main:
    li $t0, 0x00500000
    lw $v0, 0($t0)
    jr $ra
  )");
  StepInfo last = core.run();
  EXPECT_EQ(last.event, StepEvent::Trapped);
  EXPECT_EQ(last.trap, Trap::MemFault);
}

TEST(Core, JumpOutsideMemoryFetchFaults) {
  Core core = make_core(R"(
main:
    li $t0, 0x00600000
    jr $t0
  )");
  StepInfo last = core.run();
  EXPECT_EQ(last.event, StepEvent::Trapped);
  EXPECT_EQ(last.trap, Trap::FetchFault);
}

TEST(Core, WatchdogFiresOnInfiniteLoop) {
  Core core = make_core("main:\n b main\n");
  core.set_watchdog_budget(1000);
  StepInfo last = core.run(10'000);
  EXPECT_EQ(last.event, StepEvent::Trapped);
  EXPECT_EQ(last.trap, Trap::Watchdog);
}

TEST(Core, PacketInputVisibleThroughMmio) {
  Core core = make_core(R"(
main:
    li $t0, 0xFFFF0000
    lw $v0, 0($t0)       # PKT_IN_LEN
    li $t1, 0x30000
    lbu $v1, 0($t1)      # first payload byte
    jr $ra
  )");
  util::Bytes pkt = {0xAB, 0xCD, 0xEF};
  core.deliver_packet(pkt);
  run_ok(core);
  EXPECT_EQ(core.reg(2), 3u);
  EXPECT_EQ(core.reg(3), 0xABu);
}

TEST(Core, PacketOutputCommit) {
  Core core = make_core(R"(
main:
    li $t0, 0x40000      # PKT_OUT
    li $t1, 0x11
    sb $t1, 0($t0)
    li $t1, 0x22
    sb $t1, 1($t0)
    li $t2, 0xFFFF0004   # PKT_OUT_COMMIT
    li $t3, 2
    sw $t3, 0($t2)
    jr $ra               # never reached
  )");
  StepInfo last = run_ok(core);
  EXPECT_EQ(last.event, StepEvent::PacketOut);
  ASSERT_TRUE(core.has_output());
  EXPECT_EQ(core.output(), (util::Bytes{0x11, 0x22}));
}

TEST(Core, ExplicitDropViaMmio) {
  Core core = make_core(R"(
main:
    li $t2, 0xFFFF0008   # PKT_DONE
    sw $zero, 0($t2)
  )");
  StepInfo last = run_ok(core);
  EXPECT_EQ(last.event, StepEvent::PacketDone);
  EXPECT_FALSE(core.has_output());
}

TEST(Core, HaltViaMmio) {
  Core core = make_core(R"(
main:
    li $t2, 0xFFFF000C
    sw $zero, 0($t2)
  )");
  EXPECT_EQ(run_ok(core).event, StepEvent::Halted);
}

TEST(Core, CycleCounterReadable) {
  Core core = make_core(R"(
main:
    li $t0, 0xFFFF0010
    lw $v0, 0($t0)
    lw $v1, 0($t0)
    jr $ra
  )");
  run_ok(core);
  EXPECT_GT(core.reg(3), core.reg(2));
}

TEST(Core, ResetRestoresEntryStateAndMemory) {
  Core core = make_core(R"(
main:
    li $t0, 0x10000
    li $t1, 77
    sw $t1, 0($t0)
    jr $ra
.data
    .word 5
  )");
  run_ok(core);
  EXPECT_EQ(core.memory().load32(0x10000).value(), 77u);
  core.reset();
  EXPECT_TRUE(core.runnable());
  // Data image restored, not the attacked value.
  EXPECT_EQ(core.memory().load32(0x10000).value(), 5u);
  EXPECT_EQ(core.reg(29), kStackTop);   // $sp
  EXPECT_EQ(core.reg(31), kReturnSentinel);
}

TEST(Core, StepAfterTerminalEventReportsTrap) {
  Core core = make_core("main:\n jr $ra\n");
  run_ok(core);
  StepInfo again = core.step();
  EXPECT_EQ(again.event, StepEvent::Trapped);
}

TEST(Core, ExecutesCodeFromPacketBuffer) {
  // The vulnerability pathway: jump into the rx buffer and execute
  // packet-carried instructions (no execute protection).
  Core core = make_core(R"(
main:
    li $t0, 0x30000
    jr $t0
  )");
  // Packet contains: li $v0, 0x99 ; sw to PKT_DONE (encoded words, LE).
  isa::Program payload = isa::assemble(R"(
    li $v0, 0x99
    li $t2, 0xFFFF0008
    sw $zero, 0($t2)
  )");
  util::Bytes pkt(payload.text.size() * 4);
  for (std::size_t i = 0; i < payload.text.size(); ++i) {
    util::store_le32(payload.text[i], pkt.data() + 4 * i);
  }
  core.deliver_packet(pkt);
  StepInfo last = run_ok(core);
  EXPECT_EQ(last.event, StepEvent::PacketDone);
  EXPECT_EQ(core.reg(2), 0x99u);
}

}  // namespace
}  // namespace sdmmon::np
