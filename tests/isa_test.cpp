#include "isa/isa.hpp"

#include <gtest/gtest.h>

namespace sdmmon::isa {
namespace {

TEST(Encode, RTypeMatchesMipsReference) {
  // add $t0, $t1, $t2 => 0x012A4020
  Instr i = make_rtype(Op::Add, 8, 9, 10);
  EXPECT_EQ(encode(i), 0x012A4020u);
}

TEST(Encode, ShiftMatchesMipsReference) {
  // sll $t0, $t1, 4 => 0x00094100
  Instr i = make_shift(Op::Sll, 8, 9, 4);
  EXPECT_EQ(encode(i), 0x00094100u);
}

TEST(Encode, ITypeMatchesMipsReference) {
  // addiu $t0, $t1, -1 => 0x2528FFFF
  Instr i = make_itype(Op::Addiu, 8, 9, -1);
  EXPECT_EQ(encode(i), 0x2528FFFFu);
  // lw $t0, 8($sp) => 0x8FA80008
  Instr lw = make_itype(Op::Lw, 8, 29, 8);
  EXPECT_EQ(encode(lw), 0x8FA80008u);
}

TEST(Encode, BranchMatchesMipsReference) {
  // beq $t0, $t1, +3 words => 0x11090003
  Instr i = make_branch(Op::Beq, 8, 9, 3);
  EXPECT_EQ(encode(i), 0x11090003u);
}

TEST(Encode, JumpMatchesMipsReference) {
  // j word-index 0x100 => 0x08000100
  Instr i = make_jump(Op::J, 0x100);
  EXPECT_EQ(encode(i), 0x08000100u);
}

TEST(Encode, NopIsAllZero) {
  EXPECT_EQ(encode(make_nop()), 0u);
}

TEST(Decode, RoundTripEveryOpcode) {
  // Canonical encodings only: decode rejects words with junk in fields
  // an instruction does not use, so each form populates exactly the
  // fields its format defines (what the builders and assembler emit).
  for (int opi = 0; opi < kNumOps; ++opi) {
    Op op = static_cast<Op>(opi);
    Instr i;
    i.op = op;
    switch (op) {
      case Op::J: case Op::Jal:
        i.target = 0x123456;
        break;
      case Op::Sll: case Op::Srl: case Op::Sra:
        i.rt = 7; i.rd = 12; i.shamt = 5;
        break;
      case Op::Jr:
        i.rs = 3;
        break;
      case Op::Jalr:
        i.rs = 3; i.rd = 12;
        break;
      case Op::Syscall: case Op::Break:
        break;
      case Op::Mfhi: case Op::Mflo:
        i.rd = 12;
        break;
      case Op::Mult: case Op::Multu: case Op::Div: case Op::Divu:
        i.rs = 3; i.rt = 7;
        break;
      case Op::Lui:
        i.rt = 7; i.imm = -42 & 0xFFFF;
        break;
      case Op::Blez: case Op::Bgtz:
        i.rs = 3; i.imm = -42;
        break;
      default:
        if (op <= Op::Sltu) {  // remaining R-type: sllv..srav, add..sltu
          i.rs = 3; i.rt = 7; i.rd = 12;
        } else {               // remaining I-type: alu-imm, branches, mem
          i.rs = 3; i.rt = 7; i.imm = -42;
        }
        break;
    }
    std::uint32_t word = encode(i);
    Instr back = decode(word);
    EXPECT_EQ(back.op, op) << op_name(op);
    EXPECT_EQ(encode(back), word) << op_name(op);
    EXPECT_EQ(back.rs, i.rs) << op_name(op);
    EXPECT_EQ(back.rt, i.rt) << op_name(op);
  }
}

TEST(Decode, NonCanonicalEncodingsRejected) {
  // Junk in a dead field must fail to decode, not silently alias the
  // canonical instruction (the monitor hashes raw words; two encodings
  // of "the same" instruction would otherwise be distinct to the hash
  // but identical to the core).
  const std::uint32_t sll = encode(make_shift(Op::Sll, 4, 5, 6));
  EXPECT_TRUE(try_decode(sll).has_value());
  EXPECT_FALSE(try_decode(sll | (3u << 21)).has_value());  // rs junk
  const std::uint32_t jr = encode(make_rtype(Op::Jr, 0, 31, 0));
  EXPECT_TRUE(try_decode(jr).has_value());
  EXPECT_FALSE(try_decode(jr | (9u << 11)).has_value());   // rd junk
  const std::uint32_t addu = encode(make_rtype(Op::Addu, 1, 2, 3));
  EXPECT_TRUE(try_decode(addu).has_value());
  EXPECT_FALSE(try_decode(addu | (5u << 6)).has_value());  // shamt junk
  const std::uint32_t lui = encode(make_itype(Op::Lui, 7, 0, 0x1234));
  EXPECT_TRUE(try_decode(lui).has_value());
  EXPECT_FALSE(try_decode(lui | (2u << 21)).has_value());  // rs junk
}

TEST(Decode, SignExtendsImmediates) {
  Instr i = decode(encode(make_itype(Op::Addi, 1, 2, -30000)));
  EXPECT_EQ(i.imm, -30000);
  Instr j = decode(encode(make_itype(Op::Addi, 1, 2, 30000)));
  EXPECT_EQ(j.imm, 30000);
}

TEST(Decode, UnknownEncodingReturnsNullopt) {
  // Primary opcode 0x3F is unused in our subset.
  EXPECT_FALSE(try_decode(0xFC000000u).has_value());
  // R-type with unused funct 0x3F.
  EXPECT_FALSE(try_decode(0x0000003Fu).has_value());
  EXPECT_THROW(decode(0xFC000000u), IsaError);
}

TEST(OpClassify, ControlFlowClasses) {
  EXPECT_EQ(op_class(Op::Beq), OpClass::Branch);
  EXPECT_EQ(op_class(Op::Bne), OpClass::Branch);
  EXPECT_EQ(op_class(Op::J), OpClass::Jump);
  EXPECT_EQ(op_class(Op::Jal), OpClass::JumpLink);
  EXPECT_EQ(op_class(Op::Jr), OpClass::JumpReg);
  EXPECT_EQ(op_class(Op::Jalr), OpClass::JumpReg);
  EXPECT_EQ(op_class(Op::Lw), OpClass::Load);
  EXPECT_EQ(op_class(Op::Sw), OpClass::Store);
  EXPECT_EQ(op_class(Op::Addu), OpClass::Alu);
  EXPECT_EQ(op_class(Op::Syscall), OpClass::Trap);
}

TEST(Registers, NamesRoundTrip) {
  for (int r = 0; r < 32; ++r) {
    std::string token = "$" + std::string(reg_name(r));
    EXPECT_EQ(parse_reg(token), r);
  }
}

TEST(Registers, NumericForms) {
  EXPECT_EQ(parse_reg("$0"), 0);
  EXPECT_EQ(parse_reg("$31"), 31);
  EXPECT_EQ(parse_reg("$sp"), 29);
  EXPECT_EQ(parse_reg("$ra"), 31);
}

TEST(Registers, BadNamesThrow) {
  EXPECT_THROW(parse_reg("t0"), IsaError);    // missing $
  EXPECT_THROW(parse_reg("$32"), IsaError);   // out of range
  EXPECT_THROW(parse_reg("$xx"), IsaError);   // unknown name
  EXPECT_THROW(parse_reg(""), IsaError);
  EXPECT_THROW(reg_name(32), IsaError);
}

}  // namespace
}  // namespace sdmmon::isa
