// Fault-injection and recovery tests: the paper's recovery argument
// (Section 2.1: drop packet, reset core, continue) extended to sustained
// attacks (quarantine / reinstall-from-last-good), to graceful MPSoC
// degradation (dispatch routes around quarantined and uninstalled cores),
// and to the install pipeline's rollback invariant -- any failed or
// damaged install must leave the previously-installed configuration
// running on every core.
#include "np/recovery.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/mpsoc.hpp"
#include "sdmmon/channel.hpp"
#include "sdmmon/fleet_ops.hpp"
#include "support/test_apps.hpp"
#include "support/test_params.hpp"
#include "util/fault.hpp"

namespace sdmmon {
namespace {

using monitor::MerkleTreeHash;
using monitor::extract_graph;
using testsupport::attack_packet;
using testsupport::install_all;
using testsupport::install_one;
using testsupport::kEchoApp;
using testsupport::kVulnApp;

// Canonical key size / clock shared with the other protocol suites.
constexpr std::uint64_t kNow = testsupport::kTestNow;
constexpr std::size_t kKeyBits = testsupport::kTestKeyBits;

// ---------------------------------------------------------------------
// RecoveryController state machine
// ---------------------------------------------------------------------

TEST(RecoveryController, QuarantineAfterKInWindow) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::QuarantineAfterK;
  config.violation_threshold = testsupport::kViolationThreshold;
  config.window_packets = 8;
  np::RecoveryController rc(2, config);

  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::None);
  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::None);
  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::Quarantine);
  EXPECT_EQ(rc.health(0), np::CoreHealth::Quarantined);
  EXPECT_EQ(rc.health(1), np::CoreHealth::Healthy);
  EXPECT_EQ(rc.quarantine_events(), 1u);
  EXPECT_EQ(rc.healthy_cores(), 1u);
  EXPECT_EQ(rc.quarantined_cores(), 1u);
}

TEST(RecoveryController, WindowSlidesViolationsOut) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::QuarantineAfterK;
  config.violation_threshold = testsupport::kViolationThreshold;
  config.window_packets = 4;
  np::RecoveryController rc(1, config);

  // Two violations, then enough clean packets to push them out of the
  // window; a third violation later must NOT trip the threshold.
  rc.on_outcome(0, np::PacketOutcome::AttackDetected);
  rc.on_outcome(0, np::PacketOutcome::AttackDetected);
  for (int i = 0; i < 4; ++i) {
    rc.on_outcome(0, np::PacketOutcome::Forwarded);
  }
  EXPECT_EQ(rc.window_violations(0), 0u);
  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::None);
  EXPECT_EQ(rc.health(0), np::CoreHealth::Healthy);
}

TEST(RecoveryController, ResetAndContinueNeverIsolates) {
  np::RecoveryConfig config;  // default policy: ResetAndContinue
  config.violation_threshold = 1;
  config.window_packets = 4;
  np::RecoveryController rc(1, config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
              np::RecoveryAction::None);
  }
  EXPECT_EQ(rc.health(0), np::CoreHealth::Healthy);
  EXPECT_EQ(rc.total_violations(), 50u);
}

TEST(RecoveryController, ReinstallEscalatesToQuarantine) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::ReinstallLastGood;
  config.violation_threshold = 2;
  config.window_packets = 8;
  config.max_reinstalls = 1;
  np::RecoveryController rc(1, config);

  rc.on_outcome(0, np::PacketOutcome::AttackDetected);
  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::Reinstall);
  rc.note_reinstall(0);
  EXPECT_EQ(rc.window_violations(0), 0u);  // window cleared by re-image

  rc.on_outcome(0, np::PacketOutcome::AttackDetected);
  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::Quarantine);
  EXPECT_EQ(rc.health(0), np::CoreHealth::Quarantined);
  EXPECT_EQ(rc.reinstall_requests(), 1u);
}

TEST(RecoveryController, TrapsCountTowardThresholdWhenConfigured) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::QuarantineAfterK;
  config.violation_threshold = 2;
  config.count_traps = true;
  np::RecoveryController rc(1, config);
  rc.on_outcome(0, np::PacketOutcome::Trapped);
  EXPECT_EQ(rc.on_outcome(0, np::PacketOutcome::AttackDetected),
            np::RecoveryAction::Quarantine);

  config.count_traps = false;
  np::RecoveryController rc2(1, config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rc2.on_outcome(0, np::PacketOutcome::Trapped),
              np::RecoveryAction::None);
  }
  EXPECT_EQ(rc2.health(0), np::CoreHealth::Healthy);
}

TEST(RecoveryController, ReleaseAndOfflineTransitions) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::QuarantineAfterK;
  config.violation_threshold = 1;
  np::RecoveryController rc(2, config);

  rc.on_outcome(0, np::PacketOutcome::AttackDetected);
  EXPECT_EQ(rc.health(0), np::CoreHealth::Quarantined);
  rc.release(0);
  EXPECT_EQ(rc.health(0), np::CoreHealth::Healthy);
  EXPECT_EQ(rc.window_violations(0), 0u);

  rc.set_offline(1, true);
  EXPECT_EQ(rc.health(1), np::CoreHealth::Offline);
  EXPECT_FALSE(rc.dispatchable(1));
  rc.set_offline(1, false);
  EXPECT_EQ(rc.health(1), np::CoreHealth::Healthy);
}

// ---------------------------------------------------------------------
// MPSoC graceful degradation
// ---------------------------------------------------------------------

TEST(MpsocRecovery, SustainedAttackQuarantinesCore) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::QuarantineAfterK;
  config.violation_threshold = testsupport::kViolationThreshold;
  config.window_packets = 16;
  np::Mpsoc soc(1, np::DispatchPolicy::RoundRobin, config);
  install_all(soc, kVulnApp, 0x5EC0DE);

  util::Bytes attack = attack_packet();
  for (int i = 0; i < 10 && soc.core_health(0) == np::CoreHealth::Healthy;
       ++i) {
    (void)soc.process_packet(attack);
  }
  EXPECT_EQ(soc.core_health(0), np::CoreHealth::Quarantined);

  // Fully degraded: packets are dropped and counted, never a crash.
  np::PacketResult r = soc.process_packet(attack);
  EXPECT_EQ(r.outcome, np::PacketOutcome::Dropped);
  np::MpsocStats stats = soc.aggregate_stats();
  EXPECT_EQ(stats.quarantined_cores, 1u);
  EXPECT_EQ(stats.healthy_cores, 0u);
  EXPECT_EQ(stats.undispatched, 1u);
  EXPECT_EQ(stats.quarantine_events, 1u);
  EXPECT_GE(stats.violations, 3u);

  // Operator releases the core; service resumes.
  soc.release_core(0);
  install_all(soc, kEchoApp, 0x5EC0DE);
  util::Bytes good = {1, 2, 3};
  EXPECT_EQ(soc.process_packet(good).outcome, np::PacketOutcome::Forwarded);
}

TEST(MpsocRecovery, PaperBaselineKeepsProcessingUnderAttack) {
  // RecoveryPolicy::ResetAndContinue is the paper's Section 2.1 behavior:
  // every attack packet is dropped, the core resets, and the next benign
  // packet is served -- no isolation ever.
  np::Mpsoc soc(1);
  install_all(soc, kVulnApp, 0xBA5E);
  util::Bytes attack = attack_packet();
  for (int i = 0; i < 30; ++i) (void)soc.process_packet(attack);
  EXPECT_EQ(soc.core_health(0), np::CoreHealth::Healthy);
  np::MpsocStats stats = soc.aggregate_stats();
  EXPECT_EQ(stats.quarantine_events, 0u);
  EXPECT_GT(stats.attacks_detected, 0u);
}

TEST(MpsocRecovery, ReinstallLastGoodReimagesThenQuarantines) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::ReinstallLastGood;
  config.violation_threshold = 2;
  config.window_packets = 8;
  config.max_reinstalls = 1;
  np::Mpsoc soc(1, np::DispatchPolicy::RoundRobin, config);
  install_all(soc, kVulnApp, 0x1A57);

  util::Bytes attack = attack_packet();
  for (int i = 0; i < 20 && soc.core_health(0) == np::CoreHealth::Healthy;
       ++i) {
    (void)soc.process_packet(attack);
  }
  np::MpsocStats stats = soc.aggregate_stats();
  EXPECT_EQ(soc.core_health(0), np::CoreHealth::Quarantined);
  EXPECT_EQ(stats.reinstalls, 1u);
  EXPECT_EQ(stats.quarantine_events, 1u);
  EXPECT_TRUE(soc.core(0).installed());  // re-image kept a valid config
}

// The install-sharing invariant of the compiled-monitor pipeline: one
// install_all compiles the graph exactly once and every core's monitor
// holds the SAME artifact (pointer identity, not equal copies), and a
// last-good re-image swaps that same pointer back in -- recovery never
// copies or recompiles the graph.
TEST(MpsocRecovery, InstallAllSharesOneCompiledGraphAcrossReinstall) {
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::ReinstallLastGood;
  config.violation_threshold = 2;
  config.window_packets = 8;
  np::Mpsoc soc(4, np::DispatchPolicy::RoundRobin, config);
  install_all(soc, kVulnApp, 0x1A57);

  const monitor::CompiledGraph* shared = soc.core(0).monitor().compiled().get();
  ASSERT_NE(shared, nullptr);
  for (std::size_t c = 1; c < soc.num_cores(); ++c) {
    EXPECT_EQ(soc.core(c).monitor().compiled().get(), shared) << "core " << c;
  }

  // Drive core 0 into a last-good re-image.
  util::Bytes attack = attack_packet();
  np::MpsocStats stats;
  for (int i = 0; i < 64; ++i) {
    (void)soc.process_packet(attack);
    stats = soc.aggregate_stats();
    if (stats.reinstalls > 0) break;
  }
  ASSERT_GT(stats.reinstalls, 0u);
  for (std::size_t c = 0; c < soc.num_cores(); ++c) {
    EXPECT_EQ(soc.core(c).monitor().compiled().get(), shared)
        << "re-image must reuse the shared artifact, core " << c;
  }
}

TEST(MpsocRecovery, TwoOfEightQuarantinedKeepsForwardingAllPolicies) {
  for (np::DispatchPolicy policy :
       {np::DispatchPolicy::RoundRobin, np::DispatchPolicy::FlowHash,
        np::DispatchPolicy::LeastLoaded}) {
    np::RecoveryConfig config;
    config.policy = np::RecoveryPolicy::QuarantineAfterK;
    np::Mpsoc soc(8, policy, config);
    install_all(soc, kEchoApp, 0xD15);
    soc.recovery().quarantine(2);
    soc.recovery().quarantine(5);

    for (std::uint32_t i = 0; i < 64; ++i) {
      util::Bytes pkt(1 + i % 32, static_cast<std::uint8_t>(i));
      np::PacketResult r = soc.process_packet(pkt, /*flow_key=*/i * 7919);
      ASSERT_EQ(r.outcome, np::PacketOutcome::Forwarded)
          << "policy " << static_cast<int>(policy) << " packet " << i;
    }
    EXPECT_EQ(soc.core(2).stats().packets, 0u);
    EXPECT_EQ(soc.core(5).stats().packets, 0u);

    np::MpsocStats stats = soc.aggregate_stats();
    EXPECT_EQ(stats.total_cores, 8u);
    EXPECT_EQ(stats.healthy_cores, 6u);
    EXPECT_EQ(stats.quarantined_cores, 2u);
    EXPECT_EQ(stats.forwarded, 64u);
    EXPECT_EQ(stats.undispatched, 0u);
  }
}

TEST(MpsocRecovery, FlowHashRemapsOffQuarantinedCore) {
  np::Mpsoc soc(4, np::DispatchPolicy::FlowHash);
  install_all(soc, kEchoApp, 0xF10);
  const std::uint32_t flow = 0xABCD;
  util::Bytes pkt = {1};
  (void)soc.process_packet(pkt, flow);
  std::size_t original = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    if (soc.core(c).stats().packets > 0) original = c;
  }
  soc.recovery().quarantine(original);
  // The same flow now lands on a different (healthy) core, consistently.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(soc.process_packet(pkt, flow).outcome,
              np::PacketOutcome::Forwarded);
  }
  EXPECT_EQ(soc.core(original).stats().packets, 1u);
  int other_cores_used = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    if (c != original && soc.core(c).stats().packets > 0) ++other_cores_used;
  }
  EXPECT_EQ(other_cores_used, 1);  // sticky on the remapped core
}

TEST(MpsocRecovery, OrganicQuarantineShedsLoadToHealthyCores) {
  // Cores 0-1 run the vulnerable app, cores 2-7 run echo. Mixed hostile
  // traffic quarantines the vulnerable cores; after that every packet is
  // served by the healthy six.
  np::RecoveryConfig config;
  config.policy = np::RecoveryPolicy::QuarantineAfterK;
  config.violation_threshold = testsupport::kViolationThreshold;
  config.window_packets = 32;
  np::Mpsoc soc(8, np::DispatchPolicy::FlowHash, config);
  for (std::size_t c = 0; c < 8; ++c) {
    install_one(soc, c, c < 2 ? kVulnApp : kEchoApp,
                0x1000 + static_cast<std::uint32_t>(c));
  }

  util::Bytes hostile = attack_packet();
  for (std::uint32_t i = 0; i < 400; ++i) {
    (void)soc.process_packet(hostile, /*flow_key=*/i);
    if (soc.aggregate_stats().quarantined_cores == 2) break;
  }
  np::MpsocStats mid = soc.aggregate_stats();
  EXPECT_EQ(mid.quarantined_cores, 2u);
  EXPECT_EQ(soc.core_health(0), np::CoreHealth::Quarantined);
  EXPECT_EQ(soc.core_health(1), np::CoreHealth::Quarantined);

  // With the vulnerable cores isolated, the same traffic is all served.
  std::uint64_t before = soc.aggregate_stats().forwarded;
  for (std::uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(soc.process_packet(hostile, i * 31).outcome,
              np::PacketOutcome::Forwarded);
  }
  EXPECT_EQ(soc.aggregate_stats().forwarded, before + 40);
}

TEST(MpsocRecovery, UninstalledCoresRoutedAround) {
  np::Mpsoc soc(4);
  install_one(soc, 0, kEchoApp, 0xAA);
  install_one(soc, 1, kEchoApp, 0xBB);

  util::Bytes pkt = {4, 5, 6};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(soc.process_packet(pkt).outcome, np::PacketOutcome::Forwarded);
  }
  EXPECT_EQ(soc.core(0).stats().packets, 4u);
  EXPECT_EQ(soc.core(1).stats().packets, 4u);
  EXPECT_EQ(soc.core(2).stats().packets, 0u);
  np::MpsocStats stats = soc.aggregate_stats();
  EXPECT_EQ(stats.healthy_cores, 2u);
  EXPECT_EQ(stats.uninstalled_cores, 2u);
  EXPECT_EQ(stats.undispatched, 0u);
}

TEST(MpsocRecovery, NothingInstalledDropsAndCounts) {
  np::Mpsoc soc(2);
  util::Bytes pkt = {1};
  EXPECT_EQ(soc.process_packet(pkt).outcome, np::PacketOutcome::Dropped);
  np::MpsocStats stats = soc.aggregate_stats();
  EXPECT_EQ(stats.undispatched, 1u);
  EXPECT_EQ(stats.uninstalled_cores, 2u);
  EXPECT_EQ(stats.healthy_cores, 0u);
}

TEST(MpsocRecovery, UninstalledMonitoredCoreCountsDrops) {
  np::MonitoredCore core;
  util::Bytes pkt = {1, 2};
  EXPECT_EQ(core.process_packet(pkt).outcome, np::PacketOutcome::Dropped);
  EXPECT_EQ(core.stats().packets, 1u);
  EXPECT_EQ(core.stats().dropped, 1u);
}

// ---------------------------------------------------------------------
// Device install rollback invariant
// ---------------------------------------------------------------------

// A self-contained chain of trust where the test controls every private
// key, so it can mint wrong-role certificates and insider-signed packages.
struct RollbackWorld {
  crypto::Drbg drbg{"recovery-rollback"};
  crypto::RsaKeyPair root;
  crypto::RsaKeyPair op_keys;
  crypto::Certificate op_cert;
  protocol::NetworkProcessorDevice device;
  std::uint64_t sequence = 0;

  RollbackWorld()
      : root(make_keys("root")),
        op_keys(make_keys("op")),
        op_cert(crypto::issue_certificate(
            "op", crypto::CertRole::NetworkOperator, 1, kNow - 1000,
            kNow + 1'000'000, op_keys.pub, "root", root.priv)),
        device("router-rb", make_keys("device"), root.pub, 2) {}

  crypto::RsaKeyPair make_keys(const std::string& label) {
    crypto::Drbg fork = drbg.fork(label);
    return crypto::rsa_generate(kKeyBits, fork);
  }

  protocol::WirePackage seal(const isa::Program& binary, std::uint32_t param,
                             bool tamper_graph = false,
                             const crypto::Certificate* cert = nullptr) {
    protocol::PackagePayload payload;
    payload.binary = binary;
    payload.hash_param = param;
    MerkleTreeHash hash(tamper_graph ? param ^ 0xFFFF : param);
    payload.graph = extract_graph(binary, hash);
    payload.sequence = ++sequence;
    crypto::Drbg seal_drbg = drbg.fork("seal/" + std::to_string(sequence));
    return protocol::seal_package(payload, op_keys.priv,
                                  cert != nullptr ? *cert : op_cert,
                                  device.public_key(), seal_drbg);
  }

  /// Install a known-good baseline app and sanity-check it forwards.
  void install_baseline() {
    protocol::WirePackage wire = seal(net::build_udp_echo(), 0x600D);
    ASSERT_EQ(device.install(wire, kNow), protocol::InstallStatus::Ok);
    ASSERT_EQ(device.application_name(), "udp-echo");
  }

  /// The rollback invariant: the baseline app is still installed on every
  /// core and still forwards traffic.
  void expect_baseline_running() {
    EXPECT_TRUE(device.has_application());
    EXPECT_EQ(device.application_name(), "udp-echo");
    for (std::size_t c = 0; c < device.mpsoc().num_cores(); ++c) {
      EXPECT_TRUE(device.mpsoc().core(c).installed());
    }
    util::Bytes pkt = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                           net::ip(10, 0, 0, 2), 7, 7,
                                           util::bytes_of("still alive"));
    EXPECT_EQ(device.process_packet(pkt).outcome,
              np::PacketOutcome::Forwarded);
  }
};

RollbackWorld& rollback_world() {
  static RollbackWorld w;  // key generation is slow; share across tests
  return w;
}

TEST(InstallRollback, TruncatedWireKeepsPreviousConfig) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  util::FaultInjector inject(util::FaultProfile{.seed = 101});
  for (int i = 0; i < 10; ++i) {
    util::Bytes bytes = w.seal(net::build_ipv4_forward(), 0xBAD0 + i)
                            .serialize();
    inject.truncate(bytes);
    EXPECT_EQ(w.device.install_bytes(bytes, kNow),
              protocol::InstallStatus::CorruptPackage);
    EXPECT_FALSE(w.device.last_install_ok());
  }
  w.expect_baseline_running();
}

TEST(InstallRollback, BitFlippedWireKeepsPreviousConfig) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  util::FaultInjector inject(util::FaultProfile{.seed = 202});
  for (int i = 0; i < 20; ++i) {
    util::Bytes bytes = w.seal(net::build_ipv4_forward(), 0xF11B + i)
                            .serialize();
    inject.flip_bit(bytes);
    protocol::InstallStatus status = w.device.install_bytes(bytes, kNow);
    EXPECT_NE(status, protocol::InstallStatus::Ok) << "flip " << i;
  }
  w.expect_baseline_running();
}

TEST(InstallRollback, ExpiredCertificateKeepsPreviousConfig) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  crypto::Certificate expired = crypto::issue_certificate(
      "op", crypto::CertRole::NetworkOperator, 9, kNow - 5000, kNow - 1000,
      w.op_keys.pub, "root", w.root.priv);
  protocol::WirePackage wire =
      w.seal(net::build_ipv4_forward(), 0xE24, false, &expired);
  EXPECT_EQ(w.device.install(wire, kNow),
            protocol::InstallStatus::BadCertificate);
  w.expect_baseline_running();
}

TEST(InstallRollback, WrongRoleCertificateKeepsPreviousConfig) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  // Correctly signed by the root, but certifying a *device* key -- the
  // chain must reject the role, not just the signature.
  crypto::Certificate wrong_role = crypto::issue_certificate(
      "op", crypto::CertRole::Device, 10, kNow - 1000, kNow + 1'000'000,
      w.op_keys.pub, "root", w.root.priv);
  protocol::WirePackage wire =
      w.seal(net::build_ipv4_forward(), 0x401E, false, &wrong_role);
  EXPECT_EQ(w.device.install(wire, kNow),
            protocol::InstallStatus::BadCertificate);
  w.expect_baseline_running();
}

TEST(InstallRollback, SkewedDeviceClockRejectsCertificate) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  // An attacker who can skew the device clock far enough pushes the
  // operator certificate outside its validity window; the install is
  // rejected but the running configuration must survive.
  util::FaultProfile profile;
  profile.clock_skew_rate = 1.0;
  profile.clock_skew_s = 2'000'000;  // beyond valid_to
  util::FaultInjector inject(profile);
  protocol::LossyChannel channel(inject);

  protocol::WirePackage wire = w.seal(net::build_ipv4_forward(), 0xC10C);
  protocol::ChannelResult sent = channel.send_install(w.device, wire, kNow);
  ASSERT_EQ(sent.status, protocol::ChannelStatus::Delivered);
  EXPECT_EQ(sent.install_status, protocol::InstallStatus::BadCertificate);
  EXPECT_EQ(inject.stats().clock_skews, 1u);
  w.expect_baseline_running();
}

TEST(InstallRollback, TamperedGraphBitstreamKeepsPreviousConfig) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  // Insider-style tamper: a correctly signed package whose graph was
  // derived under a different parameter than the one shipped. The device
  // re-derives and rejects (GraphMismatch).
  protocol::WirePackage wire =
      w.seal(net::build_ipv4_forward(), 0x9AF, /*tamper_graph=*/true);
  EXPECT_EQ(w.device.install(wire, kNow),
            protocol::InstallStatus::GraphMismatch);
  w.expect_baseline_running();
}

TEST(InstallRollback, UnstageableBinaryKeepsPreviousConfig) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();

  // A signed, graph-consistent binary whose data segment lies outside the
  // device memory map: every cryptographic check passes, staging fails.
  isa::Program bad = net::build_udp_echo();
  bad.name = "oversized";
  bad.data = util::Bytes(64, 0xEE);
  bad.data_base = 0xFFFF'FF00;
  protocol::WirePackage wire = w.seal(bad, 0x57A6);
  EXPECT_EQ(w.device.install(wire, kNow),
            protocol::InstallStatus::StageFailed);
  EXPECT_FALSE(w.device.last_install_ok());
  w.expect_baseline_running();
}

TEST(InstallRollback, AuditLogRecordsEveryRejection) {
  RollbackWorld& w = rollback_world();
  w.install_baseline();
  std::size_t before = w.device.audit_log().size();
  util::Bytes garbage = {0xDE, 0xAD};
  (void)w.device.install_bytes(garbage, kNow);
  ASSERT_EQ(w.device.audit_log().size(), before + 1);
  const protocol::AuditEvent& event = w.device.audit_log().back();
  EXPECT_EQ(event.status, protocol::InstallStatus::CorruptPackage);
  EXPECT_EQ(event.detail, "corrupt-package");
}

// ---------------------------------------------------------------------
// Fleet fault-injection campaign (the acceptance scenario)
// ---------------------------------------------------------------------

TEST(FaultCampaign, LossyFleetDeployConvergesWithTypedFailures) {
  protocol::Manufacturer manufacturer("fc-man", kKeyBits,
                                      crypto::Drbg("fc-man-seed"));
  protocol::NetworkOperator op("fc-op", kKeyBits, crypto::Drbg("fc-op-seed"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 10, kNow + 10'000'000));

  std::vector<std::unique_ptr<protocol::NetworkProcessorDevice>> devices;
  protocol::FleetOperator fleet(op, manufacturer.public_key());
  for (int i = 0; i < 16; ++i) {
    devices.push_back(manufacturer.provision_device(
        "fc-router-" + std::to_string(i), 1));
    fleet.enroll(devices.back().get());
  }

  // >=10% of wire packages corrupted (bit flips + truncation), >=5%
  // message drop in each direction, plus delay -- all from one seed.
  util::FaultProfile profile;
  profile.seed = 0xCAFE2024;
  profile.bit_flip_rate = 0.10;
  profile.truncation_rate = 0.04;
  profile.drop_rate = 0.05;
  profile.delay_rate = 0.05;
  profile.max_delay_s = 5;
  util::FaultInjector inject(profile);
  protocol::LossyChannel channel(inject);

  protocol::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.initial_backoff_s = 0.5;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_s = 8.0;
  retry.backoff_budget_s = 100.0;

  auto result = fleet.deploy(net::build_ipv4_forward(), kNow,
                             protocol::NiosTimingModel(), &channel, retry);
  ASSERT_EQ(result.reports.size(), 16u);
  EXPECT_EQ(result.succeeded + result.failed, 16u);

  // Every failed device carries a typed reason, not a bare counter.
  for (const protocol::DeviceReport& report : result.reports) {
    if (report.ok()) continue;
    EXPECT_NE(report.outcome, protocol::DeviceOutcome::Installed);
    EXPECT_GT(report.attempts, 0u);
    if (report.saw_reply) {
      EXPECT_NE(report.last_status, protocol::InstallStatus::Ok)
          << report.device;
    }
  }

  // Resume until the campaign converges (bounded; deterministic seed).
  int rounds = 0;
  while (fleet.pending_devices() > 0 && rounds < 8) {
    auto r = fleet.resume(kNow + 60 * (rounds + 1),
                          protocol::NiosTimingModel(), &channel, retry);
    EXPECT_EQ(r.reports.size(), r.succeeded + r.failed);
    ++rounds;
  }
  EXPECT_EQ(fleet.pending_devices(), 0u);

  // Convergence: every device fully installed, none partially.
  util::Bytes pkt = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                         net::ip(10, 0, 0, 2), 1, 2,
                                         util::bytes_of("post-campaign"));
  for (const auto& device : devices) {
    EXPECT_TRUE(device->has_application()) << device->name();
    EXPECT_TRUE(device->last_install_ok()) << device->name();
    EXPECT_EQ(device->application_name(), "ipv4-forward");
    EXPECT_EQ(device->process_packet(pkt).outcome,
              np::PacketOutcome::Forwarded)
        << device->name();
  }
  EXPECT_TRUE(fleet.parameters_all_distinct());

  // The channel really was hostile.
  const util::FaultStats& faults = inject.stats();
  EXPECT_GT(faults.buffers_corrupted + faults.truncations, 0u);
  EXPECT_GT(faults.drops, 0u);
  // And the operator really retried: more attempts than devices.
  std::size_t total_attempts = 0;
  for (const auto& report : result.reports) total_attempts += report.attempts;
  EXPECT_GT(total_attempts, 16u);
}

TEST(FaultCampaign, BackoffBudgetBoundsRetries) {
  protocol::Manufacturer manufacturer("bb-man", kKeyBits,
                                      crypto::Drbg("bb-man-seed"));
  protocol::NetworkOperator op("bb-op", kKeyBits, crypto::Drbg("bb-op-seed"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 10, kNow + 10'000'000));
  auto device = manufacturer.provision_device("bb-router", 1);
  protocol::FleetOperator fleet(op, manufacturer.public_key());
  fleet.enroll(device.get());

  // A channel that drops everything: the campaign must stop at the
  // backoff budget with a typed reason, not loop forever.
  util::FaultProfile profile;
  profile.seed = 7;
  profile.drop_rate = 1.0;
  util::FaultInjector inject(profile);
  protocol::LossyChannel channel(inject);

  protocol::RetryPolicy retry;
  retry.max_attempts = 100;
  retry.initial_backoff_s = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_s = 4.0;
  retry.backoff_budget_s = 10.0;

  auto result = fleet.deploy(net::build_udp_echo(), kNow,
                             protocol::NiosTimingModel(), &channel, retry);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.reports[0].outcome,
            protocol::DeviceOutcome::BudgetExhausted);
  EXPECT_LE(result.reports[0].backoff_s, 10.0);
  EXPECT_LT(result.reports[0].attempts, 100u);
  EXPECT_FALSE(device->has_application());
  EXPECT_EQ(fleet.pending_devices(), 1u);
}

}  // namespace
}  // namespace sdmmon
