#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace sdmmon::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

AesBlock block_of(const std::string& hex) {
  Bytes b = from_hex(hex);
  AesBlock out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

// FIPS-197 Appendix C.1: AES-128.
TEST(AesBlockCipher, Fips197Aes128) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(back, 16)),
            "00112233445566778899aabbccddeeff");
}

// FIPS-197 Appendix C.2: AES-192.
TEST(AesBlockCipher, Fips197Aes192) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct, 16)),
            "dda97ca4864cdfe06eaf70a0ec0d7191");
}

// FIPS-197 Appendix C.3: AES-256.
TEST(AesBlockCipher, Fips197Aes256) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(back, 16)),
            "00112233445566778899aabbccddeeff");
}

TEST(AesBlockCipher, RejectsBadKeySize) {
  Bytes key(17, 0);
  EXPECT_THROW(Aes{key}, AesError);
}

// NIST SP 800-38A F.2.1: CBC-AES128 encrypt.
TEST(AesCbc, Sp80038aVector) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesBlock iv = block_of("000102030405060708090a0b0c0d0e0f");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes ct = aes_cbc_encrypt(key, iv, pt);
  // First four blocks must match the NIST vector; a fifth padding block
  // follows because our CBC always applies PKCS#7.
  ASSERT_EQ(ct.size(), 80u);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct.data(), 64)),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7");
  EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
}

TEST(AesCbc, RoundTripVariousSizes) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesBlock iv = block_of("00112233445566778899aabbccddeeff");
  for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
    Bytes pt(n);
    for (std::size_t i = 0; i < n; ++i) pt[i] = static_cast<std::uint8_t>(i * 7);
    Bytes ct = aes_cbc_encrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % kAesBlockSize, 0u);
    EXPECT_GT(ct.size(), n);  // padding always added
    EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt) << "size " << n;
  }
}

TEST(AesCbc, WrongKeyFailsPaddingOrGarbles) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes wrong = from_hex("2b7e151628aed2a6abf7158809cf4f3d");
  AesBlock iv{};
  Bytes pt = util::bytes_of("attack at dawn, attack at dawn!");
  Bytes ct = aes_cbc_encrypt(key, iv, pt);
  try {
    Bytes out = aes_cbc_decrypt(wrong, iv, ct);
    EXPECT_NE(out, pt);  // if padding happened to validate, content differs
  } catch (const AesError&) {
    SUCCEED();
  }
}

TEST(AesCbc, RejectsTruncatedCiphertext) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesBlock iv{};
  Bytes ct(24, 0);  // not a multiple of 16
  EXPECT_THROW(aes_cbc_decrypt(key, iv, ct), AesError);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes{}), AesError);
}

TEST(AesCbc, TamperedCiphertextDetectedOrGarbled) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  AesBlock iv{};
  Bytes pt(64, 0x42);
  Bytes ct = aes_cbc_encrypt(key, iv, pt);
  ct[5] ^= 0x80;
  try {
    EXPECT_NE(aes_cbc_decrypt(key, iv, ct), pt);
  } catch (const AesError&) {
    SUCCEED();
  }
}

// NIST SP 800-38A F.5.1: CTR-AES128.
TEST(AesCtr, Sp80038aVector) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesBlock ctr = block_of("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Bytes ct = aes_ctr_crypt(key, ctr, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(AesCtr, EncryptDecryptSymmetry) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesBlock nonce{};
  nonce[0] = 0xAA;
  Bytes pt = util::bytes_of("counter mode has no padding at all");
  Bytes ct = aes_ctr_crypt(key, nonce, pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_EQ(aes_ctr_crypt(key, nonce, ct), pt);
}

TEST(AesCtr, CounterCarriesAcrossByteBoundary) {
  Bytes key(16, 0x01);
  AesBlock nonce{};
  // Set the low counter byte to 0xFF so the first increment carries.
  nonce[15] = 0xFF;
  Bytes pt(48, 0);
  Bytes ct = aes_ctr_crypt(key, nonce, pt);
  // Keystream blocks must be distinct (a stuck counter would repeat).
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
            Bytes(ct.begin() + 16, ct.begin() + 32));
  EXPECT_NE(Bytes(ct.begin() + 16, ct.begin() + 32),
            Bytes(ct.begin() + 32, ct.end()));
}

}  // namespace
}  // namespace sdmmon::crypto
