#include "monitor/analysis.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace sdmmon::monitor {
namespace {

isa::Program prog(const char* src) { return isa::assemble(src); }

MonitoringGraph graph_of(const char* src, std::uint32_t param = 0x1234) {
  return extract_graph(prog(src), MerkleTreeHash(param));
}

TEST(Analysis, StraightLineSuccessors) {
  auto g = graph_of(R"(
main:
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    jr $ra
  )");
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.node(0).successors, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(g.node(1).successors, (std::vector<std::uint32_t>{2}));
  EXPECT_FALSE(g.node(0).can_exit);
}

TEST(Analysis, BranchHasBothSuccessors) {
  auto g = graph_of(R"(
main:
    beq $t0, $t1, skip
    addiu $t0, $t0, 1
skip:
    jr $ra
  )");
  // Node 0 (beq): fall-through 1 and target 2.
  EXPECT_EQ(g.node(0).successors, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Analysis, JumpHasSingleSuccessor) {
  auto g = graph_of(R"(
main:
    j end
    addiu $t0, $t0, 1
end:
    jr $ra
  )");
  EXPECT_EQ(g.node(0).successors, (std::vector<std::uint32_t>{2}));
}

TEST(Analysis, JalAndJrReturnSites) {
  auto g = graph_of(R"(
main:
    jal fn        # node 0, return site = 1
    jr $ra        # node 1
fn:
    jr $ra        # node 2
  )");
  // jal -> its target only.
  EXPECT_EQ(g.node(0).successors, (std::vector<std::uint32_t>{2}));
  // jr nodes: all return sites (1) + all jal targets (2), exit-capable.
  EXPECT_EQ(g.node(2).successors, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(g.node(1).can_exit);
  EXPECT_TRUE(g.node(2).can_exit);
}

TEST(Analysis, TrapHasNoSuccessors) {
  auto g = graph_of(R"(
main:
    syscall
    nop
  )");
  EXPECT_TRUE(g.node(0).successors.empty());
  EXPECT_FALSE(g.node(0).can_exit);
}

TEST(Analysis, HashesMatchChosenFunction) {
  auto p = prog("main:\n addiu $t0, $t0, 1\n jr $ra\n");
  MerkleTreeHash h(0xCAFE);
  auto g = extract_graph(p, h);
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    EXPECT_EQ(g.node(static_cast<std::uint32_t>(i)).hash, h.hash(p.text[i]));
  }
  // A different parameter yields a different hash labeling (with high
  // probability over several instructions).
  auto g2 = extract_graph(p, MerkleTreeHash(0xBEEF));
  bool any_diff = false;
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    any_diff |= g.node(static_cast<std::uint32_t>(i)).hash !=
                g2.node(static_cast<std::uint32_t>(i)).hash;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Analysis, EntryIndexFollowsMainLabel) {
  auto g = graph_of(R"(
helper:
    jr $ra
main:
    nop
    jr $ra
  )");
  EXPECT_EQ(g.entry_index(), 1u);
}

TEST(Analysis, GraphWidthTracksHash) {
  auto p = prog("main:\n jr $ra\n");
  EXPECT_EQ(extract_graph(p, MerkleTreeHash(0, 8)).hash_width(), 8);
  EXPECT_EQ(extract_graph(p, BitcountHash(2)).hash_width(), 2);
}

TEST(Analysis, BasicBlockLeaders) {
  auto blocks = find_basic_blocks(prog(R"(
main:
    addiu $t0, $t0, 1     # 0 leader (entry)
    beq $t0, $t1, skip    # 1
    addiu $t0, $t0, 2     # 2 leader (fall-through)
skip:
    addiu $t0, $t0, 3     # 3 leader (branch target)
    jr $ra                # 4
  )"));
  EXPECT_EQ(blocks.leaders, (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(Analysis, GraphSerializationRoundTrip) {
  auto g = graph_of(R"(
main:
    beq $t0, $t1, out
    jal fn
out:
    jr $ra
fn:
    jr $ra
  )");
  auto bytes = g.serialize();
  auto back = MonitoringGraph::deserialize(bytes);
  EXPECT_EQ(back, g);
}

TEST(Analysis, GraphIsCompactRelativeToBinary) {
  // The monitoring graph must be a fraction of the binary (Section 2.1).
  std::string src = "main:\n";
  for (int i = 0; i < 500; ++i) src += "  addiu $t0, $t0, 1\n";
  src += "  jr $ra\n";
  auto p = prog(src.c_str());
  auto g = extract_graph(p, MerkleTreeHash(1));
  const std::size_t binary_bits = p.text.size() * 32;
  EXPECT_LT(g.size_bits(), binary_bits / 4);
}

TEST(Analysis, UndecodableTextThrows) {
  isa::Program p;
  p.text = {0xFC000000u};
  EXPECT_THROW(extract_graph(p, MerkleTreeHash(0)), isa::IsaError);
}

TEST(Analysis, EmptyProgramYieldsEmptyGraph) {
  isa::Program p;
  auto g = extract_graph(p, MerkleTreeHash(0));
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.size_bits(), 0u);
}

}  // namespace
}  // namespace sdmmon::monitor
