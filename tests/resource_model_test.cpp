#include "monitor/resource_model.hpp"

#include <gtest/gtest.h>

namespace sdmmon::monitor {
namespace {

TEST(ResourceModelTable3, BitcountMatchesPaper) {
  EXPECT_EQ(bitcount_hash_cost(32, 4), kPaperBitcountHash);
}

TEST(ResourceModelTable3, MerkleMatchesPaper) {
  EXPECT_EQ(merkle_hash_cost(4), kPaperMerkleHash);
}

TEST(ResourceModelTable3, MerkleCheaperInLogicButUsesMemory) {
  auto merkle = merkle_hash_cost(4);
  auto bitcount = bitcount_hash_cost(32, 4);
  EXPECT_LT(merkle.luts, bitcount.luts);
  EXPECT_GT(merkle.mem_bits, bitcount.mem_bits);
  EXPECT_EQ(merkle.ffs, bitcount.ffs);
}

TEST(ResourceModelTable3, WidthScaling) {
  // Narrower hash -> fewer LUTs... actually more chunks but narrower
  // adders; the model must stay monotone in total adder bits.
  auto w2 = merkle_hash_cost(2);
  auto w4 = merkle_hash_cost(4);
  auto w8 = merkle_hash_cost(8);
  EXPECT_EQ(w2.mem_bits, 32u);
  EXPECT_EQ(w8.mem_bits, 32u);
  EXPECT_EQ(w2.ffs, 2u);
  EXPECT_EQ(w8.ffs, 8u);
  EXPECT_LT(w2.luts, w4.luts + w8.luts);  // sanity: all are small
}

TEST(ResourceModelTable3, HashCostDispatch) {
  MerkleTreeHash merkle(0x1234);
  BitcountHash bitcount;
  EXPECT_EQ(hash_cost(merkle), kPaperMerkleHash);
  EXPECT_EQ(hash_cost(bitcount), kPaperBitcountHash);
}

TEST(ResourceModelTable1, ControlProcessorInventorySumsToPaper) {
  EXPECT_EQ(total(control_processor_inventory()), kPaperControlProcessor);
}

TEST(ResourceModelTable1, NpCoreInventorySumsToPaper) {
  EXPECT_EQ(total(np_core_with_monitor_inventory()), kPaperNpCoreWithMonitor);
}

TEST(ResourceModelTable1, ControlProcessorIsAboutOneThirdOfNpCore) {
  // The paper's system-level claim (Section 4.1).
  auto ctrl = total(control_processor_inventory());
  auto np = total(np_core_with_monitor_inventory());
  double ratio = static_cast<double>(ctrl.luts) / static_cast<double>(np.luts);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.40);
}

TEST(ResourceModelTable1, FitsOnStratixIv) {
  auto ctrl = total(control_processor_inventory());
  auto np = total(np_core_with_monitor_inventory());
  // Prototype = 1 control processor + 1 monitored NP core.
  EXPECT_LT(ctrl.luts + np.luts, kStratixIvCapacity.luts);
  EXPECT_LT(ctrl.ffs + np.ffs, kStratixIvCapacity.ffs);
  EXPECT_LT(ctrl.mem_bits + np.mem_bits, kStratixIvCapacity.mem_bits);
}

TEST(ResourceModelTable1, GraphMemoryParameterFlowsThrough) {
  auto small = total(np_core_with_monitor_inventory(1'000));
  auto large = total(np_core_with_monitor_inventory(3'000'000));
  EXPECT_LT(small.mem_bits, large.mem_bits);
}

TEST(ResourceModel, CostArithmetic) {
  ResourceCost a{1, 2, 3}, b{10, 20, 30};
  EXPECT_EQ(a + b, (ResourceCost{11, 22, 33}));
}

}  // namespace
}  // namespace sdmmon::monitor
