#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/disassembler.hpp"
#include "isa/isa.hpp"

namespace sdmmon::isa {
namespace {

TEST(Assembler, EmptySourceGivesEmptyProgram) {
  Program p = assemble("");
  EXPECT_TRUE(p.text.empty());
  EXPECT_TRUE(p.data.empty());
}

TEST(Assembler, SingleInstruction) {
  Program p = assemble("add $t0, $t1, $t2\n");
  ASSERT_EQ(p.text.size(), 1u);
  EXPECT_EQ(p.text[0], 0x012A4020u);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  Program p = assemble(R"(
    # full-line comment
    add $t0, $t1, $t2   # trailing comment
    ; semicolon comment
    nop
  )");
  EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, LabelsAndBranches) {
  Program p = assemble(R"(
loop:
    addiu $t0, $t0, 1
    bne $t0, $t1, loop
    nop
  )");
  ASSERT_EQ(p.text.size(), 3u);
  Instr bne = decode(p.text[1]);
  EXPECT_EQ(bne.op, Op::Bne);
  // Branch at word 1 back to word 0: offset = (0 - (1+1)) = -2.
  EXPECT_EQ(bne.imm, -2);
  EXPECT_EQ(p.symbol("loop"), 0u);
}

TEST(Assembler, ForwardReferences) {
  Program p = assemble(R"(
    beq $zero, $zero, done
    nop
    nop
done:
    jr $ra
  )");
  Instr beq = decode(p.text[0]);
  EXPECT_EQ(beq.imm, 2);  // skip two nops
  EXPECT_EQ(p.symbol("done"), 12u);
}

TEST(Assembler, JumpTargetsAreAbsoluteWordIndices) {
  Program p = assemble(R"(
main:
    j main
  )");
  Instr j = decode(p.text[0]);
  EXPECT_EQ(j.op, Op::J);
  EXPECT_EQ(j.target, 0u);
  EXPECT_EQ(p.entry, 0u);
}

TEST(Assembler, EntryIsMainLabel) {
  Program p = assemble(R"(
    nop
    nop
main:
    jr $ra
  )");
  EXPECT_EQ(p.entry, 8u);
}

TEST(Assembler, LiExpandsToLuiOri) {
  Program p = assemble("li $t0, 0x12345678\n");
  ASSERT_EQ(p.text.size(), 2u);
  Instr lui = decode(p.text[0]);
  Instr ori = decode(p.text[1]);
  EXPECT_EQ(lui.op, Op::Lui);
  EXPECT_EQ(lui.imm & 0xFFFF, 0x1234);
  EXPECT_EQ(ori.op, Op::Ori);
  EXPECT_EQ(ori.imm & 0xFFFF, 0x5678);
}

TEST(Assembler, LaLoadsDataAddress) {
  Program p = assemble(R"(
    la $t0, table
.data
table:
    .word 1, 2, 3
  )");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(p.symbol("table"), 0x10000u);
  Instr lui = decode(p.text[0]);
  Instr ori = decode(p.text[1]);
  EXPECT_EQ(lui.imm & 0xFFFF, 0x0001);
  EXPECT_EQ(ori.imm & 0xFFFF, 0x0000);
}

TEST(Assembler, MemoryOperands) {
  Program p = assemble("lw $t0, 8($sp)\nsw $t1, -4($fp)\nlw $t2, ($a0)\n");
  Instr lw = decode(p.text[0]);
  EXPECT_EQ(lw.op, Op::Lw);
  EXPECT_EQ(lw.imm, 8);
  EXPECT_EQ(lw.rs, 29);
  Instr sw = decode(p.text[1]);
  EXPECT_EQ(sw.imm, -4);
  Instr lw2 = decode(p.text[2]);
  EXPECT_EQ(lw2.imm, 0);
  EXPECT_EQ(lw2.rs, 4);
}

TEST(Assembler, DataDirectives) {
  Program p = assemble(R"(
.data
w:  .word 0x11223344
h:  .half 0x5566, 0x7788
b:  .byte 1, 2, 3
s:  .space 5
z:  .asciiz "hi"
  )");
  // .word is little-endian in the data image.
  ASSERT_GE(p.data.size(), 4u);
  EXPECT_EQ(p.data[0], 0x44);
  EXPECT_EQ(p.data[3], 0x11);
  EXPECT_EQ(p.symbol("h"), 0x10004u);
  EXPECT_EQ(p.data[4], 0x66);
  EXPECT_EQ(p.symbol("b"), 0x10008u);
  EXPECT_EQ(p.symbol("s"), 0x1000Bu);
  EXPECT_EQ(p.symbol("z"), 0x10010u);
  EXPECT_EQ(p.data[0x10], 'h');
  EXPECT_EQ(p.data[0x11], 'i');
  EXPECT_EQ(p.data[0x12], 0);
}

TEST(Assembler, AlignDirective) {
  Program p = assemble(R"(
.data
    .byte 1
    .align 2
aligned:
    .word 7
  )");
  EXPECT_EQ(p.symbol("aligned") % 4, 0u);
}

TEST(Assembler, PseudoBranchesExpand) {
  Program p = assemble(R"(
top:
    blt $t0, $t1, top
    bge $t0, $t1, top
    beqz $t2, top
    bnez $t2, top
    b top
  )");
  // blt/bge are 2 words each, beqz/bnez/b 1 word each = 7 words.
  ASSERT_EQ(p.text.size(), 7u);
  EXPECT_EQ(decode(p.text[0]).op, Op::Slt);
  EXPECT_EQ(decode(p.text[1]).op, Op::Bne);
  EXPECT_EQ(decode(p.text[1]).imm, -2);
  EXPECT_EQ(decode(p.text[3]).op, Op::Beq);
  EXPECT_EQ(decode(p.text[4]).op, Op::Beq);
  EXPECT_EQ(decode(p.text[6]).op, Op::Beq);
  EXPECT_EQ(decode(p.text[6]).imm, -7);
}

TEST(Assembler, MoveAndNop) {
  Program p = assemble("move $s0, $v0\nnop\n");
  Instr mv = decode(p.text[0]);
  EXPECT_EQ(mv.op, Op::Addu);
  EXPECT_EQ(mv.rd, 16);
  EXPECT_EQ(mv.rt, 2);
  EXPECT_EQ(mv.rs, 0);
  EXPECT_EQ(p.text[1], 0u);
}

TEST(Assembler, VariableShiftsUseMipsOperandOrder) {
  // sllv rd, rt, rs.
  Program p = assemble("sllv $t0, $t1, $t2\n");
  Instr i = decode(p.text[0]);
  EXPECT_EQ(i.rd, 8);
  EXPECT_EQ(i.rt, 9);
  EXPECT_EQ(i.rs, 10);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus $t0\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Assembler, DuplicateLabelRejected) {
  EXPECT_THROW(assemble("x:\nnop\nx:\nnop\n"), AsmError);
}

TEST(Assembler, UndefinedSymbolRejected) {
  EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(Assembler, WrongOperandCountRejected) {
  EXPECT_THROW(assemble("add $t0, $t1\n"), AsmError);
  EXPECT_THROW(assemble("jr $t0, $t1\n"), AsmError);
}

TEST(Assembler, BranchOutOfRangeRejected) {
  std::string src = "start:\n";
  for (int i = 0; i < 40000; ++i) src += "nop\n";
  src += "b start\n";
  EXPECT_THROW(assemble(src), AsmError);
}

TEST(Assembler, LabelPlusOffset) {
  Program p = assemble(R"(
    la $t0, buf+8
.data
buf: .space 16
  )");
  Instr ori = decode(p.text[1]);
  EXPECT_EQ(ori.imm & 0xFFFF, 0x0008);
}

TEST(Assembler, ProgramSerializationRoundTrip) {
  Program p = assemble(R"(
main:
    li $t0, 42
    jr $ra
.data
msg: .asciiz "hello"
  )");
  p.name = "round-trip";
  auto bytes = p.serialize();
  Program back = Program::deserialize(bytes);
  EXPECT_EQ(back, p);
}

TEST(Disassembler, RoundTripsCommonInstructions) {
  const char* src =
      "main:\n"
      "  addiu $sp, $sp, -16\n"
      "  sw $ra, 12($sp)\n"
      "  beq $a0, $zero, main\n"
      "  jal main\n"
      "  jr $ra\n";
  Program p = assemble(src);
  std::string listing = disassemble_program(p);
  EXPECT_NE(listing.find("addiu $sp, $sp, -16"), std::string::npos);
  EXPECT_NE(listing.find("sw $ra, 12($sp)"), std::string::npos);
  EXPECT_NE(listing.find("jr $ra"), std::string::npos);
  EXPECT_NE(listing.find("main:"), std::string::npos);
}

TEST(Disassembler, UnknownWordRendersAsData) {
  EXPECT_EQ(disassemble(0xFC000000u, 0), ".word 0xfc000000");
}

}  // namespace
}  // namespace sdmmon::isa
