// Differential testing of the trace (superblock) execution tier
// (docs/EXECUTION.md tier 4): the word-at-a-time interpreter is the
// permanent oracle, the block-fused core is the middle tier, and the
// trace core -- whole superblocks through Core::exec_trace, crossing
// statically-predicted branches, trace-granular hash slices through
// HardwareMonitor::advance, overshoot retraction through
// Core::retract_trace -- must be bit-identical to both: final core
// state, per-packet results, cumulative core stats, AND cumulative
// monitor stats. The fuzz programs here are deliberately branchier than
// core_fuse_diff_test's (short backward loops dominate, the static
// predictor's home turf), so traces routinely span several predicted
// branches and side exits fire constantly. Covers random programs,
// code-reuse attack traffic that mismatches *inside* a trace, a
// mismatch landing before a side-exiting branch (the retraction case
// where the overshoot's taken-attribution must be negated for the last
// op), mid-stream reinstalls, all three recovery policies, and the
// self-modifying-store fallback.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/mpsoc.hpp"
#include "support/test_apps.hpp"
#include "util/rng.hpp"

namespace sdmmon::np {
namespace {

// The tiers under test: the interpreter oracle, the fused tier (the
// trace tier's fallback, trace explicitly off), and the full trace
// configuration (all three toggles on -- the shipping default).
enum class Tier { Interpret, Fused, Trace };

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Interpret: return "interpret";
    case Tier::Fused: return "fused";
    case Tier::Trace: return "trace";
  }
  return "?";
}

void select_tier(Core& core, Tier tier) {
  core.set_predecode_enabled(tier != Tier::Interpret);
  core.set_block_fuse_enabled(tier != Tier::Interpret);
  core.set_trace_enabled(tier == Tier::Trace);
}

// Random text biased toward the trace tier's fast path -- short
// backward (predicted-taken) loops over small pure bodies -- while
// still containing every side-exit and stop construct: forward
// branches (predicted not-taken, taken = side exit), j/jal (followed
// through), jr and raw words (trace enders), loads/stores (MMIO and
// text-dirtying stops), and overflow-trapping arithmetic.
isa::Program random_program(util::Rng& rng) {
  const std::size_t n = 16 + rng.below(48);
  isa::Program p;
  p.name = "trace-fuzz";
  p.text_base = 0;
  p.entry = 0;
  p.text.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick = rng.below(100);
    const int rd = static_cast<int>(8 + rng.below(16));  // $t0..$s7
    const int rs = static_cast<int>(8 + rng.below(16));
    const int rt = static_cast<int>(8 + rng.below(16));
    if (pick < 20) {
      // Branch-heavy: mostly short backward hops (loops the formation
      // pass unrolls), some forward skips, an occasional branch-to-next
      // (imm 0: taken target == fall-through, counted not-taken).
      static constexpr isa::Op kBranch[] = {isa::Op::Beq, isa::Op::Bne,
                                            isa::Op::Blez, isa::Op::Bgtz};
      const std::int32_t off =
          static_cast<std::int32_t>(rng.below(12)) - 7;  // [-7, 5) words
      p.text.push_back(isa::encode(
          isa::make_branch(kBranch[rng.below(4)], rs, rt, off)));
    } else if (pick < 24) {
      p.text.push_back(isa::encode(isa::make_jump(
          rng.below(2) == 0 ? isa::Op::J : isa::Op::Jal,
          static_cast<std::uint32_t>(rng.below(n)))));
    } else if (pick < 27) {
      p.text.push_back(isa::encode(isa::make_rtype(isa::Op::Jr, 0, 31, 0)));
    } else if (pick < 35) {
      static constexpr isa::Op kMem[] = {isa::Op::Lw,  isa::Op::Lb,
                                         isa::Op::Lbu, isa::Op::Sw,
                                         isa::Op::Sb,  isa::Op::Sh};
      const std::int32_t imm =
          static_cast<std::int32_t>(rng.below(0x100)) - 0x80;
      p.text.push_back(
          isa::encode(isa::make_itype(kMem[rng.below(6)], rt, rs, imm)));
    } else if (pick < 41) {
      // Trapping arithmetic: stop-before ops inside a trace body.
      static constexpr isa::Op kTrapArith[] = {isa::Op::Add, isa::Op::Sub};
      p.text.push_back(isa::encode(
          isa::make_rtype(kTrapArith[rng.below(2)], rd, rs, rt)));
    } else if (pick < 58) {
      static constexpr isa::Op kImm[] = {isa::Op::Addiu, isa::Op::Ori,
                                         isa::Op::Andi,  isa::Op::Xori,
                                         isa::Op::Slti,  isa::Op::Lui};
      const std::int32_t imm =
          static_cast<std::int32_t>(rng.below(0x10000)) - 0x8000;
      p.text.push_back(
          isa::encode(isa::make_itype(kImm[rng.below(6)], rt, rs, imm)));
    } else if (pick < 94) {
      static constexpr isa::Op kPure[] = {
          isa::Op::Addu, isa::Op::Subu, isa::Op::And,  isa::Op::Or,
          isa::Op::Xor,  isa::Op::Nor,  isa::Op::Slt,  isa::Op::Sltu,
          isa::Op::Mult, isa::Op::Multu, isa::Op::Div, isa::Op::Divu,
          isa::Op::Mfhi, isa::Op::Mflo};
      p.text.push_back(
          isa::encode(isa::make_rtype(kPure[rng.below(14)], rd, rs, rt)));
    } else if (pick < 97) {
      p.text.push_back(isa::encode(
          isa::make_shift(isa::Op::Sll, rd, rt,
                          static_cast<int>(rng.below(32)))));
    } else {
      // Raw word: often undecodable, sometimes accidentally valid.
      p.text.push_back(rng.next_u32());
    }
  }
  return p;
}

void load_tier(Core& core, Tier tier, const isa::Program& p,
               const std::shared_ptr<const CompiledProgram>& compiled,
               const std::vector<std::uint32_t>& seeds,
               std::uint64_t watchdog) {
  select_tier(core, tier);
  core.load_program(p, compiled);
  core.set_watchdog_budget(watchdog);
  for (int r = 1; r < 32; ++r) {
    if (r == 31) continue;  // keep the return sentinel
    core.set_reg(r, seeds[static_cast<std::size_t>(r)]);
  }
}

void expect_same_state(const Core& a, const Core& b, Tier tier) {
  ASSERT_EQ(a.pc(), b.pc()) << tier_name(tier);
  ASSERT_EQ(a.cycles(), b.cycles()) << tier_name(tier);
  ASSERT_EQ(a.runnable(), b.runnable()) << tier_name(tier);
  for (int r = 0; r < 32; ++r) {
    ASSERT_EQ(a.reg(r), b.reg(r)) << tier_name(tier) << " register " << r;
  }
  const InstrMix& ma = a.instr_mix();
  const InstrMix& mb = b.instr_mix();
  ASSERT_EQ(ma.alu, mb.alu) << tier_name(tier);
  ASSERT_EQ(ma.muldiv, mb.muldiv) << tier_name(tier);
  ASSERT_EQ(ma.load, mb.load) << tier_name(tier);
  ASSERT_EQ(ma.store, mb.store) << tier_name(tier);
  ASSERT_EQ(ma.branch_taken, mb.branch_taken) << tier_name(tier);
  ASSERT_EQ(ma.branch_not_taken, mb.branch_not_taken) << tier_name(tier);
  ASSERT_EQ(ma.jump, mb.jump) << tier_name(tier);
  ASSERT_EQ(ma.trap, mb.trap) << tier_name(tier);
  ASSERT_EQ(a.has_output(), b.has_output()) << tier_name(tier);
  if (a.has_output()) {
    ASSERT_EQ(a.output(), b.output()) << tier_name(tier);
    ASSERT_EQ(a.output_port(), b.output_port()) << tier_name(tier);
  }
}

class TraceDifferentialTest : public ::testing::TestWithParam<int> {};

// 8 seeds x 600 branchy programs, each run end-to-end on all three
// configurations: the trace run() (superblock dispatch, side exits) must
// land in exactly the interpreter's final state -- registers, cycles,
// retired mix (taken/not-taken counted by ACTUAL branch outcome, not
// prediction), last StepInfo.
TEST_P(TraceDifferentialTest, RandomProgramsRunIdenticalAcrossTiers) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x7ACE5EED + 29);
  for (int trial = 0; trial < 600; ++trial) {
    const isa::Program p = random_program(rng);
    auto compiled =
        CompiledProgram::compile(p, monitor::MerkleTreeHash(0x7ACE));
    // Small watchdogs sometimes, so the trace budget clamp (a trace
    // truncated mid-superblock by remaining slack) gets exercised.
    const std::uint64_t watchdog =
        rng.below(8) == 0 ? 1 + rng.below(40) : 512;
    std::vector<std::uint32_t> seeds(32);
    for (auto& s : seeds) s = rng.next_u32();
    // And sometimes a max_steps cap that lands inside a trace.
    const std::uint64_t max_steps = rng.below(4) == 0 ? 1 + rng.below(32)
                                                      : 300;

    Core interp, fused, trace;
    load_tier(interp, Tier::Interpret, p, compiled, seeds, watchdog);
    load_tier(fused, Tier::Fused, p, compiled, seeds, watchdog);
    load_tier(trace, Tier::Trace, p, compiled, seeds, watchdog);
    ASSERT_FALSE(interp.trace_live());
    ASSERT_TRUE(fused.block_fuse_live());
    ASSERT_FALSE(fused.trace_live());
    ASSERT_TRUE(trace.trace_live());

    const StepInfo a = interp.run(max_steps);
    const StepInfo b = fused.run(max_steps);
    const StepInfo c = trace.run(max_steps);
    ASSERT_EQ(a.pc, b.pc) << "trial " << trial;
    ASSERT_EQ(a.pc, c.pc) << "trial " << trial;
    ASSERT_EQ(a.word, c.word) << "trial " << trial;
    ASSERT_EQ(static_cast<int>(a.event), static_cast<int>(c.event))
        << "trial " << trial;
    ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(c.trap))
        << "trial " << trial;
    expect_same_state(interp, fused, Tier::Fused);
    expect_same_state(interp, trace, Tier::Trace);
    ASSERT_EQ(interp.text_dirty(), trace.text_dirty()) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceDifferentialTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Monitored packet processing across all three configurations
// ---------------------------------------------------------------------

void expect_same_result(const PacketResult& a, const PacketResult& b,
                        Tier tier, std::size_t packet) {
  ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.output, b.output) << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.output_port, b.output_port)
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.instructions, b.instructions)
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap))
      << tier_name(tier) << " packet " << packet;
  ASSERT_EQ(a.monitor_width, b.monitor_width)
      << tier_name(tier) << " packet " << packet;
}

void expect_same_core_and_monitor_stats(const MonitoredCore& a,
                                        const MonitoredCore& b, Tier tier) {
  ASSERT_EQ(a.stats().packets, b.stats().packets) << tier_name(tier);
  ASSERT_EQ(a.stats().forwarded, b.stats().forwarded) << tier_name(tier);
  ASSERT_EQ(a.stats().dropped, b.stats().dropped) << tier_name(tier);
  ASSERT_EQ(a.stats().attacks_detected, b.stats().attacks_detected)
      << tier_name(tier);
  ASSERT_EQ(a.stats().traps, b.stats().traps) << tier_name(tier);
  ASSERT_EQ(a.stats().instructions, b.stats().instructions)
      << tier_name(tier);
  // Monitor stats are the sharpest oracle: the batch advance() feeding
  // one hash too many (or skipping the mismatching hash, or accounting
  // the tracked-set width after a transition instead of before)
  // diverges here even when every verdict agrees.
  const monitor::MonitorStats& ma = a.monitor().stats();
  const monitor::MonitorStats& mb = b.monitor().stats();
  ASSERT_EQ(ma.instructions_checked, mb.instructions_checked)
      << tier_name(tier);
  ASSERT_EQ(ma.mismatches, mb.mismatches) << tier_name(tier);
  ASSERT_EQ(ma.packets_monitored, mb.packets_monitored) << tier_name(tier);
  ASSERT_EQ(ma.state_size_accum, mb.state_size_accum) << tier_name(tier);
}

// 5 apps x 1400 packets (generated + garbage) through full monitored
// cores on each configuration: per-packet results, core stats, and
// monitor stats must match the interpreter exactly. loop-forward is the
// extreme case -- nearly every retired instruction arrives at the
// monitor inside a trace slice spanning many unrolled loop iterations.
TEST(TraceDifferential, MonitoredVerdictsAndStatsMatchAcrossTiers) {
  const isa::Program apps[] = {
      net::build_ipv4_forward(), net::build_ipv4_cm(), net::build_udp_echo(),
      net::build_firewall({22, 53, 80, 443}), net::build_loop_forward()};
  util::Rng rng(0x7ACE5EED);
  for (const isa::Program& app : apps) {
    monitor::MerkleTreeHash hash(0x4242 + app.text.size());
    auto graph = monitor::extract_graph(app, hash);

    MonitoredCore interp, fused, trace;
    select_tier(interp.core(), Tier::Interpret);
    select_tier(fused.core(), Tier::Fused);
    select_tier(trace.core(), Tier::Trace);
    for (MonitoredCore* mc : {&interp, &fused, &trace}) {
      mc->install(app, graph,
                  std::make_unique<monitor::MerkleTreeHash>(hash));
    }
    ASSERT_TRUE(trace.core().trace_live());
    ASSERT_FALSE(fused.core().trace_live());

    net::TrafficGenerator gen;
    for (std::size_t i = 0; i < 1400; ++i) {
      util::Bytes packet;
      if (i % 7 == 2) {  // garbage packets: traps and drops
        packet.resize(rng.below(128));
        for (auto& b : packet) b = static_cast<std::uint8_t>(rng.next());
      } else {
        packet = gen.next().packet;
      }
      const PacketResult want = interp.process_packet(packet);
      expect_same_result(want, fused.process_packet(packet), Tier::Fused, i);
      const PacketResult got = trace.process_packet(packet);
      expect_same_result(want, got, Tier::Trace, i);
      ASSERT_GE(got.trace_dispatches, got.trace_side_exits)
          << "packet " << i;
    }
    expect_same_core_and_monitor_stats(interp, fused, Tier::Fused);
    expect_same_core_and_monitor_stats(interp, trace, Tier::Trace);
  }
}

// Code-reuse attack traffic on the vulnerable app, both enforcement
// modes: the smashed return address diverts control, the monitor
// mismatch fires, and the per-packet instruction counts prove the trace
// core executed exactly as many ops before the recovery reset as the
// oracle -- i.e. retract_trace un-retired the overshoot correctly.
TEST(TraceDifferential, AttackMismatchMidTraceMatchesOracle) {
  for (bool enforce : {true, false}) {
    MonitoredCore interp, trace;
    select_tier(interp.core(), Tier::Interpret);
    select_tier(trace.core(), Tier::Trace);
    isa::Program vuln = isa::assemble(testsupport::kVulnApp);
    monitor::MerkleTreeHash hash(0x7E57);
    auto graph = monitor::extract_graph(vuln, hash);
    for (MonitoredCore* mc : {&interp, &trace}) {
      mc->set_enforcement(enforce);
      mc->install(vuln, graph,
                  std::make_unique<monitor::MerkleTreeHash>(hash));
    }
    const util::Bytes attack = testsupport::attack_packet();
    net::TrafficGenerator gen;
    for (int i = 0; i < 100; ++i) {
      const util::Bytes packet = i % 3 == 0 ? attack : gen.next().packet;
      expect_same_result(interp.process_packet(packet),
                         trace.process_packet(packet), Tier::Trace,
                         static_cast<std::size_t>(i));
    }
    expect_same_core_and_monitor_stats(interp, trace, Tier::Trace);
  }
}

// Mismatch INSIDE an installed trace that spans a predicted branch: the
// app is a counted loop (backward bne, predicted taken) whose trace
// unrolls several iterations, but the graph is extracted from a
// truncated program, so advance() flags a hash partway through the
// slice -- upstream of the side-exiting loop-exit branch. The
// retraction therefore covers body ops AND predicted-taken branch
// iterations, and on the final dispatch the side-exit flag flips the
// last op's taken-attribution. Instruction counts and monitor stats
// prove every path agrees with the oracle.
TEST(TraceDifferential, MismatchBeforeSideExitRetractsExactly) {
  isa::Program full = isa::assemble(R"(
main:
    li $t0, 6
    move $t1, $zero
loop:
    addiu $t1, $t1, 1
    addiu $t2, $t2, 3
    bne $t1, $t0, loop
    addiu $t3, $t3, 5
    jr $ra
)");
  // Graph from a program whose loop body differs at the second op: the
  // monitor expects addiu $t2,$t2,4, so the installed text's hash for
  // that op mismatches on the FIRST unrolled iteration of every trace
  // dispatch while several predicted iterations sit retired beyond it.
  isa::Program expected = full;
  expected.text[3] = isa::encode(isa::make_itype(isa::Op::Addiu, 10, 10, 4));

  monitor::MerkleTreeHash hash(0xBEEF);
  auto graph = monitor::extract_graph(expected, hash);

  MonitoredCore interp, trace;
  select_tier(interp.core(), Tier::Interpret);
  select_tier(trace.core(), Tier::Trace);
  for (MonitoredCore* mc : {&interp, &trace}) {
    mc->install(full, monitor::CompiledGraph::compile(graph),
                std::make_unique<monitor::MerkleTreeHash>(hash));
  }
  ASSERT_TRUE(trace.core().trace_live());
  ASSERT_GT(trace.core().compiled_program()->num_traces(), 0u);

  const util::Bytes packet(16, 0xAB);
  const PacketResult want = interp.process_packet(packet);
  const PacketResult got = trace.process_packet(packet);
  EXPECT_EQ(static_cast<int>(want.outcome),
            static_cast<int>(PacketOutcome::AttackDetected));
  expect_same_result(want, got, Tier::Trace, 0);
  expect_same_core_and_monitor_stats(interp, trace, Tier::Trace);
}

// Mid-stream reinstall: new hash parameter, new artifacts, same binary;
// then a different binary. Traces are rebuilt per install and
// equivalence must hold across every swap.
TEST(TraceDifferential, MidStreamReinstallKeepsEquivalence) {
  MonitoredCore interp, trace;
  select_tier(interp.core(), Tier::Interpret);
  select_tier(trace.core(), Tier::Trace);
  net::TrafficGenerator gen;

  std::uint32_t params[] = {0xAAAA, 0xBBBB};
  isa::Program binaries[] = {net::build_loop_forward(),
                             net::build_ipv4_forward()};
  std::size_t packet = 0;
  for (const isa::Program& app : binaries) {
    for (std::uint32_t param : params) {
      monitor::MerkleTreeHash hash(param);
      auto graph = monitor::extract_graph(app, hash);
      for (MonitoredCore* mc : {&interp, &trace}) {
        mc->install(app, graph,
                    std::make_unique<monitor::MerkleTreeHash>(hash));
      }
      ASSERT_TRUE(trace.core().trace_live());
      for (int i = 0; i < 200; ++i, ++packet) {
        const util::Bytes p = gen.next().packet;
        expect_same_result(interp.process_packet(p),
                           trace.process_packet(p), Tier::Trace, packet);
      }
      expect_same_core_and_monitor_stats(interp, trace, Tier::Trace);
    }
  }
}

// ---------------------------------------------------------------------
// Self-modifying stores: the trace tier must die with the artifact
// ---------------------------------------------------------------------

TEST(TraceDifferential, SelfModifyingStoreKillsTracesAndMatchesOracle) {
  const std::uint32_t patch =
      isa::encode(isa::make_itype(isa::Op::Addiu, 2, 0, 42));
  isa::Program p = isa::assemble(R"(
main:
    la $t0, target
    lui $t1, 0
    ori $t1, $t1, 0
    sw $t1, 0($t0)
target:
    nop
    nop
    nop
    jr $ra
)");
  p.text[2] = isa::encode(isa::make_itype(
      isa::Op::Lui, 9, 0, static_cast<std::int32_t>(patch >> 16)));
  p.text[3] = isa::encode(isa::make_itype(
      isa::Op::Ori, 9, 9, static_cast<std::int32_t>(patch & 0xFFFF)));

  auto compiled = CompiledProgram::compile(p, monitor::MerkleTreeHash(0x5E1F));
  Core interp, trace;
  select_tier(interp, Tier::Interpret);
  select_tier(trace, Tier::Trace);
  interp.load_program(p, compiled);
  trace.load_program(p, compiled);
  ASSERT_TRUE(trace.trace_live());

  const StepInfo a = interp.run(64);
  const StepInfo b = trace.run(64);
  ASSERT_EQ(static_cast<int>(a.event), static_cast<int>(b.event));
  expect_same_state(interp, trace, Tier::Trace);
  EXPECT_EQ(trace.reg(2), 42u) << "patched instruction must have executed";
  EXPECT_TRUE(trace.text_dirty());
  EXPECT_FALSE(trace.predecode_live());
  EXPECT_FALSE(trace.trace_live())
      << "traces must not survive a dirtied text image";

  // The re-imaging reset() restores text and re-arms ALL fast tiers
  // from the same shared artifact.
  trace.reset();
  EXPECT_TRUE(trace.predecode_live());
  EXPECT_TRUE(trace.block_fuse_live());
  EXPECT_TRUE(trace.trace_live());
}

// The trace toggle is sticky across load_program/reset like the other
// two, and traces ride on the fused tier: disabling predecode or
// fusion also takes traces down while the toggle itself is unchanged.
TEST(TraceDifferential, TraceToggleIsStickyAndRidesOnFusion) {
  const isa::Program app = net::build_loop_forward();
  auto compiled =
      CompiledProgram::compile(app, monitor::MerkleTreeHash(0x1357));
  Core core;
  core.set_trace_enabled(false);
  core.load_program(app, compiled);
  EXPECT_TRUE(core.block_fuse_live());
  EXPECT_FALSE(core.trace_live());
  core.reset();
  EXPECT_FALSE(core.trace_live()) << "toggle must survive reset";
  core.set_trace_enabled(true);
  EXPECT_TRUE(core.trace_live());
  core.set_block_fuse_enabled(false);
  EXPECT_FALSE(core.trace_live()) << "traces ride on the fused tier";
  EXPECT_TRUE(core.trace_enabled()) << "own toggle unchanged";
  core.set_block_fuse_enabled(true);
  EXPECT_TRUE(core.trace_live());
  core.set_predecode_enabled(false);
  EXPECT_FALSE(core.trace_live()) << "traces ride on the artifact";
  EXPECT_TRUE(core.trace_enabled()) << "own toggle unchanged";
}

// ---------------------------------------------------------------------
// MPSoC: artifact sharing and recovery-path equivalence
// ---------------------------------------------------------------------

TEST(TraceDifferential, TraceTablesRideTheSharedArtifact) {
  Mpsoc soc(4);
  testsupport::install_all(soc, testsupport::kEchoApp, 0x1D1D);
  const CompiledProgram* shared = soc.core(0).core().compiled_program().get();
  ASSERT_NE(shared, nullptr);
  for (std::size_t c = 1; c < soc.num_cores(); ++c) {
    EXPECT_EQ(soc.core(c).core().compiled_program().get(), shared)
        << "core " << c;
    EXPECT_EQ(soc.core(c).core().compiled_program()->trace_ops_data(),
              shared->trace_ops_data())
        << "trace tables must be the same allocation, core " << c;
  }
  EXPECT_GT(shared->num_traces(), 0u);
  EXPECT_GE(shared->num_trace_ops(), 2 * shared->num_traces())
      << "every kept trace has at least two ops";
}

// Attack traffic under every recovery policy: trace engines and the
// interpreter oracle must agree packet-for-packet, including through
// mid-trace quarantines (the mismatch that trips the quarantine
// threshold fires inside a superblock) and last-good re-images.
TEST(TraceDifferential, AttackRecoveryPoliciesMatchAcrossTiers) {
  for (RecoveryPolicy policy :
       {RecoveryPolicy::ResetAndContinue, RecoveryPolicy::QuarantineAfterK,
        RecoveryPolicy::ReinstallLastGood}) {
    RecoveryConfig config;
    config.policy = policy;
    config.violation_threshold = 3;
    config.window_packets = 8;
    Mpsoc trace_soc(2, DispatchPolicy::RoundRobin, config);
    Mpsoc oracle_soc(2, DispatchPolicy::RoundRobin, config);
    for (std::size_t c = 0; c < oracle_soc.num_cores(); ++c) {
      select_tier(oracle_soc.core(c).core(), Tier::Interpret);
      select_tier(trace_soc.core(c).core(), Tier::Trace);
    }
    testsupport::install_all(trace_soc, testsupport::kVulnApp, 0x7E57);
    testsupport::install_all(oracle_soc, testsupport::kVulnApp, 0x7E57);

    const util::Bytes attack = testsupport::attack_packet();
    util::Rng rng(0x7AC3A77C + static_cast<std::uint64_t>(policy));
    net::TrafficGenerator gen;
    for (int i = 0; i < 120; ++i) {
      util::Bytes packet = rng.below(3) == 0 ? attack : gen.next().packet;
      expect_same_result(oracle_soc.process_packet(packet),
                         trace_soc.process_packet(packet), Tier::Trace,
                         static_cast<std::size_t>(i));
    }
    const MpsocStats sa = trace_soc.aggregate_stats();
    const MpsocStats sb = oracle_soc.aggregate_stats();
    EXPECT_EQ(sa.forwarded, sb.forwarded) << recovery_policy_name(policy);
    EXPECT_EQ(sa.attacks_detected, sb.attacks_detected)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.quarantined_cores, sb.quarantined_cores)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.quarantine_events, sb.quarantine_events)
        << recovery_policy_name(policy);
    EXPECT_EQ(sa.reinstalls, sb.reinstalls) << recovery_policy_name(policy);
    // Recovery re-images must preserve each core's tier selection.
    for (std::size_t c = 0; c < oracle_soc.num_cores(); ++c) {
      EXPECT_FALSE(oracle_soc.core(c).core().predecode_live());
      EXPECT_TRUE(trace_soc.core(c).core().trace_enabled());
    }
  }
}

}  // namespace
}  // namespace sdmmon::np
