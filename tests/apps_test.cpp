// End-to-end tests of the packet-processing apps running on the simulated
// NP core (no monitor here; monitored behaviour is covered in
// attack_test.cpp and integration_test.cpp).
#include "net/apps.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "np/core.hpp"

namespace sdmmon::net {
namespace {

using np::Core;
using np::StepEvent;

struct RunResult {
  StepEvent event;
  util::Bytes output;
};

RunResult run_app(const isa::Program& app, const util::Bytes& packet) {
  Core core;
  core.load_program(app);
  core.deliver_packet(packet);
  np::StepInfo last = core.run(2'000'000);
  RunResult r{last.event, {}};
  if (core.has_output()) r.output = core.output();
  return r;
}

util::Bytes udp(std::uint8_t ttl = 64, std::uint16_t dst_port = 8080) {
  return make_udp_packet(ip(10, 1, 2, 3), ip(172, 16, 0, 9), 4444, dst_port,
                         util::bytes_of("payload-bytes"), ttl);
}

TEST(Ipv4ForwardApp, ForwardsAndDecrementsTtl) {
  auto result = run_app(build_ipv4_forward(), udp(64));
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  auto out = Ipv4Packet::parse(result.output);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ttl, 63);
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
  // Payload untouched.
  auto udp_out = UdpDatagram::parse(out->payload);
  ASSERT_TRUE(udp_out.has_value());
  EXPECT_EQ(udp_out->payload, util::bytes_of("payload-bytes"));
}

TEST(Ipv4ForwardApp, ChecksumCorrectForManyTtls) {
  auto app = build_ipv4_forward();
  for (std::uint8_t ttl : {2, 3, 17, 100, 255}) {
    auto result = run_app(app, udp(ttl));
    ASSERT_EQ(result.event, StepEvent::PacketOut) << "ttl " << int(ttl);
    EXPECT_TRUE(ipv4_checksum_ok(result.output)) << "ttl " << int(ttl);
    EXPECT_EQ(Ipv4Packet::parse(result.output)->ttl, ttl - 1);
  }
}

TEST(Ipv4ForwardApp, DropsExpiredTtl) {
  auto app = build_ipv4_forward();
  EXPECT_EQ(run_app(app, udp(1)).event, StepEvent::PacketDone);
  EXPECT_EQ(run_app(app, udp(0)).event, StepEvent::PacketDone);
}

TEST(Ipv4ForwardApp, DropsMalformed) {
  auto app = build_ipv4_forward();
  // Too short.
  EXPECT_EQ(run_app(app, util::Bytes(10, 0)).event, StepEvent::PacketDone);
  // Wrong version.
  util::Bytes bad = udp();
  bad[0] = 0x65;
  EXPECT_EQ(run_app(app, bad).event, StepEvent::PacketDone);
  // IHL shorter than minimum.
  bad = udp();
  bad[0] = 0x44;
  EXPECT_EQ(run_app(app, bad).event, StepEvent::PacketDone);
  // Empty packet.
  EXPECT_EQ(run_app(app, util::Bytes{}).event, StepEvent::PacketDone);
}

TEST(Ipv4ForwardApp, ForwardsPacketsWithOptionsUntouched) {
  Ipv4Packet p;
  p.src = ip(1, 1, 1, 1);
  p.dst = ip(2, 2, 2, 2);
  p.ttl = 9;
  Ipv4Option opt;
  opt.type = 0x07;  // record route (just some option)
  opt.data = {1, 2, 3, 4, 5, 6};
  p.options.push_back(opt);
  p.payload = util::bytes_of("x");
  auto result = run_app(build_ipv4_forward(), p.to_bytes());
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  auto out = Ipv4Packet::parse(result.output);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ttl, 8);
  ASSERT_EQ(out->options.size(), 1u);
  EXPECT_EQ(out->options[0].data, opt.data);
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
}

TEST(Ipv4CmApp, ForwardsPlainPackets) {
  auto result = run_app(build_ipv4_cm(), udp(20));
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  EXPECT_EQ(Ipv4Packet::parse(result.output)->ttl, 19);
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
}

TEST(Ipv4CmApp, BenignCmOptionLowCongestionNoMark) {
  // attack::benign_cm_packet lives in the attack lib; build inline here.
  Ipv4Packet p;
  p.src = ip(9, 9, 9, 9);
  p.dst = ip(8, 8, 8, 8);
  p.ttl = 44;
  Ipv4Option opt;
  opt.type = kCmOptionType;
  opt.data.assign(8, 0);
  opt.data[0] = 5;  // low congestion level
  p.options.push_back(opt);
  p.payload = util::bytes_of("zz");
  auto result = run_app(build_ipv4_cm(), p.to_bytes());
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  auto out = Ipv4Packet::parse(result.output);
  EXPECT_EQ(out->tos & 0x3, 0);  // no CE mark
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
}

TEST(Ipv4CmApp, BenignCmOptionHighCongestionMarksCe) {
  Ipv4Packet p;
  p.src = ip(9, 9, 9, 9);
  p.dst = ip(8, 8, 8, 8);
  p.ttl = 44;
  Ipv4Option opt;
  opt.type = kCmOptionType;
  opt.data.assign(8, 0);
  opt.data[0] = 200;  // congested
  p.options.push_back(opt);
  p.payload = util::bytes_of("zz");
  auto result = run_app(build_ipv4_cm(), p.to_bytes());
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  auto out = Ipv4Packet::parse(result.output);
  EXPECT_EQ(out->tos & 0x3, 0x3);  // CE mark set
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
}

TEST(Ipv4CmApp, IgnoresOtherOptions) {
  Ipv4Packet p;
  p.src = ip(9, 9, 9, 9);
  p.dst = ip(8, 8, 8, 8);
  p.ttl = 44;
  Ipv4Option opt;
  opt.type = 0x07;
  opt.data.assign(4, 1);
  p.options.push_back(opt);
  p.payload = util::bytes_of("zz");
  auto result = run_app(build_ipv4_cm(), p.to_bytes());
  ASSERT_EQ(result.event, StepEvent::PacketOut);
}

TEST(UdpEchoApp, SwapsAddressesAndPorts) {
  auto result = run_app(build_udp_echo(), udp(64, 7777));
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  auto out = Ipv4Packet::parse(result.output);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->src, ip(172, 16, 0, 9));
  EXPECT_EQ(out->dst, ip(10, 1, 2, 3));
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
  auto udp_out = UdpDatagram::parse(out->payload);
  ASSERT_TRUE(udp_out.has_value());
  EXPECT_EQ(udp_out->src_port, 7777);
  EXPECT_EQ(udp_out->dst_port, 4444);
  EXPECT_EQ(udp_out->payload, util::bytes_of("payload-bytes"));
}

TEST(UdpEchoApp, DropsNonUdp) {
  util::Bytes tcp = udp();
  tcp[9] = 6;  // TCP
  // Checksum now wrong but echo app doesn't validate it; protocol check
  // fires first either way.
  EXPECT_EQ(run_app(build_udp_echo(), tcp).event, StepEvent::PacketDone);
}

TEST(FirewallApp, DropsBlockedPort) {
  auto app = build_firewall({53, 8080});
  EXPECT_EQ(run_app(app, udp(64, 8080)).event, StepEvent::PacketDone);
  EXPECT_EQ(run_app(app, udp(64, 53)).event, StepEvent::PacketDone);
}

TEST(FirewallApp, ForwardsAllowedPort) {
  auto app = build_firewall({53, 8080});
  auto result = run_app(app, udp(64, 9999));
  ASSERT_EQ(result.event, StepEvent::PacketOut);
  EXPECT_EQ(Ipv4Packet::parse(result.output)->ttl, 63);
  EXPECT_TRUE(ipv4_checksum_ok(result.output));
}

TEST(FirewallApp, NonUdpBypassesFilter) {
  auto app = build_firewall({0, 1, 2});
  util::Bytes icmp = udp(64, 0);
  icmp[9] = 1;  // ICMP -- but checksum now stale; rebuild properly:
  Ipv4Packet p;
  p.src = ip(10, 1, 2, 3);
  p.dst = ip(172, 16, 0, 9);
  p.ttl = 64;
  p.protocol = 1;
  p.payload = util::bytes_of("ping");
  auto result = run_app(app, p.to_bytes());
  EXPECT_EQ(result.event, StepEvent::PacketOut);
}

TEST(FirewallApp, EmptyBlocklistForwardsEverything) {
  auto app = build_firewall({});
  EXPECT_EQ(run_app(app, udp(64, 53)).event, StepEvent::PacketOut);
}

TEST(Apps, AllSourcesAssemble) {
  EXPECT_GT(build_ipv4_forward().text.size(), 20u);
  EXPECT_GT(build_ipv4_cm().text.size(), 50u);
  EXPECT_GT(build_udp_echo().text.size(), 30u);
  EXPECT_GT(build_firewall({1, 2, 3}).text.size(), 30u);
  EXPECT_EQ(build_ipv4_forward().name, "ipv4-forward");
}

}  // namespace
}  // namespace sdmmon::net
