// High-volume stress campaign for the parallel MPSoC engine (labeled
// `stress` in CTest; excluded from quick runs with `ctest -LE stress`).
// An 8-core fleet with two deliberately vulnerable cores ingests ~1M
// mixed benign/attack packets through the asynchronous submit() path
// while a seeded FaultInjector corrupts and drops traffic in flight.
//
// Because the vulnerable app turns EVERY packet it receives into a
// violation (monitor mismatch or trap, both counted), the recovery
// outcome is exact arithmetic, not a tolerance band: each vulnerable
// core absorbs precisely kPacketsToQuarantine packets before quarantine
// -- see tests/support/test_params.hpp -- and the echo cores never
// violate, so no packet is ever undispatched.
//
// SDMMON_STRESS_PACKETS overrides the packet count (CI's TSan job runs a
// reduced campaign; the label default is the full million).
#include "np/parallel_mpsoc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "sdmmon/workload.hpp"
#include "support/test_apps.hpp"
#include "support/test_params.hpp"
#include "util/fault.hpp"

namespace sdmmon {
namespace {

using protocol::MixedWorkload;
using protocol::MixedWorkloadConfig;
using protocol::WorkItem;
using namespace testsupport;

std::uint64_t stress_packets() {
  if (const char* env = std::getenv("SDMMON_STRESS_PACKETS")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 1'000'000;
}

// The exact-math assertions below are derived from the constants in
// tests/support/test_params.hpp, which mirror the RecoveryConfig
// defaults. If a default drifts, THIS test names the divergence instead
// of a dozen inline numbers silently going stale.
TEST(MpsocStress, RecoveryMathDriftGuard) {
  np::RecoveryConfig defaults;
  EXPECT_EQ(defaults.violation_threshold, kViolationThreshold);
  EXPECT_EQ(defaults.window_packets, kWindowPackets);
  EXPECT_EQ(defaults.max_reinstalls, kMaxReinstalls);
  EXPECT_TRUE(defaults.count_traps);
  EXPECT_EQ(kPacketsToQuarantine, (kMaxReinstalls + 1) * kViolationThreshold);
}

TEST(MpsocStress, MillionPacketCampaignExactRecoveryMath) {
  constexpr std::size_t kStressCores = 8;
  constexpr std::size_t kVulnCores = 2;
  const std::uint64_t total = stress_packets();

  np::ParallelMpsoc soc(kStressCores, np::DispatchPolicy::FlowHash,
                        make_recovery_config(
                            np::RecoveryPolicy::ReinstallLastGood));
  for (std::size_t c = 0; c < kStressCores; ++c) {
    install_one(soc, c, c < kVulnCores ? kVulnApp : kEchoApp,
                0x57E0 + static_cast<std::uint32_t>(c));
  }

  MixedWorkloadConfig workload_config;
  workload_config.seed = 0x57E55;
  workload_config.attack_rate = 0.02;
  workload_config.min_payload = 8;
  workload_config.max_payload = 32;
  workload_config.attack_packet = attack_packet();
  MixedWorkload workload(workload_config);

  util::FaultProfile profile;
  profile.seed = 0xFA57;
  profile.bit_flip_rate = 0.01;   // ~1% of packets corrupted in flight
  profile.drop_rate = 0.005;      // ~0.5% of packets lost before ingest
  util::FaultInjector inject(profile);

  std::uint64_t submitted = 0;
  std::uint64_t dropped_in_flight = 0;
  const std::uint64_t kChunk = 65536;
  for (std::uint64_t begin = 0; begin < total; begin += kChunk) {
    const std::uint64_t n = std::min(kChunk, total - begin);
    std::vector<WorkItem> items =
        workload.generate_parallel(begin, n, /*threads=*/4);
    for (WorkItem& item : items) {
      if (inject.drop_message()) {
        ++dropped_in_flight;
        continue;
      }
      inject.maybe_corrupt(item.packet);
      soc.submit(std::move(item.packet), item.flow_key);
      ++submitted;
    }
  }
  soc.flush();

  ASSERT_EQ(submitted + dropped_in_flight, total);
  EXPECT_GT(dropped_in_flight, 0u);
  EXPECT_GT(inject.stats().buffers_corrupted, 0u);

  np::MpsocStats stats = soc.aggregate_stats();

  // Conservation: every submitted packet was dispatched and accounted
  // for -- the echo cores never leave the dispatch set, so nothing is
  // undispatched no matter what happens to the vulnerable pair.
  EXPECT_EQ(stats.packets, submitted);
  EXPECT_EQ(stats.undispatched, 0u);
  EXPECT_EQ(stats.healthy_cores, kStressCores - kVulnCores);

  // Exact recovery-window math (constants from test_params.hpp): each
  // vulnerable core sees only violations, so it re-images after every
  // kViolationThreshold of them, kMaxReinstalls times, then quarantines.
  EXPECT_EQ(stats.quarantine_events, kVulnCores);
  EXPECT_EQ(stats.reinstalls, kVulnCores * kMaxReinstalls);
  EXPECT_EQ(stats.violations, kVulnCores * kPacketsToQuarantine);
  EXPECT_EQ(soc.recovery().reinstall_requests(),
            kVulnCores * kMaxReinstalls);
  for (std::size_t c = 0; c < kStressCores; ++c) {
    EXPECT_EQ(soc.core_health(c), c < kVulnCores
                                      ? np::CoreHealth::Quarantined
                                      : np::CoreHealth::Healthy)
        << "core " << c;
    if (c >= kVulnCores) {
      // Echo cores never violate -- even on corrupted or attack packets,
      // which are just payload bytes to them.
      EXPECT_EQ(soc.core(c).stats().attacks_detected, 0u) << "core " << c;
      EXPECT_EQ(soc.core(c).stats().traps, 0u) << "core " << c;
    } else {
      EXPECT_EQ(soc.core(c).stats().packets, kPacketsToQuarantine)
          << "core " << c;
    }
  }

  // Every packet that did not hit a vulnerable core was forwarded.
  EXPECT_EQ(stats.forwarded, submitted - stats.violations);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(MpsocStress, SubmitBackpressureBoundsMemory) {
  // In-flight packets are bounded by the speculation window (batch_size):
  // a tiny window forces the submitting thread to block on reorder-buffer
  // backpressure many times over a 50k-packet burst; the engine must
  // neither deadlock nor lose a packet.
  np::ParallelConfig parallel;
  parallel.batch_size = 16;
  parallel.ingest_depth = 2;
  np::ParallelMpsoc soc(4, np::DispatchPolicy::RoundRobin,
                        make_recovery_config(
                            np::RecoveryPolicy::ResetAndContinue),
                        parallel);
  install_all(soc, kEchoApp, 0xBACC);

  MixedWorkloadConfig config;
  config.seed = 0xB0B;
  config.min_payload = 8;
  config.max_payload = 16;
  MixedWorkload workload(config);

  const std::uint64_t kBurst = 50'000;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    WorkItem item = workload.item(i);
    soc.submit(std::move(item.packet), item.flow_key);
  }
  soc.flush();

  np::MpsocStats stats = soc.aggregate_stats();
  EXPECT_EQ(stats.packets, kBurst);
  EXPECT_EQ(stats.forwarded, kBurst);
  EXPECT_EQ(stats.undispatched, 0u);
}

}  // namespace
}  // namespace sdmmon
