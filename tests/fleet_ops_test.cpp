#include "sdmmon/fleet_ops.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/apps.hpp"
#include "net/packet.hpp"
#include "support/test_params.hpp"

namespace sdmmon::protocol {
namespace {

// Canonical key size / clock shared with the other protocol suites.
constexpr std::size_t kKeyBits = testsupport::kTestKeyBits;
constexpr std::uint64_t kNow = testsupport::kTestNow;

struct FleetFixture {
  Manufacturer manufacturer{"m", kKeyBits, crypto::Drbg("fo-man")};
  NetworkOperator op{"o", kKeyBits, crypto::Drbg("fo-op")};
  std::vector<std::unique_ptr<NetworkProcessorDevice>> devices;
  FleetOperator fleet{op, manufacturer.public_key()};

  FleetFixture() {
    op.accept_certificate(manufacturer.certify_operator(
        op.name(), op.public_key(), kNow - 10, kNow + 1'000'000));
    for (int i = 0; i < 5; ++i) {
      devices.push_back(manufacturer.provision_device(
          "fleet-router-" + std::to_string(i), 1));
      fleet.enroll(devices.back().get());
    }
  }
};

FleetFixture& fixture() {
  static FleetFixture f;
  return f;
}

std::uint32_t param_of(const NetworkProcessorDevice& device) {
  const auto* merkle = dynamic_cast<const monitor::MerkleTreeHash*>(
      &device.mpsoc().core(0).monitor().hash());
  return merkle == nullptr ? 0 : merkle->parameter();
}

TEST(FleetOps, DeployReachesEveryDevice) {
  FleetFixture& f = fixture();
  auto result = f.fleet.deploy(net::build_ipv4_forward(), kNow);
  EXPECT_EQ(result.succeeded, 5u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.modeled_seconds_sequential, 5.0);  // >1s per install
  for (const auto& device : f.devices) {
    EXPECT_TRUE(device->has_application());
    EXPECT_EQ(device->application_name(), "ipv4-forward");
  }
}

TEST(FleetOps, ParametersDistinctAcrossFleet) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  EXPECT_TRUE(f.fleet.parameters_all_distinct());
  // Cross-check by reading the actual monitor parameters.
  std::set<std::uint32_t> params;
  for (const auto& device : f.devices) params.insert(param_of(*device));
  EXPECT_EQ(params.size(), f.devices.size());
}

TEST(FleetOps, RotationChangesEveryParameter) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  std::vector<std::uint32_t> before;
  for (const auto& device : f.devices) before.push_back(param_of(*device));

  auto result = f.fleet.rotate_parameters(kNow + 60);
  EXPECT_EQ(result.succeeded, 5u);
  EXPECT_TRUE(f.fleet.parameters_all_distinct());
  for (std::size_t i = 0; i < f.devices.size(); ++i) {
    EXPECT_NE(param_of(*f.devices[i]), before[i]) << "device " << i;
    EXPECT_EQ(f.devices[i]->application_name(), "ipv4-forward");
  }
}

TEST(FleetOps, FleetStillProcessesTrafficAfterRotation) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  (void)f.fleet.rotate_parameters(kNow + 120);
  util::Bytes pkt = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                         net::ip(10, 0, 0, 2), 1, 2,
                                         util::bytes_of("post-rotation"));
  for (const auto& device : f.devices) {
    EXPECT_EQ(device->process_packet(pkt).outcome,
              np::PacketOutcome::Forwarded);
  }
}

TEST(FleetOps, RotateWithoutDeployIsNoop) {
  Manufacturer m("m2", kKeyBits, crypto::Drbg("fo-man2"));
  NetworkOperator o("o2", kKeyBits, crypto::Drbg("fo-op2"));
  o.accept_certificate(
      m.certify_operator(o.name(), o.public_key(), 0, 4'000'000'000ull));
  FleetOperator fleet(o, m.public_key());
  auto result = fleet.rotate_parameters(kNow);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(FleetOps, DeployProducesPerDeviceReports) {
  FleetFixture& f = fixture();
  auto result = f.fleet.deploy(net::build_ipv4_forward(), kNow);
  EXPECT_TRUE(result.converged());
  ASSERT_EQ(result.reports.size(), f.devices.size());
  for (const auto& device : f.devices) {
    const DeviceReport* report = result.report_for(device->name());
    ASSERT_NE(report, nullptr) << device->name();
    EXPECT_TRUE(report->ok());
    EXPECT_EQ(report->outcome, DeviceOutcome::Installed);
    EXPECT_EQ(report->last_status, InstallStatus::Ok);
    EXPECT_EQ(report->attempts, 1u);  // reliable channel: one shot each
  }
  EXPECT_EQ(result.report_for("no-such-device"), nullptr);
  EXPECT_EQ(f.fleet.pending_devices(), 0u);
}

TEST(FleetOps, RotateSkipsUnhealthyDeviceAndResumeRecoversIt) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);

  // Sabotage one device: a garbage package leaves its last install failed.
  NetworkProcessorDevice& sick = *f.devices[2];
  util::Bytes garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_NE(sick.install_bytes(garbage, kNow), InstallStatus::Ok);
  ASSERT_FALSE(sick.last_install_ok());
  std::uint32_t sick_param = param_of(sick);

  auto rotated = f.fleet.rotate_parameters(kNow + 200);
  EXPECT_EQ(rotated.succeeded, 4u);
  EXPECT_EQ(rotated.skipped, 1u);
  const DeviceReport* report = rotated.report_for(sick.name());
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->outcome, DeviceOutcome::SkippedUnhealthy);
  // The unhealthy device was not touched: old parameter still active.
  EXPECT_EQ(param_of(sick), sick_param);
  EXPECT_EQ(f.fleet.pending_devices(), 1u);

  // resume() brings the skipped device back once the fault has cleared.
  auto resumed = f.fleet.resume(kNow + 300);
  EXPECT_EQ(resumed.succeeded, 1u);
  EXPECT_TRUE(resumed.converged());
  EXPECT_TRUE(sick.last_install_ok());
  EXPECT_NE(param_of(sick), sick_param);
  EXPECT_EQ(f.fleet.pending_devices(), 0u);
  EXPECT_TRUE(f.fleet.parameters_all_distinct());
}

TEST(FleetOps, ResumeWithoutFailuresIsNoop) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  auto result = f.fleet.resume(kNow + 400);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_TRUE(result.reports.empty());
}

TEST(FleetOps, EmptyFleetDeploys) {
  FleetFixture& f = fixture();
  FleetOperator empty(f.op, f.manufacturer.public_key());
  auto result = empty.deploy(net::build_udp_echo(), kNow);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.modeled_seconds_sequential, 0.0);
}

}  // namespace
}  // namespace sdmmon::protocol
