#include "sdmmon/fleet_ops.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/apps.hpp"
#include "net/packet.hpp"
#include "support/test_params.hpp"

namespace sdmmon::protocol {
namespace {

// Canonical key size / clock shared with the other protocol suites.
constexpr std::size_t kKeyBits = testsupport::kTestKeyBits;
constexpr std::uint64_t kNow = testsupport::kTestNow;

struct FleetFixture {
  Manufacturer manufacturer{"m", kKeyBits, crypto::Drbg("fo-man")};
  NetworkOperator op{"o", kKeyBits, crypto::Drbg("fo-op")};
  std::vector<std::unique_ptr<NetworkProcessorDevice>> devices;
  FleetOperator fleet{op, manufacturer.public_key()};

  FleetFixture() {
    op.accept_certificate(manufacturer.certify_operator(
        op.name(), op.public_key(), kNow - 10, kNow + 1'000'000));
    for (int i = 0; i < 5; ++i) {
      devices.push_back(manufacturer.provision_device(
          "fleet-router-" + std::to_string(i), 1));
      fleet.enroll(devices.back().get());
    }
  }
};

FleetFixture& fixture() {
  static FleetFixture f;
  return f;
}

std::uint32_t param_of(const NetworkProcessorDevice& device) {
  const auto* merkle = dynamic_cast<const monitor::MerkleTreeHash*>(
      &device.mpsoc().core(0).monitor().hash());
  return merkle == nullptr ? 0 : merkle->parameter();
}

TEST(FleetOps, DeployReachesEveryDevice) {
  FleetFixture& f = fixture();
  auto result = f.fleet.deploy(net::build_ipv4_forward(), kNow);
  EXPECT_EQ(result.succeeded, 5u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.modeled_seconds_sequential, 5.0);  // >1s per install
  for (const auto& device : f.devices) {
    EXPECT_TRUE(device->has_application());
    EXPECT_EQ(device->application_name(), "ipv4-forward");
  }
}

TEST(FleetOps, ParametersDistinctAcrossFleet) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  EXPECT_TRUE(f.fleet.parameters_all_distinct());
  // Cross-check by reading the actual monitor parameters.
  std::set<std::uint32_t> params;
  for (const auto& device : f.devices) params.insert(param_of(*device));
  EXPECT_EQ(params.size(), f.devices.size());
}

TEST(FleetOps, RotationChangesEveryParameter) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  std::vector<std::uint32_t> before;
  for (const auto& device : f.devices) before.push_back(param_of(*device));

  auto result = f.fleet.rotate_parameters(kNow + 60);
  EXPECT_EQ(result.succeeded, 5u);
  EXPECT_TRUE(f.fleet.parameters_all_distinct());
  for (std::size_t i = 0; i < f.devices.size(); ++i) {
    EXPECT_NE(param_of(*f.devices[i]), before[i]) << "device " << i;
    EXPECT_EQ(f.devices[i]->application_name(), "ipv4-forward");
  }
}

TEST(FleetOps, FleetStillProcessesTrafficAfterRotation) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  (void)f.fleet.rotate_parameters(kNow + 120);
  util::Bytes pkt = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                         net::ip(10, 0, 0, 2), 1, 2,
                                         util::bytes_of("post-rotation"));
  for (const auto& device : f.devices) {
    EXPECT_EQ(device->process_packet(pkt).outcome,
              np::PacketOutcome::Forwarded);
  }
}

TEST(FleetOps, RotateWithoutDeployIsNoop) {
  Manufacturer m("m2", kKeyBits, crypto::Drbg("fo-man2"));
  NetworkOperator o("o2", kKeyBits, crypto::Drbg("fo-op2"));
  o.accept_certificate(
      m.certify_operator(o.name(), o.public_key(), 0, 4'000'000'000ull));
  FleetOperator fleet(o, m.public_key());
  auto result = fleet.rotate_parameters(kNow);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(FleetOps, DeployProducesPerDeviceReports) {
  FleetFixture& f = fixture();
  auto result = f.fleet.deploy(net::build_ipv4_forward(), kNow);
  EXPECT_TRUE(result.converged());
  ASSERT_EQ(result.reports.size(), f.devices.size());
  for (const auto& device : f.devices) {
    const DeviceReport* report = result.report_for(device->name());
    ASSERT_NE(report, nullptr) << device->name();
    EXPECT_TRUE(report->ok());
    EXPECT_EQ(report->outcome, DeviceOutcome::Installed);
    EXPECT_EQ(report->last_status, InstallStatus::Ok);
    EXPECT_EQ(report->attempts, 1u);  // reliable channel: one shot each
  }
  EXPECT_EQ(result.report_for("no-such-device"), nullptr);
  EXPECT_EQ(f.fleet.pending_devices(), 0u);
}

TEST(FleetOps, RotateSkipsUnhealthyDeviceAndResumeRecoversIt) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);

  // Sabotage one device: a garbage package leaves its last install failed.
  NetworkProcessorDevice& sick = *f.devices[2];
  util::Bytes garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_NE(sick.install_bytes(garbage, kNow), InstallStatus::Ok);
  ASSERT_FALSE(sick.last_install_ok());
  std::uint32_t sick_param = param_of(sick);

  auto rotated = f.fleet.rotate_parameters(kNow + 200);
  EXPECT_EQ(rotated.succeeded, 4u);
  EXPECT_EQ(rotated.skipped, 1u);
  const DeviceReport* report = rotated.report_for(sick.name());
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->outcome, DeviceOutcome::SkippedUnhealthy);
  // The unhealthy device was not touched: old parameter still active.
  EXPECT_EQ(param_of(sick), sick_param);
  EXPECT_EQ(f.fleet.pending_devices(), 1u);

  // resume() brings the skipped device back once the fault has cleared.
  auto resumed = f.fleet.resume(kNow + 300);
  EXPECT_EQ(resumed.succeeded, 1u);
  EXPECT_TRUE(resumed.converged());
  EXPECT_TRUE(sick.last_install_ok());
  EXPECT_NE(param_of(sick), sick_param);
  EXPECT_EQ(f.fleet.pending_devices(), 0u);
  EXPECT_TRUE(f.fleet.parameters_all_distinct());
}

TEST(FleetOps, ResumeWithoutFailuresIsNoop) {
  FleetFixture& f = fixture();
  (void)f.fleet.deploy(net::build_ipv4_forward(), kNow);
  auto result = f.fleet.resume(kNow + 400);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_TRUE(result.reports.empty());
}

// ---------------------------------------------------------------------
// Deterministic per-device retry jitter
// ---------------------------------------------------------------------

TEST(FleetOpsJitter, ZeroJitterKeepsExactGeometricSchedule) {
  RetryPolicy policy;  // jitter defaults to 0
  const std::uint64_t key = device_backoff_key("router-a");
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, key, 0), 0.5);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, key, 1), 1.0);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, key, 2), 2.0);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, key, 3), 4.0);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, key, 4), 8.0);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, key, 5), 8.0);  // capped
}

TEST(FleetOpsJitter, JitterStaysInBandAndIsDeterministic) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  const std::uint64_t key = device_backoff_key("router-a");
  for (std::size_t gap = 0; gap < 6; ++gap) {
    RetryPolicy exact;  // same schedule, no jitter
    const double base = retry_backoff_s(exact, key, gap);
    const double jittered = retry_backoff_s(policy, key, gap);
    EXPECT_GE(jittered, base * 0.75) << "gap " << gap;
    EXPECT_LE(jittered, base * 1.25) << "gap " << gap;
    // Pure in (policy, key, gap): replaying gives the same schedule.
    EXPECT_DOUBLE_EQ(jittered, retry_backoff_s(policy, key, gap));
  }
}

TEST(FleetOpsJitter, DevicesDesynchronize) {
  // The point of per-device jitter: after a shared outage, devices must
  // NOT retry on the same instants. Keys come from names; schedules for
  // distinct devices differ at the first gap.
  RetryPolicy policy;
  policy.jitter = 0.25;
  std::set<std::uint64_t> keys;
  std::set<double> first_gaps;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t key =
        device_backoff_key("router-" + std::to_string(i));
    keys.insert(key);
    first_gaps.insert(retry_backoff_s(policy, key, 0));
  }
  EXPECT_EQ(keys.size(), 20u);
  EXPECT_GE(first_gaps.size(), 19u);  // spread, not resynchronized
}

// ---------------------------------------------------------------------
// Campaign snapshot / restore (operator restart survival)
// ---------------------------------------------------------------------

struct RestartFixture {
  Manufacturer manufacturer{"rm", kKeyBits, crypto::Drbg("restart-man")};
  NetworkOperator op{"ro", kKeyBits, crypto::Drbg("restart-op")};
  std::vector<std::unique_ptr<NetworkProcessorDevice>> devices;

  RestartFixture() {
    op.accept_certificate(manufacturer.certify_operator(
        op.name(), op.public_key(), kNow - 10, kNow + 1'000'000));
    for (int i = 0; i < 3; ++i) {
      devices.push_back(manufacturer.provision_device(
          "restart-router-" + std::to_string(i), 1));
    }
  }

  FleetOperator make_fleet() {
    FleetOperator fleet(op, manufacturer.public_key());
    for (auto& device : devices) fleet.enroll(device.get());
    return fleet;
  }
};

TEST(FleetOpsSnapshot, SurvivesOperatorRestartAndContinuesSchedule) {
  RestartFixture f;
  FleetOperator fleet = f.make_fleet();

  // Campaign over a dead channel: every device burns its full retry
  // allowance (4 attempts, 0.5+1+2 = 3.5s of backoff) and stays pending.
  util::FaultInjector dead(util::FaultProfile{.drop_rate = 1.0});
  LossyChannel dead_channel(dead);
  RetryPolicy retry;
  auto result = fleet.deploy(net::build_udp_echo(), kNow, NiosTimingModel(),
                             &dead_channel, retry);
  EXPECT_EQ(result.failed, 3u);
  ASSERT_EQ(fleet.pending_devices(), 3u);

  // Snapshot -> JSON -> restore onto a fresh operator console.
  CampaignSnapshot snapshot = fleet.snapshot_campaign();
  ASSERT_TRUE(snapshot.has_binary);
  ASSERT_EQ(snapshot.pending.size(), 3u);
  for (const auto& [name, state] : snapshot.pending) {
    EXPECT_EQ(state.attempts, 4u) << name;
    EXPECT_DOUBLE_EQ(state.backoff_s, 3.5) << name;
  }
  CampaignSnapshot restored = CampaignSnapshot::from_json(snapshot.to_json());
  EXPECT_EQ(restored.pending.size(), 3u);
  EXPECT_EQ(restored.binary.text, snapshot.binary.text);
  EXPECT_EQ(restored.binary.name, snapshot.binary.name);

  FleetOperator rebooted = f.make_fleet();
  EXPECT_EQ(rebooted.restore_campaign(restored), 3u);
  EXPECT_EQ(rebooted.pending_devices(), 3u);

  // The restored console CONTINUES each device's schedule: with the same
  // 4-attempt policy the allowance is already spent, so resume() fails
  // fast without touching the channel.
  auto exhausted = rebooted.resume(kNow + 100, NiosTimingModel(), nullptr,
                                   retry);
  EXPECT_EQ(exhausted.succeeded, 0u);
  for (const auto& report : exhausted.reports) {
    EXPECT_EQ(report.outcome, DeviceOutcome::BudgetExhausted);
    EXPECT_EQ(report.attempts, 4u);  // carried, no new attempts
  }

  // With a raised allowance the carried position is continued, not reset:
  // the first new attempt is attempt #5.
  FleetOperator rebooted2 = f.make_fleet();
  EXPECT_EQ(rebooted2.restore_campaign(restored), 3u);
  RetryPolicy extended = retry;
  extended.max_attempts = 6;
  auto recovered = rebooted2.resume(kNow + 200, NiosTimingModel(), nullptr,
                                    extended);
  EXPECT_EQ(recovered.succeeded, 3u);
  for (const auto& report : recovered.reports) {
    EXPECT_EQ(report.attempts, 5u) << report.device;
  }
  EXPECT_EQ(rebooted2.pending_devices(), 0u);
  for (auto& device : f.devices) {
    EXPECT_TRUE(device->last_install_ok());
    EXPECT_EQ(device->application_name(), "udp-echo");
  }
}

TEST(FleetOpsSnapshot, InProcessResumeKeepsFreshSchedule) {
  // Without a restore, resume() retains its historical semantics: the
  // pending device gets a fresh retry allowance.
  RestartFixture f;
  FleetOperator fleet = f.make_fleet();
  util::FaultInjector dead(util::FaultProfile{.drop_rate = 1.0});
  LossyChannel dead_channel(dead);
  (void)fleet.deploy(net::build_udp_echo(), kNow, NiosTimingModel(),
                     &dead_channel, RetryPolicy());
  ASSERT_EQ(fleet.pending_devices(), 3u);
  auto resumed = fleet.resume(kNow + 100);
  EXPECT_EQ(resumed.succeeded, 3u);
  for (const auto& report : resumed.reports) {
    EXPECT_EQ(report.attempts, 1u);  // fresh schedule, reliable channel
  }
}

TEST(FleetOpsSnapshot, EmptySnapshotRoundTrips) {
  RestartFixture f;
  FleetOperator fleet = f.make_fleet();
  CampaignSnapshot snapshot = fleet.snapshot_campaign();
  EXPECT_FALSE(snapshot.has_binary);
  EXPECT_TRUE(snapshot.pending.empty());
  CampaignSnapshot restored = CampaignSnapshot::from_json(snapshot.to_json());
  EXPECT_FALSE(restored.has_binary);
  FleetOperator rebooted = f.make_fleet();
  EXPECT_EQ(rebooted.restore_campaign(restored), 0u);
}

TEST(FleetOpsSnapshot, MalformedJsonIsRejected) {
  EXPECT_THROW(CampaignSnapshot::from_json("{\"schema\":99}"),
               std::runtime_error);
  EXPECT_THROW(CampaignSnapshot::from_json("not json"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Clock skew vs certificate validity during rotation
// ---------------------------------------------------------------------

TEST(FleetOpsClockSkew, SkewedDeviceRejectsRotationAsRejectedNotLost) {
  // A device whose clock runs past the operator certificate's valid_to
  // must reject the (perfectly good) package with BadCertificate -- and
  // the operator must classify that as Rejected (a device-side verdict),
  // not ChannelLost (a delivery failure): retrying cannot fix it.
  RestartFixture f;
  FleetOperator fleet = f.make_fleet();
  auto deployed = fleet.deploy(net::build_udp_echo(), kNow);
  ASSERT_TRUE(deployed.converged());

  util::FaultProfile profile;
  profile.clock_skew_rate = 1.0;   // every validity check is skewed
  profile.clock_skew_s = 2'000'000;  // past the cert's valid_to window
  util::FaultInjector skewed(profile);
  LossyChannel channel(skewed);
  auto rotated = fleet.rotate_parameters(kNow + 100, NiosTimingModel(),
                                         &channel, RetryPolicy());
  EXPECT_EQ(rotated.succeeded, 0u);
  EXPECT_EQ(rotated.failed, 3u);
  for (const auto& report : rotated.reports) {
    EXPECT_EQ(report.outcome, DeviceOutcome::Rejected) << report.device;
    EXPECT_NE(report.outcome, DeviceOutcome::ChannelLost);
    EXPECT_TRUE(report.saw_reply);
    EXPECT_EQ(report.last_status, InstallStatus::BadCertificate);
    // Permanent rejection fails fast: no retry storm against a cert
    // problem.
    EXPECT_EQ(report.attempts, 1u);
  }
  EXPECT_GE(skewed.stats().clock_skews, 3u);

  // The devices kept their previous configuration running.
  for (auto& device : f.devices) {
    EXPECT_EQ(device->application_name(), "udp-echo");
  }
}

TEST(FleetOps, EmptyFleetDeploys) {
  FleetFixture& f = fixture();
  FleetOperator empty(f.op, f.manufacturer.public_key());
  auto result = empty.deploy(net::build_udp_echo(), kNow);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.modeled_seconds_sequential, 0.0);
}

}  // namespace
}  // namespace sdmmon::protocol
