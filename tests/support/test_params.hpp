// Canonical parameter constants shared across the recovery, fleet-ops,
// differential, and stress test suites. The recovery-math assertions
// (quarantine counts, reinstall escalation, window arithmetic) are all
// derived from these named values, and RecoveryMathDriftGuard in
// mpsoc_stress_test.cpp pins them to the RecoveryConfig defaults -- so a
// default change breaks ONE obvious test instead of silently skewing the
// inline numbers scattered through the suites.
#ifndef SDMMON_TESTS_SUPPORT_TEST_PARAMS_HPP
#define SDMMON_TESTS_SUPPORT_TEST_PARAMS_HPP

#include <cstddef>
#include <cstdint>

#include "np/recovery.hpp"

namespace sdmmon::testsupport {

// ---- recovery-policy parameters (mirror RecoveryConfig{} defaults) ----
inline constexpr std::size_t kViolationThreshold = 3;   // K
inline constexpr std::size_t kWindowPackets = 64;       // sliding window
inline constexpr std::size_t kMaxReinstalls = 2;        // before quarantine

/// Packets a core absorbs before quarantine under ReinstallLastGood when
/// every packet it receives is a violation: K violations per escalation
/// epoch, one epoch per allowed re-image plus the final one.
inline constexpr std::size_t kPacketsToQuarantine =
    (kMaxReinstalls + 1) * kViolationThreshold;

inline np::RecoveryConfig make_recovery_config(
    np::RecoveryPolicy policy,
    std::size_t threshold = kViolationThreshold,
    std::size_t window = kWindowPackets,
    std::size_t max_reinstalls = kMaxReinstalls) {
  np::RecoveryConfig config;
  config.policy = policy;
  config.violation_threshold = threshold;
  config.window_packets = window;
  config.max_reinstalls = max_reinstalls;
  return config;
}

// ---- shared crypto/world parameters ----
inline constexpr std::size_t kTestKeyBits = 1024;  // tests use 1024 for speed
inline constexpr std::uint64_t kTestNow = 1'750'000'000;

}  // namespace sdmmon::testsupport

#endif  // SDMMON_TESTS_SUPPORT_TEST_PARAMS_HPP
