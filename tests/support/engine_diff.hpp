// Golden-trace differential harness: replay one seeded workload through
// the serial Mpsoc and the parallel engine and compare every observable
// -- per-packet outcomes and outputs, per-core CoreStats, recovery state
// (health, window fill, counters), and the aggregate MpsocStats. This is
// the DMON-style lockstep oracle the parallel engine is trusted through:
// any divergence in dispatch, stats accounting, or recovery decisions
// shows up as a failed field-level expectation naming the packet or core.
#ifndef SDMMON_TESTS_SUPPORT_ENGINE_DIFF_HPP
#define SDMMON_TESTS_SUPPORT_ENGINE_DIFF_HPP

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "np/mpsoc.hpp"
#include "np/parallel_mpsoc.hpp"
#include "sdmmon/workload.hpp"

namespace sdmmon::testsupport {

/// Everything observable about one engine run.
struct EngineTrace {
  std::vector<np::PacketOutcome> outcomes;      // per packet, input order
  std::vector<std::uint64_t> instructions;      // per packet
  std::vector<util::Bytes> outputs;             // per packet (Forwarded)
  std::vector<np::CoreStats> core_stats;        // per core
  std::vector<np::CoreHealth> health;           // per core
  std::vector<std::size_t> window_violations;   // per core
  np::MpsocStats stats;
  std::uint64_t reinstall_requests = 0;
};

inline void record_result(EngineTrace& trace, const np::PacketResult& r) {
  trace.outcomes.push_back(r.outcome);
  trace.instructions.push_back(r.instructions);
  trace.outputs.push_back(r.output);
}

template <typename Engine>
void record_engine_state(EngineTrace& trace, const Engine& engine) {
  for (std::size_t c = 0; c < engine.num_cores(); ++c) {
    trace.core_stats.push_back(engine.core(c).stats());
    trace.health.push_back(engine.core_health(c));
    trace.window_violations.push_back(engine.recovery().window_violations(c));
  }
  trace.stats = engine.aggregate_stats();
  trace.reinstall_requests = engine.recovery().reinstall_requests();
}

/// Replay `items` through the serial engine.
inline EngineTrace run_serial(np::Mpsoc& soc,
                              const std::vector<protocol::WorkItem>& items) {
  EngineTrace trace;
  for (const protocol::WorkItem& item : items) {
    record_result(trace, soc.process_packet(item.packet, item.flow_key));
  }
  record_engine_state(trace, soc);
  return trace;
}

/// Replay `items` through the parallel engine, submitting in chunks of
/// `chunk` packets (0 = one call) to exercise multi-batch ingestion.
inline EngineTrace run_parallel(np::ParallelMpsoc& soc,
                                const std::vector<protocol::WorkItem>& items,
                                std::size_t chunk = 0) {
  EngineTrace trace;
  if (chunk == 0) chunk = items.size() > 0 ? items.size() : 1;
  for (std::size_t off = 0; off < items.size(); off += chunk) {
    const std::size_t n = std::min(chunk, items.size() - off);
    std::vector<np::ParallelMpsoc::Packet> packets(n);
    for (std::size_t i = 0; i < n; ++i) {
      packets[i] = {items[off + i].packet, items[off + i].flow_key};
    }
    for (np::PacketResult& r : soc.process_packets(packets)) {
      record_result(trace, r);
    }
  }
  soc.flush();
  record_engine_state(trace, soc);
  return trace;
}

inline void expect_core_stats_equal(const np::CoreStats& a,
                                    const np::CoreStats& b,
                                    std::size_t core) {
  EXPECT_EQ(a.packets, b.packets) << "core " << core;
  EXPECT_EQ(a.forwarded, b.forwarded) << "core " << core;
  EXPECT_EQ(a.dropped, b.dropped) << "core " << core;
  EXPECT_EQ(a.attacks_detected, b.attacks_detected) << "core " << core;
  EXPECT_EQ(a.traps, b.traps) << "core " << core;
  EXPECT_EQ(a.instructions, b.instructions) << "core " << core;
}

/// The strict (RoundRobin / FlowHash) contract: bit-identical traces.
inline void expect_traces_identical(const EngineTrace& serial,
                                    const EngineTrace& parallel) {
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    ASSERT_EQ(serial.outcomes[i], parallel.outcomes[i])
        << "packet " << i << ": serial "
        << np::packet_outcome_name(serial.outcomes[i]) << " vs parallel "
        << np::packet_outcome_name(parallel.outcomes[i]);
    ASSERT_EQ(serial.instructions[i], parallel.instructions[i])
        << "packet " << i;
    ASSERT_EQ(serial.outputs[i], parallel.outputs[i]) << "packet " << i;
  }
  ASSERT_EQ(serial.core_stats.size(), parallel.core_stats.size());
  for (std::size_t c = 0; c < serial.core_stats.size(); ++c) {
    expect_core_stats_equal(serial.core_stats[c], parallel.core_stats[c], c);
    EXPECT_EQ(serial.health[c], parallel.health[c])
        << "core " << c << ": serial "
        << np::core_health_name(serial.health[c]) << " vs parallel "
        << np::core_health_name(parallel.health[c]);
    EXPECT_EQ(serial.window_violations[c], parallel.window_violations[c])
        << "core " << c;
  }
  EXPECT_EQ(serial.stats.packets, parallel.stats.packets);
  EXPECT_EQ(serial.stats.forwarded, parallel.stats.forwarded);
  EXPECT_EQ(serial.stats.dropped, parallel.stats.dropped);
  EXPECT_EQ(serial.stats.attacks_detected, parallel.stats.attacks_detected);
  EXPECT_EQ(serial.stats.traps, parallel.stats.traps);
  EXPECT_EQ(serial.stats.instructions, parallel.stats.instructions);
  EXPECT_EQ(serial.stats.undispatched, parallel.stats.undispatched);
  EXPECT_EQ(serial.stats.violations, parallel.stats.violations);
  EXPECT_EQ(serial.stats.quarantine_events,
            parallel.stats.quarantine_events);
  EXPECT_EQ(serial.stats.reinstalls, parallel.stats.reinstalls);
  EXPECT_EQ(serial.stats.healthy_cores, parallel.stats.healthy_cores);
  EXPECT_EQ(serial.stats.quarantined_cores,
            parallel.stats.quarantined_cores);
  EXPECT_EQ(serial.stats.offline_cores, parallel.stats.offline_cores);
  EXPECT_EQ(serial.stats.uninstalled_cores,
            parallel.stats.uninstalled_cores);
  EXPECT_EQ(serial.reinstall_requests, parallel.reinstall_requests);
}

/// The relaxed (LeastLoaded) contract: every packet is accounted for
/// exactly once and the recovery bookkeeping is internally consistent,
/// even though packet->core placement may differ from the serial engine.
inline void expect_trace_conserved(const EngineTrace& trace,
                                   std::size_t submitted) {
  EXPECT_EQ(trace.outcomes.size(), submitted);
  std::uint64_t per_core_packets = 0;
  for (const np::CoreStats& s : trace.core_stats) {
    EXPECT_EQ(s.packets,
              s.forwarded + s.dropped + s.attacks_detected + s.traps);
    per_core_packets += s.packets;
  }
  EXPECT_EQ(per_core_packets + trace.stats.undispatched, submitted);
  EXPECT_EQ(trace.stats.packets, per_core_packets);
  // RecoveryConfig default count_traps=true: every trap is a violation.
  EXPECT_EQ(trace.stats.violations,
            trace.stats.attacks_detected + trace.stats.traps);
}

}  // namespace sdmmon::testsupport

#endif  // SDMMON_TESTS_SUPPORT_ENGINE_DIFF_HPP
