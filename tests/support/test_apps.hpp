// Shared packet-handler fixtures for the MPSoC test suites: a benign echo
// app, a deliberately vulnerable app that executes packet-carried
// instructions, and the attack payload that exploits it. Install helpers
// are templated so the serial Mpsoc and ParallelMpsoc (identical install
// API) share one set of fixtures.
#ifndef SDMMON_TESTS_SUPPORT_TEST_APPS_HPP
#define SDMMON_TESTS_SUPPORT_TEST_APPS_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "util/bytes.hpp"

namespace sdmmon::testsupport {

// Echo app: copy the packet to the output buffer and commit.
inline constexpr const char* kEchoApp = R"(
main:
    li $t0, 0xFFFF0000
    lw $t1, 0($t0)        # len
    beqz $t1, drop
    li $t2, 0x30000       # src
    li $t3, 0x40000       # dst
    move $t4, $zero       # i
copy:
    addu $t5, $t2, $t4
    lbu $t6, 0($t5)
    addu $t5, $t3, $t4
    sb $t6, 0($t5)
    addiu $t4, $t4, 1
    bne $t4, $t1, copy
    li $t0, 0xFFFF0004    # commit
    sw $t1, 0($t0)
drop:
    jr $ra
)";

// An app that jumps into the packet buffer: packet-carried instructions
// execute and the monitor flags the first foreign one with P=15/16.
inline constexpr const char* kVulnApp = R"(
main:
    li $t0, 0x30000
    jr $t0
)";

// A packet carrying foreign instructions; on kVulnApp they execute and
// trip the monitor, on kEchoApp they are just payload bytes.
inline util::Bytes attack_packet() {
  isa::Program payload = isa::assemble(R"(
    addiu $t0, $t0, 1
    addiu $t0, $t0, 2
    addiu $t0, $t0, 3
    addiu $t0, $t0, 4
    addiu $t0, $t0, 5
    addiu $t0, $t0, 6
    jr $ra
  )");
  util::Bytes pkt(payload.text.size() * 4);
  for (std::size_t i = 0; i < payload.text.size(); ++i) {
    util::store_le32(payload.text[i], pkt.data() + 4 * i);
  }
  return pkt;
}

/// Install `src` on every core of `soc` (Mpsoc or ParallelMpsoc).
template <typename Soc>
void install_all(Soc& soc, const char* src, std::uint32_t param) {
  isa::Program p = isa::assemble(src);
  monitor::MerkleTreeHash hash(param);
  soc.install_all(p, monitor::extract_graph(p, hash), hash);
}

/// Install `src` on one core of `soc` (Mpsoc or ParallelMpsoc).
template <typename Soc>
void install_one(Soc& soc, std::size_t core, const char* src,
                 std::uint32_t param) {
  isa::Program p = isa::assemble(src);
  monitor::MerkleTreeHash hash(param);
  soc.install(core, p, monitor::extract_graph(p, hash),
              std::make_unique<monitor::MerkleTreeHash>(hash));
}

}  // namespace sdmmon::testsupport

#endif  // SDMMON_TESTS_SUPPORT_TEST_APPS_HPP
