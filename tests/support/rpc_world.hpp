// Shared fixture for the RPC control-plane suites: one seeded
// three-entity world (manufacturer root, certified operator, provisioned
// device) behind a running RpcServer on an ephemeral loopback port, with
// helpers to mint sealed packages and authenticated client sessions.
#ifndef SDMMON_TESTS_SUPPORT_RPC_WORLD_HPP
#define SDMMON_TESTS_SUPPORT_RPC_WORLD_HPP

#include <memory>
#include <optional>
#include <string>

#include "isa/assembler.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "sdmmon/entities.hpp"
#include "support/test_apps.hpp"
#include "support/test_params.hpp"

namespace sdmmon::testsupport {

struct RpcWorld {
  protocol::Manufacturer mfg;
  protocol::NetworkOperator op;
  std::unique_ptr<protocol::NetworkProcessorDevice> device;
  obs::Registry registry;
  rpc::DeviceHost host;
  rpc::RpcServer server;
  isa::Program binary;

  explicit RpcWorld(const std::string& seed, std::size_t cores = 2,
                    rpc::ServerOptions options = {})
      : mfg("m-" + seed, kTestKeyBits, crypto::Drbg(seed + "-mfg")),
        op("o-" + seed, kTestKeyBits, crypto::Drbg(seed + "-op")),
        device(mfg.provision_device("np-" + seed, cores)),
        host(*device, registry),
        server(host, mfg.public_key(), std::move(options)),
        binary(isa::assemble(kEchoApp)) {
    op.accept_certificate(mfg.certify_operator(
        op.name(), op.public_key(), kTestNow - 10, kTestNow + 1'000'000));
  }

  ~RpcWorld() { server.stop(); }

  /// Seal a fresh package for the device (advances the operator's
  /// sequence + parameter DRBG). NOT thread-safe -- mint packages on one
  /// thread and hand the bytes to workers.
  util::Bytes package_bytes() {
    return op.program_device(binary, device->public_key()).serialize();
  }

  std::optional<rpc::RpcClient> connect() {
    return rpc::RpcClient::connect(server.port());
  }

  /// Connect + authenticate with the operator's certificate and key.
  std::optional<rpc::RpcClient> connect_authed(
      std::uint64_t now = kTestNow) {
    auto client = connect();
    if (!client) return std::nullopt;
    if (!client->authenticate(op.certificate().serialize(),
                              op.sign(client->auth_message()), now)) {
      return std::nullopt;
    }
    return client;
  }
};

}  // namespace sdmmon::testsupport

#endif  // SDMMON_TESTS_SUPPORT_RPC_WORLD_HPP
