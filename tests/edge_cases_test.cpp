// Cross-cutting edge cases and failure injection: assembler corner
// syntax, wire-format truncation at every prefix length, monitor
// re-arming, MMIO corner addresses, and packet-boundary conditions.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/monitored_core.hpp"
#include "sdmmon/entities.hpp"

namespace sdmmon {
namespace {

// ---------------- assembler corners ----------------

TEST(AsmEdge, MultipleLabelsOnOneAddress) {
  isa::Program p = isa::assemble(R"(
a: b: c:
    nop
d:  e:  jr $ra
  )");
  EXPECT_EQ(p.symbol("a"), 0u);
  EXPECT_EQ(p.symbol("b"), 0u);
  EXPECT_EQ(p.symbol("c"), 0u);
  EXPECT_EQ(p.symbol("d"), 4u);
  EXPECT_EQ(p.symbol("e"), 4u);
}

TEST(AsmEdge, LabelAtEndOfFile) {
  isa::Program p = isa::assemble("main:\n nop\nend:\n");
  EXPECT_EQ(p.symbol("end"), 4u);
}

TEST(AsmEdge, WordDirectiveInTextSection) {
  isa::Program p = isa::assemble(R"(
main:
    jr $ra
table:
    .word 0xDEADBEEF, 42
  )");
  ASSERT_EQ(p.text.size(), 3u);
  EXPECT_EQ(p.text[1], 0xDEADBEEFu);
  EXPECT_EQ(p.text[2], 42u);
  EXPECT_EQ(p.symbol("table"), 4u);
}

TEST(AsmEdge, NegativeAndHexImmediates) {
  isa::Program p = isa::assemble(R"(
    addiu $t0, $zero, -32768
    addiu $t1, $zero, 0x7F
    ori $t2, $zero, 0xFFFF
  )");
  EXPECT_EQ(isa::decode(p.text[0]).imm, -32768);
  EXPECT_EQ(isa::decode(p.text[1]).imm, 0x7F);
  EXPECT_EQ(isa::decode(p.text[2]).imm & 0xFFFF, 0xFFFF);
}

TEST(AsmEdge, SectionsCanInterleave) {
  isa::Program p = isa::assemble(R"(
.data
x: .word 1
.text
main:
    jr $ra
.data
y: .word 2
  )");
  EXPECT_EQ(p.symbol("x"), 0x10000u);
  EXPECT_EQ(p.symbol("y"), 0x10004u);
  EXPECT_EQ(p.symbol("main"), 0u);
}

TEST(AsmEdge, JalrSingleAndTwoOperandForms) {
  isa::Program p = isa::assemble("jalr $t0\njalr $s0, $t1\n");
  isa::Instr one = isa::decode(p.text[0]);
  EXPECT_EQ(one.rd, 31);  // defaults to $ra
  EXPECT_EQ(one.rs, 8);
  isa::Instr two = isa::decode(p.text[1]);
  EXPECT_EQ(two.rd, 16);
  EXPECT_EQ(two.rs, 9);
}

TEST(AsmEdge, CommentOnlyAndWhitespaceOnlyLines) {
  isa::Program p = isa::assemble("  \n\t\n# c\n ; c2\nnop\n");
  EXPECT_EQ(p.text.size(), 1u);
}

TEST(AsmEdge, HashInsideStringLiteralIsNotComment) {
  isa::Program p = isa::assemble(".data\ns: .asciiz \"a#b\"\n");
  EXPECT_EQ(p.data[0], 'a');
  EXPECT_EQ(p.data[1], '#');
  EXPECT_EQ(p.data[2], 'b');
  EXPECT_EQ(p.data[3], 0);
}

// ---------------- wire-format truncation sweep ----------------

TEST(WireEdge, EveryTruncationOfPackageRejected) {
  // Failure injection: no prefix of a valid wire package may crash or be
  // accepted; deserialize must throw DecodeError.
  using namespace sdmmon::protocol;
  Manufacturer manufacturer("m", 1024, crypto::Drbg("edge-man"));
  NetworkOperator op("o", 1024, crypto::Drbg("edge-op"));
  op.accept_certificate(manufacturer.certify_operator(
      "o", op.public_key(), 0, 4'000'000'000ull));
  auto device = manufacturer.provision_device("edge-dev", 1);
  WirePackage wire =
      op.program_device(net::build_ipv4_forward(), device->public_key());
  util::Bytes bytes = wire.serialize();

  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 1}) {
    util::Bytes cut(bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(WirePackage::deserialize(cut), util::DecodeError)
        << "prefix " << len;
  }
}

TEST(WireEdge, ProgramTruncationRejected) {
  isa::Program p = net::build_udp_echo();
  util::Bytes bytes = p.serialize();
  for (std::size_t len : {std::size_t{2}, bytes.size() / 3,
                          bytes.size() - 2}) {
    util::Bytes cut(bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(isa::Program::deserialize(cut), util::DecodeError);
  }
}

// ---------------- monitored core corners ----------------

TEST(CoreEdge, ZeroLengthPacketHandled) {
  np::MonitoredCore core;
  isa::Program app = net::build_ipv4_forward();
  monitor::MerkleTreeHash hash(1);
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  np::PacketResult r = core.process_packet(util::Bytes{});
  EXPECT_EQ(r.outcome, np::PacketOutcome::Dropped);
}

TEST(CoreEdge, OversizedPacketTruncatedToRxBuffer) {
  np::MonitoredCore core;
  isa::Program app = net::build_ipv4_forward();
  monitor::MerkleTreeHash hash(2);
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  // 4 KiB packet into a 2 KiB buffer: no crash; app sees a consistent
  // (truncated) view and the IPv4 total-length check drops it... or the
  // header claims more than present. Either way: graceful drop/forward.
  util::Bytes huge = net::make_udp_packet(net::ip(1, 1, 1, 1),
                                          net::ip(2, 2, 2, 2), 1, 2,
                                          util::Bytes(1900, 0x33));
  huge.resize(4096, 0xEE);
  np::PacketResult r = core.process_packet(huge);
  EXPECT_TRUE(r.outcome == np::PacketOutcome::Dropped ||
              r.outcome == np::PacketOutcome::Forwarded);
}

TEST(CoreEdge, StoreToUnknownMmioTraps) {
  np::Core core;
  core.load_program(isa::assemble(R"(
main:
    li $t0, 0xFFFF0100
    sw $zero, 0($t0)
    jr $ra
  )"));
  np::StepInfo last = core.run();
  EXPECT_EQ(last.event, np::StepEvent::Trapped);
  EXPECT_EQ(last.trap, np::Trap::MemFault);
}

TEST(CoreEdge, OutputPortLatchSurvivesUntilCommit) {
  np::Core core;
  core.load_program(isa::assemble(R"(
main:
    li $t0, 0xFFFF0014    # PKT_OUT_PORT
    li $t1, 9
    sw $t1, 0($t0)
    li $t2, 0x40000
    li $t3, 0x5A
    sb $t3, 0($t2)
    li $t0, 0xFFFF0004    # commit 1 byte
    li $t1, 1
    sw $t1, 0($t0)
  )"));
  np::StepInfo last = core.run();
  ASSERT_EQ(last.event, np::StepEvent::PacketOut);
  EXPECT_EQ(core.output_port(), 9u);
  EXPECT_EQ(core.output(), (util::Bytes{0x5A}));
}

TEST(CoreEdge, SoftResetKeepsDataFullResetDoesNot) {
  np::Core core;
  core.load_program(isa::assemble(R"(
main:
    li $t0, 0x10000
    li $t1, 123
    sw $t1, 0($t0)
    jr $ra
.data
    .word 7
  )"));
  (void)core.run();
  ASSERT_EQ(core.memory().load32(0x10000).value(), 123u);
  core.soft_reset();
  EXPECT_EQ(core.memory().load32(0x10000).value(), 123u);  // data persists
  core.reset();
  EXPECT_EQ(core.memory().load32(0x10000).value(), 7u);    // re-imaged
}

// ---------------- monitor corners ----------------

TEST(MonitorEdge, EmptyGraphFlagsAnyInstruction) {
  monitor::MonitoringGraph empty;
  monitor::HardwareMonitor m(empty,
                             std::make_unique<monitor::MerkleTreeHash>(1));
  EXPECT_EQ(m.on_instruction(0x24080001), monitor::Verdict::Mismatch);
}

TEST(MonitorEdge, SingleInstructionProgram) {
  isa::Program p = isa::assemble("main:\n jr $ra\n");
  monitor::MerkleTreeHash hash(0xE);
  monitor::HardwareMonitor m(monitor::extract_graph(p, hash),
                             std::make_unique<monitor::MerkleTreeHash>(hash));
  EXPECT_EQ(m.on_instruction(p.text[0]), monitor::Verdict::Ok);
  EXPECT_TRUE(m.exit_allowed());
}

TEST(MonitorEdge, ResetMidStreamReArms) {
  isa::Program p = isa::assemble(
      "main:\n addiu $t0, $t0, 1\n addiu $t0, $t0, 2\n jr $ra\n");
  monitor::MerkleTreeHash hash(0x2222);
  monitor::HardwareMonitor m(monitor::extract_graph(p, hash),
                             std::make_unique<monitor::MerkleTreeHash>(hash));
  m.on_instruction(p.text[0]);
  m.reset();
  // After re-arm the monitor expects the entry again.
  EXPECT_EQ(m.on_instruction(p.text[0]), monitor::Verdict::Ok);
  EXPECT_EQ(m.on_instruction(p.text[1]), monitor::Verdict::Ok);
}

TEST(CoreEdge, SelfModifyingCodeDetectedByMonitor) {
  // A further attack class: code that rewrites its own text. The core
  // allows the store (no W^X, like the real soft cores); the monitor sees
  // the modified instruction's hash diverge from the graph.
  const char* src = R"(
main:
    la $t0, target        # address of the instruction to overwrite
    li $t1, 0x01294821    # addu $t1, $t1, $t1 -- a different real word
    sw $t1, 0($t0)
    nop
target:
    addiu $t2, $t2, 1     # gets overwritten before execution
    jr $ra
)";
  isa::Program p = isa::assemble(src);
  int detected = 0;
  const int trials = 64;
  for (int t = 0; t < trials; ++t) {
    monitor::MerkleTreeHash hash(0x5E1F + static_cast<std::uint32_t>(t) * 97);
    np::MonitoredCore core;
    core.install(p, monitor::extract_graph(p, hash),
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    if (core.process_packet(util::Bytes{1}).outcome ==
        np::PacketOutcome::AttackDetected) {
      ++detected;
    }
  }
  // One substituted instruction: detection rate ~ 15/16.
  EXPECT_GT(detected, trials * 3 / 4);
}

TEST(CoreEdge, SelfModifyingCodeRunsUnmonitored) {
  // Sanity: without enforcement the self-modified instruction executes.
  isa::Program p = isa::assemble(R"(
main:
    la $t0, target
    li $t1, 0x01294821    # addu $t1, $t1, $t1
    sw $t1, 0($t0)
    nop
target:
    addiu $t2, $t2, 1
    jr $ra
)");
  monitor::MerkleTreeHash hash(0x5E1F);
  np::MonitoredCore core;
  core.install(p, monitor::extract_graph(p, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  core.set_enforcement(false);
  (void)core.process_packet(util::Bytes{1});
  // $t2 unchanged (the addiu was replaced); $t1 doubled by the new addu.
  EXPECT_EQ(core.core().reg(10), 0u);                    // $t2
  EXPECT_EQ(core.core().reg(9), 2u * 0x01294821 % (1ull << 32));  // $t1+$t1
}

// ---------------- packet parsing corners ----------------

TEST(PacketEdge, NopAndEolOptionsParse) {
  // Hand-build a header with NOP, NOP, a TLV, then EOL padding.
  util::Bytes wire = net::make_udp_packet(net::ip(1, 1, 1, 1),
                                          net::ip(2, 2, 2, 2), 1, 2,
                                          util::bytes_of("x"));
  net::Ipv4Packet base = *net::Ipv4Packet::parse(wire);
  // 28-byte header: 20 + [NOP NOP type=0x07 len=4 data data EOL EOL]
  util::Bytes raw(28 + base.payload.size());
  std::copy(wire.begin(), wire.begin() + 20, raw.begin());
  raw[0] = 0x47;  // IHL 7
  raw[20] = 1;    // NOP
  raw[21] = 1;    // NOP
  raw[22] = 0x07;
  raw[23] = 4;
  raw[24] = 0xAB;
  raw[25] = 0xCD;
  raw[26] = 0;  // EOL
  raw[27] = 0;
  util::store_be16(static_cast<std::uint16_t>(raw.size()), raw.data() + 2);
  std::copy(base.payload.begin(), base.payload.end(), raw.begin() + 28);
  auto parsed = net::Ipv4Packet::parse(raw);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->options.size(), 1u);
  EXPECT_EQ(parsed->options[0].type, 0x07);
  EXPECT_EQ(parsed->options[0].data, (util::Bytes{0xAB, 0xCD}));
}

TEST(PacketEdge, MalformedOptionLengthRejected) {
  util::Bytes raw(24, 0);
  raw[0] = 0x46;  // IHL 6 (one option word)
  util::store_be16(24, raw.data() + 2);
  raw[20] = 0x07;
  raw[21] = 1;  // TLV length < 2: malformed
  EXPECT_FALSE(net::Ipv4Packet::parse(raw).has_value());
}

}  // namespace
}  // namespace sdmmon
