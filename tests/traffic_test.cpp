#include "net/traffic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/packet.hpp"

namespace sdmmon::net {
namespace {

TEST(Traffic, GeneratesValidPackets) {
  TrafficGenerator gen;
  for (int i = 0; i < 500; ++i) {
    auto g = gen.next();
    auto parsed = Ipv4Packet::parse(g.packet);
    ASSERT_TRUE(parsed.has_value()) << "packet " << i;
    EXPECT_TRUE(ipv4_checksum_ok(g.packet));
    EXPECT_EQ(parsed->protocol, 17);
    EXPECT_TRUE(UdpDatagram::parse(parsed->payload).has_value());
  }
}

TEST(Traffic, RespectsSizeBounds) {
  TrafficConfig config;
  config.min_payload = 10;
  config.max_payload = 20;
  TrafficGenerator gen(config);
  for (int i = 0; i < 200; ++i) {
    auto g = gen.next();
    auto udp = UdpDatagram::parse(Ipv4Packet::parse(g.packet)->payload);
    ASSERT_TRUE(udp.has_value());
    EXPECT_GE(udp->payload.size(), 10u);
    EXPECT_LE(udp->payload.size(), 20u);
  }
}

TEST(Traffic, CyclesThroughFlows) {
  TrafficConfig config;
  config.flows = 5;
  TrafficGenerator gen(config);
  std::set<std::uint32_t> keys;
  for (int i = 0; i < 10; ++i) keys.insert(gen.next().flow_key);
  EXPECT_EQ(keys.size(), 5u);
}

TEST(Traffic, DeterministicForSeed) {
  TrafficConfig config;
  config.seed = 99;
  TrafficGenerator a(config), b(config);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next().packet, b.next().packet);
}

TEST(Traffic, PacketsFitReceiveBuffer) {
  TrafficGenerator gen;
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(gen.next().packet.size(), 2048u);
  }
}

}  // namespace
}  // namespace sdmmon::net
