// Wire-codec fuzz suite (satellite of the RPC control-plane PR): every
// message type round-trips bit-exactly; mutated frames -- bit flips,
// truncations, length-field lies, oversized payloads, garbage -- always
// yield a *typed* FrameError or DecodeError, never a crash, hang, or
// over-read. CI runs this binary under ASan/UBSan, so "never over-reads"
// is machine-checked, not asserted by inspection.
#include <gtest/gtest.h>

#include "rpc/messages.hpp"
#include "rpc/wire.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace sdmmon::rpc {
namespace {

// Feed `bytes` to `decoder` in random-sized chunks and drain every frame.
// Returns the decoded frames; stops on decoder failure.
std::vector<Frame> drain_chunked(FrameDecoder& decoder,
                                 const util::Bytes& bytes, util::Rng& rng) {
  std::vector<Frame> frames;
  std::size_t offset = 0;
  while (offset < bytes.size() && !decoder.failed()) {
    const std::size_t chunk =
        std::min<std::size_t>(rng.range(1, 97), bytes.size() - offset);
    decoder.feed(std::span<const std::uint8_t>(bytes.data() + offset, chunk));
    offset += chunk;
    Frame frame;
    while (decoder.poll(frame) == FrameDecoder::Status::Ready) {
      frames.push_back(frame);
    }
  }
  return frames;
}

util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u32());
  return out;
}

/// One representative, fully-populated payload per message type.
std::vector<Frame> sample_frames() {
  util::Rng rng(0xC0DEC);
  std::vector<Frame> frames;

  HelloPayload hello;
  hello.device_name = "np-fuzz-0";
  hello.challenge = random_bytes(rng, 32);
  frames.push_back({MsgType::Hello, 0, hello.encode()});

  AuthPayload auth;
  auth.cert = random_bytes(rng, 700);  // shaped like a serialized cert
  auth.signature = random_bytes(rng, 128);
  auth.now = 1'750'000'000;
  frames.push_back({MsgType::Auth, 1, auth.encode()});

  AuthResultPayload auth_result;
  auth_result.ok = false;
  auth_result.detail = "certificate expired";
  frames.push_back({MsgType::AuthResult, 1, auth_result.encode()});

  InstallPayload install;
  install.purpose = InstallPurpose::Rotate;
  install.now = 1'750'000'123;
  install.package = random_bytes(rng, 4096);
  frames.push_back({MsgType::Install, 2, install.encode()});

  InstallResultPayload install_result;
  install_result.install_status = 3;
  frames.push_back({MsgType::InstallResult, 2, install_result.encode()});

  frames.push_back({MsgType::GetMetrics, 3, {}});

  MetricsPayload metrics;
  metrics.json = R"({"counters":{"rpc.requests":17},"events":[]})";
  frames.push_back({MsgType::Metrics, 3, metrics.encode()});

  GetJournalPayload get_journal;
  get_journal.cursor = 12345;
  frames.push_back({MsgType::GetJournal, 4, get_journal.encode()});

  JournalPayload journal;
  journal.next_cursor = 12400;
  journal.dropped = 7;
  for (int i = 0; i < 20; ++i) {
    journal.events.push_back({obs::EventKind::AttackDetected,
                              static_cast<std::uint64_t>(1000 + i),
                              static_cast<std::uint32_t>(i % 4), 0,
                              static_cast<std::uint64_t>(i)});
  }
  frames.push_back({MsgType::Journal, 4, journal.encode()});

  PingPayload ping;
  ping.nonce = 0xDEADBEEF;
  frames.push_back({MsgType::Ping, 5, ping.encode()});

  PongPayload pong;
  pong.nonce = 0xDEADBEEF;
  pong.packets = 1u << 20;
  pong.sessions = 8;
  frames.push_back({MsgType::Pong, 5, pong.encode()});

  frames.push_back({MsgType::Goodbye, 6, {}});
  frames.push_back({MsgType::GoodbyeAck, 6, {}});

  ErrorPayload error;
  error.code = RpcErrorCode::NotAuthorized;
  error.message = "install requires an authenticated session";
  frames.push_back({MsgType::Error, 7, error.encode()});

  return frames;
}

bool frames_equal(const Frame& a, const Frame& b) {
  return a.type == b.type && a.request_id == b.request_id &&
         a.payload == b.payload;
}

TEST(RpcCodecFuzz, RoundTripEveryMessageType) {
  util::Rng rng(0x11);
  const std::vector<Frame> frames = sample_frames();
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(kMaxMsgType));

  // One stream carrying all types, random chunking.
  util::Bytes stream;
  for (const Frame& f : frames) {
    util::Bytes encoded = encode_frame(f);
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }
  FrameDecoder decoder;
  std::vector<Frame> decoded = drain_chunked(decoder, stream, rng);
  decoder.finish();
  EXPECT_FALSE(decoder.failed());
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(frames_equal(decoded[i], frames[i])) << "frame " << i;
  }
}

TEST(RpcCodecFuzz, TypedPayloadsRoundTrip) {
  // Re-decode each sample payload through its typed codec and re-encode:
  // byte-identical both directions.
  for (const Frame& f : sample_frames()) {
    util::Bytes reencoded;
    switch (f.type) {
      case MsgType::Hello:
        reencoded = HelloPayload::decode(f.payload).encode();
        break;
      case MsgType::Auth:
        reencoded = AuthPayload::decode(f.payload).encode();
        break;
      case MsgType::AuthResult:
        reencoded = AuthResultPayload::decode(f.payload).encode();
        break;
      case MsgType::Install:
        reencoded = InstallPayload::decode(f.payload).encode();
        break;
      case MsgType::InstallResult:
        reencoded = InstallResultPayload::decode(f.payload).encode();
        break;
      case MsgType::GetJournal:
        reencoded = GetJournalPayload::decode(f.payload).encode();
        break;
      case MsgType::Journal:
        reencoded = JournalPayload::decode(f.payload).encode();
        break;
      case MsgType::Metrics:
        reencoded = MetricsPayload::decode(f.payload).encode();
        break;
      case MsgType::Ping:
        reencoded = PingPayload::decode(f.payload).encode();
        break;
      case MsgType::Pong:
        reencoded = PongPayload::decode(f.payload).encode();
        break;
      case MsgType::Error:
        reencoded = ErrorPayload::decode(f.payload).encode();
        break;
      case MsgType::GetMetrics:
      case MsgType::Goodbye:
      case MsgType::GoodbyeAck:
        continue;  // empty payloads
    }
    EXPECT_EQ(reencoded, f.payload)
        << "payload round-trip for " << msg_type_name(f.type);
  }
}

TEST(RpcCodecFuzz, HeaderFieldViolationsAreTyped) {
  const util::Bytes good = encode_frame({MsgType::Ping, 9, {}});

  struct Case {
    std::size_t offset;
    std::uint8_t value;
    FrameError expected;
  };
  const Case cases[] = {
      {0, 0x00, FrameError::BadMagic},     // magic byte
      {4, 0x7F, FrameError::BadVersion},   // version
      {6, 0x01, FrameError::BadReserved},  // reserved hi byte
      {7, 0xFF, FrameError::BadReserved},  // reserved lo byte
      {5, 0x00, FrameError::BadType},      // type 0
      {5, kMaxMsgType + 1, FrameError::BadType},
      {5, 0xFF, FrameError::BadType},
  };
  for (const Case& c : cases) {
    util::Bytes bad = good;
    bad[c.offset] = c.value;
    FrameDecoder decoder;
    decoder.feed(bad);
    Frame out;
    EXPECT_EQ(decoder.poll(out), FrameDecoder::Status::Failed);
    EXPECT_EQ(decoder.error(), c.expected)
        << "offset " << c.offset << " value " << int(c.value);
    // Latched: more bytes do not resurrect the stream.
    decoder.feed(good);
    EXPECT_EQ(decoder.poll(out), FrameDecoder::Status::Failed);
    EXPECT_EQ(decoder.error(), c.expected);
  }
}

TEST(RpcCodecFuzz, LengthFieldLieIsRejectedBeforeBuffering) {
  // A header claiming a 4 GiB payload must be rejected from the header
  // alone -- the decoder may not wait for (or allocate) the claimed size.
  util::Bytes frame = encode_frame({MsgType::Install, 1, util::Bytes(64)});
  frame[16] = 0xFF;  // payload_len := 0xFFFFFFxx
  frame[17] = 0xFF;
  frame[18] = 0xFF;
  FrameDecoder decoder;
  decoder.feed(std::span<const std::uint8_t>(frame.data(), kHeaderBytes));
  Frame out;
  EXPECT_EQ(decoder.poll(out), FrameDecoder::Status::Failed);
  EXPECT_EQ(decoder.error(), FrameError::Oversized);
  EXPECT_LE(decoder.buffered(), kHeaderBytes);

  // Sender side enforces the same cap.
  Frame oversized{MsgType::Install, 1, util::Bytes(kMaxPayloadBytes + 1)};
  EXPECT_THROW(encode_frame(oversized), std::length_error);
}

TEST(RpcCodecFuzz, CrcCatchesBitDamage) {
  util::Rng rng(0x22);
  const util::Bytes good =
      encode_frame({MsgType::Metrics, 3, random_bytes(rng, 256)});
  for (int i = 0; i < 200; ++i) {
    util::Bytes bad = good;
    // Flip one random bit anywhere in payload or CRC (header bits often
    // hit the field validators first, which is fine too).
    const std::size_t bit = rng.below(bad.size() * 8);
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameDecoder decoder;
    decoder.feed(bad);
    Frame out;
    FrameDecoder::Status status = decoder.poll(out);
    if (status == FrameDecoder::Status::NeedMore) {
      // The flip grew the length field: the decoder legitimately waits
      // for the claimed bytes -- end-of-stream must then expose it.
      decoder.finish();
      status = decoder.poll(out);
    }
    EXPECT_EQ(status, FrameDecoder::Status::Failed) << "bit " << bit;
  }
}

TEST(RpcCodecFuzz, TruncatedStreamIsTyped) {
  const util::Bytes good = encode_frame({MsgType::Goodbye, 4, {}});
  for (std::size_t keep = 1; keep < good.size(); ++keep) {
    FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(good.data(), keep));
    Frame out;
    EXPECT_EQ(decoder.poll(out), FrameDecoder::Status::NeedMore);
    decoder.finish();
    EXPECT_EQ(decoder.poll(out), FrameDecoder::Status::Failed);
    EXPECT_EQ(decoder.error(), FrameError::Truncated) << "keep " << keep;
  }
}

// The bulk fuzz loop: >= 6000 mutated frames through the frame decoder.
// Every outcome must be one of (a) clean decode of an unmutated survivor,
// (b) a typed FrameError; and the decoder must never buffer unboundedly.
TEST(RpcCodecFuzz, MutatedFramesNeverCrashTheDecoder) {
  util::FaultProfile profile;
  profile.seed = 0xF0220;
  util::FaultInjector faults(profile);
  util::Rng& rng = faults.rng();
  const std::vector<Frame> pool = sample_frames();

  int typed_failures = 0;
  int clean_decodes = 0;
  constexpr int kIterations = 6000;
  for (int i = 0; i < kIterations; ++i) {
    util::Bytes bytes = encode_frame(pool[rng.below(pool.size())]);
    // Mutation menu: bit flips, truncation, length-field rewrite (with
    // the CRC left stale or patched), random suffix garbage, and an
    // unmutated control so the clean-decode path is provably exercised.
    switch (rng.below(6)) {
      case 0:
        faults.flip_bits(bytes, static_cast<std::uint32_t>(rng.range(1, 8)));
        break;
      case 1:
        faults.truncate(bytes);
        break;
      case 2: {  // length-field lie, CRC left stale
        for (int b = 0; b < 4; ++b) {
          bytes[16 + b] = static_cast<std::uint8_t>(rng.next_u32());
        }
        break;
      }
      case 3: {  // length-field lie with a *recomputed* CRC: the frame is
                 // internally consistent, so only the cap/size checks can
                 // reject it
        for (int b = 0; b < 4; ++b) {
          bytes[16 + b] = static_cast<std::uint8_t>(rng.next_u32());
        }
        const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
            bytes.data(), bytes.size() - kTrailerBytes));
        util::store_be32(crc, bytes.data() + bytes.size() - kTrailerBytes);
        break;
      }
      case 4: {  // append garbage after the valid frame
        util::Bytes junk = random_bytes(rng, rng.range(1, 64));
        bytes.insert(bytes.end(), junk.begin(), junk.end());
        break;
      }
      case 5:  // control: unmutated
        break;
    }

    FrameDecoder decoder;
    std::vector<Frame> decoded = drain_chunked(decoder, bytes, rng);
    decoder.finish();
    Frame out;
    decoder.poll(out);  // surface a Truncated latch, if any
    if (decoder.failed()) {
      ++typed_failures;
      EXPECT_NE(frame_error_name(decoder.error()), std::string("?"));
    } else {
      ++clean_decodes;
      ASSERT_LE(decoded.size(), 2u);
      for (const Frame& f : decoded) {
        EXPECT_LE(f.payload.size(), kMaxPayloadBytes);
      }
    }
    EXPECT_LE(decoder.buffered(),
              kHeaderBytes + kMaxPayloadBytes + kTrailerBytes);
  }
  // The menu is overwhelmingly destructive; both buckets must be hit.
  EXPECT_GT(typed_failures, kIterations / 2);
  EXPECT_GT(clean_decodes, 0);
}

// >= 5000 mutated payloads through every typed decoder: the only allowed
// outcomes are a successful decode or util::DecodeError.
TEST(RpcCodecFuzz, MutatedPayloadsOnlyThrowDecodeError) {
  util::FaultProfile profile;
  profile.seed = 0xF0221;
  util::FaultInjector faults(profile);
  util::Rng& rng = faults.rng();
  const std::vector<Frame> pool = sample_frames();

  auto decode_typed = [](MsgType type, const util::Bytes& payload) {
    switch (type) {
      case MsgType::Hello: (void)HelloPayload::decode(payload); break;
      case MsgType::Auth: (void)AuthPayload::decode(payload); break;
      case MsgType::AuthResult:
        (void)AuthResultPayload::decode(payload);
        break;
      case MsgType::Install: (void)InstallPayload::decode(payload); break;
      case MsgType::InstallResult:
        (void)InstallResultPayload::decode(payload);
        break;
      case MsgType::GetJournal:
        (void)GetJournalPayload::decode(payload);
        break;
      case MsgType::Journal: (void)JournalPayload::decode(payload); break;
      case MsgType::Metrics: (void)MetricsPayload::decode(payload); break;
      case MsgType::Ping: (void)PingPayload::decode(payload); break;
      case MsgType::Pong: (void)PongPayload::decode(payload); break;
      case MsgType::Error: (void)ErrorPayload::decode(payload); break;
      case MsgType::GetMetrics:
      case MsgType::Goodbye:
      case MsgType::GoodbyeAck:
        break;
    }
  };

  int decode_errors = 0;
  constexpr int kIterations = 5000;
  for (int i = 0; i < kIterations; ++i) {
    const Frame& sample = pool[rng.below(pool.size())];
    util::Bytes payload;
    switch (rng.below(4)) {
      case 0:
        payload = sample.payload;
        faults.flip_bits(payload,
                         static_cast<std::uint32_t>(rng.range(1, 16)));
        break;
      case 1:
        payload = sample.payload;
        faults.truncate(payload);
        break;
      case 2:  // pure garbage
        payload = random_bytes(rng, rng.below(512));
        break;
      case 3: {  // garbage appended: trailing bytes must be rejected
        payload = sample.payload;
        util::Bytes junk = random_bytes(rng, rng.range(1, 32));
        payload.insert(payload.end(), junk.begin(), junk.end());
        break;
      }
    }
    try {
      decode_typed(sample.type, payload);
    } catch (const util::DecodeError&) {
      ++decode_errors;  // the one permitted failure mode
    }
    // Any other exception type escapes and fails the test; memory errors
    // are caught by the sanitizer jobs.
  }
  EXPECT_GT(decode_errors, kIterations / 2);
}

TEST(RpcCodecFuzz, ByteAtATimeDeliveryDecodesEverything) {
  const std::vector<Frame> frames = sample_frames();
  util::Bytes stream;
  for (const Frame& f : frames) {
    util::Bytes encoded = encode_frame(f);
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }
  FrameDecoder decoder;
  std::vector<Frame> decoded;
  Frame out;
  for (std::uint8_t byte : stream) {
    decoder.feed(std::span<const std::uint8_t>(&byte, 1));
    while (decoder.poll(out) == FrameDecoder::Status::Ready) {
      decoded.push_back(out);
    }
  }
  ASSERT_FALSE(decoder.failed());
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(frames_equal(decoded[i], frames[i]));
  }
  EXPECT_EQ(decoder.frames_decoded(), frames.size());
}

}  // namespace
}  // namespace sdmmon::rpc
