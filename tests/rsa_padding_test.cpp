#include "crypto/rsa_padding.hpp"

#include <gtest/gtest.h>

namespace sdmmon::crypto {
namespace {

const RsaKeyPair& test_key() {
  static const RsaKeyPair kp = [] {
    Drbg d("oaep-pss-test-key");
    return rsa_generate(1024, d);
  }();
  return kp;
}

TEST(Mgf1, KnownVector) {
  // MGF1-SHA256("foo", 8) per independent reference implementations.
  util::Bytes seed = util::bytes_of("foo");
  util::Bytes mask = mgf1_sha256(seed, 8);
  EXPECT_EQ(mask.size(), 8u);
  // Self-consistency: prefix property.
  util::Bytes longer = mgf1_sha256(seed, 40);
  EXPECT_TRUE(std::equal(mask.begin(), mask.end(), longer.begin()));
}

TEST(Mgf1, DeterministicAndLengthExact) {
  util::Bytes seed = util::bytes_of("seed");
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 100u}) {
    auto a = mgf1_sha256(seed, len);
    auto b = mgf1_sha256(seed, len);
    EXPECT_EQ(a.size(), len);
    EXPECT_EQ(a, b);
  }
  EXPECT_NE(mgf1_sha256(util::bytes_of("a"), 32),
            mgf1_sha256(util::bytes_of("b"), 32));
}

TEST(Oaep, RoundTrip) {
  const auto& kp = test_key();
  Drbg d("oaep-rt");
  util::Bytes msg = util::bytes_of("wrapped K_sym via OAEP");
  util::Bytes ct = rsa_oaep_encrypt(kp.pub, msg, d);
  EXPECT_EQ(ct.size(), kp.pub.modulus_bytes());
  auto pt = rsa_oaep_decrypt(kp.priv, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(Oaep, RandomizedCiphertexts) {
  const auto& kp = test_key();
  Drbg d("oaep-rand");
  util::Bytes msg = util::bytes_of("same");
  EXPECT_NE(rsa_oaep_encrypt(kp.pub, msg, d),
            rsa_oaep_encrypt(kp.pub, msg, d));
}

TEST(Oaep, EmptyAndMaxLengthMessages) {
  const auto& kp = test_key();
  Drbg d("oaep-len");
  util::Bytes empty;
  auto ct = rsa_oaep_encrypt(kp.pub, empty, d);
  EXPECT_EQ(rsa_oaep_decrypt(kp.priv, ct), empty);

  util::Bytes max_msg(kp.pub.modulus_bytes() - 2 * 32 - 2, 0x7E);
  ct = rsa_oaep_encrypt(kp.pub, max_msg, d);
  EXPECT_EQ(rsa_oaep_decrypt(kp.priv, ct), max_msg);

  util::Bytes too_long(kp.pub.modulus_bytes() - 2 * 32 - 1, 0);
  EXPECT_THROW(rsa_oaep_encrypt(kp.pub, too_long, d), RsaError);
}

TEST(Oaep, TamperedCiphertextRejected) {
  const auto& kp = test_key();
  Drbg d("oaep-tamper");
  util::Bytes ct = rsa_oaep_encrypt(kp.pub, util::bytes_of("secret"), d);
  for (std::size_t pos : {std::size_t{0}, std::size_t{17}, ct.size() - 1}) {
    util::Bytes bad = ct;
    bad[pos] ^= 0x04;
    EXPECT_EQ(rsa_oaep_decrypt(kp.priv, bad), std::nullopt) << pos;
  }
  EXPECT_EQ(rsa_oaep_decrypt(kp.priv, util::Bytes(5, 1)), std::nullopt);
}

TEST(Oaep, WrongKeyRejected) {
  const auto& kp = test_key();
  Drbg d("oaep-wrongkey");
  auto other = rsa_generate(1024, d);
  util::Bytes ct = rsa_oaep_encrypt(kp.pub, util::bytes_of("x"), d);
  EXPECT_EQ(rsa_oaep_decrypt(other.priv, ct), std::nullopt);
}

TEST(Pss, SignVerifyRoundTrip) {
  const auto& kp = test_key();
  Drbg d("pss-rt");
  util::Bytes msg = util::bytes_of("signed install package");
  util::Bytes sig = rsa_pss_sign(kp.priv, msg, d);
  EXPECT_TRUE(rsa_pss_verify(kp.pub, msg, sig));
}

TEST(Pss, SignaturesAreRandomizedButAllVerify) {
  const auto& kp = test_key();
  Drbg d("pss-rand");
  util::Bytes msg = util::bytes_of("m");
  util::Bytes s1 = rsa_pss_sign(kp.priv, msg, d);
  util::Bytes s2 = rsa_pss_sign(kp.priv, msg, d);
  EXPECT_NE(s1, s2);  // fresh salt each time
  EXPECT_TRUE(rsa_pss_verify(kp.pub, msg, s1));
  EXPECT_TRUE(rsa_pss_verify(kp.pub, msg, s2));
}

TEST(Pss, RejectsModifiedMessage) {
  const auto& kp = test_key();
  Drbg d("pss-mod");
  util::Bytes sig = rsa_pss_sign(kp.priv, util::bytes_of("hello"), d);
  EXPECT_FALSE(rsa_pss_verify(kp.pub, util::bytes_of("hellO"), sig));
}

TEST(Pss, RejectsModifiedSignature) {
  const auto& kp = test_key();
  Drbg d("pss-sig");
  util::Bytes msg = util::bytes_of("msg");
  util::Bytes sig = rsa_pss_sign(kp.priv, msg, d);
  for (std::size_t pos : {std::size_t{0}, sig.size() / 2, sig.size() - 1}) {
    util::Bytes bad = sig;
    bad[pos] ^= 0x10;
    EXPECT_FALSE(rsa_pss_verify(kp.pub, msg, bad)) << pos;
  }
  EXPECT_FALSE(rsa_pss_verify(kp.pub, msg, util::Bytes(sig.size() - 1, 0)));
}

TEST(Pss, RejectsWrongKey) {
  const auto& kp = test_key();
  Drbg d("pss-wrong");
  auto other = rsa_generate(1024, d);
  util::Bytes msg = util::bytes_of("msg");
  util::Bytes sig = rsa_pss_sign(kp.priv, msg, d);
  EXPECT_FALSE(rsa_pss_verify(other.pub, msg, sig));
}

TEST(Pss, CrossSchemeSignaturesRejected) {
  // A PKCS#1 v1.5 signature must not verify as PSS and vice versa.
  const auto& kp = test_key();
  Drbg d("pss-cross");
  util::Bytes msg = util::bytes_of("msg");
  util::Bytes v15 = rsa_sign(kp.priv, msg);
  util::Bytes pss = rsa_pss_sign(kp.priv, msg, d);
  EXPECT_FALSE(rsa_pss_verify(kp.pub, msg, v15));
  EXPECT_FALSE(rsa_verify(kp.pub, msg, pss));
}

}  // namespace
}  // namespace sdmmon::crypto
