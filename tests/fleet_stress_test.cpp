// Fleet-scale soak: a full staged rollout over a million modeled devices
// and a poisoned-release halt at the same scale -- the "no thread per
// device" claim exercised at its design point. Stress-labeled (excluded
// from tier-1 by `ctest -LE stress`).
//
// SDMMON_STRESS_DEVICES overrides the fleet size (CI's sanitizer jobs
// run a reduced fleet; the label default is the full million).
#include "fleet/service.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sdmmon::fleet {
namespace {

std::size_t stress_devices() {
  if (const char* env = std::getenv("SDMMON_STRESS_DEVICES")) {
    const std::size_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 1'000'000;
}

ReleaseBehavior clean_behavior() {
  ReleaseBehavior behavior;
  behavior.loss_rate = 0.02;
  behavior.bake_ms = 20'000;
  return behavior;
}

TEST(FleetStress, MillionDeviceRolloutConverges) {
  const std::size_t devices = stress_devices();
  Simulator sim;
  FleetConfig config;
  config.devices = devices;
  config.seed = 0x50AC;
  FleetService service(sim, config);
  Release release;
  release.version = 1;
  release.app_name = "soak";
  release.behavior = clean_behavior();
  service.start_rollout(release);
  sim.run();

  ASSERT_TRUE(service.rollout_done());
  RolloutReport report = service.report();
  EXPECT_FALSE(report.halted);
  EXPECT_TRUE(report.reached_t90);
  EXPECT_EQ(report.health.healthy + report.health.unreachable, devices);
  // With loss 0.02 and 4 attempts, unreachable is a ~1.6e-7 tail.
  EXPECT_LT(report.health.unreachable, devices / 10'000 + 10);
  EXPECT_GT(report.health_score, 99.0);
}

TEST(FleetStress, MillionDevicePoisonedReleaseHaltsInCanary) {
  const std::size_t devices = stress_devices();
  Simulator sim;
  FleetConfig config;
  config.devices = devices;
  config.seed = 0x50AD;
  FleetService service(sim, config);
  Release release;
  release.version = 2;
  release.app_name = "poisoned-soak";
  release.behavior = clean_behavior();
  release.behavior.quarantine_rate = 0.5;
  service.start_rollout(release);
  sim.run();

  ASSERT_TRUE(service.rollout_done());
  RolloutReport report = service.report();
  ASSERT_TRUE(report.halted);
  EXPECT_EQ(report.halted_wave, 0u);
  // Blast radius stays inside the 1% canary wave even at 10^6 devices.
  // Wave membership is a rank hash, so the wave size itself is binomial
  // around 1% -- bound affected by the actual wave, and the wave at 2%.
  ASSERT_FALSE(report.waves.empty());
  EXPECT_LE(report.affected, report.waves[0].targeted);
  EXPECT_LE(report.waves[0].targeted, devices / 50);
  EXPECT_EQ(report.rollbacks, report.affected);
}

}  // namespace
}  // namespace sdmmon::fleet
