#include "np/memory.hpp"

#include <gtest/gtest.h>

namespace sdmmon::np {
namespace {

TEST(Memory, Load32StoreRoundTrip) {
  Memory m;
  EXPECT_EQ(m.store32(kDataBase, 0xDEADBEEF), MemFault::None);
  EXPECT_EQ(m.load32(kDataBase).value(), 0xDEADBEEFu);
}

TEST(Memory, LittleEndianByteOrder) {
  Memory m;
  ASSERT_EQ(m.store32(kDataBase, 0x11223344), MemFault::None);
  EXPECT_EQ(m.load8(kDataBase).value(), 0x44);
  EXPECT_EQ(m.load8(kDataBase + 3).value(), 0x11);
  EXPECT_EQ(m.load16(kDataBase).value(), 0x3344);
  EXPECT_EQ(m.load16(kDataBase + 2).value(), 0x1122);
}

TEST(Memory, Store8And16) {
  Memory m;
  EXPECT_EQ(m.store8(kStackBase + 1, 0xAB), MemFault::None);
  EXPECT_EQ(m.load8(kStackBase + 1).value(), 0xAB);
  EXPECT_EQ(m.store16(kStackBase + 2, 0xCDEF), MemFault::None);
  EXPECT_EQ(m.load16(kStackBase + 2).value(), 0xCDEF);
}

TEST(Memory, UnalignedAccessFaults) {
  Memory m;
  EXPECT_EQ(m.store32(kDataBase + 1, 0), MemFault::Unaligned);
  EXPECT_EQ(m.store16(kDataBase + 1, 0), MemFault::Unaligned);
  EXPECT_FALSE(m.load32(kDataBase + 2).has_value());
  EXPECT_FALSE(m.load16(kDataBase + 1).has_value());
  EXPECT_EQ(m.load_fault(kDataBase + 2, 4), MemFault::Unaligned);
}

TEST(Memory, OutOfRangeAccessFaults) {
  Memory m;
  // Hole above the packet-out region.
  const std::uint32_t hole = kPktOutBase + kPktOutSize + 0x100;
  EXPECT_EQ(m.store32(hole, 1), MemFault::OutOfRange);
  EXPECT_FALSE(m.load32(hole).has_value());
  EXPECT_EQ(m.load_fault(hole, 4), MemFault::OutOfRange);
  // Far beyond all regions (but below MMIO).
  EXPECT_FALSE(m.load8(0x0010'0000).has_value());
}

TEST(Memory, RegionBoundaryStraddleFaults) {
  Memory m;
  // Last word inside the text region works; one past straddles out.
  EXPECT_EQ(m.store32(kTextBase + kTextSize - 4, 7), MemFault::None);
  EXPECT_FALSE(m.load32(kTextBase + kTextSize - 2).has_value());
}

TEST(Memory, AllFiveRegionsExist) {
  Memory m;
  for (std::uint32_t base :
       {kTextBase, kDataBase, kStackBase, kPktInBase, kPktOutBase}) {
    EXPECT_EQ(m.store32(base, 0x55AA55AA), MemFault::None) << base;
    EXPECT_EQ(m.load32(base).value(), 0x55AA55AAu) << base;
  }
}

TEST(Memory, PacketBufferIsExecutableStorage) {
  // No execute protection: reads from the packet-in region succeed, which
  // is exactly the property the code-injection attack exploits.
  Memory m;
  ASSERT_EQ(m.store32(kPktInBase + 8, 0x01234567), MemFault::None);
  EXPECT_EQ(m.load32(kPktInBase + 8).value(), 0x01234567u);
}

TEST(Memory, BlockCopyRoundTrip) {
  Memory m;
  util::Bytes data = {1, 2, 3, 4, 5};
  m.write_block(kDataBase + 100, data);
  EXPECT_EQ(m.read_block(kDataBase + 100, 5), data);
}

TEST(Memory, BlockCopyOverflowThrows) {
  Memory m;
  util::Bytes big(kPktInSize + 1, 0xFF);
  EXPECT_THROW(m.write_block(kPktInBase, big), std::out_of_range);
  EXPECT_THROW(m.read_block(kPktInBase, kPktInSize + 1), std::out_of_range);
}

TEST(Memory, ClearZeroesEverything) {
  Memory m;
  ASSERT_EQ(m.store32(kDataBase, 0xFFFFFFFF), MemFault::None);
  m.clear();
  EXPECT_EQ(m.load32(kDataBase).value(), 0u);
}

}  // namespace
}  // namespace sdmmon::np
