#include "np/memory.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

namespace sdmmon::np {
namespace {

TEST(Memory, Load32StoreRoundTrip) {
  Memory m;
  EXPECT_EQ(m.store32(kDataBase, 0xDEADBEEF), MemFault::None);
  EXPECT_EQ(m.load32(kDataBase).value(), 0xDEADBEEFu);
}

TEST(Memory, LittleEndianByteOrder) {
  Memory m;
  ASSERT_EQ(m.store32(kDataBase, 0x11223344), MemFault::None);
  EXPECT_EQ(m.load8(kDataBase).value(), 0x44);
  EXPECT_EQ(m.load8(kDataBase + 3).value(), 0x11);
  EXPECT_EQ(m.load16(kDataBase).value(), 0x3344);
  EXPECT_EQ(m.load16(kDataBase + 2).value(), 0x1122);
}

TEST(Memory, Store8And16) {
  Memory m;
  EXPECT_EQ(m.store8(kStackBase + 1, 0xAB), MemFault::None);
  EXPECT_EQ(m.load8(kStackBase + 1).value(), 0xAB);
  EXPECT_EQ(m.store16(kStackBase + 2, 0xCDEF), MemFault::None);
  EXPECT_EQ(m.load16(kStackBase + 2).value(), 0xCDEF);
}

TEST(Memory, UnalignedAccessFaults) {
  Memory m;
  EXPECT_EQ(m.store32(kDataBase + 1, 0), MemFault::Unaligned);
  EXPECT_EQ(m.store16(kDataBase + 1, 0), MemFault::Unaligned);
  EXPECT_FALSE(m.load32(kDataBase + 2).has_value());
  EXPECT_FALSE(m.load16(kDataBase + 1).has_value());
  EXPECT_EQ(m.load_fault(kDataBase + 2, 4), MemFault::Unaligned);
}

TEST(Memory, OutOfRangeAccessFaults) {
  Memory m;
  // Hole above the packet-out region.
  const std::uint32_t hole = kPktOutBase + kPktOutSize + 0x100;
  EXPECT_EQ(m.store32(hole, 1), MemFault::OutOfRange);
  EXPECT_FALSE(m.load32(hole).has_value());
  EXPECT_EQ(m.load_fault(hole, 4), MemFault::OutOfRange);
  // Far beyond all regions (but below MMIO).
  EXPECT_FALSE(m.load8(0x0010'0000).has_value());
}

TEST(Memory, RegionBoundaryStraddleFaults) {
  Memory m;
  // Last word inside the text region works; one past straddles out.
  EXPECT_EQ(m.store32(kTextBase + kTextSize - 4, 7), MemFault::None);
  EXPECT_FALSE(m.load32(kTextBase + kTextSize - 2).has_value());
}

TEST(Memory, AllFiveRegionsExist) {
  Memory m;
  for (std::uint32_t base :
       {kTextBase, kDataBase, kStackBase, kPktInBase, kPktOutBase}) {
    EXPECT_EQ(m.store32(base, 0x55AA55AA), MemFault::None) << base;
    EXPECT_EQ(m.load32(base).value(), 0x55AA55AAu) << base;
  }
}

TEST(Memory, PacketBufferIsExecutableStorage) {
  // No execute protection: reads from the packet-in region succeed, which
  // is exactly the property the code-injection attack exploits.
  Memory m;
  ASSERT_EQ(m.store32(kPktInBase + 8, 0x01234567), MemFault::None);
  EXPECT_EQ(m.load32(kPktInBase + 8).value(), 0x01234567u);
}

TEST(Memory, BlockCopyRoundTrip) {
  Memory m;
  util::Bytes data = {1, 2, 3, 4, 5};
  m.write_block(kDataBase + 100, data);
  EXPECT_EQ(m.read_block(kDataBase + 100, 5), data);
}

TEST(Memory, BlockCopyOverflowThrows) {
  Memory m;
  util::Bytes big(kPktInSize + 1, 0xFF);
  EXPECT_THROW(m.write_block(kPktInBase, big), std::out_of_range);
  EXPECT_THROW(m.read_block(kPktInBase, kPktInSize + 1), std::out_of_range);
}

TEST(Memory, ClearZeroesEverything) {
  Memory m;
  ASSERT_EQ(m.store32(kDataBase, 0xFFFFFFFF), MemFault::None);
  m.clear();
  EXPECT_EQ(m.load32(kDataBase).value(), 0u);
}

// ---------------------------------------------------------------------
// Dirty-page capture (the parallel engine's speculation snapshots)
// ---------------------------------------------------------------------

util::Bytes full_image(const Memory& m) {
  util::Bytes image;
  image.reserve(kTextSize + kDataSize + kStackSize + kPktInSize +
                kPktOutSize);
  for (auto [base, size] :
       {std::pair{kTextBase, kTextSize}, {kDataBase, kDataSize},
        {kStackBase, kStackSize}, {kPktInBase, kPktInSize},
        {kPktOutBase, kPktOutSize}}) {
    util::Bytes region = m.read_block(base, size);
    image.insert(image.end(), region.begin(), region.end());
  }
  return image;
}

TEST(Memory, RollbackRestoresExactlyTouchedPagesByteForByte) {
  // Property: for an arbitrary write pattern under capture, restoring the
  // capture log (in reverse) reproduces the pre-capture image EXACTLY --
  // the dirty-page snapshot is equivalent to a full-state copy -- while
  // the log covers only the pages actually touched, each at most once.
  Memory m;
  std::uint32_t rng = 0xC0FFEE;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 17;
    rng ^= rng << 5;
    return rng;
  };
  // Pre-capture background state scattered across all regions.
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t addr = kDataBase + (next() % (kDataSize - 4));
    ASSERT_EQ(m.store8(addr, static_cast<std::uint8_t>(next())),
              MemFault::None);
  }
  m.write_block(kStackBase + 128, util::Bytes(700, 0x5A));
  const util::Bytes before = full_image(m);

  m.begin_capture();
  std::set<std::uint32_t> touched;  // expected dirty pages (aligned addrs)
  auto note = [&touched](std::uint32_t addr, std::uint32_t len) {
    for (std::uint32_t a = addr & ~(kPageBytes - 1); a < addr + len;
         a += kPageBytes) {
      touched.insert(a);
    }
  };
  // Mixed-width scattered stores...
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t addr = kDataBase + (next() % (kDataSize - 4) & ~3u);
    ASSERT_EQ(m.store32(addr, next()), MemFault::None);
    note(addr, 4);
  }
  // ...a page-straddling bulk write...
  m.write_block(kPktOutBase + 40, util::Bytes(600, 0xEE));
  note(kPktOutBase + 40, 600);
  // ...and a capture-aware region scrub (the soft-reset path).
  m.zero_region(kStackBase);
  note(kStackBase, kStackSize);

  std::vector<Memory::PageCopy> log = m.take_capture();

  // The log names each touched page exactly once, page-aligned, whole.
  std::set<std::uint32_t> logged;
  for (const Memory::PageCopy& page : log) {
    EXPECT_EQ(page.addr % kPageBytes, 0u);
    EXPECT_EQ(page.bytes.size(), kPageBytes);
    EXPECT_TRUE(logged.insert(page.addr).second)
        << "page logged twice: " << page.addr;
  }
  // Every logged page was touched; zero_region skips pages it knows are
  // already zero, so `logged` may be a strict subset of `touched` -- but
  // never the other way around for pages whose content actually changed.
  for (std::uint32_t addr : logged) {
    EXPECT_TRUE(touched.count(addr)) << "untouched page logged: " << addr;
  }

  m.restore_pages(log);
  EXPECT_EQ(full_image(m), before);
}

TEST(Memory, NestedCapturesRollBackNewestFirst) {
  // Two speculative "packets" on one core: each capture brackets one
  // packet; undoing newest-first must land back on the original state,
  // undoing only the newest must land on the state after packet one.
  Memory m;
  m.write_block(kDataBase, util::Bytes{10, 20, 30, 40});
  const util::Bytes original = full_image(m);

  m.begin_capture();
  ASSERT_EQ(m.store32(kDataBase, 0x11111111), MemFault::None);
  ASSERT_EQ(m.store32(kStackBase + 64, 0x22222222), MemFault::None);
  std::vector<Memory::PageCopy> first = m.take_capture();
  const util::Bytes after_first = full_image(m);

  m.begin_capture();
  ASSERT_EQ(m.store32(kDataBase, 0x33333333), MemFault::None);
  ASSERT_EQ(m.store32(kPktOutBase, 0x44444444), MemFault::None);
  std::vector<Memory::PageCopy> second = m.take_capture();

  m.restore_pages(second);
  EXPECT_EQ(full_image(m), after_first);
  m.restore_pages(first);
  EXPECT_EQ(full_image(m), original);
}

}  // namespace
}  // namespace sdmmon::np
