// Quickstart: the smallest end-to-end use of the library.
//  1. Write a packet-processing program in assembly.
//  2. Extract its monitoring graph with a parameterized hash.
//  3. Run it on a monitored NP core.
//  4. Show that a deviation (injected code) is detected.
#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "monitor/analysis.hpp"
#include "np/monitored_core.hpp"

int main() {
  using namespace sdmmon;

  // 1. A tiny application: forward every packet unchanged.
  const char* source = R"(
# copy rx -> tx, commit the same length
main:
    li $t0, 0xFFFF0000     # PKT_IN_LEN register
    lw $s2, 0($t0)
    beqz $s2, drop
    li $s0, 0x30000        # rx buffer
    li $s1, 0x40000        # tx buffer
    move $t1, $zero
loop:
    addu $t2, $s0, $t1
    lbu $t3, 0($t2)
    addu $t2, $s1, $t1
    sb $t3, 0($t2)
    addiu $t1, $t1, 1
    bne $t1, $s2, loop
    li $t0, 0xFFFF0004     # PKT_OUT_COMMIT
    sw $s2, 0($t0)
drop:
    jr $ra
)";
  isa::Program program = isa::assemble(source);
  std::printf("Assembled %zu instructions:\n%s\n", program.text.size(),
              isa::disassemble_program(program).c_str());

  // 2. Offline analysis: monitoring graph under a secret 32-bit parameter.
  monitor::MerkleTreeHash hash(/*parameter=*/0xC0DE5EED);
  monitor::MonitoringGraph graph = monitor::extract_graph(program, hash);
  std::printf("Monitoring graph: %zu nodes, %zu bits (binary is %zu bits)\n\n",
              graph.size(), graph.size_bits(), program.text.size() * 32);

  // 3. Install on a monitored core and process a packet.
  np::MonitoredCore core;
  core.install(program, graph,
               std::make_unique<monitor::MerkleTreeHash>(hash));
  util::Bytes packet = util::bytes_of("hello, network processor!");
  np::PacketResult ok = core.process_packet(packet);
  std::printf("valid packet: %s (%llu instructions, %zu bytes out)\n",
              np::packet_outcome_name(ok.outcome),
              static_cast<unsigned long long>(ok.instructions),
              ok.output.size());

  // 4. Simulate a hijack: overwrite part of the program text in memory the
  // way an attack would redirect execution, then watch the monitor object.
  // (The full packet-borne attack lives in examples/attack_demo.cpp.)
  monitor::HardwareMonitor probe(graph,
                                 std::make_unique<monitor::MerkleTreeHash>(hash));
  probe.on_instruction(program.text[0]);  // valid
  probe.on_instruction(program.text[1]);  // valid
  monitor::Verdict v = probe.on_instruction(0x00FF00FF);  // foreign word
  std::printf("foreign instruction verdict: %s\n",
              v == monitor::Verdict::Mismatch ? "ATTACK DETECTED" : "missed");
  std::printf("(a 4-bit hash misses a single foreign instruction with"
              " probability 1/16)\n");
  return 0;
}
