// Secure dynamic installation walkthrough -- the paper's Figure 3 with
// narration: manufacturing time, installation time, programming time,
// runtime, plus the tamper cases the protocol must reject.
#include <cstdio>

#include "net/apps.hpp"
#include "net/packet.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/timed_install.hpp"
#include "util/log.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::protocol;

  util::set_log_level(util::LogLevel::Info);
  constexpr std::size_t kKeyBits = 1024;  // demo speed; benches use 2048
  constexpr std::uint64_t kNow = 1'700'000'000;

  std::printf("--- At manufacturing time ---\n");
  Manufacturer manufacturer("acme-networks", kKeyBits,
                            crypto::Drbg("demo-manufacturer"));
  auto device = manufacturer.provision_device("core-router-17", /*cores=*/4);
  std::printf("device '%s' provisioned: own RSA keypair K_R + manufacturer"
              " root key installed\n\n",
              device->name().c_str());

  std::printf("--- At installation time ---\n");
  NetworkOperator op("backbone-operator", kKeyBits,
                     crypto::Drbg("demo-operator"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 3600, kNow + 365 * 86400ull));
  std::printf("manufacturer certified operator '%s' (serial %llu)\n\n",
              op.name().c_str(),
              static_cast<unsigned long long>(op.certificate().serial));

  std::printf("--- At programming time ---\n");
  WirePackage wire =
      op.program_device(net::build_ipv4_forward(), device->public_key());
  std::printf("operator sealed package: %zu bytes on the wire"
              " (binary + monitoring graph + hash parameter,\n"
              " signed with the operator key, AES-encrypted, K_sym wrapped"
              " to the device key)\n",
              wire.wire_size());
  InstallStatus status = device->install(wire, kNow);
  std::printf("device install: %s\n\n", install_status_name(status));

  std::printf("--- At runtime ---\n");
  util::Bytes pkt = net::make_udp_packet(net::ip(10, 1, 1, 1),
                                         net::ip(10, 2, 2, 2), 4000, 53,
                                         util::bytes_of("dns query"));
  np::PacketResult r = device->process_packet(pkt);
  std::printf("packet through installed app: %s, TTL %u -> %u\n\n",
              np::packet_outcome_name(r.outcome),
              net::Ipv4Packet::parse(pkt)->ttl,
              net::Ipv4Packet::parse(r.output)->ttl);

  std::printf("--- Tamper cases (all must be rejected) ---\n");
  {
    WirePackage replay = wire;
    std::printf("replay of an already-installed package: %s\n",
                install_status_name(device->install(replay, kNow)));
  }
  {
    auto other = manufacturer.provision_device("other-router", 1);
    WirePackage stolen =
        op.program_device(net::build_udp_echo(), device->public_key());
    std::printf("package sealed for another device (SR4): %s\n",
                install_status_name(other->install(stolen, kNow)));
  }
  {
    WirePackage tampered =
        op.program_device(net::build_udp_echo(), device->public_key());
    tampered.ciphertext[tampered.ciphertext.size() / 2] ^= 0x01;
    std::printf("bit-flipped ciphertext (SR1/SR3): %s\n",
                install_status_name(device->install(tampered, kNow)));
  }
  {
    NetworkOperator rogue("rogue-op", kKeyBits, crypto::Drbg("demo-rogue"));
    crypto::Drbg ca_drbg("demo-rogue-ca");
    crypto::RsaKeyPair fake_ca = crypto::rsa_generate(kKeyBits, ca_drbg);
    rogue.accept_certificate(crypto::issue_certificate(
        rogue.name(), crypto::CertRole::NetworkOperator, 1, kNow - 10,
        kNow + 1000, rogue.public_key(), "not-the-manufacturer",
        fake_ca.priv));
    WirePackage forged =
        rogue.program_device(net::build_udp_echo(), device->public_key());
    std::printf("package from an uncertified operator (SR1): %s\n",
                install_status_name(device->install(forged, kNow)));
  }

  std::printf("\n--- Dynamic reprogramming ---\n");
  InstallStatus echo_status =
      device->install(op.program_device(net::build_udp_echo(),
                                        device->public_key()),
                      kNow);
  std::printf("switch to udp-echo: %s; app now '%s'\n",
              install_status_name(echo_status),
              device->application_name().c_str());
  np::PacketResult echoed = device->process_packet(pkt);
  auto out = net::Ipv4Packet::parse(echoed.output);
  std::printf("echoed packet has swapped addresses: src=%08x dst=%08x\n",
              out->src, out->dst);
  return 0;
}
