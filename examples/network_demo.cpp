// Network-wide demonstration: an operator's backbone of monitored
// routers, real hop-by-hop forwarding with longest-prefix-match routing,
// an attack injected at a vulnerable edge node, and the homogeneity
// contrast at fleet scale.
//
// Topology:
//                    [edge-A  ipv4-cm]        (customers: 10.1/16)
//                        |port0
//                   port1|
//   traffic ->  [core-1 router] --port2-- [core-2 router] --port1-> exit
//                                              |port2
//                                          [edge-B router]   (10.2/16)
#include <cstdio>

#include "attack/attack.hpp"
#include "attack/fleet.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::net;

  Network net;

  // Edge A runs the congestion-managed app (the vulnerable one).
  std::size_t edge_a = net.add_node("edge-A", build_ipv4_cm(), 0xEDA0);

  RoutingTable core1_table;
  core1_table.add_route(ip(10, 1, 0, 0), 16, 0);   // back to edge A
  core1_table.add_route(ip(10, 2, 0, 0), 16, 2);   // via core-2
  core1_table.add_route(0, 0, 2);                  // default via core-2
  std::size_t core1 = net.add_router("core-1", core1_table, 0xC001);

  RoutingTable core2_table;
  core2_table.add_route(ip(10, 2, 0, 0), 16, 2);   // to edge B
  core2_table.add_route(ip(10, 1, 0, 0), 16, 0);   // back via core-1
  core2_table.add_route(0, 0, 1);                  // exit port
  std::size_t core2 = net.add_router("core-2", core2_table, 0xC002);

  RoutingTable edge_b_table;
  edge_b_table.add_route(ip(10, 2, 0, 0), 16, 1);  // customer egress
  edge_b_table.add_route(0, 0, 0);                 // back upstream
  std::size_t edge_b = net.add_router("edge-B", edge_b_table, 0xEDB0);

  net.connect(edge_a, 0, core1, 1);
  net.connect(core1, 2, core2, 0);
  net.connect(core2, 2, edge_b, 0);

  auto show = [&](const char* what, const Network::Delivery& d) {
    std::printf("%-34s %s, path:", what, delivery_status_name(d.status));
    for (std::size_t node : d.path) {
      std::printf(" %s", net.node_name(node).c_str());
    }
    if (d.status == Network::Status::Delivered) {
      std::printf(" -> egress %s port %u", net.node_name(d.egress_node).c_str(),
                  d.egress_port);
    }
    std::printf("\n");
  };

  std::printf("--- honest traffic ---\n");
  show("edge-A customer to 10.2.5.5:",
       net.send(edge_a, make_udp_packet(ip(10, 1, 0, 7), ip(10, 2, 5, 5), 40,
                                        80, util::bytes_of("cross-site"))));
  show("edge-A customer to the internet:",
       net.send(edge_a, make_udp_packet(ip(10, 1, 0, 7), ip(93, 184, 216, 34),
                                        40, 53, util::bytes_of("query"))));
  show("unroutable at core-2 egress:",
       net.send(core2, make_udp_packet(ip(10, 2, 1, 1), ip(172, 20, 0, 1), 1,
                                       2, util::bytes_of("x"), /*ttl=*/1)));

  std::printf("\n--- attack at the vulnerable edge ---\n");
  auto attack =
      attack::craft_cm_overflow(attack::inject_output_shellcode(0x55, 80));
  show("stack-smash packet into edge-A:", net.send(edge_a, attack.packet));
  std::printf("edge-A stats: %llu attacks detected, %llu packets total\n",
              (unsigned long long)net.node_stats(edge_a).attacks_detected,
              (unsigned long long)net.node_stats(edge_a).packets);
  show("honest packet right after:",
       net.send(edge_a, make_udp_packet(ip(10, 1, 0, 9), ip(10, 2, 1, 1), 4,
                                        5, util::bytes_of("recovered"))));

  std::printf("\n--- why per-router hash parameters (SR2) ---\n");
  for (bool diversified : {false, true}) {
    attack::FleetConfig config;
    config.num_routers = 300;
    config.diversified = diversified;
    config.attack_len = 4;
    auto r = attack::simulate_fleet(config);
    std::printf("%s fleet of 300: %zu compromised by one crafted attack\n",
                diversified ? "diversified" : "homogeneous ", r.compromised);
  }
  return 0;
}
