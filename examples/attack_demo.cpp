// Data-plane attack demonstration: a single malformed packet hijacks the
// vulnerable IPv4+CM application via a stack smash -- and the hardware
// monitor catches it. Shows the unprotected outcome, the protected
// outcome, and the fleet-wide view that motivates hash diversity (SR2).
#include <cstdio>

#include "attack/attack.hpp"
#include "attack/fleet.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/monitored_core.hpp"

int main() {
  using namespace sdmmon;
  using monitor::MerkleTreeHash;

  isa::Program app = net::build_ipv4_cm();
  std::printf("victim application: %s (%zu instructions)\n", app.name.c_str(),
              app.text.size());

  // The malicious packet: IHL=15 header whose CM option overflows the
  // 16-byte option buffer and overwrites the saved return address with a
  // pointer into the packet payload, where the shellcode lives.
  auto attack =
      attack::craft_cm_overflow(attack::inject_output_shellcode(0x66, 48));
  std::printf("attack packet: %zu bytes, shellcode lands at 0x%08x\n\n",
              attack.packet.size(), attack.shellcode_addr);

  MerkleTreeHash hash(0x5EC12E7 ^ 0xA5A5A5A5);
  auto graph = monitor::extract_graph(app, hash);

  std::printf("--- Unprotected core (monitor enforcement off) ---\n");
  {
    np::MonitoredCore core;
    core.install(app, graph, std::make_unique<MerkleTreeHash>(hash));
    core.set_enforcement(false);
    np::PacketResult r = core.process_packet(attack.packet);
    std::printf("outcome: %s\n", np::packet_outcome_name(r.outcome));
    if (r.outcome == np::PacketOutcome::Forwarded) {
      std::printf("HIJACKED: the shellcode injected its own %zu-byte packet"
                  " onto the wire (first byte 0x%02x)\n",
                  r.output.size(), r.output.empty() ? 0 : r.output[0]);
    }
  }

  std::printf("\n--- Protected core (hardware monitor active) ---\n");
  {
    np::MonitoredCore core;
    core.install(app, graph, std::make_unique<MerkleTreeHash>(hash));
    np::PacketResult r = core.process_packet(attack.packet);
    std::printf("outcome: %s after %llu instructions\n",
                np::packet_outcome_name(r.outcome),
                static_cast<unsigned long long>(r.instructions));

    // Recovery: honest traffic continues to flow.
    util::Bytes good = net::make_udp_packet(net::ip(10, 0, 0, 1),
                                            net::ip(10, 9, 9, 9), 7, 8,
                                            util::bytes_of("post-attack"));
    np::PacketResult after = core.process_packet(good);
    std::printf("next honest packet: %s (drop-and-reset recovery)\n",
                np::packet_outcome_name(after.outcome));
    std::printf("core stats: %llu packets, %llu attacks detected\n",
                static_cast<unsigned long long>(core.stats().packets),
                static_cast<unsigned long long>(
                    core.stats().attacks_detected));
  }

  std::printf("\n--- Benign CM traffic is unaffected ---\n");
  {
    np::MonitoredCore core;
    core.install(app, graph, std::make_unique<MerkleTreeHash>(hash));
    np::PacketResult r = core.process_packet(attack::benign_cm_packet(200));
    auto out = net::Ipv4Packet::parse(r.output);
    std::printf("benign CM packet: %s, ECN-CE mark %s\n",
                np::packet_outcome_name(r.outcome),
                (out && (out->tos & 0x3) == 0x3) ? "set" : "clear");
  }

  std::printf("\n--- Fleet view (why per-router hash parameters matter) ---\n");
  {
    attack::FleetConfig config;
    config.num_routers = 500;
    config.attack_len = 4;
    config.diversified = false;
    auto homogeneous = attack::simulate_fleet(config);
    config.diversified = true;
    auto diverse = attack::simulate_fleet(config);
    std::printf("homogeneous fleet: %zu/500 routers fall to one crafted"
                " attack\n",
                homogeneous.compromised);
    std::printf("diversified fleet (S-box compression): %zu/500\n",
                diverse.compromised);
  }
  return 0;
}
