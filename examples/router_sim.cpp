// Router simulation: a 4-core monitored MPSoC forwarding a live traffic
// mix, with a mid-run secure reprogramming (firewall push) and a burst of
// attack packets -- the "Dynamics" scenario of the paper's introduction.
#include <cstdio>

#include "attack/attack.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "net/traffic.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/workload.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::protocol;

  constexpr std::size_t kKeyBits = 1024;
  constexpr std::uint64_t kNow = 1'800'000'000;

  Manufacturer manufacturer("vendor", kKeyBits, crypto::Drbg("rs-man"));
  NetworkOperator op("noc", kKeyBits, crypto::Drbg("rs-op"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 100, kNow + 1'000'000));
  auto router = manufacturer.provision_device("edge-router-3", /*cores=*/4);

  // Phase 1: run IPv4+CM (the congestion-managed forwarder).
  if (router->install(op.program_device(net::build_ipv4_cm(),
                                        router->public_key()),
                      kNow) != InstallStatus::Ok) {
    std::printf("install failed\n");
    return 1;
  }
  std::printf("phase 1: '%s' on %zu cores\n",
              router->application_name().c_str(),
              router->mpsoc().num_cores());

  net::TrafficGenerator gen;
  for (int i = 0; i < 4000; ++i) {
    auto g = gen.next();
    (void)router->process_packet(g.packet, g.flow_key);
  }
  auto s1 = router->mpsoc().aggregate_stats();
  std::printf("  4000 packets: %llu forwarded, %llu dropped, %llu attacks\n",
              (unsigned long long)s1.forwarded,
              (unsigned long long)s1.dropped,
              (unsigned long long)s1.attacks_detected);

  // Phase 2: attacker bursts crafted stack-smash packets into the mix.
  auto attack =
      attack::craft_cm_overflow(attack::inject_output_shellcode(0xBB, 60));
  int attack_sent = 0;
  for (int i = 0; i < 2000; ++i) {
    if (i % 10 == 3) {
      (void)router->process_packet(attack.packet,
                                   static_cast<std::uint32_t>(i));
      ++attack_sent;
    } else {
      auto g = gen.next();
      (void)router->process_packet(g.packet, g.flow_key);
    }
  }
  auto s2 = router->mpsoc().aggregate_stats();
  std::printf("phase 2: %d attack packets interleaved\n", attack_sent);
  std::printf("  attacks detected: %llu/%d; honest traffic still forwarded:"
              " %llu packets total\n",
              (unsigned long long)(s2.attacks_detected - s1.attacks_detected),
              attack_sent, (unsigned long long)s2.forwarded);

  // Phase 3: operator pushes a firewall build over the secure channel.
  InstallStatus push = router->install(
      op.program_device(net::build_firewall({53}), router->public_key()),
      kNow + 60);
  std::printf("phase 3: live reprogram to firewall(block udp/53): %s\n",
              install_status_name(push));
  int blocked = 0, passed = 0;
  for (int i = 0; i < 2000; ++i) {
    auto g = gen.next();
    auto r = router->process_packet(g.packet, g.flow_key);
    auto parsed = net::Ipv4Packet::parse(g.packet);
    auto udp = net::UdpDatagram::parse(parsed->payload);
    if (udp && udp->dst_port == 53) {
      if (r.outcome == np::PacketOutcome::Dropped) ++blocked;
    } else if (r.outcome == np::PacketOutcome::Forwarded) {
      ++passed;
    }
  }
  std::printf("  port-53 traffic blocked: %d packets; other traffic"
              " forwarded: %d packets\n",
              blocked, passed);

  // Phase 4: workload-managed operation -- echo traffic and forwarding
  // traffic share the MPSoC; the manager observes the mix and remaps
  // cores with fast (non-cryptographic) switches.
  if (router->install(op.program_device(net::build_udp_echo(),
                                        router->public_key()),
                      kNow + 120) != InstallStatus::Ok) {
    std::printf("echo install failed\n");
    return 1;
  }
  WorkloadManager manager(*router);
  manager.add_port_rule(7, 7, "udp-echo");
  manager.set_default_app("firewall");
  for (int i = 0; i < 3000; ++i) {
    const bool echo = i % 4 != 0;  // 75% echo traffic
    util::Bytes pkt = net::make_udp_packet(
        net::ip(10, 0, 0, 1), net::ip(10, 7, 7, 7), 5000,
        echo ? 7 : 9000, util::bytes_of("wl"));
    (void)manager.process(pkt);
  }
  std::size_t switched = manager.rebalance();
  std::printf("phase 4: workload manager rebalanced %zu cores; mapping:",
              switched);
  for (const auto& app : manager.assignment()) {
    std::printf(" %s", app.c_str());
  }
  std::printf("\n");

  auto total = router->mpsoc().aggregate_stats();
  std::printf("\nfinal per-router stats: %llu packets, %llu forwarded,"
              " %llu attacks detected, %llu traps\n",
              (unsigned long long)total.packets,
              (unsigned long long)total.forwarded,
              (unsigned long long)total.attacks_detected,
              (unsigned long long)total.traps);
  std::printf("device audit log: %zu events\n", router->audit_log().size());
  return 0;
}
