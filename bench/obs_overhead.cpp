// Observability overhead micro-bench: the cost of the instrumentation
// the obs layer hangs on the packet hot path. Measures ns/packet of a
// 4-core serial Mpsoc running ipv4-cm in three configurations:
//
//   detached       engine built, enable_obs() never called -- the cost
//                  everyone pays (a null-pointer test per commit when
//                  SDMMON_OBS=ON; nothing at all when OFF).
//   attached s=1   full instrumentation, every packet recorded.
//   attached s=64  counters exact, histograms sampled 1/64.
//
// Run this binary from both -DSDMMON_OBS=ON and OFF builds to populate
// the overhead table in docs/OBSERVABILITY.md; the acceptance bar for
// the disabled configuration is "within noise" (< 2%) of the seed
// build's monitor_throughput numbers.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/mpsoc.hpp"
#include "obs/obs.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kCores = 4;
const int kPackets = bench::scaled(20000, 500);
const int kReps = bench::scaled(3, 1);

struct Workload {
  std::vector<util::Bytes> packets;
};

Workload make_workload() {
  net::TrafficGenerator gen;
  Workload w;
  w.packets.reserve(kPackets);
  for (int i = 0; i < kPackets; ++i) w.packets.push_back(gen.next().packet);
  return w;
}

/// Best-of-kReps ns/packet for one configuration. `sample_period` == 0
/// means "do not attach obs at all".
double measure(const Workload& load, std::uint32_t sample_period,
               obs::Registry* registry) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    np::Mpsoc soc(kCores);
    isa::Program app = net::build_ipv4_cm();
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    soc.install_all(app, monitor::extract_graph(app, hash), hash);
    if (sample_period != 0) soc.enable_obs(*registry, 0, sample_period);

    auto start = Clock::now();
    std::uint32_t flow = 0;
    for (const util::Bytes& packet : load.packets) {
      (void)soc.process_packet(packet, flow++);
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count() /
        static_cast<double>(kPackets);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main() {
  bench::heading("obs overhead: packet-path cost of the metrics layer");

  bench::note(std::string("build: SDMMON_OBS=") +
              (SDMMON_OBS_ENABLED ? "ON" : "OFF"));

  const Workload load = make_workload();
  obs::Registry reg_full;
  obs::Registry reg_sampled;

  const double detached = measure(load, 0, nullptr);
  const double full = measure(load, 1, &reg_full);
  const double sampled = measure(load, 64, &reg_sampled);

  bench::BenchReport report("obs_overhead");
  report.set_meta("obs_enabled", static_cast<bool>(SDMMON_OBS_ENABLED));
  report.set_meta("cores", kCores);
  report.set_meta("packets", kPackets);
  report.set_meta("reps", kReps);

  std::printf("\n%-22s %12s %10s\n", "configuration", "ns/packet",
              "vs detached");
  bench::rule(48);
  std::printf("%-22s %12.1f %9.2f%%\n", "detached", detached, 0.0);
  std::printf("%-22s %12.1f %+9.2f%%\n", "attached (sample=1)", full,
              (full / detached - 1.0) * 100.0);
  std::printf("%-22s %12.1f %+9.2f%%\n", "attached (sample=64)", sampled,
              (sampled / detached - 1.0) * 100.0);
  bench::rule(48);
  report.add_row({{"config", "detached"}, {"ns_per_packet", detached},
                  {"overhead_pct", 0.0}});
  report.add_row({{"config", "attached-sample-1"}, {"ns_per_packet", full},
                  {"overhead_pct", (full / detached - 1.0) * 100.0}});
  report.add_row({{"config", "attached-sample-64"},
                  {"ns_per_packet", sampled},
                  {"overhead_pct", (sampled / detached - 1.0) * 100.0}});

  bench::note("4-core serial Mpsoc, ipv4-cm, generated traffic; best of 3");
  bench::note("runs. Detached vs a SDMMON_OBS=OFF build isolates the cost");
  bench::note("of the compiled-in null check (expected: below noise).");
  report.write();
  return 0;
}
