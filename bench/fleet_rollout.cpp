// Extension experiment X4: fleet-scale staged rollout over the install
// protocol.
//
// The paper's security model covers one device; operating a fleet of
// them raises the question this bench quantifies: how fast does a staged
// rollout (canary -> beta -> stable waves) converge across 10^5+ modeled
// devices, and how quickly does the automatic-halt controller catch a
// poisoned release whose installs the hardware monitors would quarantine?
// Devices are discrete-event state machines sharing the protocol's real
// retry/backoff schedule -- no thread per device -- so the fleet size is
// a scaling knob, not an infrastructure problem.
//
// Scenario A (clean): time-to-90%-converged plus scheduler throughput
// (simulated devices and events per wall-clock second).
// Scenario B (poisoned): halt-detection latency, blast radius (devices
// that activated the release, absolute and as % of fleet), rollbacks.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "fleet/service.hpp"

namespace {

using namespace sdmmon;
using BClock = std::chrono::steady_clock;

const std::size_t kDevices =
    static_cast<std::size_t>(bench::scaled(200'000, 20'000));

fleet::ReleaseBehavior base_behavior() {
  fleet::ReleaseBehavior behavior;
  behavior.loss_rate = 0.02;
  behavior.install_ms = 1500;
  behavior.bake_ms = 20'000;
  return behavior;
}

fleet::Release make_release(std::uint32_t version,
                            fleet::ReleaseBehavior behavior) {
  fleet::Release release;
  release.version = version;
  release.app_name = "bench-v" + std::to_string(version);
  release.behavior = behavior;
  return release;
}

struct RunResult {
  fleet::RolloutReport report;
  double wall_s = 0;
  std::uint64_t events = 0;
};

RunResult run(std::uint64_t seed, const fleet::Release& release) {
  fleet::Simulator sim;
  fleet::FleetConfig config;
  config.devices = kDevices;
  config.seed = seed;
  fleet::FleetService service(sim, config);
  service.start_rollout(release);
  const auto start = BClock::now();
  sim.run();
  RunResult out;
  out.wall_s = std::chrono::duration<double>(BClock::now() - start).count();
  out.events = sim.events_executed();
  out.report = service.report();
  return out;
}

}  // namespace

int main() {
  bench::heading("X4: fleet staged rollout and automatic halt");
  bench::BenchReport report("fleet_rollout");
  report.set_meta("devices", static_cast<std::uint64_t>(kDevices));
  report.set_meta("waves", 4);

  // ---- Scenario A: clean release converges through all waves ----------
  RunResult clean = run(0xF1EE7A, make_release(1, base_behavior()));
  const double dev_per_s =
      clean.wall_s > 0 ? static_cast<double>(kDevices) / clean.wall_s : 0;
  const double ev_per_s =
      clean.wall_s > 0 ? static_cast<double>(clean.events) / clean.wall_s : 0;
  std::printf("clean release, %zu devices:\n", kDevices);
  std::printf("  %-28s %12llu ms (simulated)\n", "time to 90% converged",
              static_cast<unsigned long long>(clean.report.t90_ms));
  std::printf("  %-28s %12.3f s\n", "wall clock", clean.wall_s);
  std::printf("  %-28s %12.0f\n", "sim devices / wall s", dev_per_s);
  std::printf("  %-28s %12.0f\n", "sim events / wall s", ev_per_s);
  std::printf("  %-28s %12.1f\n", "health score", clean.report.health_score);
  report.add_row({{"scenario", "clean"},
                  {"t90_ms", clean.report.t90_ms},
                  {"wall_s", clean.wall_s},
                  {"sim_devices_per_s", dev_per_s},
                  {"sim_events_per_s", ev_per_s},
                  {"unreachable", clean.report.health.unreachable},
                  {"health_score", clean.report.health_score}});

  // ---- Scenario B: poisoned release halts in the canary wave ----------
  fleet::ReleaseBehavior poisoned = base_behavior();
  poisoned.quarantine_rate = 0.5;
  RunResult bad = run(0xF1EE7B, make_release(2, poisoned));
  const double affected_pct =
      100.0 * static_cast<double>(bad.report.affected) /
      static_cast<double>(kDevices);
  std::printf("\npoisoned release (quarantine rate 0.5):\n");
  std::printf("  %-28s %12s\n", "halted",
              bad.report.halted ? "yes" : "NO (!)");
  std::printf("  %-28s %12llu\n", "halted wave",
              static_cast<unsigned long long>(bad.report.halted_wave));
  std::printf("  %-28s %12llu ms (simulated)\n", "halt detection latency",
              static_cast<unsigned long long>(bad.report.halt_detect_ms));
  std::printf("  %-28s %12llu (%.3f%% of fleet)\n", "blast radius (devices)",
              static_cast<unsigned long long>(bad.report.affected),
              affected_pct);
  std::printf("  %-28s %12llu\n", "rollbacks",
              static_cast<unsigned long long>(bad.report.rollbacks));
  report.add_row({{"scenario", "poisoned"},
                  {"halted", bad.report.halted ? 1 : 0},
                  {"halted_wave", bad.report.halted_wave},
                  {"halt_detect_ms", bad.report.halt_detect_ms},
                  {"affected", bad.report.affected},
                  {"affected_pct", affected_pct},
                  {"rollbacks", bad.report.rollbacks}});

  bench::note("waves 1/10/50/100%, ramp 60s, gap 30s; install 1.5s, bake");
  bench::note("20s in 4 slices; retry via the protocol's real backoff");
  bench::note("schedule. t90/halt latencies are simulated milliseconds;");
  bench::note("devices/s and events/s are scheduler wall-clock throughput");
  bench::note("(the gated figures -- latency fields are informational).");
  report.write();
  return 0;
}
