// Paper Sec 4.2 (parenthetical claim): "switching between applications
// already installed on the network processor can be done quickly to
// accommodate dynamic changes in workload by keeping multiple binaries
// and graphs in memory." This bench quantifies the gap between a full
// secure install (~25 s at paper scale) and an in-memory switch (ms).
#include <cstdio>

#include "bench_util.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/timed_install.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::protocol;

  bench::heading("Dynamic workload switching: secure install vs. in-memory"
                 " switch");

  constexpr std::size_t kKeyBits = 2048;
  constexpr std::uint64_t kNow = 1'700'000'000;

  Manufacturer manufacturer("m", kKeyBits, crypto::Drbg("sw-man"));
  NetworkOperator op("o", kKeyBits, crypto::Drbg("sw-op"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 10, kNow + 1'000'000));
  auto device = manufacturer.provision_device("router", 2);

  NiosTimingModel model;

  struct AppEntry {
    const char* name;
    isa::Program program;
  };
  AppEntry apps[] = {
      {"ipv4-forward", net::build_ipv4_forward()},
      {"ipv4-cm", net::build_ipv4_cm()},
      {"udp-echo", net::build_udp_echo()},
      {"firewall", net::build_firewall({53, 80, 443})},
  };

  std::printf("%-16s %16s %16s %12s\n", "app", "secure install",
              "memory switch", "speedup");
  bench::rule(66);
  for (auto& app : apps) {
    WirePackage wire = op.program_device(app.program, device->public_key());
    TimedInstallResult timed =
        timed_install(wire, device->private_key_for_instrumentation(),
                      manufacturer.public_key(), kNow);
    if (!timed.ok || device->install(wire, kNow) != InstallStatus::Ok) {
      std::printf("install of %s failed\n", app.name);
      return 1;
    }
    const double install_s = timed.timing(model).total();
    const std::size_t app_bytes =
        app.program.text_bytes() + app.program.data.size();
    const double switch_s = model.switch_seconds(app_bytes);
    std::printf("%-16s %15.2fs %14.2fms %11.0fx\n", app.name, install_s,
                switch_s * 1e3, install_s / switch_s);
  }
  bench::rule(66);
  std::printf("apps now resident on the device:");
  for (const auto& name : device->stored_apps()) std::printf(" %s", name.c_str());
  std::printf("\nstore footprint: %zu bytes\n", device->store_bytes());

  // Functional proof: switching is instant and the switched app works.
  device->switch_to("udp-echo");
  util::Bytes pkt = net::make_udp_packet(net::ip(1, 2, 3, 4),
                                         net::ip(5, 6, 7, 8), 10, 20,
                                         util::bytes_of("x"));
  auto r = device->process_packet(pkt);
  std::printf("after switch_to(udp-echo): packet %s\n",
              np::packet_outcome_name(r.outcome));
  bench::note("Conclusion: reprogramming latency (~25 s) applies only to");
  bench::note("NEW applications; workload-driven switches among resident");
  bench::note("apps cost milliseconds, supporting the paper's dynamics");
  bench::note("argument.");
  return 0;
}
