// Reproduces Table 2: "Processing of security functions on Nios II" --
// the five steps of the secure install pipeline, executed for real with
// RSA-2048 + AES-128 (the prototype's configuration) and converted to
// modeled Nios II seconds through the calibrated embedded-core cost model.
// Host wall-clock per step is printed alongside for transparency.
#include <cstdio>

#include "bench_util.hpp"
#include "net/apps.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/timed_install.hpp"

namespace {

struct PaperRow {
  const char* step;
  double seconds;
};

constexpr PaperRow kPaperRows[] = {
    {"Download data from FTP server", 1.90},
    {"Check manufacturer certificate of operator key", 3.33},
    {"Decrypt AES key K_sym using router private key", 8.74},
    {"Decrypt package with AES key K_sym", 7.73},
    {"Verify package signature with operator key", 3.92},
};
constexpr double kPaperTotal = 25.62;
constexpr double kPaperTotalNoNetCert = 20.39;

}  // namespace

int main() {
  using namespace sdmmon;
  using namespace sdmmon::protocol;

  bench::heading("Table 2: Processing of security functions on Nios II");
  bench::note("Running the real protocol with RSA-2048 / AES-128 and the");
  bench::note("calibrated 100 MHz Nios II cost model (see DESIGN.md sec. 5).");

  constexpr std::size_t kKeyBits = 2048;
  constexpr std::uint64_t kNow = 1'700'000'000;

  std::printf("\n  generating RSA-2048 keys for all three entities...\n");
  Manufacturer manufacturer("manufacturer", kKeyBits,
                            crypto::Drbg("t2-manufacturer"));
  NetworkOperator op("operator", kKeyBits, crypto::Drbg("t2-operator"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 1000, kNow + 1'000'000));
  crypto::Drbg device_drbg("t2-device");
  crypto::RsaKeyPair device_keys = crypto::rsa_generate(kKeyBits, device_drbg);

  // The paper's IPv4+CM production package is far larger than our compact
  // simulator binary; pad the payload to ~1 MiB so the AES/SHA-bound rows
  // land at paper scale. An unpadded run is reported afterwards.
  constexpr std::uint32_t kPaperScalePad = 1'048'576;
  NiosTimingModel model;

  for (std::uint32_t pad : {kPaperScalePad, std::uint32_t{0}}) {
    WirePackage wire =
        op.program_device(net::build_ipv4_cm(), device_keys.pub, pad);
    TimedInstallResult r =
        timed_install(wire, device_keys.priv, manufacturer.public_key(), kNow);
    if (!r.ok) {
      std::printf("install failed: %s\n", open_status_name(r.open_status));
      return 1;
    }
    InstallTiming t = r.timing(model);

    std::printf("\n%s package (wire size %.1f KiB):\n",
                pad ? "Paper-scale (padded)" : "Unpadded simulator",
                static_cast<double>(r.wire_bytes) / 1024.0);
    std::printf("  %-48s %8s %8s %10s\n", "Step", "paper", "model",
                "host(raw)");
    bench::rule();
    const double rows_model[] = {
        t.download_s, t.cert_check_s, t.rsa_unwrap_s, t.aes_decrypt_s,
        t.verify_sig_s};
    const double rows_host[] = {0.0, r.host_cert_s, r.host_unwrap_s,
                                r.host_aes_s, r.host_verify_s};
    for (int i = 0; i < 5; ++i) {
      std::printf("  %-48s %7.2fs %7.2fs %9.4fs\n", kPaperRows[i].step,
                  pad ? kPaperRows[i].seconds : -1.0, rows_model[i],
                  rows_host[i]);
    }
    bench::rule();
    std::printf("  %-48s %7.2fs %7.2fs\n", "Total",
                pad ? kPaperTotal : -1.0, t.total());
    std::printf("  %-48s %7.2fs %7.2fs\n",
                "Total (no networking or certificate check)",
                pad ? kPaperTotalNoNetCert : -1.0,
                t.total_no_network_no_cert() );
    if (!pad) {
      bench::note("(paper column shown as -1: the paper only reports the");
      bench::note(" production-scale package)");
    }
  }

  std::printf("\nShape checks:\n");
  std::printf("  * RSA private-key unwrap is the most expensive step.\n");
  std::printf("  * Certificate check ~ signature verify (public-key ops\n");
  std::printf("    dominated by fixed invocation overhead).\n");
  std::printf("  * AES decrypt scales with package size; download is the\n");
  std::printf("    cheapest step at paper scale.\n");
  return 0;
}
