// Reproduces Table 3: "Implementation cost of hash functions" -- bitcount
// baseline vs. the parameterizable Merkle-tree hash, via the structural
// resource model, plus a width sweep the paper does not report.
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/resource_model.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::monitor;

  bench::heading("Table 3: Implementation cost of hash functions");

  auto bc = bitcount_hash_cost(32, 4);
  auto mk = merkle_hash_cost(4);

  bench::BenchReport report("table3_hash_cost");
  report.add_row({{"hash", "bitcount"},
                  {"luts", bc.luts},
                  {"ffs", bc.ffs},
                  {"mem_bits", bc.mem_bits},
                  {"paper_luts", kPaperBitcountHash.luts},
                  {"paper_ffs", kPaperBitcountHash.ffs},
                  {"paper_mem_bits", kPaperBitcountHash.mem_bits}});
  report.add_row({{"hash", "merkle"},
                  {"luts", mk.luts},
                  {"ffs", mk.ffs},
                  {"mem_bits", mk.mem_bits},
                  {"paper_luts", kPaperMerkleHash.luts},
                  {"paper_ffs", kPaperMerkleHash.ffs},
                  {"paper_mem_bits", kPaperMerkleHash.mem_bits}});

  std::printf("%-14s %18s %18s\n", "", "Bitcount hash", "Merkle tree hash");
  bench::rule(56);
  std::printf("%-14s %9llu (%5llu) %9llu (%5llu)\n", "LUTs",
              (unsigned long long)bc.luts,
              (unsigned long long)kPaperBitcountHash.luts,
              (unsigned long long)mk.luts,
              (unsigned long long)kPaperMerkleHash.luts);
  std::printf("%-14s %9llu (%5llu) %9llu (%5llu)\n", "FFs",
              (unsigned long long)bc.ffs,
              (unsigned long long)kPaperBitcountHash.ffs,
              (unsigned long long)mk.ffs,
              (unsigned long long)kPaperMerkleHash.ffs);
  std::printf("%-14s %9llu (%5llu) %9llu (%5llu)\n", "Memory bits",
              (unsigned long long)bc.mem_bits,
              (unsigned long long)kPaperBitcountHash.mem_bits,
              (unsigned long long)mk.mem_bits,
              (unsigned long long)kPaperMerkleHash.mem_bits);
  bench::rule(56);
  bench::note("model value (paper value in parentheses)");
  bench::note("Conclusion preserved: the parameterizable hash costs no more");
  bench::note("logic than a trivial bitcount; its only extra cost is 32");
  bench::note("memory bits for the secret parameter.");

  bench::heading("Extension: Merkle hash cost vs. hash width");
  std::printf("%-8s %8s %6s %10s %12s\n", "width", "LUTs", "FFs", "mem bits",
              "tree nodes");
  bench::rule(50);
  for (int w : {1, 2, 4, 8}) {
    auto cost = merkle_hash_cost(w);
    MerkleTreeHash hash(0, w);
    std::printf("%-8d %8llu %6llu %10llu %12d\n", w,
                (unsigned long long)cost.luts, (unsigned long long)cost.ffs,
                (unsigned long long)cost.mem_bits, hash.node_count());
    report.add_row({{"hash", "merkle-width-sweep"},
                    {"width", w},
                    {"luts", cost.luts},
                    {"ffs", cost.ffs},
                    {"mem_bits", cost.mem_bits},
                    {"tree_nodes", hash.node_count()}});
  }
  report.write();
  return 0;
}
