// Ablation X2: hash width trade-off. Wider hashes detect single foreign
// instructions with higher probability (1 - 2^-w) and shrink the viable
// brute-force attack space, but grow the monitoring graph and the hash
// unit. The paper fixes w=4; this sweep shows why that is a sweet spot.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "monitor/monitor.hpp"
#include "monitor/resource_model.hpp"
#include "net/apps.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::monitor;

  bench::heading("X2: hash width ablation (monitoring ipv4-cm)");

  isa::Program app = net::build_ipv4_cm();
  util::Rng rng(0xAB1A7E);

  std::printf("%-7s %12s %14s %12s %10s %10s\n", "width", "graph bits",
              "graph/binary", "p(detect 1)", "hash LUTs", "hash mem");
  bench::rule(72);

  for (int w : {1, 2, 4, 8}) {
    MerkleTreeHash hash(0xC0FFEE11, w);
    MonitoringGraph graph = extract_graph(app, hash);

    // Empirical single-instruction detection probability.
    int detected = 0;
    const int trials = 20'000;
    for (int t = 0; t < trials; ++t) {
      MerkleTreeHash h(rng.next_u32(), w);
      HardwareMonitor monitor(extract_graph(app, h),
                              std::make_unique<MerkleTreeHash>(h));
      monitor.on_instruction(app.text[0]);
      monitor.on_instruction(app.text[1]);
      std::uint32_t foreign = rng.next_u32();
      if (foreign == app.text[2]) foreign ^= 1;
      if (monitor.on_instruction(foreign) == Verdict::Mismatch) ++detected;
    }

    auto cost = merkle_hash_cost(w);
    const double binary_bits = static_cast<double>(app.text.size()) * 32.0;
    std::printf("%-7d %12zu %13.1f%% %11.4f %10llu %10llu\n", w,
                graph.size_bits(),
                100.0 * static_cast<double>(graph.size_bits()) / binary_bits,
                static_cast<double>(detected) / trials,
                (unsigned long long)cost.luts,
                (unsigned long long)cost.mem_bits);
  }
  bench::rule(72);
  bench::note("p(detect 1) ~ 1 - 2^-w; graph size grows ~linearly in w.");
  bench::note("w=4 keeps the graph a small fraction of the binary while");
  bench::note("catching 15/16 of foreign instructions immediately --");
  bench::note("the paper's operating point.");
  return 0;
}
