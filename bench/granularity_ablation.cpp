// Ablation: monitoring granularity -- per-instruction (Mao & Wolf, what
// SDMMon deploys) vs. basic-block (Arora et al. / IMPRES, the related-work
// baseline). Three axes on the real ipv4-cm binary:
//   * graph storage (bits)
//   * detection probability of an injected sequence
//   * detection latency (instructions retired after the deviation until
//     the monitor flags)
#include <cstdio>

#include "bench_util.hpp"
#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "monitor/block_monitor.hpp"
#include "monitor/monitor.hpp"
#include "net/apps.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdmmon;
using namespace sdmmon::monitor;

struct LatencyStats {
  double detect_rate = 0;
  double mean_lag = 0;  // instructions from deviation to flag (detected runs)
};

// Drive `monitor` with valid prefix then foreign words; measure lag.
template <typename Monitor>
LatencyStats measure(const isa::Program& program, Monitor& monitor,
                     util::Rng& rng, int trials) {
  int detected = 0;
  double lag_sum = 0;
  const int kInjected = 24;  // foreign instructions available to observe
  for (int t = 0; t < trials; ++t) {
    monitor.reset();
    // Valid straight-line prefix: the first two instructions of main.
    monitor.on_instruction(program.text[0]);
    monitor.on_instruction(program.text[1]);
    bool flagged = false;
    for (int i = 0; i < kInjected; ++i) {
      std::uint32_t foreign = rng.next_u32();
      if (monitor.on_instruction(foreign) == Verdict::Mismatch) {
        ++detected;
        lag_sum += i;  // 0 = flagged on the first foreign instruction
        flagged = true;
        break;
      }
    }
    (void)flagged;
  }
  LatencyStats s;
  s.detect_rate = static_cast<double>(detected) / trials;
  if (detected > 0) s.mean_lag = lag_sum / detected;
  return s;
}

}  // namespace

int main() {
  bench::heading("Monitoring granularity: per-instruction vs. basic-block");

  isa::Program app = net::build_ipv4_cm();
  util::Rng rng(0x6AB1A);
  const int kTrials = 20'000;

  MerkleTreeHash hash(0x5EEDF00D);
  MonitoringGraph instr_graph = extract_graph(app, hash);
  BlockGraph block_graph = extract_block_graph(app, hash);

  HardwareMonitor instr_monitor(instr_graph,
                                std::make_unique<MerkleTreeHash>(hash));
  BlockMonitor block_monitor(block_graph,
                             std::make_unique<MerkleTreeHash>(hash));

  LatencyStats instr_stats = measure(app, instr_monitor, rng, kTrials);
  LatencyStats block_stats = measure(app, block_monitor, rng, kTrials);

  std::printf("%-24s %16s %16s\n", "", "per-instruction", "basic-block");
  bench::rule(60);
  std::printf("%-24s %16zu %16zu\n", "graph bits", instr_graph.size_bits(),
              block_graph.size_bits());
  std::printf("%-24s %16zu %16zu\n", "graph nodes", instr_graph.size(),
              block_graph.size());
  std::printf("%-24s %15.1f%% %15.1f%%\n", "detection rate",
              100.0 * instr_stats.detect_rate,
              100.0 * block_stats.detect_rate);
  std::printf("%-24s %16.2f %16.2f\n", "mean lag (instrs)",
              instr_stats.mean_lag, block_stats.mean_lag);
  bench::rule(60);
  bench::note("24 random injected instructions per trial, 20k trials.");
  bench::note("Per-instruction monitoring flags on (nearly) the first");
  bench::note("foreign word; the block baseline must wait for a block");
  bench::note("boundary and misses commutative-fold rewrites entirely --");
  bench::note("why the paper builds on instruction-grain monitors.");

  // The structural escape the block fold cannot see: reordering.
  bench::heading("Reordered-instruction attack (same multiset of words)");
  isa::Program straight = isa::assemble(
      "main:\n"
      "  addiu $t0, $t0, 1\n"
      "  addiu $t1, $t1, 2\n"
      "  addiu $t2, $t2, 3\n"
      "  jr $ra\n");
  MerkleTreeHash h2(0xABCD);
  HardwareMonitor im(extract_graph(straight, h2),
                     std::make_unique<MerkleTreeHash>(h2));
  BlockMonitor bm(extract_block_graph(straight, h2),
                  std::make_unique<MerkleTreeHash>(h2));
  // Execute instructions 2,1,0 (reordered) then the jr.
  const std::uint32_t seq[] = {straight.text[2], straight.text[1],
                               straight.text[0], straight.text[3]};
  bool instr_caught = false, block_caught = false;
  for (std::uint32_t w : seq) {
    if (im.on_instruction(w) == Verdict::Mismatch) instr_caught = true;
    if (bm.on_instruction(w) == Verdict::Mismatch) block_caught = true;
  }
  std::printf("  per-instruction monitor: %s\n",
              instr_caught ? "DETECTED" : "missed");
  std::printf("  basic-block monitor:     %s (commutative sum fold)\n",
              block_caught ? "DETECTED" : "missed");
  return 0;
}
