// Reproduces Figure 6: "Distribution of hash values using our Merkle-tree-
// based hashing" -- for each input-pair Hamming distance d in 1..32,
// generate 10,000 random 32-bit pairs at exactly that distance, hash both
// with the paper's 4-bit Merkle hash, and report the distribution of the
// 4-bit output Hamming distance (0..4).
//
// Paper's observation to reproduce: the output Hamming distance follows
// the same near-binomial ("Gaussian") distribution regardless of the input
// distance -- i.e., indistinguishable from random changes -- except for a
// slight deviation at input distance 1.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/hash.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::monitor;

  bench::heading(
      "Figure 6: output Hamming distance distribution of the Merkle hash");
  bench::note("10,000 random 32-bit pairs per input Hamming distance;");
  bench::note("4-bit hash; paper-prototype arithmetic-sum compression.");

  constexpr int kPairsPerDistance = 10'000;
  util::Rng rng(0xF16);
  MerkleTreeHash hash(0xD1CEB00C, 4, Compression::ArithmeticSum);

  // Reference: output HD of two independent random 4-bit values follows
  // Binomial(4, 1/2) over differing bits -- compute it empirically too.
  double reference[5] = {};
  for (int i = 0; i < 100'000; ++i) {
    auto a = static_cast<std::uint8_t>(rng.below(16));
    auto b = static_cast<std::uint8_t>(rng.below(16));
    ++reference[std::popcount(static_cast<unsigned>(a ^ b))];
  }
  for (double& v : reference) v /= 100'000;

  std::printf("\n%-9s %8s %8s %8s %8s %8s %8s\n", "input HD", "out=0",
              "out=1", "out=2", "out=3", "out=4", "mean");
  bench::rule(66);
  std::printf("%-9s %8.3f %8.3f %8.3f %8.3f %8.3f %8s\n", "random",
              reference[0], reference[1], reference[2], reference[3],
              reference[4], "2.000");

  double worst_l1 = 0.0;
  int worst_d = 0;
  for (int d = 1; d <= 32; ++d) {
    int counts[5] = {};
    for (int pair = 0; pair < kPairsPerDistance; ++pair) {
      std::uint32_t a = rng.next_u32();
      // Flip exactly d random distinct bits.
      std::uint32_t b = a;
      int flipped = 0;
      while (flipped < d) {
        int bit = static_cast<int>(rng.below(32));
        if (((a ^ b) >> bit) & 1) continue;  // already flipped
        b ^= 1u << bit;
        ++flipped;
      }
      int out_hd = std::popcount(
          static_cast<unsigned>(hash.hash(a) ^ hash.hash(b)));
      ++counts[out_hd];
    }
    double mean = 0;
    double frac[5];
    for (int i = 0; i <= 4; ++i) {
      frac[i] = static_cast<double>(counts[i]) / kPairsPerDistance;
      mean += i * frac[i];
    }
    std::printf("%-9d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", d, frac[0],
                frac[1], frac[2], frac[3], frac[4], mean);
    double l1 = 0;
    for (int i = 0; i <= 4; ++i) l1 += std::fabs(frac[i] - reference[i]);
    if (l1 > worst_l1) {
      worst_l1 = l1;
      worst_d = d;
    }
  }
  bench::rule(66);
  std::printf(
      "\nLargest L1 deviation from the random-pair reference: %.3f at input"
      " HD %d\n",
      worst_l1, worst_d);
  bench::note("Paper's shape: near-binomial at every input distance, with the");
  bench::note("largest (still small) deviation at input Hamming distance 1.");

  // Extension: the S-box compression (the SR2 fix, see EXPERIMENTS.md)
  // must preserve the distribution quality, including at input HD 1.
  bench::heading("Extension: S-box compression at the worst input distances");
  MerkleTreeHash sbox_hash(0xD1CEB00C, 4, Compression::SboxSum);
  std::printf("%-9s %8s %8s %8s %8s %8s %8s\n", "input HD", "out=0", "out=1",
              "out=2", "out=3", "out=4", "mean");
  bench::rule(66);
  for (int d : {1, 2, 4, 16, 32}) {
    int counts[5] = {};
    for (int pair = 0; pair < kPairsPerDistance; ++pair) {
      std::uint32_t a = rng.next_u32();
      std::uint32_t b = a;
      int flipped = 0;
      while (flipped < d) {
        int bit = static_cast<int>(rng.below(32));
        if (((a ^ b) >> bit) & 1) continue;
        b ^= 1u << bit;
        ++flipped;
      }
      ++counts[std::popcount(
          static_cast<unsigned>(sbox_hash.hash(a) ^ sbox_hash.hash(b)))];
    }
    double mean = 0;
    double frac[5];
    for (int i = 0; i <= 4; ++i) {
      frac[i] = static_cast<double>(counts[i]) / kPairsPerDistance;
      mean += i * frac[i];
    }
    std::printf("%-9d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", d, frac[0],
                frac[1], frac[2], frac[3], frac[4], mean);
  }
  bench::note("The fix keeps the avalanche quality while making collisions");
  bench::note("parameter-dependent (see bench/fleet_diversity).");
  return 0;
}
