// Extension experiment: code-reuse (jump-to-existing-code) attacks vs.
// the hardware monitor. Unlike code injection -- caught per instruction
// with p = 1 - 2^-w -- a diversion into existing code replays hashes that
// are all "in the graph"; detection relies on the tracked position, and
// the analyzer's over-approximation of indirect-jump successors
// whitelists some targets. This bench sweeps every word-aligned target in
// the ipv4-cm binary and reports the monitor's blind spot.
#include <cstdio>

#include "attack/reuse.hpp"
#include "bench_util.hpp"
#include "isa/disassembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"

int main() {
  using namespace sdmmon;

  bench::heading("Code-reuse attack sweep over the ipv4-cm binary");
  bench::note("the CM overflow redirects the saved $ra to every word-");
  bench::note("aligned text address; outcomes under an armed monitor:");

  isa::Program app = net::build_ipv4_cm();

  std::printf("\n%-12s %10s %10s %10s %10s %8s\n", "hash param", "targets",
              "detected", "trapped", "silent", "blind%");
  bench::rule(68);
  attack::ReuseScan last;
  for (std::uint32_t param :
       {0x11111111u, 0x5A5A5A5Au, 0xCAFED00Du, 0x00000001u}) {
    attack::ReuseScan scan = attack::scan_cm_reuse_targets(param);
    std::printf("0x%08x %10zu %10zu %10zu %10zu %7.1f%%\n", param,
                scan.targets, scan.detected, scan.trapped, scan.silent,
                100.0 * scan.silent_fraction());
    last = std::move(scan);
  }
  bench::rule(68);

  std::printf("\nSilent targets (monitor blind spot) for the last run:\n");
  for (std::uint32_t index : last.silent_targets) {
    std::printf("  text[%3u] @0x%05x: %s\n", index, app.text_base + index * 4,
                isa::disassemble(app.text[index], app.text_base + index * 4)
                    .c_str());
  }
  std::printf(
      "\nReading the blind spot:\n"
      "  * the legitimate return site (instruction after `jal cm_process`)\n"
      "    is silent by definition -- redirecting there IS normal return.\n"
      "  * other silent targets fall inside the analyzer's indirect-jump\n"
      "    over-approximation (return sites / call targets) or replay a\n"
      "    hash-compatible walk of the graph.\n"
      "  * everything else is detected or traps: code-reuse is far harder\n"
      "    than it is against an unmonitored core, but -- unlike injection\n"
      "    -- not probabilistically impossible. A limitation worth stating\n"
      "    that the paper does not evaluate.\n");
  return 0;
}
