// Reproduces Table 1: "Resource use on DE4 FPGA" -- the security control
// processor vs. one NP core with hardware monitor, via the structural
// resource model (see DESIGN.md section 5 for the substitution rationale).
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "monitor/resource_model.hpp"
#include "net/apps.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::monitor;

  bench::heading("Table 1: Resource use on DE4 FPGA (paper vs. model)");

  const auto ctrl = control_processor_inventory();
  // Size the monitor's graph memory from the real IPv4+CM monitoring graph.
  MerkleTreeHash hash(0x1234ABCD);
  auto graph = extract_graph(net::build_ipv4_cm(), hash);
  const auto np_core = np_core_with_monitor_inventory();

  auto ctrl_total = total(ctrl);
  auto np_total = total(np_core);

  std::printf("%-28s %12s %12s %14s\n", "", "LUTs", "FFs", "Memory bits");
  bench::rule();
  std::printf("%-28s %12llu %12llu %14llu\n", "Available on FPGA",
              (unsigned long long)kStratixIvCapacity.luts,
              (unsigned long long)kStratixIvCapacity.ffs,
              (unsigned long long)kStratixIvCapacity.mem_bits);
  std::printf("%-28s %12llu %12llu %14llu\n", "Nios II contr. proc (paper)",
              (unsigned long long)kPaperControlProcessor.luts,
              (unsigned long long)kPaperControlProcessor.ffs,
              (unsigned long long)kPaperControlProcessor.mem_bits);
  std::printf("%-28s %12llu %12llu %14llu\n", "Nios II contr. proc (model)",
              (unsigned long long)ctrl_total.luts,
              (unsigned long long)ctrl_total.ffs,
              (unsigned long long)ctrl_total.mem_bits);
  std::printf("%-28s %12llu %12llu %14llu\n", "NP core w/ monitor (paper)",
              (unsigned long long)kPaperNpCoreWithMonitor.luts,
              (unsigned long long)kPaperNpCoreWithMonitor.ffs,
              (unsigned long long)kPaperNpCoreWithMonitor.mem_bits);
  std::printf("%-28s %12llu %12llu %14llu\n", "NP core w/ monitor (model)",
              (unsigned long long)np_total.luts,
              (unsigned long long)np_total.ffs,
              (unsigned long long)np_total.mem_bits);
  bench::rule();

  std::printf("\nControl-processor inventory (model decomposition):\n");
  for (const auto& c : ctrl) {
    std::printf("  %-38s %8llu LUT %8llu FF %10llu mem\n", c.name.c_str(),
                (unsigned long long)c.cost.luts, (unsigned long long)c.cost.ffs,
                (unsigned long long)c.cost.mem_bits);
  }
  std::printf("\nNP-core-with-monitor inventory (model decomposition):\n");
  for (const auto& c : np_core) {
    std::printf("  %-38s %8llu LUT %8llu FF %10llu mem\n", c.name.c_str(),
                (unsigned long long)c.cost.luts, (unsigned long long)c.cost.ffs,
                (unsigned long long)c.cost.mem_bits);
  }

  const double ratio =
      static_cast<double>(ctrl_total.luts) / static_cast<double>(np_total.luts);
  std::printf("\nKey claim (Sec 4.1): control processor is ~1/3 of a monitored"
              " NP core.\n  LUT ratio: %.2f  (paper: %.2f)\n",
              ratio,
              static_cast<double>(kPaperControlProcessor.luts) /
                  static_cast<double>(kPaperNpCoreWithMonitor.luts));
  std::printf("  IPv4+CM monitoring graph actually needs %zu bits"
              " (provisioned store: 2,000,000 bits)\n",
              graph.size_bits());
  std::printf("  Control processor uses %.1f%% of device LUTs; NP core w/"
              " monitor %.1f%%.\n",
              100.0 * static_cast<double>(ctrl_total.luts) /
                  static_cast<double>(kStratixIvCapacity.luts),
              100.0 * static_cast<double>(np_total.luts) /
                  static_cast<double>(kStratixIvCapacity.luts));

  // Extension: multicore capacity planning -- how many monitored NP cores
  // (plus one shared control processor) fit on the prototype's device?
  int max_cores = 0;
  for (int cores = 1;; ++cores) {
    ResourceCost need = ctrl_total;
    for (int c = 0; c < cores; ++c) need += np_total;
    if (need.luts > kStratixIvCapacity.luts ||
        need.ffs > kStratixIvCapacity.ffs ||
        need.mem_bits > kStratixIvCapacity.mem_bits) {
      break;
    }
    max_cores = cores;
  }
  std::printf("\nExtension: one control processor + %d monitored NP cores fit"
              " on the EP4SGX230\n"
              "(limited by %s).\n",
              max_cores,
              (ctrl_total.mem_bits +
               static_cast<std::uint64_t>(max_cores + 1) * np_total.mem_bits >
               kStratixIvCapacity.mem_bits)
                  ? "block-RAM bits (monitor graph stores)"
                  : "logic (LUTs)");
  return 0;
}
