// Google-benchmark microbenchmarks for the primitives: hash functions,
// SHA-256, AES, RSA ops, monitor stepping, and core simulation rate.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "crypto/aes.hpp"
#include "crypto/bignum.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "monitor/analysis.hpp"
#include "monitor/block_monitor.hpp"
#include "monitor/graph_codec.hpp"
#include "monitor/monitor.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/monitored_core.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdmmon;

void BM_MerkleHash(benchmark::State& state) {
  monitor::MerkleTreeHash hash(0x12345678,
                               static_cast<int>(state.range(0)));
  std::uint32_t word = 0xDEADBEEF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.hash(word));
    ++word;
  }
}
BENCHMARK(BM_MerkleHash)->Arg(2)->Arg(4)->Arg(8);

void BM_BitcountHash(benchmark::State& state) {
  monitor::BitcountHash hash;
  std::uint32_t word = 0xDEADBEEF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.hash(word));
    ++word;
  }
}
BENCHMARK(BM_BitcountHash);

void BM_Sha256(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_AesCbcEncrypt(benchmark::State& state) {
  util::Bytes key = util::from_hex("000102030405060708090a0b0c0d0e0f");
  crypto::AesBlock iv{};
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_encrypt(key, iv, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(4096)->Arg(65536);

void BM_RsaSignVerify(benchmark::State& state) {
  static const crypto::RsaKeyPair kp = [] {
    crypto::Drbg drbg("micro-rsa");
    return crypto::rsa_generate(static_cast<std::size_t>(2048), drbg);
  }();
  util::Bytes msg = util::bytes_of("benchmark message");
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, msg));
    }
  } else {
    util::Bytes sig = crypto::rsa_sign(kp.priv, msg);
    for (auto _ : state) {
      benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, msg, sig));
    }
  }
}
BENCHMARK(BM_RsaSignVerify)->Arg(0)->Arg(1);

void BM_BigUintMul(benchmark::State& state) {
  crypto::Drbg d("micro-mul");
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  crypto::BigUint a = crypto::BigUint::from_bytes_be(d.bytes(bytes));
  crypto::BigUint b = crypto::BigUint::from_bytes_be(d.bytes(bytes));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
// 128 B = schoolbook; 256/512 B cross the Karatsuba threshold (24 limbs).
BENCHMARK(BM_BigUintMul)->Arg(128)->Arg(256)->Arg(512);

void BM_Modexp2048(benchmark::State& state) {
  crypto::Drbg d("micro-modexp");
  crypto::BigUint m = crypto::BigUint::from_bytes_be(d.bytes(256));
  if (!m.is_odd()) m += crypto::BigUint(1);
  crypto::BigUint base = crypto::BigUint::from_bytes_be(d.bytes(256));
  crypto::BigUint exp = crypto::BigUint::from_bytes_be(d.bytes(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigUint::modexp(base, exp, m));
  }
}
BENCHMARK(BM_Modexp2048);

void BM_GraphCodecEncode(benchmark::State& state) {
  isa::Program app = net::build_ipv4_cm();
  monitor::MerkleTreeHash hash(0xC0DEC);
  monitor::MonitoringGraph graph = monitor::extract_graph(app, hash);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::encode_graph(graph));
  }
}
BENCHMARK(BM_GraphCodecEncode);

void BM_BlockMonitorStep(benchmark::State& state) {
  isa::Program app = net::build_ipv4_forward();
  monitor::MerkleTreeHash hash(0xB10C);
  monitor::BlockMonitor monitor(
      monitor::extract_block_graph(app, hash),
      std::make_unique<monitor::MerkleTreeHash>(hash));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.on_instruction(app.text[i % 2]));
    if (++i % 64 == 0) monitor.reset();
  }
}
BENCHMARK(BM_BlockMonitorStep);

void BM_MonitorStep(benchmark::State& state) {
  isa::Program app = net::build_ipv4_forward();
  monitor::MerkleTreeHash hash(0xFEEDF00D);
  monitor::HardwareMonitor monitor(
      monitor::extract_graph(app, hash),
      std::make_unique<monitor::MerkleTreeHash>(hash));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.on_instruction(app.text[i % 2]));
    if (++i % 64 == 0) monitor.reset();
  }
}
BENCHMARK(BM_MonitorStep);

void BM_ProcessPacket(benchmark::State& state) {
  isa::Program app = net::build_ipv4_forward();
  monitor::MerkleTreeHash hash(0x600D);
  np::MonitoredCore core;
  core.install(app, monitor::extract_graph(app, hash),
               std::make_unique<monitor::MerkleTreeHash>(hash));
  net::TrafficGenerator gen;
  auto pkt = gen.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.process_packet(pkt.packet));
  }
}
BENCHMARK(BM_ProcessPacket);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): under SDMMON_BENCH_QUICK
// (bench-smoke CI) cap google-benchmark's self-calibration by injecting
// --benchmark_min_time before the user's args (so an explicit flag still
// wins). The bare-double spelling is the one every library version
// parses; the "0.01s" form only exists in newer releases.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  char quick_flag[] = "--benchmark_min_time=0.01";
  if (sdmmon::bench::quick_mode()) args.push_back(quick_flag);
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
