// Operational extension: cost of fleet-wide parameter rotation. SR2's
// diversity only helps while parameters stay secret; a prudent operator
// rotates them. This bench models sequential rotation campaigns across
// fleet sizes at the Table 2 per-install cost, and contrasts with the
// fast-switch path that canNOT rotate parameters (the parameter is baked
// into the sealed package).
#include <cstdio>

#include "bench_util.hpp"
#include "net/apps.hpp"
#include "sdmmon/fleet_ops.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::protocol;

  bench::heading("Fleet parameter-rotation campaigns (RSA-2048)");

  constexpr std::uint64_t kNow = 1'900'000'000;
  Manufacturer manufacturer("m", 2048, crypto::Drbg("rc-man"));
  NetworkOperator op("o", 2048, crypto::Drbg("rc-op"));
  op.accept_certificate(manufacturer.certify_operator(
      op.name(), op.public_key(), kNow - 10, kNow + 10'000'000));

  // A small real fleet gives the measured per-install cost; larger fleets
  // are modeled from it (the cost is per-device-constant).
  std::vector<std::unique_ptr<NetworkProcessorDevice>> devices;
  FleetOperator fleet(op, manufacturer.public_key());
  for (int i = 0; i < 3; ++i) {
    devices.push_back(
        manufacturer.provision_device("rc-router-" + std::to_string(i), 1));
    fleet.enroll(devices.back().get());
  }

  auto deploy = fleet.deploy(net::build_ipv4_forward(), kNow);
  if (deploy.succeeded != devices.size()) {
    std::printf("deploy failed\n");
    return 1;
  }
  const double per_install_s =
      deploy.modeled_seconds_sequential / static_cast<double>(devices.size());

  auto rotation = fleet.rotate_parameters(kNow + 60);
  std::printf("measured 3-router rotation: %zu ok, modeled %.1f s"
              " (%.1f s/router); parameters distinct: %s\n\n",
              rotation.succeeded, rotation.modeled_seconds_sequential,
              per_install_s, fleet.parameters_all_distinct() ? "yes" : "NO");

  std::printf("%-12s %18s %18s\n", "fleet size", "sequential", "20-way parallel");
  bench::rule(52);
  for (std::size_t n : {10u, 100u, 1'000u, 10'000u}) {
    const double seq_s = per_install_s * static_cast<double>(n);
    const double par_s = seq_s / 20.0;
    auto fmt = [](double s) {
      char buf[32];
      if (s < 120) std::snprintf(buf, sizeof(buf), "%.0f s", s);
      else if (s < 7200) std::snprintf(buf, sizeof(buf), "%.1f min", s / 60);
      else std::snprintf(buf, sizeof(buf), "%.1f h", s / 3600);
      return std::string(buf);
    };
    std::printf("%-12zu %18s %18s\n", n, fmt(seq_s).c_str(),
                fmt(par_s).c_str());
  }
  bench::rule(52);
  bench::note("per-router cost is Table 2's secure install (the parameter");
  bench::note("lives inside the sealed package, so rotation = reinstall);");
  bench::note("campaigns parallelize trivially across routers since each");
  bench::note("package is independent.");
  return 0;
}
