// Extension experiment X2: recovery latency and graceful degradation.
//
// The paper's recovery model (Section 2.1) is drop-packet + reset-core:
// one attack packet costs exactly that packet. This bench quantifies the
// system-level cost of the three recovery policies on an 8-core MPSoC as
// the injected attack rate rises: how much throughput survives, how many
// packets a core needs to recover after a detection, and how quickly
// quarantine trades residual capacity for containment.
#include <chrono>
#include <cstdio>
#include <vector>

#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "np/mpsoc.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdmmon;

constexpr std::size_t kCores = 8;
const int kPackets = bench::scaled(4000, 200);

struct RunResult {
  double forwarded_frac = 0;     // of all offered packets
  double benign_forwarded = 0;   // of benign packets only
  double undispatched_frac = 0;
  std::uint64_t detected = 0;
  std::size_t quarantined = 0;
  std::uint64_t reinstalls = 0;
  double pkts_to_recover = 0;    // mean packets on a core from detection
                                 // to its next successful forward
};

RunResult run(np::RecoveryPolicy policy, double attack_rate) {
  np::RecoveryConfig config;
  config.policy = policy;
  config.violation_threshold = 3;
  config.window_packets = 64;

  np::Mpsoc soc(kCores, np::DispatchPolicy::RoundRobin, config);
  isa::Program app = net::build_ipv4_cm();
  monitor::MerkleTreeHash hash(0xBEEFCAFE);
  soc.install_all(app, monitor::extract_graph(app, hash), hash);

  util::Rng rng(0x5EC0DE ^ static_cast<std::uint64_t>(attack_rate * 1e6) ^
                (static_cast<std::uint64_t>(policy) << 32));
  auto attack = attack::craft_cm_overflow(attack::marker_shellcode());

  // Recovery latency bookkeeping: per core, packets seen since the last
  // detection that have not yet ended in a forward.
  std::vector<std::int64_t> since_detect(kCores, -1);  // -1 = not recovering
  std::uint64_t recover_pkts = 0, recoveries = 0;
  std::uint64_t benign = 0, benign_fwd = 0;

  std::vector<std::uint64_t> pkts_before(kCores);
  for (int i = 0; i < kPackets; ++i) {
    bool hostile = rng.chance(attack_rate);
    util::Bytes packet = hostile
        ? attack.packet
        : attack::benign_cm_packet(static_cast<std::uint8_t>(rng.below(100)));
    if (!hostile) ++benign;

    for (std::size_t c = 0; c < kCores; ++c)
      pkts_before[c] = soc.core(c).stats().packets;
    np::PacketResult r =
        soc.process_packet(packet, static_cast<std::uint32_t>(rng.next()));
    // Which core took it? (8-way scan; fine at bench scale.)
    std::size_t who = kCores;
    for (std::size_t c = 0; c < kCores; ++c)
      if (soc.core(c).stats().packets != pkts_before[c]) who = c;

    if (!hostile && r.outcome == np::PacketOutcome::Forwarded) ++benign_fwd;
    if (who == kCores) continue;  // undispatched
    if (since_detect[who] >= 0) {
      ++since_detect[who];
      if (r.outcome == np::PacketOutcome::Forwarded) {
        recover_pkts += static_cast<std::uint64_t>(since_detect[who]);
        ++recoveries;
        since_detect[who] = -1;
      }
    }
    if (r.outcome == np::PacketOutcome::AttackDetected)
      since_detect[who] = 0;
  }

  np::MpsocStats stats = soc.aggregate_stats();
  RunResult out;
  out.forwarded_frac =
      static_cast<double>(stats.forwarded) / static_cast<double>(kPackets);
  out.benign_forwarded =
      benign == 0 ? 0 : static_cast<double>(benign_fwd) / benign;
  out.undispatched_frac =
      static_cast<double>(stats.undispatched) / static_cast<double>(kPackets);
  out.detected = stats.attacks_detected;
  out.quarantined = stats.quarantined_cores;
  out.reinstalls = stats.reinstalls;
  out.pkts_to_recover =
      recoveries == 0 ? 0
                      : static_cast<double>(recover_pkts) /
                            static_cast<double>(recoveries);
  return out;
}

}  // namespace

int main() {
  bench::heading("X2: recovery latency vs injected attack rate (8-core MPSoC)");

  const double rates[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  const np::RecoveryPolicy policies[] = {
      np::RecoveryPolicy::ResetAndContinue,
      np::RecoveryPolicy::QuarantineAfterK,
      np::RecoveryPolicy::ReinstallLastGood,
  };

  bench::BenchReport report("recovery_latency");
  report.set_meta("cores", kCores);
  report.set_meta("packets", kPackets);

  std::printf("%-20s %6s %8s %10s %8s %6s %6s %9s\n", "policy", "atk%",
              "fwd%", "benign-fwd%", "undisp%", "det", "quar", "pkts/rec");
  bench::rule(84);
  for (auto policy : policies) {
    for (double rate : rates) {
      RunResult r = run(policy, rate);
      std::printf("%-20s %5.0f%% %7.1f%% %10.1f%% %7.1f%% %6llu %6zu %9.2f\n",
                  np::recovery_policy_name(policy), rate * 100.0,
                  r.forwarded_frac * 100.0, r.benign_forwarded * 100.0,
                  r.undispatched_frac * 100.0,
                  static_cast<unsigned long long>(r.detected), r.quarantined,
                  r.pkts_to_recover);
      report.add_row({{"policy", np::recovery_policy_name(policy)},
                      {"attack_rate_pct", rate * 100.0},
                      {"forwarded_pct", r.forwarded_frac * 100.0},
                      {"benign_forwarded_pct", r.benign_forwarded * 100.0},
                      {"undispatched_pct", r.undispatched_frac * 100.0},
                      {"detected", r.detected},
                      {"quarantined_cores", r.quarantined},
                      {"reinstalls", r.reinstalls},
                      {"packets_to_recover", r.pkts_to_recover}});
    }
    bench::rule(84);
  }
  bench::note("ipv4-cm on all 8 cores, round-robin dispatch, 4000 packets,");
  bench::note("hostile packets are the CM heap overflow with marker shellcode.");
  bench::note("pkts/rec: mean packets a core processes between an attack");
  bench::note("detection and its next successful forward (paper model: the");
  bench::note("reset costs only the attack packet, so ~1 for reset-and-");
  bench::note("continue). benign-fwd%: goodput -- benign packets that still");
  bench::note("made it out; under quarantine it shows capacity traded for");
  bench::note("containment (undisp% = packets with no dispatchable core).");

  // ---- X2b: re-image cost, shared artifact vs per-reinstall recompile --
  // reinstall_core re-images a core from LastGoodConfig. Before the
  // compiled-graph pipeline that meant deep-copying the wire-format
  // graph and rebuilding the monitor's tables on every quarantine
  // recovery; now it swaps the shared immutable artifact back in. Both
  // paths are timed here on a bare core so the before/after lives in
  // the BENCH JSON next to the policy sweeps above.
  bench::heading("X2b: core re-image latency (last-good reinstall path)");
  {
    using BClock = std::chrono::steady_clock;
    isa::Program app = net::build_ipv4_cm();
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    monitor::MonitoringGraph graph = monitor::extract_graph(app, hash);
    std::shared_ptr<const monitor::CompiledGraph> artifact =
        monitor::CompiledGraph::compile(graph);
    const int reps = bench::scaled(2000, 20);

    np::MonitoredCore core;
    // Warm both paths once (first install sizes core memory etc.).
    core.install(app, artifact, std::make_unique<monitor::MerkleTreeHash>(hash));

    auto start = BClock::now();
    for (int i = 0; i < reps; ++i) {
      core.install(app, artifact,
                   std::make_unique<monitor::MerkleTreeHash>(hash));
    }
    const double shared_ns =
        std::chrono::duration<double, std::nano>(BClock::now() - start)
            .count() / reps;

    start = BClock::now();
    for (int i = 0; i < reps; ++i) {
      // The pre-refactor reinstall: copy the wire graph, recompile it.
      monitor::MonitoringGraph copy = graph;
      core.install(app, std::move(copy),
                   std::make_unique<monitor::MerkleTreeHash>(hash));
    }
    const double recompile_ns =
        std::chrono::duration<double, std::nano>(BClock::now() - start)
            .count() / reps;

    std::printf("%-34s %12.0f ns/reinstall\n",
                "shared compiled artifact (now)", shared_ns);
    std::printf("%-34s %12.0f ns/reinstall\n",
                "graph copy + recompile (before)", recompile_ns);
    std::printf("%-34s %11.2fx\n", "reinstall speedup", recompile_ns / shared_ns);
    report.add_row({{"reinstall_path", "shared_artifact"},
                    {"reinstall_ns", shared_ns}});
    report.add_row({{"reinstall_path", "recompile_copy"},
                    {"reinstall_ns", recompile_ns}});
    report.set_meta("reinstall_speedup", recompile_ns / shared_ns);
    bench::note("ipv4-cm config; shared path is what reinstall_core now");
    bench::note("does (pointer swap into the core's monitor), recompile");
    bench::note("path replays the old per-reinstall deep copy + compile.");
  }
  report.write();
  return 0;
}
