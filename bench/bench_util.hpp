// Shared table-printing helpers for the reproduction benches. Each bench
// binary regenerates one table or figure from the paper and prints the
// paper's published values next to the reproduction's numbers.
#ifndef SDMMON_BENCH_BENCH_UTIL_HPP
#define SDMMON_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>

namespace sdmmon::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sdmmon::bench

#endif  // SDMMON_BENCH_BENCH_UTIL_HPP
