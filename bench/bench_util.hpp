// Shared helpers for the reproduction benches. Each bench binary
// regenerates one table or figure from the paper, prints the paper's
// published values next to the reproduction's numbers, and (via
// BenchReport) emits the same rows as machine-readable JSON so CI and
// docs tooling can consume them (schema: docs/BENCHMARKS.md).
#ifndef SDMMON_BENCH_BENCH_UTIL_HPP
#define SDMMON_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace sdmmon::bench {

/// True when SDMMON_BENCH_QUICK is set (non-empty, not "0"). CI's
/// bench-smoke job runs every bench this way: tiny iteration budgets
/// that validate wiring and the BENCH_*.json schema, not performance.
inline bool quick_mode() {
  const char* env = std::getenv("SDMMON_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// `full` iterations normally, `quick` under SDMMON_BENCH_QUICK.
inline int scaled(int full, int quick) { return quick_mode() ? quick : full; }

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Machine-readable companion to the printed tables. Usage:
///   BenchReport report("monitor_throughput");
///   report.set_meta("packets", packets);
///   report.add_row({{"app", "ipv4-cm"}, {"kpps", 123.4}});
///   ...
///   report.write();  // BENCH_monitor_throughput.json
///
/// The file lands in $SDMMON_BENCH_JSON_DIR (if set) or the working
/// directory. Shape (validated by tools/check_docs.sh):
///   {"bench": <name>, "schema": 1, "meta": {...}, "rows": [{...}, ...]}
class BenchReport {
 public:
  using Field = std::pair<const char*, obs::JsonScalar>;

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set_meta(const char* key, obs::JsonScalar value) {
    meta_.emplace_back(key, std::move(value));
  }

  void add_row(std::initializer_list<Field> fields) {
    rows_.emplace_back(fields.begin(), fields.end());
  }

  std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.key("bench").value(name_);
    w.key("schema").value(1);
    w.key("meta").begin_object();
    for (const Field& field : meta_) write_field(w, field);
    w.end_object();
    w.key("rows").begin_array();
    for (const std::vector<Field>& row : rows_) {
      w.begin_object();
      for (const Field& field : row) write_field(w, field);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

  /// Write BENCH_<name>.json; returns the path ("" on I/O failure, with
  /// a diagnostic on stderr -- benches keep printing either way).
  std::string write() const {
    std::string dir;
    if (const char* env = std::getenv("SDMMON_BENCH_JSON_DIR")) dir = env;
    std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return "";
    }
    const std::string text = to_json();
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("\n  [json: %s]\n", path.c_str());
    return path;
  }

 private:
  static void write_field(obs::JsonWriter& w, const Field& field) {
    w.key(field.first).value(field.second);
  }

  std::string name_;
  std::vector<Field> meta_;
  std::vector<std::vector<Field>> rows_;
};

}  // namespace sdmmon::bench

#endif  // SDMMON_BENCH_BENCH_UTIL_HPP
