// Extension experiment X2: parallel MPSoC engine scaling. The serial
// Mpsoc processes one packet at a time regardless of core count; the
// ParallelMpsoc shards cores over worker threads with flow affinity
// (per-shard work-stealing deques, a global reorder buffer, in-order
// fold) and keeps RoundRobin / FlowHash traces bit-identical to the
// serial engine (verified by tests/mpsoc_parallel_diff_test.cpp). This
// bench measures the price and the payoff: packets/sec of the serial
// baseline vs the parallel engine at 1, 2, 4, and 8 workers on the
// same 8-core fleet and workload — plus the cost of speculation under
// an acting recovery policy, where every rollback restores only the
// dirty pages the speculated packets touched.
//
// Acceptance criterion (ISSUE 2): >= 3x serial throughput at 8 workers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "np/memmap.hpp"
#include "np/mpsoc.hpp"
#include "np/parallel_mpsoc.hpp"
#include "obs/obs.hpp"
#include "sdmmon/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kCores = 8;
const std::uint64_t kPackets =
    static_cast<std::uint64_t>(bench::scaled(200'000, 2'000));

// Echo app: copy the packet to the output buffer and commit. Heavy
// enough (a few hundred instructions per packet) that worker threads,
// not the planner/fold path, dominate the critical path.
constexpr const char* kEchoApp = R"(
main:
    li $t0, 0xFFFF0000
    lw $t1, 0($t0)
    beqz $t1, drop
    li $t2, 0x30000
    li $t3, 0x40000
    move $t4, $zero
copy:
    addu $t5, $t2, $t4
    lbu $t6, 0($t5)
    addu $t5, $t3, $t4
    sb $t6, 0($t5)
    addiu $t4, $t4, 1
    bne $t4, $t1, copy
    li $t0, 0xFFFF0004
    sw $t1, 0($t0)
drop:
    jr $ra
)";

template <typename Soc>
void install_echo(Soc& soc) {
  isa::Program p = isa::assemble(kEchoApp);
  monitor::MerkleTreeHash hash(0x5CA1E);
  soc.install_all(p, monitor::extract_graph(p, hash), hash);
}

std::vector<protocol::WorkItem> make_items() {
  protocol::MixedWorkloadConfig config;
  config.seed = 0x5CA11;
  config.min_payload = 16;
  config.max_payload = 48;
  return protocol::MixedWorkload(config).generate(0, kPackets);
}

double run_serial(const std::vector<protocol::WorkItem>& items) {
  np::Mpsoc soc(kCores, np::DispatchPolicy::RoundRobin);
  install_echo(soc);
  auto start = Clock::now();
  for (const auto& item : items) {
    (void)soc.process_packet(item.packet, item.flow_key);
  }
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (soc.aggregate_stats().forwarded != items.size()) {
    std::fprintf(stderr, "serial engine dropped packets unexpectedly\n");
    std::exit(1);
  }
  return static_cast<double>(items.size()) / seconds;
}

double run_parallel(const std::vector<protocol::WorkItem>& items,
                    std::size_t workers) {
  np::ParallelConfig parallel;
  parallel.workers = workers;
  np::ParallelMpsoc soc(kCores, np::DispatchPolicy::RoundRobin, {}, parallel);
  install_echo(soc);
  auto start = Clock::now();
  for (const auto& item : items) {
    soc.submit(item.packet, item.flow_key);
  }
  soc.flush();
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (soc.aggregate_stats().forwarded != items.size()) {
    std::fprintf(stderr, "parallel engine dropped packets unexpectedly\n");
    std::exit(1);
  }
  return static_cast<double>(items.size()) / seconds;
}

// ---- rollback cost under an acting recovery policy -------------------
//
// Speculation is free until a recovery action fires; then the engine
// takes a recovery epoch and rolls the speculated tail back by
// restoring the dirty pages each packet touched (np::Memory captures,
// page granularity). This section drives attack traffic through
// ReinstallLastGood so epochs fire continuously, then reads the
// np.parallel.* rollback telemetry: the packets-per-rollback-byte row
// regression-gates snapshot cost, and bytes-per-replayed-packet is
// compared against the full writable core state to show rollback cost
// is proportional to state touched, not core image size.

const std::uint64_t kRollbackPackets =
    static_cast<std::uint64_t>(bench::scaled(60'000, 1'500));
constexpr double kAttackRate = 0.03;

struct RollbackCost {
  std::uint64_t epochs = 0;
  std::uint64_t replayed = 0;
  std::uint64_t bytes = 0;
  std::uint64_t reinstalls = 0;
};

RollbackCost run_rollback_cost() {
  np::RecoveryConfig recovery;
  recovery.policy = np::RecoveryPolicy::ReinstallLastGood;
  recovery.violation_threshold = 3;
  recovery.window_packets = 64;
  // Never escalate to quarantine: the point is sustained reinstall
  // actions (and thus sustained rollback epochs), not containment.
  recovery.max_reinstalls = static_cast<std::size_t>(-1);

  np::ParallelMpsoc soc(kCores, np::DispatchPolicy::RoundRobin, recovery);
  isa::Program app = net::build_ipv4_cm();
  monitor::MerkleTreeHash hash(0xBEEFCAFE);
  soc.install_all(app, monitor::extract_graph(app, hash), hash);

  obs::Registry registry;
  soc.enable_obs(registry);

  util::Rng rng(0x0F0F5EED);
  auto attack = attack::craft_cm_overflow(attack::marker_shellcode());
  for (std::uint64_t i = 0; i < kRollbackPackets; ++i) {
    util::Bytes packet =
        rng.chance(kAttackRate)
            ? attack.packet
            : attack::benign_cm_packet(static_cast<std::uint8_t>(rng.below(100)));
    soc.submit(std::move(packet), static_cast<std::uint32_t>(i));
  }
  soc.flush();

  RollbackCost out;
  out.epochs = soc.speculation_rollbacks();
  out.replayed = registry.counter(obs::names::kParallelReplayedPackets).value();
  out.bytes = registry.counter(obs::names::kParallelRollbackBytes).value();
  out.reinstalls = soc.aggregate_stats().reinstalls;
  return out;
}

}  // namespace

int main() {
  bench::heading("X2: parallel MPSoC engine scaling (8-core fleet)");

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<protocol::WorkItem> items = make_items();
  bench::note("workload: " + std::to_string(kPackets) +
              " UDP packets, udp-echo on all 8 cores, RoundRobin");
  bench::note("host hardware threads: " + std::to_string(hw));

  bench::BenchReport report("mpsoc_parallel_scaling");
  report.set_meta("cores", kCores);
  report.set_meta("packets", kPackets);
  report.set_meta("hardware_threads", hw);

  const double serial_pps = run_serial(items);
  std::printf("\n%-16s %14s %10s\n", "engine", "packets/sec", "speedup");
  bench::rule(44);
  std::printf("%-16s %14.0f %9.2fx\n", "serial", serial_pps, 1.0);
  report.add_row(
      {{"engine", "serial"}, {"workers", 0}, {"pps", serial_pps},
       {"speedup", 1.0}});

  double pps8 = 0.0;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const double pps = run_parallel(items, workers);
    if (workers == 8) pps8 = pps;
    std::printf("parallel x%-5zu %15.0f %9.2fx\n", workers, pps,
                pps / serial_pps);
    report.add_row({{"engine", "parallel"},
                    {"workers", workers},
                    {"pps", pps},
                    {"speedup", pps / serial_pps}});
  }
  bench::rule(44);

  const double speedup = pps8 / serial_pps;
  bool scaling_ok;
  if (hw >= 8) {
    // The ISSUE 2 acceptance criterion applies on an 8-core host.
    scaling_ok = speedup >= 3.0;
    std::printf("\n8-worker speedup over serial: %.2fx -- %s (criterion: "
                ">= 3x on an 8-core host)\n",
                speedup, scaling_ok ? "PASS" : "FAIL");
  } else {
    // Fewer hardware threads than workers: speedup is capped at ~hw/1,
    // so the >= 3x criterion is not measurable. What IS measurable --
    // and what this host verifies -- is engine overhead: the full
    // plan + shard-deque + fold machinery must not cost meaningful
    // throughput vs the serial loop even when every thread shares one
    // CPU.
    std::printf("\n8-worker speedup over serial: %.2fx (host has only %u "
                "hardware thread%s;\nthe >= 3x criterion applies on an "
                "8-core host)\n",
                speedup, hw, hw == 1 ? "" : "s");
    scaling_ok = speedup >= 0.7;
    std::printf("overhead parity check (parallel >= 0.7x serial on a "
                "saturated host): %s\n",
                scaling_ok ? "PASS" : "FAIL");
  }
  bench::note("identical per-packet results to the serial engine; see");
  bench::note("tests/mpsoc_parallel_diff_test.cpp for the differential");
  bench::note("proof and docs/ARCHITECTURE.md for the sharded "
              "reorder-buffer design.");

  // ---- dirty-page rollback cost ------------------------------------
  bench::heading("X2c: speculation rollback cost (dirty-page snapshots)");
  bench::note("ipv4-cm under " + std::to_string(kRollbackPackets) +
              " packets at " +
              std::to_string(static_cast<int>(kAttackRate * 100)) +
              "% attack rate, ReinstallLastGood (every reinstall");
  bench::note("takes a recovery epoch that rolls the speculated tail "
              "back page-by-page)");

  const RollbackCost rc = run_rollback_cost();
  // Full writable per-core state, for scale: what a full-image snapshot
  // would copy per speculated packet instead of the touched pages.
  const double full_state_bytes = static_cast<double>(
      np::kDataSize + np::kStackSize + np::kPktInSize + np::kPktOutSize);
  const double bytes_per_replayed =
      rc.replayed == 0 ? 0.0
                       : static_cast<double>(rc.bytes) /
                             static_cast<double>(rc.replayed);
  const double pkts_per_rollback_byte =
      rc.bytes == 0 ? 0.0
                    : static_cast<double>(kRollbackPackets) /
                          static_cast<double>(rc.bytes);

  std::printf("\n%-28s %14s\n", "quantity", "value");
  bench::rule(44);
  std::printf("%-28s %14llu\n", "recovery epochs",
              static_cast<unsigned long long>(rc.epochs));
  std::printf("%-28s %14llu\n", "reinstalls",
              static_cast<unsigned long long>(rc.reinstalls));
  std::printf("%-28s %14llu\n", "replayed packets",
              static_cast<unsigned long long>(rc.replayed));
  std::printf("%-28s %14llu\n", "rollback bytes",
              static_cast<unsigned long long>(rc.bytes));
  std::printf("%-28s %14.1f\n", "bytes / replayed packet",
              bytes_per_replayed);
  std::printf("%-28s %14.0f\n", "full core state (bytes)", full_state_bytes);
  std::printf("%-28s %14.4f\n", "packets / rollback byte",
              pkts_per_rollback_byte);
  bench::rule(44);
  if (rc.bytes == 0) {
    bench::note("no rollback telemetry recorded (SDMMON_OBS=OFF build, or");
    bench::note("no recovery epoch fired on this budget) -- row kept for");
    bench::note("schema stability with zeroed values.");
  } else {
    std::printf("\nrollback restores %.1f bytes per replayed packet "
                "(%.0fx less than a\nfull %.0f-byte core-state copy)\n",
                bytes_per_replayed, full_state_bytes / bytes_per_replayed,
                full_state_bytes);
  }
  report.add_row({{"engine", "rollback_cost"},
                  {"policy", "reinstall_last_good"},
                  {"epochs", rc.epochs},
                  {"replayed_packets", rc.replayed},
                  {"rollback_bytes", rc.bytes},
                  {"bytes_per_replayed_packet", bytes_per_replayed},
                  {"pkts_per_rollback_byte", pkts_per_rollback_byte}});
  report.write();

  // Quick mode (bench-smoke CI) validates wiring and JSON schema on a
  // tiny budget; the perf criterion only gates full runs.
  return (scaling_ok || bench::quick_mode()) ? 0 : 1;
}
