// Extension experiment X2: parallel MPSoC engine scaling. The serial
// Mpsoc processes one packet at a time regardless of core count; the
// ParallelMpsoc runs one worker thread per core (or shards cores over
// fewer workers) with a batch-barrier commit that keeps RoundRobin /
// FlowHash traces bit-identical to the serial engine (verified by
// tests/mpsoc_parallel_diff_test.cpp). This bench measures the price and
// the payoff: packets/sec of the serial baseline vs the parallel engine
// at 1, 2, 4, and 8 workers on the same 8-core fleet and workload.
//
// Acceptance criterion (ISSUE 2): >= 3x serial throughput at 8 workers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "np/mpsoc.hpp"
#include "np/parallel_mpsoc.hpp"
#include "sdmmon/workload.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kCores = 8;
const std::uint64_t kPackets =
    static_cast<std::uint64_t>(bench::scaled(200'000, 2'000));

// Echo app: copy the packet to the output buffer and commit. Heavy
// enough (a few hundred instructions per packet) that worker threads,
// not the dispatcher, dominate the critical path.
constexpr const char* kEchoApp = R"(
main:
    li $t0, 0xFFFF0000
    lw $t1, 0($t0)
    beqz $t1, drop
    li $t2, 0x30000
    li $t3, 0x40000
    move $t4, $zero
copy:
    addu $t5, $t2, $t4
    lbu $t6, 0($t5)
    addu $t5, $t3, $t4
    sb $t6, 0($t5)
    addiu $t4, $t4, 1
    bne $t4, $t1, copy
    li $t0, 0xFFFF0004
    sw $t1, 0($t0)
drop:
    jr $ra
)";

template <typename Soc>
void install_echo(Soc& soc) {
  isa::Program p = isa::assemble(kEchoApp);
  monitor::MerkleTreeHash hash(0x5CA1E);
  soc.install_all(p, monitor::extract_graph(p, hash), hash);
}

std::vector<protocol::WorkItem> make_items() {
  protocol::MixedWorkloadConfig config;
  config.seed = 0x5CA11;
  config.min_payload = 16;
  config.max_payload = 48;
  return protocol::MixedWorkload(config).generate(0, kPackets);
}

double run_serial(const std::vector<protocol::WorkItem>& items) {
  np::Mpsoc soc(kCores, np::DispatchPolicy::RoundRobin);
  install_echo(soc);
  auto start = Clock::now();
  for (const auto& item : items) {
    (void)soc.process_packet(item.packet, item.flow_key);
  }
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (soc.aggregate_stats().forwarded != items.size()) {
    std::fprintf(stderr, "serial engine dropped packets unexpectedly\n");
    std::exit(1);
  }
  return static_cast<double>(items.size()) / seconds;
}

double run_parallel(const std::vector<protocol::WorkItem>& items,
                    std::size_t workers) {
  np::ParallelConfig parallel;
  parallel.workers = workers;
  np::ParallelMpsoc soc(kCores, np::DispatchPolicy::RoundRobin, {}, parallel);
  install_echo(soc);
  auto start = Clock::now();
  for (const auto& item : items) {
    soc.submit(item.packet, item.flow_key);
  }
  soc.flush();
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (soc.aggregate_stats().forwarded != items.size()) {
    std::fprintf(stderr, "parallel engine dropped packets unexpectedly\n");
    std::exit(1);
  }
  return static_cast<double>(items.size()) / seconds;
}

}  // namespace

int main() {
  bench::heading("X2: parallel MPSoC engine scaling (8-core fleet)");

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<protocol::WorkItem> items = make_items();
  bench::note("workload: " + std::to_string(kPackets) +
              " UDP packets, udp-echo on all 8 cores, RoundRobin");
  bench::note("host hardware threads: " + std::to_string(hw));

  bench::BenchReport report("mpsoc_parallel_scaling");
  report.set_meta("cores", kCores);
  report.set_meta("packets", kPackets);
  report.set_meta("hardware_threads", hw);

  const double serial_pps = run_serial(items);
  std::printf("\n%-16s %14s %10s\n", "engine", "packets/sec", "speedup");
  bench::rule(44);
  std::printf("%-16s %14.0f %9.2fx\n", "serial", serial_pps, 1.0);
  report.add_row(
      {{"engine", "serial"}, {"workers", 0}, {"pps", serial_pps},
       {"speedup", 1.0}});

  double pps8 = 0.0;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const double pps = run_parallel(items, workers);
    if (workers == 8) pps8 = pps;
    std::printf("parallel x%-5zu %15.0f %9.2fx\n", workers, pps,
                pps / serial_pps);
    report.add_row({{"engine", "parallel"},
                    {"workers", workers},
                    {"pps", pps},
                    {"speedup", pps / serial_pps}});
  }
  bench::rule(44);
  report.write();

  const double speedup = pps8 / serial_pps;
  if (hw >= 8) {
    // The ISSUE 2 acceptance criterion applies on an 8-core host.
    std::printf("\n8-worker speedup over serial: %.2fx -- %s (criterion: "
                ">= 3x on an 8-core host)\n",
                speedup, speedup >= 3.0 ? "PASS" : "FAIL");
    bench::note("identical per-packet results to the serial engine; see");
    bench::note("tests/mpsoc_parallel_diff_test.cpp for the differential");
    bench::note("proof and docs/ARCHITECTURE.md for the batch-barrier "
                "design.");
    // Quick mode (bench-smoke CI) validates wiring and JSON schema on a
    // tiny budget; the perf criterion only gates full runs.
    return (speedup >= 3.0 || bench::quick_mode()) ? 0 : 1;
  }
  // Fewer hardware threads than workers: speedup is capped at ~hw/1, so
  // the >= 3x criterion is not measurable. What IS measurable -- and what
  // this host verifies -- is engine overhead: the full queue + barrier +
  // commit machinery must not cost meaningful throughput vs the serial
  // loop even when every thread shares one CPU.
  std::printf("\n8-worker speedup over serial: %.2fx (host has only %u "
              "hardware thread%s;\nthe >= 3x criterion applies on an "
              "8-core host)\n",
              speedup, hw, hw == 1 ? "" : "s");
  const bool overhead_ok = speedup >= 0.7;
  std::printf("overhead parity check (parallel >= 0.7x serial on a "
              "saturated host): %s\n",
              overhead_ok ? "PASS" : "FAIL");
  bench::note("identical per-packet results to the serial engine; see");
  bench::note("tests/mpsoc_parallel_diff_test.cpp for the differential");
  bench::note("proof and docs/ARCHITECTURE.md for the batch-barrier design.");
  return (overhead_ok || bench::quick_mode()) ? 0 : 1;
}
