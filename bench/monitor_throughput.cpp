// Extension experiment X1: monitoring overhead on packet processing.
// In hardware the monitor runs in parallel with the core (zero cycle
// overhead); what this bench quantifies is (a) the per-packet instruction
// counts of each application, (b) the simulator-level cost of monitoring
// (relevant to anyone using this codebase for research), and (c) the
// monitor's tracked-state ambiguity, which sizes the comparator logic.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/monitored_core.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

struct AppCase {
  const char* name;
  isa::Program program;
};

}  // namespace

int main() {
  bench::heading("X1: per-app packet processing and monitoring cost");

  AppCase apps[] = {
      {"ipv4-forward", net::build_ipv4_forward()},
      {"ipv4-cm", net::build_ipv4_cm()},
      {"udp-echo", net::build_udp_echo()},
      {"firewall(8 ports)",
       net::build_firewall({21, 22, 23, 53, 80, 443, 8080, 8443})},
  };

  constexpr int kPackets = 2000;
  np::CycleModel cycle_model;  // 100 MHz PLASMA-like profile

  bench::BenchReport report("monitor_throughput");
  report.set_meta("packets", kPackets);

  std::printf("%-20s %9s %11s %6s %12s %11s %10s\n", "app", "fwd rate",
              "instrs/pkt", "CPI", "model kpps", "sim kpps", "ambiguity");
  bench::rule(84);

  for (auto& app : apps) {
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    auto graph = monitor::extract_graph(app.program, hash);

    np::MonitoredCore core;
    core.install(app.program, graph,
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    net::TrafficGenerator gen;

    auto start = Clock::now();
    for (int i = 0; i < kPackets; ++i) {
      (void)core.process_packet(gen.next().packet);
    }
    double sim_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    const auto& stats = core.stats();
    const np::InstrMix& mix = core.core().instr_mix();
    const double instr_per_pkt = static_cast<double>(stats.instructions) /
                                 static_cast<double>(stats.packets);
    const double forwarded_frac = static_cast<double>(stats.forwarded) /
                                  static_cast<double>(stats.packets);
    // Modeled throughput of the 100 MHz core on this workload.
    const double modeled_pps =
        static_cast<double>(kPackets) / cycle_model.seconds(mix);

    std::printf("%-20s %8.1f%% %11.0f %6.2f %12.1f %11.1f %10.2f\n",
                app.name, forwarded_frac * 100.0, instr_per_pkt,
                cycle_model.cpi(mix), modeled_pps / 1000.0,
                kPackets / sim_seconds / 1000.0,
                core.monitor().stats().average_ambiguity());
    report.add_row({{"app", app.name},
                    {"forwarded_pct", forwarded_frac * 100.0},
                    {"instr_per_packet", instr_per_pkt},
                    {"cpi", cycle_model.cpi(mix)},
                    {"model_kpps", modeled_pps / 1000.0},
                    {"sim_kpps", kPackets / sim_seconds / 1000.0},
                    {"ambiguity",
                     core.monitor().stats().average_ambiguity()}});
  }
  bench::rule(84);
  bench::note("model kpps: packets/s of the 100 MHz PLASMA-like core under");
  bench::note("the cycle-cost model (1c ALU, 2c load, 2c taken branch, 12c");
  bench::note("mul/div); the hardware monitor adds zero cycles.");
  bench::note("fwd rate: packets committed to output (rest legitimately");
  bench::note("dropped). ambiguity: mean tracked-state-set size -- the NFA");
  bench::note("width the monitor's comparators must support.");
  report.write();
  return 0;
}
