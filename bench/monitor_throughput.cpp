// Extension experiment X1: monitoring overhead on packet processing.
// In hardware the monitor runs in parallel with the core (zero cycle
// overhead); what this bench quantifies is (a) the per-packet instruction
// counts of each application, (b) the simulator-level cost of monitoring
// (relevant to anyone using this codebase for research), and (c) the
// monitor's tracked-state ambiguity, which sizes the comparator logic.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "monitor/reference_monitor.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/monitored_core.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

struct AppCase {
  const char* name;
  isa::Program program;
};

// Pre-generated hashed-report streams: valid random walks over `graph`,
// one vector per packet, so the timed loops below touch nothing but
// on_hashed(). Identical streams feed both walkers.
std::vector<std::vector<std::uint8_t>> make_streams(
    const monitor::MonitoringGraph& graph, std::size_t total_reports,
    util::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> streams;
  std::size_t generated = 0;
  while (generated < total_reports) {
    std::vector<std::uint8_t> stream;
    std::uint32_t at = graph.entry_index();
    for (int i = 0; i < 256; ++i) {
      stream.push_back(graph.node(at).hash);
      const auto& succ = graph.node(at).successors;
      if (succ.empty()) break;
      at = succ[rng.below(static_cast<std::uint32_t>(succ.size()))];
    }
    generated += stream.size();
    streams.push_back(std::move(stream));
  }
  return streams;
}

// Feed every stream (with a per-packet reset) and return million
// reports/s. `Monitor` is HardwareMonitor or ReferenceMonitor.
template <typename Monitor>
double time_walker(Monitor& monitor,
                   const std::vector<std::vector<std::uint8_t>>& streams,
                   std::size_t total_reports) {
  auto start = Clock::now();
  for (const auto& stream : streams) {
    monitor.reset();
    for (std::uint8_t report : stream) (void)monitor.on_hashed(report);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(total_reports) / seconds / 1e6;
}

}  // namespace

int main() {
  bench::heading("X1: per-app packet processing and monitoring cost");

  AppCase apps[] = {
      {"ipv4-forward", net::build_ipv4_forward()},
      {"ipv4-cm", net::build_ipv4_cm()},
      {"udp-echo", net::build_udp_echo()},
      {"firewall(8 ports)",
       net::build_firewall({21, 22, 23, 53, 80, 443, 8080, 8443})},
  };

  const int kPackets = bench::scaled(2000, 20);
  np::CycleModel cycle_model;  // 100 MHz PLASMA-like profile

  bench::BenchReport report("monitor_throughput");
  report.set_meta("packets", kPackets);

  std::printf("%-20s %9s %11s %6s %12s %11s %10s\n", "app", "fwd rate",
              "instrs/pkt", "CPI", "model kpps", "sim kpps", "ambiguity");
  bench::rule(84);

  for (auto& app : apps) {
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    auto graph = monitor::extract_graph(app.program, hash);

    np::MonitoredCore core;
    core.install(app.program, graph,
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    net::TrafficGenerator gen;

    auto start = Clock::now();
    for (int i = 0; i < kPackets; ++i) {
      (void)core.process_packet(gen.next().packet);
    }
    double sim_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    const auto& stats = core.stats();
    const np::InstrMix& mix = core.core().instr_mix();
    const double instr_per_pkt = static_cast<double>(stats.instructions) /
                                 static_cast<double>(stats.packets);
    const double forwarded_frac = static_cast<double>(stats.forwarded) /
                                  static_cast<double>(stats.packets);
    // Modeled throughput of the 100 MHz core on this workload.
    const double modeled_pps =
        static_cast<double>(kPackets) / cycle_model.seconds(mix);

    std::printf("%-20s %8.1f%% %11.0f %6.2f %12.1f %11.1f %10.2f\n",
                app.name, forwarded_frac * 100.0, instr_per_pkt,
                cycle_model.cpi(mix), modeled_pps / 1000.0,
                kPackets / sim_seconds / 1000.0,
                core.monitor().stats().average_ambiguity());
    report.add_row({{"app", app.name},
                    {"forwarded_pct", forwarded_frac * 100.0},
                    {"instr_per_packet", instr_per_pkt},
                    {"cpi", cycle_model.cpi(mix)},
                    {"model_kpps", modeled_pps / 1000.0},
                    {"sim_kpps", kPackets / sim_seconds / 1000.0},
                    {"ambiguity",
                     core.monitor().stats().average_ambiguity()}});
  }
  bench::rule(84);
  bench::note("model kpps: packets/s of the 100 MHz PLASMA-like core under");
  bench::note("the cycle-cost model (1c ALU, 2c load, 2c taken branch, 12c");
  bench::note("mul/div); the hardware monitor adds zero cycles.");
  bench::note("fwd rate: packets committed to output (rest legitimately");
  bench::note("dropped). ambiguity: mean tracked-state-set size -- the NFA");
  bench::note("width the monitor's comparators must support.");

  // ---- compiled hot loop vs the original reference walker --------------
  // Identical pre-generated hashed streams (valid random walks over each
  // app's graph, per-packet resets) through both implementations; the
  // only work timed is on_hashed().
  bench::heading("X1b: compiled monitor vs reference walker (on_hashed)");
  const std::size_t kReports =
      static_cast<std::size_t>(bench::scaled(2'000'000, 5'000));
  report.set_meta("hashed_reports", static_cast<std::uint64_t>(kReports));

  std::printf("%-20s %14s %14s %9s\n", "app", "ref Minstr/s",
              "compiled M/s", "speedup");
  bench::rule(62);
  for (auto& app : apps) {
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    auto graph = monitor::extract_graph(app.program, hash);
    util::Rng rng(0x57AB1E);
    auto streams = make_streams(graph, kReports, rng);
    std::size_t total = 0;
    for (const auto& s : streams) total += s.size();

    monitor::ReferenceMonitor reference(
        graph, std::make_unique<monitor::MerkleTreeHash>(hash));
    monitor::HardwareMonitor compiled(
        graph, std::make_unique<monitor::MerkleTreeHash>(hash));
    // Warm both walkers once so steady-state capacities are in place,
    // then interleave repetitions and keep each walker's best: the
    // timing windows are tens of milliseconds, so best-of-N measures
    // walker capability rather than scheduler interference.
    (void)time_walker(reference, streams, total);
    (void)time_walker(compiled, streams, total);
    double ref_mps = 0.0, compiled_mps = 0.0;
    for (int rep = 0; rep < bench::scaled(5, 2); ++rep) {
      ref_mps = std::max(ref_mps, time_walker(reference, streams, total));
      compiled_mps =
          std::max(compiled_mps, time_walker(compiled, streams, total));
    }
    const double speedup = compiled_mps / ref_mps;

    std::printf("%-20s %14.1f %14.1f %8.2fx\n", app.name, ref_mps,
                compiled_mps, speedup);
    report.add_row({{"app", app.name},
                    {"ref_minstr_s", ref_mps},
                    {"compiled_minstr_s", compiled_mps},
                    {"speedup", speedup}});
  }
  bench::rule(62);
  bench::note("same streams, same per-packet resets; speedup is the gain");
  bench::note("from install-time graph compilation (CSR arrays, hash-");
  bench::note("bucketed state, epoch dedup) over the filter/sort walker.");
  report.write();
  return 0;
}
