// Extension experiment X5: control-plane RPC latency under data-plane
// load.
//
// The paper's install protocol is a one-operator, one-wire exchange;
// the RPC server generalizes it to many concurrent operator sessions
// multiplexed onto one device whose MPSoC is simultaneously serving
// packets. This bench quantifies what that concurrency costs: eight
// operator sessions hammer the served device with a fixed verb mix
// (ping / metrics / journal / install) while a pump thread keeps
// MixedWorkload traffic flowing through the monitored cores, and we
// report per-verb p50/p95/p99 latency plus sustained request
// throughput. The ops_per_s figures feed the bench regression gate;
// the latency rows are informational (latency-class fields are
// deliberately not gated).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "isa/assembler.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/workload.hpp"

namespace {

using namespace sdmmon;
using BClock = std::chrono::steady_clock;

// Benign forwarding app so the pumped traffic exercises the monitored
// cores (same echo handler the test suites use; bench binaries cannot
// include tests/support).
constexpr const char* kEchoApp = R"(
main:
    li $t0, 0xFFFF0000
    lw $t1, 0($t0)        # len
    beqz $t1, drop
    li $t2, 0x30000       # src
    li $t3, 0x40000       # dst
    move $t4, $zero       # i
copy:
    addu $t5, $t2, $t4
    lbu $t6, 0($t5)
    addu $t5, $t3, $t4
    sb $t6, 0($t5)
    addiu $t4, $t4, 1
    bne $t4, $t1, copy
    li $t0, 0xFFFF0004    # commit
    sw $t1, 0($t0)
drop:
    jr $ra
)";

constexpr std::size_t kSessions = 8;  // acceptance floor: >= 8 concurrent
constexpr std::uint64_t kNow = 1'000'000;

// Verb mix per session. Installs are sparse (they serialize on the
// device lock and burn an RSA verify each); the polling verbs dominate,
// matching how a fleet controller actually talks to a device.
const int kPingsPerSession = bench::scaled(600, 20);
const int kMetricsPerSession = bench::scaled(300, 10);
const int kJournalPerSession = bench::scaled(300, 10);
const int kInstallsPerSession = bench::scaled(12, 2);

enum Verb { kPing = 0, kMetrics, kJournal, kInstall, kVerbCount };
const char* kVerbNames[kVerbCount] = {"ping", "metrics", "journal",
                                      "install"};

struct SessionStats {
  std::vector<std::uint64_t> latency_ns[kVerbCount];
  std::uint64_t failures = 0;
  std::uint64_t installs_delivered = 0;
  std::uint64_t installs_rejected = 0;  // sequence races -> ReplayRejected
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  std::size_t index = sorted.size() * static_cast<std::size_t>(pct) / 100;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

void run_session(rpc::RpcClient client, std::size_t worker,
                 const std::vector<util::Bytes>& packages,
                 SessionStats& stats) {
  for (int verb = 0; verb < kVerbCount; ++verb) {
    const int per_verb[] = {kPingsPerSession, kMetricsPerSession,
                            kJournalPerSession, kInstallsPerSession};
    stats.latency_ns[verb].reserve(static_cast<std::size_t>(per_verb[verb]));
  }
  // Interleave verbs instead of running them in phases, so every verb's
  // percentiles are measured against concurrent mixed traffic.
  const int total = kPingsPerSession + kMetricsPerSession +
                    kJournalPerSession + kInstallsPerSession;
  int issued[kVerbCount] = {0, 0, 0, 0};
  std::uint64_t journal_cursor = 0;
  std::size_t next_package = 0;
  for (int op = 0; op < total; ++op) {
    // Pick the verb furthest behind its quota; ties resolve in enum
    // order. Deterministic, no RNG needed.
    int verb = kPing;
    double best = 2.0;
    const int quota[kVerbCount] = {kPingsPerSession, kMetricsPerSession,
                                   kJournalPerSession, kInstallsPerSession};
    for (int v = 0; v < kVerbCount; ++v) {
      if (issued[v] >= quota[v]) continue;
      const double progress = static_cast<double>(issued[v]) / quota[v];
      if (progress < best) {
        best = progress;
        verb = v;
      }
    }
    ++issued[verb];

    const auto start = BClock::now();
    bool ok = false;
    switch (verb) {
      case kPing: {
        auto pong = client.ping((worker << 20) | static_cast<unsigned>(op));
        ok = pong.has_value();
        break;
      }
      case kMetrics:
        ok = client.metrics().has_value();
        break;
      case kJournal: {
        auto page = client.journal(journal_cursor);
        if (page) {
          journal_cursor = page->next_cursor;
          ok = true;
        }
        break;
      }
      case kInstall: {
        const util::Bytes& package = packages[next_package++];
        auto status =
            client.install(rpc::InstallPurpose::Rotate, package, kNow);
        if (status) {
          ok = true;
          if (*status ==
              static_cast<std::uint8_t>(protocol::InstallStatus::Ok)) {
            ++stats.installs_delivered;
          } else {
            ++stats.installs_rejected;
          }
        }
        break;
      }
      default:
        break;
    }
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(BClock::now() -
                                                             start)
            .count());
    if (ok) {
      stats.latency_ns[verb].push_back(ns);
    } else {
      ++stats.failures;
    }
  }
  client.goodbye();
}

}  // namespace

int main() {
  bench::heading("X5: concurrent RPC control plane under packet load");
  bench::BenchReport report("rpc_load");

  // ---- World: one served device, operator certified by the root ------
  protocol::Manufacturer mfg("manufacturer", 1024,
                             crypto::Drbg("rpc-load-mfg"));
  protocol::NetworkOperator op("operator", 1024,
                               crypto::Drbg("rpc-load-op"));
  op.accept_certificate(
      mfg.certify_operator("operator", op.public_key(), 0, kNow * 4));
  auto device = mfg.provision_device("np-bench", 4);

  isa::Program binary = isa::assemble(kEchoApp);
  if (device->install_bytes(
          op.program_device(binary, device->public_key()).serialize(),
          kNow) != protocol::InstallStatus::Ok) {
    std::fprintf(stderr, "rpc_load: initial install failed\n");
    return 1;
  }

  obs::Registry registry;
  rpc::DeviceHost host(*device, registry);
  rpc::ServerOptions options;
  options.challenge_seed = "rpc-load-challenge";
  rpc::RpcServer server(host, mfg.public_key(), options);
  if (!server.start()) {
    std::fprintf(stderr, "rpc_load: cannot bind loopback\n");
    return 1;
  }

  // Packages minted up front on this thread: NetworkOperator is not
  // thread-safe (sequence + parameter DRBG), workers only ship bytes.
  std::vector<std::vector<util::Bytes>> packages(kSessions);
  for (std::size_t w = 0; w < kSessions; ++w) {
    for (int i = 0; i < kInstallsPerSession; ++i) {
      packages[w].push_back(
          op.program_device(binary, device->public_key()).serialize());
    }
  }

  // Data-plane pump: keep the device lock contended for the whole run.
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    protocol::MixedWorkloadConfig config;
    config.seed = 0x10AD;
    protocol::MixedWorkload workload(config);
    std::uint64_t index = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<protocol::WorkItem> batch = workload.generate(index, 128);
      host.pump(batch);
      index += batch.size();
      std::this_thread::yield();
    }
  });

  // ---- Drive kSessions concurrent authenticated operator sessions ----
  std::vector<SessionStats> stats(kSessions);
  std::vector<std::thread> workers;
  const auto wall_start = BClock::now();
  for (std::size_t w = 0; w < kSessions; ++w) {
    auto client = rpc::RpcClient::connect(server.port());
    if (!client || !client->authenticate(op.certificate().serialize(),
                                         op.sign(client->auth_message()),
                                         kNow)) {
      std::fprintf(stderr, "rpc_load: session %zu failed to open\n", w);
      stop.store(true, std::memory_order_release);
      pump.join();
      return 1;
    }
    workers.emplace_back(run_session, std::move(*client), w,
                         std::cref(packages[w]), std::ref(stats[w]));
  }
  for (std::thread& t : workers) t.join();
  const double wall_s =
      std::chrono::duration<double>(BClock::now() - wall_start).count();

  stop.store(true, std::memory_order_release);
  pump.join();
  const std::uint64_t peak_sessions = server.sessions_served();
  server.stop();

  // ---- Aggregate ------------------------------------------------------
  std::uint64_t failures = 0, delivered = 0, rejected = 0, total_ops = 0;
  std::vector<std::uint64_t> merged[kVerbCount];
  std::vector<std::uint64_t> all;
  for (const SessionStats& s : stats) {
    failures += s.failures;
    delivered += s.installs_delivered;
    rejected += s.installs_rejected;
    for (int v = 0; v < kVerbCount; ++v) {
      merged[v].insert(merged[v].end(), s.latency_ns[v].begin(),
                       s.latency_ns[v].end());
      all.insert(all.end(), s.latency_ns[v].begin(), s.latency_ns[v].end());
      total_ops += s.latency_ns[v].size();
    }
  }

  report.set_meta("sessions", static_cast<std::uint64_t>(kSessions));
  report.set_meta("pump_packets", host.packets());
  report.set_meta("wall_s", wall_s);
  report.set_meta("failures", failures);
  report.set_meta("installs_delivered", delivered);
  report.set_meta("installs_rejected", rejected);
  report.set_meta("quick", bench::quick_mode());

  std::printf("  %zu sessions, %llu requests in %.2fs over %llu pumped"
              " packets (installs: %llu ok, %llu sequence-raced)\n\n",
              kSessions, (unsigned long long)total_ops, wall_s,
              (unsigned long long)host.packets(),
              (unsigned long long)delivered, (unsigned long long)rejected);
  std::printf("  %-9s %8s %10s %10s %10s %12s\n", "verb", "ops",
              "p50_us", "p95_us", "p99_us", "ops_per_s");
  bench::rule();
  auto emit = [&](const char* verb, std::vector<std::uint64_t>& ns) {
    std::sort(ns.begin(), ns.end());
    const double p50 = percentile(ns, 50) / 1e3;
    const double p95 = percentile(ns, 95) / 1e3;
    const double p99 = percentile(ns, 99) / 1e3;
    const double rate = wall_s > 0 ? ns.size() / wall_s : 0;
    std::printf("  %-9s %8zu %10.1f %10.1f %10.1f %12.1f\n", verb,
                ns.size(), p50, p95, p99, rate);
    report.add_row({{"verb", verb},
                    {"ops", static_cast<std::uint64_t>(ns.size())},
                    {"p50_us", p50},
                    {"p95_us", p95},
                    {"p99_us", p99},
                    {"ops_per_s", rate}});
  };
  for (int v = 0; v < kVerbCount; ++v) emit(kVerbNames[v], merged[v]);
  emit("all", all);

  bool ok = true;
  if (peak_sessions < kSessions) {
    std::fprintf(stderr, "rpc_load: only %llu sessions served (< %zu)\n",
                 (unsigned long long)peak_sessions, kSessions);
    ok = false;
  }
  if (failures != 0) {
    std::fprintf(stderr, "rpc_load: %llu request failures\n",
                 (unsigned long long)failures);
    ok = false;
  }
  bench::note(ok ? "sustained " + std::to_string(kSessions) +
                       " concurrent operator sessions, zero failures"
                 : "FAILED acceptance checks");
  report.write();
  return ok ? 0 : 1;
}
