// Section 2.1 claim: "the probability of a matching sequence decreases
// geometrically with the length of the sequence" -- 1/16 for one
// instruction with a 4-bit hash, 1/256 for two, etc.
//
// Empirical check: inject random instruction sequences of length L into a
// monitored straight-line program region and measure the escape rate
// (attack runs to completion undetected), against the analytic 2^(-wL).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "isa/assembler.hpp"
#include "monitor/analysis.hpp"
#include "monitor/monitor.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdmmon;
using namespace sdmmon::monitor;

// Straight-line victim region long enough for the longest attack.
isa::Program victim_program(int length) {
  std::string src = "main:\n";
  for (int i = 0; i < length + 4; ++i) {
    src += "  addiu $t" + std::to_string(i % 8) + ", $t" +
           std::to_string((i + 3) % 8) + ", " + std::to_string(100 + i) + "\n";
  }
  src += "  jr $ra\n";
  return isa::assemble(src);
}

}  // namespace

int main() {
  bench::heading("Attack escape probability vs. injected sequence length");
  bench::note("random injected instructions against a monitored region;");
  bench::note("analytic expectation is (2^-w)^L.");

  util::Rng rng(0xE5CA9E);

  for (int width : {2, 4, 8}) {
    std::printf("\nhash width w = %d:\n", width);
    std::printf("  %-10s %14s %14s %10s\n", "length L", "empirical",
                "analytic", "trials");
    bench::rule(56);
    for (int length = 1; length <= 5; ++length) {
      const double analytic = std::pow(2.0, -width * length);
      // Pick trials so we expect >= ~40 escapes where feasible; beyond the
      // cap the empirical rate is below measurement resolution.
      constexpr double kMaxTrials = 1'000'000.0;
      const int trials = static_cast<int>(
          std::min(kMaxTrials, 80.0 / analytic + 2000.0));
      if (analytic * trials < 0.5) {
        std::printf("  %-10d %14s %14.3e %10s\n", length, "< resolution",
                    analytic, "-");
        continue;
      }

      isa::Program program = victim_program(length);
      // Escape probability is over the attacker's random words, so one
      // secret parameter suffices; the monitor is built once and reset
      // between trials (matching the device's per-packet recovery).
      MerkleTreeHash hash(rng.next_u32(), width);
      HardwareMonitor monitor(extract_graph(program, hash),
                              std::make_unique<MerkleTreeHash>(hash));
      int escapes = 0;
      for (int t = 0; t < trials; ++t) {
        monitor.reset();
        // Execute two honest instructions, then L foreign ones.
        monitor.on_instruction(program.text[0]);
        monitor.on_instruction(program.text[1]);
        bool escaped = true;
        for (int i = 0; i < length; ++i) {
          std::uint32_t foreign = rng.next_u32();
          if (foreign == program.text[2 + static_cast<std::size_t>(i)]) {
            foreign ^= 1;  // must differ from the real instruction
          }
          if (monitor.on_instruction(foreign) == Verdict::Mismatch) {
            escaped = false;
            break;
          }
        }
        if (escaped) ++escapes;
      }
      std::printf("  %-10d %14.3e %14.3e %10d\n", length,
                  static_cast<double>(escapes) / trials, analytic, trials);
    }
  }

  std::printf("\nShape check: each additional injected instruction divides\n"
              "the escape probability by 2^w (paper: 1/16 per instruction\n"
              "at the prototype's w=4).\n");
  return 0;
}
