// Ablation X3: secure-install latency vs. RSA key length and package
// size, through the Nios II timing model. Answers the deployment question
// behind Table 2: how does the ~25 s reprogramming latency move if the
// operator hardens keys or ships bigger binaries?
#include <cstdio>

#include "bench_util.hpp"
#include "net/apps.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/timed_install.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::protocol;

  bench::heading("X3: install latency vs. RSA key size and package size");

  constexpr std::uint64_t kNow = 1'700'000'000;
  NiosTimingModel model;

  std::printf("%-10s %12s %10s %10s %10s %10s %10s\n", "RSA bits",
              "package", "download", "cert", "unwrap", "aes", "verify");
  bench::rule(80);

  for (std::size_t key_bits : {1024u, 2048u, 3072u}) {
    Manufacturer manufacturer("m", key_bits,
                              crypto::Drbg("x3-man-" + std::to_string(key_bits)));
    NetworkOperator op("o", key_bits,
                       crypto::Drbg("x3-op-" + std::to_string(key_bits)));
    op.accept_certificate(manufacturer.certify_operator(
        op.name(), op.public_key(), kNow - 10, kNow + 1'000'000));
    crypto::Drbg ddrbg("x3-dev-" + std::to_string(key_bits));
    crypto::RsaKeyPair device = crypto::rsa_generate(key_bits, ddrbg);

    for (std::uint32_t pad : {0u, 262'144u, 1'048'576u}) {
      WirePackage wire =
          op.program_device(net::build_ipv4_forward(), device.pub, pad);
      TimedInstallResult r =
          timed_install(wire, device.priv, manufacturer.public_key(), kNow);
      if (!r.ok) {
        std::printf("  install failed (%s)\n", open_status_name(r.open_status));
        continue;
      }
      InstallTiming t = r.timing(model);
      std::printf("%-10zu %9.0fKiB %9.2fs %9.2fs %9.2fs %9.2fs %9.2fs  total %6.2fs\n",
                  key_bits, static_cast<double>(r.wire_bytes) / 1024.0,
                  t.download_s, t.cert_check_s, t.rsa_unwrap_s,
                  t.aes_decrypt_s, t.verify_sig_s, t.total());
    }
  }
  bench::rule(80);
  bench::note("Shape: K_sym unwrap scales ~cubically with RSA modulus bits");
  bench::note("(CRT modexp); AES/verify/download scale linearly with package");
  bench::note("size; certificate check is package-size independent.");
  return 0;
}
