// Section 2.1 claim: "the use of a hashed version of the binary
// instruction ... is necessary to reduce the size of the monitoring graph
// to a fraction of the processing binary." Quantified for every shipped
// application, at instruction and basic-block granularity, against the
// naive (full-word) alternative.
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "monitor/block_monitor.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::monitor;

  bench::heading("Monitoring graph compactness across applications");

  net::RoutingTable table;
  table.add_route(net::ip(10, 0, 0, 0), 8, 1);
  table.add_route(net::ip(192, 168, 0, 0), 16, 2);
  table.add_route(0, 0, 0);

  struct Entry {
    const char* name;
    isa::Program program;
  };
  Entry apps[] = {
      {"ipv4-forward", net::build_ipv4_forward()},
      {"ipv4-cm", net::build_ipv4_cm()},
      {"udp-echo", net::build_udp_echo()},
      {"firewall(2)", net::build_firewall({53, 80})},
      {"flow-stats", net::build_flow_stats()},
      {"ipv4-router(3)", net::build_ipv4_router(table)},
      {"ipip-encap", net::build_ipip_encap(0x0A000001, 0x0A0000FE)},
      {"ipip-decap", net::build_ipip_decap()},
  };

  MerkleTreeHash hash(0x6D4A5);

  std::printf("%-16s %8s %12s %12s %12s %10s\n", "app", "instrs",
              "binary bits", "graph bits", "block bits", "graph/bin");
  bench::rule(76);
  for (auto& app : apps) {
    MonitoringGraph graph = extract_graph(app.program, hash);
    BlockGraph blocks = extract_block_graph(app.program, hash);
    const std::size_t binary_bits = app.program.text.size() * 32;
    std::printf("%-16s %8zu %12zu %12zu %12zu %9.1f%%\n", app.name,
                app.program.text.size(), binary_bits, graph.size_bits(),
                blocks.size_bits(),
                100.0 * static_cast<double>(graph.size_bits()) /
                    static_cast<double>(binary_bits));
  }
  bench::rule(76);
  bench::note("graph bits = exact compact-codec length (w=4 hash, implicit");
  bench::note("sequential edges). A naive graph storing full 32-bit words");
  bench::note("would match the binary 1:1; the 4-bit hash + shape tags keep");
  bench::note("it at ~20-25% -- the fraction the paper's monitor memory");
  bench::note("budget (Table 1) is sized around.");
  return 0;
}
