// Security requirement SR2 (homogeneity): quantifies how per-router hash
// parameters contain a monitor-evading attack crafted against one router.
// Three fleet configurations:
//   1. homogeneous (shared parameter)          -- paper's nightmare case
//   2. diversified, arithmetic-sum compression -- the prototype's design;
//      our reproduction shows its parameter-additivity lets the attack
//      transfer anyway (a genuine weakness this codebase surfaces)
//   3. diversified, S-box compression          -- diversity works as the
//      paper intends
#include <cmath>
#include <cstdio>

#include "attack/fleet.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sdmmon;
  using namespace sdmmon::attack;
  using monitor::Compression;

  bench::heading("Fleet homogeneity experiment (SR2)");
  bench::note("1000 routers, brute-force attacker crafts against router 0,");
  bench::note("then replays fleet-wide. attack length = injected instrs.");

  bench::BenchReport report("fleet_diversity");
  report.set_meta("routers", 1000);

  struct Scenario {
    const char* name;
    bool diversified;
    Compression compression;
  };
  const Scenario scenarios[] = {
      {"homogeneous fleet (shared parameter)", false, Compression::SboxSum},
      {"diversified, sum compression (prototype)", true,
       Compression::ArithmeticSum},
      {"diversified, S-box compression (fixed)", true, Compression::SboxSum},
  };

  for (int attack_len : {2, 4, 6}) {
    std::printf("\nattack length L = %d:\n", attack_len);
    std::printf("  %-44s %12s %14s\n", "fleet configuration", "compromised",
                "craft probes");
    bench::rule(76);
    for (const auto& s : scenarios) {
      FleetConfig config;
      config.num_routers = 1000;
      config.diversified = s.diversified;
      config.compression = s.compression;
      config.attack_len = attack_len;
      config.seed = 2014 + static_cast<std::uint64_t>(attack_len);
      FleetResult r = simulate_fleet(config);
      report.add_row({{"section", "containment"},
                      {"attack_len", attack_len},
                      {"fleet", s.name},
                      {"craft_succeeded", r.craft_succeeded},
                      {"compromised", static_cast<std::uint64_t>(r.compromised)},
                      {"craft_probes",
                       static_cast<std::uint64_t>(r.probes_on_victim)}});
      if (!r.craft_succeeded) {
        std::printf("  %-44s %12s %14llu\n", s.name, "craft failed",
                    (unsigned long long)r.probes_on_victim);
        continue;
      }
      std::printf("  %-44s %6zu/1000 %14llu\n", s.name, r.compromised,
                  (unsigned long long)r.probes_on_victim);
    }
  }

  bench::heading("Craft cost vs. attacker feedback model (paper Sec 3.2)");
  bench::note("per-instruction oracle: attacker observes how far execution");
  bench::note("got (strong, side-channel attacker) -> ~16*L probes.");
  bench::note("whole-sequence oracle: one attack packet per probe, binary");
  bench::note("outcome -> ~16^L probes, the paper's brute-force argument.");
  std::printf("\n  %-10s %18s %18s %14s\n", "length L", "per-instr probes",
              "whole-seq probes", "16^L");
  bench::rule(66);
  const int kSeeds = 10;  // average craft cost over independent runs
  for (int attack_len : {1, 2, 3, 4, 5}) {
    double probes[2] = {0, 0};
    bool all_ok = true;
    int idx = 0;
    for (Oracle oracle : {Oracle::PerInstruction, Oracle::WholeSequence}) {
      for (int seed = 0; seed < kSeeds; ++seed) {
        FleetConfig config;
        config.num_routers = 1;  // craft cost only
        config.attack_len = attack_len;
        config.oracle = oracle;
        config.craft_budget = 50'000'000;
        config.seed = 99 + static_cast<std::uint64_t>(seed * 31 + attack_len);
        FleetResult r = simulate_fleet(config);
        probes[idx] += static_cast<double>(r.probes_on_victim) / kSeeds;
        all_ok = all_ok && r.craft_succeeded;
      }
      ++idx;
    }
    double analytic = std::pow(16.0, attack_len);
    report.add_row({{"section", "craft_cost"},
                    {"attack_len", attack_len},
                    {"per_instr_probes", probes[0]},
                    {"whole_seq_probes", probes[1]},
                    {"analytic_16_pow_l", analytic},
                    {"all_crafts_succeeded", all_ok}});
    std::printf("  %-10d %18.0f %17.0f%s %14.3g\n", attack_len, probes[0],
                probes[1], all_ok ? "" : "*", analytic);
  }
  bench::note("(averaged over 10 independent crafts;");
  bench::note(" * = some craft exhausted its budget)");

  std::printf(
      "\nShape checks:\n"
      "  * homogeneous fleet: one successful craft compromises every router\n"
      "    (the Internet-scale failure the paper warns about).\n"
      "  * diversified + S-box: compromise contained to ~the victim; expected\n"
      "    stragglers ~ N * 16^-L.\n"
      "  * diversified + prototype sum compression: collisions transfer\n"
      "    (parameter contributes only an additive constant) -- diversity\n"
      "    does NOT contain the attack. Reproduction finding; see\n"
      "    EXPERIMENTS.md.\n"
      "  * realistic (whole-sequence) brute force costs ~16^L probes, so\n"
      "    longer meaningful attacks are infeasible to craft blindly\n"
      "    (paper Sec 2.1/3.2).\n");
  report.write();
  return 0;
}
