// Extension experiment X1c: the four execution tiers of
// docs/EXECUTION.md, end to end. Same packets, same apps, same monitor;
// the only difference is the dispatch granularity -- word-at-a-time
// interpretation, predecoded per-op dispatch (shared CompiledProgram
// artifact, precomputed monitor hashes), block-fused superop runs
// (whole pure runs retired per dispatch, the monitor fed one
// precomputed hash slice per run), or trace dispatch (superblocks
// crossing statically-predicted branches, whole traces retired per
// dispatch with side-exit retraction on misprediction). The interpreter
// survives as the differential oracle, so this bench is also a cheap
// behavioral-equivalence check: all four configurations must produce
// identical packet outcomes and instruction counts.
//
// The branchy subset (ipv4-forward, udp-echo, loop-forward -- apps whose
// runtime is dominated by short backward loops) carries the trace tier's
// acceptance gate: traces only beat fusion when fused runs are cut short
// by taken branches, which straight-line-heavy apps rarely are.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/monitored_core.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

struct AppCase {
  const char* name;
  isa::Program program;
  // Dominated by short taken-branch loops: the subset where the trace
  // tier is expected (and gated) to beat block fusion.
  bool branchy;
};

// Process every packet and return simulated kpps. The monitored core's
// cumulative stats keep accumulating across calls; callers compare
// deltas, not totals.
double time_packets(np::MonitoredCore& core,
                    const std::vector<util::Bytes>& packets) {
  auto start = Clock::now();
  for (const util::Bytes& packet : packets) (void)core.process_packet(packet);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(packets.size()) / seconds / 1000.0;
}

// Raw-core throughput in million instructions/s: repeatedly soft-reset,
// deliver, and run() one packet. With the artifact live this exercises
// the superblock stepper (no monitor in the loop); interpreted it walks
// the original step() path.
double time_raw(np::Core& core, const std::vector<util::Bytes>& packets) {
  const std::uint64_t before = core.cycles();
  auto start = Clock::now();
  for (const util::Bytes& packet : packets) {
    core.soft_reset();
    core.deliver_packet(packet);
    (void)core.run();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(core.cycles() - before) / seconds / 1e6;
}

// The four tiers, selected via the three sticky core toggles. Trace
// rides on fusion (trace pointers are live only while the fused tier
// is), so lower tiers must disable it explicitly for isolation.
enum class Tier { Interp, Predec, Fused, Trace };

void select_tier(np::Core& core, Tier tier) {
  core.set_predecode_enabled(tier != Tier::Interp);
  core.set_block_fuse_enabled(tier == Tier::Fused || tier == Tier::Trace);
  core.set_trace_enabled(tier == Tier::Trace);
}

bool same_delta(const np::CoreStats& before, const np::CoreStats& after,
                const np::CoreStats& first) {
  return after.forwarded - before.forwarded == first.forwarded &&
         after.dropped - before.dropped == first.dropped &&
         after.attacks_detected - before.attacks_detected ==
             first.attacks_detected &&
         after.traps - before.traps == first.traps &&
         after.instructions - before.instructions == first.instructions;
}

}  // namespace

int main() {
  bench::heading(
      "X1c: trace / block-fused / predecoded / interpreted execution tiers");

  AppCase apps[] = {
      {"ipv4-forward", net::build_ipv4_forward(), true},
      {"ipv4-cm", net::build_ipv4_cm(), false},
      {"udp-echo", net::build_udp_echo(), true},
      {"firewall(8 ports)",
       net::build_firewall({21, 22, 23, 53, 80, 443, 8080, 8443}), false},
      {"loop-forward", net::build_loop_forward(), true},
  };

  const int kPackets = bench::scaled(1500, 20);
  const int kReps = bench::scaled(5, 2);

  bench::BenchReport report("core_predecode");
  report.set_meta("packets", kPackets);
  report.set_meta("reps", kReps);

  std::printf("%-18s %9s %9s %9s %9s %8s %8s %8s %7s %8s %8s\n", "app",
              "int kpps", "pre kpps", "fus kpps", "trc kpps", "pre/int",
              "fus/pre", "trc/fus", "sexit", "raw fus", "raw trc");
  bench::rule(112);

  bool wired_ok = true;
  bool behavior_ok = true;
  double log_speedup_sum = 0.0;
  double log_fused_sum = 0.0;
  double log_trace_sum = 0.0;
  double log_trace_branchy_sum = 0.0;
  int branchy_count = 0;
  for (auto& app : apps) {
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    auto graph = monitor::extract_graph(app.program, hash);

    np::MonitoredCore core;
    core.install(app.program, graph,
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    wired_ok = wired_ok && core.core().compiled_program() != nullptr &&
               core.core().predecode_live() &&
               core.core().block_fuse_live() &&
               core.core().compiled_program()->num_fused_runs() > 0 &&
               core.core().compiled_program()->num_traces() > 0;

    net::TrafficGenerator gen;
    std::vector<util::Bytes> packets;
    packets.reserve(static_cast<std::size_t>(kPackets));
    for (int i = 0; i < kPackets; ++i) packets.push_back(gen.next().packet);

    // Warm each configuration once, then interleave best-of-N reps:
    // the windows are tens of milliseconds, so keeping each side's best
    // measures engine capability rather than scheduler interference.
    // Oracle check on the warm passes: all four tiers process identical
    // packets -- outcome and instruction deltas must be identical. The
    // trace warm pass also accumulates side-exit telemetry (trace
    // dispatch counts do not vary across reps of identical packets).
    select_tier(core.core(), Tier::Interp);
    (void)time_packets(core, packets);
    const np::CoreStats interp_stats = core.stats();
    select_tier(core.core(), Tier::Predec);
    (void)time_packets(core, packets);
    const np::CoreStats predec_stats = core.stats();
    select_tier(core.core(), Tier::Fused);
    (void)time_packets(core, packets);
    const np::CoreStats fused_stats = core.stats();
    select_tier(core.core(), Tier::Trace);
    std::uint64_t trace_dispatches = 0, trace_side_exits = 0;
    for (const util::Bytes& packet : packets) {
      const np::PacketResult r = core.process_packet(packet);
      trace_dispatches += r.trace_dispatches;
      trace_side_exits += r.trace_side_exits;
    }
    const np::CoreStats trace_stats = core.stats();
    behavior_ok = behavior_ok &&
                  same_delta(interp_stats, predec_stats, interp_stats) &&
                  same_delta(predec_stats, fused_stats, interp_stats) &&
                  same_delta(fused_stats, trace_stats, interp_stats) &&
                  trace_dispatches > 0;
    const double side_exit_rate =
        trace_dispatches == 0
            ? 0.0
            : static_cast<double>(trace_side_exits) /
                  static_cast<double>(trace_dispatches);

    double interp_kpps = 0.0, predec_kpps = 0.0, fused_kpps = 0.0,
           trace_kpps = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      select_tier(core.core(), Tier::Interp);
      interp_kpps = std::max(interp_kpps, time_packets(core, packets));
      select_tier(core.core(), Tier::Predec);
      predec_kpps = std::max(predec_kpps, time_packets(core, packets));
      select_tier(core.core(), Tier::Fused);
      fused_kpps = std::max(fused_kpps, time_packets(core, packets));
      select_tier(core.core(), Tier::Trace);
      trace_kpps = std::max(trace_kpps, time_packets(core, packets));
    }
    const double speedup = predec_kpps / interp_kpps;
    const double fused_speedup = fused_kpps / predec_kpps;
    const double trace_speedup = trace_kpps / fused_kpps;
    log_speedup_sum += std::log(speedup);
    log_fused_sum += std::log(fused_speedup);
    log_trace_sum += std::log(trace_speedup);
    if (app.branchy) {
      log_trace_branchy_sum += std::log(trace_speedup);
      ++branchy_count;
    }

    // Raw core, no monitor: each tier's unmonitored ceiling.
    np::Core raw;
    raw.load_program(app.program, core.core().compiled_program());
    double raw_interp = 0.0, raw_predec = 0.0, raw_fused = 0.0,
           raw_trace = 0.0;
    for (Tier t : {Tier::Interp, Tier::Predec, Tier::Fused, Tier::Trace}) {
      select_tier(raw, t);
      (void)time_raw(raw, packets);
    }
    for (int rep = 0; rep < kReps; ++rep) {
      select_tier(raw, Tier::Interp);
      raw_interp = std::max(raw_interp, time_raw(raw, packets));
      select_tier(raw, Tier::Predec);
      raw_predec = std::max(raw_predec, time_raw(raw, packets));
      select_tier(raw, Tier::Fused);
      raw_fused = std::max(raw_fused, time_raw(raw, packets));
      select_tier(raw, Tier::Trace);
      raw_trace = std::max(raw_trace, time_raw(raw, packets));
    }

    std::printf(
        "%-18s %9.1f %9.1f %9.1f %9.1f %7.2fx %7.2fx %7.2fx %6.1f%% %8.1f "
        "%8.1f\n",
        app.name, interp_kpps, predec_kpps, fused_kpps, trace_kpps, speedup,
        fused_speedup, trace_speedup, side_exit_rate * 100.0, raw_fused,
        raw_trace);
    report.add_row({{"app", app.name},
                    {"interp_kpps", interp_kpps},
                    {"predecoded_kpps", predec_kpps},
                    {"fused_kpps", fused_kpps},
                    {"trace_kpps", trace_kpps},
                    {"speedup", speedup},
                    {"fused_speedup", fused_speedup},
                    {"trace_speedup", trace_speedup},
                    {"side_exit_rate", side_exit_rate},
                    {"raw_interp_minstr_s", raw_interp},
                    {"raw_predecoded_minstr_s", raw_predec},
                    {"raw_fused_minstr_s", raw_fused},
                    {"raw_trace_minstr_s", raw_trace},
                    {"raw_speedup", raw_predec / raw_interp},
                    {"raw_fused_speedup", raw_fused / raw_predec},
                    {"raw_trace_speedup", raw_trace / raw_fused}});
  }
  bench::rule(112);
  const double geo_speedup =
      std::exp(log_speedup_sum / static_cast<double>(std::size(apps)));
  const double geo_fused =
      std::exp(log_fused_sum / static_cast<double>(std::size(apps)));
  const double geo_trace =
      std::exp(log_trace_sum / static_cast<double>(std::size(apps)));
  const double geo_trace_branchy =
      branchy_count == 0
          ? 1.0
          : std::exp(log_trace_branchy_sum /
                     static_cast<double>(branchy_count));
  report.set_meta("speedup", geo_speedup);
  report.set_meta("fused_speedup", geo_fused);
  report.set_meta("trace_speedup", geo_trace);
  report.set_meta("trace_speedup_branchy", geo_trace_branchy);
  std::printf("  geometric-mean monitored speedup: predecode/interp %.2fx, "
              "fused/predecode %.2fx,\n"
              "  trace/fused %.2fx (branchy apps %.2fx)\n",
              geo_speedup, geo_fused, geo_trace, geo_trace_branchy);
  bench::note("kpps columns: full monitored process_packet() path per tier");
  bench::note("(soft reset, MMIO, monitor fed per-op/-run/-trace slices);");
  bench::note("sexit: trace side exits / trace dispatches (mispredicted");
  bench::note("branches that cut a trace short); raw M/s: unmonitored");
  bench::note("Core::run() per tier, million executed instructions/second.");
  report.write();

  if (!wired_ok) {
    std::fprintf(stderr,
                 "FAIL: predecoded/fused/trace artifact not attached/live "
                 "after install\n");
    return 1;
  }
  if (!behavior_ok) {
    std::fprintf(stderr,
                 "FAIL: execution tiers diverged (outcome/instruction "
                 "deltas differ) or no traces dispatched\n");
    return 1;
  }
  // Acceptance criteria (full budget only; quick mode is a wiring
  // check on CI-class machines where timing is meaningless).
  if (!bench::quick_mode() && geo_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: predecoded speedup %.2fx below the 2x criterion\n",
                 geo_speedup);
    return 1;
  }
  if (!bench::quick_mode() && geo_fused < 2.0) {
    std::fprintf(stderr,
                 "FAIL: fused speedup %.2fx over predecode below the 2x "
                 "criterion\n",
                 geo_fused);
    return 1;
  }
  if (!bench::quick_mode() && geo_trace_branchy < 1.15) {
    std::fprintf(stderr,
                 "FAIL: trace speedup %.2fx over fused on branchy apps "
                 "below the 1.15x criterion\n",
                 geo_trace_branchy);
    return 1;
  }
  return 0;
}
