// Extension experiment X1c: install-time predecoded program artifact vs
// the word-at-a-time interpreter, end to end. Same packets, same apps,
// same monitor; the only difference is whether Core::step() re-decodes
// (and the monitor re-hashes) every retired instruction or fetches the
// predecoded op and its precomputed hash from the shared CompiledProgram.
// The interpreter survives as the differential oracle, so this bench is
// also a cheap behavioral-equivalence check: both configurations must
// produce identical packet outcomes and instruction counts.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/monitored_core.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

struct AppCase {
  const char* name;
  isa::Program program;
};

// Process every packet and return simulated kpps. The monitored core's
// cumulative stats keep accumulating across calls; callers compare
// deltas, not totals.
double time_packets(np::MonitoredCore& core,
                    const std::vector<util::Bytes>& packets) {
  auto start = Clock::now();
  for (const util::Bytes& packet : packets) (void)core.process_packet(packet);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(packets.size()) / seconds / 1000.0;
}

// Raw-core throughput in million instructions/s: repeatedly soft-reset,
// deliver, and run() one packet. With the artifact live this exercises
// the superblock stepper (no monitor in the loop); interpreted it walks
// the original step() path.
double time_raw(np::Core& core, const std::vector<util::Bytes>& packets) {
  const std::uint64_t before = core.cycles();
  auto start = Clock::now();
  for (const util::Bytes& packet : packets) {
    core.soft_reset();
    core.deliver_packet(packet);
    (void)core.run();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(core.cycles() - before) / seconds / 1e6;
}

}  // namespace

int main() {
  bench::heading(
      "X1c: predecoded program artifact vs word-at-a-time interpreter");

  AppCase apps[] = {
      {"ipv4-forward", net::build_ipv4_forward()},
      {"ipv4-cm", net::build_ipv4_cm()},
      {"udp-echo", net::build_udp_echo()},
      {"firewall(8 ports)",
       net::build_firewall({21, 22, 23, 53, 80, 443, 8080, 8443})},
  };

  const int kPackets = bench::scaled(1500, 20);
  const int kReps = bench::scaled(5, 2);

  bench::BenchReport report("core_predecode");
  report.set_meta("packets", kPackets);
  report.set_meta("reps", kReps);

  std::printf("%-20s %12s %12s %9s %13s %13s\n", "app", "interp kpps",
              "predec kpps", "speedup", "raw int M/s", "raw pre M/s");
  bench::rule(84);

  bool wired_ok = true;
  bool behavior_ok = true;
  double log_speedup_sum = 0.0;
  for (auto& app : apps) {
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    auto graph = monitor::extract_graph(app.program, hash);

    np::MonitoredCore core;
    core.install(app.program, graph,
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    wired_ok = wired_ok && core.core().compiled_program() != nullptr &&
               core.core().predecode_live();

    net::TrafficGenerator gen;
    std::vector<util::Bytes> packets;
    packets.reserve(static_cast<std::size_t>(kPackets));
    for (int i = 0; i < kPackets; ++i) packets.push_back(gen.next().packet);

    // Warm both configurations once, then interleave best-of-N reps:
    // the windows are tens of milliseconds, so keeping each side's best
    // measures engine capability rather than scheduler interference.
    core.core().set_predecode_enabled(false);
    (void)time_packets(core, packets);
    const np::CoreStats interp_stats = core.stats();
    core.core().set_predecode_enabled(true);
    (void)time_packets(core, packets);
    const np::CoreStats predec_stats = core.stats();
    // Oracle check: the warm passes processed identical packets through
    // both engines -- outcome and instruction deltas must be identical.
    behavior_ok =
        behavior_ok &&
        interp_stats.forwarded * 2 == predec_stats.forwarded &&
        interp_stats.dropped * 2 == predec_stats.dropped &&
        interp_stats.attacks_detected * 2 == predec_stats.attacks_detected &&
        interp_stats.traps * 2 == predec_stats.traps &&
        interp_stats.instructions * 2 == predec_stats.instructions;

    double interp_kpps = 0.0, predec_kpps = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      core.core().set_predecode_enabled(false);
      interp_kpps = std::max(interp_kpps, time_packets(core, packets));
      core.core().set_predecode_enabled(true);
      predec_kpps = std::max(predec_kpps, time_packets(core, packets));
    }
    const double speedup = predec_kpps / interp_kpps;
    log_speedup_sum += std::log(speedup);

    // Raw core, no monitor: the superblock stepper's ceiling.
    np::Core raw;
    raw.load_program(app.program, core.core().compiled_program());
    double raw_interp = 0.0, raw_predec = 0.0;
    raw.set_predecode_enabled(false);
    (void)time_raw(raw, packets);
    raw.set_predecode_enabled(true);
    (void)time_raw(raw, packets);
    for (int rep = 0; rep < kReps; ++rep) {
      raw.set_predecode_enabled(false);
      raw_interp = std::max(raw_interp, time_raw(raw, packets));
      raw.set_predecode_enabled(true);
      raw_predec = std::max(raw_predec, time_raw(raw, packets));
    }

    std::printf("%-20s %12.1f %12.1f %8.2fx %13.1f %13.1f\n", app.name,
                interp_kpps, predec_kpps, speedup, raw_interp, raw_predec);
    report.add_row({{"app", app.name},
                    {"interp_kpps", interp_kpps},
                    {"predecoded_kpps", predec_kpps},
                    {"speedup", speedup},
                    {"raw_interp_minstr_s", raw_interp},
                    {"raw_predecoded_minstr_s", raw_predec},
                    {"raw_speedup", raw_predec / raw_interp}});
  }
  bench::rule(84);
  const double geo_speedup =
      std::exp(log_speedup_sum / static_cast<double>(std::size(apps)));
  report.set_meta("speedup", geo_speedup);
  std::printf("  geometric-mean monitored speedup: %.2fx\n", geo_speedup);
  bench::note("interp/predec kpps: full monitored process_packet() path");
  bench::note("(soft reset, MMIO, per-retired-instruction monitor check);");
  bench::note("raw M/s: unmonitored Core::run() -- the superblock stepper");
  bench::note("vs the interpreter, million executed instructions per second.");
  report.write();

  if (!wired_ok) {
    std::fprintf(stderr,
                 "FAIL: predecoded artifact not attached/live after install\n");
    return 1;
  }
  if (!behavior_ok) {
    std::fprintf(stderr,
                 "FAIL: predecoded and interpreted runs diverged "
                 "(outcome/instruction deltas differ)\n");
    return 1;
  }
  // Acceptance criterion (full budget only; quick mode is a wiring
  // check on CI-class machines where timing is meaningless).
  if (!bench::quick_mode() && geo_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: predecoded speedup %.2fx below the 2x criterion\n",
                 geo_speedup);
    return 1;
  }
  return 0;
}
