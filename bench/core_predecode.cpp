// Extension experiment X1c: the three execution tiers of
// docs/EXECUTION.md, end to end. Same packets, same apps, same monitor;
// the only difference is the dispatch granularity -- word-at-a-time
// interpretation, predecoded per-op dispatch (shared CompiledProgram
// artifact, precomputed monitor hashes), or block-fused superop runs
// (whole pure runs retired per dispatch, the monitor fed one
// precomputed hash slice per run). The interpreter survives as the
// differential oracle, so this bench is also a cheap
// behavioral-equivalence check: all three configurations must produce
// identical packet outcomes and instruction counts.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "net/traffic.hpp"
#include "np/monitored_core.hpp"

namespace {

using namespace sdmmon;
using Clock = std::chrono::steady_clock;

struct AppCase {
  const char* name;
  isa::Program program;
};

// Process every packet and return simulated kpps. The monitored core's
// cumulative stats keep accumulating across calls; callers compare
// deltas, not totals.
double time_packets(np::MonitoredCore& core,
                    const std::vector<util::Bytes>& packets) {
  auto start = Clock::now();
  for (const util::Bytes& packet : packets) (void)core.process_packet(packet);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(packets.size()) / seconds / 1000.0;
}

// Raw-core throughput in million instructions/s: repeatedly soft-reset,
// deliver, and run() one packet. With the artifact live this exercises
// the superblock stepper (no monitor in the loop); interpreted it walks
// the original step() path.
double time_raw(np::Core& core, const std::vector<util::Bytes>& packets) {
  const std::uint64_t before = core.cycles();
  auto start = Clock::now();
  for (const util::Bytes& packet : packets) {
    core.soft_reset();
    core.deliver_packet(packet);
    (void)core.run();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(core.cycles() - before) / seconds / 1e6;
}

// The three tiers, selected via the two sticky core toggles.
enum class Tier { Interp, Predec, Fused };

void select_tier(np::Core& core, Tier tier) {
  core.set_predecode_enabled(tier != Tier::Interp);
  core.set_block_fuse_enabled(tier == Tier::Fused);
}

bool same_delta(const np::CoreStats& before, const np::CoreStats& after,
                const np::CoreStats& first) {
  return after.forwarded - before.forwarded == first.forwarded &&
         after.dropped - before.dropped == first.dropped &&
         after.attacks_detected - before.attacks_detected ==
             first.attacks_detected &&
         after.traps - before.traps == first.traps &&
         after.instructions - before.instructions == first.instructions;
}

}  // namespace

int main() {
  bench::heading(
      "X1c: block-fused / predecoded / interpreted execution tiers");

  AppCase apps[] = {
      {"ipv4-forward", net::build_ipv4_forward()},
      {"ipv4-cm", net::build_ipv4_cm()},
      {"udp-echo", net::build_udp_echo()},
      {"firewall(8 ports)",
       net::build_firewall({21, 22, 23, 53, 80, 443, 8080, 8443})},
  };

  const int kPackets = bench::scaled(1500, 20);
  const int kReps = bench::scaled(5, 2);

  bench::BenchReport report("core_predecode");
  report.set_meta("packets", kPackets);
  report.set_meta("reps", kReps);

  std::printf("%-18s %10s %10s %10s %8s %8s %9s %9s %9s\n", "app",
              "int kpps", "pre kpps", "fus kpps", "pre/int", "fus/pre",
              "raw int", "raw pre", "raw fus");
  bench::rule(98);

  bool wired_ok = true;
  bool behavior_ok = true;
  double log_speedup_sum = 0.0;
  double log_fused_sum = 0.0;
  for (auto& app : apps) {
    monitor::MerkleTreeHash hash(0xBEEFCAFE);
    auto graph = monitor::extract_graph(app.program, hash);

    np::MonitoredCore core;
    core.install(app.program, graph,
                 std::make_unique<monitor::MerkleTreeHash>(hash));
    wired_ok = wired_ok && core.core().compiled_program() != nullptr &&
               core.core().predecode_live() &&
               core.core().block_fuse_live() &&
               core.core().compiled_program()->num_fused_runs() > 0;

    net::TrafficGenerator gen;
    std::vector<util::Bytes> packets;
    packets.reserve(static_cast<std::size_t>(kPackets));
    for (int i = 0; i < kPackets; ++i) packets.push_back(gen.next().packet);

    // Warm each configuration once, then interleave best-of-N reps:
    // the windows are tens of milliseconds, so keeping each side's best
    // measures engine capability rather than scheduler interference.
    // Oracle check on the warm passes: all three tiers process identical
    // packets -- outcome and instruction deltas must be identical.
    select_tier(core.core(), Tier::Interp);
    (void)time_packets(core, packets);
    const np::CoreStats interp_stats = core.stats();
    select_tier(core.core(), Tier::Predec);
    (void)time_packets(core, packets);
    const np::CoreStats predec_stats = core.stats();
    select_tier(core.core(), Tier::Fused);
    (void)time_packets(core, packets);
    const np::CoreStats fused_stats = core.stats();
    behavior_ok = behavior_ok &&
                  same_delta(interp_stats, predec_stats, interp_stats) &&
                  same_delta(predec_stats, fused_stats, interp_stats);

    double interp_kpps = 0.0, predec_kpps = 0.0, fused_kpps = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      select_tier(core.core(), Tier::Interp);
      interp_kpps = std::max(interp_kpps, time_packets(core, packets));
      select_tier(core.core(), Tier::Predec);
      predec_kpps = std::max(predec_kpps, time_packets(core, packets));
      select_tier(core.core(), Tier::Fused);
      fused_kpps = std::max(fused_kpps, time_packets(core, packets));
    }
    const double speedup = predec_kpps / interp_kpps;
    const double fused_speedup = fused_kpps / predec_kpps;
    log_speedup_sum += std::log(speedup);
    log_fused_sum += std::log(fused_speedup);

    // Raw core, no monitor: each tier's unmonitored ceiling.
    np::Core raw;
    raw.load_program(app.program, core.core().compiled_program());
    double raw_interp = 0.0, raw_predec = 0.0, raw_fused = 0.0;
    for (Tier t : {Tier::Interp, Tier::Predec, Tier::Fused}) {
      select_tier(raw, t);
      (void)time_raw(raw, packets);
    }
    for (int rep = 0; rep < kReps; ++rep) {
      select_tier(raw, Tier::Interp);
      raw_interp = std::max(raw_interp, time_raw(raw, packets));
      select_tier(raw, Tier::Predec);
      raw_predec = std::max(raw_predec, time_raw(raw, packets));
      select_tier(raw, Tier::Fused);
      raw_fused = std::max(raw_fused, time_raw(raw, packets));
    }

    std::printf("%-18s %10.1f %10.1f %10.1f %7.2fx %7.2fx %9.1f %9.1f %9.1f\n",
                app.name, interp_kpps, predec_kpps, fused_kpps, speedup,
                fused_speedup, raw_interp, raw_predec, raw_fused);
    report.add_row({{"app", app.name},
                    {"interp_kpps", interp_kpps},
                    {"predecoded_kpps", predec_kpps},
                    {"fused_kpps", fused_kpps},
                    {"speedup", speedup},
                    {"fused_speedup", fused_speedup},
                    {"raw_interp_minstr_s", raw_interp},
                    {"raw_predecoded_minstr_s", raw_predec},
                    {"raw_fused_minstr_s", raw_fused},
                    {"raw_speedup", raw_predec / raw_interp},
                    {"raw_fused_speedup", raw_fused / raw_predec}});
  }
  bench::rule(98);
  const double geo_speedup =
      std::exp(log_speedup_sum / static_cast<double>(std::size(apps)));
  const double geo_fused =
      std::exp(log_fused_sum / static_cast<double>(std::size(apps)));
  report.set_meta("speedup", geo_speedup);
  report.set_meta("fused_speedup", geo_fused);
  std::printf("  geometric-mean monitored speedup: predecode/interp %.2fx, "
              "fused/predecode %.2fx\n",
              geo_speedup, geo_fused);
  bench::note("kpps columns: full monitored process_packet() path per tier");
  bench::note("(soft reset, MMIO, monitor fed per-op or per-run slices);");
  bench::note("raw M/s: unmonitored Core::run() per tier, million executed");
  bench::note("instructions per second (fused = superop block dispatch).");
  report.write();

  if (!wired_ok) {
    std::fprintf(stderr,
                 "FAIL: predecoded/fused artifact not attached/live after "
                 "install\n");
    return 1;
  }
  if (!behavior_ok) {
    std::fprintf(stderr,
                 "FAIL: execution tiers diverged (outcome/instruction "
                 "deltas differ)\n");
    return 1;
  }
  // Acceptance criteria (full budget only; quick mode is a wiring
  // check on CI-class machines where timing is meaningless).
  if (!bench::quick_mode() && geo_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: predecoded speedup %.2fx below the 2x criterion\n",
                 geo_speedup);
    return 1;
  }
  if (!bench::quick_mode() && geo_fused < 2.0) {
    std::fprintf(stderr,
                 "FAIL: fused speedup %.2fx over predecode below the 2x "
                 "criterion\n",
                 geo_fused);
    return 1;
  }
  return 0;
}
