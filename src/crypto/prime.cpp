#include "crypto/prime.hpp"

#include <array>

namespace sdmmon::crypto {

namespace {

// Primes below 1000 for cheap trial division before Miller-Rabin.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

BigUint random_below_range(const BigUint& lo, const BigUint& hi, Drbg& drbg) {
  // Uniform in [lo, hi): rejection-sample `width`-bit values.
  BigUint span = hi - lo;
  const std::size_t bits = span.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  for (;;) {
    util::Bytes raw = drbg.bytes(nbytes);
    // Mask excess top bits.
    if (bits % 8) raw[0] &= static_cast<std::uint8_t>((1u << (bits % 8)) - 1);
    BigUint candidate = BigUint::from_bytes_be(raw);
    if (candidate < span) return lo + candidate;
  }
}

}  // namespace

bool is_probable_prime(const BigUint& n, Drbg& drbg, int rounds) {
  if (n < BigUint(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    BigUint bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // n > 1000 and odd from here.

  // Write n-1 = d * 2^r.
  BigUint n_minus_1 = n - BigUint(1);
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  MontgomeryCtx ctx(n);
  for (int round = 0; round < rounds; ++round) {
    BigUint a = random_below_range(BigUint(2), n - BigUint(1), drbg);
    BigUint x = ctx.modexp(a, d);
    if (x.is_one() || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = BigUint::modmul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint random_prime_candidate(std::size_t bits, Drbg& drbg) {
  if (bits < 8) throw BignumError("prime candidate too small");
  util::Bytes raw = drbg.bytes((bits + 7) / 8);
  BigUint candidate = BigUint::from_bytes_be(raw);
  // Clamp to exactly `bits` bits.
  candidate = candidate >> (candidate.bit_length() > bits
                                ? candidate.bit_length() - bits
                                : 0);
  candidate.set_bit(bits - 1);
  candidate.set_bit(bits - 2);  // keep p*q at full width
  candidate.set_bit(0);         // odd
  return candidate;
}

BigUint generate_prime(std::size_t bits, Drbg& drbg, int mr_rounds) {
  for (;;) {
    BigUint candidate = random_prime_candidate(bits, drbg);
    // Step by 2 a few times before drawing fresh randomness; cheaper than
    // regenerating and keeps the top bits pinned.
    for (int step = 0; step < 64; ++step) {
      if (candidate.bit_length() != bits) break;
      if (is_probable_prime(candidate, drbg, mr_rounds)) return candidate;
      candidate += BigUint(2);
    }
  }
}

}  // namespace sdmmon::crypto
