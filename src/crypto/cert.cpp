#include "crypto/cert.hpp"

namespace sdmmon::crypto {

const char* cert_role_name(CertRole role) {
  switch (role) {
    case CertRole::Manufacturer: return "manufacturer";
    case CertRole::NetworkOperator: return "network-operator";
    case CertRole::Device: return "device";
  }
  return "?";
}

const char* cert_status_name(CertStatus status) {
  switch (status) {
    case CertStatus::Ok: return "ok";
    case CertStatus::BadSignature: return "bad-signature";
    case CertStatus::NotYetValid: return "not-yet-valid";
    case CertStatus::Expired: return "expired";
    case CertStatus::WrongRole: return "wrong-role";
  }
  return "?";
}

util::Bytes Certificate::tbs_bytes() const {
  util::ByteWriter w;
  w.str(subject);
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(serial);
  w.u64(valid_from);
  w.u64(valid_to);
  w.blob(subject_key.serialize());
  w.str(issuer);
  return w.take();
}

util::Bytes Certificate::serialize() const {
  util::ByteWriter w;
  w.blob(tbs_bytes());
  w.blob(signature);
  return w.take();
}

Certificate Certificate::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader outer(data);
  util::Bytes tbs = outer.blob();
  util::Bytes sig = outer.blob();

  util::ByteReader r(tbs);
  Certificate cert;
  cert.subject = r.str();
  std::uint8_t role = r.u8();
  if (role > static_cast<std::uint8_t>(CertRole::Device)) {
    throw util::DecodeError("certificate: bad role");
  }
  cert.role = static_cast<CertRole>(role);
  cert.serial = r.u64();
  cert.valid_from = r.u64();
  cert.valid_to = r.u64();
  cert.subject_key = RsaPublicKey::deserialize(r.blob());
  cert.issuer = r.str();
  cert.signature = std::move(sig);
  return cert;
}

Certificate issue_certificate(const std::string& subject, CertRole role,
                              std::uint64_t serial, std::uint64_t valid_from,
                              std::uint64_t valid_to,
                              const RsaPublicKey& subject_key,
                              const std::string& issuer,
                              const RsaPrivateKey& issuer_key) {
  Certificate cert;
  cert.subject = subject;
  cert.role = role;
  cert.serial = serial;
  cert.valid_from = valid_from;
  cert.valid_to = valid_to;
  cert.subject_key = subject_key;
  cert.issuer = issuer;
  cert.signature = rsa_sign(issuer_key, cert.tbs_bytes());
  return cert;
}

CertStatus verify_certificate(const Certificate& cert,
                              const RsaPublicKey& issuer_key,
                              std::uint64_t now) {
  if (!rsa_verify(issuer_key, cert.tbs_bytes(), cert.signature)) {
    return CertStatus::BadSignature;
  }
  if (now < cert.valid_from) return CertStatus::NotYetValid;
  if (now > cert.valid_to) return CertStatus::Expired;
  return CertStatus::Ok;
}

CertStatus verify_certificate(const Certificate& cert,
                              const RsaPublicKey& issuer_key,
                              std::uint64_t now, CertRole expected_role) {
  CertStatus status = verify_certificate(cert, issuer_key, now);
  if (status != CertStatus::Ok) return status;
  if (cert.role != expected_role) return CertStatus::WrongRole;
  return CertStatus::Ok;
}

}  // namespace sdmmon::crypto
