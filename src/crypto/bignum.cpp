#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "crypto/opcount.hpp"

namespace sdmmon::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {

// Raw limb-vector helpers (little-endian, possibly non-normalized).

void trim(std::vector<u64>& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

int compare_limbs(const std::vector<u64>& a, const std::vector<u64>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<u64> add_limbs(const std::vector<u64>& a,
                           const std::vector<u64>& b) {
  const std::vector<u64>& big = a.size() >= b.size() ? a : b;
  const std::vector<u64>& small = a.size() >= b.size() ? b : a;
  std::vector<u64> out(big.size() + 1, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    u128 sum = carry + big[i] + (i < small.size() ? small[i] : 0);
    out[i] = static_cast<u64>(sum);
    carry = sum >> 64;
  }
  out[big.size()] = static_cast<u64>(carry);
  trim(out);
  return out;
}

// a - b, requires a >= b.
std::vector<u64> sub_limbs(const std::vector<u64>& a,
                           const std::vector<u64>& b) {
  std::vector<u64> out(a.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 bi = i < b.size() ? b[i] : 0;
    u64 tmp = a[i] - bi;
    u64 borrow2 = (a[i] < bi) ? 1 : 0;
    u64 res = tmp - borrow;
    if (tmp < borrow) borrow2 = 1;
    out[i] = res;
    borrow = borrow2;
  }
  trim(out);
  return out;
}

std::vector<u64> schoolbook_mul(const std::vector<u64>& a,
                                const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<u64> out(a.size() + b.size(), 0);
  auto& ops = op_counters();
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    u64 ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + b.size()] = carry;
    ops.limb_muls += b.size();
  }
  trim(out);
  return out;
}

// Operands at or above this limb count use Karatsuba (3 half-size
// multiplies instead of 4); below it schoolbook wins on constants.
constexpr std::size_t kKaratsubaThreshold = 24;

std::vector<u64> mul_limbs(const std::vector<u64>& a,
                           const std::vector<u64>& b);

std::vector<u64> karatsuba_mul(const std::vector<u64>& a,
                               const std::vector<u64>& b) {
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  auto lo_part = [&](const std::vector<u64>& v) {
    return std::vector<u64>(v.begin(),
                            v.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(half, v.size())));
  };
  auto hi_part = [&](const std::vector<u64>& v) {
    if (v.size() <= half) return std::vector<u64>{};
    return std::vector<u64>(v.begin() + static_cast<std::ptrdiff_t>(half),
                            v.end());
  };
  std::vector<u64> a_lo = lo_part(a), a_hi = hi_part(a);
  std::vector<u64> b_lo = lo_part(b), b_hi = hi_part(b);
  trim(a_lo);
  trim(b_lo);

  // z0 = a_lo*b_lo; z2 = a_hi*b_hi; z1 = (a_lo+a_hi)(b_lo+b_hi) - z0 - z2.
  std::vector<u64> z0 = mul_limbs(a_lo, b_lo);
  std::vector<u64> z2 = mul_limbs(a_hi, b_hi);
  std::vector<u64> z1 =
      mul_limbs(add_limbs(a_lo, a_hi), add_limbs(b_lo, b_hi));
  z1 = sub_limbs(z1, z0);
  z1 = sub_limbs(z1, z2);

  // result = z0 + (z1 << 64*half) + (z2 << 128*half)
  std::vector<u64> out(a.size() + b.size() + 1, 0);
  auto accumulate = [&](const std::vector<u64>& part, std::size_t shift) {
    u128 carry = 0;
    std::size_t i = 0;
    for (; i < part.size(); ++i) {
      u128 sum = static_cast<u128>(out[shift + i]) + part[i] + carry;
      out[shift + i] = static_cast<u64>(sum);
      carry = sum >> 64;
    }
    while (carry != 0) {
      u128 sum = static_cast<u128>(out[shift + i]) + carry;
      out[shift + i] = static_cast<u64>(sum);
      carry = sum >> 64;
      ++i;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  trim(out);
  return out;
}

std::vector<u64> mul_limbs(const std::vector<u64>& a,
                           const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return schoolbook_mul(a, b);
  }
  return karatsuba_mul(a, b);
}

std::vector<u64> shl_limbs(const std::vector<u64>& a, std::size_t bits) {
  if (a.empty()) return {};
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(a.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i + limb_shift] |= bit_shift ? (a[i] << bit_shift) : a[i];
    if (bit_shift && i + limb_shift + 1 < out.size()) {
      out[i + limb_shift + 1] |= a[i] >> (64 - bit_shift);
    }
  }
  trim(out);
  return out;
}

std::vector<u64> shr_limbs(const std::vector<u64>& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= a.size()) return {};
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(a.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < a.size()) {
      out[i] |= a[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  trim(out);
  return out;
}

// Knuth algorithm D. Returns {quotient, remainder}; den must be non-zero.
std::pair<std::vector<u64>, std::vector<u64>> divmod_limbs(
    std::vector<u64> num, std::vector<u64> den) {
  if (den.empty()) throw BignumError("division by zero");
  if (compare_limbs(num, den) < 0) return {{}, std::move(num)};

  // Single-limb divisor fast path.
  if (den.size() == 1) {
    u64 d = den[0];
    std::vector<u64> q(num.size(), 0);
    u128 rem = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      u128 cur = (rem << 64) | num[i];
      q[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    trim(q);
    return {std::move(q), rem ? std::vector<u64>{static_cast<u64>(rem)}
                              : std::vector<u64>{}};
  }

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = std::countl_zero(den.back());
  std::vector<u64> u = shl_limbs(num, static_cast<std::size_t>(shift));
  std::vector<u64> v = shl_limbs(den, static_cast<std::size_t>(shift));
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // u has m+n+1 limbs

  std::vector<u64> q(m + 1, 0);
  const u64 v_top = v[n - 1];
  const u64 v_next = v[n - 2];

  auto& ops = op_counters();
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs of the current remainder.
    u128 numerator = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = numerator / v_top;
    u128 rhat = numerator % v_top;
    if (qhat > ~u64{0}) qhat = ~u64{0};
    while (rhat <= ~u64{0} &&
           qhat * v_next > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v_top;
    }

    // D4: multiply-subtract u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 prod = qhat * v[i] + carry;
      carry = prod >> 64;
      u64 sub = static_cast<u64>(prod);
      u128 diff = static_cast<u128>(u[j + i]) - sub - borrow;
      u[j + i] = static_cast<u64>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
    ops.limb_muls += n;
    u128 diff = static_cast<u128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<u64>(diff);
    bool negative = (diff >> 64) != 0;

    // D5/D6: add back if the estimate was one too large.
    if (negative) {
      --qhat;
      u128 carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u[j + i]) + v[i] + carry2;
        u[j + i] = static_cast<u64>(sum);
        carry2 = sum >> 64;
      }
      u[j + n] += static_cast<u64>(carry2);
    }
    q[j] = static_cast<u64>(qhat);
  }

  trim(q);
  u.resize(n);
  std::vector<u64> r = shr_limbs(u, static_cast<std::size_t>(shift));
  return {std::move(q), std::move(r)};
}

}  // namespace

BigUint::BigUint(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

BigUint BigUint::from_limbs(std::vector<u64> limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

void BigUint::normalize() { trim(limbs_); }

BigUint BigUint::from_bytes_be(std::span<const std::uint8_t> bytes) {
  BigUint out;
  for (std::uint8_t b : bytes) {
    out = (out << 8) + BigUint(b);
  }
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes_be(util::from_hex(padded));
}

BigUint BigUint::from_decimal(std::string_view dec) {
  BigUint out;
  for (char c : dec) {
    if (c < '0' || c > '9') throw BignumError("bad decimal digit");
    out = out * BigUint(10) + BigUint(static_cast<u64>(c - '0'));
  }
  return out;
}

util::Bytes BigUint::to_bytes_be(std::size_t min_len) const {
  util::Bytes out;
  const std::size_t byte_len = (bit_length() + 7) / 8;
  out.reserve(std::max(byte_len, min_len));
  for (std::size_t i = byte_len; i-- > 0;) {
    const std::size_t limb = i / 8;
    const std::size_t shift = (i % 8) * 8;
    out.push_back(static_cast<std::uint8_t>(limbs_[limb] >> shift));
  }
  if (out.size() < min_len) {
    out.insert(out.begin(), min_len - out.size(), 0);
  }
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::to_hex(to_bytes_be());
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first == std::string::npos ? s.size() - 1 : first);
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigUint cur = *this;
  const BigUint ten(10);
  while (!cur.is_zero()) {
    auto [q, r] = divmod(cur, ten);
    out.push_back(static_cast<char>('0' + r.low_u64()));
    cur = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  return limbs_.size() * 64 -
         static_cast<std::size_t>(std::countl_zero(limbs_.back()));
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

void BigUint::set_bit(std::size_t i) {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= u64{1} << (i % 64);
}

std::strong_ordering BigUint::operator<=>(const BigUint& rhs) const {
  int c = compare_limbs(limbs_, rhs.limbs_);
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigUint BigUint::operator+(const BigUint& rhs) const {
  return from_limbs(add_limbs(limbs_, rhs.limbs_));
}

BigUint BigUint::operator-(const BigUint& rhs) const {
  if (*this < rhs) throw BignumError("BigUint subtraction underflow");
  return from_limbs(sub_limbs(limbs_, rhs.limbs_));
}

BigUint BigUint::operator*(const BigUint& rhs) const {
  return from_limbs(mul_limbs(limbs_, rhs.limbs_));
}

BigUint BigUint::operator/(const BigUint& rhs) const {
  return divmod(*this, rhs).first;
}

BigUint BigUint::operator%(const BigUint& rhs) const {
  return divmod(*this, rhs).second;
}

BigUint BigUint::operator<<(std::size_t bits) const {
  return from_limbs(shl_limbs(limbs_, bits));
}

BigUint BigUint::operator>>(std::size_t bits) const {
  return from_limbs(shr_limbs(limbs_, bits));
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& num,
                                            const BigUint& den) {
  auto [q, r] = divmod_limbs(num.limbs_, den.limbs_);
  return {from_limbs(std::move(q)), from_limbs(std::move(r))};
}

BigUint BigUint::modmul(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a * b) % m;
}

BigUint BigUint::modexp(const BigUint& base, const BigUint& exp,
                        const BigUint& m) {
  if (m.is_zero()) throw BignumError("modexp with zero modulus");
  ++op_counters().modexps;
  if (m.is_one()) return BigUint();
  if (m.is_odd()) {
    MontgomeryCtx ctx(m);
    return ctx.modexp(base, exp);
  }
  // Even modulus: plain square-and-multiply (only used in tests).
  BigUint result(1);
  BigUint b = base % m;
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exp.bit(i)) result = modmul(result, b, m);
    b = modmul(b, b, m);
  }
  return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::optional<BigUint> BigUint::modinv(const BigUint& a, const BigUint& m) {
  // Extended Euclid, tracking coefficients with explicit signs.
  if (m.is_zero()) return std::nullopt;
  BigUint old_r = a % m, r = m;
  BigUint old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;

  while (!r.is_zero()) {
    auto [q, rem] = divmod(old_r, r);
    old_r = std::move(r);
    r = std::move(rem);

    // new_s = old_s - q * s (with signs).
    BigUint qs = q * s;
    BigUint new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }

  if (!old_r.is_one()) return std::nullopt;
  if (old_s_neg) return m - (old_s % m);
  return old_s % m;
}

// ---------------------------------------------------------------------------
// Montgomery context

MontgomeryCtx::MontgomeryCtx(const BigUint& modulus) : n_(modulus) {
  if (!modulus.is_odd()) throw BignumError("Montgomery modulus must be odd");
  k_ = modulus.limbs().size();

  // n_prime = -n^{-1} mod 2^64 via Newton iteration.
  u64 n0 = modulus.limbs()[0];
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n_prime_ = ~inv + 1;  // -inv mod 2^64

  // R^2 mod n where R = 2^(64k).
  BigUint r2 = BigUint(1) << (k_ * 64 * 2);
  r2_ = r2 % n_;
}

std::vector<u64> MontgomeryCtx::mont_mul(const std::vector<u64>& a,
                                         const std::vector<u64>& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  const auto& n = n_.limbs();
  std::vector<u64> t(k_ + 2, 0);
  auto& ops = op_counters();

  for (std::size_t i = 0; i < k_; ++i) {
    u64 ai = i < a.size() ? a[i] : 0;
    // t += ai * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      u64 bj = j < b.size() ? b[j] : 0;
      u128 cur = static_cast<u128>(ai) * bj + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);

    // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
    u64 m = t[0] * n_prime_;
    u128 prod = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<u64>(prod >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      prod = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(prod);
      carry = static_cast<u64>(prod >> 64);
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
    ops.limb_muls += 2 * k_;
  }

  t.resize(k_ + 1);
  trim(t);
  if (compare_limbs(t, n) >= 0) t = sub_limbs(t, n);
  return t;
}

BigUint MontgomeryCtx::modexp(const BigUint& base, const BigUint& exp) const {
  BigUint b = base % n_;
  // Convert to Montgomery form: bR = mont_mul(b, R^2).
  std::vector<u64> b_mont = mont_mul(b.limbs(), r2_.limbs());
  // 1 in Montgomery form: R mod n = mont_mul(1, R^2).
  std::vector<u64> result = mont_mul({1}, r2_.limbs());

  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = mont_mul(result, result);
    if (exp.bit(i)) result = mont_mul(result, b_mont);
  }
  // Convert out of Montgomery form.
  result = mont_mul(result, {1});
  trim(result);
  BigUint value;
  for (std::size_t i = result.size(); i-- > 0;) {
    value = (value << 64) + BigUint(result[i]);
  }
  return value;
}

}  // namespace sdmmon::crypto
