// Primitive-operation counters used by the embedded-core timing model
// (sdmmon/timing.hpp). Every crypto primitive increments a thread-local
// counter; the Table 2 reproduction converts counts into modeled Nios II
// cycles instead of trusting host wall-clock.
#ifndef SDMMON_CRYPTO_OPCOUNT_HPP
#define SDMMON_CRYPTO_OPCOUNT_HPP

#include <cstdint>

namespace sdmmon::crypto {

/// Cumulative primitive-op counts for the current thread.
struct OpCounters {
  /// 64x64->128 multiply-accumulate steps inside bignum mul/sqr/reduce.
  std::uint64_t limb_muls = 0;
  /// AES block-cipher invocations (one 16-byte block each).
  std::uint64_t aes_blocks = 0;
  /// SHA-256 compression-function invocations (one 64-byte block each).
  std::uint64_t sha256_blocks = 0;
  /// Modular exponentiations, by operand width (for reporting).
  std::uint64_t modexps = 0;

  OpCounters operator-(const OpCounters& rhs) const {
    return OpCounters{limb_muls - rhs.limb_muls, aes_blocks - rhs.aes_blocks,
                      sha256_blocks - rhs.sha256_blocks, modexps - rhs.modexps};
  }
};

/// Thread-local counters; reset with `op_counters() = {}`.
OpCounters& op_counters();

/// RAII snapshot: `delta()` gives the ops spent since construction.
class OpScope {
 public:
  OpScope() : start_(op_counters()) {}
  OpCounters delta() const { return op_counters() - start_; }

 private:
  OpCounters start_;
};

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_OPCOUNT_HPP
