#include "crypto/rsa.hpp"

#include "crypto/prime.hpp"

namespace sdmmon::crypto {

namespace {

// DigestInfo prefix for SHA-256 (RFC 8017 section 9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

void write_biguint(util::ByteWriter& w, const BigUint& v) {
  w.blob(v.to_bytes_be());
}

BigUint read_biguint(util::ByteReader& r) {
  return BigUint::from_bytes_be(r.blob());
}

// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes.
util::Bytes emsa_encode(const Sha256Digest& digest, std::size_t em_len) {
  const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  if (em_len < t_len + 11) throw RsaError("modulus too small for signature");
  util::Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xFF);
  em.push_back(0x00);
  em.insert(em.end(), kSha256DigestInfo,
            kSha256DigestInfo + sizeof(kSha256DigestInfo));
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

util::Bytes RsaPublicKey::serialize() const {
  util::ByteWriter w;
  write_biguint(w, n);
  write_biguint(w, e);
  return w.take();
}

RsaPublicKey RsaPublicKey::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  RsaPublicKey key;
  key.n = read_biguint(r);
  key.e = read_biguint(r);
  return key;
}

Sha256Digest RsaPublicKey::fingerprint() const {
  return Sha256::hash(serialize());
}

util::Bytes RsaPrivateKey::serialize() const {
  util::ByteWriter w;
  for (const BigUint* v : {&n, &e, &d, &p, &q, &dp, &dq, &qinv}) {
    write_biguint(w, *v);
  }
  return w.take();
}

RsaPrivateKey RsaPrivateKey::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  RsaPrivateKey key;
  for (BigUint* v : {&key.n, &key.e, &key.d, &key.p, &key.q, &key.dp, &key.dq,
                     &key.qinv}) {
    *v = read_biguint(r);
  }
  return key;
}

RsaKeyPair rsa_generate(std::size_t bits, Drbg& drbg) {
  if (bits < 128 || bits % 2 != 0) {
    throw RsaError("RSA modulus must be an even bit count >= 128");
  }
  const BigUint e(65537);
  const BigUint one(1);

  for (;;) {
    BigUint p = generate_prime(bits / 2, drbg);
    BigUint q = generate_prime(bits / 2, drbg);
    if (p == q) continue;
    if (p < q) std::swap(p, q);

    BigUint n = p * q;
    if (n.bit_length() != bits) continue;

    BigUint p1 = p - one;
    BigUint q1 = q - one;
    BigUint phi = p1 * q1;
    if (!BigUint::gcd(e, phi).is_one()) continue;

    auto d = BigUint::modinv(e, phi);
    auto qinv = BigUint::modinv(q, p);
    if (!d || !qinv) continue;

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = *d;
    priv.p = p;
    priv.q = q;
    priv.dp = *d % p1;
    priv.dq = *d % q1;
    priv.qinv = *qinv;
    return {priv, priv.public_key()};
  }
}

BigUint rsa_public_op(const RsaPublicKey& key, const BigUint& m) {
  if (m >= key.n) throw RsaError("message representative out of range");
  return BigUint::modexp(m, key.e, key.n);
}

BigUint rsa_private_op(const RsaPrivateKey& key, const BigUint& c) {
  if (c >= key.n) throw RsaError("ciphertext representative out of range");
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv (m1 - m2) mod p.
  BigUint m1 = BigUint::modexp(c % key.p, key.dp, key.p);
  BigUint m2 = BigUint::modexp(c % key.q, key.dq, key.q);
  BigUint diff = (m1 >= m2) ? (m1 - m2) : (key.p - ((m2 - m1) % key.p));
  BigUint h = BigUint::modmul(diff, key.qinv, key.p);
  return m2 + h * key.q;
}

util::Bytes rsa_encrypt(const RsaPublicKey& key,
                        std::span<const std::uint8_t> message, Drbg& drbg) {
  const std::size_t k = key.modulus_bytes();
  if (message.size() + 11 > k) throw RsaError("message too long for RSA block");

  // EM = 00 || 02 || PS (nonzero random) || 00 || M
  util::Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t ps_len = k - message.size() - 3;
  while (em.size() < 2 + ps_len) {
    std::uint8_t b;
    drbg.fill(std::span<std::uint8_t>(&b, 1));
    if (b != 0) em.push_back(b);
  }
  em.push_back(0x00);
  em.insert(em.end(), message.begin(), message.end());

  BigUint m = BigUint::from_bytes_be(em);
  return rsa_public_op(key, m).to_bytes_be(k);
}

std::optional<util::Bytes> rsa_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  BigUint c = BigUint::from_bytes_be(ciphertext);
  if (c >= key.n) return std::nullopt;

  util::Bytes em = rsa_private_op(key, c).to_bytes_be(k);
  if (em.size() != k || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;

  // Find the 0x00 separator after at least 8 padding bytes.
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) return std::nullopt;
  return util::Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep) + 1,
                     em.end());
}

util::Bytes rsa_sign(const RsaPrivateKey& key,
                     std::span<const std::uint8_t> message) {
  const std::size_t k = key.modulus_bytes();
  util::Bytes em = emsa_encode(Sha256::hash(message), k);
  BigUint m = BigUint::from_bytes_be(em);
  return rsa_private_op(key, m).to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  BigUint s = BigUint::from_bytes_be(signature);
  if (s >= key.n) return false;

  util::Bytes em = rsa_public_op(key, s).to_bytes_be(k);
  util::Bytes expected = emsa_encode(Sha256::hash(message), k);
  return util::ct_equal(em, expected);
}

}  // namespace sdmmon::crypto
