// Deterministic random-bit generator built on the ChaCha20 stream cipher
// (RFC 8439 core). All key material in the reproduction (RSA primes, AES
// session keys, hash parameters) is drawn from a Drbg so experiments are
// replayable from a seed.
#ifndef SDMMON_CRYPTO_DRBG_HPP
#define SDMMON_CRYPTO_DRBG_HPP

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace sdmmon::crypto {

/// ChaCha20 block function: 64-byte keystream block from a 32-byte key,
/// 12-byte nonce, and 32-bit counter. Exposed for unit testing against the
/// RFC 8439 test vector.
std::array<std::uint8_t, 64> chacha20_block(
    const std::array<std::uint8_t, 32>& key,
    const std::array<std::uint8_t, 12>& nonce, std::uint32_t counter);

/// Seedable cryptographic DRBG. The seed string is expanded with SHA-256
/// into the ChaCha20 key; successive blocks form the output stream.
class Drbg {
 public:
  explicit Drbg(std::string_view seed);
  explicit Drbg(std::span<const std::uint8_t> seed);

  void fill(std::span<std::uint8_t> out);
  util::Bytes bytes(std::size_t n);
  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform in [0, bound), rejection-sampled.
  std::uint64_t below(std::uint64_t bound);

  /// Fork an independent stream labeled by `label` (domain separation).
  Drbg fork(std::string_view label) const;

 private:
  void refill();

  std::array<std::uint8_t, 32> key_;
  std::array<std::uint8_t, 12> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t used_ = 64;
};

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_DRBG_HPP
