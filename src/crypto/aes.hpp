// AES-128/192/256 block cipher (FIPS 197) with CBC (PKCS#7 padding) and CTR
// modes, implemented from scratch. Used to encrypt the SDMMon install
// package with the session key K_sym.
#ifndef SDMMON_CRYPTO_AES_HPP
#define SDMMON_CRYPTO_AES_HPP

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace sdmmon::crypto {

constexpr std::size_t kAesBlockSize = 16;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// Thrown when ciphertext is malformed (bad length or PKCS#7 padding).
class AesError : public std::runtime_error {
 public:
  explicit AesError(const std::string& what) : std::runtime_error(what) {}
};

/// Raw AES block cipher. Key length selects AES-128/192/256.
class Aes {
 public:
  explicit Aes(std::span<const std::uint8_t> key);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

  int rounds() const { return rounds_; }

 private:
  void expand_key(std::span<const std::uint8_t> key);

  int rounds_ = 0;
  // Round keys as 4-byte words, enough for AES-256 (60 words).
  std::array<std::uint32_t, 60> round_keys_{};
};

/// CBC mode with PKCS#7 padding; output is always a whole number of blocks.
util::Bytes aes_cbc_encrypt(std::span<const std::uint8_t> key,
                            const AesBlock& iv,
                            std::span<const std::uint8_t> plaintext);

/// Throws AesError on bad length or padding.
util::Bytes aes_cbc_decrypt(std::span<const std::uint8_t> key,
                            const AesBlock& iv,
                            std::span<const std::uint8_t> ciphertext);

/// CTR mode keystream XOR (encrypt == decrypt); no padding.
util::Bytes aes_ctr_crypt(std::span<const std::uint8_t> key,
                          const AesBlock& nonce,
                          std::span<const std::uint8_t> data);

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_AES_HPP
