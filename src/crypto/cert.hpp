// Lightweight certificates for the SDMMon chain of trust: the manufacturer
// signs the network operator's public key, and the device (which holds the
// manufacturer's public key as root of trust) verifies the chain before
// accepting any install package (paper Section 3.1).
#ifndef SDMMON_CRYPTO_CERT_HPP
#define SDMMON_CRYPTO_CERT_HPP

#include <cstdint>
#include <string>

#include "crypto/rsa.hpp"

namespace sdmmon::crypto {

/// Role of the certified key within the SDMMon entity model.
enum class CertRole : std::uint8_t {
  Manufacturer = 0,
  NetworkOperator = 1,
  Device = 2,
};

const char* cert_role_name(CertRole role);

/// A signed binding of (subject name, role, public key, validity window).
struct Certificate {
  std::string subject;
  CertRole role = CertRole::NetworkOperator;
  std::uint64_t serial = 0;
  std::uint64_t valid_from = 0;  // seconds since epoch
  std::uint64_t valid_to = 0;
  RsaPublicKey subject_key;
  std::string issuer;
  util::Bytes signature;  // issuer's RSA signature over tbs_bytes()

  /// The to-be-signed serialization (everything but the signature).
  util::Bytes tbs_bytes() const;

  util::Bytes serialize() const;
  static Certificate deserialize(std::span<const std::uint8_t> data);
};

/// Issue a certificate: sign `tbs` fields with the issuer's private key.
Certificate issue_certificate(const std::string& subject, CertRole role,
                              std::uint64_t serial, std::uint64_t valid_from,
                              std::uint64_t valid_to,
                              const RsaPublicKey& subject_key,
                              const std::string& issuer,
                              const RsaPrivateKey& issuer_key);

/// Result of certificate validation, for precise error reporting in tests
/// and the install protocol's audit log.
enum class CertStatus {
  Ok,
  BadSignature,
  NotYetValid,
  Expired,
  WrongRole,
};

const char* cert_status_name(CertStatus status);

/// Verify signature with `issuer_key` and check the validity window at
/// time `now`; if `expected_role` is set, the role must match.
CertStatus verify_certificate(const Certificate& cert,
                              const RsaPublicKey& issuer_key,
                              std::uint64_t now);
CertStatus verify_certificate(const Certificate& cert,
                              const RsaPublicKey& issuer_key,
                              std::uint64_t now, CertRole expected_role);

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_CERT_HPP
