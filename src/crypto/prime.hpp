// Probabilistic primality testing (Miller-Rabin) and random prime
// generation for RSA key generation.
#ifndef SDMMON_CRYPTO_PRIME_HPP
#define SDMMON_CRYPTO_PRIME_HPP

#include <cstddef>

#include "crypto/bignum.hpp"
#include "crypto/drbg.hpp"

namespace sdmmon::crypto {

/// Miller-Rabin with `rounds` random witnesses drawn from `drbg`.
/// Small candidates are handled exactly via trial division.
bool is_probable_prime(const BigUint& n, Drbg& drbg, int rounds = 24);

/// Random odd number with exactly `bits` bits (both top bits set, so the
/// product of two such primes has exactly 2*bits bits).
BigUint random_prime_candidate(std::size_t bits, Drbg& drbg);

/// Random probable prime with exactly `bits` bits.
BigUint generate_prime(std::size_t bits, Drbg& drbg, int mr_rounds = 24);

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_PRIME_HPP
