#include "crypto/opcount.hpp"

namespace sdmmon::crypto {

OpCounters& op_counters() {
  thread_local OpCounters counters;
  return counters;
}

}  // namespace sdmmon::crypto
