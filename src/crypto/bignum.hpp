// Arbitrary-precision unsigned integers for the RSA implementation.
// Little-endian 64-bit limbs, schoolbook multiplication with op counting
// (feeds the embedded-core timing model), Knuth algorithm D division, and
// Montgomery-form modular exponentiation for odd moduli.
#ifndef SDMMON_CRYPTO_BIGNUM_HPP
#define SDMMON_CRYPTO_BIGNUM_HPP

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace sdmmon::crypto {

class BignumError : public std::runtime_error {
 public:
  explicit BignumError(const std::string& what) : std::runtime_error(what) {}
};

/// Non-negative arbitrary-precision integer. Subtraction that would go
/// negative throws BignumError (RSA never needs signed arithmetic except in
/// the extended GCD, which handles signs locally).
class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor)

  static BigUint from_bytes_be(std::span<const std::uint8_t> bytes);
  static BigUint from_hex(std::string_view hex);
  static BigUint from_decimal(std::string_view dec);

  /// Big-endian bytes, left-padded with zeros to at least `min_len`.
  util::Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;
  std::string to_decimal() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);

  /// Value of the low 64 bits.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  std::strong_ordering operator<=>(const BigUint& rhs) const;
  bool operator==(const BigUint& rhs) const = default;

  BigUint operator+(const BigUint& rhs) const;
  BigUint operator-(const BigUint& rhs) const;  // throws if rhs > *this
  BigUint operator*(const BigUint& rhs) const;
  BigUint operator/(const BigUint& rhs) const;
  BigUint operator%(const BigUint& rhs) const;
  BigUint operator<<(std::size_t bits) const;
  BigUint operator>>(std::size_t bits) const;

  BigUint& operator+=(const BigUint& rhs) { return *this = *this + rhs; }
  BigUint& operator-=(const BigUint& rhs) { return *this = *this - rhs; }

  /// Quotient and remainder in one pass; divisor must be non-zero.
  static std::pair<BigUint, BigUint> divmod(const BigUint& num,
                                            const BigUint& den);

  /// (a * b) mod m.
  static BigUint modmul(const BigUint& a, const BigUint& b, const BigUint& m);

  /// base^exp mod m; uses Montgomery multiplication when m is odd.
  static BigUint modexp(const BigUint& base, const BigUint& exp,
                        const BigUint& m);

  static BigUint gcd(BigUint a, BigUint b);

  /// Multiplicative inverse of a mod m, if gcd(a, m) == 1.
  static std::optional<BigUint> modinv(const BigUint& a, const BigUint& m);

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void normalize();
  static BigUint from_limbs(std::vector<std::uint64_t> limbs);

  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zeros
};

/// Precomputed Montgomery context for repeated modexp with the same odd
/// modulus (CRT-based RSA private ops reuse these).
class MontgomeryCtx {
 public:
  explicit MontgomeryCtx(const BigUint& modulus);

  /// base^exp mod modulus using left-to-right square-and-multiply.
  BigUint modexp(const BigUint& base, const BigUint& exp) const;

  const BigUint& modulus() const { return n_; }

 private:
  std::vector<std::uint64_t> redc(std::vector<std::uint64_t> t) const;
  std::vector<std::uint64_t> mont_mul(const std::vector<std::uint64_t>& a,
                                      const std::vector<std::uint64_t>& b) const;

  BigUint n_;
  std::size_t k_;            // limb count of modulus
  std::uint64_t n_prime_;    // -n^{-1} mod 2^64
  BigUint r2_;               // R^2 mod n, for conversion into Montgomery form
};

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_BIGNUM_HPP
