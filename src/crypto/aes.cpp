#include "crypto/aes.hpp"

#include <cstring>

#include "crypto/opcount.hpp"

namespace sdmmon::crypto {

namespace {

// S-box and inverse computed at static-init time from the AES definition
// (multiplicative inverse in GF(2^8) followed by the affine transform), so
// no 256-entry magic tables are pasted in.
struct SboxTables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  SboxTables() {
    // Build log/antilog tables over GF(2^8) with generator 3.
    std::array<std::uint8_t, 256> pow{}, log{};
    std::uint8_t p = 1;
    for (int i = 0; i < 255; ++i) {
      pow[i] = p;
      log[p] = static_cast<std::uint8_t>(i);
      // p *= 3 in GF(2^8): p = p ^ xtime(p).
      std::uint8_t x = static_cast<std::uint8_t>(p << 1);
      if (p & 0x80) x ^= 0x1B;
      p ^= x;
    }
    for (int i = 0; i < 256; ++i) {
      std::uint8_t inv =
          (i == 0) ? 0 : pow[(255 - log[static_cast<std::uint8_t>(i)]) % 255];
      // Affine transform: b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63.
      std::uint8_t b = inv, s = 0x63;
      for (int r = 0; r < 5; ++r) {
        s ^= b;
        b = static_cast<std::uint8_t>((b << 1) | (b >> 7));
      }
      sbox[i] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
  }
};

const SboxTables kTables;

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    std::uint8_t hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1B;
    b >>= 1;
  }
  return r;
}

std::uint32_t sub_word(std::uint32_t w) {
  return static_cast<std::uint32_t>(kTables.sbox[w >> 24]) << 24 |
         static_cast<std::uint32_t>(kTables.sbox[(w >> 16) & 0xFF]) << 16 |
         static_cast<std::uint32_t>(kTables.sbox[(w >> 8) & 0xFF]) << 8 |
         static_cast<std::uint32_t>(kTables.sbox[w & 0xFF]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    std::uint32_t w = rk[c];
    state[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(w);
  }
}

void shift_rows(std::uint8_t s[16]) {
  // State is column-major: s[4*col + row].
  std::uint8_t t;
  // Row 1: shift left by 1.
  t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  // Row 2: shift left by 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift left by 3 (= right by 1).
  t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void inv_shift_rows(std::uint8_t s[16]) {
  std::uint8_t t;
  t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
}

void mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
    col[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
    col[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
    col[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
  }
}

void inv_mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
    col[1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
    col[2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
    col[3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
  }
}

}  // namespace

Aes::Aes(std::span<const std::uint8_t> key) {
  switch (key.size()) {
    case 16: rounds_ = 10; break;
    case 24: rounds_ = 12; break;
    case 32: rounds_ = 14; break;
    default: throw AesError("AES key must be 16, 24, or 32 bytes");
  }
  expand_key(key);
}

void Aes::expand_key(std::span<const std::uint8_t> key) {
  const int nk = static_cast<int>(key.size() / 4);
  const int total_words = 4 * (rounds_ + 1);

  for (int i = 0; i < nk; ++i) {
    round_keys_[static_cast<std::size_t>(i)] = util::load_be32(key.data() + 4 * i);
  }
  std::uint8_t rcon = 1;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[static_cast<std::size_t>(i - 1)];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = gf_mul(rcon, 2);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[static_cast<std::size_t>(i)] =
        round_keys_[static_cast<std::size_t>(i - nk)] ^ temp;
  }
}

void Aes::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  ++op_counters().aes_blocks;

  std::uint8_t state[16];
  std::memcpy(state, in, 16);

  add_round_key(state, round_keys_.data());
  for (int round = 1; round < rounds_; ++round) {
    for (auto& b : state) b = kTables.sbox[b];
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, round_keys_.data() + 4 * round);
  }
  for (auto& b : state) b = kTables.sbox[b];
  shift_rows(state);
  add_round_key(state, round_keys_.data() + 4 * rounds_);

  std::memcpy(out, state, 16);
}

void Aes::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  ++op_counters().aes_blocks;

  std::uint8_t state[16];
  std::memcpy(state, in, 16);

  add_round_key(state, round_keys_.data() + 4 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(state);
    for (auto& b : state) b = kTables.inv_sbox[b];
    add_round_key(state, round_keys_.data() + 4 * round);
    inv_mix_columns(state);
  }
  inv_shift_rows(state);
  for (auto& b : state) b = kTables.inv_sbox[b];
  add_round_key(state, round_keys_.data());

  std::memcpy(out, state, 16);
}

util::Bytes aes_cbc_encrypt(std::span<const std::uint8_t> key,
                            const AesBlock& iv,
                            std::span<const std::uint8_t> plaintext) {
  Aes cipher(key);
  const std::size_t pad =
      kAesBlockSize - plaintext.size() % kAesBlockSize;  // 1..16
  util::Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  util::Bytes out(padded.size());
  AesBlock chain = iv;
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    AesBlock block;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      block[i] = padded[off + i] ^ chain[i];
    }
    cipher.encrypt_block(block.data(), out.data() + off);
    std::memcpy(chain.data(), out.data() + off, kAesBlockSize);
  }
  return out;
}

util::Bytes aes_cbc_decrypt(std::span<const std::uint8_t> key,
                            const AesBlock& iv,
                            std::span<const std::uint8_t> ciphertext) {
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0) {
    throw AesError("CBC ciphertext length not a multiple of block size");
  }
  Aes cipher(key);
  util::Bytes out(ciphertext.size());
  AesBlock chain = iv;
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    AesBlock plain;
    cipher.decrypt_block(ciphertext.data() + off, plain.data());
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      out[off + i] = plain[i] ^ chain[i];
    }
    std::memcpy(chain.data(), ciphertext.data() + off, kAesBlockSize);
  }

  std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) {
    throw AesError("bad PKCS#7 padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) throw AesError("bad PKCS#7 padding");
  }
  out.resize(out.size() - pad);
  return out;
}

util::Bytes aes_ctr_crypt(std::span<const std::uint8_t> key,
                          const AesBlock& nonce,
                          std::span<const std::uint8_t> data) {
  Aes cipher(key);
  util::Bytes out(data.size());
  AesBlock counter = nonce;
  AesBlock keystream;
  for (std::size_t off = 0; off < data.size(); off += kAesBlockSize) {
    cipher.encrypt_block(counter.data(), keystream.data());
    const std::size_t n = std::min(kAesBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ keystream[i];
    // Increment the big-endian counter in the last 8 bytes.
    for (int i = 15; i >= 8; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
  return out;
}

}  // namespace sdmmon::crypto
