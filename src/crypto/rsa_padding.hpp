// Modern RSA padding schemes (RFC 8017): OAEP encryption and PSS
// signatures, both with SHA-256 and MGF1. The paper's prototype used
// OpenSSL's PKCS#1 v1.5 defaults (crypto/rsa.hpp); these are provided as
// the hardened upgrade path an operator deploying SDMMon today would use,
// and they slot into the same timing model (the modexp dominates).
#ifndef SDMMON_CRYPTO_RSA_PADDING_HPP
#define SDMMON_CRYPTO_RSA_PADDING_HPP

#include "crypto/rsa.hpp"

namespace sdmmon::crypto {

/// MGF1 mask generation (RFC 8017 B.2.1) over SHA-256.
util::Bytes mgf1_sha256(std::span<const std::uint8_t> seed, std::size_t len);

/// RSAES-OAEP encryption with SHA-256 and an empty label.
/// Message limit: modulus_bytes - 2*32 - 2.
util::Bytes rsa_oaep_encrypt(const RsaPublicKey& key,
                             std::span<const std::uint8_t> message,
                             Drbg& drbg);

/// Returns nullopt on any decoding failure (single failure signal, no
/// padding oracle detail).
std::optional<util::Bytes> rsa_oaep_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext);

/// RSASSA-PSS signature with SHA-256 and a 32-byte salt.
util::Bytes rsa_pss_sign(const RsaPrivateKey& key,
                         std::span<const std::uint8_t> message, Drbg& drbg);

bool rsa_pss_verify(const RsaPublicKey& key,
                    std::span<const std::uint8_t> message,
                    std::span<const std::uint8_t> signature);

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_RSA_PADDING_HPP
