// SHA-256 (FIPS 180-4), implemented from scratch. Used for signatures,
// HMAC, certificate fingerprints, and the DRBG seeding path.
#ifndef SDMMON_CRYPTO_SHA256_HPP
#define SDMMON_CRYPTO_SHA256_HPP

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace sdmmon::crypto {

constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. Typical use: update(...) repeatedly, then finish().
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);
  /// Finalizes and returns the digest; the object must be reset() to reuse.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(std::span<const std::uint8_t> data);
  static Sha256Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 (FIPS 198-1).
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message);

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_SHA256_HPP
