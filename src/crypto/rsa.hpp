// RSA with PKCS#1 v1.5 padding (encryption and signatures), implemented
// from scratch on the bignum layer. Private-key operations use the CRT.
// This is the asymmetric primitive the paper's prototype used via OpenSSL
// (2048-bit keys) for the three-entity install protocol.
#ifndef SDMMON_CRYPTO_RSA_HPP
#define SDMMON_CRYPTO_RSA_HPP

#include <cstddef>
#include <optional>

#include "crypto/bignum.hpp"
#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"

namespace sdmmon::crypto {

class RsaError : public std::runtime_error {
 public:
  explicit RsaError(const std::string& what) : std::runtime_error(what) {}
};

struct RsaPublicKey {
  BigUint n;
  BigUint e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  util::Bytes serialize() const;
  static RsaPublicKey deserialize(std::span<const std::uint8_t> data);

  /// SHA-256 of the serialized key; used as a key identifier.
  Sha256Digest fingerprint() const;

  bool operator==(const RsaPublicKey& rhs) const = default;
};

struct RsaPrivateKey {
  BigUint n;
  BigUint e;
  BigUint d;
  // CRT components.
  BigUint p, q, dp, dq, qinv;

  RsaPublicKey public_key() const { return {n, e}; }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  util::Bytes serialize() const;
  static RsaPrivateKey deserialize(std::span<const std::uint8_t> data);
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Generate an RSA key of `bits` modulus bits with public exponent 65537.
RsaKeyPair rsa_generate(std::size_t bits, Drbg& drbg);

/// Raw modexp operations (textbook RSA); exposed for tests.
BigUint rsa_public_op(const RsaPublicKey& key, const BigUint& m);
BigUint rsa_private_op(const RsaPrivateKey& key, const BigUint& c);

/// PKCS#1 v1.5 encryption (EME-PKCS1-v1_5). Message must be at most
/// modulus_bytes - 11 bytes. Randomness for padding comes from `drbg`.
util::Bytes rsa_encrypt(const RsaPublicKey& key,
                        std::span<const std::uint8_t> message, Drbg& drbg);

/// Returns nullopt on any padding failure (no exception, no oracle detail).
std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                       std::span<const std::uint8_t> ciphertext);

/// PKCS#1 v1.5 signature over SHA-256 (EMSA-PKCS1-v1_5 with DigestInfo).
util::Bytes rsa_sign(const RsaPrivateKey& key,
                     std::span<const std::uint8_t> message);

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature);

}  // namespace sdmmon::crypto

#endif  // SDMMON_CRYPTO_RSA_HPP
