#include "crypto/rsa_padding.hpp"

#include <cstring>

namespace sdmmon::crypto {

namespace {

constexpr std::size_t kHashLen = kSha256DigestSize;

void xor_into(std::uint8_t* dst, std::span<const std::uint8_t> mask) {
  for (std::size_t i = 0; i < mask.size(); ++i) dst[i] ^= mask[i];
}

}  // namespace

util::Bytes mgf1_sha256(std::span<const std::uint8_t> seed, std::size_t len) {
  util::Bytes out;
  out.reserve(len + kHashLen);
  std::uint32_t counter = 0;
  while (out.size() < len) {
    Sha256 h;
    h.update(seed);
    std::uint8_t ctr_be[4];
    util::store_be32(counter++, ctr_be);
    h.update(std::span<const std::uint8_t>(ctr_be, 4));
    auto digest = h.finish();
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(len);
  return out;
}

util::Bytes rsa_oaep_encrypt(const RsaPublicKey& key,
                             std::span<const std::uint8_t> message,
                             Drbg& drbg) {
  const std::size_t k = key.modulus_bytes();
  if (message.size() + 2 * kHashLen + 2 > k) {
    throw RsaError("message too long for OAEP");
  }

  // DB = lHash || PS (zeros) || 0x01 || M, where lHash = SHA-256("").
  const std::size_t db_len = k - kHashLen - 1;
  util::Bytes db(db_len, 0);
  auto l_hash = Sha256::hash("");
  std::memcpy(db.data(), l_hash.data(), kHashLen);
  db[db_len - message.size() - 1] = 0x01;
  std::memcpy(db.data() + db_len - message.size(), message.data(),
              message.size());

  util::Bytes seed = drbg.bytes(kHashLen);
  xor_into(db.data(), mgf1_sha256(seed, db_len));        // maskedDB
  xor_into(seed.data(), mgf1_sha256(db, kHashLen));      // maskedSeed

  util::Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), seed.begin(), seed.end());
  em.insert(em.end(), db.begin(), db.end());

  return rsa_public_op(key, BigUint::from_bytes_be(em)).to_bytes_be(k);
}

std::optional<util::Bytes> rsa_oaep_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k || k < 2 * kHashLen + 2) return std::nullopt;
  BigUint c = BigUint::from_bytes_be(ciphertext);
  if (c >= key.n) return std::nullopt;

  util::Bytes em = rsa_private_op(key, c).to_bytes_be(k);
  if (em[0] != 0x00) return std::nullopt;

  const std::size_t db_len = k - kHashLen - 1;
  util::Bytes seed(em.begin() + 1, em.begin() + 1 + kHashLen);
  util::Bytes db(em.begin() + 1 + kHashLen, em.end());

  xor_into(seed.data(), mgf1_sha256(db, kHashLen));
  xor_into(db.data(), mgf1_sha256(seed, db_len));

  auto l_hash = Sha256::hash("");
  if (!util::ct_equal(std::span<const std::uint8_t>(db.data(), kHashLen),
                      l_hash)) {
    return std::nullopt;
  }
  // Find the 0x01 separator after the zero padding.
  std::size_t sep = kHashLen;
  while (sep < db.size() && db[sep] == 0x00) ++sep;
  if (sep == db.size() || db[sep] != 0x01) return std::nullopt;
  return util::Bytes(db.begin() + static_cast<std::ptrdiff_t>(sep) + 1,
                     db.end());
}

util::Bytes rsa_pss_sign(const RsaPrivateKey& key,
                         std::span<const std::uint8_t> message, Drbg& drbg) {
  const std::size_t k = key.modulus_bytes();
  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < 2 * kHashLen + 2) throw RsaError("modulus too small for PSS");

  auto m_hash = Sha256::hash(message);
  util::Bytes salt = drbg.bytes(kHashLen);

  // M' = 8 zero bytes || mHash || salt ; H = SHA-256(M').
  Sha256 h;
  std::uint8_t zeros[8] = {};
  h.update(std::span<const std::uint8_t>(zeros, 8));
  h.update(m_hash);
  h.update(salt);
  auto h_digest = h.finish();

  // DB = PS (zeros) || 0x01 || salt.
  const std::size_t db_len = em_len - kHashLen - 1;
  util::Bytes db(db_len, 0);
  db[db_len - kHashLen - 1] = 0x01;
  std::memcpy(db.data() + db_len - kHashLen, salt.data(), kHashLen);

  xor_into(db.data(), mgf1_sha256(h_digest, db_len));
  // Clear the leftmost 8*em_len - em_bits bits.
  db[0] &= static_cast<std::uint8_t>(0xFF >> (8 * em_len - em_bits));

  util::Bytes em;
  em.reserve(em_len + 1);
  em.insert(em.end(), db.begin(), db.end());
  em.insert(em.end(), h_digest.begin(), h_digest.end());
  em.push_back(0xBC);

  return rsa_private_op(key, BigUint::from_bytes_be(em)).to_bytes_be(k);
}

bool rsa_pss_verify(const RsaPublicKey& key,
                    std::span<const std::uint8_t> message,
                    std::span<const std::uint8_t> signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  BigUint s = BigUint::from_bytes_be(signature);
  if (s >= key.n) return false;

  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < 2 * kHashLen + 2) return false;

  util::Bytes em = rsa_public_op(key, s).to_bytes_be(em_len);
  if (em.back() != 0xBC) return false;

  const std::size_t db_len = em_len - kHashLen - 1;
  util::Bytes db(em.begin(), em.begin() + static_cast<std::ptrdiff_t>(db_len));
  util::Bytes h_digest(em.begin() + static_cast<std::ptrdiff_t>(db_len),
                       em.end() - 1);

  // Leftmost bits beyond em_bits must be zero.
  const std::uint8_t top_mask =
      static_cast<std::uint8_t>(0xFF >> (8 * em_len - em_bits));
  if ((db[0] & ~top_mask) != 0) return false;

  xor_into(db.data(), mgf1_sha256(h_digest, db_len));
  db[0] &= top_mask;

  // DB must be zeros || 0x01 || salt.
  std::size_t sep = 0;
  while (sep < db_len - kHashLen - 1 && db[sep] == 0x00) ++sep;
  if (db[sep] != 0x01 || sep != db_len - kHashLen - 1) return false;
  util::Bytes salt(db.end() - static_cast<std::ptrdiff_t>(kHashLen),
                   db.end());

  auto m_hash = Sha256::hash(message);
  Sha256 h;
  std::uint8_t zeros[8] = {};
  h.update(std::span<const std::uint8_t>(zeros, 8));
  h.update(m_hash);
  h.update(salt);
  auto expected = h.finish();
  return util::ct_equal(h_digest, expected);
}

}  // namespace sdmmon::crypto
