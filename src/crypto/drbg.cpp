#include "crypto/drbg.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "util/bitops.hpp"

namespace sdmmon::crypto {

namespace {

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = util::rotl32(d, 16);
  c += d; b ^= c; b = util::rotl32(b, 12);
  a += b; d ^= a; d = util::rotl32(d, 8);
  c += d; b ^= c; b = util::rotl32(b, 7);
}

std::uint32_t load_le32_arr(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(
    const std::array<std::uint8_t, 32>& key,
    const std::array<std::uint8_t, 12>& nonce, std::uint32_t counter) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32_arr(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32_arr(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }

  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = w[i] + state[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

Drbg::Drbg(std::string_view seed) {
  key_ = Sha256::hash(seed);
}

Drbg::Drbg(std::span<const std::uint8_t> seed) {
  key_ = Sha256::hash(seed);
}

void Drbg::refill() {
  block_ = chacha20_block(key_, nonce_, counter_++);
  used_ = 0;
}

void Drbg::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (used_ == block_.size()) refill();
    const std::size_t n = std::min(out.size() - off, block_.size() - used_);
    std::memcpy(out.data() + off, block_.data() + used_, n);
    used_ += n;
    off += n;
  }
}

util::Bytes Drbg::bytes(std::size_t n) {
  util::Bytes out(n);
  fill(out);
  return out;
}

std::uint32_t Drbg::next_u32() {
  std::uint8_t tmp[4];
  fill(tmp);
  return util::load_be32(tmp);
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t tmp[8];
  fill(tmp);
  return util::load_be64(tmp);
}

std::uint64_t Drbg::below(std::uint64_t bound) {
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

Drbg Drbg::fork(std::string_view label) const {
  Sha256 h;
  h.update(key_);
  h.update("/fork/");
  h.update(label);
  auto digest = h.finish();
  return Drbg(std::span<const std::uint8_t>(digest.data(), digest.size()));
}

}  // namespace sdmmon::crypto
