// Brute-force attacker model for the hash-matching experiments (paper
// Section 3.2): without knowledge of the hash parameter, the only way to
// make injected instructions pass the monitor is to enumerate candidate
// words and probe the device (each probe = one attack packet; a mismatch
// resets the core, success lets the next instruction run).
#ifndef SDMMON_ATTACK_PROBE_HPP
#define SDMMON_ATTACK_PROBE_HPP

#include <cstdint>
#include <vector>

#include "monitor/hash.hpp"
#include "util/rng.hpp"

namespace sdmmon::attack {

struct CraftResult {
  std::vector<std::uint32_t> words;  // one per target position
  std::uint64_t probes = 0;          // oracle queries spent
  bool success = false;
};

/// How much feedback each probe gives the attacker.
enum class Oracle : std::uint8_t {
  /// Strong attacker: learns how far execution got before detection, so
  /// positions are cracked independently (~2^w probes per instruction,
  /// linear in L). Models an attacker with a timing/behavior side channel.
  PerInstruction,
  /// Realistic data-plane attacker: a probe is one attack packet and the
  /// only signal is whether the whole attack ran (binary outcome). Cost is
  /// ~2^(wL) probes -- the paper's "brute force enumeration of different
  /// hash sequences".
  WholeSequence,
};

/// Craft a word sequence that matches the victim's expected hash sequence
/// by brute force. `victim_hash` is the router's (secret) hash unit, used
/// only as a black-box accept/reject oracle. `expected` holds the graph
/// hashes the injected code must reproduce, and `forbidden` the original
/// instruction words (the attack must differ from the real code).
CraftResult brute_force_matching_words(
    const monitor::InstructionHash& victim_hash,
    const std::vector<std::uint8_t>& expected,
    const std::vector<std::uint32_t>& forbidden, util::Rng& rng,
    std::uint64_t max_probes = 1'000'000,
    Oracle oracle = Oracle::PerInstruction);

/// Probability that `words` passes a monitor keyed with `hash` along a
/// straight-line path whose original instructions are `originals`
/// (i.e. all hashes collide).
bool attack_transfers(const monitor::InstructionHash& hash,
                      const std::vector<std::uint32_t>& words,
                      const std::vector<std::uint32_t>& originals);

}  // namespace sdmmon::attack

#endif  // SDMMON_ATTACK_PROBE_HPP
