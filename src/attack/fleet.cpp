#include "attack/fleet.hpp"

#include <memory>
#include <vector>

#include "attack/probe.hpp"
#include "net/apps.hpp"
#include "util/rng.hpp"

namespace sdmmon::attack {

FleetResult simulate_fleet(const FleetConfig& config) {
  util::Rng rng(config.seed);

  // The attack overwrites control flow at a point where the monitor then
  // expects the original straight-line instructions; the injected code
  // must reproduce their hashes. Use a straight-line window of the real
  // forwarding binary as that target.
  isa::Program binary = net::build_ipv4_forward();
  const std::size_t offset = 2;  // inside the prologue, all ALU ops
  std::vector<std::uint32_t> originals;
  for (int i = 0; i < config.attack_len; ++i) {
    originals.push_back(binary.text[offset + static_cast<std::size_t>(i)]);
  }

  // Router parameters: distinct when diversified, shared otherwise.
  std::vector<std::unique_ptr<monitor::MerkleTreeHash>> routers;
  routers.reserve(config.num_routers);
  const std::uint32_t shared_param = rng.next_u32();
  for (std::size_t r = 0; r < config.num_routers; ++r) {
    const std::uint32_t param =
        config.diversified ? rng.next_u32() : shared_param;
    routers.push_back(std::make_unique<monitor::MerkleTreeHash>(
        param, config.hash_width, config.compression));
  }

  // Victim = router 0. Its expected graph hashes for the window:
  const monitor::MerkleTreeHash& victim = *routers[0];
  std::vector<std::uint8_t> expected;
  for (std::uint32_t word : originals) expected.push_back(victim.hash(word));

  FleetResult result;
  CraftResult craft =
      brute_force_matching_words(victim, expected, originals, rng,
                                 config.craft_budget, config.oracle);
  result.probes_on_victim = craft.probes;
  result.craft_succeeded = craft.success;
  if (!craft.success) return result;

  for (const auto& router : routers) {
    if (attack_transfers(*router, craft.words, originals)) {
      ++result.compromised;
    }
  }
  result.compromised_fraction =
      static_cast<double>(result.compromised) /
      static_cast<double>(config.num_routers);
  return result;
}

}  // namespace sdmmon::attack
