#include "attack/probe.hpp"

namespace sdmmon::attack {

namespace {

CraftResult craft_per_instruction(const monitor::InstructionHash& victim_hash,
                                  const std::vector<std::uint8_t>& expected,
                                  const std::vector<std::uint32_t>& forbidden,
                                  util::Rng& rng, std::uint64_t max_probes) {
  CraftResult result;
  result.words.reserve(expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    bool found = false;
    while (result.probes < max_probes) {
      std::uint32_t candidate = rng.next_u32();
      ++result.probes;
      if (i < forbidden.size() && candidate == forbidden[i]) continue;
      if (victim_hash.hash(candidate) == expected[i]) {
        result.words.push_back(candidate);
        found = true;
        break;
      }
    }
    if (!found) return result;  // budget exhausted
  }
  result.success = true;
  return result;
}

CraftResult craft_whole_sequence(const monitor::InstructionHash& victim_hash,
                                 const std::vector<std::uint8_t>& expected,
                                 const std::vector<std::uint32_t>& forbidden,
                                 util::Rng& rng, std::uint64_t max_probes) {
  CraftResult result;
  std::vector<std::uint32_t> candidate(expected.size());
  while (result.probes < max_probes) {
    ++result.probes;  // one probe = one attack packet carrying the sequence
    bool passes = true;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      std::uint32_t word = rng.next_u32();
      if (i < forbidden.size() && word == forbidden[i]) word ^= 1;
      candidate[i] = word;
      // The device drops the packet on the first mismatch; the attacker
      // only sees the binary outcome, so nothing is learned per position.
      if (victim_hash.hash(word) != expected[i]) passes = false;
    }
    if (passes) {
      result.words = candidate;
      result.success = true;
      return result;
    }
  }
  return result;
}

}  // namespace

CraftResult brute_force_matching_words(
    const monitor::InstructionHash& victim_hash,
    const std::vector<std::uint8_t>& expected,
    const std::vector<std::uint32_t>& forbidden, util::Rng& rng,
    std::uint64_t max_probes, Oracle oracle) {
  return oracle == Oracle::PerInstruction
             ? craft_per_instruction(victim_hash, expected, forbidden, rng,
                                     max_probes)
             : craft_whole_sequence(victim_hash, expected, forbidden, rng,
                                    max_probes);
}

bool attack_transfers(const monitor::InstructionHash& hash,
                      const std::vector<std::uint32_t>& words,
                      const std::vector<std::uint32_t>& originals) {
  if (words.size() > originals.size()) return false;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (hash.hash(words[i]) != hash.hash(originals[i])) return false;
  }
  return true;
}

}  // namespace sdmmon::attack
