// Code-reuse attack analysis: instead of injecting instructions (whose
// hashes are random w.r.t. the graph), the attacker redirects the smashed
// return address into EXISTING application code. Every executed word then
// carries a hash that appears somewhere in the monitoring graph -- the
// monitor only catches the diversion because the hash *sequence* fails to
// follow the graph from the tracked position, and the analyzer's
// over-approximation of indirect-jump successors (all return sites + all
// call targets) deliberately whitelists some diversions.
//
// This module sweeps every word-aligned text address as a redirect target
// and classifies the outcome, quantifying the NFA monitor's blind spot --
// an honest limitation analysis the paper does not include.
#ifndef SDMMON_ATTACK_REUSE_HPP
#define SDMMON_ATTACK_REUSE_HPP

#include <cstdint>
#include <vector>

namespace sdmmon::attack {

enum class ReuseOutcome : std::uint8_t {
  Detected,       // monitor flagged the diversion
  Trapped,        // core trapped (fault/watchdog) before/without detection
  SilentComplete, // packet finished with no flag -- monitor blind spot
};

struct ReuseScan {
  std::size_t targets = 0;
  std::size_t detected = 0;
  std::size_t trapped = 0;
  std::size_t silent = 0;
  /// Targets that completed silently (instruction indices into text).
  std::vector<std::uint32_t> silent_targets;

  double silent_fraction() const {
    return targets == 0 ? 0.0
                        : static_cast<double>(silent) /
                              static_cast<double>(targets);
  }
};

/// Redirect the ipv4-cm overflow to every word-aligned address of the
/// application text and classify each outcome under a monitor keyed with
/// `hash_param`.
ReuseScan scan_cm_reuse_targets(std::uint32_t hash_param);

}  // namespace sdmmon::attack

#endif  // SDMMON_ATTACK_REUSE_HPP
