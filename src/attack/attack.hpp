// Data-plane attack crafting (attacker model AC1/AC2): malformed packets
// that exploit the ipv4-cm app's unchecked option copy to overwrite the
// saved return address and divert execution into packet-carried code --
// the attack class of Chasaki & Wolf that hardware monitors detect.
#ifndef SDMMON_ATTACK_ATTACK_HPP
#define SDMMON_ATTACK_ATTACK_HPP

#include <cstdint>
#include <span>

#include "isa/program.hpp"
#include "util/bytes.hpp"

namespace sdmmon::attack {

struct CmAttackPacket {
  util::Bytes packet;            // the full malicious IPv4 packet
  std::uint32_t shellcode_addr;  // where the injected code lands in rx memory
};

/// Craft a stack-smashing packet against the ipv4-cm app: an IHL=15 header
/// whose CM option (type 0x88) is long enough that option data bytes
/// [28..31] overwrite the saved $ra with the address of the shellcode,
/// which is carried as the packet payload.
CmAttackPacket craft_cm_overflow(std::span<const std::uint32_t> shellcode);

/// Same overflow, but redirect the saved $ra to an arbitrary address
/// (code-reuse / ROP-style attacks that jump into EXISTING code instead of
/// injecting any). `payload` rides along as the packet body.
CmAttackPacket craft_cm_redirect(std::uint32_t target_addr,
                                 std::span<const std::uint8_t> payload = {});

/// Assemble attacker code from assembly source into raw instruction words
/// (position-independent; no data section allowed).
std::vector<std::uint32_t> assemble_shellcode(const std::string& source);

/// Default shellcode: plant a marker value in $v0 and signal packet-done,
/// proving arbitrary code execution without crashing the core.
std::vector<std::uint32_t> marker_shellcode(std::uint32_t marker = 0x41414141);

/// Denial-of-service shellcode: spin forever (caught by the watchdog when
/// the monitor is disabled, by the monitor otherwise).
std::vector<std::uint32_t> spin_shellcode();

/// Exfiltration-style shellcode: commit an attacker-chosen packet to the
/// output port (what a compromised router would do to join a DDoS).
std::vector<std::uint32_t> inject_output_shellcode(std::uint8_t fill,
                                                   std::uint32_t length);

/// A benign CM-option packet (small option, within the buffer) used to
/// show the vulnerable code path works correctly on honest traffic.
util::Bytes benign_cm_packet(std::uint8_t congestion_level);

}  // namespace sdmmon::attack

#endif  // SDMMON_ATTACK_ATTACK_HPP
