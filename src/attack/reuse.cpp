#include "attack/reuse.hpp"

#include <memory>

#include "attack/attack.hpp"
#include "monitor/analysis.hpp"
#include "net/apps.hpp"
#include "np/monitored_core.hpp"

namespace sdmmon::attack {

ReuseScan scan_cm_reuse_targets(std::uint32_t hash_param) {
  isa::Program app = net::build_ipv4_cm();
  monitor::MerkleTreeHash hash(hash_param);
  monitor::MonitoringGraph graph = monitor::extract_graph(app, hash);

  np::MonitoredCore core;
  core.install(app, graph,
               std::make_unique<monitor::MerkleTreeHash>(hash));

  ReuseScan scan;
  for (std::uint32_t index = 0;
       index < static_cast<std::uint32_t>(app.text.size()); ++index) {
    const std::uint32_t target = app.text_base + index * 4;
    CmAttackPacket attack = craft_cm_redirect(target);
    np::PacketResult r = core.process_packet(attack.packet);
    ++scan.targets;
    switch (r.outcome) {
      case np::PacketOutcome::AttackDetected:
        ++scan.detected;
        break;
      case np::PacketOutcome::Trapped:
        ++scan.trapped;
        break;
      case np::PacketOutcome::Forwarded:
      case np::PacketOutcome::Dropped:
        ++scan.silent;
        scan.silent_targets.push_back(index);
        break;
    }
  }
  return scan;
}

}  // namespace sdmmon::attack
