// Fleet homogeneity experiment (security requirement SR2): a population
// of routers running the same binary, attacked by a brute-force adversary
// who crafts a hash-matching injected code sequence against ONE router and
// replays it fleet-wide. Compares:
//   * a homogeneous fleet (identical hash parameter everywhere),
//   * a diversified fleet with the prototype's arithmetic-sum compression
//     (whose parameter-additivity makes collisions transfer -- a weakness
//     this reproduction surfaces), and
//   * a diversified fleet with the S-box compression (diversity works).
#ifndef SDMMON_ATTACK_FLEET_HPP
#define SDMMON_ATTACK_FLEET_HPP

#include <cstdint>

#include "attack/probe.hpp"
#include "monitor/hash.hpp"

namespace sdmmon::attack {

struct FleetConfig {
  std::size_t num_routers = 1000;
  bool diversified = true;  // distinct per-router parameters (SR2) or not
  monitor::Compression compression = monitor::Compression::SboxSum;
  int hash_width = 4;
  int attack_len = 4;        // injected instructions the attack must land
  std::uint64_t seed = 2014;
  std::uint64_t craft_budget = 10'000'000;  // probe limit on the victim
  /// Attacker feedback model; see attack/probe.hpp.
  Oracle oracle = Oracle::PerInstruction;
};

struct FleetResult {
  bool craft_succeeded = false;
  std::uint64_t probes_on_victim = 0;
  std::size_t compromised = 0;     // routers (incl. victim) the attack passes
  double compromised_fraction = 0.0;
};

/// Run the Monte-Carlo fleet experiment. The target hash sequence is taken
/// from a straight-line region of the real ipv4-forward binary.
FleetResult simulate_fleet(const FleetConfig& config);

}  // namespace sdmmon::attack

#endif  // SDMMON_ATTACK_FLEET_HPP
