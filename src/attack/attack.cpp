#include "attack/attack.hpp"

#include <sstream>

#include "isa/assembler.hpp"
#include "net/apps.hpp"
#include "net/packet.hpp"
#include "np/memmap.hpp"

namespace sdmmon::attack {

CmAttackPacket craft_cm_redirect(std::uint32_t target_addr,
                                 std::span<const std::uint8_t> payload) {
  // Header: IHL = 15 (60 bytes) leaves 40 option bytes -- enough for a CM
  // TLV whose data reaches past the 28-byte distance to the saved $ra.
  constexpr std::size_t kOptionData = 38;  // TLV = 40 = all option space

  net::Ipv4Option option;
  option.type = net::kCmOptionType;
  option.data.assign(kOptionData, 0x00);
  // Bytes [28..31] of the copied data overwrite the saved return address
  // (little-endian, as the core stores words).
  option.data[net::kCmRaOffset + 0] = static_cast<std::uint8_t>(target_addr);
  option.data[net::kCmRaOffset + 1] =
      static_cast<std::uint8_t>(target_addr >> 8);
  option.data[net::kCmRaOffset + 2] =
      static_cast<std::uint8_t>(target_addr >> 16);
  option.data[net::kCmRaOffset + 3] =
      static_cast<std::uint8_t>(target_addr >> 24);

  net::Ipv4Packet ip;
  ip.src = net::ip(203, 0, 113, 66);
  ip.dst = net::ip(192, 0, 2, 1);
  ip.ttl = 64;
  ip.protocol = 17;
  ip.options.push_back(std::move(option));
  ip.payload.assign(payload.begin(), payload.end());

  CmAttackPacket result;
  result.packet = ip.to_bytes();
  result.shellcode_addr = target_addr;
  return result;
}

CmAttackPacket craft_cm_overflow(std::span<const std::uint32_t> shellcode) {
  const std::uint32_t shellcode_addr = np::kPktInBase + 60;
  util::Bytes payload(shellcode.size() * 4);
  for (std::size_t i = 0; i < shellcode.size(); ++i) {
    util::store_le32(shellcode[i], payload.data() + 4 * i);
  }
  return craft_cm_redirect(shellcode_addr, payload);
}

std::vector<std::uint32_t> assemble_shellcode(const std::string& source) {
  isa::Program p = isa::assemble(source);
  if (!p.data.empty()) {
    throw isa::IsaError("shellcode must be position-independent text only");
  }
  return p.text;
}

std::vector<std::uint32_t> marker_shellcode(std::uint32_t marker) {
  std::ostringstream os;
  os << "    li $v0, " << marker << "\n"
     << "    li $t2, 0xFFFF0008\n"   // PKT_DONE
     << "    sw $zero, 0($t2)\n";
  return assemble_shellcode(os.str());
}

std::vector<std::uint32_t> spin_shellcode() {
  return assemble_shellcode("spin:\n    b spin\n");
}

std::vector<std::uint32_t> inject_output_shellcode(std::uint8_t fill,
                                                   std::uint32_t length) {
  std::ostringstream os;
  os << "    li $t0, 0x40000\n"
     << "    li $t1, " << static_cast<int>(fill) << "\n"
     << "    li $t2, " << length << "\n"
     << "    move $t3, $zero\n"
     << "floop:\n"
     << "    addu $t4, $t0, $t3\n"
     << "    sb $t1, 0($t4)\n"
     << "    addiu $t3, $t3, 1\n"
     << "    bne $t3, $t2, floop\n"
     << "    li $t5, 0xFFFF0004\n"   // PKT_OUT_COMMIT
     << "    sw $t2, 0($t5)\n";
  return assemble_shellcode(os.str());
}

util::Bytes benign_cm_packet(std::uint8_t congestion_level) {
  net::Ipv4Option option;
  option.type = net::kCmOptionType;
  option.data.assign(8, 0);
  option.data[0] = congestion_level;

  net::Ipv4Packet ip;
  ip.src = net::ip(198, 51, 100, 7);
  ip.dst = net::ip(192, 0, 2, 9);
  ip.ttl = 33;
  ip.protocol = 17;
  ip.options.push_back(std::move(option));
  net::UdpDatagram udp;
  udp.src_port = 5000;
  udp.dst_port = 7;
  udp.payload = util::bytes_of("congestion-managed datagram");
  ip.payload = udp.to_bytes();
  return ip.to_bytes();
}

}  // namespace sdmmon::attack
