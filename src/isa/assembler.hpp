// Two-pass assembler for the MIPS-subset ISA. Supports labels, the usual
// operand syntax (including `offset(base)` addressing), section directives
// (.text/.data), data directives (.word/.half/.byte/.space/.align/.ascii),
// and a small set of pseudo-instructions with fixed expansion sizes:
//   nop            -> sll $zero,$zero,0
//   move rd, rs    -> addu rd, $zero, rs
//   li   rt, imm32 -> lui + ori
//   la   rt, label -> lui + ori
//   b    label     -> beq $zero, $zero, label
//   beqz/bnez rs,l -> beq/bne rs, $zero, l
//   blt/bgt/ble/bge rs, rt, l -> slt $at, ... + bne/beq $at, ...
//
// Lines may carry comments starting with '#' or ';'.
#ifndef SDMMON_ISA_ASSEMBLER_HPP
#define SDMMON_ISA_ASSEMBLER_HPP

#include <string_view>

#include "isa/isa.hpp"
#include "isa/program.hpp"

namespace sdmmon::isa {

class AsmError : public IsaError {
 public:
  AsmError(int line, const std::string& what)
      : IsaError("line " + std::to_string(line) + ": " + what), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct AsmOptions {
  std::uint32_t text_base = 0x0000'0000;
  std::uint32_t data_base = 0x0001'0000;
  std::string name = "program";
};

/// Assemble a full translation unit into a linked Program image.
/// Entry point is the `main` label when present, else text_base.
Program assemble(std::string_view source, const AsmOptions& options = {});

}  // namespace sdmmon::isa

#endif  // SDMMON_ISA_ASSEMBLER_HPP
