#include "isa/isa.hpp"

#include <array>

namespace sdmmon::isa {

namespace {

struct OpInfo {
  Op op;
  std::string_view name;
  OpClass cls;
  int primary;  // top-6-bit opcode field; 0 for R-type
  int funct;    // funct field for R-type, -1 otherwise
};

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    {Op::Sll, "sll", OpClass::Alu, 0, 0},
    {Op::Srl, "srl", OpClass::Alu, 0, 2},
    {Op::Sra, "sra", OpClass::Alu, 0, 3},
    {Op::Sllv, "sllv", OpClass::Alu, 0, 4},
    {Op::Srlv, "srlv", OpClass::Alu, 0, 6},
    {Op::Srav, "srav", OpClass::Alu, 0, 7},
    {Op::Jr, "jr", OpClass::JumpReg, 0, 8},
    {Op::Jalr, "jalr", OpClass::JumpReg, 0, 9},
    {Op::Syscall, "syscall", OpClass::Trap, 0, 12},
    {Op::Break, "break", OpClass::Trap, 0, 13},
    {Op::Mfhi, "mfhi", OpClass::Alu, 0, 16},
    {Op::Mflo, "mflo", OpClass::Alu, 0, 18},
    {Op::Mult, "mult", OpClass::Alu, 0, 24},
    {Op::Multu, "multu", OpClass::Alu, 0, 25},
    {Op::Div, "div", OpClass::Alu, 0, 26},
    {Op::Divu, "divu", OpClass::Alu, 0, 27},
    {Op::Add, "add", OpClass::Alu, 0, 32},
    {Op::Addu, "addu", OpClass::Alu, 0, 33},
    {Op::Sub, "sub", OpClass::Alu, 0, 34},
    {Op::Subu, "subu", OpClass::Alu, 0, 35},
    {Op::And, "and", OpClass::Alu, 0, 36},
    {Op::Or, "or", OpClass::Alu, 0, 37},
    {Op::Xor, "xor", OpClass::Alu, 0, 38},
    {Op::Nor, "nor", OpClass::Alu, 0, 39},
    {Op::Slt, "slt", OpClass::Alu, 0, 42},
    {Op::Sltu, "sltu", OpClass::Alu, 0, 43},
    {Op::Beq, "beq", OpClass::Branch, 4, -1},
    {Op::Bne, "bne", OpClass::Branch, 5, -1},
    {Op::Blez, "blez", OpClass::Branch, 6, -1},
    {Op::Bgtz, "bgtz", OpClass::Branch, 7, -1},
    {Op::Addi, "addi", OpClass::Alu, 8, -1},
    {Op::Addiu, "addiu", OpClass::Alu, 9, -1},
    {Op::Slti, "slti", OpClass::Alu, 10, -1},
    {Op::Sltiu, "sltiu", OpClass::Alu, 11, -1},
    {Op::Andi, "andi", OpClass::Alu, 12, -1},
    {Op::Ori, "ori", OpClass::Alu, 13, -1},
    {Op::Xori, "xori", OpClass::Alu, 14, -1},
    {Op::Lui, "lui", OpClass::Alu, 15, -1},
    {Op::Lb, "lb", OpClass::Load, 32, -1},
    {Op::Lh, "lh", OpClass::Load, 33, -1},
    {Op::Lw, "lw", OpClass::Load, 35, -1},
    {Op::Lbu, "lbu", OpClass::Load, 36, -1},
    {Op::Lhu, "lhu", OpClass::Load, 37, -1},
    {Op::Sb, "sb", OpClass::Store, 40, -1},
    {Op::Sh, "sh", OpClass::Store, 41, -1},
    {Op::Sw, "sw", OpClass::Store, 43, -1},
    {Op::J, "j", OpClass::Jump, 2, -1},
    {Op::Jal, "jal", OpClass::JumpLink, 3, -1},
}};

const OpInfo& info(Op op) { return kOpTable[static_cast<std::size_t>(op)]; }

constexpr std::array<std::string_view, 32> kRegNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

}  // namespace

OpClass op_class(Op op) { return info(op).cls; }
std::string_view op_name(Op op) { return info(op).name; }

std::string_view reg_name(int reg) {
  if (reg < 0 || reg > 31) throw IsaError("register out of range");
  return kRegNames[static_cast<std::size_t>(reg)];
}

int parse_reg(std::string_view token) {
  if (token.empty() || token[0] != '$') {
    throw IsaError("register must start with '$': " + std::string(token));
  }
  std::string_view body = token.substr(1);
  // Numeric form $0..$31.
  if (!body.empty() && body[0] >= '0' && body[0] <= '9') {
    int value = 0;
    for (char c : body) {
      if (c < '0' || c > '9') throw IsaError("bad register: " + std::string(token));
      value = value * 10 + (c - '0');
    }
    if (value > 31) throw IsaError("register out of range: " + std::string(token));
    return value;
  }
  for (int i = 0; i < 32; ++i) {
    if (kRegNames[static_cast<std::size_t>(i)] == body) return i;
  }
  throw IsaError("unknown register: " + std::string(token));
}

std::uint32_t encode(const Instr& instr) {
  const OpInfo& op_info = info(instr.op);
  switch (op_info.cls) {
    case OpClass::Jump:
    case OpClass::JumpLink:
      return static_cast<std::uint32_t>(op_info.primary) << 26 |
             (instr.target & 0x03FFFFFFu);
    default:
      break;
  }
  if (op_info.primary == 0) {
    // R-type.
    return static_cast<std::uint32_t>(instr.rs & 31) << 21 |
           static_cast<std::uint32_t>(instr.rt & 31) << 16 |
           static_cast<std::uint32_t>(instr.rd & 31) << 11 |
           static_cast<std::uint32_t>(instr.shamt & 31) << 6 |
           static_cast<std::uint32_t>(op_info.funct);
  }
  // I-type.
  return static_cast<std::uint32_t>(op_info.primary) << 26 |
         static_cast<std::uint32_t>(instr.rs & 31) << 21 |
         static_cast<std::uint32_t>(instr.rt & 31) << 16 |
         (static_cast<std::uint32_t>(instr.imm) & 0xFFFFu);
}

namespace {

// Canonical-form check: fields an instruction does not use must be zero.
// A lenient decoder would accept e.g. `srl` with junk in the rs bits --
// an encoding no assembler emits, whose disassembly is lossy (the
// syntax has no slot for the dead field) and which would alias a valid
// instruction under the monitor's per-word hash. Rejecting it keeps
// decode exactly the inverse of encode over encode's image, so every
// decodable word round-trips through encode AND disassemble/assemble.
bool canonical_fields(const Instr& in) {
  switch (in.op) {
    case Op::Sll: case Op::Srl: case Op::Sra:
      return in.rs == 0;
    case Op::Sllv: case Op::Srlv: case Op::Srav:
      return in.shamt == 0;
    case Op::Jr:
      return in.rt == 0 && in.rd == 0 && in.shamt == 0;
    case Op::Jalr:
      return in.rt == 0 && in.shamt == 0;
    case Op::Syscall: case Op::Break:
      return in.rs == 0 && in.rt == 0 && in.rd == 0 && in.shamt == 0;
    case Op::Mfhi: case Op::Mflo:
      return in.rs == 0 && in.rt == 0 && in.shamt == 0;
    case Op::Mult: case Op::Multu: case Op::Div: case Op::Divu:
      return in.rd == 0 && in.shamt == 0;
    case Op::Lui:
      return in.rs == 0;
    case Op::Blez: case Op::Bgtz:
      return in.rt == 0;
    default:
      // Three-register ALU forms use rs/rt/rd; shamt must be clear.
      // I-type and J-type forms use every bit of their formats.
      return info(in.op).primary != 0 || in.shamt == 0;
  }
}

}  // namespace

std::optional<Instr> try_decode(std::uint32_t word) {
  const int primary = static_cast<int>(word >> 26);
  Instr out;
  if (primary == 0) {
    const int funct = static_cast<int>(word & 0x3F);
    for (const auto& entry : kOpTable) {
      if (entry.primary == 0 && entry.funct == funct) {
        out.op = entry.op;
        out.rs = static_cast<std::uint8_t>((word >> 21) & 31);
        out.rt = static_cast<std::uint8_t>((word >> 16) & 31);
        out.rd = static_cast<std::uint8_t>((word >> 11) & 31);
        out.shamt = static_cast<std::uint8_t>((word >> 6) & 31);
        if (!canonical_fields(out)) return std::nullopt;
        return out;
      }
    }
    return std::nullopt;
  }
  for (const auto& entry : kOpTable) {
    if (entry.primary != primary || entry.funct != -1) continue;
    out.op = entry.op;
    if (entry.cls == OpClass::Jump || entry.cls == OpClass::JumpLink) {
      out.target = word & 0x03FFFFFFu;
      return out;
    }
    out.rs = static_cast<std::uint8_t>((word >> 21) & 31);
    out.rt = static_cast<std::uint8_t>((word >> 16) & 31);
    out.imm = static_cast<std::int32_t>(static_cast<std::int16_t>(word & 0xFFFF));
    if (!canonical_fields(out)) return std::nullopt;
    return out;
  }
  return std::nullopt;
}

Instr decode(std::uint32_t word) {
  auto decoded = try_decode(word);
  if (!decoded) throw IsaError("cannot decode instruction word");
  return *decoded;
}

Instr make_rtype(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs = static_cast<std::uint8_t>(rs);
  i.rt = static_cast<std::uint8_t>(rt);
  return i;
}

Instr make_shift(Op op, int rd, int rt, int shamt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rt = static_cast<std::uint8_t>(rt);
  i.shamt = static_cast<std::uint8_t>(shamt & 31);
  return i;
}

Instr make_itype(Op op, int rt, int rs, std::int32_t imm) {
  Instr i;
  i.op = op;
  i.rt = static_cast<std::uint8_t>(rt);
  i.rs = static_cast<std::uint8_t>(rs);
  i.imm = imm;
  return i;
}

Instr make_branch(Op op, int rs, int rt, std::int32_t offset_words) {
  Instr i;
  i.op = op;
  i.rs = static_cast<std::uint8_t>(rs);
  i.rt = static_cast<std::uint8_t>(rt);
  i.imm = offset_words;
  return i;
}

Instr make_jump(Op op, std::uint32_t target_word_index) {
  Instr i;
  i.op = op;
  i.target = target_word_index & 0x03FFFFFFu;
  return i;
}

Instr make_nop() { return make_shift(Op::Sll, 0, 0, 0); }

}  // namespace sdmmon::isa
