// Linked program image: text (instruction words), initialized data, and a
// symbol table. This is the "processing binary" the network operator ships
// to the NP core and from which the monitoring graph is extracted.
#ifndef SDMMON_ISA_PROGRAM_HPP
#define SDMMON_ISA_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sdmmon::isa {

struct Program {
  std::string name;
  std::uint32_t text_base = 0;         // byte address of text[0]
  std::vector<std::uint32_t> text;     // instruction words
  std::uint32_t data_base = 0;         // byte address of data[0]
  std::vector<std::uint8_t> data;      // initialized data image
  std::uint32_t entry = 0;             // byte address of the entry point
  std::map<std::string, std::uint32_t> symbols;  // label -> byte address

  std::size_t text_bytes() const { return text.size() * 4; }

  /// Byte address of the symbol; throws if undefined.
  std::uint32_t symbol(const std::string& label) const;

  /// Wire format used inside the SDMMon install package.
  util::Bytes serialize() const;
  static Program deserialize(std::span<const std::uint8_t> bytes);

  bool operator==(const Program& rhs) const = default;
};

}  // namespace sdmmon::isa

#endif  // SDMMON_ISA_PROGRAM_HPP
