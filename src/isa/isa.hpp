// MIPS-I-subset instruction set matching the paper's PLASMA network
// processor core: 32-bit fixed-width instructions, 32 general registers,
// R/I/J formats. The hardware monitor hashes the raw 32-bit instruction
// word, so encode/decode here is bit-exact MIPS encoding.
//
// Simplification vs. real MIPS: the simulator has no branch delay slots
// (branches take effect immediately). This only changes pipeline timing,
// not the monitoring contract (the stream of executed instruction words).
#ifndef SDMMON_ISA_ISA_HPP
#define SDMMON_ISA_ISA_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sdmmon::isa {

class IsaError : public std::runtime_error {
 public:
  explicit IsaError(const std::string& what) : std::runtime_error(what) {}
};

/// Mnemonic-level opcode covering every instruction the core executes.
enum class Op : std::uint8_t {
  // R-type (opcode 0, distinguished by funct)
  Sll, Srl, Sra, Sllv, Srlv, Srav,
  Jr, Jalr,
  Syscall, Break,
  Mfhi, Mflo,
  Mult, Multu, Div, Divu,
  Add, Addu, Sub, Subu,
  And, Or, Xor, Nor,
  Slt, Sltu,
  // I-type
  Beq, Bne, Blez, Bgtz,
  Addi, Addiu, Slti, Sltiu,
  Andi, Ori, Xori, Lui,
  Lb, Lh, Lw, Lbu, Lhu,
  Sb, Sh, Sw,
  // J-type
  J, Jal,
};

constexpr int kNumOps = static_cast<int>(Op::Jal) + 1;

/// Instruction classes relevant to control-flow analysis.
enum class OpClass {
  Alu,          // falls through to pc+4
  Load,
  Store,
  Branch,       // conditional: successors {target, pc+4}
  Jump,         // unconditional direct: successor {target}
  JumpLink,     // jal: successor {target}, writes ra
  JumpReg,      // jr/jalr: indirect, successors from offline analysis
  Trap,         // syscall/break
};

OpClass op_class(Op op);
std::string_view op_name(Op op);

/// Decoded instruction. Fields are valid per format:
///  R-type: rs, rt, rd, shamt;  I-type: rs, rt, imm;  J-type: target.
struct Instr {
  Op op = Op::Sll;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t rd = 0;
  std::uint8_t shamt = 0;
  std::int32_t imm = 0;        // sign-extended 16-bit immediate (I-type)
  std::uint32_t target = 0;    // 26-bit word index (J-type)

  bool operator==(const Instr& rhs) const = default;
};

/// Encode to the raw 32-bit word the monitor hashes.
std::uint32_t encode(const Instr& instr);

/// Decode a raw word; throws IsaError on an unknown opcode/funct.
Instr decode(std::uint32_t word);

/// Decode without throwing; nullopt on unknown encodings.
std::optional<Instr> try_decode(std::uint32_t word);

/// Register ABI names ($zero, $at, $v0, ... $ra).
std::string_view reg_name(int reg);

/// Parse "$t0", "$5", "$zero" etc.; throws IsaError on bad names.
int parse_reg(std::string_view token);

// Instruction-word builders used by app code and tests.
Instr make_rtype(Op op, int rd, int rs, int rt);
Instr make_shift(Op op, int rd, int rt, int shamt);
Instr make_itype(Op op, int rt, int rs, std::int32_t imm);
Instr make_branch(Op op, int rs, int rt, std::int32_t offset_words);
Instr make_jump(Op op, std::uint32_t target_word_index);
Instr make_nop();

}  // namespace sdmmon::isa

#endif  // SDMMON_ISA_ISA_HPP
