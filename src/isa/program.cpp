#include "isa/program.hpp"

#include "isa/isa.hpp"

namespace sdmmon::isa {

std::uint32_t Program::symbol(const std::string& label) const {
  auto it = symbols.find(label);
  if (it == symbols.end()) throw IsaError("undefined symbol: " + label);
  return it->second;
}

util::Bytes Program::serialize() const {
  util::ByteWriter w;
  w.str(name);
  w.u32(text_base);
  w.u32(static_cast<std::uint32_t>(text.size()));
  for (std::uint32_t word : text) w.u32(word);
  w.u32(data_base);
  w.blob(data);
  w.u32(entry);
  w.u32(static_cast<std::uint32_t>(symbols.size()));
  for (const auto& [label, addr] : symbols) {
    w.str(label);
    w.u32(addr);
  }
  return w.take();
}

Program Program::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  Program p;
  p.name = r.str();
  p.text_base = r.u32();
  const std::uint32_t n_text = r.u32();
  if (n_text > r.remaining() / 4) {
    throw util::DecodeError("program image: text size exceeds input");
  }
  p.text.reserve(n_text);
  for (std::uint32_t i = 0; i < n_text; ++i) p.text.push_back(r.u32());
  p.data_base = r.u32();
  p.data = r.blob();
  p.entry = r.u32();
  const std::uint32_t n_sym = r.u32();
  for (std::uint32_t i = 0; i < n_sym; ++i) {
    std::string label = r.str();
    std::uint32_t addr = r.u32();
    p.symbols.emplace(std::move(label), addr);
  }
  return p;
}

}  // namespace sdmmon::isa
