#include "isa/disassembler.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace sdmmon::isa {

namespace {

std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string reg(int r) { return "$" + std::string(reg_name(r)); }

}  // namespace

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
  auto decoded = try_decode(word);
  if (!decoded) return ".word " + hex32(word);
  const Instr& i = *decoded;
  std::ostringstream os;
  os << op_name(i.op);

  switch (i.op) {
    case Op::Sll: case Op::Srl: case Op::Sra:
      if (word == 0) return "nop";
      os << ' ' << reg(i.rd) << ", " << reg(i.rt) << ", " << int(i.shamt);
      break;
    case Op::Sllv: case Op::Srlv: case Op::Srav:
      os << ' ' << reg(i.rd) << ", " << reg(i.rt) << ", " << reg(i.rs);
      break;
    case Op::Add: case Op::Addu: case Op::Sub: case Op::Subu:
    case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
    case Op::Slt: case Op::Sltu:
      os << ' ' << reg(i.rd) << ", " << reg(i.rs) << ", " << reg(i.rt);
      break;
    case Op::Mult: case Op::Multu: case Op::Div: case Op::Divu:
      os << ' ' << reg(i.rs) << ", " << reg(i.rt);
      break;
    case Op::Mfhi: case Op::Mflo:
      os << ' ' << reg(i.rd);
      break;
    case Op::Jr:
      os << ' ' << reg(i.rs);
      break;
    case Op::Jalr:
      os << ' ' << reg(i.rd) << ", " << reg(i.rs);
      break;
    case Op::Syscall: case Op::Break:
      break;
    case Op::Addi: case Op::Addiu: case Op::Slti: case Op::Sltiu:
    case Op::Andi: case Op::Ori: case Op::Xori:
      os << ' ' << reg(i.rt) << ", " << reg(i.rs) << ", " << i.imm;
      break;
    case Op::Lui:
      os << ' ' << reg(i.rt) << ", " << (i.imm & 0xFFFF);
      break;
    case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
    case Op::Sb: case Op::Sh: case Op::Sw:
      os << ' ' << reg(i.rt) << ", " << i.imm << '(' << reg(i.rs) << ')';
      break;
    case Op::Beq: case Op::Bne:
      os << ' ' << reg(i.rs) << ", " << reg(i.rt) << ", "
         << hex32(pc + 4 + static_cast<std::uint32_t>(i.imm) * 4);
      break;
    case Op::Blez: case Op::Bgtz:
      os << ' ' << reg(i.rs) << ", "
         << hex32(pc + 4 + static_cast<std::uint32_t>(i.imm) * 4);
      break;
    case Op::J: case Op::Jal:
      os << ' ' << hex32(i.target * 4);
      break;
  }
  return os.str();
}

std::string disassemble_program(const Program& program) {
  // Invert the symbol table so labels print above their addresses.
  std::multimap<std::uint32_t, std::string> labels;
  for (const auto& [name, addr] : program.symbols) labels.emplace(addr, name);

  std::ostringstream os;
  for (std::size_t idx = 0; idx < program.text.size(); ++idx) {
    std::uint32_t pc = program.text_base + static_cast<std::uint32_t>(idx) * 4;
    auto [lo, hi] = labels.equal_range(pc);
    for (auto it = lo; it != hi; ++it) os << it->second << ":\n";
    os << "  " << hex32(pc) << ":  " << disassemble(program.text[idx], pc)
       << '\n';
  }
  return os.str();
}

}  // namespace sdmmon::isa
