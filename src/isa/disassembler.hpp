// Disassembler: renders raw instruction words back to assembler syntax.
// Used by the examples and by the offline analyzer's debug dumps.
#ifndef SDMMON_ISA_DISASSEMBLER_HPP
#define SDMMON_ISA_DISASSEMBLER_HPP

#include <string>

#include "isa/isa.hpp"
#include "isa/program.hpp"

namespace sdmmon::isa {

/// Render one instruction. `pc` is the byte address of the instruction
/// (needed to print absolute branch targets). Unknown encodings render as
/// ".word 0x...".
std::string disassemble(std::uint32_t word, std::uint32_t pc);

/// Full program listing with addresses, one instruction per line.
std::string disassemble_program(const Program& program);

}  // namespace sdmmon::isa

#endif  // SDMMON_ISA_DISASSEMBLER_HPP
