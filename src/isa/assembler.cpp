#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

#include "isa/isa.hpp"

namespace sdmmon::isa {

namespace {

enum class Section { Text, Data };

struct Statement {
  int line = 0;
  Section section = Section::Text;
  std::string mnemonic;                // lowercase; empty for pure labels
  std::vector<std::string> operands;   // comma-separated tokens
  std::uint32_t address = 0;           // assigned in pass 1 (byte address)
  std::uint32_t size = 0;              // bytes occupied
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Split operand list on commas, but not inside a quoted string.
std::vector<std::string> split_operands(std::string_view s, int line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quote = false;
  for (char c : s) {
    if (c == '"') in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      auto token = strip(cur);
      if (token.empty()) throw AsmError(line, "empty operand");
      out.emplace_back(token);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quote) throw AsmError(line, "unterminated string literal");
  auto token = strip(cur);
  if (!token.empty()) out.emplace_back(token);
  return out;
}

class Assembler {
 public:
  Assembler(std::string_view source, const AsmOptions& options)
      : options_(options) {
    parse(source);
    layout();
    emit();
  }

  Program take() {
    Program p;
    p.name = options_.name;
    p.text_base = options_.text_base;
    p.text = std::move(text_);
    p.data_base = options_.data_base;
    p.data = std::move(data_);
    p.symbols = std::move(symbols_);
    auto main_it = p.symbols.find("main");
    p.entry = main_it != p.symbols.end() ? main_it->second : p.text_base;
    return p;
  }

 private:
  // ---- pass 0: parse lines into statements and labels ----
  void parse(std::string_view source) {
    int line_no = 0;
    Section section = Section::Text;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      std::size_t eol = source.find('\n', pos);
      std::string_view raw = source.substr(
          pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;

      // Strip comments ('#' or ';'), except inside quotes.
      std::string no_comment;
      bool in_quote = false;
      for (char c : raw) {
        if (c == '"') in_quote = !in_quote;
        if ((c == '#' || c == ';') && !in_quote) break;
        no_comment.push_back(c);
      }
      std::string_view text = strip(no_comment);
      if (text.empty()) continue;

      // Peel off leading labels ("name:").
      while (true) {
        std::size_t i = 0;
        while (i < text.size() && is_ident_char(text[i])) ++i;
        if (i > 0 && i < text.size() && text[i] == ':' && text[0] != '.') {
          std::string label(text.substr(0, i));
          pending_labels_.push_back({line_no, section, std::move(label)});
          text = strip(text.substr(i + 1));
          if (text.empty()) break;
        } else {
          break;
        }
      }
      if (text.empty()) continue;

      // Mnemonic is the first whitespace-delimited token.
      std::size_t sp = 0;
      while (sp < text.size() && !std::isspace(static_cast<unsigned char>(text[sp]))) {
        ++sp;
      }
      Statement stmt;
      stmt.line = line_no;
      stmt.mnemonic = lower(text.substr(0, sp));
      stmt.operands = split_operands(strip(text.substr(sp)), line_no);

      if (stmt.mnemonic == ".text") {
        section = Section::Text;
        attach_labels(section);
        continue;
      }
      if (stmt.mnemonic == ".data") {
        section = Section::Data;
        attach_labels(section);
        continue;
      }
      stmt.section = section;
      attach_labels(section);
      label_owner_[statements_.size()] = taken_labels_;
      taken_labels_.clear();
      statements_.push_back(std::move(stmt));
    }
  }

  struct PendingLabel {
    int line;
    Section section;
    std::string name;
  };

  void attach_labels(Section section) {
    for (auto& pl : pending_labels_) {
      pl.section = section;
      taken_labels_.push_back(pl);
    }
    pending_labels_.clear();
  }

  // ---- pass 1: assign addresses ----
  void layout() {
    std::uint32_t text_addr = options_.text_base;
    std::uint32_t data_addr = options_.data_base;
    for (std::size_t idx = 0; idx < statements_.size(); ++idx) {
      Statement& stmt = statements_[idx];
      std::uint32_t& addr =
          stmt.section == Section::Text ? text_addr : data_addr;
      // .align may move the address before the labels bind.
      if (stmt.mnemonic == ".align") {
        std::uint32_t align = 1u << parse_int(stmt, 0);
        addr = (addr + align - 1) & ~(align - 1);
        stmt.address = addr;
        stmt.size = 0;
        bind_labels(idx, addr);
        continue;
      }
      bind_labels(idx, addr);
      stmt.address = addr;
      stmt.size = statement_size(stmt);
      addr += stmt.size;
    }
    // Labels at end of file with no following statement.
    for (const auto& pl : pending_labels_) {
      define_label(pl, pl.section == Section::Text ? text_addr : data_addr);
    }
    for (const auto& pl : taken_labels_) {
      define_label(pl, pl.section == Section::Text ? text_addr : data_addr);
    }
  }

  void bind_labels(std::size_t stmt_idx, std::uint32_t addr) {
    auto it = label_owner_.find(stmt_idx);
    if (it == label_owner_.end()) return;
    for (const auto& pl : it->second) define_label(pl, addr);
  }

  void define_label(const PendingLabel& pl, std::uint32_t addr) {
    if (!symbols_.emplace(pl.name, addr).second) {
      throw AsmError(pl.line, "duplicate label: " + pl.name);
    }
  }

  std::uint32_t statement_size(const Statement& stmt) const {
    const std::string& m = stmt.mnemonic;
    if (m[0] == '.') {
      if (m == ".word") return 4 * static_cast<std::uint32_t>(stmt.operands.size());
      if (m == ".half") return 2 * static_cast<std::uint32_t>(stmt.operands.size());
      if (m == ".byte") return static_cast<std::uint32_t>(stmt.operands.size());
      if (m == ".space") return parse_int(stmt, 0);
      if (m == ".ascii" || m == ".asciiz") {
        std::uint32_t n = 0;
        for (const auto& op : stmt.operands) n += string_literal_size(stmt, op);
        if (m == ".asciiz") n += 1;
        return n;
      }
      throw AsmError(stmt.line, "unknown directive: " + m);
    }
    // Pseudo-instruction expansion sizes are fixed so pass 1 is exact.
    if (m == "li" || m == "la") return 8;
    if (m == "blt" || m == "bgt" || m == "ble" || m == "bge") return 8;
    return 4;
  }

  // ---- pass 2: emit words/bytes ----
  void emit() {
    for (const Statement& stmt : statements_) {
      if (stmt.section == Section::Data || stmt.mnemonic[0] == '.') {
        emit_directive(stmt);
      } else {
        emit_instruction(stmt);
      }
    }
  }

  void emit_directive(const Statement& stmt) {
    const std::string& m = stmt.mnemonic;
    if (stmt.section == Section::Text && m[0] != '.') {
      throw AsmError(stmt.line, "instructions must be in .text");
    }
    if (m[0] != '.') {
      throw AsmError(stmt.line, "instruction in .data section: " + m);
    }
    auto& sink_is_data = stmt.section;
    auto push_byte = [&](std::uint8_t b) {
      if (sink_is_data == Section::Data) {
        data_.push_back(b);
      } else {
        text_byte_buffer_.push_back(b);
        if (text_byte_buffer_.size() == 4) {
          // Text directives are little-endian words.
          text_.push_back(util::load_le32(text_byte_buffer_.data()));
          text_byte_buffer_.clear();
        }
      }
    };
    if (m == ".align") {
      std::uint32_t align = 1u << parse_int(stmt, 0);
      std::uint32_t addr = current_address(stmt.section);
      while (addr & (align - 1)) {
        push_byte(0);
        ++addr;
      }
      return;
    }
    if (m == ".space") {
      std::uint32_t n = parse_int(stmt, 0);
      for (std::uint32_t i = 0; i < n; ++i) push_byte(0);
      return;
    }
    if (m == ".word") {
      for (std::size_t i = 0; i < stmt.operands.size(); ++i) {
        std::uint32_t v = resolve_value(stmt, stmt.operands[i]);
        if (stmt.section == Section::Text) {
          text_.push_back(v);
        } else {
          std::uint8_t tmp[4];
          util::store_le32(v, tmp);
          for (auto b : tmp) push_byte(b);
        }
      }
      return;
    }
    if (m == ".half") {
      for (const auto& op : stmt.operands) {
        std::uint32_t v = resolve_value(stmt, op);
        push_byte(static_cast<std::uint8_t>(v));
        push_byte(static_cast<std::uint8_t>(v >> 8));
      }
      return;
    }
    if (m == ".byte") {
      for (const auto& op : stmt.operands) {
        push_byte(static_cast<std::uint8_t>(resolve_value(stmt, op)));
      }
      return;
    }
    if (m == ".ascii" || m == ".asciiz") {
      for (const auto& op : stmt.operands) {
        append_string_literal(stmt, op, push_byte);
      }
      if (m == ".asciiz") push_byte(0);
      return;
    }
    throw AsmError(stmt.line, "unknown directive: " + m);
  }

  std::uint32_t current_address(Section section) const {
    if (section == Section::Data) {
      return options_.data_base + static_cast<std::uint32_t>(data_.size());
    }
    return options_.text_base + static_cast<std::uint32_t>(
                                    text_.size() * 4 + text_byte_buffer_.size());
  }

  static std::uint32_t string_literal_size(const Statement& stmt,
                                           std::string_view op) {
    if (op.size() < 2 || op.front() != '"' || op.back() != '"') {
      throw AsmError(stmt.line, "expected string literal");
    }
    std::uint32_t n = 0;
    for (std::size_t i = 1; i + 1 < op.size(); ++i) {
      if (op[i] == '\\') ++i;
      ++n;
    }
    return n;
  }

  template <typename PushByte>
  void append_string_literal(const Statement& stmt, std::string_view op,
                             PushByte&& push_byte) {
    if (op.size() < 2 || op.front() != '"' || op.back() != '"') {
      throw AsmError(stmt.line, "expected string literal");
    }
    for (std::size_t i = 1; i + 1 < op.size(); ++i) {
      char c = op[i];
      if (c == '\\' && i + 2 < op.size()) {
        ++i;
        switch (op[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: throw AsmError(stmt.line, "bad escape in string");
        }
      }
      push_byte(static_cast<std::uint8_t>(c));
    }
  }

  void emit_instruction(const Statement& stmt) {
    const std::string& m = stmt.mnemonic;
    const auto& ops = stmt.operands;
    auto expect = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AsmError(stmt.line, m + " expects " + std::to_string(n) +
                                      " operands, got " +
                                      std::to_string(ops.size()));
      }
    };
    auto reg = [&](std::size_t i) {
      try {
        return parse_reg(ops[i]);
      } catch (const IsaError& e) {
        throw AsmError(stmt.line, e.what());
      }
    };
    auto push = [&](const Instr& instr) { text_.push_back(encode(instr)); };

    // Pseudo-instructions first.
    if (m == "nop") {
      expect(0);
      push(make_nop());
      return;
    }
    if (m == "move") {
      expect(2);
      push(make_rtype(Op::Addu, reg(0), 0, reg(1)));
      return;
    }
    if (m == "li" || m == "la") {
      expect(2);
      std::uint32_t value = resolve_value(stmt, ops[1]);
      push(make_itype(Op::Lui, reg(0), 0, static_cast<std::int32_t>(value >> 16)));
      push(make_itype(Op::Ori, reg(0), reg(0),
                      static_cast<std::int32_t>(value & 0xFFFF)));
      return;
    }
    if (m == "b") {
      expect(1);
      push(make_branch(Op::Beq, 0, 0, branch_offset(stmt, ops[0])));
      return;
    }
    if (m == "beqz" || m == "bnez") {
      expect(2);
      Op op = m == "beqz" ? Op::Beq : Op::Bne;
      push(make_branch(op, reg(0), 0, branch_offset(stmt, ops[1], 0)));
      return;
    }
    if (m == "blt" || m == "bgt" || m == "ble" || m == "bge") {
      expect(3);
      int rs = reg(0), rt = reg(1);
      // blt: slt $at, rs, rt; bne $at, $0    bgt: slt $at, rt, rs; bne
      // ble: slt $at, rt, rs; beq $at, $0    bge: slt $at, rs, rt; beq
      bool swap = (m == "bgt" || m == "ble");
      Op branch = (m == "blt" || m == "bgt") ? Op::Bne : Op::Beq;
      push(make_rtype(Op::Slt, 1, swap ? rt : rs, swap ? rs : rt));
      push(make_branch(branch, 1, 0, branch_offset(stmt, ops[2], 1)));
      return;
    }

    // Real instructions.
    std::optional<Op> found;
    for (int i = 0; i < kNumOps; ++i) {
      Op candidate = static_cast<Op>(i);
      if (op_name(candidate) == m) {
        found = candidate;
        break;
      }
    }
    if (!found) throw AsmError(stmt.line, "unknown mnemonic: " + m);
    Op op = *found;

    switch (op) {
      case Op::Sll: case Op::Srl: case Op::Sra:
        expect(3);
        push(make_shift(op, reg(0), reg(1),
                        static_cast<int>(resolve_value(stmt, ops[2]))));
        return;
      case Op::Sllv: case Op::Srlv: case Op::Srav:
        // MIPS syntax: sllv rd, rt, rs.
        expect(3);
        push(make_rtype(op, reg(0), reg(2), reg(1)));
        return;
      case Op::Add: case Op::Addu: case Op::Sub: case Op::Subu:
      case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
      case Op::Slt: case Op::Sltu:
        expect(3);
        push(make_rtype(op, reg(0), reg(1), reg(2)));
        return;
      case Op::Mult: case Op::Multu: case Op::Div: case Op::Divu: {
        expect(2);
        Instr i;
        i.op = op;
        i.rs = static_cast<std::uint8_t>(reg(0));
        i.rt = static_cast<std::uint8_t>(reg(1));
        push(i);
        return;
      }
      case Op::Mfhi: case Op::Mflo: {
        expect(1);
        Instr i;
        i.op = op;
        i.rd = static_cast<std::uint8_t>(reg(0));
        push(i);
        return;
      }
      case Op::Jr: {
        expect(1);
        Instr i;
        i.op = op;
        i.rs = static_cast<std::uint8_t>(reg(0));
        push(i);
        return;
      }
      case Op::Jalr: {
        Instr i;
        i.op = op;
        if (ops.size() == 1) {
          i.rd = 31;
          i.rs = static_cast<std::uint8_t>(reg(0));
        } else {
          expect(2);
          i.rd = static_cast<std::uint8_t>(reg(0));
          i.rs = static_cast<std::uint8_t>(reg(1));
        }
        push(i);
        return;
      }
      case Op::Syscall: case Op::Break: {
        expect(0);
        Instr i;
        i.op = op;
        push(i);
        return;
      }
      case Op::Addi: case Op::Addiu: case Op::Slti: case Op::Sltiu:
      case Op::Andi: case Op::Ori: case Op::Xori:
        expect(3);
        push(make_itype(op, reg(0), reg(1),
                        static_cast<std::int32_t>(resolve_value(stmt, ops[2]))));
        return;
      case Op::Lui:
        expect(2);
        push(make_itype(op, reg(0), 0,
                        static_cast<std::int32_t>(resolve_value(stmt, ops[1]))));
        return;
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
      case Op::Sb: case Op::Sh: case Op::Sw: {
        expect(2);
        auto [offset, base] = parse_mem_operand(stmt, ops[1]);
        push(make_itype(op, reg(0), base, offset));
        return;
      }
      case Op::Beq: case Op::Bne:
        expect(3);
        push(make_branch(op, reg(0), reg(1), branch_offset(stmt, ops[2])));
        return;
      case Op::Blez: case Op::Bgtz:
        expect(2);
        push(make_branch(op, reg(0), 0, branch_offset(stmt, ops[1])));
        return;
      case Op::J: case Op::Jal: {
        expect(1);
        std::uint32_t addr = resolve_value(stmt, ops[0]);
        if (addr % 4 != 0) throw AsmError(stmt.line, "jump target unaligned");
        push(make_jump(op, addr / 4));
        return;
      }
      default:
        throw AsmError(stmt.line, "unhandled mnemonic: " + m);
    }
  }

  // Branch offset in words relative to pc+4 of the branch instruction.
  // `extra_words` accounts for expansion prefixes already emitted.
  std::int32_t branch_offset(const Statement& stmt, std::string_view target,
                             int extra_words = 0) {
    std::uint32_t dest = resolve_value(stmt, target);
    std::uint32_t branch_pc = stmt.address + 4u * static_cast<std::uint32_t>(extra_words);
    std::int64_t delta =
        (static_cast<std::int64_t>(dest) - (static_cast<std::int64_t>(branch_pc) + 4)) / 4;
    if (delta < -32768 || delta > 32767) {
      throw AsmError(stmt.line, "branch target out of range");
    }
    return static_cast<std::int32_t>(delta);
  }

  std::pair<std::int32_t, int> parse_mem_operand(const Statement& stmt,
                                                 std::string_view op) {
    std::size_t open = op.find('(');
    std::size_t close = op.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      throw AsmError(stmt.line, "expected offset(base): " + std::string(op));
    }
    std::string_view offset_str = strip(op.substr(0, open));
    std::string_view base_str = strip(op.substr(open + 1, close - open - 1));
    std::int32_t offset =
        offset_str.empty()
            ? 0
            : static_cast<std::int32_t>(resolve_value(stmt, offset_str));
    int base;
    try {
      base = parse_reg(base_str);
    } catch (const IsaError& e) {
      throw AsmError(stmt.line, e.what());
    }
    return {offset, base};
  }

  std::uint32_t parse_int(const Statement& stmt, std::size_t operand) const {
    if (operand >= stmt.operands.size()) {
      throw AsmError(stmt.line, "missing operand");
    }
    return parse_number(stmt, stmt.operands[operand]);
  }

  static std::uint32_t parse_number(const Statement& stmt,
                                    std::string_view s) {
    bool negative = false;
    if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
      negative = s[0] == '-';
      s.remove_prefix(1);
    }
    std::uint32_t value = 0;
    std::from_chars_result res{};
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
      res = std::from_chars(s.data() + 2, s.data() + s.size(), value, 16);
    } else {
      res = std::from_chars(s.data(), s.data() + s.size(), value, 10);
    }
    if (res.ec != std::errc{} || res.ptr != s.data() + s.size()) {
      throw AsmError(stmt.line, "bad number: " + std::string(s));
    }
    return negative ? static_cast<std::uint32_t>(-static_cast<std::int64_t>(value))
                    : value;
  }

  // A value operand: number or label (with optional +offset).
  std::uint32_t resolve_value(const Statement& stmt, std::string_view s) const {
    s = strip(s);
    if (s.empty()) throw AsmError(stmt.line, "empty value");
    if (std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
        s[0] == '+') {
      return parse_number(stmt, s);
    }
    // label or label+offset
    std::size_t plus = s.find('+');
    std::string label(strip(s.substr(0, plus)));
    std::uint32_t offset = 0;
    if (plus != std::string_view::npos) {
      offset = parse_number(stmt, strip(s.substr(plus + 1)));
    }
    auto it = symbols_.find(label);
    if (it == symbols_.end()) {
      throw AsmError(stmt.line, "undefined symbol: " + label);
    }
    return it->second + offset;
  }

  AsmOptions options_;
  std::vector<Statement> statements_;
  std::vector<PendingLabel> pending_labels_;
  std::vector<PendingLabel> taken_labels_;
  std::map<std::size_t, std::vector<PendingLabel>> label_owner_;
  std::map<std::string, std::uint32_t> symbols_;
  std::vector<std::uint32_t> text_;
  std::vector<std::uint8_t> text_byte_buffer_;
  std::vector<std::uint8_t> data_;
};

}  // namespace

Program assemble(std::string_view source, const AsmOptions& options) {
  Assembler assembler(source, options);
  return assembler.take();
}

}  // namespace sdmmon::isa
