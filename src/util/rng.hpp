// Deterministic simulation RNG (xoshiro256**) used by workload generators,
// the fleet simulation, and tests. Cryptographic randomness lives in
// crypto/drbg.hpp, not here.
#ifndef SDMMON_UTIL_RNG_HPP
#define SDMMON_UTIL_RNG_HPP

#include <cstdint>
#include <limits>

namespace sdmmon::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies UniformRandomBitGenerator so it works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next() >> 32); }

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_RNG_HPP
