// Bounded single-producer / multi-consumer FIFO ring used by the sharded
// parallel MPSoC engine: the planner (single producer) feeds one deque per
// shard, the shard's own worker pops from it, and idle workers *steal*
// from other shards' deques through the same pop end. Per-slot sequence
// numbers (Vyukov-style bounded queue) make consumer races safe without a
// lock: a consumer that wins the head CAS owns the slot until it bumps the
// slot's sequence, so the producer can never overwrite an item mid-read.
//
// FIFO at the consumer end is load-bearing, not a convenience: items carry
// per-core turn tickets and an executor spins until its item's ticket
// matches the core's turn, so a stolen item must always be the *oldest*
// pending item of its shard -- stealing newest-first could hand a worker a
// successor whose predecessor is still queued, and both would wait forever.
//
// Contract: exactly ONE producer thread may call push/try_push; any number
// of consumer threads may call try_pop concurrently.
#ifndef SDMMON_UTIL_STEALING_DEQUE_HPP
#define SDMMON_UTIL_STEALING_DEQUE_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace sdmmon::util {

template <typename T>
class StealingDeque {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit StealingDeque(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  StealingDeque(const StealingDeque&) = delete;
  StealingDeque& operator=(const StealingDeque&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T&& value) {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    if (slot.seq.load(std::memory_order_acquire) != pos) return false;
    slot.value = std::move(value);
    slot.seq.store(pos + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Producer side; blocks (yield, then short sleeps) until space frees up.
  void push(T value) {
    Backoff backoff;
    while (!try_push(std::move(value))) backoff.pause();
  }

  /// Consumer side (owner or stealer -- same end, oldest item first).
  /// Returns false when the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(slot.value);
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
        // CAS updated pos to the current head; retry from there.
      } else if (diff < 0) {
        return false;  // slot not yet published: ring empty at this head
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Racy size estimate (exact only when all sides are quiescent); feeds
  /// the shard queue-depth histogram.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  /// Yield for a while, then sleep in short slices (same policy as
  /// SpscQueue::Backoff; see the rationale there).
  struct Backoff {
    int spins = 0;
    void pause() {
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumers (CAS)
  alignas(64) std::atomic<std::size_t> tail_{0};  // single producer
};

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_STEALING_DEQUE_HPP
