#include "util/bytes.hpp"

#include <algorithm>

namespace sdmmon::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw DecodeError("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]);
    int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) throw DecodeError("from_hex: bad digit");
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void store_be16(std::uint16_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}

std::uint16_t load_be16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] << 8 | in[1]);
}

void store_be32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t load_be32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) << 24 |
         static_cast<std::uint32_t>(in[1]) << 16 |
         static_cast<std::uint32_t>(in[2]) << 8 |
         static_cast<std::uint32_t>(in[3]);
}

void store_be64(std::uint64_t v, std::uint8_t* out) {
  store_be32(static_cast<std::uint32_t>(v >> 32), out);
  store_be32(static_cast<std::uint32_t>(v), out + 4);
}

std::uint64_t load_be64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(load_be32(in)) << 32 | load_be32(in + 4);
}

void store_le32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t load_le32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void ByteWriter::u16(std::uint16_t v) {
  std::uint8_t tmp[2];
  store_be16(v, tmp);
  buf_.insert(buf_.end(), tmp, tmp + 2);
}

void ByteWriter::u32(std::uint32_t v) {
  std::uint8_t tmp[4];
  store_be32(v, tmp);
  buf_.insert(buf_.end(), tmp, tmp + 4);
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t tmp[8];
  store_be64(v, tmp);
  buf_.insert(buf_.end(), tmp, tmp + 8);
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = load_be16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = load_be32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = load_be64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Bytes ByteReader::blob() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace sdmmon::util
