// Small thread-coordination primitives for the parallel execution engine.
#ifndef SDMMON_UTIL_SYNC_HPP
#define SDMMON_UTIL_SYNC_HPP

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace sdmmon::util {

/// A reusable countdown gate: the coordinator arms it with the number of
/// outstanding work items, workers call done() as they finish, and the
/// coordinator blocks in wait() until the count reaches zero. The mutex
/// makes every write a worker performed before done() visible to the
/// coordinator after wait() -- the barrier the batch-commit step relies
/// on -- and, because the final done() broadcasts while still holding it,
/// a waiter can only return (and possibly destroy a stack-local gate)
/// once the signaler is fully out of the condition variable. Per-call
/// cost is one uncontended lock, negligible next to packet execution.
class CompletionGate {
 public:
  /// Must only be called while no worker can still call done() (i.e.
  /// after the previous wait() returned).
  void arm(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    remaining_ = count;
  }

  void done() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::size_t remaining_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_SYNC_HPP
