// Deterministic, seeded fault injection for robustness campaigns. One
// FaultInjector instance models everything that can go wrong between the
// operator's console and a core's program store: bit flips and truncation
// of byte buffers (wire packages, graph bitstreams, packet payloads),
// corruption of program-store words, loss/delay of operator->device
// messages, and skew of the clock a device uses to judge certificate
// validity. Every decision flows from one xoshiro stream, so a campaign
// with a given profile+seed replays bit-for-bit -- tests assert on exact
// convergence behavior, not on luck.
#ifndef SDMMON_UTIL_FAULT_HPP
#define SDMMON_UTIL_FAULT_HPP

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sdmmon::util {

/// What faults to inject and how often. All rates are probabilities in
/// [0, 1] evaluated independently per opportunity; the default profile is
/// fully transparent (all rates zero), so code can unconditionally route
/// through an injector.
struct FaultProfile {
  std::uint64_t seed = 0xFA17;

  // Byte-buffer faults (wire packages, bitstreams, packet payloads).
  double bit_flip_rate = 0.0;    // chance a buffer gets bits flipped
  std::uint32_t max_bit_flips = 1;  // flips applied when a buffer is hit
  double truncation_rate = 0.0;  // chance a buffer loses a suffix

  // Message-channel faults (operator -> device and the reply path).
  double drop_rate = 0.0;   // chance a message vanishes
  double delay_rate = 0.0;  // chance a message is delayed, not lost
  std::uint64_t max_delay_s = 30;  // delay drawn uniformly from [1, max]

  // Clock faults (certificate-validity checks at the device).
  double clock_skew_rate = 0.0;  // chance a timestamp is skewed
  std::int64_t clock_skew_s = 0;  // signed skew applied when it fires
};

/// Counters for everything the injector actually did; lets campaigns
/// report "converged despite N corrupted packages and M lost messages".
struct FaultStats {
  std::uint64_t buffers_seen = 0;
  std::uint64_t buffers_corrupted = 0;
  std::uint64_t bits_flipped = 0;
  std::uint64_t truncations = 0;
  std::uint64_t messages_seen = 0;
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t clock_skews = 0;
  std::uint64_t words_corrupted = 0;

  std::uint64_t faults_injected() const {
    return buffers_corrupted + truncations + drops + delays + clock_skews +
           words_corrupted;
  }
};

class FaultInjector {
 public:
  /// Default-constructed injector is transparent: no profile rates, so
  /// every maybe_* call is a no-op.
  FaultInjector() : FaultInjector(FaultProfile{}) {}
  explicit FaultInjector(FaultProfile profile)
      : profile_(profile), rng_(profile.seed) {}

  const FaultProfile& profile() const { return profile_; }
  const FaultStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }

  // -- Probabilistic faults (gated by the profile rates) ----------------

  /// Maybe flip up to max_bit_flips random bits in `buffer`; returns true
  /// if the buffer was modified.
  bool maybe_corrupt(Bytes& buffer);

  /// Maybe truncate `buffer` to a random strictly-shorter length.
  bool maybe_truncate(Bytes& buffer);

  /// One operator->device (or reply) message: true means it was lost.
  bool drop_message();

  /// Seconds of delay for a message (0 = delivered on time).
  std::uint64_t delay_message();

  /// The timestamp a device would use for certificate validity, possibly
  /// skewed. Saturates at 0 rather than wrapping for negative skews.
  std::uint64_t skew_clock(std::uint64_t now);

  // -- Targeted faults (unconditional; used to build specific scenarios) -

  /// Flip exactly one random bit. No-op on an empty buffer.
  void flip_bit(Bytes& buffer);

  /// Flip `flips` random bits (with replacement). No-op on empty buffer.
  void flip_bits(Bytes& buffer, std::uint32_t flips);

  /// Drop a random non-empty suffix (result is strictly shorter, possibly
  /// empty). No-op on an empty buffer.
  void truncate(Bytes& buffer);

  /// Corrupt one random word of a program store (single bit flip in one
  /// 32-bit instruction word). No-op on an empty store.
  void corrupt_word(std::vector<std::uint32_t>& words);

 private:
  FaultProfile profile_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_FAULT_HPP
