// Small bit-manipulation helpers shared by the hash functions and the
// resource model.
#ifndef SDMMON_UTIL_BITOPS_HPP
#define SDMMON_UTIL_BITOPS_HPP

#include <bit>
#include <cstdint>

namespace sdmmon::util {

constexpr int popcount32(std::uint32_t v) { return std::popcount(v); }

/// Number of differing bits between two 32-bit words.
constexpr int hamming32(std::uint32_t a, std::uint32_t b) {
  return std::popcount(a ^ b);
}

constexpr std::uint32_t rotl32(std::uint32_t v, int s) {
  return std::rotl(v, s);
}

constexpr std::uint32_t rotr32(std::uint32_t v, int s) {
  return std::rotr(v, s);
}

/// Extract `width` bits of `v` starting at bit `lo` (LSB = bit 0).
constexpr std::uint32_t bits(std::uint32_t v, int lo, int width) {
  return (v >> lo) & ((width >= 32) ? 0xFFFFFFFFu : ((1u << width) - 1u));
}

/// Set/clear bit `i` of `v`.
constexpr std::uint32_t with_bit(std::uint32_t v, int i, bool on) {
  return on ? (v | (1u << i)) : (v & ~(1u << i));
}

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_BITOPS_HPP
