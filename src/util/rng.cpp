#include "util/rng.hpp"

#include <bit>

namespace sdmmon::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace sdmmon::util
