// Bounded single-producer/single-consumer queue used by the parallel
// MPSoC engine: the dispatcher thread feeds one queue per worker, and the
// caller feeds the dispatcher through another. The fast path is a lock-free
// ring buffer (acquire/release on the head/tail indices); when a side finds
// the queue empty/full it backs off with yield-then-sleep instead of a
// condition variable, which keeps the synchronization story simple enough
// for ThreadSanitizer to verify exactly (no fences, no Dekker patterns).
//
// Contract: exactly ONE producer thread may call push/try_push and exactly
// ONE consumer thread may call pop/try_pop over the queue's lifetime.
#ifndef SDMMON_UTIL_SPSC_QUEUE_HPP
#define SDMMON_UTIL_SPSC_QUEUE_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace sdmmon::util {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the queue is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; blocks (yield, then short sleeps) until space frees up.
  void push(T value) {
    Backoff backoff;
    while (!try_push(std::move(value))) backoff.pause();
  }

  /// Consumer side. Returns false when the queue is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side; blocks until an item arrives.
  T pop() {
    T out;
    Backoff backoff;
    while (!try_pop(out)) backoff.pause();
    return out;
  }

  /// Racy size estimate (exact only when both sides are quiescent).
  std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  /// Yield for a while, then sleep in short slices. Batch-granular callers
  /// (the MPSoC engine moves hundreds of packets per wakeup) never notice
  /// the worst-case ~50us wakeup latency, and idle threads cost ~no CPU.
  struct Backoff {
    int spins = 0;
    void pause() {
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  };

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_SPSC_QUEUE_HPP
