// Minimal leveled logger. Default level is Warn so library code stays quiet
// in tests and benches; examples raise it to Info to narrate the protocol.
#ifndef SDMMON_UTIL_LOG_HPP
#define SDMMON_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace sdmmon::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::Debug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::Info, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::Warn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::Error, args...);
}

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_LOG_HPP
