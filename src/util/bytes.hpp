// Byte-buffer utilities: hex codecs, endian load/store, and a small
// length-prefixed serialization reader/writer used by the crypto and
// sdmmon package formats.
#ifndef SDMMON_UTIL_BYTES_HPP
#define SDMMON_UTIL_BYTES_HPP

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sdmmon::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown on malformed serialized input (truncated fields, bad hex, ...).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Lowercase hex encoding of a byte span.
std::string to_hex(std::span<const std::uint8_t> data);

/// Decode a hex string (even length, [0-9a-fA-F]); throws DecodeError.
Bytes from_hex(std::string_view hex);

/// Bytes from a string's character values.
Bytes bytes_of(std::string_view s);

/// Constant-time equality (length leak only); for MAC/signature compares.
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

// Big-endian fixed-width stores/loads (network order).
void store_be32(std::uint32_t v, std::uint8_t* out);
void store_be64(std::uint64_t v, std::uint8_t* out);
std::uint32_t load_be32(const std::uint8_t* in);
std::uint64_t load_be64(const std::uint8_t* in);
void store_be16(std::uint16_t v, std::uint8_t* out);
std::uint16_t load_be16(const std::uint8_t* in);

// Little-endian variants (used by the ISA image format).
void store_le32(std::uint32_t v, std::uint8_t* out);
std::uint32_t load_le32(const std::uint8_t* in);

/// Append-only serializer producing length-prefixed, tagged fields.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// 32-bit length prefix followed by raw bytes.
  void blob(std::span<const std::uint8_t> data);
  void str(std::string_view s);
  void raw(std::span<const std::uint8_t> data);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Mirror of ByteWriter; throws DecodeError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes blob();
  std::string str();
  Bytes raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace sdmmon::util

#endif  // SDMMON_UTIL_BYTES_HPP
