#include "util/fault.hpp"

namespace sdmmon::util {

bool FaultInjector::maybe_corrupt(Bytes& buffer) {
  ++stats_.buffers_seen;
  if (buffer.empty() || !rng_.chance(profile_.bit_flip_rate)) return false;
  std::uint32_t flips =
      profile_.max_bit_flips <= 1
          ? 1
          : static_cast<std::uint32_t>(rng_.range(1, profile_.max_bit_flips));
  flip_bits(buffer, flips);
  return true;
}

bool FaultInjector::maybe_truncate(Bytes& buffer) {
  if (buffer.empty() || !rng_.chance(profile_.truncation_rate)) return false;
  truncate(buffer);
  return true;
}

bool FaultInjector::drop_message() {
  ++stats_.messages_seen;
  if (!rng_.chance(profile_.drop_rate)) return false;
  ++stats_.drops;
  return true;
}

std::uint64_t FaultInjector::delay_message() {
  if (profile_.max_delay_s == 0 || !rng_.chance(profile_.delay_rate)) return 0;
  ++stats_.delays;
  return rng_.range(1, profile_.max_delay_s);
}

std::uint64_t FaultInjector::skew_clock(std::uint64_t now) {
  if (!rng_.chance(profile_.clock_skew_rate)) return now;
  ++stats_.clock_skews;
  if (profile_.clock_skew_s >= 0) {
    return now + static_cast<std::uint64_t>(profile_.clock_skew_s);
  }
  std::uint64_t back = static_cast<std::uint64_t>(-profile_.clock_skew_s);
  return now > back ? now - back : 0;
}

void FaultInjector::flip_bit(Bytes& buffer) { flip_bits(buffer, 1); }

void FaultInjector::flip_bits(Bytes& buffer, std::uint32_t flips) {
  if (buffer.empty() || flips == 0) return;
  for (std::uint32_t i = 0; i < flips; ++i) {
    std::uint64_t bit = rng_.below(buffer.size() * 8);
    buffer[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++stats_.bits_flipped;
  }
  ++stats_.buffers_corrupted;
}

void FaultInjector::truncate(Bytes& buffer) {
  if (buffer.empty()) return;
  buffer.resize(rng_.below(buffer.size()));
  ++stats_.truncations;
}

void FaultInjector::corrupt_word(std::vector<std::uint32_t>& words) {
  if (words.empty()) return;
  std::uint64_t index = rng_.below(words.size());
  words[index] ^= 1u << rng_.below(32);
  ++stats_.words_corrupted;
}

}  // namespace sdmmon::util
