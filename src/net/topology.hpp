// Multi-router network simulation: each node is a monitored NP device
// running a real `ipv4-router` binary compiled from its own routing
// table; links join (node, port) pairs; packets are forwarded hop by hop
// by actual NP-core execution. This is the network context the paper's
// introduction motivates -- many identical programmable routers in one
// operator's network.
#ifndef SDMMON_NET_TOPOLOGY_HPP
#define SDMMON_NET_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "net/routing.hpp"
#include "np/monitored_core.hpp"

namespace sdmmon::net {

class Network {
 public:
  /// Add a router node running ipv4-router over `table`, with its monitor
  /// keyed by `hash_param` (per-router diversity). Returns the node id.
  std::size_t add_router(const std::string& name, const RoutingTable& table,
                         std::uint32_t hash_param);

  /// Add a node running an arbitrary application (e.g. the vulnerable
  /// ipv4-cm on an edge router). Apps that never set kRegPktOutPort egress
  /// on port 0.
  std::size_t add_node(const std::string& name, const isa::Program& program,
                       std::uint32_t hash_param);

  /// Join two router ports with a bidirectional link.
  void connect(std::size_t node_a, std::uint32_t port_a, std::size_t node_b,
               std::uint32_t port_b);

  enum class Status : std::uint8_t {
    Delivered,       // egressed through an unconnected (edge) port
    Dropped,         // a router dropped it (no route / TTL expired / bad)
    AttackDetected,  // a monitor flagged it
    Trapped,         // a core trapped on it
    HopLimit,        // forwarding loop ran out of the hop budget
  };

  struct Delivery {
    Status status = Status::Dropped;
    std::vector<std::size_t> path;   // nodes visited in order
    std::size_t egress_node = 0;     // valid when Delivered
    std::uint32_t egress_port = 0;   // valid when Delivered
    util::Bytes final_packet;        // packet as it left the network
  };

  /// Inject a packet at `ingress` and forward until it leaves the
  /// network, is dropped/flagged, or exceeds `max_hops`.
  Delivery send(std::size_t ingress, std::span<const std::uint8_t> packet,
                int max_hops = 64);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(std::size_t node) const {
    return nodes_[node].name;
  }
  const np::CoreStats& node_stats(std::size_t node) const {
    return nodes_[node].core.stats();
  }
  np::MonitoredCore& node_core(std::size_t node) {
    return nodes_[node].core;
  }

 private:
  struct Peer {
    std::size_t node = 0;
    std::uint32_t port = 0;
    bool connected = false;
  };
  struct Node {
    std::string name;
    np::MonitoredCore core;
    std::vector<Peer> links;  // indexed by local port
  };

  const Peer* peer_of(std::size_t node, std::uint32_t port) const;

  std::vector<Node> nodes_;
};

const char* delivery_status_name(Network::Status status);

}  // namespace sdmmon::net

#endif  // SDMMON_NET_TOPOLOGY_HPP
