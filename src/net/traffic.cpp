#include "net/traffic.hpp"

#include "net/packet.hpp"

namespace sdmmon::net {

TrafficGenerator::TrafficGenerator(TrafficConfig config)
    : config_(config), rng_(config.seed) {}

TrafficGenerator::Generated TrafficGenerator::next() {
  const std::uint32_t flow =
      static_cast<std::uint32_t>(counter_++ % config_.flows);
  const std::size_t payload_len =
      config_.min_payload +
      rng_.below(config_.max_payload - config_.min_payload + 1);

  util::Bytes payload(payload_len);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.next());

  Generated out;
  out.flow_key = flow;
  out.packet = make_udp_packet(
      ip(10, 0, static_cast<std::uint8_t>(flow >> 8),
         static_cast<std::uint8_t>(flow)),
      ip(192, 168, 1, static_cast<std::uint8_t>(flow)),
      static_cast<std::uint16_t>(1024 + flow),
      static_cast<std::uint16_t>(rng_.below(4) == 0 ? 53 : 8000 + flow % 100),
      payload, config_.ttl);
  return out;
}

}  // namespace sdmmon::net
