// Packet trace container (record/replay): a compact pcap-like format so
// workloads are reproducible artifacts -- capture a generator's output or
// a live run once, then replay the identical byte stream into any device
// configuration. Used by the throughput bench and the CLI tools.
#ifndef SDMMON_NET_TRACE_HPP
#define SDMMON_NET_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "net/traffic.hpp"
#include "np/monitored_core.hpp"
#include "util/bytes.hpp"

namespace sdmmon::net {

struct TraceRecord {
  std::uint64_t timestamp_ns = 0;
  std::uint32_t flow_key = 0;
  util::Bytes packet;

  bool operator==(const TraceRecord& rhs) const = default;
};

class Trace {
 public:
  static constexpr std::uint32_t kMagic = 0x53444D54;  // "SDMT"

  void add(TraceRecord record) { records_.push_back(std::move(record)); }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  util::Bytes serialize() const;
  static Trace deserialize(std::span<const std::uint8_t> bytes);

  /// File I/O; throws std::runtime_error on failure.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  /// Capture `count` packets from a generator at a fixed inter-arrival.
  static Trace capture(TrafficGenerator& generator, std::size_t count,
                       std::uint64_t inter_arrival_ns = 10'000);

 private:
  std::vector<TraceRecord> records_;
};

/// Outcome tallies of replaying a trace into a monitored core.
struct ReplayStats {
  std::uint64_t packets = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t attacks_detected = 0;
  std::uint64_t trapped = 0;
  std::uint64_t instructions = 0;
};

ReplayStats replay(const Trace& trace, np::MonitoredCore& core);

}  // namespace sdmmon::net

#endif  // SDMMON_NET_TRACE_HPP
