#include "net/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace sdmmon::net {

util::Bytes Trace::serialize() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(1);  // format version
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const TraceRecord& r : records_) {
    w.u64(r.timestamp_ns);
    w.u32(r.flow_key);
    w.blob(r.packet);
  }
  return w.take();
}

Trace Trace::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("trace: bad magic");
  const std::uint32_t version = r.u32();
  if (version != 1) throw util::DecodeError("trace: unsupported version");
  const std::uint32_t count = r.u32();
  Trace trace;
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceRecord record;
    record.timestamp_ns = r.u64();
    record.flow_key = r.u32();
    record.packet = r.blob();
    trace.add(std::move(record));
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  util::Bytes bytes = serialize();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("trace write failed: " + path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  util::Bytes bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

Trace Trace::capture(TrafficGenerator& generator, std::size_t count,
                     std::uint64_t inter_arrival_ns) {
  Trace trace;
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < count; ++i) {
    auto g = generator.next();
    TraceRecord record;
    record.timestamp_ns = now;
    record.flow_key = g.flow_key;
    record.packet = std::move(g.packet);
    trace.add(std::move(record));
    now += inter_arrival_ns;
  }
  return trace;
}

ReplayStats replay(const Trace& trace, np::MonitoredCore& core) {
  ReplayStats stats;
  for (const TraceRecord& record : trace.records()) {
    np::PacketResult r = core.process_packet(record.packet);
    ++stats.packets;
    stats.instructions += r.instructions;
    switch (r.outcome) {
      case np::PacketOutcome::Forwarded: ++stats.forwarded; break;
      case np::PacketOutcome::Dropped: ++stats.dropped; break;
      case np::PacketOutcome::AttackDetected: ++stats.attacks_detected; break;
      case np::PacketOutcome::Trapped: ++stats.trapped; break;
    }
  }
  return stats;
}

}  // namespace sdmmon::net
