// Longest-prefix-match IPv4 routing: a binary-trie reference
// implementation in C++ plus a compiler that lowers the trie into the NP
// core's data memory, together with the `ipv4-router` application that
// walks it in assembly and reports the selected egress port through the
// kRegPktOutPort MMIO register.
//
// Trie memory layout (one node = three little-endian words):
//   +0  left child node index  (kNoChild if absent)
//   +4  right child node index (kNoChild if absent)
//   +8  route word: 0 = no route here, else egress port + 1
#ifndef SDMMON_NET_ROUTING_HPP
#define SDMMON_NET_ROUTING_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace sdmmon::net {

struct Route {
  std::uint32_t prefix = 0;   // network-order value, host representation
  int prefix_len = 0;         // 0..32
  std::uint8_t port = 0;      // egress port
};

/// Reference longest-prefix-match table (binary trie on address bits,
/// most-significant first). Also the oracle for the assembly lookup.
class RoutingTable {
 public:
  static constexpr std::uint32_t kNoChild = 0xFFFF'FFFF;

  /// Insert or overwrite a route; throws std::invalid_argument on a bad
  /// prefix length or non-canonical prefix (host bits set).
  void add_route(std::uint32_t prefix, int prefix_len, std::uint8_t port);

  /// Longest-prefix match; nullopt if no route covers the address.
  std::optional<Route> lookup(std::uint32_t address) const;

  std::size_t route_count() const { return route_count_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Lower the trie into the NP data-memory image (12 bytes per node).
  std::vector<std::uint8_t> compile() const;

 private:
  struct Node {
    std::uint32_t left = kNoChild;
    std::uint32_t right = kNoChild;
    std::uint32_t route_word = 0;  // 0 = none, else port + 1
    int prefix_len = 0;            // depth, for Route reconstruction
  };

  std::vector<Node> nodes_{Node{}};  // node 0 is the root
  std::size_t route_count_ = 0;
};

/// Assembly source of the trie-walking router app for `table`.
std::string ipv4_router_source(const RoutingTable& table);

/// Assembled router program with the compiled trie in its data section.
isa::Program build_ipv4_router(const RoutingTable& table);

}  // namespace sdmmon::net

#endif  // SDMMON_NET_ROUTING_HPP
