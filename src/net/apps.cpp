#include "net/apps.hpp"

#include <sstream>

#include "isa/assembler.hpp"

namespace sdmmon::net {

namespace {

// Shared prologue: validate the IPv4 header.
//   $s0 = rx base, $s1 = tx base, $s2 = packet length, $s3 = header bytes
// Jumps to `drop` on any malformed input. The watchful bounds discipline
// here is what the vulnerable CM option parser deliberately lacks.
constexpr const char* kValidateHeader = R"(
    li $s0, 0x30000           # PKT_IN
    li $s1, 0x40000           # PKT_OUT
    li $t0, 0xFFFF0000        # PKT_IN_LEN
    lw $s2, 0($t0)
    slti $t1, $s2, 20
    bnez $t1, drop            # shorter than minimal header
    lbu $t2, 0($s0)
    srl $t3, $t2, 4
    li $t4, 4
    bne $t3, $t4, drop        # not IPv4
    andi $s3, $t2, 0xF
    sll $s3, $s3, 2           # IHL in bytes
    slti $t1, $s3, 20
    bnez $t1, drop            # IHL < 5
    blt $s2, $s3, drop        # truncated header
)";

// Shared forwarding epilogue: copy rx->tx, decrement TTL, rewrite the
// header checksum, commit. Expects the prologue register contract and a
// TTL already validated > 1.
constexpr const char* kForwardAndCommit = R"(
    move $t6, $zero
copy:
    addu $t7, $s0, $t6
    lbu $t8, 0($t7)
    addu $t7, $s1, $t6
    sb $t8, 0($t7)
    addiu $t6, $t6, 1
    bne $t6, $s2, copy
    lbu $t5, 8($s1)
    addiu $t5, $t5, -1        # TTL--
    sb $t5, 8($s1)
    sb $zero, 10($s1)         # zero checksum field
    sb $zero, 11($s1)
    move $t6, $zero           # offset
    move $t7, $zero           # sum
cksum:
    addu $t8, $s1, $t6
    lbu $t9, 0($t8)
    sll $t9, $t9, 8
    lbu $t8, 1($t8)
    or $t9, $t9, $t8
    addu $t7, $t7, $t9
    addiu $t6, $t6, 2
    blt $t6, $s3, cksum
fold:
    srl $t8, $t7, 16
    beqz $t8, folded
    andi $t7, $t7, 0xFFFF
    addu $t7, $t7, $t8
    b fold
folded:
    nor $t7, $t7, $zero
    andi $t7, $t7, 0xFFFF
    srl $t8, $t7, 8
    sb $t8, 10($s1)
    sb $t7, 11($s1)
    li $t0, 0xFFFF0004        # PKT_OUT_COMMIT
    sw $s2, 0($t0)
)";

}  // namespace

std::string ipv4_forward_source() {
  std::ostringstream os;
  os << "# ipv4-forward: validate, TTL--, checksum rewrite, forward.\n"
     << "main:\n"
     << kValidateHeader
     << R"(
    lbu $t5, 8($s0)           # TTL
    slti $t1, $t5, 2
    bnez $t1, drop            # TTL expired
)" << kForwardAndCommit
     << "drop:\n    jr $ra\n";
  return os.str();
}

std::string ipv4_cm_source() {
  std::ostringstream os;
  os << "# ipv4-cm: IPv4 forwarding + congestion management. The CM state\n"
     << "# option parser copies option data into a fixed stack buffer with\n"
     << "# the attacker-controlled TLV length -- a classic data-plane stack\n"
     << "# smash (deliberately vulnerable; the hardware monitor's job).\n"
     << "main:\n"
     << "    addiu $sp, $sp, -8\n"
     << "    sw $ra, 4($sp)\n"
     << kValidateHeader
     << R"(
    lbu $t5, 8($s0)
    slti $t1, $t5, 2
    bnez $t1, drop
    li $t1, 20
    beq $s3, $t1, no_opts     # no options present
    move $s4, $t1             # option scan offset
opt_scan:
    bge $s4, $s3, no_opts
    addu $t6, $s0, $s4
    lbu $t7, 0($t6)           # option type
    beqz $t7, no_opts         # end of options
    li $t8, 1
    beq $t7, $t8, opt_nop
    li $t8, 0x88
    beq $t7, $t8, opt_cm
    lbu $t8, 1($t6)           # other option: skip by TLV length
    beqz $t8, no_opts
    addu $s4, $s4, $t8
    b opt_scan
opt_nop:
    addiu $s4, $s4, 1
    b opt_scan
opt_cm:
    move $a0, $t6
    jal cm_process
no_opts:
)" << kForwardAndCommit
     << R"(
drop:
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra

# cm_process($a0 = option TLV base): read congestion state into a 16-byte
# stack buffer and fold it into a marking decision.
# *** VULNERABLE: copy length comes from the packet's TLV length byte with
# *** no bounds check; data bytes 28..31 overwrite the saved $ra.
cm_process:
    addiu $sp, $sp, -32       # buffer at 0($sp), saved $ra at 28($sp)
    sw $ra, 28($sp)
    lbu $t0, 1($a0)           # TLV length (attacker controlled)
    addiu $t0, $t0, -2        # data length
    blez $t0, cm_done
    move $t1, $zero
cm_copy:
    addu $t2, $a0, $t1
    lbu $t3, 2($t2)
    addu $t2, $sp, $t1
    sb $t3, 0($t2)
    addiu $t1, $t1, 1
    blt $t1, $t0, cm_copy
cm_done:
    lbu $t4, 0($sp)           # "process" the state: threshold check
    slti $t4, $t4, 128
    bnez $t4, cm_nomark
    lbu $t5, 1($s0)           # set ECN CE bits in TOS (input side; the
    ori $t5, $t5, 0x3         # forward loop copies the marked byte out)
    sb $t5, 1($s0)
cm_nomark:
    lw $ra, 28($sp)           # <- smashed by oversized option data
    addiu $sp, $sp, 32
    jr $ra
)";
  return os.str();
}

std::string udp_echo_source() {
  std::ostringstream os;
  os << "# udp-echo: swap IP addresses and UDP ports, echo the datagram.\n"
     << "main:\n"
     << kValidateHeader
     << R"(
    lbu $t1, 9($s0)           # protocol
    li $t2, 17
    bne $t1, $t2, drop        # UDP only
    addiu $t3, $s3, 8          # need full UDP header
    blt $s2, $t3, drop
    move $t6, $zero           # copy packet to tx first
echo_copy:
    addu $t7, $s0, $t6
    lbu $t8, 0($t7)
    addu $t7, $s1, $t6
    sb $t8, 0($t7)
    addiu $t6, $t6, 1
    bne $t6, $s2, echo_copy
    lw $t1, 12($s1)           # swap src/dst IP (word-aligned fields)
    lw $t2, 16($s1)
    sw $t2, 12($s1)
    sw $t1, 16($s1)
    addu $t3, $s1, $s3        # UDP header base in tx
    lhu $t1, 0($t3)           # swap ports
    lhu $t2, 2($t3)
    sh $t2, 0($t3)
    sh $t1, 2($t3)
    sh $zero, 6($t3)          # clear UDP checksum (optional in IPv4)
    sb $zero, 10($s1)         # recompute IP checksum (addresses swapped)
    sb $zero, 11($s1)
    move $t6, $zero
    move $t7, $zero
cksum:
    addu $t8, $s1, $t6
    lbu $t9, 0($t8)
    sll $t9, $t9, 8
    lbu $t8, 1($t8)
    or $t9, $t9, $t8
    addu $t7, $t7, $t9
    addiu $t6, $t6, 2
    blt $t6, $s3, cksum
fold:
    srl $t8, $t7, 16
    beqz $t8, folded
    andi $t7, $t7, 0xFFFF
    addu $t7, $t7, $t8
    b fold
folded:
    nor $t7, $t7, $zero
    andi $t7, $t7, 0xFFFF
    srl $t8, $t7, 8
    sb $t8, 10($s1)
    sb $t7, 11($s1)
    li $t0, 0xFFFF0004
    sw $s2, 0($t0)
drop:
    jr $ra
)";
  return os.str();
}

std::string firewall_source(const std::vector<std::uint16_t>& blocked_ports) {
  std::ostringstream os;
  os << "# firewall: drop UDP packets to blocked ports, forward the rest.\n"
     << "main:\n"
     << kValidateHeader
     << R"(
    lbu $t5, 8($s0)
    slti $t1, $t5, 2
    bnez $t1, drop
    lbu $t1, 9($s0)           # protocol
    li $t2, 17
    bne $t1, $t2, pass        # only UDP is filtered
    addiu $t3, $s3, 8
    blt $s2, $t3, drop        # UDP claimed but truncated
    addu $t3, $s0, $s3
    lbu $t4, 2($t3)           # dst port (big-endian on the wire)
    sll $t4, $t4, 8
    lbu $t6, 3($t3)
    or $t4, $t4, $t6
    la $t7, blocked_count
    lw $t8, 0($t7)
    la $t7, blocked_ports
    move $t9, $zero
block_scan:
    beq $t9, $t8, pass        # scanned all entries
    sll $t6, $t9, 2
    addu $t6, $t7, $t6
    lw $t6, 0($t6)
    beq $t6, $t4, drop        # blocked port
    addiu $t9, $t9, 1
    b block_scan
pass:
)" << kForwardAndCommit
     << R"(
drop:
    jr $ra

.data
blocked_count:
    .word )" << blocked_ports.size() << "\n"
     << "blocked_ports:\n";
  for (std::uint16_t port : blocked_ports) {
    os << "    .word " << port << "\n";
  }
  if (blocked_ports.empty()) os << "    .word 0\n";
  return os.str();
}

std::string flow_stats_source() {
  std::ostringstream os;
  os << "# flow-stats: ipv4 forwarding + per-flow packet counters kept in\n"
     << "# a 256-bucket table in data RAM (state persists across packets).\n"
     << "main:\n"
     << kValidateHeader
     << R"(
    lbu $t5, 8($s0)
    slti $t1, $t5, 2
    bnez $t1, drop
    # flow key: xor of src and dst, folded to 8 bits
    lw $t1, 12($s0)
    lw $t2, 16($s0)
    xor $t3, $t1, $t2
    srl $t4, $t3, 16
    xor $t3, $t3, $t4
    srl $t4, $t3, 8
    xor $t3, $t3, $t4
    andi $t3, $t3, 0xFF
    la $t4, flow_table
    sll $t5, $t3, 2
    addu $t4, $t4, $t5
    lw $t5, 0($t4)          # flow_table[bucket]++
    addiu $t5, $t5, 1
    sw $t5, 0($t4)
    la $t4, total_count
    lw $t5, 0($t4)          # total_count++
    addiu $t5, $t5, 1
    sw $t5, 0($t4)
)" << kForwardAndCommit
     << R"(
drop:
    jr $ra

.data
total_count:
    .word 0
flow_table:
    .space 1024
)";
  return os.str();
}

std::uint8_t flow_stats_bucket(std::uint32_t src, std::uint32_t dst) {
  // Note: the app loads the addresses with lw from little-endian memory,
  // so it sees byte-swapped values; xor folding is byte-order agnostic.
  std::uint32_t x = src ^ dst;
  x ^= x >> 16;
  x ^= x >> 8;
  return static_cast<std::uint8_t>(x & 0xFF);
}

std::string loop_forward_source() {
  std::ostringstream os;
  os << "# loop-forward: minimal branchy forwarder -- a tight 6-op byte\n"
     << "# copy loop dominates, then the first payload byte picks the\n"
     << "# output port. No header validation: every cycle is loop body.\n"
     << R"(main:
    li $s0, 0x30000           # PKT_IN
    li $s1, 0x40000           # PKT_OUT
    li $t0, 0xFFFF0000        # PKT_IN_LEN
    lw $s2, 0($t0)
    beqz $s2, drop            # empty packet
    move $t6, $zero
copy:
    addu $t7, $s0, $t6        # tight loop: the backward bne is taken
    lbu $t8, 0($t7)           # (len - 1) times per packet, so the trace
    addu $t7, $s1, $t6        # tier unrolls it and side-exits exactly
    sb $t8, 0($t7)            # once, at loop exit
    addiu $t6, $t6, 1
    bne $t6, $s2, copy
    lbu $t1, 0($s0)           # first byte selects the output port
    andi $t1, $t1, 0x7
    li $t0, 0xFFFF0014        # PKT_OUT_PORT
    sw $t1, 0($t0)
    li $t0, 0xFFFF0004        # PKT_OUT_COMMIT
    sw $s2, 0($t0)
drop:
    jr $ra
)";
  return os.str();
}

std::string ipip_encap_source(std::uint32_t tunnel_src,
                              std::uint32_t tunnel_dst) {
  std::ostringstream os;
  os << "# ipip-encap: wrap valid IPv4 packets in an outer RFC 2003 header\n"
     << "# (proto 4) addressed " << std::hex << tunnel_src << " -> "
     << tunnel_dst << std::dec << ".\n"
     << "main:\n"
     << kValidateHeader
     << R"(
    move $t6, $zero           # copy inner packet to OUT+20
enc_copy:
    addu $t7, $s0, $t6
    lbu $t8, 0($t7)
    addu $t7, $s1, $t6
    addiu $t7, $t7, 20
    sb $t8, 0($t7)
    addiu $t6, $t6, 1
    bne $t6, $s2, enc_copy
    li $t1, 0x45              # outer version|IHL
    sb $t1, 0($s1)
    sb $zero, 1($s1)          # tos
    addiu $t2, $s2, 20        # outer total length
    srl $t1, $t2, 8
    sb $t1, 2($s1)
    sb $t2, 3($s1)
    sb $zero, 4($s1)          # id / flags / frag
    sb $zero, 5($s1)
    sb $zero, 6($s1)
    sb $zero, 7($s1)
    li $t1, 64
    sb $t1, 8($s1)            # outer TTL
    li $t1, 4
    sb $t1, 9($s1)            # protocol = IPIP
    sb $zero, 10($s1)         # checksum placeholder
    sb $zero, 11($s1)
)";
  auto emit_addr = [&os](std::uint32_t addr, int offset) {
    os << "    li $t1, " << addr << "\n";
    for (int b = 0; b < 4; ++b) {
      os << "    srl $t2, $t1, " << (24 - 8 * b) << "\n"
         << "    sb $t2, " << (offset + b) << "($s1)\n";
    }
  };
  emit_addr(tunnel_src, 12);
  emit_addr(tunnel_dst, 16);
  os << R"(
    move $t6, $zero           # checksum over the 20-byte outer header
    move $t7, $zero
enc_cksum:
    addu $t8, $s1, $t6
    lbu $t9, 0($t8)
    sll $t9, $t9, 8
    lbu $t8, 1($t8)
    or $t9, $t9, $t8
    addu $t7, $t7, $t9
    addiu $t6, $t6, 2
    li $t8, 20
    blt $t6, $t8, enc_cksum
enc_fold:
    srl $t8, $t7, 16
    beqz $t8, enc_folded
    andi $t7, $t7, 0xFFFF
    addu $t7, $t7, $t8
    b enc_fold
enc_folded:
    nor $t7, $t7, $zero
    andi $t7, $t7, 0xFFFF
    srl $t8, $t7, 8
    sb $t8, 10($s1)
    sb $t7, 11($s1)
    li $t0, 0xFFFF0004
    addiu $t2, $s2, 20
    sw $t2, 0($t0)
drop:
    jr $ra
)";
  return os.str();
}

std::string ipip_decap_source() {
  std::ostringstream os;
  os << "# ipip-decap: strip the outer header of proto-4 packets; forward\n"
     << "# everything else like ipv4-forward.\n"
     << "main:\n"
     << kValidateHeader
     << R"(
    lbu $t1, 9($s0)           # outer protocol
    li $t2, 4
    bne $t1, $t2, pass        # not a tunnel packet
    subu $t9, $s2, $s3        # inner length
    slti $t1, $t9, 20
    bnez $t1, drop            # inner too short to be IPv4
    move $t6, $zero
dec_copy:
    addu $t7, $s0, $t6
    addu $t7, $t7, $s3        # skip the outer header
    lbu $t8, 0($t7)
    addu $t7, $s1, $t6
    sb $t8, 0($t7)
    addiu $t6, $t6, 1
    bne $t6, $t9, dec_copy
    li $t0, 0xFFFF0004
    sw $t9, 0($t0)            # emit the inner packet as-is
pass:
    lbu $t5, 8($s0)
    slti $t1, $t5, 2
    bnez $t1, drop
)" << kForwardAndCommit
     << "drop:\n    jr $ra\n";
  return os.str();
}

namespace {
isa::Program build(const std::string& source, const std::string& name) {
  isa::AsmOptions options;
  options.name = name;
  return isa::assemble(source, options);
}
}  // namespace

isa::Program build_ipv4_forward() {
  return build(ipv4_forward_source(), "ipv4-forward");
}

isa::Program build_ipv4_cm() { return build(ipv4_cm_source(), "ipv4-cm"); }

isa::Program build_udp_echo() { return build(udp_echo_source(), "udp-echo"); }

isa::Program build_firewall(const std::vector<std::uint16_t>& blocked_ports) {
  return build(firewall_source(blocked_ports), "firewall");
}

isa::Program build_flow_stats() {
  return build(flow_stats_source(), "flow-stats");
}

isa::Program build_loop_forward() {
  return build(loop_forward_source(), "loop-forward");
}

isa::Program build_ipip_encap(std::uint32_t tunnel_src,
                              std::uint32_t tunnel_dst) {
  return build(ipip_encap_source(tunnel_src, tunnel_dst), "ipip-encap");
}

isa::Program build_ipip_decap() {
  return build(ipip_decap_source(), "ipip-decap");
}

}  // namespace sdmmon::net
