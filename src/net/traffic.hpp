// Deterministic workload generator: streams of valid UDP-over-IPv4
// packets with configurable flow count and size distribution, used by the
// throughput bench and the integration tests.
#ifndef SDMMON_NET_TRAFFIC_HPP
#define SDMMON_NET_TRAFFIC_HPP

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sdmmon::net {

struct TrafficConfig {
  std::size_t flows = 64;
  std::size_t min_payload = 16;
  std::size_t max_payload = 1024;
  std::uint8_t ttl = 64;
  std::uint64_t seed = 0xF10E5;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(TrafficConfig config = {});

  struct Generated {
    util::Bytes packet;
    std::uint32_t flow_key;  // for MPSoC flow-hash dispatch
  };

  /// Next packet in the stream (round-robins flows, random sizes).
  Generated next();

 private:
  TrafficConfig config_;
  util::Rng rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace sdmmon::net

#endif  // SDMMON_NET_TRAFFIC_HPP
