#include "net/topology.hpp"

#include <memory>

#include "monitor/analysis.hpp"

namespace sdmmon::net {

const char* delivery_status_name(Network::Status status) {
  switch (status) {
    case Network::Status::Delivered: return "delivered";
    case Network::Status::Dropped: return "dropped";
    case Network::Status::AttackDetected: return "attack-detected";
    case Network::Status::Trapped: return "trapped";
    case Network::Status::HopLimit: return "hop-limit";
  }
  return "?";
}

std::size_t Network::add_router(const std::string& name,
                                const RoutingTable& table,
                                std::uint32_t hash_param) {
  return add_node(name, build_ipv4_router(table), hash_param);
}

std::size_t Network::add_node(const std::string& name,
                              const isa::Program& program,
                              std::uint32_t hash_param) {
  Node node;
  node.name = name;
  monitor::MerkleTreeHash hash(hash_param);
  node.core.install(program, monitor::extract_graph(program, hash),
                    std::make_unique<monitor::MerkleTreeHash>(hash));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

void Network::connect(std::size_t node_a, std::uint32_t port_a,
                      std::size_t node_b, std::uint32_t port_b) {
  auto ensure_port = [](Node& node, std::uint32_t port) -> Peer& {
    if (node.links.size() <= port) node.links.resize(port + 1);
    return node.links[port];
  };
  Peer& a = ensure_port(nodes_.at(node_a), port_a);
  Peer& b = ensure_port(nodes_.at(node_b), port_b);
  a = {node_b, port_b, true};
  b = {node_a, port_a, true};
}

const Network::Peer* Network::peer_of(std::size_t node,
                                      std::uint32_t port) const {
  const auto& links = nodes_[node].links;
  if (port >= links.size() || !links[port].connected) return nullptr;
  return &links[port];
}

Network::Delivery Network::send(std::size_t ingress,
                                std::span<const std::uint8_t> packet,
                                int max_hops) {
  Delivery delivery;
  util::Bytes current(packet.begin(), packet.end());
  std::size_t node = ingress;

  for (int hop = 0; hop < max_hops; ++hop) {
    delivery.path.push_back(node);
    np::PacketResult r = nodes_[node].core.process_packet(current);
    switch (r.outcome) {
      case np::PacketOutcome::Dropped:
        delivery.status = Status::Dropped;
        return delivery;
      case np::PacketOutcome::AttackDetected:
        delivery.status = Status::AttackDetected;
        return delivery;
      case np::PacketOutcome::Trapped:
        delivery.status = Status::Trapped;
        return delivery;
      case np::PacketOutcome::Forwarded:
        break;
    }
    current = std::move(r.output);
    const Peer* peer = peer_of(node, r.output_port);
    if (peer == nullptr) {
      // Edge port: the packet leaves the operator's network.
      delivery.status = Status::Delivered;
      delivery.egress_node = node;
      delivery.egress_port = r.output_port;
      delivery.final_packet = std::move(current);
      return delivery;
    }
    node = peer->node;
  }
  delivery.status = Status::HopLimit;
  return delivery;
}

}  // namespace sdmmon::net
