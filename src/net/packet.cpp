#include "net/packet.hpp"

namespace sdmmon::net {

std::size_t Ipv4Packet::header_len() const {
  std::size_t opt_bytes = 0;
  for (const auto& opt : options) opt_bytes += 2 + opt.data.size();
  // Pad options to a 4-byte boundary.
  opt_bytes = (opt_bytes + 3) & ~std::size_t{3};
  return 20 + opt_bytes;
}

util::Bytes Ipv4Packet::to_bytes() const {
  const std::size_t hlen = header_len();
  if (hlen > 60) throw std::length_error("IPv4 options too long (IHL > 15)");
  const std::size_t total = hlen + payload.size();

  util::Bytes out(total, 0);
  out[0] = static_cast<std::uint8_t>(0x40 | (hlen / 4));  // version | IHL
  out[1] = tos;
  util::store_be16(static_cast<std::uint16_t>(total), out.data() + 2);
  util::store_be16(identification, out.data() + 4);
  // flags/fragment offset zero.
  out[8] = ttl;
  out[9] = protocol;
  // checksum (bytes 10-11) computed below.
  util::store_be32(src, out.data() + 12);
  util::store_be32(dst, out.data() + 16);

  std::size_t off = 20;
  for (const auto& opt : options) {
    out[off++] = opt.type;
    out[off++] = static_cast<std::uint8_t>(2 + opt.data.size());
    std::copy(opt.data.begin(), opt.data.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
    off += opt.data.size();
  }
  // Remaining option bytes stay zero (End-of-Options padding).

  std::uint16_t cksum =
      ipv4_checksum(std::span<const std::uint8_t>(out.data(), hlen));
  util::store_be16(cksum, out.data() + 10);

  std::copy(payload.begin(), payload.end(),
            out.begin() + static_cast<std::ptrdiff_t>(hlen));
  return out;
}

std::optional<Ipv4Packet> Ipv4Packet::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 20) return std::nullopt;
  const int version = bytes[0] >> 4;
  const std::size_t hlen = static_cast<std::size_t>(bytes[0] & 0xF) * 4;
  if (version != 4 || hlen < 20 || hlen > bytes.size()) return std::nullopt;
  const std::size_t total = util::load_be16(bytes.data() + 2);
  if (total < hlen || total > bytes.size()) return std::nullopt;

  Ipv4Packet p;
  p.tos = bytes[1];
  p.identification = util::load_be16(bytes.data() + 4);
  p.ttl = bytes[8];
  p.protocol = bytes[9];
  p.src = util::load_be32(bytes.data() + 12);
  p.dst = util::load_be32(bytes.data() + 16);

  std::size_t off = 20;
  while (off < hlen) {
    const std::uint8_t type = bytes[off];
    if (type == 0) break;  // End of Options
    if (type == 1) {       // NOP
      ++off;
      continue;
    }
    if (off + 2 > hlen) return std::nullopt;
    const std::uint8_t tlv_len = bytes[off + 1];
    if (tlv_len < 2 || off + tlv_len > hlen) return std::nullopt;
    Ipv4Option opt;
    opt.type = type;
    opt.data.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off + 2),
                    bytes.begin() + static_cast<std::ptrdiff_t>(off + tlv_len));
    p.options.push_back(std::move(opt));
    off += tlv_len;
  }

  p.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(hlen),
                   bytes.begin() + static_cast<std::ptrdiff_t>(total));
  return p;
}

std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    std::uint16_t word = util::load_be16(header.data() + i);
    // Skip the checksum field itself (bytes 10-11).
    if (i == 10) word = 0;
    sum += word;
  }
  if (header.size() % 2) sum += static_cast<std::uint32_t>(header.back()) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

bool ipv4_checksum_ok(std::span<const std::uint8_t> packet) {
  if (packet.size() < 20) return false;
  const std::size_t hlen = static_cast<std::size_t>(packet[0] & 0xF) * 4;
  if (hlen < 20 || hlen > packet.size()) return false;
  return ipv4_checksum(packet.subspan(0, hlen)) ==
         util::load_be16(packet.data() + 10);
}

util::Bytes UdpDatagram::to_bytes() const {
  util::Bytes out(8 + payload.size());
  util::store_be16(src_port, out.data());
  util::store_be16(dst_port, out.data() + 2);
  util::store_be16(static_cast<std::uint16_t>(out.size()), out.data() + 4);
  // checksum zero (optional in IPv4)
  std::copy(payload.begin(), payload.end(), out.begin() + 8);
  return out;
}

std::optional<UdpDatagram> UdpDatagram::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) return std::nullopt;
  const std::size_t len = util::load_be16(bytes.data() + 4);
  if (len < 8 || len > bytes.size()) return std::nullopt;
  UdpDatagram d;
  d.src_port = util::load_be16(bytes.data());
  d.dst_port = util::load_be16(bytes.data() + 2);
  d.payload.assign(bytes.begin() + 8,
                   bytes.begin() + static_cast<std::ptrdiff_t>(len));
  return d;
}

util::Bytes make_udp_packet(std::uint32_t src, std::uint32_t dst,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t ttl) {
  UdpDatagram udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.payload.assign(payload.begin(), payload.end());

  Ipv4Packet ip_pkt;
  ip_pkt.src = src;
  ip_pkt.dst = dst;
  ip_pkt.ttl = ttl;
  ip_pkt.protocol = 17;
  ip_pkt.payload = udp.to_bytes();
  return ip_pkt.to_bytes();
}

}  // namespace sdmmon::net
