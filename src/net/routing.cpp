#include "net/routing.hpp"

#include <sstream>
#include <stdexcept>

#include "isa/assembler.hpp"
#include "util/bytes.hpp"

namespace sdmmon::net {

void RoutingTable::add_route(std::uint32_t prefix, int prefix_len,
                             std::uint8_t port) {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("prefix length must be 0..32");
  }
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : 0xFFFF'FFFFu << (32 - prefix_len);
  if ((prefix & ~mask) != 0) {
    throw std::invalid_argument("prefix has host bits set");
  }

  std::uint32_t node = 0;
  for (int bit = 0; bit < prefix_len; ++bit) {
    const bool right = (prefix >> (31 - bit)) & 1;
    std::uint32_t child = right ? nodes_[node].right : nodes_[node].left;
    if (child == kNoChild) {
      child = static_cast<std::uint32_t>(nodes_.size());
      Node fresh;
      fresh.prefix_len = bit + 1;
      nodes_.push_back(fresh);  // may reallocate; re-index the parent
      if (right) {
        nodes_[node].right = child;
      } else {
        nodes_[node].left = child;
      }
    }
    node = child;
  }
  if (nodes_[node].route_word == 0) ++route_count_;
  nodes_[node].route_word = static_cast<std::uint32_t>(port) + 1;
}

std::optional<Route> RoutingTable::lookup(std::uint32_t address) const {
  std::optional<Route> best;
  std::uint32_t node = 0;
  for (int bit = 0; bit <= 32; ++bit) {
    const Node& n = nodes_[node];
    if (n.route_word != 0) {
      Route r;
      r.prefix_len = n.prefix_len;
      r.prefix = r.prefix_len == 0
                     ? 0
                     : address & (0xFFFF'FFFFu << (32 - r.prefix_len));
      r.port = static_cast<std::uint8_t>(n.route_word - 1);
      best = r;
    }
    if (bit == 32) break;
    const bool right = (address >> (31 - bit)) & 1;
    const std::uint32_t child = right ? n.right : n.left;
    if (child == kNoChild) break;
    node = child;
  }
  return best;
}

std::vector<std::uint8_t> RoutingTable::compile() const {
  std::vector<std::uint8_t> image(nodes_.size() * 12);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    util::store_le32(nodes_[i].left, image.data() + 12 * i);
    util::store_le32(nodes_[i].right, image.data() + 12 * i + 4);
    util::store_le32(nodes_[i].route_word, image.data() + 12 * i + 8);
  }
  return image;
}

std::string ipv4_router_source(const RoutingTable& table) {
  std::ostringstream os;
  os << R"(# ipv4-router: validate header, longest-prefix-match the
# destination against the trie in data memory, report the egress port,
# decrement TTL, rewrite the checksum, forward. Drops when no route.
main:
    li $s0, 0x30000           # PKT_IN
    li $s1, 0x40000           # PKT_OUT
    li $t0, 0xFFFF0000        # PKT_IN_LEN
    lw $s2, 0($t0)
    slti $t1, $s2, 20
    bnez $t1, drop
    lbu $t2, 0($s0)
    srl $t3, $t2, 4
    li $t4, 4
    bne $t3, $t4, drop
    andi $s3, $t2, 0xF
    sll $s3, $s3, 2
    slti $t1, $s3, 20
    bnez $t1, drop
    blt $s2, $s3, drop
    lbu $t5, 8($s0)           # TTL
    slti $t1, $t5, 2
    bnez $t1, drop
    # destination address (network order, bytes 16..19)
    lbu $s5, 16($s0)
    sll $s5, $s5, 8
    lbu $t5, 17($s0)
    or $s5, $s5, $t5
    sll $s5, $s5, 8
    lbu $t5, 18($s0)
    or $s5, $s5, $t5
    sll $s5, $s5, 8
    lbu $t5, 19($s0)
    or $s5, $s5, $t5
    # trie walk: $t6 = node index, $s6 = best route word, $t9 = bits left
    la $t7, trie
    move $t6, $zero
    move $s6, $zero
    li $t9, 32
walk:
    sll $t8, $t6, 3           # node offset = index * 12
    sll $t5, $t6, 2
    addu $t8, $t8, $t5
    addu $t8, $t7, $t8
    lw $t5, 8($t8)            # route word at this node
    beqz $t5, no_route_here
    move $s6, $t5
no_route_here:
    beqz $t9, walk_done
    srl $t5, $s5, 31          # next address bit (MSB first)
    sll $s5, $s5, 1
    beqz $t5, go_left
    lw $t6, 4($t8)
    b child_check
go_left:
    lw $t6, 0($t8)
child_check:
    addiu $t9, $t9, -1
    li $t5, 0xFFFFFFFF
    bne $t6, $t5, walk
walk_done:
    beqz $s6, drop            # no covering route
    addiu $t5, $s6, -1        # egress port
    li $t8, 0xFFFF0014        # PKT_OUT_PORT
    sw $t5, 0($t8)
    # forward: copy, TTL--, checksum
    move $t6, $zero
copy:
    addu $t7, $s0, $t6
    lbu $t8, 0($t7)
    addu $t7, $s1, $t6
    sb $t8, 0($t7)
    addiu $t6, $t6, 1
    bne $t6, $s2, copy
    lbu $t5, 8($s1)
    addiu $t5, $t5, -1
    sb $t5, 8($s1)
    sb $zero, 10($s1)
    sb $zero, 11($s1)
    move $t6, $zero
    move $t7, $zero
cksum:
    addu $t8, $s1, $t6
    lbu $t9, 0($t8)
    sll $t9, $t9, 8
    lbu $t8, 1($t8)
    or $t9, $t9, $t8
    addu $t7, $t7, $t9
    addiu $t6, $t6, 2
    blt $t6, $s3, cksum
fold:
    srl $t8, $t7, 16
    beqz $t8, folded
    andi $t7, $t7, 0xFFFF
    addu $t7, $t7, $t8
    b fold
folded:
    nor $t7, $t7, $zero
    andi $t7, $t7, 0xFFFF
    srl $t8, $t7, 8
    sb $t8, 10($s1)
    sb $t7, 11($s1)
    li $t0, 0xFFFF0004        # PKT_OUT_COMMIT
    sw $s2, 0($t0)
drop:
    jr $ra

.data
trie:
)";
  // Emit the compiled trie as .word triplets.
  std::vector<std::uint8_t> image = table.compile();
  for (std::size_t off = 0; off + 12 <= image.size(); off += 12) {
    os << "    .word 0x" << std::hex << util::load_le32(image.data() + off)
       << ", 0x" << util::load_le32(image.data() + off + 4) << ", 0x"
       << util::load_le32(image.data() + off + 8) << std::dec << "\n";
  }
  return os.str();
}

isa::Program build_ipv4_router(const RoutingTable& table) {
  isa::AsmOptions options;
  options.name = "ipv4-router";
  return isa::assemble(ipv4_router_source(table), options);
}

}  // namespace sdmmon::net
