// IPv4 and UDP packet construction/parsing for the workload generators and
// for crafting attack packets. The NP applications receive the raw IPv4
// packet at the start of the receive buffer (the prototype's Ethernet
// framing is stripped by the MAC before dispatch).
#ifndef SDMMON_NET_PACKET_HPP
#define SDMMON_NET_PACKET_HPP

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace sdmmon::net {

/// One IPv4 option TLV (type, then length covering the whole TLV).
struct Ipv4Option {
  std::uint8_t type = 0;
  util::Bytes data;  // option payload (TLV length = data.size() + 2)
};

struct Ipv4Packet {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;  // UDP by default
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<Ipv4Option> options;
  util::Bytes payload;

  /// Header length in bytes (20 + padded options).
  std::size_t header_len() const;

  /// Serialize with a correct header checksum.
  util::Bytes to_bytes() const;

  /// Parse; returns nullopt on malformed input (short, bad version/IHL).
  /// Does not require a valid checksum (callers check separately).
  static std::optional<Ipv4Packet> parse(std::span<const std::uint8_t> bytes);
};

/// RFC 791 header checksum over `header` (must be 16-bit aligned length).
std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header);

/// True if the embedded checksum field validates.
bool ipv4_checksum_ok(std::span<const std::uint8_t> packet);

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  util::Bytes payload;

  /// Serialize with length set and checksum zero (optional in IPv4).
  util::Bytes to_bytes() const;
  static std::optional<UdpDatagram> parse(std::span<const std::uint8_t> bytes);
};

/// Convenience: UDP-in-IPv4 with sensible defaults.
util::Bytes make_udp_packet(std::uint32_t src, std::uint32_t dst,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t ttl = 64);

/// Dotted-quad helper for readable tests: ip(10,0,0,1).
constexpr std::uint32_t ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                           std::uint8_t d) {
  return static_cast<std::uint32_t>(a) << 24 |
         static_cast<std::uint32_t>(b) << 16 |
         static_cast<std::uint32_t>(c) << 8 | d;
}

}  // namespace sdmmon::net

#endif  // SDMMON_NET_PACKET_HPP
