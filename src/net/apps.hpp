// Packet-processing applications for the NP core, written in the MIPS
// subset and assembled by isa::assemble. These are the workloads the
// paper's system installs and monitors:
//
//  * ipv4-forward  -- header validation, TTL decrement, checksum rewrite.
//  * ipv4-cm       -- the paper's "IPv4+CM" (congestion management): adds
//                     ECN congestion marking and a CM state option parser
//                     with a DELIBERATE unchecked copy into a fixed stack
//                     buffer. A crafted option overwrites the saved return
//                     address -- the data-plane code-injection attack of
//                     Chasaki & Wolf that the hardware monitor catches.
//  * udp-echo      -- swaps addresses/ports and echoes the datagram.
//  * firewall      -- drops UDP packets whose destination port is in a
//                     configured block list, forwards everything else.
//
// All apps read the packet at np::kPktInBase, write output at
// np::kPktOutBase, and commit/drop through the MMIO registers.
#ifndef SDMMON_NET_APPS_HPP
#define SDMMON_NET_APPS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace sdmmon::net {

/// Assembly source of each app (exposed for docs, tests, and examples).
std::string ipv4_forward_source();
std::string ipv4_cm_source();
std::string udp_echo_source();
std::string firewall_source(const std::vector<std::uint16_t>& blocked_ports);
std::string flow_stats_source();
std::string loop_forward_source();

isa::Program build_ipv4_forward();
isa::Program build_ipv4_cm();
isa::Program build_udp_echo();
isa::Program build_firewall(const std::vector<std::uint16_t>& blocked_ports);

/// loop-forward: the branchiest workload in the mix -- a minimal
/// forwarder whose entire runtime is a 6-instruction byte-copy loop
/// (load, store, bump, backward bne) plus a short commit tail. Built to
/// isolate the trace tier's advantage over block fusion: block-fused
/// dispatch stops at the loop-back branch every 6 ops, while trace
/// dispatch unrolls the predicted-taken loop to the 255-op cap and
/// side-exits once per packet at loop exit (bench/core_predecode X1c).
isa::Program build_loop_forward();

/// flow-stats: forwards like ipv4-forward, additionally counting packets
/// per flow in a 256-bucket table in data RAM (persistent across packets;
/// wiped by attack-recovery full resets). Symbols `total_count` and
/// `flow_table` locate the counters for host-side readout.
isa::Program build_flow_stats();

/// Bucket index the flow-stats app computes for a src/dst pair
/// (xor-folded to 8 bits) -- the host-side oracle for tests.
std::uint8_t flow_stats_bucket(std::uint32_t src, std::uint32_t dst);

std::string ipip_encap_source(std::uint32_t tunnel_src,
                              std::uint32_t tunnel_dst);
std::string ipip_decap_source();

/// ipip-encap: wraps every valid IPv4 packet in an outer IPv4 header
/// (protocol 4, RFC 2003) addressed tunnel_src -> tunnel_dst, with a
/// correct outer checksum. The inner packet is carried unmodified.
isa::Program build_ipip_encap(std::uint32_t tunnel_src,
                              std::uint32_t tunnel_dst);

/// ipip-decap: strips the outer header of protocol-4 packets and emits
/// the inner packet; non-tunnel traffic is forwarded unchanged (with TTL
/// decrement and checksum rewrite).
isa::Program build_ipip_decap();

/// IPv4 option type the ipv4-cm app treats as "congestion state".
constexpr std::uint8_t kCmOptionType = 0x88;

/// Byte offset of the vulnerable handler's stack buffer to its saved $ra:
/// option data bytes [kCmRaOffset, kCmRaOffset+4) overwrite the return
/// address. Used by the attack crafter.
constexpr std::size_t kCmRaOffset = 28;

}  // namespace sdmmon::net

#endif  // SDMMON_NET_APPS_HPP
