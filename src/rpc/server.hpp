// Device-side control-plane server: a long-running concurrent TCP server
// that fronts one NetworkProcessorDevice's control processor, speaking
// the framed wire protocol (rpc/wire.hpp + rpc/messages.hpp) so many
// operator sessions can install, rotate parameters, pull metrics
// snapshots, and stream journal events over real sockets while the
// MPSoC keeps serving packet load.
//
// Design:
//  * Thread-per-connection. Control-plane traffic is a handful of
//    operator consoles, not a packet path; a blocking thread per session
//    is simpler to prove correct (TSan runs the torture suite) than an
//    epoll state machine, and the session cap bounds the thread count.
//  * One DeviceHost serializes every control action against the device
//    and every pumped packet batch -- NetworkProcessorDevice was built
//    single-threaded and stays that way; the mutex is the explicit
//    device-ownership boundary. Metrics snapshots bypass the device lock
//    entirely (the obs Registry is already thread-safe), so monitoring
//    never waits behind a multi-second install.
//  * Session auth rides the existing chain of trust: the server issues a
//    fresh challenge per session, the client signs it with the operator
//    key, and the server verifies the operator certificate against the
//    manufacturer root -- the same root the device uses to accept
//    install packages. No new key material, no new trust assumptions.
//  * Per-session request-id dedup: the server caches the response to the
//    last request id and replays it verbatim when the same id arrives
//    again. An operator that timed out waiting for a reply retries the
//    SAME id and gets the cached verdict instead of triggering a
//    duplicate install -- the partial-delivery edge the in-process
//    LossyChannel model hides (reply lost => blind re-send) and a real
//    socket transport exposes.
//  * Graceful drain: stop() closes the listener, wakes every blocked
//    session read, lets in-flight requests complete and flush their
//    responses, and joins all threads before returning.
#ifndef SDMMON_RPC_SERVER_HPP
#define SDMMON_RPC_SERVER_HPP

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/drbg.hpp"
#include "obs/obs.hpp"
#include "rpc/messages.hpp"
#include "rpc/socket.hpp"
#include "rpc/wire.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/workload.hpp"
#include "util/fault.hpp"

namespace sdmmon::rpc {

/// Serialized ownership of one NetworkProcessorDevice shared between RPC
/// session threads (installs) and a data-plane load generator (packet
/// pumping). The registry is attached to the device's MPSoC at
/// construction, so np.* engine metrics and rpc.* server metrics land in
/// one snapshot_json() document.
class DeviceHost {
 public:
  DeviceHost(protocol::NetworkProcessorDevice& device,
             obs::Registry& registry);

  const std::string& device_name() const { return name_; }
  obs::Registry& registry() { return registry_; }

  /// Control-plane install (serialized wire bytes), under the device lock.
  protocol::InstallStatus install_bytes(std::span<const std::uint8_t> bytes,
                                        std::uint64_t now);

  /// Data-plane: process one packet under the device lock.
  np::PacketResult process_packet(std::span<const std::uint8_t> packet,
                                  std::uint32_t flow_key = 0);

  /// Pump a batch of workload items through the device under ONE lock
  /// acquisition -- the load generator's path. Batching keeps lock
  /// traffic off the per-packet path while still letting control
  /// requests interleave between batches. Returns items processed.
  std::size_t pump(std::span<const protocol::WorkItem> items);

  /// Packets processed via this host (pump + process_packet).
  std::uint64_t packets() const {
    return packets_.load(std::memory_order_relaxed);
  }

  /// Metrics snapshot; does NOT take the device lock (Registry is
  /// thread-safe), so monitoring stays responsive during installs.
  std::string metrics_json() const { return registry_.snapshot_json(); }

  /// Journal events at or after `cursor` (an EventJournal::recorded()
  /// value), at most kMaxJournalEvents per poll.
  JournalPayload journal_since(std::uint64_t cursor) const;

 private:
  mutable std::mutex mu_;
  protocol::NetworkProcessorDevice& device_;
  obs::Registry& registry_;
  std::string name_;
  std::atomic<std::uint64_t> packets_{0};
};

struct ServerOptions {
  /// 0 = ephemeral port; read the bound one back via RpcServer::port().
  std::uint16_t port = 0;
  /// Hard cap on concurrent sessions; further connections are refused
  /// with a TooManySessions error frame and closed.
  std::size_t max_sessions = 32;
  /// Seed for per-session auth challenges (deterministic for tests).
  std::string challenge_seed = "rpc-challenge";
  /// Reply-path fault injection (borrowed): when set, every response
  /// frame consults drop_message() and a dropped reply is simply never
  /// written -- the request WAS executed. This models "frame delivered,
  /// response lost", the case request-id dedup exists for; tests and the
  /// torture bench wire a seeded injector here.
  util::FaultInjector* reply_faults = nullptr;
};

/// Cached rpc.* metric handles (always recorded: the control plane is a
/// cold path, so these are not gated by SDMMON_OBS like the per-packet
/// instrumentation).
struct RpcObs {
  obs::Counter* sessions_opened = nullptr;
  obs::Gauge* sessions_active = nullptr;
  obs::Counter* sessions_refused = nullptr;
  obs::Counter* auth_failures = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Counter* frames_rejected = nullptr;
  obs::Counter* dedup_replays = nullptr;
  obs::Counter* installs = nullptr;
  obs::Counter* rotations = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Histogram* request_ns = nullptr;
  obs::EventJournal* journal = nullptr;

  static RpcObs create(obs::Registry& registry);
};

class RpcServer {
 public:
  RpcServer(DeviceHost& host, crypto::RsaPublicKey manufacturer_root,
            ServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Bind, listen, and spawn the accept loop. False if the port could
  /// not be bound.
  bool start();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  /// Graceful drain: refuse new connections, wake blocked session reads,
  /// finish in-flight requests (responses are flushed), join every
  /// thread. Idempotent.
  void stop();

  /// Sessions accepted over the server's lifetime.
  std::uint64_t sessions_served() const {
    return sessions_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    std::uint64_t id = 0;
    TcpStream stream;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void session_loop(Session& session);
  void reap_finished_locked();

  /// False when the response was suppressed by reply_faults (the caller
  /// must still treat the request as executed) or the write failed.
  bool send_frame(Session& session, MsgType type, std::uint64_t request_id,
                  const util::Bytes& payload, util::Bytes* cache);
  void send_error(Session& session, std::uint64_t request_id,
                  RpcErrorCode code, const std::string& message);

  DeviceHost& host_;
  crypto::RsaPublicKey root_;
  ServerOptions options_;
  RpcObs obs_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> sessions_served_{0};
  std::atomic<std::uint64_t> next_session_id_{1};

  std::mutex challenge_mu_;
  crypto::Drbg challenge_drbg_;

  std::mutex reply_faults_mu_;  // FaultInjector is not thread-safe
};

}  // namespace sdmmon::rpc

#endif  // SDMMON_RPC_SERVER_HPP
