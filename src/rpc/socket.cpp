#include "rpc/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sdmmon::rpc {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<TcpStream> TcpStream::connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  // Control-plane exchanges are small request/response frames; Nagle
  // coalescing only adds latency here.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(fd);
}

bool TcpStream::send_all(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write is a return code, not
    // a process-killing SIGPIPE.
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int TcpStream::recv_some(std::span<std::uint8_t> out) {
  if (fd_ < 0) return -1;
  for (;;) {
    ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<int>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

void TcpStream::set_recv_timeout_ms(std::uint32_t ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void TcpStream::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

std::optional<TcpListener> TcpListener::listen(std::uint16_t port,
                                               int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // shut down or fatal error: accept loop exits
  }
}

void TcpListener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sdmmon::rpc
