// Typed payloads for the control-plane RPC verbs (rpc/wire.hpp carries
// them as opaque frame payloads). Every struct round-trips through
// encode()/decode() over util::ByteWriter/ByteReader; decode() throws
// util::DecodeError on any malformation -- truncated fields, trailing
// garbage, out-of-range enums, or a field exceeding its cap -- so a
// server can treat "payload failed to decode" uniformly as a BadRequest
// without crashing on adversarial bytes.
#ifndef SDMMON_RPC_MESSAGES_HPP
#define SDMMON_RPC_MESSAGES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "util/bytes.hpp"

namespace sdmmon::rpc {

/// Per-field caps, below the frame-level payload cap, so one lying inner
/// length cannot make the decoder buffer unbounded data.
inline constexpr std::size_t kMaxNameBytes = 256;
inline constexpr std::size_t kMaxCertBytes = 64u << 10;    // 64 KiB
inline constexpr std::size_t kMaxSignatureBytes = 4u << 10;
inline constexpr std::size_t kMaxChallengeBytes = 64;
inline constexpr std::size_t kMaxDetailBytes = 1u << 10;
inline constexpr std::size_t kMaxJournalEvents = 4096;

/// Server -> client greeting, sent unsolicited on connect (request id 0).
/// The challenge is a fresh per-session nonce; the client must sign
/// (challenge || device_name) with the operator key to authenticate, so a
/// captured Auth message cannot be replayed on another session or device.
struct HelloPayload {
  std::string device_name;
  util::Bytes challenge;  // 32 bytes in practice; cap kMaxChallengeBytes

  util::Bytes encode() const;
  static HelloPayload decode(std::span<const std::uint8_t> bytes);
};

/// Client -> server session authentication: the operator certificate
/// (chains to the manufacturer root the device already trusts -- the same
/// chain that authorizes install packages) plus an RSA signature over
/// (challenge || device_name). `now` is the operator's campaign clock,
/// used for the certificate validity window exactly like install time in
/// the in-process protocol.
struct AuthPayload {
  util::Bytes cert;       // serialized crypto::Certificate
  util::Bytes signature;  // rsa_sign(op_priv, challenge || device_name)
  std::uint64_t now = 0;

  util::Bytes encode() const;
  static AuthPayload decode(std::span<const std::uint8_t> bytes);
};

struct AuthResultPayload {
  bool ok = false;
  std::string detail;  // cert/signature failure reason when !ok

  util::Bytes encode() const;
  static AuthResultPayload decode(std::span<const std::uint8_t> bytes);
};

/// Why an install was requested; the device treats both identically (a
/// rotation *is* a fresh sealed package), the tag only labels audit
/// trails and metrics on the server side.
enum class InstallPurpose : std::uint8_t { Deploy = 0, Rotate = 1 };

/// Client -> server: one sealed WirePackage, as serialized bytes. The
/// server hands them to NetworkProcessorDevice::install_bytes, which
/// already treats damage as CorruptPackage -- the RPC layer adds no trust.
struct InstallPayload {
  InstallPurpose purpose = InstallPurpose::Deploy;
  std::uint64_t now = 0;  // operator campaign time for cert validity
  util::Bytes package;    // WirePackage::serialize() bytes

  util::Bytes encode() const;
  static InstallPayload decode(std::span<const std::uint8_t> bytes);
};

struct InstallResultPayload {
  /// protocol::InstallStatus, carried as its wire value. Kept as a raw
  /// byte here so rpc/messages stays decoupled from sdmmon/entities; the
  /// client re-types it.
  std::uint8_t install_status = 0;

  util::Bytes encode() const;
  static InstallResultPayload decode(std::span<const std::uint8_t> bytes);
};

/// Client -> server: poll journal events at or after `cursor` (a value of
/// EventJournal::recorded(); 0 = from the oldest retained event).
struct GetJournalPayload {
  std::uint64_t cursor = 0;

  util::Bytes encode() const;
  static GetJournalPayload decode(std::span<const std::uint8_t> bytes);
};

/// Server -> client: the retained events from `cursor` on. `dropped`
/// counts events the bounded ring evicted before the client polled --
/// the client knows its stream has a gap instead of silently missing
/// history. `next_cursor` feeds the next poll; polling in a loop streams
/// the journal.
struct JournalPayload {
  std::uint64_t next_cursor = 0;
  std::uint64_t dropped = 0;
  std::vector<obs::Event> events;

  util::Bytes encode() const;
  static JournalPayload decode(std::span<const std::uint8_t> bytes);
};

struct MetricsPayload {
  std::string json;  // Registry::snapshot_json()

  util::Bytes encode() const;
  static MetricsPayload decode(std::span<const std::uint8_t> bytes);
};

/// Health probe; allowed before authentication (it leaks only liveness
/// and the public packet counter, both observable from traffic anyway).
struct PingPayload {
  std::uint64_t nonce = 0;

  util::Bytes encode() const;
  static PingPayload decode(std::span<const std::uint8_t> bytes);
};

struct PongPayload {
  std::uint64_t nonce = 0;          // echoed
  std::uint64_t packets = 0;        // device packets processed so far
  std::uint64_t sessions = 0;       // currently open RPC sessions

  util::Bytes encode() const;
  static PongPayload decode(std::span<const std::uint8_t> bytes);
};

/// Typed refusal codes (ErrorPayload.code).
enum class RpcErrorCode : std::uint16_t {
  BadRequest = 1,       // payload failed to decode / wrong type sequence
  NotAuthorized = 2,    // verb requires an authenticated session
  TooManySessions = 3,  // server at its session cap
  Draining = 4,         // server is shutting down; no new work accepted
  Internal = 5,
};

const char* rpc_error_code_name(RpcErrorCode code);

struct ErrorPayload {
  RpcErrorCode code = RpcErrorCode::Internal;
  std::string message;

  util::Bytes encode() const;
  static ErrorPayload decode(std::span<const std::uint8_t> bytes);
};

}  // namespace sdmmon::rpc

#endif  // SDMMON_RPC_MESSAGES_HPP
