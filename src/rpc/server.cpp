#include "rpc/server.hpp"

#include <array>
#include <chrono>

#include "crypto/cert.hpp"
#include "obs/names.hpp"
#include "util/log.hpp"

namespace sdmmon::rpc {

DeviceHost::DeviceHost(protocol::NetworkProcessorDevice& device,
                       obs::Registry& registry)
    : device_(device), registry_(registry), name_(device.name()) {
  // One registry carries both the engine's np.* metrics and the server's
  // rpc.* metrics, so a single snapshot_json() answers "what is this
  // device doing" end to end. No-op when SDMMON_OBS=OFF.
  device_.mpsoc().enable_obs(registry_);
}

protocol::InstallStatus DeviceHost::install_bytes(
    std::span<const std::uint8_t> bytes, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  return device_.install_bytes(bytes, now);
}

np::PacketResult DeviceHost::process_packet(
    std::span<const std::uint8_t> packet, std::uint32_t flow_key) {
  std::lock_guard<std::mutex> lock(mu_);
  packets_.fetch_add(1, std::memory_order_relaxed);
  return device_.process_packet(packet, flow_key);
}

std::size_t DeviceHost::pump(std::span<const protocol::WorkItem> items) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const protocol::WorkItem& item : items) {
    device_.process_packet(item.packet, item.flow_key);
  }
  packets_.fetch_add(items.size(), std::memory_order_relaxed);
  return items.size();
}

JournalPayload DeviceHost::journal_since(std::uint64_t cursor) const {
  JournalPayload out;
  std::uint64_t recorded = 0;
  std::vector<obs::Event> events =
      registry_.journal().events_and_recorded(recorded);
  const std::uint64_t first = recorded - events.size();
  out.next_cursor = recorded;
  if (cursor >= recorded) {
    out.next_cursor = recorded;
    return out;  // nothing new
  }
  std::uint64_t start = cursor;
  if (cursor < first) {
    out.dropped = first - cursor;  // evicted before the client polled
    start = first;
  }
  const std::size_t offset = static_cast<std::size_t>(start - first);
  const std::size_t count =
      std::min(events.size() - offset, kMaxJournalEvents);
  out.events.assign(events.begin() + static_cast<std::ptrdiff_t>(offset),
                    events.begin() +
                        static_cast<std::ptrdiff_t>(offset + count));
  out.next_cursor = start + count;
  return out;
}

RpcObs RpcObs::create(obs::Registry& registry) {
  RpcObs obs;
  obs.sessions_opened = &registry.counter(obs::names::kRpcSessionsOpened);
  obs.sessions_active = &registry.gauge(obs::names::kRpcSessionsActive);
  obs.sessions_refused =
      &registry.counter(obs::names::kRpcSessionsRefused);
  obs.auth_failures = &registry.counter(obs::names::kRpcAuthFailures);
  obs.requests = &registry.counter(obs::names::kRpcRequests);
  obs.errors = &registry.counter(obs::names::kRpcErrors);
  obs.frames_rejected = &registry.counter(obs::names::kRpcFramesRejected);
  obs.dedup_replays = &registry.counter(obs::names::kRpcDedupReplays);
  obs.installs = &registry.counter(obs::names::kRpcInstalls);
  obs.rotations = &registry.counter(obs::names::kRpcRotations);
  obs.bytes_in = &registry.counter(obs::names::kRpcBytesIn);
  obs.bytes_out = &registry.counter(obs::names::kRpcBytesOut);
  obs.request_ns = &registry.histogram(obs::names::kRpcRequestNs,
                                       obs::latency_ns_buckets());
  obs.journal = &registry.journal();
  return obs;
}

RpcServer::RpcServer(DeviceHost& host, crypto::RsaPublicKey manufacturer_root,
                     ServerOptions options)
    : host_(host),
      root_(std::move(manufacturer_root)),
      options_(std::move(options)),
      obs_(RpcObs::create(host.registry())),
      challenge_drbg_(options_.challenge_seed) {}

RpcServer::~RpcServer() { stop(); }

bool RpcServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  auto listener = TcpListener::listen(options_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  util::log_info("rpc: serving device '", host_.device_name(), "' on 127.0.0.1:",
                 port_);
  return true;
}

void RpcServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  // Refuse new connections, then wake every blocked session read. Session
  // threads finish the request they are executing (responses flush: only
  // the read side is shut down) and exit their loops.
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& session : sessions_) session->stream.shutdown_read();
  for (auto& session : sessions_) {
    if (session->thread.joinable()) session->thread.join();
  }
  sessions_.clear();
}

void RpcServer::reap_finished_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void RpcServer::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    std::optional<TcpStream> stream = listener_.accept();
    if (!stream) break;  // listener shut down (stop()) or fatal error
    std::lock_guard<std::mutex> lock(sessions_mu_);
    reap_finished_locked();
    if (draining_.load(std::memory_order_acquire)) break;
    if (sessions_.size() >= options_.max_sessions) {
      obs_.sessions_refused->add(1);
      ErrorPayload err{RpcErrorCode::TooManySessions,
                       "server at session capacity"};
      stream->send_all(
          encode_frame({MsgType::Error, 0, err.encode()}));
      continue;  // stream destructor closes the refused connection
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    session->stream = std::move(*stream);
    Session* raw = session.get();
    sessions_served_.fetch_add(1, std::memory_order_relaxed);
    session->thread = std::thread([this, raw] { session_loop(*raw); });
    sessions_.push_back(std::move(session));
  }
}

bool RpcServer::send_frame(Session& session, MsgType type,
                           std::uint64_t request_id,
                           const util::Bytes& payload, util::Bytes* cache) {
  util::Bytes bytes = encode_frame({type, request_id, payload});
  // The dedup cache is filled BEFORE the reply-fault decision: a reply
  // that never reached the wire must still be replayable, because the
  // request it answers was executed.
  if (cache != nullptr) *cache = bytes;
  if (options_.reply_faults != nullptr) {
    std::lock_guard<std::mutex> lock(reply_faults_mu_);
    if (options_.reply_faults->drop_message()) return false;
  }
  if (!session.stream.send_all(bytes)) return false;
  obs_.bytes_out->add(bytes.size());
  return true;
}

void RpcServer::send_error(Session& session, std::uint64_t request_id,
                           RpcErrorCode code, const std::string& message) {
  obs_.errors->add(1);
  obs_.journal->record({obs::EventKind::RpcRejected, obs_.requests->value(),
                        obs::kAllCores,
                        static_cast<std::uint32_t>(session.id),
                        static_cast<std::uint64_t>(code)});
  ErrorPayload err{code, message};
  send_frame(session, MsgType::Error, request_id, err.encode(), nullptr);
}

void RpcServer::session_loop(Session& session) {
  obs_.sessions_opened->add(1);
  obs_.sessions_active->add(1);
  obs_.journal->record({obs::EventKind::RpcSessionOpened,
                        obs_.requests->value(), obs::kAllCores,
                        static_cast<std::uint32_t>(session.id), 0});

  // Greeting + per-session auth challenge. The challenge binds the Auth
  // signature to this session (fresh nonce) and this device (name mixed
  // into the signed message).
  HelloPayload hello;
  hello.device_name = host_.device_name();
  {
    std::lock_guard<std::mutex> lock(challenge_mu_);
    hello.challenge = challenge_drbg_.bytes(32);
  }
  bool alive =
      session.stream.send_all(encode_frame({MsgType::Hello, 0, hello.encode()}));

  FrameDecoder decoder;
  std::array<std::uint8_t, 4096> buf;
  bool authed = false;
  std::uint64_t requests_served = 0;
  // Per-session request-id dedup: last response frame, replayed verbatim
  // when the operator retries the same request id after a lost reply.
  std::uint64_t last_id = 0;
  util::Bytes last_response;
  bool have_last = false;

  while (alive) {
    Frame frame;
    FrameDecoder::Status status = decoder.poll(frame);
    if (status == FrameDecoder::Status::NeedMore) {
      int n = session.stream.recv_some(buf);
      if (n <= 0) break;  // EOF, drain wake-up, timeout, or error
      obs_.bytes_in->add(static_cast<std::uint64_t>(n));
      decoder.feed(std::span<const std::uint8_t>(buf.data(),
                                                 static_cast<std::size_t>(n)));
      continue;
    }
    if (status == FrameDecoder::Status::Failed) {
      // Framing damage is unrecoverable on a stream: log, count, drop the
      // connection. The operator's retry logic reconnects.
      obs_.frames_rejected->add(1);
      obs_.journal->record(
          {obs::EventKind::RpcRejected, obs_.requests->value(),
           obs::kAllCores, static_cast<std::uint32_t>(session.id),
           100 + static_cast<std::uint64_t>(decoder.error())});
      break;
    }

    obs_.requests->add(1);
    ++requests_served;
    const auto t0 = std::chrono::steady_clock::now();

    if (have_last && frame.request_id == last_id) {
      // Idempotent retry: the operator never saw our reply and re-sent
      // the same request id. Replay the cached response; do NOT execute
      // the request again (a duplicate install would burn a sequence
      // number and pointlessly re-image the cores).
      obs_.dedup_replays->add(1);
      bool drop = false;
      if (options_.reply_faults != nullptr) {
        std::lock_guard<std::mutex> lock(reply_faults_mu_);
        drop = options_.reply_faults->drop_message();
      }
      if (!drop && session.stream.send_all(last_response)) {
        obs_.bytes_out->add(last_response.size());
      }
      continue;
    }

    try {
      switch (frame.type) {
        case MsgType::Auth: {
          AuthPayload auth = AuthPayload::decode(frame.payload);
          AuthResultPayload result;
          try {
            crypto::Certificate cert =
                crypto::Certificate::deserialize(auth.cert);
            crypto::CertStatus cert_status = crypto::verify_certificate(
                cert, root_, auth.now, crypto::CertRole::NetworkOperator);
            if (cert_status != crypto::CertStatus::Ok) {
              result.detail = std::string("certificate ") +
                              crypto::cert_status_name(cert_status);
            } else {
              util::Bytes message = hello.challenge;
              message.insert(message.end(), hello.device_name.begin(),
                             hello.device_name.end());
              if (!crypto::rsa_verify(cert.subject_key, message,
                                      auth.signature)) {
                result.detail = "bad challenge signature";
              } else {
                result.ok = true;
              }
            }
          } catch (const util::DecodeError&) {
            result.detail = "bad certificate encoding";
          }
          if (!result.ok) {
            obs_.auth_failures->add(1);
            obs_.journal->record(
                {obs::EventKind::RpcRejected, obs_.requests->value(),
                 obs::kAllCores, static_cast<std::uint32_t>(session.id),
                 static_cast<std::uint64_t>(RpcErrorCode::NotAuthorized)});
          }
          authed = result.ok;
          send_frame(session, MsgType::AuthResult, frame.request_id,
                     result.encode(), nullptr);
          // A failed auth closes the session: the peer holds no
          // credentials worth keeping a thread parked for.
          if (!result.ok) alive = false;
          break;
        }
        case MsgType::Install: {
          if (!authed) {
            send_error(session, frame.request_id,
                       RpcErrorCode::NotAuthorized,
                       "install requires an authenticated session");
            break;
          }
          InstallPayload install = InstallPayload::decode(frame.payload);
          if (install.purpose == InstallPurpose::Rotate) {
            obs_.rotations->add(1);
          } else {
            obs_.installs->add(1);
          }
          InstallResultPayload result;
          result.install_status = static_cast<std::uint8_t>(
              host_.install_bytes(install.package, install.now));
          last_id = frame.request_id;
          have_last = true;
          send_frame(session, MsgType::InstallResult, frame.request_id,
                     result.encode(), &last_response);
          break;
        }
        case MsgType::GetMetrics: {
          if (!authed) {
            send_error(session, frame.request_id,
                       RpcErrorCode::NotAuthorized,
                       "metrics require an authenticated session");
            break;
          }
          MetricsPayload metrics;
          metrics.json = host_.metrics_json();
          last_id = frame.request_id;
          have_last = true;
          send_frame(session, MsgType::Metrics, frame.request_id,
                     metrics.encode(), &last_response);
          break;
        }
        case MsgType::GetJournal: {
          if (!authed) {
            send_error(session, frame.request_id,
                       RpcErrorCode::NotAuthorized,
                       "journal requires an authenticated session");
            break;
          }
          GetJournalPayload get = GetJournalPayload::decode(frame.payload);
          JournalPayload journal = host_.journal_since(get.cursor);
          last_id = frame.request_id;
          have_last = true;
          send_frame(session, MsgType::Journal, frame.request_id,
                     journal.encode(), &last_response);
          break;
        }
        case MsgType::Ping: {
          PingPayload ping = PingPayload::decode(frame.payload);
          PongPayload pong;
          pong.nonce = ping.nonce;
          pong.packets = host_.packets();
          pong.sessions = static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, obs_.sessions_active->value()));
          send_frame(session, MsgType::Pong, frame.request_id,
                     pong.encode(), nullptr);
          break;
        }
        case MsgType::Goodbye: {
          send_frame(session, MsgType::GoodbyeAck, frame.request_id, {},
                     nullptr);
          alive = false;
          break;
        }
        default:
          // Server-to-client types arriving at the server are a protocol
          // violation, answered (not crashed on) and survivable.
          send_error(session, frame.request_id, RpcErrorCode::BadRequest,
                     std::string("unexpected frame type ") +
                         msg_type_name(frame.type));
          break;
      }
    } catch (const util::DecodeError& e) {
      // CRC-valid frame with a malformed payload: schema mismatch or an
      // attacker probing the codec. Typed refusal, session survives.
      send_error(session, frame.request_id, RpcErrorCode::BadRequest,
                 e.what());
    }

    const auto t1 = std::chrono::steady_clock::now();
    obs_.request_ns->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }

  decoder.finish();
  // Signal closure to the peer now -- the descriptor itself is released
  // later by the owner (reap/stop), so this cannot race a blocked read.
  session.stream.shutdown_both();
  obs_.sessions_active->add(-1);
  obs_.journal->record({obs::EventKind::RpcSessionClosed,
                        obs_.requests->value(), obs::kAllCores,
                        static_cast<std::uint32_t>(session.id),
                        requests_served});
  session.done.store(true, std::memory_order_release);
}

}  // namespace sdmmon::rpc
