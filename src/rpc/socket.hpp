// Thin RAII wrappers over POSIX loopback TCP for the control-plane RPC
// server. Deliberately minimal: IPv4 on 127.0.0.1 only (the server fronts
// one device's control processor; production deployments would terminate
// an authenticated tunnel in front of it), blocking I/O with an optional
// receive timeout, and explicit shutdown() so another thread can wake a
// blocked reader without racing the file descriptor's lifetime.
#ifndef SDMMON_RPC_SOCKET_HPP
#define SDMMON_RPC_SOCKET_HPP

#include <cstdint>
#include <optional>
#include <span>

#include "util/bytes.hpp"

namespace sdmmon::rpc {

/// One connected TCP stream. Movable, not copyable; the destructor
/// closes. shutdown_read()/shutdown_both() may be called from another
/// thread while this thread blocks in recv_some() -- they do not close
/// the descriptor, so there is no fd-reuse race; only the owner's
/// destructor (or close()) releases it.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { close(); }

  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Connect to 127.0.0.1:port. nullopt on failure.
  static std::optional<TcpStream> connect(std::uint16_t port);

  /// Write the whole span (handles short writes). False on any error --
  /// including EPIPE after the peer closed; callers treat it as a dead
  /// session, never a crash (SIGPIPE is suppressed per send).
  bool send_all(std::span<const std::uint8_t> bytes);

  /// Read up to out.size() bytes. >0 bytes read; 0 orderly EOF (or the
  /// read side was shut down); -1 error; -2 timeout (only with a receive
  /// timeout set).
  int recv_some(std::span<std::uint8_t> out);

  /// 0 disables the timeout (blocking reads).
  void set_recv_timeout_ms(std::uint32_t ms);

  /// Wake a reader blocked in recv_some (it returns 0). Sends still work.
  void shutdown_read();
  /// Wake reader and writer both.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket on 127.0.0.1. Port 0 asks the kernel for an ephemeral
/// port; port() reports the bound one.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen. nullopt on failure (port in use, no loopback, ...).
  static std::optional<TcpListener> listen(std::uint16_t port,
                                           int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Block until a connection arrives. nullopt when the listener was
  /// closed/shut down (the accept loop's exit signal) or on error.
  std::optional<TcpStream> accept();

  /// Wake a blocked accept() from another thread; accept returns nullopt.
  void shutdown();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace sdmmon::rpc

#endif  // SDMMON_RPC_SOCKET_HPP
