// Operator-side RPC client: a typed, blocking wrapper over one framed
// TCP session (connect -> Hello/challenge -> Auth -> verbs), plus
// SocketChannel, which plugs the socket transport underneath the
// existing FleetOperator campaigns.
//
// SocketChannel deliberately consumes an injected FaultInjector's
// decisions in EXACTLY the order LossyChannel does (request drop ->
// corrupt -> truncate -> delay -> clock skew -> reply drop), so a
// campaign driven over sockets with a given seed observes the same
// fault sequence as the in-process model -- that equality is what the
// differential test pins.
#ifndef SDMMON_RPC_CLIENT_HPP
#define SDMMON_RPC_CLIENT_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "rpc/messages.hpp"
#include "rpc/socket.hpp"
#include "rpc/wire.hpp"
#include "sdmmon/channel.hpp"
#include "util/fault.hpp"

namespace sdmmon::rpc {

class RpcClient {
 public:
  /// Connect to 127.0.0.1:port and consume the server's Hello (device
  /// name + auth challenge). nullopt on refusal (including a server at
  /// session capacity) or a malformed greeting.
  static std::optional<RpcClient> connect(std::uint16_t port);

  RpcClient(RpcClient&&) = default;
  RpcClient& operator=(RpcClient&&) = default;

  const std::string& device_name() const { return device_name_; }
  const util::Bytes& challenge() const { return challenge_; }

  /// The exact bytes the server expects signed: challenge || device_name.
  util::Bytes auth_message() const;

  /// Present a serialized operator certificate plus a signature over
  /// auth_message(). `now` is the operator's clock, used by the server
  /// for certificate validity. False on rejection (detail explains why;
  /// the server closes the session after a failed auth).
  bool authenticate(const util::Bytes& cert, const util::Bytes& signature,
                    std::uint64_t now, std::string* detail = nullptr);

  /// One install exchange; returns the device's InstallStatus as a raw
  /// byte, or nullopt when the transport failed / the server refused.
  std::optional<std::uint8_t> install(InstallPurpose purpose,
                                      const util::Bytes& package,
                                      std::uint64_t now);

  struct InstallRetryResult {
    bool delivered = false;
    std::uint8_t install_status = 0;
    std::size_t attempts = 0;
  };

  /// Install with idempotent retry: every attempt re-sends the SAME
  /// request id, so a reply lost in transit is answered from the
  /// server's dedup cache instead of re-executing the install. This is
  /// the socket-transport fix for the partial-delivery edge where the
  /// in-process model's blind retry installs twice.
  InstallRetryResult install_with_retry(InstallPurpose purpose,
                                        const util::Bytes& package,
                                        std::uint64_t now,
                                        std::size_t max_attempts = 4,
                                        std::uint32_t attempt_timeout_ms =
                                            1000);

  /// Full metrics snapshot (snapshot_json document) from the device.
  std::optional<std::string> metrics();

  /// Journal events at or after `cursor`; advance cursor to next_cursor
  /// and poll again to stream.
  std::optional<JournalPayload> journal(std::uint64_t cursor);

  /// Liveness probe (allowed pre-auth). Echoes `nonce`.
  std::optional<PongPayload> ping(std::uint64_t nonce);

  /// Polite close: Goodbye -> GoodbyeAck. The session is unusable after.
  bool goodbye();

  /// Receive timeout for responses; 0 blocks indefinitely.
  void set_timeout_ms(std::uint32_t ms) { stream_.set_recv_timeout_ms(ms); }

  bool connected() const { return connected_; }
  const std::string& last_error() const { return last_error_; }

 private:
  RpcClient() = default;

  /// Send one request frame and wait for `expect` (or Error) with the
  /// same request id; stale frames with other ids are discarded.
  bool call(MsgType type, const util::Bytes& payload, MsgType expect,
            Frame& response);
  /// Wait for a frame with `request_id`; -1 timeout, 0 fail, 1 ok.
  int read_response(std::uint64_t request_id, Frame& out);
  bool send_raw(const util::Bytes& frame_bytes);
  void fail(const std::string& why);

  TcpStream stream_;
  FrameDecoder decoder_;
  std::string device_name_;
  util::Bytes challenge_;
  std::uint64_t next_request_id_ = 1;
  bool connected_ = false;
  std::string last_error_;
};

/// A protocol::Channel that carries install exchanges over RPC sessions
/// -- FleetOperator campaigns run unchanged on top. Devices are routed
/// by name to registered ports; sessions are established (and
/// authenticated with the operator's certificate + key) lazily on first
/// use and reused across the campaign.
class SocketChannel : public protocol::Channel {
 public:
  /// `faults` (borrowed, optional) injects the LossyChannel fault model
  /// on top of the socket transport -- same decisions, same order, same
  /// seed => same campaign outcome as the in-process LossyChannel.
  explicit SocketChannel(protocol::NetworkOperator& op,
                         util::FaultInjector* faults = nullptr)
      : op_(op), faults_(faults) {}

  /// Route installs for `device_name` to a server on `port`.
  void add_endpoint(const std::string& device_name, std::uint16_t port);

  /// Tag subsequent installs for the rpc.installs vs rpc.rotations
  /// counters (metrics only; the wire package is identical).
  void set_purpose(InstallPurpose purpose) { purpose_ = purpose; }

  protocol::ChannelResult send_install(
      protocol::NetworkProcessorDevice& device,
      const protocol::WirePackage& wire, std::uint64_t now) override;

  /// The live authenticated session for a device (nullptr when none has
  /// been established yet); lets tests poke metrics/journal mid-campaign.
  RpcClient* client_for(const std::string& device_name);

  /// Drop every cached session (they Goodbye politely when possible).
  void disconnect_all();

 private:
  /// Lazily connect + authenticate; nullptr when unreachable/refused.
  RpcClient* ensure_client(const std::string& device_name,
                           std::uint64_t now);

  protocol::NetworkOperator& op_;
  util::FaultInjector* faults_;
  InstallPurpose purpose_ = InstallPurpose::Deploy;
  std::map<std::string, std::uint16_t> endpoints_;
  std::map<std::string, std::unique_ptr<RpcClient>> clients_;
};

}  // namespace sdmmon::rpc

#endif  // SDMMON_RPC_CLIENT_HPP
