// Framed wire protocol for the control-plane RPC server. The in-process
// protocol objects (WirePackage, metrics snapshots, journal events) never
// had to survive a byte stream; this layer gives them one: every message
// travels as a length-prefixed frame with a magic, a version, a type tag,
// a request id, a hard payload cap, and a CRC32 over the whole frame --
// so a flipped bit, a truncation, or a lying length field is a *typed
// decode error* at the receiver, never a crash, a hang, or an over-read
// (tests/rpc_codec_fuzz_test.cpp runs mutated frames under ASan/UBSan to
// hold the line).
//
// Frame layout (big-endian, docs/PROTOCOL.md "RPC wire frames"):
//
//   offset  size  field
//        0     4  magic       0x53444D31 ("SDM1")
//        4     1  version     kWireVersion (1)
//        5     1  type        MsgType
//        6     2  reserved    must be 0
//        8     8  request_id  echoed verbatim in the response frame
//       16     4  payload_len <= kMaxPayloadBytes
//       20     n  payload     message-specific (rpc/messages.hpp)
//     20+n     4  crc32       IEEE CRC32 over bytes [0, 20+n)
//
// The decoder is incremental (feed() arbitrary chunks, poll() complete
// frames) because TCP gives no message boundaries. Any violation latches
// the decoder into a failed state: a framing error on a stream is not
// recoverable -- the connection must be torn down.
#ifndef SDMMON_RPC_WIRE_HPP
#define SDMMON_RPC_WIRE_HPP

#include <cstdint>

#include "util/bytes.hpp"

namespace sdmmon::rpc {

inline constexpr std::uint32_t kMagic = 0x53444D31u;  // "SDM1"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kTrailerBytes = 4;  // crc32
/// Hard cap on one frame's payload. Install packages are tens of KB;
/// metrics snapshots a few hundred KB on a long-running device. Anything
/// claiming more is an attack or corruption, rejected before allocation.
inline constexpr std::size_t kMaxPayloadBytes = 4u << 20;  // 4 MiB

/// Every verb of the control-plane protocol. Request/response pairing is
/// by convention (Install -> InstallResult, ...); the Error type answers
/// any request the server refuses.
enum class MsgType : std::uint8_t {
  Hello = 1,        // server -> client greeting + auth challenge
  Auth = 2,         // client -> server: operator cert + challenge signature
  AuthResult = 3,
  Install = 4,      // sealed package bytes (deploy or rotation)
  InstallResult = 5,
  GetMetrics = 6,   // fetch Registry::snapshot_json()
  Metrics = 7,
  GetJournal = 8,   // poll journal events from a cursor
  Journal = 9,
  Ping = 10,        // health probe (allowed pre-auth)
  Pong = 11,
  Goodbye = 12,     // orderly session close
  GoodbyeAck = 13,
  Error = 14,       // typed refusal (rpc/messages.hpp ErrorPayload)
};
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::Error);

const char* msg_type_name(MsgType type);

/// One decoded frame. The payload is still opaque bytes at this layer;
/// rpc/messages.hpp gives it a typed shape.
struct Frame {
  MsgType type = MsgType::Error;
  std::uint64_t request_id = 0;
  util::Bytes payload;
};

/// Why a byte stream stopped being a frame stream.
enum class FrameError : std::uint8_t {
  None = 0,
  BadMagic,     // stream desynchronized or not speaking this protocol
  BadVersion,
  BadReserved,  // reserved field nonzero (future flags must not be guessed)
  BadType,      // type tag outside the MsgType range
  Oversized,    // payload_len exceeds the cap (length-field lie)
  BadCrc,       // header+payload checksum mismatch (bit damage)
  Truncated,    // peer closed mid-frame (finish() with bytes buffered)
};

const char* frame_error_name(FrameError error);

/// IEEE CRC32 (reflected, poly 0xEDB88320), the Ethernet/zlib polynomial.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Serialize one frame (header + payload + CRC). Throws std::length_error
/// if the payload exceeds kMaxPayloadBytes -- senders must respect the
/// cap they expect receivers to enforce.
util::Bytes encode_frame(const Frame& frame);

/// Incremental frame parser over an arbitrary chunking of the stream.
/// feed() appends bytes; poll() yields at most one complete frame per
/// call. Every validation failure latches the decoder (poll() keeps
/// returning Failed with the same error) because the stream position can
/// no longer be trusted.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  enum class Status : std::uint8_t {
    NeedMore,  // no complete frame buffered yet
    Ready,     // `out` holds the next frame
    Failed,    // stream is broken; see error()
  };

  void feed(std::span<const std::uint8_t> bytes);

  Status poll(Frame& out);

  /// Declare end-of-stream: leftover bytes that never completed a frame
  /// become a Truncated error. Idempotent.
  void finish();

  FrameError error() const { return error_; }
  bool failed() const { return error_ != FrameError::None; }
  std::size_t buffered() const { return buf_.size(); }
  /// Frames successfully decoded so far.
  std::uint64_t frames_decoded() const { return frames_; }

 private:
  Status fail(FrameError error) {
    error_ = error;
    return Status::Failed;
  }

  std::size_t max_payload_;
  util::Bytes buf_;
  FrameError error_ = FrameError::None;
  bool finished_ = false;
  std::uint64_t frames_ = 0;
};

}  // namespace sdmmon::rpc

#endif  // SDMMON_RPC_WIRE_HPP
