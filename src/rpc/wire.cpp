#include "rpc/wire.hpp"

#include <array>
#include <stdexcept>

namespace sdmmon::rpc {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "hello";
    case MsgType::Auth: return "auth";
    case MsgType::AuthResult: return "auth-result";
    case MsgType::Install: return "install";
    case MsgType::InstallResult: return "install-result";
    case MsgType::GetMetrics: return "get-metrics";
    case MsgType::Metrics: return "metrics";
    case MsgType::GetJournal: return "get-journal";
    case MsgType::Journal: return "journal";
    case MsgType::Ping: return "ping";
    case MsgType::Pong: return "pong";
    case MsgType::Goodbye: return "goodbye";
    case MsgType::GoodbyeAck: return "goodbye-ack";
    case MsgType::Error: return "error";
  }
  return "?";
}

const char* frame_error_name(FrameError error) {
  switch (error) {
    case FrameError::None: return "none";
    case FrameError::BadMagic: return "bad-magic";
    case FrameError::BadVersion: return "bad-version";
    case FrameError::BadReserved: return "bad-reserved";
    case FrameError::BadType: return "bad-type";
    case FrameError::Oversized: return "oversized";
    case FrameError::BadCrc: return "bad-crc";
    case FrameError::Truncated: return "truncated";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

util::Bytes encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw std::length_error("rpc frame payload exceeds kMaxPayloadBytes");
  }
  util::Bytes out(kHeaderBytes + frame.payload.size() + kTrailerBytes);
  util::store_be32(kMagic, out.data());
  out[4] = kWireVersion;
  out[5] = static_cast<std::uint8_t>(frame.type);
  out[6] = 0;
  out[7] = 0;
  util::store_be64(frame.request_id, out.data() + 8);
  util::store_be32(static_cast<std::uint32_t>(frame.payload.size()),
                   out.data() + 16);
  std::copy(frame.payload.begin(), frame.payload.end(),
            out.begin() + kHeaderBytes);
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(out.data(),
                                    kHeaderBytes + frame.payload.size()));
  util::store_be32(crc, out.data() + kHeaderBytes + frame.payload.size());
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (failed()) return;  // latched: the stream is already condemned
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Status FrameDecoder::poll(Frame& out) {
  if (failed()) return Status::Failed;
  if (buf_.size() < kHeaderBytes) {
    if (finished_ && !buf_.empty()) return fail(FrameError::Truncated);
    return Status::NeedMore;
  }

  // Validate the header before trusting its length field: a lying
  // payload_len must never drive buffering or allocation.
  if (util::load_be32(buf_.data()) != kMagic) {
    return fail(FrameError::BadMagic);
  }
  if (buf_[4] != kWireVersion) return fail(FrameError::BadVersion);
  if (buf_[6] != 0 || buf_[7] != 0) return fail(FrameError::BadReserved);
  const std::uint8_t type = buf_[5];
  if (type == 0 || type > kMaxMsgType) return fail(FrameError::BadType);
  const std::uint32_t payload_len = util::load_be32(buf_.data() + 16);
  if (payload_len > max_payload_) return fail(FrameError::Oversized);

  const std::size_t total = kHeaderBytes + payload_len + kTrailerBytes;
  if (buf_.size() < total) {
    if (finished_) return fail(FrameError::Truncated);
    return Status::NeedMore;
  }

  const std::uint32_t want =
      util::load_be32(buf_.data() + kHeaderBytes + payload_len);
  const std::uint32_t got = crc32(
      std::span<const std::uint8_t>(buf_.data(), kHeaderBytes + payload_len));
  if (want != got) return fail(FrameError::BadCrc);

  out.type = static_cast<MsgType>(type);
  out.request_id = util::load_be64(buf_.data() + 8);
  out.payload.assign(buf_.begin() + kHeaderBytes,
                     buf_.begin() + kHeaderBytes + payload_len);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  ++frames_;
  return Status::Ready;
}

void FrameDecoder::finish() { finished_ = true; }

}  // namespace sdmmon::rpc
