#include "rpc/client.hpp"

#include <array>

namespace sdmmon::rpc {

std::optional<RpcClient> RpcClient::connect(std::uint16_t port) {
  std::optional<TcpStream> stream = TcpStream::connect(port);
  if (!stream) return std::nullopt;
  RpcClient client;
  client.stream_ = std::move(*stream);
  client.connected_ = true;

  // The server speaks first: Hello (greeting + challenge) or Error
  // (session cap). Anything else is a protocol violation.
  Frame frame;
  if (client.read_response(0, frame) != 1) return std::nullopt;
  if (frame.type != MsgType::Hello) return std::nullopt;
  try {
    HelloPayload hello = HelloPayload::decode(frame.payload);
    client.device_name_ = std::move(hello.device_name);
    client.challenge_ = std::move(hello.challenge);
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
  return client;
}

util::Bytes RpcClient::auth_message() const {
  util::Bytes message = challenge_;
  message.insert(message.end(), device_name_.begin(), device_name_.end());
  return message;
}

void RpcClient::fail(const std::string& why) {
  last_error_ = why;
  connected_ = false;
  stream_.shutdown_both();
}

bool RpcClient::send_raw(const util::Bytes& frame_bytes) {
  if (!connected_) return false;
  if (!stream_.send_all(frame_bytes)) {
    fail("send failed");
    return false;
  }
  return true;
}

int RpcClient::read_response(std::uint64_t request_id, Frame& out) {
  std::array<std::uint8_t, 4096> buf;
  while (true) {
    FrameDecoder::Status status = decoder_.poll(out);
    if (status == FrameDecoder::Status::Ready) {
      // Discard stale frames: a response to a request id we stopped
      // waiting for (e.g. it arrived after a timeout-triggered retry
      // whose dedup replay we already consumed).
      if (out.request_id != request_id) continue;
      return 1;
    }
    if (status == FrameDecoder::Status::Failed) {
      fail(std::string("frame decode: ") +
           frame_error_name(decoder_.error()));
      return 0;
    }
    int n = stream_.recv_some(buf);
    if (n == -2) return -1;  // timeout; caller may retry the same id
    if (n <= 0) {
      fail(n == 0 ? "connection closed" : "recv failed");
      return 0;
    }
    decoder_.feed(std::span<const std::uint8_t>(
        buf.data(), static_cast<std::size_t>(n)));
  }
}

bool RpcClient::call(MsgType type, const util::Bytes& payload,
                     MsgType expect, Frame& response) {
  const std::uint64_t id = next_request_id_++;
  if (!send_raw(encode_frame({type, id, payload}))) return false;
  if (read_response(id, response) != 1) {
    if (connected_) fail("timed out waiting for response");
    return false;
  }
  if (response.type == MsgType::Error) {
    try {
      ErrorPayload err = ErrorPayload::decode(response.payload);
      last_error_ = std::string(rpc_error_code_name(err.code)) + ": " +
                    err.message;
    } catch (const util::DecodeError&) {
      last_error_ = "server error (unreadable detail)";
    }
    return false;
  }
  if (response.type != expect) {
    fail(std::string("unexpected response type ") +
         msg_type_name(response.type));
    return false;
  }
  return true;
}

bool RpcClient::authenticate(const util::Bytes& cert,
                             const util::Bytes& signature,
                             std::uint64_t now, std::string* detail) {
  AuthPayload auth;
  auth.cert = cert;
  auth.signature = signature;
  auth.now = now;
  Frame response;
  if (!call(MsgType::Auth, auth.encode(), MsgType::AuthResult, response)) {
    if (detail != nullptr) *detail = last_error_;
    return false;
  }
  try {
    AuthResultPayload result = AuthResultPayload::decode(response.payload);
    if (detail != nullptr) *detail = result.detail;
    if (!result.ok) last_error_ = "auth rejected: " + result.detail;
    return result.ok;
  } catch (const util::DecodeError&) {
    fail("malformed AuthResult");
    if (detail != nullptr) *detail = last_error_;
    return false;
  }
}

std::optional<std::uint8_t> RpcClient::install(InstallPurpose purpose,
                                               const util::Bytes& package,
                                               std::uint64_t now) {
  InstallPayload payload;
  payload.purpose = purpose;
  payload.now = now;
  payload.package = package;
  Frame response;
  if (!call(MsgType::Install, payload.encode(), MsgType::InstallResult,
            response)) {
    return std::nullopt;
  }
  try {
    return InstallResultPayload::decode(response.payload).install_status;
  } catch (const util::DecodeError&) {
    fail("malformed InstallResult");
    return std::nullopt;
  }
}

RpcClient::InstallRetryResult RpcClient::install_with_retry(
    InstallPurpose purpose, const util::Bytes& package, std::uint64_t now,
    std::size_t max_attempts, std::uint32_t attempt_timeout_ms) {
  InstallRetryResult result;
  InstallPayload payload;
  payload.purpose = purpose;
  payload.now = now;
  payload.package = package;
  // ONE request id for every attempt: the retries are re-sends, and the
  // server's dedup cache answers them without re-executing the install.
  const std::uint64_t id = next_request_id_++;
  const util::Bytes frame_bytes =
      encode_frame({MsgType::Install, id, payload.encode()});
  set_timeout_ms(attempt_timeout_ms);
  for (std::size_t attempt = 0; attempt < max_attempts && connected_;
       ++attempt) {
    ++result.attempts;
    if (!send_raw(frame_bytes)) break;
    Frame response;
    int rc = read_response(id, response);
    if (rc == -1) continue;  // timed out: re-send the same id
    if (rc != 1) break;
    if (response.type != MsgType::InstallResult) break;
    try {
      result.install_status =
          InstallResultPayload::decode(response.payload).install_status;
      result.delivered = true;
    } catch (const util::DecodeError&) {
      fail("malformed InstallResult");
    }
    break;
  }
  set_timeout_ms(0);
  return result;
}

std::optional<std::string> RpcClient::metrics() {
  Frame response;
  if (!call(MsgType::GetMetrics, {}, MsgType::Metrics, response)) {
    return std::nullopt;
  }
  try {
    return MetricsPayload::decode(response.payload).json;
  } catch (const util::DecodeError&) {
    fail("malformed Metrics");
    return std::nullopt;
  }
}

std::optional<JournalPayload> RpcClient::journal(std::uint64_t cursor) {
  GetJournalPayload get;
  get.cursor = cursor;
  Frame response;
  if (!call(MsgType::GetJournal, get.encode(), MsgType::Journal, response)) {
    return std::nullopt;
  }
  try {
    return JournalPayload::decode(response.payload);
  } catch (const util::DecodeError&) {
    fail("malformed Journal");
    return std::nullopt;
  }
}

std::optional<PongPayload> RpcClient::ping(std::uint64_t nonce) {
  PingPayload ping;
  ping.nonce = nonce;
  Frame response;
  if (!call(MsgType::Ping, ping.encode(), MsgType::Pong, response)) {
    return std::nullopt;
  }
  try {
    return PongPayload::decode(response.payload);
  } catch (const util::DecodeError&) {
    fail("malformed Pong");
    return std::nullopt;
  }
}

bool RpcClient::goodbye() {
  Frame response;
  bool ok = call(MsgType::Goodbye, {}, MsgType::GoodbyeAck, response);
  connected_ = false;
  return ok;
}

void SocketChannel::add_endpoint(const std::string& device_name,
                                 std::uint16_t port) {
  endpoints_[device_name] = port;
  clients_.erase(device_name);  // stale session for a re-registered port
}

RpcClient* SocketChannel::client_for(const std::string& device_name) {
  auto it = clients_.find(device_name);
  return it == clients_.end() ? nullptr : it->second.get();
}

void SocketChannel::disconnect_all() {
  for (auto& [name, client] : clients_) {
    if (client->connected()) client->goodbye();
  }
  clients_.clear();
}

RpcClient* SocketChannel::ensure_client(const std::string& device_name,
                                        std::uint64_t now) {
  if (RpcClient* existing = client_for(device_name)) {
    if (existing->connected()) return existing;
    clients_.erase(device_name);  // dead session: reconnect below
  }
  auto it = endpoints_.find(device_name);
  if (it == endpoints_.end()) return nullptr;  // not routed: unreachable
  std::optional<RpcClient> client = RpcClient::connect(it->second);
  if (!client) return nullptr;
  if (!client->authenticate(op_.certificate().serialize(),
                            op_.sign(client->auth_message()), now)) {
    return nullptr;
  }
  auto owned = std::make_unique<RpcClient>(std::move(*client));
  RpcClient* raw = owned.get();
  clients_[device_name] = std::move(owned);
  return raw;
}

protocol::ChannelResult SocketChannel::send_install(
    protocol::NetworkProcessorDevice& device,
    const protocol::WirePackage& wire, std::uint64_t now) {
  // Mirror LossyChannel::send_install decision-for-decision so a shared
  // seeded injector produces the same campaign over either transport.
  if (faults_ != nullptr && faults_->drop_message()) {
    return {protocol::ChannelStatus::RequestLost, {}};
  }

  util::Bytes bytes = wire.serialize();
  std::uint64_t device_now = now;
  if (faults_ != nullptr) {
    faults_->maybe_corrupt(bytes);
    faults_->maybe_truncate(bytes);
    device_now = faults_->skew_clock(now + faults_->delay_message());
  }

  RpcClient* client = ensure_client(device.name(), now);
  if (client == nullptr) {
    // Device unreachable over the real transport -- the operator sees
    // the same thing a vanished request looks like.
    return {protocol::ChannelStatus::RequestLost, {}};
  }
  std::optional<std::uint8_t> status =
      client->install(purpose_, bytes, device_now);
  if (!status) {
    clients_.erase(device.name());
    return {protocol::ChannelStatus::RequestLost, {}};
  }

  protocol::ChannelResult result{
      protocol::ChannelStatus::Delivered,
      static_cast<protocol::InstallStatus>(*status)};
  if (faults_ != nullptr && faults_->drop_message()) {
    // The reply arrived over TCP but the modeled reply path lost it: the
    // operator-side campaign must behave as if it never saw the verdict.
    result.status = protocol::ChannelStatus::ReplyLost;
  }
  return result;
}

}  // namespace sdmmon::rpc
