#include "rpc/messages.hpp"

namespace sdmmon::rpc {

namespace {

using util::ByteReader;
using util::ByteWriter;
using util::DecodeError;

/// Every decoder ends here: trailing bytes after a well-formed payload
/// mean the sender and receiver disagree about the schema.
void expect_done(const ByteReader& reader, const char* what) {
  if (!reader.done()) {
    throw DecodeError(std::string("rpc payload: trailing bytes after ") +
                      what);
  }
}

void check_cap(std::size_t size, std::size_t cap, const char* what) {
  if (size > cap) {
    throw DecodeError(std::string("rpc payload: ") + what + " exceeds cap");
  }
}

}  // namespace

// ---- Hello ----------------------------------------------------------

util::Bytes HelloPayload::encode() const {
  ByteWriter w;
  w.str(device_name);
  w.blob(challenge);
  return w.take();
}

HelloPayload HelloPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  HelloPayload p;
  p.device_name = r.str();
  check_cap(p.device_name.size(), kMaxNameBytes, "device name");
  p.challenge = r.blob();
  check_cap(p.challenge.size(), kMaxChallengeBytes, "challenge");
  if (p.challenge.empty()) {
    throw DecodeError("rpc payload: empty challenge");
  }
  expect_done(r, "hello");
  return p;
}

// ---- Auth -----------------------------------------------------------

util::Bytes AuthPayload::encode() const {
  ByteWriter w;
  w.blob(cert);
  w.blob(signature);
  w.u64(now);
  return w.take();
}

AuthPayload AuthPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  AuthPayload p;
  p.cert = r.blob();
  check_cap(p.cert.size(), kMaxCertBytes, "certificate");
  p.signature = r.blob();
  check_cap(p.signature.size(), kMaxSignatureBytes, "signature");
  p.now = r.u64();
  expect_done(r, "auth");
  return p;
}

util::Bytes AuthResultPayload::encode() const {
  ByteWriter w;
  w.u8(ok ? 1 : 0);
  w.str(detail);
  return w.take();
}

AuthResultPayload AuthResultPayload::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  AuthResultPayload p;
  const std::uint8_t ok = r.u8();
  if (ok > 1) throw DecodeError("rpc payload: auth-result ok not boolean");
  p.ok = ok == 1;
  p.detail = r.str();
  check_cap(p.detail.size(), kMaxDetailBytes, "detail");
  expect_done(r, "auth-result");
  return p;
}

// ---- Install --------------------------------------------------------

util::Bytes InstallPayload::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(purpose));
  w.u64(now);
  w.blob(package);
  return w.take();
}

InstallPayload InstallPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  InstallPayload p;
  const std::uint8_t purpose = r.u8();
  if (purpose > static_cast<std::uint8_t>(InstallPurpose::Rotate)) {
    throw DecodeError("rpc payload: unknown install purpose");
  }
  p.purpose = static_cast<InstallPurpose>(purpose);
  p.now = r.u64();
  p.package = r.blob();
  expect_done(r, "install");
  return p;
}

util::Bytes InstallResultPayload::encode() const {
  ByteWriter w;
  w.u8(install_status);
  return w.take();
}

InstallResultPayload InstallResultPayload::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  InstallResultPayload p;
  p.install_status = r.u8();
  expect_done(r, "install-result");
  return p;
}

// ---- Journal --------------------------------------------------------

util::Bytes GetJournalPayload::encode() const {
  ByteWriter w;
  w.u64(cursor);
  return w.take();
}

GetJournalPayload GetJournalPayload::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  GetJournalPayload p;
  p.cursor = r.u64();
  expect_done(r, "get-journal");
  return p;
}

util::Bytes JournalPayload::encode() const {
  ByteWriter w;
  w.u64(next_cursor);
  w.u64(dropped);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const obs::Event& event : events) {
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u64(event.cycle);
    w.u32(event.core);
    w.u32(event.device);
    w.u64(event.arg);
  }
  return w.take();
}

JournalPayload JournalPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  JournalPayload p;
  p.next_cursor = r.u64();
  p.dropped = r.u64();
  const std::uint32_t count = r.u32();
  check_cap(count, kMaxJournalEvents, "journal event count");
  p.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    obs::Event event;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(obs::EventKind::RpcRejected)) {
      throw DecodeError("rpc payload: unknown journal event kind");
    }
    event.kind = static_cast<obs::EventKind>(kind);
    event.cycle = r.u64();
    event.core = r.u32();
    event.device = r.u32();
    event.arg = r.u64();
    p.events.push_back(event);
  }
  expect_done(r, "journal");
  return p;
}

// ---- Metrics --------------------------------------------------------

util::Bytes MetricsPayload::encode() const {
  ByteWriter w;
  w.str(json);
  return w.take();
}

MetricsPayload MetricsPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  MetricsPayload p;
  p.json = r.str();
  expect_done(r, "metrics");
  return p;
}

// ---- Ping / Pong ----------------------------------------------------

util::Bytes PingPayload::encode() const {
  ByteWriter w;
  w.u64(nonce);
  return w.take();
}

PingPayload PingPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  PingPayload p;
  p.nonce = r.u64();
  expect_done(r, "ping");
  return p;
}

util::Bytes PongPayload::encode() const {
  ByteWriter w;
  w.u64(nonce);
  w.u64(packets);
  w.u64(sessions);
  return w.take();
}

PongPayload PongPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  PongPayload p;
  p.nonce = r.u64();
  p.packets = r.u64();
  p.sessions = r.u64();
  expect_done(r, "pong");
  return p;
}

// ---- Error ----------------------------------------------------------

const char* rpc_error_code_name(RpcErrorCode code) {
  switch (code) {
    case RpcErrorCode::BadRequest: return "bad-request";
    case RpcErrorCode::NotAuthorized: return "not-authorized";
    case RpcErrorCode::TooManySessions: return "too-many-sessions";
    case RpcErrorCode::Draining: return "draining";
    case RpcErrorCode::Internal: return "internal";
  }
  return "?";
}

util::Bytes ErrorPayload::encode() const {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
  return w.take();
}

ErrorPayload ErrorPayload::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  ErrorPayload p;
  const std::uint16_t code = r.u16();
  if (code < static_cast<std::uint16_t>(RpcErrorCode::BadRequest) ||
      code > static_cast<std::uint16_t>(RpcErrorCode::Internal)) {
    throw DecodeError("rpc payload: unknown error code");
  }
  p.code = static_cast<RpcErrorCode>(code);
  p.message = r.str();
  check_cap(p.message.size(), kMaxDetailBytes, "error message");
  expect_done(r, "error");
  return p;
}

}  // namespace sdmmon::rpc
