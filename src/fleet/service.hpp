// The fleet service: a discrete-event rollout engine driving the install
// protocol across 10^5..10^6 modeled devices plus a configurable sample
// of concrete NetworkProcessorDevices, with staged waves, release
// channels, an automatic-halt controller, and rollback to last-good.
//
// The service is one SimActor: every device transition is an event on
// the shared deterministic scheduler, so a million-device rollout is a
// single-threaded replayable run. Modeled devices exercise the protocol
// *shape* (attempt / loss / reject / install / bake / quarantine with
// the real RetryPolicy schedule); the concrete sample exercises the
// protocol *substance* (real sealing, real wire codec, real monitors
// quarantining under real attack traffic), and both feed the same wave
// accounting and the same halt controller.
#ifndef SDMMON_FLEET_SERVICE_HPP
#define SDMMON_FLEET_SERVICE_HPP

#include <memory>
#include <string>
#include <vector>

#include "fleet/attestation.hpp"
#include "fleet/device_model.hpp"
#include "fleet/rollout.hpp"
#include "fleet/sim.hpp"
#include "obs/obs.hpp"
#include "sdmmon/channel.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/fleet_ops.hpp"
#include "util/fault.hpp"

namespace sdmmon::fleet {

/// A correlated regional failure: while active, every install attempt
/// from a device in `region` is judged by the outage's own seeded
/// FaultInjector (default profile drops everything). This is the
/// "regional channel outage" scenario -- devices burn retry budget
/// against a dead management plane and must not be misread as a bad
/// release.
struct Outage {
  std::uint16_t region = 0;
  SimTime start_ms = 0;
  SimTime end_ms = 0;
  util::FaultProfile faults{.seed = 0x0707, .drop_rate = 1.0};
};

struct FleetConfig {
  std::size_t devices = 1000;
  std::uint64_t seed = 0xF1EE7;
  std::uint32_t regions = 8;

  /// Rank-ordered channel split: the first `canary_fraction` of the
  /// fleet's deterministic rollout rank is canary, the next
  /// `beta_fraction` beta, the rest stable. Waves target cumulative rank
  /// fractions, so early waves land on canary devices by construction.
  double canary_fraction = 0.05;
  double beta_fraction = 0.20;

  /// Cumulative fleet fractions per wave (last entry should be 1.0 for a
  /// full rollout).
  std::vector<double> wave_fractions = {0.01, 0.10, 0.50, 1.0};
  /// Attempts within a wave are spread uniformly over this window.
  SimTime wave_ramp_ms = 60'000;
  /// Observation gap between a wave turning fully terminal and the next
  /// wave opening.
  SimTime wave_gap_ms = 30'000;
  /// Post-halt rollbacks are spread over this window.
  SimTime rollback_ramp_ms = 5'000;

  /// The real operator retry schedule (jitter included) -- modeled
  /// devices consume it through protocol::retry_backoff_s.
  protocol::RetryPolicy retry;
  HaltThresholds halt;

  // -- Concrete sample ---------------------------------------------------
  /// The first `concrete_sample` device ids are real
  /// NetworkProcessorDevices: sealed packages over a real Channel, probe
  /// traffic through real monitors, QuarantineAfterK recovery. 0 (or a
  /// release without a binary) keeps the fleet fully modeled.
  std::size_t concrete_sample = 0;
  std::size_t concrete_cores = 2;
  std::size_t concrete_key_bits = 1024;
  /// Protocol wall-clock (certificate validity) at sim time 0; advances
  /// with the sim clock.
  std::uint64_t concrete_epoch_s = 1'750'000'000;
  /// Probe packets run through a concrete device per bake slice.
  std::size_t concrete_probe_packets = 16;
  /// Attack bytes substituted into concrete probe traffic at the
  /// release's concrete_attack_rate.
  util::Bytes attack_packet;
  np::RecoveryConfig concrete_recovery{
      .policy = np::RecoveryPolicy::QuarantineAfterK};

  /// Fleet-level metrics/journal (borrowed; may be null).
  obs::Registry* registry = nullptr;
};

/// Everything a rollout produced, for tests and the bench report.
struct RolloutReport {
  bool halted = false;
  HaltReason halt_reason = HaltReason::None;
  std::uint16_t halted_wave = 0;
  SimTime halt_time_ms = 0;
  /// Halt latency: halt time minus the open time of the halted wave.
  SimTime halt_detect_ms = 0;
  /// Devices that activated the (bad) release before the halt -- the
  /// blast radius the staged waves exist to bound.
  std::size_t affected = 0;
  std::size_t rollbacks = 0;
  bool reached_t90 = false;
  SimTime t90_ms = 0;  // time healthy count crossed 90% of the fleet
  std::vector<WaveStats> waves;
  FleetHealth health;
  double health_score = 0;
};

/// Cached fleet-level observability handles (names in obs/names.hpp).
struct FleetSimObs {
  obs::Registry* registry = nullptr;
  obs::EventJournal* journal = nullptr;
  obs::Gauge* devices = nullptr;
  obs::Gauge* converged = nullptr;
  obs::Gauge* wave = nullptr;
  obs::Gauge* health_score = nullptr;
  obs::Counter* installs = nullptr;
  obs::Counter* rejections = nullptr;
  obs::Counter* quarantines = nullptr;
  obs::Counter* unreachable = nullptr;
  obs::Counter* rollbacks = nullptr;
  obs::Counter* halts = nullptr;

  static std::unique_ptr<FleetSimObs> create(obs::Registry& registry);
};

class FleetService : public SimActor {
 public:
  FleetService(Simulator& sim, FleetConfig config);
  ~FleetService() override;

  /// Begin a staged rollout of `release` (wave 0 opens immediately).
  /// Re-targetable: calling it again after a halted rollout re-enrolls
  /// every device (RolledBack devices included) for the fixed release.
  void start_rollout(Release release);

  /// Inject a correlated regional failure window.
  void schedule_outage(const Outage& outage);

  /// Swap the active release's behavior at `at` -- the slow-roll attack:
  /// a release that bakes clean early and turns hostile later (behavior
  /// is re-read every bake slice, so devices already baking are caught).
  void schedule_behavior_change(SimTime at, ReleaseBehavior behavior);

  void on_event(Simulator& sim, const SimEvent& event) override;

  /// True once every targeted device is terminal or the rollout halted
  /// and all rollbacks have run.
  bool rollout_done() const;

  RolloutReport report() const;
  FleetHealth health() const;

  const FleetConfig& config() const { return config_; }
  const Release& release() const { return release_; }
  std::size_t device_count() const { return fleet_.size(); }
  const ModeledDevice& device(std::size_t id) const { return fleet_[id]; }

  /// Attestation for one device (concrete ids report through the real
  /// registry snapshot; modeled ids from their state machine).
  AttestationReport attest(std::size_t id) const;

  std::size_t concrete_count() const { return concrete_.size(); }
  protocol::NetworkProcessorDevice& concrete_device(std::size_t slot);
  const obs::Registry& concrete_registry(std::size_t slot) const;

 private:
  struct ConcreteSlot {
    std::unique_ptr<protocol::NetworkProcessorDevice> device;
    std::unique_ptr<obs::Registry> registry;
    isa::Program current_binary;
    bool has_current = false;
    isa::Program last_good_binary;
    bool has_last_good = false;
    std::uint64_t probe_cursor = 0;  // workload stream position
  };

  bool epoch_ok(const SimEvent& event) const {
    return event.b == rollout_epoch_;
  }
  bool is_concrete(std::size_t id) const {
    return concrete_active_ && id < concrete_.size();
  }
  std::uint64_t protocol_now(Simulator& sim) const {
    return config_.concrete_epoch_s + sim.now() / 1000;
  }

  void open_wave(Simulator& sim, std::uint16_t wave);
  void handle_attempt(Simulator& sim, std::size_t id);
  void handle_installed(Simulator& sim, std::size_t id);
  void handle_bake_slice(Simulator& sim, std::size_t id, std::uint32_t slice);
  void handle_rollback(Simulator& sim, std::size_t id);

  /// One delivery attempt. Modeled devices draw from their streams;
  /// concrete devices seal+send a real package. Retries reuse the real
  /// jittered backoff schedule; exhaustion lands in Unreachable.
  void attempt_concrete(Simulator& sim, std::size_t id);
  void attempt_modeled(Simulator& sim, std::size_t id);
  void schedule_retry(Simulator& sim, ModeledDevice& dev,
                      std::uint64_t backoff_key);
  void finish_install_phase(Simulator& sim, std::size_t id,
                            DeviceState terminal_state);
  void note_terminal(Simulator& sim, ModeledDevice& dev);
  void mark_quarantined(Simulator& sim, ModeledDevice& dev);
  void check_halt(Simulator& sim);
  void halt_rollout(Simulator& sim, HaltReason reason);
  void maybe_advance_wave(Simulator& sim);
  /// Injector of the outage covering (region, now), or null.
  util::FaultInjector* active_outage(std::uint16_t region, SimTime now);
  void update_health_gauges();
  double rank_fraction(std::size_t id) const;

  Simulator& sim_;
  FleetConfig config_;
  std::vector<ModeledDevice> fleet_;
  std::vector<ConcreteSlot> concrete_;
  std::unique_ptr<protocol::Manufacturer> manufacturer_;
  std::unique_ptr<protocol::NetworkOperator> operator_;
  protocol::DirectChannel direct_channel_;
  bool concrete_active_ = false;

  Release release_;
  bool running_ = false;
  std::uint64_t rollout_epoch_ = 0;  // bumped on halt: stale events no-op
  std::uint16_t current_wave_ = 0;
  std::vector<SimTime> wave_open_ms_;
  std::vector<WaveStats> waves_;

  bool halted_ = false;
  HaltReason halt_reason_ = HaltReason::None;
  std::uint16_t halted_wave_ = 0;
  SimTime halt_time_ms_ = 0;
  std::size_t pending_rollbacks_ = 0;
  std::size_t rollbacks_done_ = 0;

  // Fleet-wide tallies (FleetHealth without an O(N) scan per event).
  std::size_t tally_targeted_ = 0;
  std::size_t tally_healthy_ = 0;
  std::size_t tally_quarantined_ = 0;
  std::size_t tally_rejected_ = 0;
  std::size_t tally_unreachable_ = 0;
  std::size_t tally_rolled_back_ = 0;
  std::size_t tally_in_flight_ = 0;
  bool reached_t90_ = false;
  SimTime t90_ms_ = 0;

  HaltController controller_;
  struct ActiveOutage {
    Outage spec;
    util::FaultInjector injector;
  };
  std::vector<ActiveOutage> outages_;
  std::vector<ReleaseBehavior> behavior_changes_;

  std::unique_ptr<FleetSimObs> obs_;
};

}  // namespace sdmmon::fleet

#endif  // SDMMON_FLEET_SERVICE_HPP
